
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/property_test.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/cbs_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/cbs_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/cbs_models.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/cbs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sla/CMakeFiles/cbs_sla.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cbs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cbs_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
