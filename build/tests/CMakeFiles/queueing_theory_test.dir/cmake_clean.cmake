file(REMOVE_RECURSE
  "CMakeFiles/queueing_theory_test.dir/queueing_theory_test.cpp.o"
  "CMakeFiles/queueing_theory_test.dir/queueing_theory_test.cpp.o.d"
  "queueing_theory_test"
  "queueing_theory_test.pdb"
  "queueing_theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
