# Empty compiler generated dependencies file for sla_cost_tickets_test.
# This may be replaced when dependencies are built.
