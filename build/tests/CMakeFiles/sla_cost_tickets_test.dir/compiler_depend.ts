# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sla_cost_tickets_test.
