file(REMOVE_RECURSE
  "CMakeFiles/sla_cost_tickets_test.dir/sla_cost_tickets_test.cpp.o"
  "CMakeFiles/sla_cost_tickets_test.dir/sla_cost_tickets_test.cpp.o.d"
  "sla_cost_tickets_test"
  "sla_cost_tickets_test.pdb"
  "sla_cost_tickets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_cost_tickets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
