# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simcore_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/compute_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/sla_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/sla_cost_tickets_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/logging_test[1]_include.cmake")
include("/root/repo/build/tests/queueing_theory_test[1]_include.cmake")
