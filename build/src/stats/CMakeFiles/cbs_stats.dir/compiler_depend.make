# Empty compiler generated dependencies file for cbs_stats.
# This may be replaced when dependencies are built.
