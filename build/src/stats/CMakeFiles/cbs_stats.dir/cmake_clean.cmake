file(REMOVE_RECURSE
  "CMakeFiles/cbs_stats.dir/distributions.cpp.o"
  "CMakeFiles/cbs_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/cbs_stats.dir/histogram.cpp.o"
  "CMakeFiles/cbs_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/cbs_stats.dir/summary.cpp.o"
  "CMakeFiles/cbs_stats.dir/summary.cpp.o.d"
  "CMakeFiles/cbs_stats.dir/timeseries.cpp.o"
  "CMakeFiles/cbs_stats.dir/timeseries.cpp.o.d"
  "libcbs_stats.a"
  "libcbs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
