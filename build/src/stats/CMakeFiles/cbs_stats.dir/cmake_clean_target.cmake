file(REMOVE_RECURSE
  "libcbs_stats.a"
)
