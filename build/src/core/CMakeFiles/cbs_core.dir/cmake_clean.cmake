file(REMOVE_RECURSE
  "CMakeFiles/cbs_core.dir/bandwidth_split.cpp.o"
  "CMakeFiles/cbs_core.dir/bandwidth_split.cpp.o.d"
  "CMakeFiles/cbs_core.dir/belief_state.cpp.o"
  "CMakeFiles/cbs_core.dir/belief_state.cpp.o.d"
  "CMakeFiles/cbs_core.dir/config.cpp.o"
  "CMakeFiles/cbs_core.dir/config.cpp.o.d"
  "CMakeFiles/cbs_core.dir/controller.cpp.o"
  "CMakeFiles/cbs_core.dir/controller.cpp.o.d"
  "CMakeFiles/cbs_core.dir/greedy_scheduler.cpp.o"
  "CMakeFiles/cbs_core.dir/greedy_scheduler.cpp.o.d"
  "CMakeFiles/cbs_core.dir/job.cpp.o"
  "CMakeFiles/cbs_core.dir/job.cpp.o.d"
  "CMakeFiles/cbs_core.dir/multi_cloud.cpp.o"
  "CMakeFiles/cbs_core.dir/multi_cloud.cpp.o.d"
  "CMakeFiles/cbs_core.dir/order_preserving_scheduler.cpp.o"
  "CMakeFiles/cbs_core.dir/order_preserving_scheduler.cpp.o.d"
  "CMakeFiles/cbs_core.dir/scheduler.cpp.o"
  "CMakeFiles/cbs_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/cbs_core.dir/upload_queues.cpp.o"
  "CMakeFiles/cbs_core.dir/upload_queues.cpp.o.d"
  "libcbs_core.a"
  "libcbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
