
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bandwidth_split.cpp" "src/core/CMakeFiles/cbs_core.dir/bandwidth_split.cpp.o" "gcc" "src/core/CMakeFiles/cbs_core.dir/bandwidth_split.cpp.o.d"
  "/root/repo/src/core/belief_state.cpp" "src/core/CMakeFiles/cbs_core.dir/belief_state.cpp.o" "gcc" "src/core/CMakeFiles/cbs_core.dir/belief_state.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/cbs_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/cbs_core.dir/config.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/cbs_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/cbs_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/greedy_scheduler.cpp" "src/core/CMakeFiles/cbs_core.dir/greedy_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/cbs_core.dir/greedy_scheduler.cpp.o.d"
  "/root/repo/src/core/job.cpp" "src/core/CMakeFiles/cbs_core.dir/job.cpp.o" "gcc" "src/core/CMakeFiles/cbs_core.dir/job.cpp.o.d"
  "/root/repo/src/core/multi_cloud.cpp" "src/core/CMakeFiles/cbs_core.dir/multi_cloud.cpp.o" "gcc" "src/core/CMakeFiles/cbs_core.dir/multi_cloud.cpp.o.d"
  "/root/repo/src/core/order_preserving_scheduler.cpp" "src/core/CMakeFiles/cbs_core.dir/order_preserving_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/cbs_core.dir/order_preserving_scheduler.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/cbs_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/cbs_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/upload_queues.cpp" "src/core/CMakeFiles/cbs_core.dir/upload_queues.cpp.o" "gcc" "src/core/CMakeFiles/cbs_core.dir/upload_queues.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/cbs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cbs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/cbs_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/cbs_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sla/CMakeFiles/cbs_sla.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/cbs_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
