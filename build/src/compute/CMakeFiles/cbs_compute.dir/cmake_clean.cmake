file(REMOVE_RECURSE
  "CMakeFiles/cbs_compute.dir/cluster.cpp.o"
  "CMakeFiles/cbs_compute.dir/cluster.cpp.o.d"
  "CMakeFiles/cbs_compute.dir/job_store.cpp.o"
  "CMakeFiles/cbs_compute.dir/job_store.cpp.o.d"
  "CMakeFiles/cbs_compute.dir/mapreduce.cpp.o"
  "CMakeFiles/cbs_compute.dir/mapreduce.cpp.o.d"
  "libcbs_compute.a"
  "libcbs_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
