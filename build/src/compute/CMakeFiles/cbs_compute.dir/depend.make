# Empty dependencies file for cbs_compute.
# This may be replaced when dependencies are built.
