file(REMOVE_RECURSE
  "libcbs_compute.a"
)
