# Empty compiler generated dependencies file for cbs_sla.
# This may be replaced when dependencies are built.
