file(REMOVE_RECURSE
  "CMakeFiles/cbs_sla.dir/cost.cpp.o"
  "CMakeFiles/cbs_sla.dir/cost.cpp.o.d"
  "CMakeFiles/cbs_sla.dir/job_outcome.cpp.o"
  "CMakeFiles/cbs_sla.dir/job_outcome.cpp.o.d"
  "CMakeFiles/cbs_sla.dir/metrics.cpp.o"
  "CMakeFiles/cbs_sla.dir/metrics.cpp.o.d"
  "CMakeFiles/cbs_sla.dir/oo_metric.cpp.o"
  "CMakeFiles/cbs_sla.dir/oo_metric.cpp.o.d"
  "CMakeFiles/cbs_sla.dir/report.cpp.o"
  "CMakeFiles/cbs_sla.dir/report.cpp.o.d"
  "CMakeFiles/cbs_sla.dir/slack.cpp.o"
  "CMakeFiles/cbs_sla.dir/slack.cpp.o.d"
  "CMakeFiles/cbs_sla.dir/tickets.cpp.o"
  "CMakeFiles/cbs_sla.dir/tickets.cpp.o.d"
  "libcbs_sla.a"
  "libcbs_sla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
