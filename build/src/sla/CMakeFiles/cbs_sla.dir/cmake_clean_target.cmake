file(REMOVE_RECURSE
  "libcbs_sla.a"
)
