
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sla/cost.cpp" "src/sla/CMakeFiles/cbs_sla.dir/cost.cpp.o" "gcc" "src/sla/CMakeFiles/cbs_sla.dir/cost.cpp.o.d"
  "/root/repo/src/sla/job_outcome.cpp" "src/sla/CMakeFiles/cbs_sla.dir/job_outcome.cpp.o" "gcc" "src/sla/CMakeFiles/cbs_sla.dir/job_outcome.cpp.o.d"
  "/root/repo/src/sla/metrics.cpp" "src/sla/CMakeFiles/cbs_sla.dir/metrics.cpp.o" "gcc" "src/sla/CMakeFiles/cbs_sla.dir/metrics.cpp.o.d"
  "/root/repo/src/sla/oo_metric.cpp" "src/sla/CMakeFiles/cbs_sla.dir/oo_metric.cpp.o" "gcc" "src/sla/CMakeFiles/cbs_sla.dir/oo_metric.cpp.o.d"
  "/root/repo/src/sla/report.cpp" "src/sla/CMakeFiles/cbs_sla.dir/report.cpp.o" "gcc" "src/sla/CMakeFiles/cbs_sla.dir/report.cpp.o.d"
  "/root/repo/src/sla/slack.cpp" "src/sla/CMakeFiles/cbs_sla.dir/slack.cpp.o" "gcc" "src/sla/CMakeFiles/cbs_sla.dir/slack.cpp.o.d"
  "/root/repo/src/sla/tickets.cpp" "src/sla/CMakeFiles/cbs_sla.dir/tickets.cpp.o" "gcc" "src/sla/CMakeFiles/cbs_sla.dir/tickets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/cbs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cbs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
