file(REMOVE_RECURSE
  "CMakeFiles/cbs_workload.dir/arrival.cpp.o"
  "CMakeFiles/cbs_workload.dir/arrival.cpp.o.d"
  "CMakeFiles/cbs_workload.dir/chunker.cpp.o"
  "CMakeFiles/cbs_workload.dir/chunker.cpp.o.d"
  "CMakeFiles/cbs_workload.dir/document.cpp.o"
  "CMakeFiles/cbs_workload.dir/document.cpp.o.d"
  "CMakeFiles/cbs_workload.dir/generator.cpp.o"
  "CMakeFiles/cbs_workload.dir/generator.cpp.o.d"
  "CMakeFiles/cbs_workload.dir/ground_truth.cpp.o"
  "CMakeFiles/cbs_workload.dir/ground_truth.cpp.o.d"
  "CMakeFiles/cbs_workload.dir/seasonal.cpp.o"
  "CMakeFiles/cbs_workload.dir/seasonal.cpp.o.d"
  "CMakeFiles/cbs_workload.dir/trace.cpp.o"
  "CMakeFiles/cbs_workload.dir/trace.cpp.o.d"
  "libcbs_workload.a"
  "libcbs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
