file(REMOVE_RECURSE
  "libcbs_workload.a"
)
