
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival.cpp" "src/workload/CMakeFiles/cbs_workload.dir/arrival.cpp.o" "gcc" "src/workload/CMakeFiles/cbs_workload.dir/arrival.cpp.o.d"
  "/root/repo/src/workload/chunker.cpp" "src/workload/CMakeFiles/cbs_workload.dir/chunker.cpp.o" "gcc" "src/workload/CMakeFiles/cbs_workload.dir/chunker.cpp.o.d"
  "/root/repo/src/workload/document.cpp" "src/workload/CMakeFiles/cbs_workload.dir/document.cpp.o" "gcc" "src/workload/CMakeFiles/cbs_workload.dir/document.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/cbs_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/cbs_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/ground_truth.cpp" "src/workload/CMakeFiles/cbs_workload.dir/ground_truth.cpp.o" "gcc" "src/workload/CMakeFiles/cbs_workload.dir/ground_truth.cpp.o.d"
  "/root/repo/src/workload/seasonal.cpp" "src/workload/CMakeFiles/cbs_workload.dir/seasonal.cpp.o" "gcc" "src/workload/CMakeFiles/cbs_workload.dir/seasonal.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/cbs_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/cbs_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/cbs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cbs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
