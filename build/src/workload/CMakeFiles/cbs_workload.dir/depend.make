# Empty dependencies file for cbs_workload.
# This may be replaced when dependencies are built.
