file(REMOVE_RECURSE
  "libcbs_simcore.a"
)
