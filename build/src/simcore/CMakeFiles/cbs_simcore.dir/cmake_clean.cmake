file(REMOVE_RECURSE
  "CMakeFiles/cbs_simcore.dir/event_queue.cpp.o"
  "CMakeFiles/cbs_simcore.dir/event_queue.cpp.o.d"
  "CMakeFiles/cbs_simcore.dir/logging.cpp.o"
  "CMakeFiles/cbs_simcore.dir/logging.cpp.o.d"
  "CMakeFiles/cbs_simcore.dir/rng.cpp.o"
  "CMakeFiles/cbs_simcore.dir/rng.cpp.o.d"
  "CMakeFiles/cbs_simcore.dir/simulation.cpp.o"
  "CMakeFiles/cbs_simcore.dir/simulation.cpp.o.d"
  "libcbs_simcore.a"
  "libcbs_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
