# Empty compiler generated dependencies file for cbs_simcore.
# This may be replaced when dependencies are built.
