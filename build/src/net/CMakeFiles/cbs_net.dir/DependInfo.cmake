
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bandwidth_estimator.cpp" "src/net/CMakeFiles/cbs_net.dir/bandwidth_estimator.cpp.o" "gcc" "src/net/CMakeFiles/cbs_net.dir/bandwidth_estimator.cpp.o.d"
  "/root/repo/src/net/bandwidth_profile.cpp" "src/net/CMakeFiles/cbs_net.dir/bandwidth_profile.cpp.o" "gcc" "src/net/CMakeFiles/cbs_net.dir/bandwidth_profile.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/cbs_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/cbs_net.dir/link.cpp.o.d"
  "/root/repo/src/net/noise.cpp" "src/net/CMakeFiles/cbs_net.dir/noise.cpp.o" "gcc" "src/net/CMakeFiles/cbs_net.dir/noise.cpp.o.d"
  "/root/repo/src/net/thread_tuner.cpp" "src/net/CMakeFiles/cbs_net.dir/thread_tuner.cpp.o" "gcc" "src/net/CMakeFiles/cbs_net.dir/thread_tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/cbs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cbs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
