file(REMOVE_RECURSE
  "CMakeFiles/cbs_net.dir/bandwidth_estimator.cpp.o"
  "CMakeFiles/cbs_net.dir/bandwidth_estimator.cpp.o.d"
  "CMakeFiles/cbs_net.dir/bandwidth_profile.cpp.o"
  "CMakeFiles/cbs_net.dir/bandwidth_profile.cpp.o.d"
  "CMakeFiles/cbs_net.dir/link.cpp.o"
  "CMakeFiles/cbs_net.dir/link.cpp.o.d"
  "CMakeFiles/cbs_net.dir/noise.cpp.o"
  "CMakeFiles/cbs_net.dir/noise.cpp.o.d"
  "CMakeFiles/cbs_net.dir/thread_tuner.cpp.o"
  "CMakeFiles/cbs_net.dir/thread_tuner.cpp.o.d"
  "libcbs_net.a"
  "libcbs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
