file(REMOVE_RECURSE
  "libcbs_net.a"
)
