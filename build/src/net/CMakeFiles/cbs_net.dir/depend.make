# Empty dependencies file for cbs_net.
# This may be replaced when dependencies are built.
