file(REMOVE_RECURSE
  "CMakeFiles/cbs_harness.dir/cli.cpp.o"
  "CMakeFiles/cbs_harness.dir/cli.cpp.o.d"
  "CMakeFiles/cbs_harness.dir/csv.cpp.o"
  "CMakeFiles/cbs_harness.dir/csv.cpp.o.d"
  "CMakeFiles/cbs_harness.dir/experiment.cpp.o"
  "CMakeFiles/cbs_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/cbs_harness.dir/plot.cpp.o"
  "CMakeFiles/cbs_harness.dir/plot.cpp.o.d"
  "CMakeFiles/cbs_harness.dir/scenario.cpp.o"
  "CMakeFiles/cbs_harness.dir/scenario.cpp.o.d"
  "libcbs_harness.a"
  "libcbs_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
