# Empty compiler generated dependencies file for cbs_harness.
# This may be replaced when dependencies are built.
