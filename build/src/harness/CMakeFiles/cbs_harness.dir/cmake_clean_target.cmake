file(REMOVE_RECURSE
  "libcbs_harness.a"
)
