
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/estimator.cpp" "src/models/CMakeFiles/cbs_models.dir/estimator.cpp.o" "gcc" "src/models/CMakeFiles/cbs_models.dir/estimator.cpp.o.d"
  "/root/repo/src/models/feature_vector.cpp" "src/models/CMakeFiles/cbs_models.dir/feature_vector.cpp.o" "gcc" "src/models/CMakeFiles/cbs_models.dir/feature_vector.cpp.o.d"
  "/root/repo/src/models/per_class_qrsm.cpp" "src/models/CMakeFiles/cbs_models.dir/per_class_qrsm.cpp.o" "gcc" "src/models/CMakeFiles/cbs_models.dir/per_class_qrsm.cpp.o.d"
  "/root/repo/src/models/qrsm.cpp" "src/models/CMakeFiles/cbs_models.dir/qrsm.cpp.o" "gcc" "src/models/CMakeFiles/cbs_models.dir/qrsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/cbs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cbs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cbs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
