file(REMOVE_RECURSE
  "CMakeFiles/cbs_models.dir/estimator.cpp.o"
  "CMakeFiles/cbs_models.dir/estimator.cpp.o.d"
  "CMakeFiles/cbs_models.dir/feature_vector.cpp.o"
  "CMakeFiles/cbs_models.dir/feature_vector.cpp.o.d"
  "CMakeFiles/cbs_models.dir/per_class_qrsm.cpp.o"
  "CMakeFiles/cbs_models.dir/per_class_qrsm.cpp.o.d"
  "CMakeFiles/cbs_models.dir/qrsm.cpp.o"
  "CMakeFiles/cbs_models.dir/qrsm.cpp.o.d"
  "libcbs_models.a"
  "libcbs_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
