# Empty compiler generated dependencies file for cbs_models.
# This may be replaced when dependencies are built.
