file(REMOVE_RECURSE
  "libcbs_models.a"
)
