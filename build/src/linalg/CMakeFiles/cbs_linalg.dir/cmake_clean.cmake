file(REMOVE_RECURSE
  "CMakeFiles/cbs_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/cbs_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/cbs_linalg.dir/least_squares.cpp.o"
  "CMakeFiles/cbs_linalg.dir/least_squares.cpp.o.d"
  "CMakeFiles/cbs_linalg.dir/matrix.cpp.o"
  "CMakeFiles/cbs_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/cbs_linalg.dir/qr.cpp.o"
  "CMakeFiles/cbs_linalg.dir/qr.cpp.o.d"
  "libcbs_linalg.a"
  "libcbs_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbs_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
