# Empty compiler generated dependencies file for cbs_linalg.
# This may be replaced when dependencies are built.
