file(REMOVE_RECURSE
  "libcbs_linalg.a"
)
