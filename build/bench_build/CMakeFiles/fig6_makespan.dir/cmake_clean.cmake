file(REMOVE_RECURSE
  "../bench/fig6_makespan"
  "../bench/fig6_makespan.pdb"
  "CMakeFiles/fig6_makespan.dir/fig6_makespan.cpp.o"
  "CMakeFiles/fig6_makespan.dir/fig6_makespan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
