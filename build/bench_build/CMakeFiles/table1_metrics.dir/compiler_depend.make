# Empty compiler generated dependencies file for table1_metrics.
# This may be replaced when dependencies are built.
