# Empty dependencies file for fig10_oo_relative.
# This may be replaced when dependencies are built.
