file(REMOVE_RECURSE
  "../bench/fig10_oo_relative"
  "../bench/fig10_oo_relative.pdb"
  "CMakeFiles/fig10_oo_relative.dir/fig10_oo_relative.cpp.o"
  "CMakeFiles/fig10_oo_relative.dir/fig10_oo_relative.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_oo_relative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
