# Empty dependencies file for fig4_bandwidth.
# This may be replaced when dependencies are built.
