# Empty compiler generated dependencies file for fig7_completion.
# This may be replaced when dependencies are built.
