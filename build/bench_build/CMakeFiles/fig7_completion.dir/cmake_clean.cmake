file(REMOVE_RECURSE
  "../bench/fig7_completion"
  "../bench/fig7_completion.pdb"
  "CMakeFiles/fig7_completion.dir/fig7_completion.cpp.o"
  "CMakeFiles/fig7_completion.dir/fig7_completion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
