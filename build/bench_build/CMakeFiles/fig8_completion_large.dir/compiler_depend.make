# Empty compiler generated dependencies file for fig8_completion_large.
# This may be replaced when dependencies are built.
