file(REMOVE_RECURSE
  "../bench/fig8_completion_large"
  "../bench/fig8_completion_large.pdb"
  "CMakeFiles/fig8_completion_large.dir/fig8_completion_large.cpp.o"
  "CMakeFiles/fig8_completion_large.dir/fig8_completion_large.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_completion_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
