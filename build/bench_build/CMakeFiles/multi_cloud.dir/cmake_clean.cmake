file(REMOVE_RECURSE
  "../bench/multi_cloud"
  "../bench/multi_cloud.pdb"
  "CMakeFiles/multi_cloud.dir/multi_cloud.cpp.o"
  "CMakeFiles/multi_cloud.dir/multi_cloud.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
