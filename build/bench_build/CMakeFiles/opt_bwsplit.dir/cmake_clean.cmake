file(REMOVE_RECURSE
  "../bench/opt_bwsplit"
  "../bench/opt_bwsplit.pdb"
  "CMakeFiles/opt_bwsplit.dir/opt_bwsplit.cpp.o"
  "CMakeFiles/opt_bwsplit.dir/opt_bwsplit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_bwsplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
