# Empty compiler generated dependencies file for opt_bwsplit.
# This may be replaced when dependencies are built.
