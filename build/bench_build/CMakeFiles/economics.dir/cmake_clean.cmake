file(REMOVE_RECURSE
  "../bench/economics"
  "../bench/economics.pdb"
  "CMakeFiles/economics.dir/economics.cpp.o"
  "CMakeFiles/economics.dir/economics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
