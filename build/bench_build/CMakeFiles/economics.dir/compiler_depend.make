# Empty compiler generated dependencies file for economics.
# This may be replaced when dependencies are built.
