# Empty compiler generated dependencies file for fig9_oo_metric.
# This may be replaced when dependencies are built.
