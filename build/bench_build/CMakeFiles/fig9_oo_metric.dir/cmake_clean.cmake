file(REMOVE_RECURSE
  "../bench/fig9_oo_metric"
  "../bench/fig9_oo_metric.pdb"
  "CMakeFiles/fig9_oo_metric.dir/fig9_oo_metric.cpp.o"
  "CMakeFiles/fig9_oo_metric.dir/fig9_oo_metric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_oo_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
