file(REMOVE_RECURSE
  "../bench/fig3_qrsm"
  "../bench/fig3_qrsm.pdb"
  "CMakeFiles/fig3_qrsm.dir/fig3_qrsm.cpp.o"
  "CMakeFiles/fig3_qrsm.dir/fig3_qrsm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_qrsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
