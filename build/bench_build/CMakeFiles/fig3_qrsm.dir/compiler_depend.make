# Empty compiler generated dependencies file for fig3_qrsm.
# This may be replaced when dependencies are built.
