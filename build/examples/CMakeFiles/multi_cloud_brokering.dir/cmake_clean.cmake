file(REMOVE_RECURSE
  "CMakeFiles/multi_cloud_brokering.dir/multi_cloud_brokering.cpp.o"
  "CMakeFiles/multi_cloud_brokering.dir/multi_cloud_brokering.cpp.o.d"
  "multi_cloud_brokering"
  "multi_cloud_brokering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cloud_brokering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
