# Empty dependencies file for multi_cloud_brokering.
# This may be replaced when dependencies are built.
