# Empty compiler generated dependencies file for network_storm.
# This may be replaced when dependencies are built.
