file(REMOVE_RECURSE
  "CMakeFiles/network_storm.dir/network_storm.cpp.o"
  "CMakeFiles/network_storm.dir/network_storm.cpp.o.d"
  "network_storm"
  "network_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
