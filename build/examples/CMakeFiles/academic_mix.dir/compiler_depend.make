# Empty compiler generated dependencies file for academic_mix.
# This may be replaced when dependencies are built.
