file(REMOVE_RECURSE
  "CMakeFiles/academic_mix.dir/academic_mix.cpp.o"
  "CMakeFiles/academic_mix.dir/academic_mix.cpp.o.d"
  "academic_mix"
  "academic_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/academic_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
