// cloudburst_sim — run one cloud-bursting scenario from the command line
// and print the full SLA/economics report, optionally emitting CSV series.
//
//   cloudburst_sim --scheduler=order-preserving --bucket=large --seed=7
//   cloudburst_sim --scheduler=greedy --high-var --csv=oo > oo.csv
//   cloudburst_sim --elastic --batches=12 --lambda=20 --csv=completion
//
// Flags: --scheduler (ic-only|greedy|order-preserving|op-bandwidth-split|
//                     random|lookahead)
//        --bucket (small|uniform|large)   --seed N       --batches N
//        --lambda J/batch   --interval s  --high-var     --rescheduler
//        --elastic          --estimator (qrsm|oracle|per-class)
//        --tolerance t_l    --oo-interval s   --noise sigma
//        --ic-mtbf s  --ec-mtbf s  --vm-recovery s  --retraction-factor f
//        --horizon s  --candidates N   (scheduler=lookahead rollouts)
//        --csv (report|completion|oo)
#include <cstdio>
#include <exception>
#include <iostream>

#include "harness/cli.hpp"
#include "harness/csv.hpp"
#include "harness/experiment.hpp"
#include "sla/metrics.hpp"
#include "sla/report.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: cloudburst_sim [--scheduler S] [--bucket B] [--seed N]\n"
      "                      [--batches N] [--lambda J] [--interval s]\n"
      "                      [--high-var] [--rescheduler] [--elastic]\n"
      "                      [--estimator qrsm|oracle|per-class]\n"
      "                      [--tolerance t] [--oo-interval s] [--noise sig]\n"
      "                      [--ic-mtbf s] [--ec-mtbf s] [--vm-recovery s]\n"
      "                      [--retraction-factor f]\n"
      "                      [--horizon s] [--candidates N]\n"
      "                      [--csv report|completion|oo]\n"
      "schedulers: ic-only greedy order-preserving op-bandwidth-split\n"
      "            random lookahead\n"
      "buckets:    small uniform large\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cbs;
  try {
    const harness::cli::Args args(argc, argv, harness::cli::scenario_flags());
    if (args.has("help")) {
      print_usage();
      return 0;
    }
    const harness::Scenario scenario = harness::cli::scenario_from_args(args);
    const harness::RunResult result = harness::run_scenario(scenario);

    const std::string csv = args.get_or("csv", "");
    if (csv == "completion") {
      harness::csv::write_completion_series(std::cout, result);
      return 0;
    }
    if (csv == "oo") {
      harness::csv::write_oo_series(std::cout, result);
      return 0;
    }
    if (csv == "report") {
      harness::csv::write_reports(std::cout, {result});
      return 0;
    }
    if (!csv.empty()) {
      std::fprintf(stderr, "unknown --csv mode: %s\n", csv.c_str());
      return 2;
    }

    std::printf("scenario: %s (seed %llu, %zu batches)\n",
                scenario.name.c_str(),
                static_cast<unsigned long long>(scenario.seed),
                scenario.num_batches);
    std::printf("%s\n", sla::format_table({result.report}).c_str());
    const auto orderliness = sla::compute_orderliness(result.outcomes, 120.0);
    std::printf("ordering: %zu inversions, p95 frontier push %.1fs, "
                "max %.1fs\n",
                orderliness.inversions, orderliness.p95_frontier_push,
                orderliness.max_frontier_push);
    std::printf("tickets:  %.0f%% met (p95 lateness %.0fs, worst %.0fs)\n",
                result.tickets.hit_rate * 100.0, result.tickets.p95_lateness,
                result.tickets.max_lateness);
    std::printf("billing:  %s\n", result.cost.to_string().c_str());
    std::printf("engine:   %zu events, %.1f simulated minutes\n",
                result.events_processed, result.sim_end_time / 60.0);
    if (result.pull_backs + result.push_outs > 0) {
      std::printf("resched:  %zu pull-backs, %zu push-outs\n",
                  result.pull_backs, result.push_outs);
    }
    if (scenario.faults.enabled()) {
      std::printf("faults:   %llu crashes (%llu re-executions, %.0fs wasted), "
                  "%llu retractions, %llu outages, %.1f MB transfer lost\n",
                  static_cast<unsigned long long>(result.faults.ic_crashes +
                                                  result.faults.ec_crashes),
                  static_cast<unsigned long long>(result.faults.reexecutions),
                  result.faults.wasted_compute_seconds,
                  static_cast<unsigned long long>(result.faults.retractions),
                  static_cast<unsigned long long>(result.faults.outages),
                  result.faults.wasted_transfer_bytes / 1.0e6);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    print_usage();
    return 2;
  }
}
