// Whole-program structural rules over the declaration index.
//
// These are the contracts PR 5's fork machinery rests on, promoted from
// golden-pin-after-the-fact to machine checks (DESIGN.md §15): a silently
// missed member in a clone constructor diverges a fork without any local
// test failing, and a stored EventId that rebuild_events() forgets leaves
// an orphaned event that only the fork-equivalence suite would catch — at
// a distance. The layering rule hardens the module DAG ahead of the
// datacenter-scale hierarchical-controller refactor (ROADMAP item 1).

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "decl_index.hpp"
#include "lint.hpp"

namespace cbslint {

namespace {

constexpr std::string_view kSnapshotRule = "snapshot-complete";
constexpr std::string_view kRestoreRule = "restore-coverage";
constexpr std::string_view kLayeringRule = "layering";

/// Emits `finding` unless a matching waiver sits on its line (or directly
/// above) in the anchoring file.
void emit(std::map<std::string, SourceFile*>& files, Finding finding,
          const std::string& waiver_token, std::vector<Finding>* out) {
  const auto it = files.find(finding.rel);
  if (it != files.end()) {
    if (try_waive(*it->second, finding.line, waiver_token)) return;
    if (finding.snippet.empty() && finding.line >= 1 &&
        finding.line <= it->second->raw.size()) {
      finding.snippet = it->second->raw[finding.line - 1];
    }
  }
  out->push_back(std::move(finding));
}

/// True when `params` (space-joined tokens) contains `const <simple> &` —
/// the own-type const reference that marks a clone constructor. Joined
/// token text guarantees single spaces, so a plain substring search with
/// the leading `const ` and trailing ` &` is already whole-word.
bool takes_const_self_ref(const std::string& params,
                          const std::string& simple) {
  return params.find("const " + simple + " &") != std::string::npos;
}

/// A clone constructor: named like the class, takes `const X&` (alongside
/// the destination engine or estimator rebinds), and actually has a body
/// (an `= delete` copy ctor is the opposite of a clone ctor).
bool is_clone_ctor(const ClassDecl& cls, const MethodDecl& m) {
  return m.name == cls.simple && m.has_body && !m.is_deleted &&
         !m.is_defaulted && takes_const_self_ref(m.params, cls.simple);
}

std::string clone_mention_text(const ClassDecl& cls) {
  std::string text;
  for (const MethodDecl& m : cls.methods) {
    if (!is_clone_ctor(cls, m)) continue;
    text += m.init_list;
    text += ' ';
    text += m.body;
    text += ' ';
  }
  return text;
}

/// The text that may legitimately restore a stored EventId: every
/// rebuild_events body plus every clone-ctor init-list/body (ScenarioWorld
/// restores its batch events directly in the copy constructor).
std::string restore_coverage_text(const ClassDecl& cls) {
  std::string text;
  for (const MethodDecl& m : cls.methods) {
    if (m.name == "rebuild_events" && m.has_body) {
      text += m.body;
      text += ' ';
    }
  }
  text += clone_mention_text(cls);
  return text;
}

bool class_schedules(const ClassDecl& cls) {
  for (const MethodDecl& m : cls.methods) {
    if (!m.has_body) continue;
    if (has_token(m.body, "schedule_at") || has_token(m.body, "schedule_in") ||
        has_token(m.init_list, "schedule_at") ||
        has_token(m.init_list, "schedule_in")) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------
// snapshot-complete
// ---------------------------------------------------------------------

void check_snapshot_completeness(const DeclIndex& idx,
                                 std::map<std::string, SourceFile*>& files,
                                 std::vector<Finding>* out) {
  for (const auto& [qualified, cls] : idx.classes()) {
    if (!path_starts_with(cls.rel, "src/")) continue;
    for (const MethodDecl& ctor : cls.methods) {
      if (!is_clone_ctor(cls, ctor)) continue;
      const std::string mentions = ctor.init_list + ' ' + ctor.body;
      for (const MemberDecl& member : cls.members) {
        if (member.is_static) continue;
        if (has_token(mentions, member.name)) continue;
        emit(files,
             {cls.rel, member.line, std::string(kSnapshotRule),
              "data member '" + member.name + "' of '" + qualified +
                  "' is never mentioned in the clone constructor (" +
                  std::to_string(ctor.line) +
                  "): a fork silently diverges when a value member is "
                  "neither copied nor deliberately reset — copy it, or "
                  "waive per-member with the reason it must not cross a "
                  "fork",
              ""},
             std::string(kSnapshotRule), out);
      }
      break;  // one ctor per class is the convention; avoid double reports
    }
  }
}

// ---------------------------------------------------------------------
// restore-coverage
// ---------------------------------------------------------------------

void check_restore_coverage(const DeclIndex& idx,
                            std::map<std::string, SourceFile*>& files,
                            std::vector<Finding>* out) {
  for (const auto& [qualified, cls] : idx.classes()) {
    if (!path_starts_with(cls.rel, "src/")) continue;
    std::vector<const MemberDecl*> event_members;
    for (const MemberDecl& member : cls.members) {
      if (member.is_static) continue;
      if (has_token(member.type_text, "EventId")) {
        event_members.push_back(&member);
      }
    }
    if (event_members.empty()) continue;

    if (class_schedules(cls)) {
      const std::string coverage = restore_coverage_text(cls);
      if (coverage.empty()) {
        emit(files,
             {cls.rel, cls.line, std::string(kRestoreRule),
              "'" + qualified +
                  "' stores EventId members and schedules events but "
                  "defines no rebuild_events(SnapshotContext&) (and no "
                  "clone constructor restoring them): its pending events "
                  "would be orphaned by a fork",
              ""},
             std::string(kRestoreRule), out);
        continue;
      }
      for (const MemberDecl* member : event_members) {
        if (has_token(coverage, member->name)) continue;
        emit(files,
             {cls.rel, member->line, std::string(kRestoreRule),
              "stored event id '" + member->name + "' of '" + qualified +
                  "' is never mentioned in rebuild_events() or the clone "
                  "constructor: the event it names cannot be re-registered "
                  "across a fork (simcore/snapshot.hpp protocol)",
              ""},
             std::string(kRestoreRule), out);
      }
      continue;
    }

    // A non-scheduling holder (Link::Cold, Cluster::Machine, FaultPlan's
    // per-VM state): the ids it stores are owned by the enclosing
    // component, whose rebuild_events/clone ctor must restore them.
    const ClassDecl* outer = idx.enclosing(qualified);
    if (outer == nullptr) continue;
    const std::string coverage = restore_coverage_text(*outer);
    if (coverage.empty()) continue;  // outer is not snapshot-aware
    for (const MemberDecl* member : event_members) {
      if (has_token(coverage, member->name)) continue;
      emit(files,
           {cls.rel, member->line, std::string(kRestoreRule),
            "stored event id '" + member->name + "' of nested '" +
                qualified + "' is never mentioned in '" + outer->qualified +
                "'::rebuild_events() or its clone constructor: the event "
                "it names cannot be re-registered across a fork",
            ""},
           std::string(kRestoreRule), out);
    }
  }
}

// ---------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------

/// Module ranks encode the DAG. Equal ranks are unrelated siblings (an
/// include between them is a back-edge too); gaps leave room for future
/// layers.
int module_rank(std::string_view module) {
  if (module == "util") return 0;
  if (module == "simcore") return 10;
  if (module == "stats" || module == "linalg") return 20;
  if (module == "net" || module == "compute" || module == "workload" ||
      module == "sla") {
    return 30;
  }
  if (module == "models") return 40;
  if (module == "core") return 50;
  if (module == "harness") return 60;
  return -1;
}

std::string_view first_component(std::string_view path) {
  const std::size_t slash = path.find('/');
  return slash == std::string_view::npos ? path : path.substr(0, slash);
}

void check_layering(const DeclIndex& idx,
                    std::map<std::string, SourceFile*>& files,
                    std::vector<Finding>* out) {
  for (const IncludeEdge& edge : idx.includes()) {
    if (!path_starts_with(edge.rel, "src/")) continue;  // top layer: free
    const std::string_view from =
        first_component(std::string_view(edge.rel).substr(4));
    const std::string_view to = first_component(edge.target);
    const int from_rank = module_rank(from);
    const int to_rank = module_rank(to);
    if (from_rank < 0 || to_rank < 0) continue;  // not a project module
    if (from == to || to_rank < from_rank) continue;
    emit(files,
         {edge.rel, edge.line, std::string(kLayeringRule),
          "include of '" + edge.target + "' is a back-edge in the module "
          "DAG (" + std::string(from) + " may not depend on " +
              std::string(to) +
              "): util -> simcore -> {stats, linalg} -> {net, compute, "
              "workload, sla} -> models -> core -> harness -> "
              "tools/tests/bench/examples",
          ""},
         std::string(kLayeringRule), out);
  }
}

}  // namespace

void run_structural_rules(const DeclIndex& idx,
                          std::map<std::string, SourceFile*>& files,
                          std::vector<Finding>* out) {
  check_snapshot_completeness(idx, files, out);
  check_restore_coverage(idx, files, out);
  check_layering(idx, files, out);
}

}  // namespace cbslint
