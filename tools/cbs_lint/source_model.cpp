#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>

namespace cbslint {

std::string strip_line(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    if (in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        out += "  ";
        i += 2;
      } else {
        out += ' ';
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      // Line comment: blank the rest of the line.
      out.append(line.size() - i, ' ');
      break;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      out += "  ";
      i += 2;
      continue;
    }
    if (c == '"' || (c == '\'' && (i == 0 || !is_ident_char(line[i - 1])))) {
      // The is_ident_char guard keeps C++14 digit separators (1'000'000)
      // from opening a phantom char literal.
      const char quote = c;
      out += ' ';
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out += "  ";
          i += 2;
          continue;
        }
        const bool closing = line[i] == quote;
        out += ' ';
        ++i;
        if (closing) break;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

std::optional<Waiver> parse_waiver(const std::string& raw, std::size_t lineno,
                                   std::string* error) {
  static constexpr std::string_view kMarker = "cbs-lint:";
  const std::size_t at = raw.find(kMarker);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + kMarker.size();
  while (i < raw.size() && std::isspace(static_cast<unsigned char>(raw[i]))) {
    ++i;
  }
  const std::size_t tok_begin = i;
  while (i < raw.size() &&
         (std::isalnum(static_cast<unsigned char>(raw[i])) || raw[i] == '-')) {
    ++i;
  }
  std::string token = raw.substr(tok_begin, i - tok_begin);
  static constexpr std::string_view kSuffix = "-ok";
  if (token.size() <= kSuffix.size() ||
      token.compare(token.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    *error = "malformed cbs-lint marker (expected '<token>-ok(reason)')";
    return std::nullopt;
  }
  token.resize(token.size() - kSuffix.size());
  if (i >= raw.size() || raw[i] != '(') {
    *error = "waiver '" + token + "-ok' is missing its (reason)";
    return std::nullopt;
  }
  const std::size_t close = raw.find(')', i);
  if (close == std::string::npos) {
    *error = "waiver '" + token + "-ok' has an unterminated (reason";
    return std::nullopt;
  }
  std::string reason = raw.substr(i + 1, close - i - 1);
  const auto not_space = [](unsigned char c) { return !std::isspace(c); };
  if (std::find_if(reason.begin(), reason.end(), not_space) == reason.end()) {
    *error = "waiver '" + token + "-ok' has an empty reason";
    return std::nullopt;
  }
  Waiver w;
  w.line = lineno;
  w.token = std::move(token);
  w.reason = std::move(reason);
  return w;
}

std::optional<SourceFile> load_file(const std::filesystem::path& abs,
                                    const std::filesystem::path& rel,
                                    std::vector<std::string>* errors) {
  std::ifstream in(abs);
  if (!in) {
    errors->push_back("cannot read " + abs.string());
    return std::nullopt;
  }
  SourceFile f;
  f.path = rel;
  bool in_block = false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.code.push_back(strip_line(line, in_block));
    std::string err;
    if (auto w = parse_waiver(line, f.raw.size() + 1, &err)) {
      f.waivers.push_back(std::move(*w));
    } else if (!err.empty()) {
      errors->push_back(rel.generic_string() + ":" +
                        std::to_string(f.raw.size() + 1) + ": " + err);
    }
    f.raw.push_back(std::move(line));
  }
  return f;
}

bool try_waive(SourceFile& f, std::size_t lineno, const std::string& token) {
  for (Waiver& w : f.waivers) {
    if (w.token == token && (w.line == lineno || w.line + 1 == lineno)) {
      w.used = true;
      return true;
    }
  }
  return false;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool has_token(const std::string& code, std::string_view token) {
  std::size_t at = 0;
  while ((at = code.find(token, at)) != std::string::npos) {
    const bool left_ok = at == 0 || !is_ident_char(code[at - 1]);
    const std::size_t after = at + token.size();
    const bool right_ok = after >= code.size() || !is_ident_char(code[after]);
    if (left_ok && right_ok) return true;
    at = after;
  }
  return false;
}

bool has_call(const std::string& code, std::string_view token) {
  std::size_t at = 0;
  while ((at = code.find(token, at)) != std::string::npos) {
    const std::size_t after = at + token.size();
    const bool left_ident = at > 0 && is_ident_char(code[at - 1]);
    const bool member =
        (at >= 1 && code[at - 1] == '.') ||
        (at >= 2 && code[at - 2] == '-' && code[at - 1] == '>');
    std::size_t j = after;
    while (j < code.size() && code[j] == ' ') ++j;
    const bool called = j < code.size() && code[j] == '(';
    if (!left_ident && !member && called) return true;
    at = after;
  }
  return false;
}

bool has_member_or_free_call(const std::string& code, std::string_view token) {
  std::size_t at = 0;
  while ((at = code.find(token, at)) != std::string::npos) {
    const std::size_t after = at + token.size();
    const bool left_ok = at == 0 || !is_ident_char(code[at - 1]);
    std::size_t j = after;
    while (j < code.size() && code[j] == ' ') ++j;
    if (left_ok && j < code.size() && code[j] == '(') return true;
    at = after;
  }
  return false;
}

bool path_starts_with(const std::string& rel, std::string_view prefix) {
  return rel.size() >= prefix.size() &&
         rel.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace cbslint
