// cbs_lint — shared source model for the cloudburst invariant checker.
//
// The simulator's SLA numbers are only reproducible because every run is
// bit-deterministic at a fixed seed, and several PRs made that determinism
// rest on conventions a compiler cannot see: deterministic-order containers
// in sim state, seeded randomness only, move-only `UniqueFunction` callbacks
// in the engine layers, `double` for time/size arithmetic, opaque
// generation-checked `EventId` handles — and, since the fork/snapshot work,
// the clone-constructor and `rebuild_events()` contracts that make a world
// deep-copyable mid-run. clang-tidy covers the generic bug classes; this
// tool turns the project-specific rules into machine checks so they survive
// refactors without hand auditing.
//
// Design constraints: no libclang (the container only ships a GCC
// toolchain). The per-line rules are a comment/string-aware token scanner;
// the structural rules (decl_index.hpp) sit on a deliberately lightweight
// declaration front-end that understands just enough C++ — namespaces,
// (nested/templated) classes, data members with default initializers,
// method bodies, include directives — to check whole-program contracts.
// Anything subtler is left to clang-tidy or review.
//
// Waiver syntax, on the offending line or the line directly above:
//   // cbs-lint: <token>-ok(reason)
// The reason is mandatory; a waiver that suppresses nothing, or that names
// a rule that no longer exists, is itself an error (rule `stale-waiver`),
// so waivers cannot outlive their code or their rule.
//
// Exit codes: 0 clean, 1 violations found, 2 usage/filesystem error.

#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cbslint {

// ---------------------------------------------------------------------
// Source model: one file, split into lines, each with a "code view" in
// which comments and string/character literals are blanked out so token
// searches cannot match inside them. Waivers are parsed from the comment
// text that the code view discards.
// ---------------------------------------------------------------------

struct Waiver {
  std::size_t line = 0;  ///< 1-based line the waiver comment sits on
  std::string token;     ///< e.g. "nondeterministic" for ...-ok(...)
  std::string reason;
  bool used = false;  ///< consumed by at least one suppression
};

struct SourceFile {
  std::filesystem::path path;     ///< as reported (relative to root)
  std::vector<std::string> raw;   ///< original lines
  std::vector<std::string> code;  ///< comment/string-blanked lines
  std::vector<Waiver> waivers;
};

/// One reported finding. `rule` is the bracketed id; `snippet` is the raw
/// source line it anchors to (empty for file/class-level findings).
struct Finding {
  std::string rel;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string snippet;
};

// --- source_model.cpp --------------------------------------------------

/// Blanks comments and string/char literals, preserving line structure.
/// `in_block_comment` carries /* ... */ state across lines.
std::string strip_line(const std::string& line, bool& in_block_comment);

/// Parses `cbs-lint: <token>-ok(reason)` out of a raw line (typically a
/// comment). Returns nullopt when the line carries no waiver; a malformed
/// marker sets *error instead.
std::optional<Waiver> parse_waiver(const std::string& raw, std::size_t lineno,
                                   std::string* error);

/// Loads and strips one file. Waiver-syntax errors are appended to
/// *errors; an unreadable file returns nullopt.
std::optional<SourceFile> load_file(const std::filesystem::path& abs,
                                    const std::filesystem::path& rel,
                                    std::vector<std::string>* errors);

/// A violation on line N is suppressed by a matching waiver on line N or
/// N-1 (comment directly above).
bool try_waive(SourceFile& f, std::size_t lineno, const std::string& token);

// --- Token matching helpers (code view only) ---------------------------

bool is_ident_char(char c);

/// True when `token` occurs in `code` as a whole identifier (neighbours
/// are not identifier characters).
bool has_token(const std::string& code, std::string_view token);

/// True when `token` occurs as an identifier immediately followed by `(`
/// (optionally spaced) and is NOT a member access (`.token(` /
/// `->token(`), so free/std calls like `rand()` match but `obj.time()`
/// does not.
bool has_call(const std::string& code, std::string_view token);

/// True when `token` occurs followed by `(` (optionally spaced),
/// including member calls (`sim_.cancel(`), which `has_call` deliberately
/// excludes. Used by the event-churn scan.
bool has_member_or_free_call(const std::string& code, std::string_view token);

bool path_starts_with(const std::string& rel, std::string_view prefix);

// --- token_rules.cpp ---------------------------------------------------

/// One per-line rule: `applies` scopes it by path, `matches` fires on a
/// stripped code line.
struct Rule {
  std::string id;            ///< printed as [id]
  std::string waiver_token;  ///< waived via `// cbs-lint: <token>-ok(...)`
  std::string message;
  bool (*applies)(const std::string& rel);
  bool (*matches)(const std::string& code);
};

const std::vector<Rule>& token_rules();

/// Runs every per-line rule (including the file-level event-churn scan)
/// over one file, appending unwaived violations to *out.
void scan_token_rules(SourceFile& f, std::vector<Finding>* out);

/// Every waiver token any rule (per-line or structural) accepts. A waiver
/// naming anything else is reported as [stale-waiver].
const std::vector<std::string>& known_waiver_tokens();

}  // namespace cbslint
