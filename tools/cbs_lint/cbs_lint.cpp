// cbs_lint — determinism-and-safety invariant checker for the cloudburst
// tree.
//
// The simulator's SLA numbers are only reproducible because every run is
// bit-deterministic at a fixed seed, and the hot-path engine (PR 3) made
// that determinism rest on conventions a compiler cannot see: iteration
// only over deterministic-order containers in sim state, no ambient
// randomness or wall-clock reads inside the model, move-only
// `UniqueFunction` callbacks instead of `std::function` in the engine
// layers, `double` (never `float`) for time/size arithmetic, and opaque
// generation-checked `EventId` handles. clang-tidy covers the generic
// bug classes; this tool turns the project-specific rules into machine
// checks so they survive refactors without hand auditing.
//
// Design constraints: no libclang (the container only ships a GCC
// toolchain), so the checker is a comment/string-aware token scanner over
// the source tree. That is deliberately dumb — rules are written so that
// a token match IS a violation, and anything subtler is left to
// clang-tidy or review.
//
// Usage:
//   cbs_lint [--root <dir>] [--list-waivers | --fix-waivers] [--quiet]
//
// Waiver syntax, on the offending line or the line directly above:
//   // cbs-lint: <token>-ok(reason)
// e.g.  // cbs-lint: nondeterministic-ok(lookup-only table, never iterated)
// The reason is mandatory; a waiver that suppresses nothing is itself an
// error (rule `stale-waiver`), so waivers cannot outlive their code.
//
// Exit codes: 0 clean, 1 violations found, 2 usage/filesystem error.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------
// Source model: one file, split into lines, each with a "code view" in
// which comments and string/character literals are blanked out so token
// searches cannot match inside them. Waivers are parsed from the comment
// text that the code view discards.
// ---------------------------------------------------------------------

struct Waiver {
  std::size_t line = 0;     ///< 1-based line the waiver comment sits on
  std::string token;        ///< e.g. "nondeterministic" for ...-ok(...)
  std::string reason;
  bool used = false;        ///< consumed by at least one suppression
};

struct SourceFile {
  fs::path path;                    ///< as reported (relative to root)
  std::vector<std::string> raw;     ///< original lines
  std::vector<std::string> code;    ///< comment/string-blanked lines
  std::vector<Waiver> waivers;
};

bool is_ident_char(char c);

/// Blanks comments and string/char literals, preserving line structure.
/// `in_block_comment` carries /* ... */ state across lines.
std::string strip_line(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    if (in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        out += "  ";
        i += 2;
      } else {
        out += ' ';
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      // Line comment: blank the rest of the line.
      out.append(line.size() - i, ' ');
      break;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      out += "  ";
      i += 2;
      continue;
    }
    if (c == '"' || (c == '\'' && (i == 0 || !is_ident_char(line[i - 1])))) {
      // The is_ident_char guard keeps C++14 digit separators (1'000'000)
      // from opening a phantom char literal.
      const char quote = c;
      out += ' ';
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out += "  ";
          i += 2;
          continue;
        }
        const bool closing = line[i] == quote;
        out += ' ';
        ++i;
        if (closing) break;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

/// Parses `cbs-lint: <token>-ok(reason)` out of a raw line (typically a
/// comment). Returns nullopt when the line carries no waiver.
std::optional<Waiver> parse_waiver(const std::string& raw, std::size_t lineno,
                                   std::string* error) {
  static constexpr std::string_view kMarker = "cbs-lint:";
  const std::size_t at = raw.find(kMarker);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + kMarker.size();
  while (i < raw.size() && std::isspace(static_cast<unsigned char>(raw[i]))) ++i;
  const std::size_t tok_begin = i;
  while (i < raw.size() &&
         (std::isalnum(static_cast<unsigned char>(raw[i])) || raw[i] == '-')) {
    ++i;
  }
  std::string token = raw.substr(tok_begin, i - tok_begin);
  static constexpr std::string_view kSuffix = "-ok";
  if (token.size() <= kSuffix.size() ||
      token.compare(token.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    *error = "malformed cbs-lint marker (expected '<token>-ok(reason)')";
    return std::nullopt;
  }
  token.resize(token.size() - kSuffix.size());
  if (i >= raw.size() || raw[i] != '(') {
    *error = "waiver '" + token + "-ok' is missing its (reason)";
    return std::nullopt;
  }
  const std::size_t close = raw.find(')', i);
  if (close == std::string::npos) {
    *error = "waiver '" + token + "-ok' has an unterminated (reason";
    return std::nullopt;
  }
  std::string reason = raw.substr(i + 1, close - i - 1);
  const auto not_space = [](unsigned char c) { return !std::isspace(c); };
  if (std::find_if(reason.begin(), reason.end(), not_space) == reason.end()) {
    *error = "waiver '" + token + "-ok' has an empty reason";
    return std::nullopt;
  }
  Waiver w;
  w.line = lineno;
  w.token = std::move(token);
  w.reason = std::move(reason);
  return w;
}

// ---------------------------------------------------------------------
// Token matching helpers (code view only).
// ---------------------------------------------------------------------

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `token` occurs in `code` as a whole identifier (neighbours are
/// not identifier characters). `allow_scope_prefix` keeps `std::rand`
/// matching on "rand" while still rejecting `my_rand`.
bool has_token(const std::string& code, std::string_view token) {
  std::size_t at = 0;
  while ((at = code.find(token, at)) != std::string::npos) {
    const bool left_ok = at == 0 || !is_ident_char(code[at - 1]);
    const std::size_t after = at + token.size();
    const bool right_ok = after >= code.size() || !is_ident_char(code[after]);
    if (left_ok && right_ok) return true;
    at = after;
  }
  return false;
}

/// True when `token` occurs as an identifier immediately followed by `(`
/// (optionally spaced) and is NOT a member access (`.token(` / `->token(`),
/// so free/std calls like `rand()` match but `obj.time()` does not.
bool has_call(const std::string& code, std::string_view token) {
  std::size_t at = 0;
  while ((at = code.find(token, at)) != std::string::npos) {
    const std::size_t after = at + token.size();
    const bool left_ident = at > 0 && is_ident_char(code[at - 1]);
    const bool member =
        (at >= 1 && code[at - 1] == '.') ||
        (at >= 2 && code[at - 2] == '-' && code[at - 1] == '>');
    std::size_t j = after;
    while (j < code.size() && code[j] == ' ') ++j;
    const bool called = j < code.size() && code[j] == '(';
    if (!left_ident && !member && called) return true;
    at = after;
  }
  return false;
}

/// True when `token` occurs followed by `(` (optionally spaced), including
/// member calls (`sim_.cancel(`), which `has_call` deliberately excludes.
/// Used by the event-churn scan, where the calls of interest are member
/// calls on the simulation or on event-owning components.
bool has_member_or_free_call(const std::string& code, std::string_view token) {
  std::size_t at = 0;
  while ((at = code.find(token, at)) != std::string::npos) {
    const std::size_t after = at + token.size();
    const bool left_ok = at == 0 || !is_ident_char(code[at - 1]);
    std::size_t j = after;
    while (j < code.size() && code[j] == ' ') ++j;
    if (left_ok && j < code.size() && code[j] == '(') return true;
    at = after;
  }
  return false;
}

/// True when the line constructs an EventId from a raw value: the token
/// `EventId` directly followed by a brace initializer with non-empty
/// contents. `EventId id{}` (named variable) and `EventId{}` (null handle)
/// are fine; `EventId{42}` forges a handle and bypasses the generation
/// check that makes cancellation safe.
bool has_raw_eventid(const std::string& code) {
  static constexpr std::string_view kToken = "EventId";
  std::size_t at = 0;
  while ((at = code.find(kToken, at)) != std::string::npos) {
    const std::size_t after = at + kToken.size();
    const bool left_ok = at == 0 || !is_ident_char(code[at - 1]);
    std::size_t j = after;
    while (j < code.size() && code[j] == ' ') ++j;
    if (left_ok && j < code.size() && code[j] == '{') {
      const std::size_t close = code.find('}', j);
      const std::string_view inside =
          close == std::string::npos
              ? std::string_view(code).substr(j + 1)
              : std::string_view(code).substr(j + 1, close - j - 1);
      const bool nonempty =
          std::any_of(inside.begin(), inside.end(), [](unsigned char c) {
            return !std::isspace(c);
          });
      if (nonempty) return true;
    }
    at = after;
  }
  return false;
}

// ---------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------

bool path_starts_with(const std::string& rel, std::string_view prefix) {
  return rel.size() >= prefix.size() &&
         rel.compare(0, prefix.size(), prefix) == 0;
}

struct Rule {
  std::string id;            ///< printed as [id]
  std::string waiver_token;  ///< waived via `// cbs-lint: <token>-ok(...)`
  std::string message;
  bool (*applies)(const std::string& rel);
  bool (*matches)(const std::string& code);
};

bool in_engine_layers(const std::string& rel) {
  return path_starts_with(rel, "src/simcore/") ||
         path_starts_with(rel, "src/core/");
}
/// The container-determinism rule also covers src/models/: estimator state
/// (QRSM, hazard) is iterated when scoring and cloned across forks, so it
/// must be deterministic-order just like engine state.
bool in_deterministic_state_layers(const std::string& rel) {
  return in_engine_layers(rel) || path_starts_with(rel, "src/models/");
}
bool in_src_outside_harness(const std::string& rel) {
  return path_starts_with(rel, "src/") &&
         !path_starts_with(rel, "src/harness/");
}
bool in_src(const std::string& rel) { return path_starts_with(rel, "src/"); }
/// The event-churn rule watches the layers that own per-item timers: the
/// link/transfer core and the scheduler/controller layer above it.
bool in_event_hot_layers(const std::string& rel) {
  return path_starts_with(rel, "src/net/") ||
         path_starts_with(rel, "src/core/");
}
bool in_src_outside_simcore(const std::string& rel) {
  return path_starts_with(rel, "src/") &&
         !path_starts_with(rel, "src/simcore/");
}

/// `std::function` specifically — not members or locals named `function`,
/// and not `<functional>` includes (the header is fine when every use is
/// waived).
bool matches_std_function(const std::string& code) {
  std::size_t at = 0;
  while ((at = code.find("function", at)) != std::string::npos) {
    const bool qualified = at >= 5 && code.compare(at - 5, 5, "std::") == 0;
    const std::size_t after = at + std::string_view("function").size();
    const bool right_ok = after >= code.size() || !is_ident_char(code[after]);
    if (qualified && right_ok) return true;
    at = after;
  }
  return false;
}

/// True when a sim-component type name is followed by `*` (optionally
/// spaced / const-qualified): a raw component pointer. Pointer identity
/// does not survive a fork — the snapshot protocol (simcore/snapshot.hpp)
/// requires components to hold rebindable references, owned value state,
/// or id/slot handles, never raw peer pointers, whether in member state or
/// captured into event closures.
bool has_component_pointer(const std::string& code) {
  static constexpr std::string_view kComponents[] = {
      "Simulation",        "EventQueue",     "Link",
      "Cluster",           "JobStore",       "MapReduceRuntime",
      "FaultPlan",         "BeliefState",    "TransferQueueSet",
      "BandwidthEstimator", "ThreadTuner",   "Scheduler",
      "ProcessingTimeEstimator",
  };
  for (const std::string_view token : kComponents) {
    std::size_t at = 0;
    while ((at = code.find(token, at)) != std::string::npos) {
      const std::size_t after = at + token.size();
      const bool left_ok = at == 0 || !is_ident_char(code[at - 1]);
      const bool right_ok = after >= code.size() || !is_ident_char(code[after]);
      if (!left_ok || !right_ok) {
        at = after;
        continue;
      }
      std::size_t j = after;
      while (j < code.size() && code[j] == ' ') ++j;
      if (code.compare(j, 5, "const") == 0 &&
          (j + 5 >= code.size() || !is_ident_char(code[j + 5]))) {
        j += 5;
        while (j < code.size() && code[j] == ' ') ++j;
      }
      if (j < code.size() && code[j] == '*') return true;
      at = after;
    }
  }
  return false;
}

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"nondeterministic-container", "nondeterministic",
       "hash-ordered container in sim state: simcore/core/models iterate "
       "their tables, so only deterministic-order containers (FlatMap, "
       "std::map, vector) are allowed",
       in_deterministic_state_layers,
       [](const std::string& code) {
         return has_token(code, "unordered_map") ||
                has_token(code, "unordered_set") ||
                has_token(code, "unordered_multimap") ||
                has_token(code, "unordered_multiset");
       }},
      {"wall-clock", "wall-clock",
       "ambient randomness / wall-clock read inside the model: all "
       "stochastic inputs must flow from the seeded RngStream and all time "
       "from Simulation::now()",
       in_src_outside_harness,
       [](const std::string& code) {
         return has_call(code, "rand") || has_call(code, "srand") ||
                has_call(code, "time") || has_call(code, "clock") ||
                has_call(code, "gettimeofday") ||
                has_call(code, "clock_gettime") ||
                has_token(code, "random_device") ||
                has_token(code, "system_clock") ||
                has_token(code, "steady_clock") ||
                has_token(code, "high_resolution_clock");
       }},
      {"std-function", "std-function",
       "std::function in the engine layers: schedule/hook paths must use "
       "the move-only, SBO cbs::sim::UniqueFunction (simcore/callback.hpp)",
       in_engine_layers, matches_std_function},
      {"float-arithmetic", "float",
       "float in model arithmetic: times and sizes are double end-to-end; "
       "float rounding drifts fixed-seed outputs across compilers",
       in_src,
       [](const std::string& code) { return has_token(code, "float"); }},
      {"eventid-raw", "eventid",
       "EventId constructed from a raw value: handles must come from "
       "schedule_at/schedule_in so cancel()'s generation check stays sound",
       in_src_outside_simcore, has_raw_eventid},
      {"event-churn", "event-churn",
       "cancel + schedule pair inside a loop body: N cancels + N schedules "
       "per pass is the per-item timer churn the data-oriented link core "
       "removed (DESIGN.md §14) — batch the pass and re-arm ONE timer "
       "after the loop, or waive with the reason it cannot be batched",
       in_event_hot_layers,
       // File-level rule: matched by scan_event_churn (loop-body tracking
       // needs cross-line state), not per line. This entry registers the
       // id, message, scope and waiver token.
       [](const std::string&) { return false; }},
      {"snapshot-unsafe", "snapshot",
       "raw pointer to a sim component in the engine layers: pointer "
       "identity does not survive a fork — hold a rebindable reference, "
       "owned value state, or an id/slot handle restored via "
       "SnapshotContext (simcore/snapshot.hpp)",
       in_engine_layers, has_component_pointer},
  };
  return kRules;
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------

struct Violation {
  std::string rel;
  std::size_t line;
  const Rule* rule;
  std::string source_line;
};

struct Options {
  fs::path root = ".";
  bool list_waivers = false;
  bool quiet = false;
};

bool should_scan(const fs::path& rel) {
  const std::string s = rel.generic_string();
  // The negative-lint fixtures deliberately violate every rule; they are
  // scanned only when a fixture directory is passed as --root directly.
  if (s.find("tests/lint/fixtures") != std::string::npos) return false;
  // The checker documents the waiver grammar in its own comments, which
  // would parse as malformed/stale waivers.
  if (s.find("tools/cbs_lint") != std::string::npos) return false;
  if (path_starts_with(s, "build")) return false;
  const std::string ext = rel.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::optional<SourceFile> load(const fs::path& abs, const fs::path& rel,
                               std::vector<std::string>* errors) {
  std::ifstream in(abs);
  if (!in) {
    errors->push_back("cannot read " + abs.string());
    return std::nullopt;
  }
  SourceFile f;
  f.path = rel;
  bool in_block = false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.code.push_back(strip_line(line, in_block));
    std::string err;
    if (auto w = parse_waiver(line, f.raw.size() + 1, &err)) {
      f.waivers.push_back(std::move(*w));
    } else if (!err.empty()) {
      errors->push_back(rel.generic_string() + ":" +
                        std::to_string(f.raw.size() + 1) + ": " + err);
    }
    f.raw.push_back(std::move(line));
  }
  return f;
}

/// A violation on line N is suppressed by a matching waiver on line N or
/// N-1 (comment directly above).
bool try_waive(SourceFile& f, std::size_t lineno, const std::string& token) {
  for (Waiver& w : f.waivers) {
    if (w.token == token && (w.line == lineno || w.line + 1 == lineno)) {
      w.used = true;
      return true;
    }
  }
  return false;
}

/// File-level scan for the event-churn rule: a `for`/`while` body that
/// both cancels an event and schedules one is re-arming timers per item —
/// the pattern batched water-filling exists to avoid. Tracks brace depth
/// across lines; a loop frame opens at the `{` following a loop keyword
/// and closes when depth returns to its entry level. The violation is
/// reported at the line where the pair completes (second half observed),
/// once per loop, and is waivable there like any per-line rule.
///
/// Deliberately dumb, like the rest of the checker: brace-less loop
/// bodies are not tracked, and a `;` at paren depth zero clears a pending
/// loop header so `do { ... } while (cond);` tails and empty `while`
/// statements do not open phantom frames.
void scan_event_churn(SourceFile& f, const Rule& rule,
                      std::vector<Violation>* out) {
  struct LoopFrame {
    int entry_depth = 0;           ///< brace depth inside the loop body
    std::size_t cancel_line = 0;   ///< first cancel seen (1-based), 0 = none
    std::size_t schedule_line = 0;
    bool reported = false;
  };
  std::vector<LoopFrame> frames;
  int depth = 0;
  int parens = 0;
  bool pending_loop = false;  // loop keyword seen, body `{` not yet
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& code = f.code[li];
    if (has_token(code, "for") || has_token(code, "while")) {
      pending_loop = true;
    }
    for (const char c : code) {
      if (c == '{') {
        ++depth;
        if (pending_loop) {
          LoopFrame fr;
          fr.entry_depth = depth;
          frames.push_back(fr);
          pending_loop = false;
        }
      } else if (c == '}') {
        --depth;
        while (!frames.empty() && depth < frames.back().entry_depth) {
          frames.pop_back();
        }
      } else if (c == '(') {
        ++parens;
      } else if (c == ')') {
        --parens;
      } else if (c == ';' && parens == 0) {
        pending_loop = false;
      }
    }
    if (frames.empty()) continue;
    const bool cancels = has_member_or_free_call(code, "cancel");
    const bool schedules = has_member_or_free_call(code, "schedule_in") ||
                           has_member_or_free_call(code, "schedule_at");
    if (!cancels && !schedules) continue;
    for (LoopFrame& fr : frames) {
      if (cancels && fr.cancel_line == 0) fr.cancel_line = li + 1;
      if (schedules && fr.schedule_line == 0) fr.schedule_line = li + 1;
      if (!fr.reported && fr.cancel_line != 0 && fr.schedule_line != 0) {
        fr.reported = true;
        if (!try_waive(f, li + 1, rule.waiver_token)) {
          out->push_back(
              {f.path.generic_string(), li + 1, &rule, f.raw[li]});
        }
      }
    }
  }
}

int run(const Options& opt) {
  std::vector<std::string> errors;
  std::vector<SourceFile> files;

  const std::vector<std::string> top_dirs = {"src", "tools", "bench", "tests",
                                             "examples"};
  std::vector<fs::path> paths;
  for (const auto& dir : top_dirs) {
    const fs::path base = opt.root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(base, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) {
        errors.push_back("walk failed under " + base.string() + ": " +
                         ec.message());
        break;
      }
      if (!it->is_regular_file()) continue;
      const fs::path rel = fs::relative(it->path(), opt.root, ec);
      if (!ec && should_scan(rel)) paths.push_back(rel);
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic report order

  for (const fs::path& rel : paths) {
    if (auto f = load(opt.root / rel, rel, &errors)) {
      files.push_back(std::move(*f));
    }
  }

  // Validate waiver tokens against the rule table up front, so a typo like
  // `nondeterminstic-ok` fails loudly instead of silently not waiving.
  for (const SourceFile& f : files) {
    for (const Waiver& w : f.waivers) {
      const bool known =
          std::any_of(rules().begin(), rules().end(),
                      [&](const Rule& r) { return r.waiver_token == w.token; });
      if (!known) {
        errors.push_back(f.path.generic_string() + ":" +
                         std::to_string(w.line) + ": unknown waiver token '" +
                         w.token + "-ok'");
      }
    }
  }

  std::vector<Violation> violations;
  for (SourceFile& f : files) {
    const std::string rel = f.path.generic_string();
    for (const Rule& rule : rules()) {
      if (!rule.applies(rel)) continue;
      if (rule.id == "event-churn") {
        scan_event_churn(f, rule, &violations);
        continue;
      }
      for (std::size_t i = 0; i < f.code.size(); ++i) {
        if (!rule.matches(f.code[i])) continue;
        if (try_waive(f, i + 1, rule.waiver_token)) continue;
        violations.push_back({rel, i + 1, &rule, f.raw[i]});
      }
    }
  }

  // Stale waivers: a waiver that suppressed nothing is dead weight that
  // would silently re-authorize a future violation — treat it as an error.
  for (const SourceFile& f : files) {
    for (const Waiver& w : f.waivers) {
      if (!w.used) {
        errors.push_back(f.path.generic_string() + ":" +
                         std::to_string(w.line) + ": [stale-waiver] waiver '" +
                         w.token + "-ok(" + w.reason +
                         ")' suppresses nothing — delete it");
      }
    }
  }

  if (opt.list_waivers) {
    std::size_t count = 0;
    for (const SourceFile& f : files) {
      for (const Waiver& w : f.waivers) {
        if (!w.used) continue;
        std::cout << f.path.generic_string() << ":" << w.line << ": ["
                  << w.token << "-ok] " << w.reason << "\n";
        ++count;
      }
    }
    std::cout << "cbs_lint: " << count << " active waiver(s)\n";
  }

  for (const Violation& v : violations) {
    std::cout << v.rel << ":" << v.line << ": [" << v.rule->id << "] "
              << v.rule->message << "\n";
    if (!opt.quiet) std::cout << "    " << v.source_line << "\n";
  }
  for (const std::string& e : errors) std::cout << e << "\n";

  if (!violations.empty() || !errors.empty()) {
    std::cout << "cbs_lint: FAILED — " << violations.size()
              << " violation(s), " << errors.size() << " error(s) across "
              << files.size() << " scanned file(s)\n";
    return 1;
  }
  if (!opt.list_waivers) {
    std::cout << "cbs_lint: OK — " << files.size()
              << " file(s) clean\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--list-waivers" || arg == "--fix-waivers") {
      // --fix-waivers is the review spelling: print every active waiver
      // (file, line, rule, reason) so they can be re-justified or removed.
      opt.list_waivers = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: cbs_lint [--root <dir>] [--list-waivers|"
                   "--fix-waivers] [--quiet]\n";
      return 0;
    } else {
      std::cerr << "cbs_lint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }
  std::error_code ec;
  if (!fs::is_directory(opt.root, ec)) {
    std::cerr << "cbs_lint: --root " << opt.root << " is not a directory\n";
    return 2;
  }
  return run(opt);
}
