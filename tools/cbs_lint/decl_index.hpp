// Lightweight, dependency-free C++ declaration front-end for cbs_lint.
//
// This is NOT a C++ parser. It is a scope-tracking token scanner that
// extracts exactly what the whole-program structural rules need:
//
//   * every class/struct in the tree (including nested classes and class
//     templates), with a per-class member table — name, type text,
//     static/reference/pointer-ness, default member initializer — and
//     every method's parameter list, constructor init-list and body text;
//   * out-of-line member definitions (`X::Y::f(...) { ... }`), attached
//     back to their class so "does this class call schedule_at?" and
//     "does rebuild_events mention this member?" are whole-program
//     questions, not per-header ones;
//   * the project include graph (quoted includes only).
//
// Parsing philosophy, same as the rest of the checker: deliberately dumb
// and conservative. Constructs it cannot classify (function pointers,
// exotic declarators, macro-generated members) fall out of the member
// table rather than producing wrong entries, so structural rules can miss
// a member but will not hallucinate one.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint.hpp"

namespace cbslint {

/// One non-function declaration inside a class body.
struct MemberDecl {
  std::string name;
  std::string type_text;     ///< tokens left of the name, space-joined
  std::string default_init;  ///< text after `=` / inside `{...}`, or empty
  std::size_t line = 0;      ///< 1-based, in the declaring file
  bool is_static = false;
  bool is_reference = false;  ///< `&` in the declarator's type
  bool is_pointer = false;    ///< `*` in the declarator's type
  bool has_default_init = false;
};

/// One method declaration or definition (in-class or out-of-line). An
/// in-class pure declaration has `has_body == false`; its out-of-line
/// definition appears as a second record carrying the body.
struct MethodDecl {
  std::string name;       ///< `Link` for ctors, `~Link` for dtors
  std::string params;     ///< parameter-list tokens, space-joined
  std::string init_list;  ///< ctor init-list tokens (may be empty)
  std::string body;       ///< body tokens (empty when !has_body)
  std::size_t line = 0;
  bool has_body = false;
  bool is_deleted = false;
  bool is_defaulted = false;
};

struct ClassDecl {
  std::string qualified;  ///< e.g. "cbs::net::Link::Cold"
  std::string simple;     ///< e.g. "Cold"
  std::string rel;        ///< file declaring the class body
  std::size_t line = 0;
  bool is_template = false;
  std::vector<MemberDecl> members;
  std::vector<MethodDecl> methods;
};

/// One quoted `#include "target"` directive.
struct IncludeEdge {
  std::string rel;  ///< including file
  std::size_t line = 0;
  std::string target;  ///< include path as written
};

/// An out-of-line definition not yet attached to its class.
struct OutOfLineDef {
  std::string ns;                       ///< enclosing namespace, "a::b"
  std::vector<std::string> class_path;  ///< qualifier chain before the name
  MethodDecl method;
  std::string rel;
};

/// Everything the front-end extracted from one file. Produced per file
/// (in parallel), merged into a DeclIndex afterwards.
struct ParsedFile {
  std::vector<ClassDecl> classes;
  std::vector<OutOfLineDef> defs;
  std::vector<IncludeEdge> includes;
};

ParsedFile parse_file(const SourceFile& f);

/// The whole-program view: classes keyed by qualified name, with
/// out-of-line bodies folded into their class's method list.
class DeclIndex {
 public:
  /// Merges per-file results. Files must be added in deterministic order;
  /// unresolvable out-of-line definitions are dropped silently (free
  /// functions, template specializations — nothing the rules need).
  void build(std::vector<ParsedFile> parsed);

  [[nodiscard]] const std::map<std::string, ClassDecl>& classes() const {
    return classes_;
  }
  [[nodiscard]] const std::vector<IncludeEdge>& includes() const {
    return includes_;
  }

  /// The enclosing class of `qualified`, or nullptr (for bubble-up rules
  /// on nested classes).
  [[nodiscard]] const ClassDecl* enclosing(const std::string& qualified) const;

 private:
  std::map<std::string, ClassDecl> classes_;
  std::vector<IncludeEdge> includes_;
};

// --- structural_rules.cpp ----------------------------------------------

/// The three whole-program rule families (DESIGN.md §15):
///   snapshot-complete — every non-static data member of a class with a
///     clone constructor must be mentioned in that constructor;
///   restore-coverage — every stored EventId of a scheduling class must be
///     re-registered in rebuild_events() (or the clone ctor body);
///   layering — the include DAG `util → simcore → {stats, linalg} →
///     {net, compute, workload, sla} → models → core → harness →
///     tools/tests/bench/examples` admits no back-edges.
/// Waivers are consumed from `files` (keyed by generic rel path) at the
/// line each finding anchors to.
void run_structural_rules(const DeclIndex& idx,
                          std::map<std::string, SourceFile*>& files,
                          std::vector<Finding>* out);

}  // namespace cbslint
