// Per-line (and per-loop) rules: written so that a token match IS a
// violation; anything subtler lives in the structural rules or clang-tidy.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace cbslint {

namespace {

bool in_engine_layers(const std::string& rel) {
  return path_starts_with(rel, "src/simcore/") ||
         path_starts_with(rel, "src/core/");
}
/// The container-determinism rule also covers src/models/: estimator state
/// (QRSM, hazard) is iterated when scoring and cloned across forks, so it
/// must be deterministic-order just like engine state.
bool in_deterministic_state_layers(const std::string& rel) {
  return in_engine_layers(rel) || path_starts_with(rel, "src/models/");
}
bool in_src_outside_harness(const std::string& rel) {
  return path_starts_with(rel, "src/") &&
         !path_starts_with(rel, "src/harness/");
}
bool in_src(const std::string& rel) { return path_starts_with(rel, "src/"); }
/// The event-churn rule watches the layers that own per-item timers: the
/// link/transfer core and the scheduler/controller layer above it.
bool in_event_hot_layers(const std::string& rel) {
  return path_starts_with(rel, "src/net/") ||
         path_starts_with(rel, "src/core/");
}
bool in_src_outside_simcore(const std::string& rel) {
  return path_starts_with(rel, "src/") &&
         !path_starts_with(rel, "src/simcore/");
}

/// `std::function` specifically — not members or locals named `function`,
/// and not `<functional>` includes (the header is fine when every use is
/// waived).
bool matches_std_function(const std::string& code) {
  std::size_t at = 0;
  while ((at = code.find("function", at)) != std::string::npos) {
    const bool qualified = at >= 5 && code.compare(at - 5, 5, "std::") == 0;
    const std::size_t after = at + std::string_view("function").size();
    const bool right_ok = after >= code.size() || !is_ident_char(code[after]);
    if (qualified && right_ok) return true;
    at = after;
  }
  return false;
}

/// True when the line constructs an EventId from a raw value: the token
/// `EventId` directly followed by a brace initializer with non-empty
/// contents. `EventId id{}` (named variable) and `EventId{}` (null handle)
/// are fine; `EventId{42}` forges a handle and bypasses the generation
/// check that makes cancellation safe.
bool has_raw_eventid(const std::string& code) {
  static constexpr std::string_view kToken = "EventId";
  std::size_t at = 0;
  while ((at = code.find(kToken, at)) != std::string::npos) {
    const std::size_t after = at + kToken.size();
    const bool left_ok = at == 0 || !is_ident_char(code[at - 1]);
    std::size_t j = after;
    while (j < code.size() && code[j] == ' ') ++j;
    if (left_ok && j < code.size() && code[j] == '{') {
      const std::size_t close = code.find('}', j);
      const std::string_view inside =
          close == std::string::npos
              ? std::string_view(code).substr(j + 1)
              : std::string_view(code).substr(j + 1, close - j - 1);
      const bool nonempty =
          std::any_of(inside.begin(), inside.end(), [](unsigned char c) {
            return !std::isspace(c);
          });
      if (nonempty) return true;
    }
    at = after;
  }
  return false;
}

/// True when a sim-component type name is followed by `*` (optionally
/// spaced / const-qualified): a raw component pointer. Pointer identity
/// does not survive a fork — the snapshot protocol (simcore/snapshot.hpp)
/// requires components to hold rebindable references, owned value state,
/// or id/slot handles, never raw peer pointers, whether in member state or
/// captured into event closures.
bool has_component_pointer(const std::string& code) {
  static constexpr std::string_view kComponents[] = {
      "Simulation",        "EventQueue",     "Link",
      "Cluster",           "JobStore",       "MapReduceRuntime",
      "FaultPlan",         "BeliefState",    "TransferQueueSet",
      "BandwidthEstimator", "ThreadTuner",   "Scheduler",
      "ProcessingTimeEstimator",
  };
  for (const std::string_view token : kComponents) {
    std::size_t at = 0;
    while ((at = code.find(token, at)) != std::string::npos) {
      const std::size_t after = at + token.size();
      const bool left_ok = at == 0 || !is_ident_char(code[at - 1]);
      const bool right_ok = after >= code.size() || !is_ident_char(code[after]);
      if (!left_ok || !right_ok) {
        at = after;
        continue;
      }
      std::size_t j = after;
      while (j < code.size() && code[j] == ' ') ++j;
      if (code.compare(j, 5, "const") == 0 &&
          (j + 5 >= code.size() || !is_ident_char(code[j + 5]))) {
        j += 5;
        while (j < code.size() && code[j] == ' ') ++j;
      }
      if (j < code.size() && code[j] == '*') return true;
      at = after;
    }
  }
  return false;
}

/// File-level scan for the event-churn rule: a `for`/`while` body that
/// both cancels an event and schedules one is re-arming timers per item —
/// the pattern batched water-filling exists to avoid. Tracks brace depth
/// across lines; a loop frame opens at the `{` following a loop keyword
/// and closes when depth returns to its entry level. The violation is
/// reported at the line where the pair completes (second half observed),
/// once per loop, and is waivable there like any per-line rule.
///
/// Deliberately dumb, like the rest of the checker: brace-less loop
/// bodies are not tracked, and a `;` at paren depth zero clears a pending
/// loop header so `do { ... } while (cond);` tails and empty `while`
/// statements do not open phantom frames.
void scan_event_churn(SourceFile& f, const Rule& rule,
                      std::vector<Finding>* out) {
  struct LoopFrame {
    int entry_depth = 0;          ///< brace depth inside the loop body
    std::size_t cancel_line = 0;  ///< first cancel seen (1-based), 0 = none
    std::size_t schedule_line = 0;
    bool reported = false;
  };
  std::vector<LoopFrame> frames;
  int depth = 0;
  int parens = 0;
  bool pending_loop = false;  // loop keyword seen, body `{` not yet
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& code = f.code[li];
    if (has_token(code, "for") || has_token(code, "while")) {
      pending_loop = true;
    }
    for (const char c : code) {
      if (c == '{') {
        ++depth;
        if (pending_loop) {
          LoopFrame fr;
          fr.entry_depth = depth;
          frames.push_back(fr);
          pending_loop = false;
        }
      } else if (c == '}') {
        --depth;
        while (!frames.empty() && depth < frames.back().entry_depth) {
          frames.pop_back();
        }
      } else if (c == '(') {
        ++parens;
      } else if (c == ')') {
        --parens;
      } else if (c == ';' && parens == 0) {
        pending_loop = false;
      }
    }
    if (frames.empty()) continue;
    const bool cancels = has_member_or_free_call(code, "cancel");
    const bool schedules = has_member_or_free_call(code, "schedule_in") ||
                           has_member_or_free_call(code, "schedule_at");
    if (!cancels && !schedules) continue;
    for (LoopFrame& fr : frames) {
      if (cancels && fr.cancel_line == 0) fr.cancel_line = li + 1;
      if (schedules && fr.schedule_line == 0) fr.schedule_line = li + 1;
      if (!fr.reported && fr.cancel_line != 0 && fr.schedule_line != 0) {
        fr.reported = true;
        if (!try_waive(f, li + 1, rule.waiver_token)) {
          out->push_back({f.path.generic_string(), li + 1, rule.id,
                          rule.message, f.raw[li]});
        }
      }
    }
  }
}

}  // namespace

const std::vector<Rule>& token_rules() {
  static const std::vector<Rule> kRules = {
      {"nondeterministic-container", "nondeterministic",
       "hash-ordered container in sim state: simcore/core/models iterate "
       "their tables, so only deterministic-order containers (FlatMap, "
       "std::map, vector) are allowed",
       in_deterministic_state_layers,
       [](const std::string& code) {
         return has_token(code, "unordered_map") ||
                has_token(code, "unordered_set") ||
                has_token(code, "unordered_multimap") ||
                has_token(code, "unordered_multiset");
       }},
      {"wall-clock", "wall-clock",
       "ambient randomness / wall-clock read inside the model: all "
       "stochastic inputs must flow from the seeded RngStream and all time "
       "from Simulation::now()",
       in_src_outside_harness,
       [](const std::string& code) {
         return has_call(code, "rand") || has_call(code, "srand") ||
                has_call(code, "time") || has_call(code, "clock") ||
                has_call(code, "gettimeofday") ||
                has_call(code, "clock_gettime") ||
                has_token(code, "random_device") ||
                has_token(code, "system_clock") ||
                has_token(code, "steady_clock") ||
                has_token(code, "high_resolution_clock");
       }},
      {"std-function", "std-function",
       "std::function in the engine layers: schedule/hook paths must use "
       "the move-only, SBO cbs::sim::UniqueFunction (simcore/callback.hpp)",
       in_engine_layers, matches_std_function},
      {"float-arithmetic", "float",
       "float in model arithmetic: times and sizes are double end-to-end; "
       "float rounding drifts fixed-seed outputs across compilers",
       in_src,
       [](const std::string& code) { return has_token(code, "float"); }},
      {"eventid-raw", "eventid",
       "EventId constructed from a raw value: handles must come from "
       "schedule_at/schedule_in so cancel()'s generation check stays sound",
       in_src_outside_simcore, has_raw_eventid},
      {"event-churn", "event-churn",
       "cancel + schedule pair inside a loop body: N cancels + N schedules "
       "per pass is the per-item timer churn the data-oriented link core "
       "removed (DESIGN.md §14) — batch the pass and re-arm ONE timer "
       "after the loop, or waive with the reason it cannot be batched",
       in_event_hot_layers,
       // File-level rule: matched by scan_event_churn (loop-body tracking
       // needs cross-line state), not per line. This entry registers the
       // id, message, scope and waiver token.
       [](const std::string&) { return false; }},
      {"snapshot-unsafe", "snapshot",
       "raw pointer to a sim component in the engine layers: pointer "
       "identity does not survive a fork — hold a rebindable reference, "
       "owned value state, or an id/slot handle restored via "
       "SnapshotContext (simcore/snapshot.hpp)",
       in_engine_layers, has_component_pointer},
  };
  return kRules;
}

void scan_token_rules(SourceFile& f, std::vector<Finding>* out) {
  const std::string rel = f.path.generic_string();
  for (const Rule& rule : token_rules()) {
    if (!rule.applies(rel)) continue;
    if (rule.id == "event-churn") {
      scan_event_churn(f, rule, out);
      continue;
    }
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (!rule.matches(f.code[i])) continue;
      if (try_waive(f, i + 1, rule.waiver_token)) continue;
      out->push_back({rel, i + 1, rule.id, rule.message, f.raw[i]});
    }
  }
}

const std::vector<std::string>& known_waiver_tokens() {
  static const std::vector<std::string> kTokens = [] {
    std::vector<std::string> tokens;
    for (const Rule& r : token_rules()) tokens.push_back(r.waiver_token);
    // Structural rule families (structural_rules.cpp).
    tokens.emplace_back("snapshot-complete");
    tokens.emplace_back("restore-coverage");
    tokens.emplace_back("layering");
    return tokens;
  }();
  return kTokens;
}

}  // namespace cbslint
