// cbs_lint driver: file walk, parallel per-file scan, whole-program
// structural pass, report emission.
//
// Usage:
//   cbs_lint [--root <dir>] [--jobs N] [--format text|json]
//            [--list-waivers | --fix-waivers] [--quiet]
//
// The per-file work (load, strip, token rules, declaration parse) fans out
// over --jobs worker threads; results are merged in sorted-path order and
// every report is sorted by (file, line, rule), so output is byte-identical
// at any thread count — the same discipline the experiment runner follows.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <vector>

#include "decl_index.hpp"
#include "lint.hpp"

namespace fs = std::filesystem;

namespace cbslint {
namespace {

struct Options {
  fs::path root = ".";
  bool list_waivers = false;
  bool quiet = false;
  std::size_t jobs = 0;  ///< 0 = auto (hardware concurrency, capped)
  bool json = false;
};

bool should_scan(const fs::path& rel) {
  const std::string s = rel.generic_string();
  // The negative-lint fixtures deliberately violate every rule; they are
  // scanned only when a fixture directory is passed as --root directly.
  if (s.find("tests/lint/fixtures") != std::string::npos) return false;
  // The checker documents the waiver grammar in its own comments (and the
  // parser self-test embeds declaration fragments), which would parse as
  // malformed/stale waivers.
  if (s.find("tools/cbs_lint") != std::string::npos) return false;
  if (s.find("tests/lint/decl_parser_test") != std::string::npos) return false;
  if (path_starts_with(s, "build")) return false;
  const std::string ext = rel.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Everything one worker produces for one file; merged in path order.
struct PerFile {
  std::optional<SourceFile> file;
  std::vector<Finding> findings;
  ParsedFile parsed;
  std::vector<std::string> errors;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<Finding>& findings,
                const std::vector<std::string>& errors,
                const std::vector<SourceFile*>& files, std::size_t scanned) {
  std::cout << "{\n  \"tool\": \"cbs_lint\",\n";
  std::cout << "  \"files_scanned\": " << scanned << ",\n";
  std::cout << "  \"violations\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& v = findings[i];
    std::cout << (i == 0 ? "\n" : ",\n");
    std::cout << "    {\"file\": \"" << json_escape(v.rel)
              << "\", \"line\": " << v.line << ", \"rule\": \""
              << json_escape(v.rule) << "\", \"message\": \""
              << json_escape(v.message) << "\", \"snippet\": \""
              << json_escape(v.snippet) << "\"}";
  }
  std::cout << (findings.empty() ? "],\n" : "\n  ],\n");
  std::cout << "  \"errors\": [";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    std::cout << (i == 0 ? "\n" : ",\n");
    std::cout << "    \"" << json_escape(errors[i]) << "\"";
  }
  std::cout << (errors.empty() ? "],\n" : "\n  ],\n");
  std::cout << "  \"active_waivers\": [";
  bool first = true;
  for (const SourceFile* f : files) {
    for (const Waiver& w : f->waivers) {
      if (!w.used) continue;
      std::cout << (first ? "\n" : ",\n");
      first = false;
      std::cout << "    {\"file\": \"" << json_escape(f->path.generic_string())
                << "\", \"line\": " << w.line << ", \"rule\": \""
                << json_escape(w.token) << "\", \"reason\": \""
                << json_escape(w.reason) << "\"}";
    }
  }
  std::cout << (first ? "]\n" : "\n  ]\n");
  std::cout << "}\n";
}

int run(const Options& opt) {
  std::vector<std::string> errors;

  const std::vector<std::string> top_dirs = {"src", "tools", "bench", "tests",
                                             "examples"};
  std::vector<fs::path> paths;
  for (const auto& dir : top_dirs) {
    const fs::path base = opt.root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(base, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) {
        errors.push_back("walk failed under " + base.string() + ": " +
                         ec.message());
        break;
      }
      if (!it->is_regular_file()) continue;
      const fs::path rel = fs::relative(it->path(), opt.root, ec);
      if (!ec && should_scan(rel)) paths.push_back(rel);
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic merge order

  // Fan the per-file work out; slot i belongs to paths[i], so the merge
  // below is byte-identical at any --jobs value.
  std::vector<PerFile> slots(paths.size());
  std::size_t jobs = opt.jobs;
  if (jobs == 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min<std::size_t>(hw, 8);
  }
  jobs = std::min(jobs, std::max<std::size_t>(paths.size(), 1));
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= paths.size()) return;
      PerFile& slot = slots[i];
      slot.file = load_file(opt.root / paths[i], paths[i], &slot.errors);
      if (!slot.file) continue;
      scan_token_rules(*slot.file, &slot.findings);
      slot.parsed = parse_file(*slot.file);
    }
  };
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  std::vector<Finding> findings;
  std::vector<SourceFile*> files;  // stable: slots outlive everything below
  std::map<std::string, SourceFile*> files_by_rel;
  std::vector<ParsedFile> parsed;
  for (PerFile& slot : slots) {
    for (std::string& e : slot.errors) errors.push_back(std::move(e));
    for (Finding& v : slot.findings) findings.push_back(std::move(v));
    if (!slot.file) continue;
    files.push_back(&*slot.file);
    files_by_rel[slot.file->path.generic_string()] = &*slot.file;
    parsed.push_back(std::move(slot.parsed));
  }

  // Waivers naming a rule that does not exist are stale by definition — a
  // renamed rule must not leave waivers behind that silently re-authorize
  // nothing (or, worse, wait for a future rule to adopt the name).
  std::set<std::pair<std::string, std::size_t>> unknown_waivers;
  for (const SourceFile* f : files) {
    for (const Waiver& w : f->waivers) {
      const auto& known = known_waiver_tokens();
      if (std::find(known.begin(), known.end(), w.token) != known.end()) {
        continue;
      }
      const std::string rel = f->path.generic_string();
      unknown_waivers.emplace(rel, w.line);
      findings.push_back(
          {rel, w.line, "stale-waiver",
           "waiver '" + w.token + "-ok(" + w.reason +
               ")' names a rule that does not exist (renamed or removed?) "
               "— delete it or update the rule name",
           f->raw[w.line - 1]});
    }
  }

  // Whole-program pass: member tables + include graph, then the three
  // structural rule families.
  DeclIndex index;
  index.build(std::move(parsed));
  run_structural_rules(index, files_by_rel, &findings);

  // Stale waivers: a waiver that suppressed nothing is dead weight that
  // would silently re-authorize a future violation — treat it as an
  // error. (Must run after the structural pass, which consumes waivers.)
  for (const SourceFile* f : files) {
    for (const Waiver& w : f->waivers) {
      if (w.used) continue;
      const std::string rel = f->path.generic_string();
      if (unknown_waivers.count({rel, w.line}) != 0) continue;
      findings.push_back({rel, w.line, "stale-waiver",
                          "waiver '" + w.token + "-ok(" + w.reason +
                              ")' suppresses nothing — delete it",
                          f->raw[w.line - 1]});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.rel, a.line, a.rule) <
                     std::tie(b.rel, b.line, b.rule);
            });

  if (opt.json) {
    print_json(findings, errors, files, files.size());
    return findings.empty() && errors.empty() ? 0 : 1;
  }

  if (opt.list_waivers) {
    std::size_t count = 0;
    for (const SourceFile* f : files) {
      for (const Waiver& w : f->waivers) {
        if (!w.used) continue;
        std::cout << f->path.generic_string() << ":" << w.line << ": ["
                  << w.token << "-ok] " << w.reason << "\n";
        ++count;
      }
    }
    std::cout << "cbs_lint: " << count << " active waiver(s)\n";
  }

  for (const Finding& v : findings) {
    std::cout << v.rel << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
    if (!opt.quiet && !v.snippet.empty()) {
      std::cout << "    " << v.snippet << "\n";
    }
  }
  for (const std::string& e : errors) std::cout << e << "\n";

  if (!findings.empty() || !errors.empty()) {
    std::cout << "cbs_lint: FAILED — " << findings.size()
              << " violation(s), " << errors.size() << " error(s) across "
              << files.size() << " scanned file(s)\n";
    return 1;
  }
  if (!opt.list_waivers) {
    std::cout << "cbs_lint: OK — " << files.size() << " file(s) clean\n";
  }
  return 0;
}

}  // namespace
}  // namespace cbslint

int main(int argc, char** argv) {
  cbslint::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--list-waivers" || arg == "--fix-waivers") {
      // --fix-waivers is the review spelling: print every active waiver
      // (file, line, rule, reason) so they can be re-justified or removed.
      opt.list_waivers = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      const std::string v = argv[++i];
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 1 || n > 512) {
        std::cerr << "cbs_lint: --jobs expects an integer in [1, 512]\n";
        return 2;
      }
      opt.jobs = static_cast<std::size_t>(n);
    } else if (arg == "--format" && i + 1 < argc) {
      const std::string_view v = argv[++i];
      if (v == "json") {
        opt.json = true;
      } else if (v != "text") {
        std::cerr << "cbs_lint: --format expects 'text' or 'json'\n";
        return 2;
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string_view v =
          arg.substr(std::string_view("--format=").size());
      if (v == "json") {
        opt.json = true;
      } else if (v != "text") {
        std::cerr << "cbs_lint: --format expects 'text' or 'json'\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: cbs_lint [--root <dir>] [--jobs N] "
                   "[--format text|json] [--list-waivers|--fix-waivers] "
                   "[--quiet]\n";
      return 0;
    } else {
      std::cerr << "cbs_lint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }
  std::error_code ec;
  if (!std::filesystem::is_directory(opt.root, ec)) {
    std::cerr << "cbs_lint: --root " << opt.root << " is not a directory\n";
    return 2;
  }
  return cbslint::run(opt);
}
