#include "decl_index.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

namespace cbslint {

namespace {

// ---------------------------------------------------------------------
// Tokenizer. Operates on the comment/string-blanked code view, so string
// contents can never look like declarations. Preprocessor lines are
// skipped entirely (includes are harvested from the raw lines instead);
// `[[...]]` attributes are dropped at this stage so the declaration
// scanner never sees them.
// ---------------------------------------------------------------------

struct Tok {
  enum Kind { kIdent, kNum, kPunct };
  Kind kind = kPunct;
  std::string text;
  std::size_t line = 0;  ///< 1-based
};

bool starts_ident(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators the scanner must keep whole: `::` for
/// qualified names, `->` so trailing return types cannot unbalance the
/// angle-bracket heuristic, and the comparison/shift group so a lone
/// `>`/`<` inside them is never mistaken for a template delimiter.
const char* match_multichar_punct(const std::string& s, std::size_t i) {
  static constexpr const char* kPuncts[] = {"::", "->", "==", "!=", "<=",
                                            ">=", "<<", ">>", "&&", "||",
                                            "..."};
  for (const char* p : kPuncts) {
    const std::size_t n = std::string_view(p).size();
    if (s.compare(i, n, p) == 0) return p;
  }
  return nullptr;
}

std::vector<Tok> tokenize(const SourceFile& f) {
  std::vector<Tok> toks;
  bool continuation = false;  // previous line was a preprocessor line \-split
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& s = f.code[li];
    std::size_t i = 0;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (continuation || (i < s.size() && s[i] == '#')) {
      continuation = !f.raw[li].empty() && f.raw[li].back() == '\\';
      continue;
    }
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '[' && i + 1 < s.size() && s[i + 1] == '[') {
        // Attribute: drop through the matching ]] (attributes never span
        // lines in this tree; give up at end of line otherwise).
        const std::size_t close = s.find("]]", i + 2);
        i = close == std::string::npos ? s.size() : close + 2;
        continue;
      }
      if (starts_ident(c)) {
        std::size_t j = i + 1;
        while (j < s.size() && is_ident_char(s[j])) ++j;
        toks.push_back({Tok::kIdent, s.substr(i, j - i), li + 1});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i + 1;
        while (j < s.size() && (is_ident_char(s[j]) || s[j] == '.')) ++j;
        toks.push_back({Tok::kNum, s.substr(i, j - i), li + 1});
        i = j;
        continue;
      }
      if (const char* p = match_multichar_punct(s, i)) {
        toks.push_back({Tok::kPunct, p, li + 1});
        i += std::string_view(p).size();
        continue;
      }
      toks.push_back({Tok::kPunct, std::string(1, c), li + 1});
      ++i;
    }
  }
  return toks;
}

std::string join_tokens(const std::vector<Tok>& toks, std::size_t begin,
                        std::size_t end) {
  std::string out;
  for (std::size_t k = begin; k < end && k < toks.size(); ++k) {
    if (!out.empty()) out += ' ';
    out += toks[k].text;
  }
  return out;
}

// ---------------------------------------------------------------------
// The declaration scanner: a scope-tracking walk over the token stream.
// ---------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const SourceFile& f)
      : rel_(f.path.generic_string()), toks_(tokenize(f)) {}

  ParsedFile run() {
    while (i_ < toks_.size()) step();
    return std::move(out_);
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass };
    Kind kind = kNamespace;
    std::string name;
    std::size_t class_index = static_cast<std::size_t>(-1);  ///< into out_
  };

  [[nodiscard]] bool at_punct(std::size_t k, std::string_view p) const {
    return k < toks_.size() && toks_[k].kind == Tok::kPunct &&
           toks_[k].text == p;
  }
  [[nodiscard]] bool at_ident(std::size_t k, std::string_view w) const {
    return k < toks_.size() && toks_[k].kind == Tok::kIdent &&
           toks_[k].text == w;
  }

  [[nodiscard]] bool in_class() const {
    return !scopes_.empty() && scopes_.back().kind == Scope::kClass;
  }

  [[nodiscard]] std::string namespace_prefix() const {
    std::string ns;
    for (const Scope& s : scopes_) {
      if (s.kind != Scope::kNamespace || s.name.empty()) continue;
      if (!ns.empty()) ns += "::";
      ns += s.name;
    }
    return ns;
  }

  [[nodiscard]] std::string qualified_name(const std::string& simple) const {
    std::string q;
    for (const Scope& s : scopes_) {
      if (s.name.empty()) continue;
      if (!q.empty()) q += "::";
      q += s.name;
    }
    if (!q.empty()) q += "::";
    q += simple;
    return q;
  }

  /// Skips a balanced token group opened at toks_[i_] (which must be the
  /// opening token), returning the index one past the closer.
  std::size_t skip_balanced(std::size_t k, std::string_view open,
                            std::string_view close) {
    int depth = 0;
    while (k < toks_.size()) {
      if (toks_[k].kind == Tok::kPunct) {
        if (toks_[k].text == open) ++depth;
        if (toks_[k].text == close && --depth == 0) return k + 1;
      }
      ++k;
    }
    return k;
  }

  /// Skips a template argument/parameter list starting at a `<`.
  std::size_t skip_angles(std::size_t k) {
    int depth = 0;
    while (k < toks_.size()) {
      const Tok& t = toks_[k];
      if (t.kind == Tok::kPunct) {
        if (t.text == "<") ++depth;
        if (t.text == ">" && --depth == 0) return k + 1;
        if (t.text == ">>") {
          depth -= 2;
          if (depth <= 0) return k + 1;
        }
        if (t.text == "(") {  // e.g. UniqueFunction<void(int)>
          k = skip_balanced(k, "(", ")");
          continue;
        }
      }
      ++k;
    }
    return k;
  }

  void step() {
    const Tok& t = toks_[i_];
    if (t.kind == Tok::kPunct) {
      if (t.text == "}") {
        if (!scopes_.empty()) scopes_.pop_back();
        ++i_;
        return;
      }
      if (t.text == ";") {
        ++i_;
        return;
      }
      if (t.text == "{") {
        // A brace we cannot attribute (extern "C", stray initializer):
        // consume the whole block — nothing inside is a declaration the
        // rules need.
        i_ = skip_balanced(i_, "{", "}");
        return;
      }
      ++i_;
      return;
    }
    if (t.text == "namespace") {
      parse_namespace();
      return;
    }
    if (t.text == "template") {
      ++i_;
      if (at_punct(i_, "<")) i_ = skip_angles(i_);
      pending_template_ = true;
      return;
    }
    if (t.text == "class" || t.text == "struct" || t.text == "union") {
      if (try_parse_class()) return;
      parse_declaration();  // `struct X x;` style usage in a declaration
      return;
    }
    if (t.text == "enum") {
      parse_enum();
      return;
    }
    if (t.text == "using" || t.text == "typedef" || t.text == "friend" ||
        t.text == "static_assert") {
      skip_to_semicolon();
      return;
    }
    if (in_class() &&
        (t.text == "public" || t.text == "private" || t.text == "protected") &&
        at_punct(i_ + 1, ":")) {
      i_ += 2;
      return;
    }
    parse_declaration();
  }

  void parse_namespace() {
    ++i_;  // past `namespace`
    std::string name;
    while (i_ < toks_.size() && toks_[i_].kind == Tok::kIdent) {
      if (!name.empty()) name += "::";
      name += toks_[i_].text;
      ++i_;
      if (at_punct(i_, "::")) ++i_;
    }
    if (at_punct(i_, "=")) {  // namespace alias
      skip_to_semicolon();
      return;
    }
    if (at_punct(i_, "{")) {
      scopes_.push_back(
          {Scope::kNamespace, name, static_cast<std::size_t>(-1)});
      ++i_;
    }
  }

  /// Returns true when `class`/`struct` at i_ opens a definition (which it
  /// parses); false when the keyword is part of an ordinary declaration.
  bool try_parse_class() {
    const bool is_template = pending_template_;
    pending_template_ = false;
    std::size_t k = i_ + 1;
    std::string name;
    if (k < toks_.size() && toks_[k].kind == Tok::kIdent) {
      name = toks_[k].text;
      ++k;
    }
    if (at_ident(k, "final")) ++k;
    // Scan the (optional) base clause for the opening brace; a `;` first
    // means forward declaration, a `(` or `=` means this was a type
    // mention inside some other declaration.
    std::size_t scan = k;
    while (scan < toks_.size()) {
      const Tok& t = toks_[scan];
      if (t.kind == Tok::kPunct) {
        if (t.text == "{") break;
        if (t.text == ";") {
          i_ = scan + 1;
          return true;  // forward declaration, consumed
        }
        if (t.text == "(" || t.text == "=") return false;
        if (t.text == "<") {
          scan = skip_angles(scan);
          continue;
        }
      }
      ++scan;
    }
    if (scan >= toks_.size()) {
      i_ = scan;
      return true;
    }
    ClassDecl cls;
    cls.simple = name.empty() ? std::string("<anonymous>") : name;
    cls.qualified = qualified_name(cls.simple);
    cls.rel = rel_;
    cls.line = toks_[i_].line;
    cls.is_template = is_template;
    out_.classes.push_back(std::move(cls));
    scopes_.push_back(
        {Scope::kClass, name, out_.classes.size() - 1});
    i_ = scan + 1;  // past `{`
    return true;
  }

  void parse_enum() {
    ++i_;
    if (at_ident(i_, "class") || at_ident(i_, "struct")) ++i_;
    while (i_ < toks_.size() && !at_punct(i_, "{") && !at_punct(i_, ";")) ++i_;
    if (at_punct(i_, "{")) i_ = skip_balanced(i_, "{", "}");
    if (at_punct(i_, ";")) ++i_;
  }

  void skip_to_semicolon() {
    int braces = 0;
    while (i_ < toks_.size()) {
      if (toks_[i_].kind == Tok::kPunct) {
        if (toks_[i_].text == "{") ++braces;
        if (toks_[i_].text == "}") --braces;
        if (toks_[i_].text == ";" && braces <= 0) {
          ++i_;
          return;
        }
      }
      ++i_;
    }
  }

  /// Captures a balanced group's *interior* as text, returning the index
  /// one past the closer.
  std::size_t capture_balanced(std::size_t k, std::string_view open,
                               std::string_view close, std::string* text) {
    const std::size_t begin = k + 1;
    const std::size_t end = skip_balanced(k, open, close);
    *text = join_tokens(toks_, begin, end == begin ? begin : end - 1);
    return end;
  }

  /// The statement workhorse: parses one declaration starting at i_, which
  /// may be a data member, a method declaration/definition (with ctor
  /// init-list), an out-of-line `X::f() {...}` definition, or a free
  /// function (recorded only for brace balance). Leaves i_ one past the
  /// statement.
  void parse_declaration() {
    const std::size_t stmt_begin = i_;
    const std::size_t stmt_line = toks_[i_].line;
    pending_template_ = false;

    int angle = 0;
    bool sig_found = false;        // identifier immediately followed by `(`
    std::size_t sig_name = 0;      // token index of the declarator name
    std::string params;
    bool params_closed = false;
    std::string init_list;
    bool is_deleted = false;
    bool is_defaulted = false;
    std::size_t init_begin = static_cast<std::size_t>(-1);  // after `=`/`{`
    std::string default_init;
    bool has_default_init = false;
    std::size_t prefix_end = static_cast<std::size_t>(-1);  // name zone end

    while (i_ < toks_.size()) {
      const Tok& t = toks_[i_];
      if (t.kind != Tok::kPunct) {
        ++i_;
        continue;
      }
      if (t.text == "<" && i_ > stmt_begin &&
          toks_[i_ - 1].kind == Tok::kIdent &&
          init_begin == static_cast<std::size_t>(-1)) {
        i_ = skip_angles(i_);
        continue;
      }
      if (t.text == "(" && angle == 0) {
        if (init_begin != static_cast<std::size_t>(-1)) {
          i_ = skip_balanced(i_, "(", ")");
          continue;
        }
        if (!sig_found && i_ > stmt_begin &&
            toks_[i_ - 1].kind == Tok::kIdent) {
          sig_found = true;
          sig_name = i_ - 1;
          prefix_end = sig_name;
          i_ = capture_balanced(i_, "(", ")", &params);
          params_closed = true;
          continue;
        }
        i_ = skip_balanced(i_, "(", ")");
        continue;
      }
      if (t.text == "=" && angle == 0 &&
          init_begin == static_cast<std::size_t>(-1)) {
        if (params_closed) {
          // `= default;` / `= delete;` / `= 0;` (pure virtual)
          if (at_ident(i_ + 1, "default")) is_defaulted = true;
          if (at_ident(i_ + 1, "delete")) is_deleted = true;
          skip_to_semicolon();
          finish(stmt_begin, stmt_line, sig_found, sig_name, params,
                 init_list, "", false, is_deleted, is_defaulted, prefix_end,
                 default_init, has_default_init);
          return;
        }
        if (prefix_end == static_cast<std::size_t>(-1)) prefix_end = i_;
        init_begin = i_ + 1;
        has_default_init = true;
        // Consume the initializer through the terminating `;`.
        int braces = 0;
        int parens = 0;
        ++i_;
        while (i_ < toks_.size()) {
          const Tok& u = toks_[i_];
          if (u.kind == Tok::kPunct) {
            if (u.text == "{") ++braces;
            // A `}` closing an *enclosing* scope means the statement never
            // had a terminating `;` (e.g. an out-of-line operator= body we
            // misread as an initializer): stop without consuming it.
            if (u.text == "}" && braces-- == 0) break;
            if (u.text == "(") ++parens;
            if (u.text == ")") --parens;
            if (u.text == ";" && braces == 0 && parens == 0) break;
          }
          ++i_;
        }
        default_init = join_tokens(toks_, init_begin, i_);
        if (at_punct(i_, ";")) ++i_;
        finish(stmt_begin, stmt_line, sig_found, sig_name, params, init_list,
               "", false, false, false, prefix_end, default_init,
               has_default_init);
        return;
      }
      if (t.text == ":" && angle == 0 && params_closed && sig_found) {
        // Constructor init-list: capture up to the body brace. A `{`
        // directly after an identifier or `>` is a member brace-init
        // (`hot_{src.hot_}`); any other `{` opens the body.
        const std::size_t il_begin = i_ + 1;
        ++i_;
        int parens = 0;
        while (i_ < toks_.size()) {
          const Tok& u = toks_[i_];
          if (u.kind == Tok::kPunct) {
            if (u.text == "(") ++parens;
            if (u.text == ")") --parens;
            if (u.text == "{" && parens == 0) {
              const Tok& prev = toks_[i_ - 1];
              const bool member_brace =
                  prev.kind == Tok::kIdent ||
                  (prev.kind == Tok::kPunct && prev.text == ">");
              if (!member_brace) break;
              i_ = skip_balanced(i_, "{", "}");
              continue;
            }
          }
          ++i_;
        }
        init_list = join_tokens(toks_, il_begin, i_);
        // Fall through: i_ sits on the body `{`.
        continue;
      }
      if (t.text == ":" && angle == 0 && !sig_found &&
          init_begin == static_cast<std::size_t>(-1)) {
        // Bitfield — treat the width expression as an initializer-ish tail.
        if (prefix_end == static_cast<std::size_t>(-1)) prefix_end = i_;
        skip_to_semicolon();
        finish(stmt_begin, stmt_line, false, 0, "", "", "", false, false,
               false, prefix_end, "", false);
        return;
      }
      if (t.text == "{" && angle == 0) {
        if (sig_found && params_closed) {
          std::string body;
          i_ = capture_balanced(i_, "{", "}", &body);
          if (at_punct(i_, ";")) ++i_;
          finish(stmt_begin, stmt_line, true, sig_name, params, init_list,
                 body, true, false, false, prefix_end, default_init,
                 has_default_init);
          return;
        }
        // Member brace-initializer: `EventId timer_event_{};`
        if (prefix_end == static_cast<std::size_t>(-1)) prefix_end = i_;
        has_default_init = true;
        i_ = capture_balanced(i_, "{", "}", &default_init);
        continue;
      }
      if (t.text == ";") {
        if (prefix_end == static_cast<std::size_t>(-1)) prefix_end = i_;
        ++i_;
        finish(stmt_begin, stmt_line, sig_found, sig_name, params, init_list,
               "", false, false, false, prefix_end, default_init,
               has_default_init);
        return;
      }
      ++i_;
    }
    // Ran off the end of the file mid-statement: drop it.
  }

  /// Records the parsed statement as a member or method of the current
  /// class, or as an out-of-line definition at namespace scope.
  void finish(std::size_t stmt_begin, std::size_t stmt_line, bool sig_found,
              std::size_t sig_name, const std::string& params,
              const std::string& init_list, const std::string& body,
              bool has_body, bool is_deleted, bool is_defaulted,
              std::size_t prefix_end, const std::string& default_init,
              bool has_default_init) {
    if (sig_found) {
      MethodDecl m;
      // `~Link` destructors: the tilde precedes the name token.
      m.name = toks_[sig_name].text;
      std::size_t chain_end = sig_name;
      if (sig_name > stmt_begin && at_punct(sig_name - 1, "~")) {
        m.name = "~" + m.name;
        chain_end = sig_name - 1;
      }
      m.params = params;
      m.init_list = init_list;
      m.body = body;
      m.line = stmt_line;
      m.has_body = has_body;
      m.is_deleted = is_deleted;
      m.is_defaulted = is_defaulted;
      // Qualifier chain (`Link :: HotPool ::` before the name).
      std::vector<std::string> chain;
      std::size_t k = chain_end;
      while (k >= stmt_begin + 2 && at_punct(k - 1, "::") &&
             k >= 2 && toks_[k - 2].kind == Tok::kIdent) {
        chain.insert(chain.begin(), toks_[k - 2].text);
        if (k < 2) break;
        k -= 2;
      }
      if (in_class() && chain.empty()) {
        out_.classes[scopes_.back().class_index].methods.push_back(
            std::move(m));
      } else if (!in_class() && !chain.empty()) {
        OutOfLineDef def;
        def.ns = namespace_prefix();
        def.class_path = std::move(chain);
        def.method = std::move(m);
        def.rel = rel_;
        out_.defs.push_back(std::move(def));
      }
      return;
    }
    if (!in_class()) return;
    // Data member: name = last identifier in the name zone, cut at the
    // first top-level `[` (array suffix).
    std::size_t zone_end = prefix_end;
    for (std::size_t k = stmt_begin; k < zone_end; ++k) {
      if (at_punct(k, "[")) {
        zone_end = k;
        break;
      }
    }
    std::size_t name_idx = static_cast<std::size_t>(-1);
    for (std::size_t k = stmt_begin; k < zone_end; ++k) {
      if (toks_[k].kind == Tok::kIdent) name_idx = k;
      if (toks_[k].kind == Tok::kIdent && toks_[k].text == "operator") return;
    }
    if (name_idx == static_cast<std::size_t>(-1)) return;
    MemberDecl d;
    d.name = toks_[name_idx].text;
    d.line = toks_[name_idx].line;
    d.default_init = default_init;
    d.has_default_init = has_default_init;
    int angle = 0;
    for (std::size_t k = stmt_begin; k < name_idx; ++k) {
      const Tok& t = toks_[k];
      if (t.kind == Tok::kIdent) {
        if (t.text == "static") d.is_static = true;
        if (t.text == "mutable" || t.text == "inline") continue;
      }
      if (t.kind == Tok::kPunct) {
        if (t.text == "<") ++angle;
        if (t.text == ">") --angle;
        if (t.text == ">>") angle -= 2;
        if (angle == 0 && (t.text == "&" || t.text == "&&")) {
          d.is_reference = true;
        }
        if (angle == 0 && t.text == "*") d.is_pointer = true;
      }
      if (!d.type_text.empty()) d.type_text += ' ';
      d.type_text += t.text;
    }
    if (d.type_text.empty()) return;  // no type tokens: not a declaration
    out_.classes[scopes_.back().class_index].members.push_back(std::move(d));
  }

  std::string rel_;
  std::vector<Tok> toks_;
  std::size_t i_ = 0;
  bool pending_template_ = false;
  std::vector<Scope> scopes_;
  ParsedFile out_;
};

void collect_includes(const SourceFile& f, std::vector<IncludeEdge>* out) {
  const std::string rel = f.path.generic_string();
  for (std::size_t li = 0; li < f.raw.size(); ++li) {
    const std::string& line = f.raw[li];
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] != '#') continue;
    ++i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    static constexpr std::string_view kInclude = "include";
    if (line.compare(i, kInclude.size(), kInclude) != 0) continue;
    const std::size_t open = line.find('"', i + kInclude.size());
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    out->push_back({rel, li + 1, line.substr(open + 1, close - open - 1)});
  }
}

}  // namespace

ParsedFile parse_file(const SourceFile& f) {
  Parser p(f);
  ParsedFile out = p.run();
  collect_includes(f, &out.includes);
  return out;
}

void DeclIndex::build(std::vector<ParsedFile> parsed) {
  for (ParsedFile& pf : parsed) {
    for (ClassDecl& cls : pf.classes) {
      auto [it, inserted] = classes_.try_emplace(cls.qualified, cls);
      if (!inserted) {
        // Re-opened (template specialization, ifdef'd twin): merge.
        ClassDecl& dst = it->second;
        dst.members.insert(dst.members.end(), cls.members.begin(),
                           cls.members.end());
        dst.methods.insert(dst.methods.end(), cls.methods.begin(),
                           cls.methods.end());
      }
    }
    for (IncludeEdge& e : pf.includes) includes_.push_back(std::move(e));
  }
  // Attach out-of-line definitions now that every class is known.
  for (ParsedFile& pf : parsed) {
    for (OutOfLineDef& def : pf.defs) {
      std::string chain;
      for (const std::string& part : def.class_path) {
        if (!chain.empty()) chain += "::";
        chain += part;
      }
      std::string key = def.ns.empty() ? chain : def.ns + "::" + chain;
      auto it = classes_.find(key);
      if (it == classes_.end()) {
        // The definition's namespace may differ from where the class was
        // declared (e.g. `using`-pulled); accept a unique suffix match.
        const std::string suffix = "::" + chain;
        auto unique = classes_.end();
        for (auto c = classes_.begin(); c != classes_.end(); ++c) {
          const std::string& q = c->first;
          const bool match =
              q == chain ||
              (q.size() > suffix.size() &&
               q.compare(q.size() - suffix.size(), suffix.size(), suffix) ==
                   0);
          if (!match) continue;
          if (unique != classes_.end()) {
            unique = classes_.end();
            break;  // ambiguous: drop
          }
          unique = c;
        }
        if (unique == classes_.end()) continue;
        it = unique;
      }
      it->second.methods.push_back(std::move(def.method));
    }
  }
}

const ClassDecl* DeclIndex::enclosing(const std::string& qualified) const {
  const std::size_t cut = qualified.rfind("::");
  if (cut == std::string::npos) return nullptr;
  const auto it = classes_.find(qualified.substr(0, cut));
  return it == classes_.end() ? nullptr : &it->second;
}

}  // namespace cbslint
