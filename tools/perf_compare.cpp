// perf_compare — perf-regression gate over google-benchmark JSON output.
//
// Two modes:
//
//   perf_compare emit <raw_benchmark.json> <baseline.json>
//     Distills a google-benchmark JSON report into a minimal committed
//     baseline: {"benchmarks": [{"name": ..., "cpu_time_ns": ...}, ...]}.
//     cpu_time is normalized to nanoseconds regardless of the report's
//     time_unit, so baselines emitted from different unit settings compare.
//     A "peak_rss_bytes" key on an entry (the scale_stress smoke reports
//     one) is carried through into the baseline verbatim.
//
//   perf_compare compare <baseline.json> <current.json> [--threshold 0.30]
//     Compares a fresh report (raw or emitted form — the scanner accepts
//     both) against the committed baseline. Exits 1 when any benchmark
//     present in both is slower than baseline by more than the threshold
//     (relative: current > baseline * (1 + threshold)); peak-RSS rows are
//     gated by the same relative threshold when both sides report one.
//     Benchmarks present on only one side are reported but never fail the
//     gate, so adding a benchmark does not require regenerating the
//     baseline in the same commit.
//
// The parser is a purpose-built scanner for the handful of keys we need
// ("name", "cpu_time", "cpu_time_ns", "time_unit", "peak_rss_bytes") — not
// a general JSON parser — so the tool has no third-party dependencies.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace {

struct BenchResult {
  std::string name;
  double cpu_time_ns = 0.0;
  double peak_rss_bytes = 0.0;  ///< 0 = not reported for this entry
};

double unit_to_ns(std::string_view unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1.0e3;
  if (unit == "ms") return 1.0e6;
  if (unit == "s") return 1.0e9;
  std::cerr << "perf_compare: unknown time_unit '" << unit
            << "', assuming ns\n";
  return 1.0;
}

/// Extracts the JSON string value following `pos` (which points at the
/// opening quote of the value). No escape handling beyond what benchmark
/// names need (they contain none).
std::optional<std::string> read_string_value(std::string_view text,
                                             std::size_t pos) {
  if (pos >= text.size() || text[pos] != '"') return std::nullopt;
  const std::size_t end = text.find('"', pos + 1);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(text.substr(pos + 1, end - pos - 1));
}

std::optional<double> read_number_value(std::string_view text,
                                        std::size_t pos) {
  const std::size_t end = text.find_first_not_of("0123456789+-.eE", pos);
  const std::string token(text.substr(pos, end - pos));
  if (token.empty()) return std::nullopt;
  try {
    return std::stod(token);
  } catch (...) {
    return std::nullopt;
  }
}

/// Position just past `"key":` with optional whitespace, or npos.
std::size_t find_value_of(std::string_view text, std::string_view key,
                          std::size_t from) {
  const std::string needle = '"' + std::string(key) + '"';
  while (true) {
    const std::size_t at = text.find(needle, from);
    if (at == std::string_view::npos) return std::string_view::npos;
    std::size_t pos = at + needle.size();
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) != 0)) {
      ++pos;
    }
    if (pos < text.size() && text[pos] == ':') {
      ++pos;
      while (pos < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[pos])) != 0)) {
        ++pos;
      }
      return pos;
    }
    from = at + 1;  // matched inside a string value; keep looking
  }
}

/// Scans a google-benchmark report (or an emitted baseline) for benchmark
/// entries. Each entry is delimited by a "name" key; "cpu_time"/"cpu_time_ns"
/// and "time_unit" are taken from the span up to the next "name".
std::vector<BenchResult> parse_benchmarks(const std::string& text) {
  std::vector<BenchResult> out;
  // Only scan inside the "benchmarks" array — the "context" block also has
  // string keys, but no "name".
  std::size_t pos = find_value_of(text, "benchmarks", 0);
  if (pos == std::string_view::npos) pos = 0;
  std::size_t name_at = find_value_of(text, "name", pos);
  while (name_at != std::string_view::npos) {
    const std::size_t next_name = find_value_of(text, "name", name_at);
    const std::size_t span_end =
        next_name == std::string_view::npos ? text.size() : next_name;
    const std::string_view span =
        std::string_view(text).substr(0, span_end);

    BenchResult r;
    if (auto name = read_string_value(span, name_at)) {
      r.name = std::move(*name);
    } else {
      name_at = next_name;
      continue;
    }
    if (const std::size_t ns_at = find_value_of(span, "cpu_time_ns", name_at);
        ns_at != std::string_view::npos) {
      if (auto v = read_number_value(span, ns_at)) r.cpu_time_ns = *v;
    } else if (const std::size_t t_at = find_value_of(span, "cpu_time", name_at);
               t_at != std::string_view::npos) {
      double scale = 1.0;
      if (const std::size_t u_at = find_value_of(span, "time_unit", name_at);
          u_at != std::string_view::npos) {
        if (auto unit = read_string_value(span, u_at)) {
          scale = unit_to_ns(*unit);
        }
      }
      if (auto v = read_number_value(span, t_at)) r.cpu_time_ns = *v * scale;
    }
    if (const std::size_t rss_at = find_value_of(span, "peak_rss_bytes", name_at);
        rss_at != std::string_view::npos) {
      if (auto v = read_number_value(span, rss_at)) r.peak_rss_bytes = *v;
    }
    if (r.cpu_time_ns > 0.0) out.push_back(std::move(r));
    name_at = next_name;
  }
  return out;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int emit(const std::string& in_path, const std::string& out_path) {
  const auto text = read_file(in_path);
  if (!text) {
    std::cerr << "perf_compare: cannot read " << in_path << "\n";
    return 2;
  }
  const auto results = parse_benchmarks(*text);
  if (results.empty()) {
    std::cerr << "perf_compare: no benchmarks found in " << in_path << "\n";
    return 2;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "perf_compare: cannot write " << out_path << "\n";
    return 2;
  }
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", results[i].cpu_time_ns);
    out << "    {\"name\": \"" << results[i].name << "\", \"cpu_time_ns\": "
        << buf;
    if (results[i].peak_rss_bytes > 0.0) {
      std::snprintf(buf, sizeof(buf), "%.0f", results[i].peak_rss_bytes);
      out << ", \"peak_rss_bytes\": " << buf;
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "perf_compare: wrote " << results.size() << " baselines to "
            << out_path << "\n";
  return 0;
}

int compare(const std::string& baseline_path, const std::string& current_path,
            double threshold) {
  const auto base_text = read_file(baseline_path);
  const auto cur_text = read_file(current_path);
  if (!base_text || !cur_text) {
    std::cerr << "perf_compare: cannot read "
              << (!base_text ? baseline_path : current_path) << "\n";
    return 2;
  }
  const auto base = parse_benchmarks(*base_text);
  const auto cur = parse_benchmarks(*cur_text);
  if (base.empty() || cur.empty()) {
    std::cerr << "perf_compare: empty benchmark set ("
              << (base.empty() ? baseline_path : current_path) << ")\n";
    return 2;
  }

  const auto find = [](const std::vector<BenchResult>& v,
                       const std::string& name) -> const BenchResult* {
    const auto it = std::find_if(v.begin(), v.end(), [&](const BenchResult& r) {
      return r.name == name;
    });
    return it == v.end() ? nullptr : &*it;
  };

  int regressions = 0;
  std::size_t compared = 0;
  for (const auto& b : base) {
    const BenchResult* c = find(cur, b.name);
    if (c == nullptr) {
      std::cout << "  [gone]   " << b.name << " (in baseline only)\n";
      continue;
    }
    ++compared;
    const double ratio = c->cpu_time_ns / b.cpu_time_ns;
    const bool regressed = c->cpu_time_ns > b.cpu_time_ns * (1.0 + threshold);
    std::printf("  [%s] %-55s %12.1f -> %12.1f ns  (%+.1f%%)\n",
                regressed ? "REGRESS" : "ok     ", b.name.c_str(),
                b.cpu_time_ns, c->cpu_time_ns, (ratio - 1.0) * 100.0);
    if (regressed) ++regressions;
    // Peak-RSS row: gated only when both sides report one, so a benchmark
    // gaining (or dropping) RSS instrumentation never fails the gate.
    if (b.peak_rss_bytes > 0.0 && c->peak_rss_bytes > 0.0) {
      ++compared;
      const double rss_ratio = c->peak_rss_bytes / b.peak_rss_bytes;
      const bool rss_regressed =
          c->peak_rss_bytes > b.peak_rss_bytes * (1.0 + threshold);
      std::printf("  [%s] %-55s %12.0f -> %12.0f B   (%+.1f%%)\n",
                  rss_regressed ? "REGRESS" : "ok     ",
                  (b.name + " [rss]").c_str(), b.peak_rss_bytes,
                  c->peak_rss_bytes, (rss_ratio - 1.0) * 100.0);
      if (rss_regressed) ++regressions;
    } else if (b.peak_rss_bytes > 0.0 || c->peak_rss_bytes > 0.0) {
      std::cout << "  [info]   " << b.name
                << " [rss] reported on one side only — not gated\n";
    }
  }
  // Benchmarks present only in the current run are *additions*: report
  // them so the committed baseline gets regenerated eventually, but never
  // fail the gate on them — a new benchmark must be landable in the same
  // commit that introduces it.
  std::size_t additions = 0;
  for (const auto& c : cur) {
    if (find(base, c.name) == nullptr) {
      ++additions;
      std::cout << "  [new]    " << c.name
                << " (addition — not in baseline, not gated)\n";
    }
  }
  if (additions > 0) {
    std::cout << "perf_compare: warning: " << additions
              << " new benchmark(s) without a baseline; re-run `perf_compare"
                 " emit` to pin them\n";
  }
  std::cout << "perf_compare: " << compared << " compared, " << regressions
            << " regression(s) beyond " << threshold * 100.0 << "%, "
            << additions << " addition(s)\n";
  return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() >= 3 && args[0] == "emit") {
    return emit(args[1], args[2]);
  }
  if (args.size() >= 3 && args[0] == "compare") {
    double threshold = 0.30;
    for (std::size_t i = 3; i + 1 < args.size(); ++i) {
      if (args[i] == "--threshold") threshold = std::stod(args[i + 1]);
    }
    return compare(args[1], args[2], threshold);
  }
  std::cerr << "usage:\n"
            << "  perf_compare emit <raw_benchmark.json> <baseline.json>\n"
            << "  perf_compare compare <baseline.json> <current.json>"
            << " [--threshold 0.30]\n";
  return 2;
}
