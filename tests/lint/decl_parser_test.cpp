// Self-test for cbs_lint's declaration front-end (tools/cbs_lint/
// decl_index.*): nested classes, class templates, default member
// initializers, out-of-line definition attachment, and the include graph.
// The lint walk skips this file (its string literals are C++ fragments
// that would otherwise read as declarations of the scanned tree).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "decl_index.hpp"
#include "lint.hpp"

namespace {

using cbslint::ClassDecl;
using cbslint::DeclIndex;
using cbslint::MemberDecl;
using cbslint::MethodDecl;
using cbslint::ParsedFile;
using cbslint::SourceFile;

SourceFile make_file(const std::string& text, const std::string& rel) {
  SourceFile f;
  f.path = rel;
  std::istringstream in(text);
  std::string line;
  bool in_block = false;
  while (std::getline(in, line)) {
    f.code.push_back(cbslint::strip_line(line, in_block));
    f.raw.push_back(line);
  }
  return f;
}

DeclIndex index_of(const std::string& text,
                   const std::string& rel = "src/core/test.hpp") {
  std::vector<ParsedFile> parsed;
  parsed.push_back(cbslint::parse_file(make_file(text, rel)));
  DeclIndex idx;
  idx.build(std::move(parsed));
  return idx;
}

const ClassDecl& get_class(const DeclIndex& idx, const std::string& name) {
  const auto it = idx.classes().find(name);
  EXPECT_NE(it, idx.classes().end()) << "class not indexed: " << name;
  return it->second;
}

const MemberDecl* find_member(const ClassDecl& cls, const std::string& name) {
  for (const MemberDecl& m : cls.members) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const MethodDecl* find_method(const ClassDecl& cls, const std::string& name) {
  for (const MethodDecl& m : cls.methods) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

TEST(DeclParser, MembersWithDefaultInitializers) {
  const DeclIndex idx = index_of(R"(
namespace cbs::core {
class Widget {
 public:
  void tick();
 private:
  int plain_;
  double braced_{1.5};
  long assigned_ = 42;
  static int shared_;
  Registry& reg_;
  Registry* raw_;
};
}  // namespace cbs::core
)");
  const ClassDecl& cls = get_class(idx, "cbs::core::Widget");
  ASSERT_NE(find_member(cls, "plain_"), nullptr);
  const MemberDecl* braced = find_member(cls, "braced_");
  ASSERT_NE(braced, nullptr);
  EXPECT_TRUE(braced->has_default_init);
  const MemberDecl* assigned = find_member(cls, "assigned_");
  ASSERT_NE(assigned, nullptr);
  EXPECT_TRUE(assigned->has_default_init);
  const MemberDecl* shared = find_member(cls, "shared_");
  ASSERT_NE(shared, nullptr);
  EXPECT_TRUE(shared->is_static);
  const MemberDecl* ref = find_member(cls, "reg_");
  ASSERT_NE(ref, nullptr);
  EXPECT_TRUE(ref->is_reference);
  const MemberDecl* ptr = find_member(cls, "raw_");
  ASSERT_NE(ptr, nullptr);
  EXPECT_TRUE(ptr->is_pointer);
  // Method declarations never leak into the member table.
  EXPECT_EQ(find_member(cls, "tick"), nullptr);
  ASSERT_NE(find_method(cls, "tick"), nullptr);
  EXPECT_FALSE(find_method(cls, "tick")->has_body);
}

TEST(DeclParser, NestedClassesGetQualifiedNames) {
  const DeclIndex idx = index_of(R"(
namespace cbs::net {
class Link {
 public:
  struct Cold {
    EventId activation_event{};
  };
 private:
  Cold cold_;
  EventId timer_{};
};
}  // namespace cbs::net
)");
  const ClassDecl& outer = get_class(idx, "cbs::net::Link");
  const ClassDecl& inner = get_class(idx, "cbs::net::Link::Cold");
  EXPECT_NE(find_member(outer, "timer_"), nullptr);
  EXPECT_NE(find_member(outer, "cold_"), nullptr);
  const MemberDecl* ev = find_member(inner, "activation_event");
  ASSERT_NE(ev, nullptr);
  EXPECT_NE(ev->type_text.find("EventId"), std::string::npos);
  // The nested class's members stay out of the outer table and vice versa.
  EXPECT_EQ(find_member(outer, "activation_event"), nullptr);
  EXPECT_EQ(find_member(inner, "timer_"), nullptr);
  EXPECT_EQ(idx.enclosing("cbs::net::Link::Cold"), &outer);
  EXPECT_EQ(idx.enclosing("cbs::net::Link"), nullptr);
}

TEST(DeclParser, TemplatedClassAndTemplatedMembers) {
  const DeclIndex idx = index_of(R"(
namespace cbs::util {
template <typename K, typename V>
class FlatMap {
 public:
  V& at(const K& key);
 private:
  std::vector<std::pair<K, V>> entries_;
};
class Holder {
 private:
  FlatMap<std::uint64_t, double> table_;
  std::vector<std::pair<int, int>> pairs_{};
};
}  // namespace cbs::util
)");
  const ClassDecl& tmpl = get_class(idx, "cbs::util::FlatMap");
  EXPECT_TRUE(tmpl.is_template);
  ASSERT_NE(find_member(tmpl, "entries_"), nullptr);
  const ClassDecl& holder = get_class(idx, "cbs::util::Holder");
  const MemberDecl* table = find_member(holder, "table_");
  ASSERT_NE(table, nullptr);
  // The comma inside the template argument list must not split the member.
  EXPECT_NE(table->type_text.find("FlatMap"), std::string::npos);
  const MemberDecl* pairs = find_member(holder, "pairs_");
  ASSERT_NE(pairs, nullptr);
  EXPECT_TRUE(pairs->has_default_init);
}

TEST(DeclParser, OutOfLineDefinitionsAttachToTheirClass) {
  const std::string header = R"(
namespace cbs::core {
class Controller {
 public:
  Controller(Simulation& dst, const Controller& src);
  void rebuild_events(SnapshotContext& ctx);
 private:
  EventId probe_event_{};
};
}  // namespace cbs::core
)";
  const std::string source = R"(
namespace cbs::core {
Controller::Controller(Simulation& dst, const Controller& src)
    : probe_event_(src.probe_event_) {}
void Controller::rebuild_events(SnapshotContext& ctx) {
  probe_event_ = ctx.restore(probe_event_, 0);
}
}  // namespace cbs::core
)";
  std::vector<ParsedFile> parsed;
  parsed.push_back(
      cbslint::parse_file(make_file(header, "src/core/controller.hpp")));
  parsed.push_back(
      cbslint::parse_file(make_file(source, "src/core/controller.cpp")));
  DeclIndex idx;
  idx.build(std::move(parsed));
  const ClassDecl& cls = get_class(idx, "cbs::core::Controller");
  bool saw_ctor_body = false;
  bool saw_rebuild_body = false;
  for (const MethodDecl& m : cls.methods) {
    if (m.name == "Controller" && m.has_body) {
      saw_ctor_body = true;
      EXPECT_NE(m.init_list.find("probe_event_"), std::string::npos);
    }
    if (m.name == "rebuild_events" && m.has_body) {
      saw_rebuild_body = true;
      EXPECT_NE(m.body.find("restore"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_ctor_body);
  EXPECT_TRUE(saw_rebuild_body);
}

TEST(DeclParser, IncludeGraphCollectsQuotedIncludesOnly) {
  const DeclIndex idx = index_of(R"(
#include "simcore/simulation.hpp"
#include <vector>
#include "util/flat_map.hpp"
namespace cbs::core {}
)");
  std::vector<std::string> targets;
  for (const auto& edge : idx.includes()) targets.push_back(edge.target);
  EXPECT_EQ(targets,
            (std::vector<std::string>{"simcore/simulation.hpp",
                                      "util/flat_map.hpp"}));
}

TEST(DeclParser, DeletedAndDefaultedSpecialMembers) {
  const DeclIndex idx = index_of(R"(
namespace cbs::core {
class Fixed {
 public:
  Fixed() = default;
  Fixed(const Fixed&) = delete;
  Fixed& operator=(const Fixed&) = delete;
 private:
  int value_ = 0;
};
}  // namespace cbs::core
)");
  const ClassDecl& cls = get_class(idx, "cbs::core::Fixed");
  bool saw_deleted_copy = false;
  for (const MethodDecl& m : cls.methods) {
    if (m.name == "Fixed" && m.is_deleted) saw_deleted_copy = true;
    EXPECT_FALSE(m.has_body);
  }
  EXPECT_TRUE(saw_deleted_copy);
  ASSERT_NE(find_member(cls, "value_"), nullptr);
}

}  // namespace
