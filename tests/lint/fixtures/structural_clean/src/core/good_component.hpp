// Positive fixture: a snapshot-aware component that satisfies all three
// structural rule families without waivers — clone constructor mentions
// every member, rebuild_events restores the stored id, and the include
// points down the module DAG. cbs_lint must exit 0 on this tree.
#pragma once

#include "simcore/snapshot.hpp"

namespace cbs::core {

class GoodComponent {
 public:
  GoodComponent(Simulation& dst, const GoodComponent& src)
      : count_(src.count_), timer_(src.timer_) {
    static_cast<void>(dst);
  }

  void arm(Simulation& sim) { timer_ = sim.schedule_in(1.0, 0); }
  void rebuild_events(SnapshotContext& ctx) {
    timer_ = ctx.restore(timer_, 0);
  }

 private:
  int count_ = 0;
  EventId timer_{};
};

}  // namespace cbs::core
