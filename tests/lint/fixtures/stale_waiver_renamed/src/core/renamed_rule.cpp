// Negative fixture for [stale-waiver], rename flavour: the waiver names a
// rule that does not exist (as after a rule rename), so it can never
// suppress anything — cbs_lint must report it as stale even though it
// "suppresses nothing" for a different reason than a fixed violation.
namespace cbs::core {

// cbs-lint: determinism-ok(rule was renamed; this waiver was left behind)
int renamed_rule_marker() { return 0; }

}  // namespace cbs::core
