// Negative fixture: a controller-side component caching a raw pointer to
// a peer component. cbs_lint must report [snapshot-unsafe] — the pointer's
// identity dies with the source engine on a fork, so the clone would keep
// steering the *parent's* link. Forkable state holds a rebindable
// reference, owned value state, or an id/slot handle instead.
#include "net/link.hpp"
#include "simcore/simulation.hpp"

namespace cbs::core {

class BadProbeDriver {
 public:
  explicit BadProbeDriver(cbs::net::Link& uplink) : uplink_(&uplink) {}

  void probe() { uplink_->submit(1.0e6, 2, nullptr); }

 private:
  cbs::net::Link* uplink_;  // raw peer pointer: does not survive a fork
};

}  // namespace cbs::core
