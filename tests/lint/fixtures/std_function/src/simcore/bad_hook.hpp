// Negative fixture: std::function in an engine layer. cbs_lint must
// report [std-function]; the fix is cbs::sim::UniqueFunction.
#pragma once

#include <functional>

namespace cbs::sim {

struct BadHook {
  std::function<void(int)> on_fire;
};

}  // namespace cbs::sim
