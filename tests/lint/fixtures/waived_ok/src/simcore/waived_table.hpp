// Positive fixture: the same violation as nondeterministic_container, but
// carrying well-formed waivers — cbs_lint must exit 0 on this tree.
#pragma once

#include <cstdint>
// cbs-lint: nondeterministic-ok(fixture: include waived to prove the waiver path)
#include <unordered_map>

namespace cbs::sim {

struct WaivedTable {
  // cbs-lint: nondeterministic-ok(fixture: lookup-only table, never iterated)
  std::unordered_map<std::uint64_t, double> jobs;
};

}  // namespace cbs::sim
