// Negative fixture: ambient randomness and wall-clock reads inside the
// model. cbs_lint must report [wall-clock] for each of the three reads.
#include <chrono>
#include <cstdlib>
#include <random>

namespace cbs::core {

double bad_jitter() {
  std::random_device entropy;
  const double r = static_cast<double>(rand()) / RAND_MAX;
  const auto wall = std::chrono::system_clock::now().time_since_epoch();
  return r + static_cast<double>(wall.count()) + static_cast<double>(entropy());
}

}  // namespace cbs::core
