// Negative fixture: per-item timer churn — every transfer's completion
// event is cancelled and rescheduled inside the reallocation loop, N
// cancel + N schedule calls per pass. cbs_lint must report [event-churn]
// at the line where the pair completes.
#include <vector>

namespace cbs::sim {
struct EventId {};
struct Simulation {
  EventId schedule_in(double d);
  void cancel(EventId id);
};
}  // namespace cbs::sim

namespace cbs::net {

struct Active {
  cbs::sim::EventId completion;
  double eta = 0.0;
};

void rearm_all(cbs::sim::Simulation& sim, std::vector<Active>& transfers) {
  for (Active& t : transfers) {
    sim.cancel(t.completion);
    t.completion = sim.schedule_in(t.eta);
  }
}

}  // namespace cbs::net
