// Negative fixture: a waiver that suppresses nothing. cbs_lint must report
// [stale-waiver] so dead waivers cannot silently re-authorize future code.
namespace cbs::core {

// cbs-lint: wall-clock-ok(fixture: the offending call was deleted long ago)
double stale() { return 0.0; }

}  // namespace cbs::core
