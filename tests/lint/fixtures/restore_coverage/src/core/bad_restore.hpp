// Negative fixture for [restore-coverage]: Pinger stores an EventId and
// schedules events, but defines no rebuild_events(SnapshotContext&) (and
// no clone constructor restoring the id) — a fork would orphan the event.
#pragma once

namespace cbs::core {

class Pinger {
 public:
  explicit Pinger(Simulation& sim) : sim_(sim) {}
  void arm() { timer_ = sim_.schedule_in(1.0, 0); }

 private:
  Simulation& sim_;
  EventId timer_{};
};

// Partial coverage: rebuild_events exists but forgets one of two ids —
// the report must name `lost_` specifically.
class DoublePinger {
 public:
  explicit DoublePinger(Simulation& sim) : sim_(sim) {}
  void arm() {
    kept_ = sim_.schedule_in(1.0, 0);
    lost_ = sim_.schedule_in(2.0, 0);
  }
  void rebuild_events(SnapshotContext& ctx) { kept_ = ctx.restore(kept_, 0); }

 private:
  Simulation& sim_;
  EventId kept_{};
  EventId lost_{};
};

}  // namespace cbs::core
