// Negative fixture: float in time/size arithmetic. cbs_lint must report
// [float-arithmetic]; times and sizes are double end-to-end.
namespace cbs::sla {

float bad_turnaround(float completed, float arrival) {
  return completed - arrival;
}

}  // namespace cbs::sla
