// Negative fixture for [snapshot-complete]: `forgotten_` is a non-static
// data member of a class with a clone constructor, and the constructor
// neither copies nor deliberately resets it — the report must name it.
#pragma once

namespace cbs::core {

class Widget {
 public:
  Widget(Simulation& dst, const Widget& src) : copied_(src.copied_) {
    reset_in_body_ = 0;
  }

 private:
  int copied_ = 0;
  int reset_in_body_ = 0;
  int forgotten_ = 0;
};

}  // namespace cbs::core
