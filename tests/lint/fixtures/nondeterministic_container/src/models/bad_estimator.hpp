// Negative fixture: hash-ordered container in estimator state. Model
// state (hazard, QRSM) is iterated and forked, so the
// [nondeterministic-container] rule must fire in src/models/ too.
#pragma once

#include <cstddef>
#include <unordered_set>

namespace cbs::models {

struct BadEstimator {
  std::unordered_set<std::size_t> flagged_machines;
};

}  // namespace cbs::models
