// Negative fixture: hash-ordered container in sim state. cbs_lint must
// report [nondeterministic-container] for both the include and the member.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace cbs::sim {

struct BadTable {
  std::unordered_map<std::uint64_t, double> jobs;
};

}  // namespace cbs::sim
