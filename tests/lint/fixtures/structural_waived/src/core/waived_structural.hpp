// Positive fixture: the same structural violations as snapshot_complete /
// restore_coverage / layering, each carrying a well-formed per-member
// waiver — cbs_lint must exit 0 and list three active waivers.
#pragma once

// cbs-lint: layering-ok(fixture: proves the layering waiver path)
#include "harness/world.hpp"

namespace cbs::core {

class WaivedWidget {
 public:
  WaivedWidget(Simulation& dst, const WaivedWidget& src)
      : copied_(src.copied_) {
    static_cast<void>(dst);
  }
  void arm(Simulation& sim) { timer_ = sim.schedule_in(1.0, 0); }

 private:
  int copied_ = 0;
  // cbs-lint: snapshot-complete-ok(fixture: owner re-wires this post-fork)
  int rewired_ = 0;
  // cbs-lint: restore-coverage-ok(fixture: owner restores this id)
  EventId timer_{};  // cbs-lint: snapshot-complete-ok(fixture: rewired)
};

}  // namespace cbs::core
