// Negative fixture for [layering]: simcore sits below core in the module
// DAG, so this include is a back-edge and must be reported.
#pragma once

#include "core/controller.hpp"
#include "util/flat_map.hpp"

namespace cbs::sim {}  // namespace cbs::sim
