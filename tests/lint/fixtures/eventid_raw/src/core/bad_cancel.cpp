// Negative fixture: EventId forged from a raw value at a cancellation
// site. cbs_lint must report [eventid-raw] — a fabricated handle bypasses
// the generation check that makes cancel() safe against slot reuse.
#include "simcore/simulation.hpp"

namespace cbs::core {

void bad_cancel(cbs::sim::Simulation& sim) {
  sim.cancel(cbs::sim::EventId{42});
}

}  // namespace cbs::core
