// Tests for the parallel experiment runner (harness/runner.hpp): plan
// construction, determinism across thread counts, failure isolation,
// result ordering, progress reporting and the aggregation reducers.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"

namespace {

using namespace cbs;
using core::SchedulerKind;
using workload::SizeBucket;

harness::ExperimentPlan small_grid() {
  harness::Scenario base;
  base.num_batches = 2;  // keep the simulated runs short
  return harness::ExperimentPlan::grid(
      {42, 7}, {SchedulerKind::kGreedy, SchedulerKind::kOrderPreserving},
      {SizeBucket::kUniform}, base);
}

TEST(ExperimentPlanTest, GridIsSeedMajorThenBucketThenScheduler) {
  harness::ExperimentPlan plan = harness::ExperimentPlan::grid(
      {1, 2}, {SchedulerKind::kGreedy, SchedulerKind::kOrderPreserving},
      {SizeBucket::kUniform, SizeBucket::kLargeBiased});
  const auto cells = plan.cells();
  ASSERT_EQ(cells.size(), 8u);
  ASSERT_EQ(plan.cell_count(), 8u);
  // Cell 0: first seed, first bucket, first scheduler.
  EXPECT_EQ(cells[0].scenario.seed, 1u);
  EXPECT_EQ(cells[0].scenario.scheduler, SchedulerKind::kGreedy);
  EXPECT_EQ(cells[0].scenario.bucket, SizeBucket::kUniform);
  // Scheduler is the fastest-moving axis.
  EXPECT_EQ(cells[1].scenario.scheduler, SchedulerKind::kOrderPreserving);
  EXPECT_EQ(cells[1].scenario.bucket, SizeBucket::kUniform);
  // Then the bucket axis.
  EXPECT_EQ(cells[2].scenario.bucket, SizeBucket::kLargeBiased);
  // Seed is the slowest-moving axis.
  EXPECT_EQ(cells[4].scenario.seed, 2u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(plan.grid_index(cells[i].seed_index, cells[i].bucket_index,
                              cells[i].scheduler_index),
              i);
  }
  // Names do not embed the seed, so group_by_name folds across seeds.
  EXPECT_EQ(cells[0].scenario.name, cells[4].scenario.name);
}

TEST(ExperimentPlanTest, ExtrasAppendAfterGridWithoutAxes) {
  harness::ExperimentPlan plan = harness::ExperimentPlan::grid(
      {1}, {SchedulerKind::kGreedy}, {SizeBucket::kUniform});
  harness::Scenario extra;
  extra.name = "extra";
  plan.extra.push_back(extra);
  const auto cells = plan.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1].scenario.name, "extra");
  EXPECT_EQ(cells[1].seed_index, harness::PlanCell::kNoAxis);
  EXPECT_EQ(cells[1].scheduler_index, harness::PlanCell::kNoAxis);
}

TEST(ExperimentPlanTest, CustomizeHookSeesCellCoordinates) {
  harness::ExperimentPlan plan = harness::ExperimentPlan::grid(
      {1, 2}, {SchedulerKind::kGreedy}, {SizeBucket::kUniform});
  plan.customize = [](harness::Scenario& s, const harness::PlanCell& cell) {
    s.num_batches = 10 + cell.seed_index;
  };
  const auto cells = plan.cells();
  EXPECT_EQ(cells[0].scenario.num_batches, 10u);
  EXPECT_EQ(cells[1].scenario.num_batches, 11u);
}

// The acceptance property of the whole refactor: a plan executed at 1, 2
// and 8 threads yields bit-identical metrics, because every run is a pure
// function of its scenario.
TEST(RunnerTest, IdenticalResultsAtAnyThreadCount) {
  const harness::ExperimentPlan plan = small_grid();

  auto run_at = [&plan](std::size_t threads) {
    harness::RunnerOptions opts;
    opts.threads = threads;
    return harness::run_plan(plan, opts);
  };
  const auto r1 = run_at(1);
  const auto r2 = run_at(2);
  const auto r8 = run_at(8);

  ASSERT_EQ(r1.size(), plan.cell_count());
  ASSERT_EQ(harness::failed_cells(r1), 0u);
  for (const auto* other : {&r2, &r8}) {
    ASSERT_EQ(other->size(), r1.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
      const auto& a = *r1[i].result;
      const auto& b = *(*other)[i].result;
      EXPECT_EQ((*other)[i].cell.index, i);
      EXPECT_EQ(a.scenario.name, b.scenario.name);
      EXPECT_EQ(a.outcomes.size(), b.outcomes.size());
      EXPECT_EQ(a.events_processed, b.events_processed);
      EXPECT_EQ(a.report.makespan_seconds, b.report.makespan_seconds);
      EXPECT_EQ(a.report.speedup, b.report.speedup);
      EXPECT_EQ(a.report.oo_time_averaged_mb, b.report.oo_time_averaged_mb);
    }
  }
}

// A throwing cell must surface as a failed CellResult with the exception
// text, while its siblings complete normally.
TEST(RunnerTest, ThrowingCellDoesNotAbortSiblings) {
  std::vector<harness::Scenario> list;
  for (int i = 0; i < 6; ++i) {
    harness::Scenario s;
    s.name = i == 3 ? "bad" : "good";
    s.seed = static_cast<std::uint64_t>(i);
    list.push_back(s);
  }
  harness::RunnerOptions opts;
  opts.threads = 4;
  opts.run = [](const harness::Scenario& s) -> harness::RunResult {
    if (s.name == "bad") throw std::runtime_error("injected fault");
    harness::RunResult r;
    r.scenario = s;
    r.sim_end_time = 1.0;
    return r;
  };
  const auto results =
      harness::run_plan(harness::ExperimentPlan::list(list), opts);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(harness::failed_cells(results), 1u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 3) {
      EXPECT_FALSE(results[i].ok());
      EXPECT_EQ(results[i].error, "injected fault");
      EXPECT_FALSE(results[i].result.has_value());
    } else {
      EXPECT_TRUE(results[i].ok());
      EXPECT_EQ(results[i].result->scenario.name, "good");
    }
  }
}

// Result order must follow the plan, not completion: early cells are made
// slow so later cells finish first on a multi-thread pool.
TEST(RunnerTest, ResultOrderIndependentOfCompletionOrder) {
  std::vector<harness::Scenario> list(8);
  for (std::size_t i = 0; i < list.size(); ++i) {
    list[i].seed = i;
    list[i].name = "cell-" + std::to_string(i);
  }
  harness::RunnerOptions opts;
  opts.threads = 4;
  opts.run = [](const harness::Scenario& s) {
    // Earlier cells sleep longer, inverting the completion order.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<std::int64_t>(5 * (8 - s.seed))));
    harness::RunResult r;
    r.scenario = s;
    return r;
  };
  const auto results =
      harness::run_plan(harness::ExperimentPlan::list(list), opts);
  ASSERT_EQ(results.size(), list.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].cell.index, i);
    EXPECT_EQ(results[i].result->scenario.name, "cell-" + std::to_string(i));
  }
}

TEST(RunnerTest, ProgressCallbackReportsEveryCellExactlyOnce) {
  std::vector<harness::Scenario> list(5);
  for (std::size_t i = 0; i < list.size(); ++i) list[i].seed = i;
  std::mutex mu;
  std::vector<std::size_t> done_values;
  std::vector<std::size_t> cell_indices;
  harness::RunnerOptions opts;
  opts.threads = 3;
  opts.run = [](const harness::Scenario& s) {
    harness::RunResult r;
    r.scenario = s;
    return r;
  };
  opts.progress = [&](const harness::CellResult& cell, std::size_t done,
                      std::size_t total) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(total, 5u);
    done_values.push_back(done);
    cell_indices.push_back(cell.cell.index);
  };
  const auto results =
      harness::run_plan(harness::ExperimentPlan::list(list), opts);
  ASSERT_EQ(results.size(), 5u);
  ASSERT_EQ(done_values.size(), 5u);
  // done counts 1..total (the callback is serialized under a mutex).
  std::sort(done_values.begin(), done_values.end());
  for (std::size_t i = 0; i < done_values.size(); ++i) {
    EXPECT_EQ(done_values[i], i + 1);
  }
  // Every cell reported exactly once.
  std::sort(cell_indices.begin(), cell_indices.end());
  for (std::size_t i = 0; i < cell_indices.size(); ++i) {
    EXPECT_EQ(cell_indices[i], i);
  }
}

TEST(RunnerTest, ReduceOverSeedsFoldsTheSeedAxis) {
  harness::ExperimentPlan plan = harness::ExperimentPlan::grid(
      {10, 20, 30}, {SchedulerKind::kGreedy, SchedulerKind::kOrderPreserving},
      {SizeBucket::kUniform});
  harness::RunnerOptions opts;
  opts.threads = 2;
  opts.run = [](const harness::Scenario& s) {
    harness::RunResult r;
    r.scenario = s;
    // A fake metric that separates the axes: seed + a scheduler offset.
    r.sim_end_time =
        static_cast<double>(s.seed) +
        (s.scheduler == SchedulerKind::kOrderPreserving ? 1000.0 : 0.0);
    return r;
  };
  const auto results = harness::run_plan(plan, opts);
  const auto matrix = harness::reduce_over_seeds(
      plan, results,
      [](const harness::RunResult& r) { return r.sim_end_time; });
  ASSERT_EQ(matrix.row_labels().size(), 1u);
  ASSERT_EQ(matrix.col_labels().size(), 2u);
  EXPECT_EQ(matrix.cell(0, 0).count(), 3u);
  EXPECT_DOUBLE_EQ(matrix.cell(0, 0).mean(), 20.0);
  EXPECT_DOUBLE_EQ(matrix.cell(0, 1).mean(), 1020.0);
}

TEST(RunnerTest, GroupByNameFoldsSeedsAndKeepsFirstSeenOrder) {
  std::vector<harness::Scenario> list;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const char* name : {"alpha", "beta"}) {
      harness::Scenario s;
      s.seed = seed;
      s.name = name;
      list.push_back(s);
    }
  }
  harness::RunnerOptions opts;
  opts.threads = 2;
  opts.run = [](const harness::Scenario& s) {
    harness::RunResult r;
    r.scenario = s;
    r.sim_end_time = static_cast<double>(s.seed);
    return r;
  };
  const auto results =
      harness::run_plan(harness::ExperimentPlan::list(list), opts);
  const auto grouped = harness::group_by_name(
      results, [](const harness::RunResult& r) { return r.sim_end_time; });
  ASSERT_EQ(grouped.keys().size(), 2u);
  EXPECT_EQ(grouped.keys()[0], "alpha");
  EXPECT_EQ(grouped.keys()[1], "beta");
  EXPECT_EQ(grouped.at("alpha").count(), 3u);
  EXPECT_DOUBLE_EQ(grouped.at("alpha").mean(), 2.0);
}

TEST(RunnerTest, LastSeedResultsPicksTheFinalSeedRow) {
  harness::ExperimentPlan plan = harness::ExperimentPlan::grid(
      {10, 20}, {SchedulerKind::kGreedy, SchedulerKind::kOrderPreserving},
      {SizeBucket::kUniform});
  harness::RunnerOptions opts;
  opts.run = [](const harness::Scenario& s) {
    harness::RunResult r;
    r.scenario = s;
    return r;
  };
  const auto results = harness::run_plan(plan, opts);
  const auto last = harness::last_seed_results(plan, results);
  ASSERT_EQ(last.size(), 2u);
  EXPECT_EQ(last[0].scenario.seed, 20u);
  EXPECT_EQ(last[1].scenario.seed, 20u);
  EXPECT_EQ(last[0].scenario.scheduler, SchedulerKind::kGreedy);
  EXPECT_EQ(last[1].scenario.scheduler, SchedulerKind::kOrderPreserving);
}

TEST(CliSeedsTest, ParseSeedListAndFallback) {
  EXPECT_EQ(harness::cli::parse_seed_list("1,2,42"),
            (std::vector<std::uint64_t>{1, 2, 42}));
  EXPECT_THROW(harness::cli::parse_seed_list("1,,2"), std::runtime_error);
  EXPECT_THROW(harness::cli::parse_seed_list("abc"), std::invalid_argument);

  const char* argv1[] = {"prog", "--seeds", "5,6"};
  harness::cli::Args with(3, const_cast<char**>(argv1),
                          harness::cli::scenario_flags());
  EXPECT_EQ(harness::cli::seeds_from_args(with, {1, 2, 3}),
            (std::vector<std::uint64_t>{5, 6}));

  const char* argv2[] = {"prog"};
  harness::cli::Args without(1, const_cast<char**>(argv2),
                             harness::cli::scenario_flags());
  EXPECT_EQ(harness::cli::seeds_from_args(without, {1, 2, 3}),
            (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(CliSeedsTest, ThreadsFlagDefaultsToZero) {
  const char* argv1[] = {"prog", "--threads", "4"};
  harness::cli::Args with(3, const_cast<char**>(argv1),
                          harness::cli::scenario_flags());
  EXPECT_EQ(harness::cli::threads_from_args(with), 4u);

  const char* argv2[] = {"prog"};
  harness::cli::Args without(1, const_cast<char**>(argv2),
                             harness::cli::scenario_flags());
  EXPECT_EQ(harness::cli::threads_from_args(without), 0u);
}

}  // namespace
