#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/bandwidth_estimator.hpp"
#include "net/bandwidth_profile.hpp"
#include "net/ewma.hpp"
#include "net/link.hpp"
#include "net/noise.hpp"
#include "net/thread_tuner.hpp"
#include "simcore/simulation.hpp"
#include "stats/summary.hpp"

namespace {

using namespace cbs::net;
using cbs::sim::kDay;
using cbs::sim::kHour;
using cbs::sim::RngStream;
using cbs::sim::Simulation;

// ---- DiurnalProfile ---------------------------------------------------

TEST(DiurnalProfileTest, FlatIsAlwaysOne) {
  const auto p = DiurnalProfile::flat();
  for (double t : {0.0, 1234.5, kDay, 3.7 * kDay}) {
    EXPECT_DOUBLE_EQ(p.multiplier_at(t), 1.0);
  }
}

TEST(DiurnalProfileTest, HitsAnchorsAtSlotStarts) {
  const DiurnalProfile p({1.0, 2.0, 4.0, 8.0});
  EXPECT_DOUBLE_EQ(p.multiplier_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.multiplier_at(kDay / 4.0), 2.0);
  EXPECT_DOUBLE_EQ(p.multiplier_at(kDay / 2.0), 4.0);
}

TEST(DiurnalProfileTest, InterpolatesLinearly) {
  const DiurnalProfile p({1.0, 3.0});
  EXPECT_DOUBLE_EQ(p.multiplier_at(kDay / 4.0), 2.0);  // halfway to anchor 2
}

TEST(DiurnalProfileTest, WrapsAcrossMidnight) {
  const DiurnalProfile p({1.0, 3.0});
  // Last segment interpolates back toward the first anchor.
  EXPECT_DOUBLE_EQ(p.multiplier_at(0.75 * kDay), 2.0);
  EXPECT_DOUBLE_EQ(p.multiplier_at(kDay), 1.0);
  EXPECT_DOUBLE_EQ(p.multiplier_at(kDay + kDay / 4.0), 2.0);
}

TEST(DiurnalProfileTest, BusinessPipeDipsDuringOfficeHours) {
  const auto p = DiurnalProfile::business_pipe();
  EXPECT_GT(p.multiplier_at(3.0 * kHour), p.multiplier_at(12.0 * kHour));
  EXPECT_GT(p.multiplier_at(22.0 * kHour), p.multiplier_at(14.0 * kHour));
}

TEST(ThrottleTest, EpisodesMultiply) {
  const std::vector<ThrottleEpisode> eps = {{10.0, 20.0, 0.5}, {15.0, 30.0, 0.4}};
  EXPECT_DOUBLE_EQ(throttle_factor(eps, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(throttle_factor(eps, 12.0), 0.5);
  EXPECT_DOUBLE_EQ(throttle_factor(eps, 17.0), 0.2);
  EXPECT_DOUBLE_EQ(throttle_factor(eps, 25.0), 0.4);
  EXPECT_DOUBLE_EQ(throttle_factor(eps, 30.0), 1.0);  // end exclusive
}

// ---- Ar1LogNoise --------------------------------------------------------

TEST(NoiseTest, ZeroSigmaIsDeterministicOne) {
  Ar1LogNoise noise(0.9, 0.0, 30.0, RngStream(1));
  for (double t : {0.0, 100.0, 5000.0}) {
    EXPECT_DOUBLE_EQ(noise.multiplier_at(t), 1.0);
  }
}

TEST(NoiseTest, MultiplierIsPositive) {
  Ar1LogNoise noise(0.9, 0.5, 30.0, RngStream(2));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GT(noise.multiplier_at(i * 30.0), 0.0);
  }
}

TEST(NoiseTest, MeanIsApproximatelyOne) {
  // The mean-one normalization: raising sigma must not change the average
  // capacity (otherwise high-variation scenarios get faster pipes).
  for (double sigma : {0.1, 0.35}) {
    Ar1LogNoise noise(0.9, sigma, 30.0, RngStream(3));
    cbs::stats::Summary s;
    for (int i = 0; i < 200000; ++i) s.add(noise.multiplier_at(i * 30.0));
    EXPECT_NEAR(s.mean(), 1.0, 0.05) << "sigma=" << sigma;
  }
}

TEST(NoiseTest, HigherSigmaMeansMoreVariance) {
  Ar1LogNoise lo(0.9, 0.08, 30.0, RngStream(4));
  Ar1LogNoise hi(0.9, 0.35, 30.0, RngStream(4));
  cbs::stats::Summary slo;
  cbs::stats::Summary shi;
  for (int i = 0; i < 20000; ++i) {
    slo.add(lo.multiplier_at(i * 30.0));
    shi.add(hi.multiplier_at(i * 30.0));
  }
  EXPECT_GT(shi.cov(), 2.0 * slo.cov());
}

TEST(NoiseTest, DeterministicForSameSeed) {
  Ar1LogNoise a(0.9, 0.3, 30.0, RngStream(7));
  Ar1LogNoise b(0.9, 0.3, 30.0, RngStream(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.multiplier_at(i * 30.0), b.multiplier_at(i * 30.0));
  }
}

TEST(NoiseTest, LongIdleGapIsCheapAndValid) {
  Ar1LogNoise noise(0.99, 0.3, 30.0, RngStream(8));
  (void)noise.multiplier_at(0.0);
  // A week-long gap fast-forwards via the stationary law in O(1).
  const double m = noise.multiplier_at(7.0 * kDay);
  EXPECT_GT(m, 0.0);
  EXPECT_TRUE(std::isfinite(m));
}

// ---- Ewma ----------------------------------------------------------------

TEST(EwmaTest, FirstObservationInitializes) {
  Ewma e(0.3);
  EXPECT_FALSE(e.has_value());
  e.observe(10.0);
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, FollowsPaperRecurrence) {
  // S_n = alpha*Y_n + (1-alpha)*S_{n-1}
  Ewma e(0.25);
  e.observe(8.0);
  e.observe(16.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.25 * 16.0 + 0.75 * 8.0);
  e.observe(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.25 * 4.0 + 0.75 * 10.0);
}

TEST(EwmaTest, ConvergesToConstantSignal) {
  Ewma e(0.3);
  e.observe(0.0);
  for (int i = 0; i < 100; ++i) e.observe(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-6);
}

// ---- Link ------------------------------------------------------------------

LinkConfig basic_link(double rate = 1.0e6) {
  LinkConfig cfg;
  cfg.base_rate = rate;
  cfg.per_connection_cap = rate;  // one thread saturates
  cfg.noise_sigma = 0.0;
  cfg.setup_latency = 0.0;
  cfg.profile = DiurnalProfile::flat();
  return cfg;
}

TEST(LinkTest, SingleTransferTakesBytesOverRate) {
  Simulation sim;
  Link link(sim, basic_link(1.0e6), RngStream(1));
  double completed_at = -1.0;
  link.submit(5.0e6, 1, [&](const TransferRecord& rec) {
    completed_at = rec.completed;
  });
  sim.run();
  EXPECT_NEAR(completed_at, 5.0, 1e-9);
}

TEST(LinkTest, SetupLatencyDelaysStart) {
  Simulation sim;
  auto cfg = basic_link(1.0e6);
  cfg.setup_latency = 2.0;
  Link link(sim, cfg, RngStream(1));
  TransferRecord record;
  link.submit(1.0e6, 1, [&](const TransferRecord& rec) { record = rec; });
  sim.run();
  EXPECT_DOUBLE_EQ(record.started, 2.0);
  EXPECT_NEAR(record.completed, 3.0, 1e-9);
  EXPECT_NEAR(record.transfer_rate(), 1.0e6, 1.0);
  EXPECT_NEAR(record.effective_rate(), 1.0e6 / 3.0, 1.0);
}

TEST(LinkTest, PerConnectionCapLimitsSingleTransfer) {
  Simulation sim;
  auto cfg = basic_link(1.0e6);
  cfg.per_connection_cap = 0.25e6;
  Link link(sim, cfg, RngStream(1));
  double completed_at = -1.0;
  // 2 threads -> 0.5 MB/s even though the pipe offers 1 MB/s.
  link.submit(1.0e6, 2, [&](const TransferRecord& rec) {
    completed_at = rec.completed;
  });
  sim.run();
  EXPECT_NEAR(completed_at, 2.0, 1e-9);
}

TEST(LinkTest, ConcurrentTransfersShareCapacityFairly) {
  Simulation sim;
  Link link(sim, basic_link(1.0e6), RngStream(1));
  std::vector<double> completions;
  for (int i = 0; i < 2; ++i) {
    link.submit(1.0e6, 1, [&](const TransferRecord& rec) {
      completions.push_back(rec.completed);
    });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  // Both share 1 MB/s -> each effectively 0.5 MB/s -> both done at t=2.
  EXPECT_NEAR(completions[0], 2.0, 1e-6);
  EXPECT_NEAR(completions[1], 2.0, 1e-6);
}

TEST(LinkTest, WaterFillingRespectsSmallDemands) {
  Simulation sim;
  auto cfg = basic_link(1.0e6);
  cfg.per_connection_cap = 0.2e6;
  Link link(sim, cfg, RngStream(1));
  std::vector<std::pair<int, double>> done;  // (tag, time)
  // Transfer A: 1 thread -> demand 0.2 MB/s. Transfer B: 8 threads -> wants
  // 1.6 but gets the remaining 0.8.
  link.submit(0.2e6, 1, [&](const TransferRecord& rec) {
    done.emplace_back(0, rec.completed);
  });
  link.submit(1.6e6, 8, [&](const TransferRecord& rec) {
    done.emplace_back(1, rec.completed);
  });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].first, 0);
  EXPECT_NEAR(done[0].second, 1.0, 1e-6);  // 0.2 MB at 0.2 MB/s
  // B: 0.8 MB/s while A alive (1s -> 0.8 MB done), then full 1.0 MB/s for
  // the remaining 0.8 MB -> 1.8s total.
  EXPECT_NEAR(done[1].second, 1.8, 1e-6);
}

TEST(LinkTest, ConservesBytes) {
  Simulation sim;
  auto cfg = basic_link(0.8e6);
  cfg.noise_sigma = 0.3;
  cfg.noise_step = 10.0;
  cfg.per_connection_cap = 0.2e6;
  Link link(sim, cfg, RngStream(99));
  RngStream rng(5);
  double submitted = 0.0;
  for (int i = 0; i < 40; ++i) {
    const double bytes = rng.uniform(0.1e6, 20.0e6);
    submitted += bytes;
    const double when = rng.uniform(0.0, 500.0);
    sim.schedule_at(when, [&link, bytes] {
      link.submit(bytes, 2, nullptr);
    });
  }
  sim.run();
  EXPECT_NEAR(link.total_bytes_delivered(), submitted, 1.0);
  EXPECT_EQ(link.completed().size(), 40u);
  EXPECT_EQ(link.active_transfers(), 0u);
}

TEST(LinkTest, ThrottleSlowsTransfers) {
  Simulation sim;
  auto cfg = basic_link(1.0e6);
  cfg.throttles = {{0.0, 1000.0, 0.5}};
  Link link(sim, cfg, RngStream(1));
  double completed_at = -1.0;
  link.submit(1.0e6, 1, [&](const TransferRecord& rec) {
    completed_at = rec.completed;
  });
  sim.run();
  EXPECT_NEAR(completed_at, 2.0, 1e-6);
}

TEST(LinkTest, CapacityFloorGuaranteesProgress) {
  Simulation sim;
  auto cfg = basic_link(1.0e6);
  cfg.throttles = {{0.0, 1e9, 1e-9}};  // throttled to (almost) nothing
  cfg.min_capacity_fraction = 0.1;     // ... but the floor holds 0.1 MB/s
  Link link(sim, cfg, RngStream(1));
  double completed_at = -1.0;
  link.submit(1.0e6, 1, [&](const TransferRecord& rec) {
    completed_at = rec.completed;
  });
  sim.run();
  EXPECT_NEAR(completed_at, 10.0, 1e-6);
}

TEST(LinkTest, BusyTimeTracksActivity) {
  Simulation sim;
  Link link(sim, basic_link(1.0e6), RngStream(1));
  link.submit(2.0e6, 1, nullptr);
  sim.schedule_at(10.0, [&] { link.submit(1.0e6, 1, nullptr); });
  sim.run();
  EXPECT_NEAR(link.busy_time(), 3.0, 1e-6);  // [0,2] and [10,11]
}

TEST(LinkTest, DiurnalProfileChangesRateAcrossTicks) {
  Simulation sim;
  auto cfg = basic_link(1.0e6);
  // Slow first half-day, fast second half.
  cfg.profile = DiurnalProfile({0.5, 0.5, 2.0, 2.0});
  cfg.noise_step = 60.0;
  Link link(sim, cfg, RngStream(1));
  double completed_at = -1.0;
  link.submit(3.0e6, 1, [&](const TransferRecord& rec) {
    completed_at = rec.completed;
  });
  sim.run();
  // At 0.5 MB/s, 3 MB would take 6s — with piecewise re-evaluation it stays
  // ~6s because we are deep inside the slow slot.
  EXPECT_NEAR(completed_at, 6.0, 0.1);
}

// ---- BandwidthEstimator ------------------------------------------------

TEST(BandwidthEstimatorTest, PriorBeforeObservations) {
  BandwidthEstimator est({.slots_per_day = 24, .alpha = 0.3, .prior_rate = 5.0e5});
  EXPECT_DOUBLE_EQ(est.estimate(0.0), 5.0e5);
  EXPECT_DOUBLE_EQ(est.last_observed(), 5.0e5);
}

TEST(BandwidthEstimatorTest, SlotMapping) {
  BandwidthEstimator est({.slots_per_day = 24, .alpha = 0.3, .prior_rate = 1.0});
  EXPECT_EQ(est.slot_of(0.0), 0u);
  EXPECT_EQ(est.slot_of(kHour + 1.0), 1u);
  EXPECT_EQ(est.slot_of(23.5 * kHour), 23u);
  EXPECT_EQ(est.slot_of(kDay + kHour), 1u);  // wraps
}

TEST(BandwidthEstimatorTest, SlotEwmaThenGlobalFallback) {
  BandwidthEstimator est({.slots_per_day = 24, .alpha = 0.5, .prior_rate = 1.0});
  est.observe(0.5 * kHour, 100.0);  // slot 0
  EXPECT_DOUBLE_EQ(est.estimate(0.0), 100.0);
  // Slot 5 has no data: falls back to the global EWMA (= 100).
  EXPECT_DOUBLE_EQ(est.estimate(5.0 * kHour), 100.0);
  est.observe(5.5 * kHour, 300.0);
  EXPECT_DOUBLE_EQ(est.estimate(5.0 * kHour), 300.0);
  // Global is now 0.5*300 + 0.5*100 = 200 for untouched slots.
  EXPECT_DOUBLE_EQ(est.estimate(10.0 * kHour), 200.0);
}

TEST(BandwidthEstimatorTest, TransferSecondsSimpleCase) {
  BandwidthEstimator est({.slots_per_day = 1, .alpha = 0.3, .prior_rate = 1.0e6});
  EXPECT_NEAR(est.estimate_transfer_seconds(0.0, 5.0e6), 5.0, 1e-9);
}

TEST(BandwidthEstimatorTest, TransferSecondsBlendsAcrossSlots) {
  BandwidthEstimator est({.slots_per_day = 24, .alpha = 1.0, .prior_rate = 1.0e6});
  // Slot 0 fast (2 MB/s), slot 1 slow (0.5 MB/s).
  est.observe(0.0, 2.0e6);
  est.observe(kHour, 0.5e6);
  for (int s = 2; s < 24; ++s) est.observe(static_cast<double>(s) * kHour, 1.0e6);
  // Start 30 min before the slot boundary with 7.2 GB-equivalent... use a
  // transfer that takes 30 min at 2 MB/s plus 1 hour at 0.5 MB/s:
  const double bytes = 2.0e6 * 1800.0 + 0.5e6 * 3600.0;
  const double secs = est.estimate_transfer_seconds(1800.0, bytes);
  EXPECT_NEAR(secs, 1800.0 + 3600.0, 1.0);
}

TEST(BandwidthEstimatorTest, LastObservedIsRaw) {
  BandwidthEstimator est({.slots_per_day = 24, .alpha = 0.1, .prior_rate = 1.0});
  est.observe(0.0, 100.0);
  est.observe(1.0, 900.0);
  EXPECT_DOUBLE_EQ(est.last_observed(), 900.0);
  EXPECT_LT(est.estimate(0.0), 300.0);  // EWMA is far behind the spike
}

// ---- ThreadTuner ---------------------------------------------------------

TEST(ThreadTunerTest, StartsAtInitial) {
  ThreadTuner tuner({.slots_per_day = 1, .min_threads = 1, .max_threads = 8,
                     .initial_threads = 3});
  EXPECT_EQ(tuner.suggest(0.0), 3);
}

TEST(ThreadTunerTest, ClimbsWhenMoreThreadsPayOff) {
  ThreadTuner tuner({.slots_per_day = 1, .min_threads = 1, .max_threads = 16,
                     .initial_threads = 2});
  // Throughput proportional to thread count (unsaturated pipe).
  for (int i = 0; i < 60; ++i) {
    const int t = tuner.suggest(0.0);
    tuner.report(0.0, t, 100.0 * t);
  }
  EXPECT_GE(tuner.best_for_slot(0), 6);
}

TEST(ThreadTunerTest, StopsAtSaturation) {
  ThreadTuner tuner({.slots_per_day = 1, .min_threads = 1, .max_threads = 16,
                     .initial_threads = 2, .improvement_threshold = 0.05});
  // Pipe saturates at 4 threads.
  for (int i = 0; i < 120; ++i) {
    const int t = tuner.suggest(0.0);
    tuner.report(0.0, t, 100.0 * std::min(t, 4));
  }
  EXPECT_GE(tuner.best_for_slot(0), 3);
  EXPECT_LE(tuner.best_for_slot(0), 5);
}

TEST(ThreadTunerTest, PrefersFewerThreadsAtEqualThroughput) {
  ThreadTuner tuner({.slots_per_day = 1, .min_threads = 1, .max_threads = 16,
                     .initial_threads = 8});
  // Flat throughput: fewer connections should win over time.
  for (int i = 0; i < 200; ++i) {
    const int t = tuner.suggest(0.0);
    tuner.report(0.0, t, 500.0);
  }
  EXPECT_LT(tuner.best_for_slot(0), 8);
}

TEST(ThreadTunerTest, SlotsAreIndependent) {
  ThreadTuner tuner({.slots_per_day = 24, .min_threads = 1, .max_threads = 16,
                     .initial_threads = 2});
  for (int i = 0; i < 60; ++i) {
    const int t = tuner.suggest(0.0);  // slot 0 only
    tuner.report(0.0, t, 100.0 * t);
  }
  EXPECT_GE(tuner.best_for_slot(0), 4);
  EXPECT_EQ(tuner.best_for_slot(12), 2);  // untouched slot keeps the initial
}

}  // namespace
