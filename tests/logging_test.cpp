#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simcore/logging.hpp"

namespace {

using cbs::sim::Logger;
using cbs::sim::LogLevel;

struct Captured {
  LogLevel level;
  double time;
  std::string message;
};

Logger capturing_logger(std::vector<Captured>& sink,
                        LogLevel threshold = LogLevel::kDebug) {
  Logger logger("test", threshold);
  // The constructor floors the threshold at the process-wide default;
  // set_threshold afterwards expresses an explicit per-test choice.
  logger.set_threshold(threshold);
  logger.set_sink([&sink](LogLevel level, double t, std::string_view msg) {
    sink.push_back({level, t, std::string(msg)});
  });
  return logger;
}

TEST(LoggerTest, MessagesBelowThresholdAreDropped) {
  std::vector<Captured> sink;
  Logger logger = capturing_logger(sink, LogLevel::kWarn);
  logger.debug(1.0, "quiet");
  logger.info(2.0, "quiet");
  logger.warn(3.0, "loud");
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0].level, LogLevel::kWarn);
  EXPECT_DOUBLE_EQ(sink[0].time, 3.0);
}

TEST(LoggerTest, MessagesAreFormattedWithComponent) {
  std::vector<Captured> sink;
  Logger logger = capturing_logger(sink);
  logger.info(5.0, "job ", 42, " done in ", 1.5, "s");
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0].message, "[test] job 42 done in 1.5s");
}

TEST(LoggerTest, ThresholdCanBeRaisedAtRuntime) {
  std::vector<Captured> sink;
  Logger logger = capturing_logger(sink, LogLevel::kDebug);
  logger.set_threshold(LogLevel::kError);
  logger.warn(1.0, "dropped");
  EXPECT_TRUE(sink.empty());
  EXPECT_FALSE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
}

TEST(LoggerTest, OffSilencesEverything) {
  std::vector<Captured> sink;
  Logger logger = capturing_logger(sink, LogLevel::kOff);
  logger.log(LogLevel::kError, 1.0, "nope");
  EXPECT_TRUE(sink.empty());
}

TEST(LoggerTest, GlobalThresholdFloorsNewLoggers) {
  const LogLevel before = Logger::global_threshold();
  Logger::set_global_threshold(LogLevel::kError);
  std::vector<Captured> sink;
  Logger logger("late", LogLevel::kDebug);
  logger.set_sink([&sink](LogLevel level, double t, std::string_view msg) {
    sink.push_back({level, t, std::string(msg)});
  });
  logger.info(1.0, "dropped by global floor");
  EXPECT_TRUE(sink.empty());
  Logger::set_global_threshold(before);
}

TEST(LoggerTest, LevelNames) {
  EXPECT_EQ(cbs::sim::to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(cbs::sim::to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(cbs::sim::to_string(LogLevel::kOff), "OFF");
}

}  // namespace
