#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/controller.hpp"
#include "simcore/simulation.hpp"
#include "sla/metrics.hpp"
#include "workload/arrival.hpp"
#include "workload/generator.hpp"

namespace {

using namespace cbs::core;
using cbs::sim::RngStream;
using cbs::sim::Simulation;
using cbs::sla::Placement;

/// A tiny deterministic rig: flat fast pipe, no noise, no probing, oracle
/// estimator, noise-free ground truth — controller behaviour is exact.
struct Rig {
  Simulation sim;
  cbs::workload::GroundTruthModel truth{{.noise_sigma = 0.0}, RngStream(1)};

  static ControllerConfig config(SchedulerKind kind) {
    ControllerConfig cfg;  // flat links, no diurnal, defaults below
    cfg.scheduler = kind;
    cfg.estimator = EstimatorKind::kOracle;
    cfg.probe_interval = 0.0;  // no probes: event counts stay minimal
    cfg.uplink.base_rate = 1.0e6;
    cfg.uplink.per_connection_cap = 1.0e6;
    cfg.uplink.noise_sigma = 0.0;
    cfg.uplink.setup_latency = 0.0;
    cfg.downlink = cfg.uplink;
    cfg.bandwidth_estimator.prior_rate = 1.0e6;
    cfg.topology.ic_machines = 2;
    cfg.topology.ec_machines = 1;
    cfg.topology.ec_job_overhead_seconds = 0.0;
    cfg.params.variability_threshold_mb = 1e9;  // no chunking unless asked
    cfg.params.slack_safety_margin = 0.0;
    return cfg;
  }

  cbs::workload::Batch batch(std::size_t index,
                             const std::vector<double>& sizes_mb) {
    cbs::workload::Batch b;
    b.batch_index = index;
    b.arrival_time = sim.now();
    std::uint64_t id = next_doc_id_;
    for (double s : sizes_mb) {
      cbs::workload::Document d;
      d.doc_id = id++;
      d.features.size_mb = s;
      d.features.pages = std::max(1, static_cast<int>(s));
      d.output_size_mb = s;  // 1:1 output for easy arithmetic
      b.documents.push_back(d);
    }
    next_doc_id_ = id;
    return b;
  }

  std::uint64_t next_doc_id_ = 1;
};

TEST(ControllerTest, IcOnlyRunsEverythingInternally) {
  Rig rig;
  CloudBurstController ctl(rig.sim, Rig::config(SchedulerKind::kIcOnly),
                           rig.truth, RngStream(2));
  ctl.on_batch(rig.batch(0, {10.0, 20.0, 30.0}));
  rig.sim.run();
  EXPECT_EQ(ctl.outstanding_jobs(), 0u);
  ASSERT_EQ(ctl.outcomes().size(), 3u);
  for (const auto& o : ctl.outcomes()) {
    EXPECT_EQ(o.placement, Placement::kInternal);
    EXPECT_GT(o.completed, 0.0);
  }
  EXPECT_DOUBLE_EQ(ctl.uplink().total_bytes_delivered(), 0.0);
  EXPECT_EQ(cbs::sla::validate_outcomes(ctl.outcomes()), "");
}

TEST(ControllerTest, EcPipelineMovesBytesThroughStore) {
  Rig rig;
  // Greedy + a saturated IC forces bursting.
  auto cfg = Rig::config(SchedulerKind::kGreedy);
  cfg.topology.ic_machines = 1;
  CloudBurstController ctl(rig.sim, cfg, rig.truth, RngStream(3));
  // Many medium jobs: IC clogs, some of these must burst.
  std::vector<double> sizes(8, 50.0);
  ctl.on_batch(rig.batch(0, sizes));
  rig.sim.run();
  EXPECT_EQ(ctl.outstanding_jobs(), 0u);
  std::size_t bursted = 0;
  for (const auto& o : ctl.outcomes()) {
    if (o.bursted()) ++bursted;
  }
  ASSERT_GT(bursted, 0u);
  // Uplink moved exactly the bursted inputs; downlink the outputs (1:1).
  EXPECT_NEAR(ctl.uplink().total_bytes_delivered(),
              static_cast<double>(bursted) * 50.0e6, 1.0);
  EXPECT_NEAR(ctl.downlink().total_bytes_delivered(),
              static_cast<double>(bursted) * 50.0e6, 1.0);
  // The store drained completely.
  EXPECT_DOUBLE_EQ(ctl.store().occupancy_bytes(), 0.0);
  EXPECT_GT(ctl.store().peak_occupancy_bytes(), 0.0);
}

TEST(ControllerTest, SequenceIdsSpanBatches) {
  Rig rig;
  CloudBurstController ctl(rig.sim, Rig::config(SchedulerKind::kIcOnly),
                           rig.truth, RngStream(4));
  ctl.on_batch(rig.batch(0, {10.0, 10.0}));
  rig.sim.run_until(rig.sim.now() + 1.0);
  ctl.on_batch(rig.batch(1, {10.0}));
  rig.sim.run();
  ASSERT_EQ(ctl.outcomes().size(), 3u);
  EXPECT_EQ(cbs::sla::validate_outcomes(ctl.outcomes()), "");
  std::size_t batch1_jobs = 0;
  for (const auto& o : ctl.outcomes()) {
    if (o.batch_index == 1) {
      ++batch1_jobs;
      EXPECT_EQ(o.seq_id, 3u);
    }
  }
  EXPECT_EQ(batch1_jobs, 1u);
}

TEST(ControllerTest, QrsmLearnsDuringRun) {
  Rig rig;
  auto cfg = Rig::config(SchedulerKind::kIcOnly);
  cfg.estimator = EstimatorKind::kQrsm;
  CloudBurstController ctl(rig.sim, cfg, rig.truth, RngStream(5));
  // Feed enough jobs for the online fit to trigger (needs > quadratic dim).
  cbs::workload::WorkloadGenerator gen({}, rig.truth, RngStream(6));
  for (std::size_t b = 0; b < 5; ++b) {
    cbs::workload::Batch batch;
    batch.batch_index = b;
    batch.arrival_time = rig.sim.now();
    batch.documents = gen.batch(16);
    ctl.on_batch(batch);
    rig.sim.run();
  }
  const auto* qrsm = dynamic_cast<const cbs::models::QrsmEstimator*>(
      &ctl.service_estimator());
  ASSERT_NE(qrsm, nullptr);
  EXPECT_TRUE(qrsm->model().is_fitted());
  EXPECT_GT(qrsm->model().last_fit()->r_squared, 0.99);  // noiseless labels
}

TEST(ControllerTest, PretrainSeedsTheModel) {
  Rig rig;
  auto cfg = Rig::config(SchedulerKind::kIcOnly);
  cfg.estimator = EstimatorKind::kQrsm;
  CloudBurstController ctl(rig.sim, cfg, rig.truth, RngStream(7));
  cbs::workload::WorkloadGenerator gen({}, rig.truth, RngStream(8));
  const auto docs = gen.batch(120);
  std::vector<double> runtimes;
  for (const auto& d : docs) {
    runtimes.push_back(rig.truth.expected_seconds(d.features));
  }
  ctl.pretrain(docs, runtimes);
  const auto* qrsm = dynamic_cast<const cbs::models::QrsmEstimator*>(
      &ctl.service_estimator());
  ASSERT_NE(qrsm, nullptr);
  EXPECT_TRUE(qrsm->model().is_fitted());
}

TEST(ControllerTest, ProbingStopsWhenRunEnds) {
  Rig rig;
  auto cfg = Rig::config(SchedulerKind::kIcOnly);
  cfg.probe_interval = 30.0;
  CloudBurstController ctl(rig.sim, cfg, rig.truth, RngStream(9));
  ctl.on_batch(rig.batch(0, {10.0}));
  rig.sim.run();  // must terminate: probes stop once outstanding == 0
  EXPECT_EQ(ctl.outstanding_jobs(), 0u);
  EXPECT_LT(rig.sim.now(), 200.0);
}

TEST(ControllerTest, ProbesFeedTheEstimator) {
  Rig rig;
  auto cfg = Rig::config(SchedulerKind::kIcOnly);
  cfg.probe_interval = 5.0;
  CloudBurstController ctl(rig.sim, cfg, rig.truth, RngStream(10));
  ctl.on_batch(rig.batch(0, {200.0, 200.0}));  // long enough for 2+ probes
  rig.sim.run();
  EXPECT_GT(ctl.uplink_estimator().observation_count(), 2u);
  EXPECT_GT(ctl.downlink_estimator().observation_count(), 2u);
}

TEST(ControllerTest, ReschedulerPushesOutWhenUploadIdles) {
  Rig rig;
  auto cfg = Rig::config(SchedulerKind::kOrderPreserving);
  cfg.enable_rescheduler = true;
  cfg.topology.ic_machines = 1;
  // The pipe is fast but the scheduler's prior says it is slow: Op bursts
  // little at batch time, then learns the real rate from its first uploads
  // — at which point idle-pipe push-outs become attractive (the adaptive
  // behaviour §IV.D describes).
  cfg.uplink.base_rate = 5.0e6;
  cfg.uplink.per_connection_cap = 5.0e6;
  cfg.downlink = cfg.uplink;
  cfg.bandwidth_estimator.prior_rate = 0.4e6;
  cfg.topology.ec_machines = 2;
  CloudBurstController ctl(rig.sim, cfg, rig.truth, RngStream(11));
  // One huge backlog: Op bursts some; when uploads drain and IC still has
  // waiting jobs, push-outs should fire.
  std::vector<double> sizes(24, 60.0);
  ctl.on_batch(rig.batch(0, sizes));
  rig.sim.run();
  EXPECT_EQ(ctl.outstanding_jobs(), 0u);
  EXPECT_EQ(cbs::sla::validate_outcomes(ctl.outcomes()), "");
  EXPECT_GT(ctl.push_outs() + ctl.pull_backs(), 0u);
}

TEST(ControllerTest, ChunkedJobsGetFreshSeqAndDocIds) {
  Rig rig;
  auto cfg = Rig::config(SchedulerKind::kOrderPreserving);
  cfg.params.variability_threshold_mb = 30.0;
  cfg.params.chunker.target_size_mb = 50.0;
  CloudBurstController ctl(rig.sim, cfg, rig.truth, RngStream(12));
  ctl.on_batch(rig.batch(0, {200.0, 5.0, 5.0}));
  rig.sim.run();
  EXPECT_GT(ctl.outcomes().size(), 3u);
  EXPECT_EQ(cbs::sla::validate_outcomes(ctl.outcomes()), "");
  // Chunk doc ids live in the dedicated high range.
  bool saw_chunk_id = false;
  for (const auto& o : ctl.outcomes()) {
    if (o.doc_id >= (1ULL << 32)) saw_chunk_id = true;
  }
  EXPECT_TRUE(saw_chunk_id);
}

TEST(ControllerTest, StageLogRecordsThePipeline) {
  Rig rig;
  auto cfg = Rig::config(SchedulerKind::kGreedy);
  cfg.record_stage_log = true;
  cfg.topology.ic_machines = 1;  // force some bursting
  CloudBurstController ctl(rig.sim, cfg, rig.truth, RngStream(21));
  ctl.on_batch(rig.batch(0, {50.0, 50.0, 50.0, 50.0, 50.0, 50.0}));
  rig.sim.run();

  // Each job's stages are in causal order and end at kCompleted; bursted
  // jobs pass through the EC pipeline states.
  std::map<std::uint64_t, std::vector<CloudBurstController::StageEvent>> per_job;
  for (const auto& e : ctl.stage_log()) per_job[e.seq_id].push_back(e);
  ASSERT_EQ(per_job.size(), ctl.outcomes().size());
  for (const auto& o : ctl.outcomes()) {
    const auto& events = per_job.at(o.seq_id);
    ASSERT_GE(events.size(), 2u);
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_GE(events[i].time, events[i - 1].time);
    }
    EXPECT_EQ(events.back().state, JobState::kCompleted);
    if (o.bursted()) {
      EXPECT_EQ(events.front().state, JobState::kUploadQueued);
      bool saw_download = false;
      for (const auto& e : events) {
        if (e.state == JobState::kDownloading) saw_download = true;
      }
      EXPECT_TRUE(saw_download);
    } else {
      EXPECT_EQ(events.front().state, JobState::kIcWaiting);
    }
  }
}

TEST(ControllerTest, StageLogOffByDefault) {
  Rig rig;
  CloudBurstController ctl(rig.sim, Rig::config(SchedulerKind::kIcOnly),
                           rig.truth, RngStream(22));
  ctl.on_batch(rig.batch(0, {10.0}));
  rig.sim.run();
  EXPECT_TRUE(ctl.stage_log().empty());
}

TEST(ControllerTest, UtilizationNeverExceedsOne) {
  Rig rig;
  auto cfg = Rig::config(SchedulerKind::kGreedy);
  CloudBurstController ctl(rig.sim, cfg, rig.truth, RngStream(13));
  ctl.on_batch(rig.batch(0, {80.0, 120.0, 40.0, 10.0, 250.0}));
  rig.sim.run();
  const double makespan = cbs::sla::makespan(ctl.outcomes());
  const double ic_util = cbs::sla::set_utilization(
      ctl.ic_cluster().total_busy_time(), ctl.ic_cluster().machine_count(),
      makespan);
  const double ec_util = cbs::sla::set_utilization(
      ctl.ec_cluster().total_busy_time(), ctl.ec_cluster().machine_count(),
      makespan);
  EXPECT_GE(ic_util, 0.0);
  EXPECT_LE(ic_util, 1.0 + 1e-9);
  EXPECT_GE(ec_util, 0.0);
  EXPECT_LE(ec_util, 1.0 + 1e-9);
}

}  // namespace
