// Property tests for the data-oriented link core (DESIGN.md §14).
//
// The batched, sort-free water-filling pass keeps its hot arrays in
// (demand, id) order and streams them once per event timestamp. These
// tests pin that machinery against the *obvious* implementation: a
// brute-force reference that re-sorts every transfer and water-fills from
// scratch must reproduce the link's published rates bit-for-bit under
// randomized submit/cancel storms. A second fixture forks a link
// mid-flight — SoA pool, pending activations, armed failure thresholds,
// single completion timer — and requires the fork to finish bit-identically
// to the original. Finally the capacity-history ring stays bounded on
// arbitrarily long runs (the decimation path).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "simcore/snapshot.hpp"

namespace {

using cbs::net::Link;
using cbs::net::LinkConfig;
using cbs::net::TransferId;
using cbs::net::TransferRecord;
using cbs::sim::RngStream;
using cbs::sim::Simulation;

/// Brute-force max-min reference: sort by (demand, id) ascending, then
/// progressive water-fill. Mirrors Link::run_pass() arithmetic exactly —
/// same iteration order, same accumulation order — so the comparison can
/// demand bit equality, not tolerance.
std::vector<std::pair<TransferId, double>> reference_waterfill(
    const std::vector<Link::RateSample>& samples, double capacity,
    double per_connection_cap) {
  struct Entry {
    TransferId id;
    double demand;
  };
  std::vector<Entry> entries;
  entries.reserve(samples.size());
  for (const Link::RateSample& s : samples) {
    entries.push_back({s.id, s.threads * per_connection_cap});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.demand != b.demand) return a.demand < b.demand;
    return a.id < b.id;
  });
  std::vector<std::pair<TransferId, double>> rates;
  rates.reserve(entries.size());
  double remaining_capacity = capacity;
  std::size_t remaining_count = entries.size();
  for (const Entry& e : entries) {
    const double fair_share =
        remaining_capacity / static_cast<double>(remaining_count);
    const double rate = std::min(e.demand, fair_share);
    rates.emplace_back(e.id, rate);
    remaining_capacity -= rate;
    --remaining_count;
  }
  std::sort(rates.begin(), rates.end());
  return rates;
}

TEST(LinkWaterfillProperty, BatchedPassMatchesSortBasedReference) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL, 99ULL, 1234ULL}) {
    Simulation sim;
    LinkConfig cfg;
    cfg.base_rate = 1.0e6;
    cfg.per_connection_cap = 0.12e6;
    cfg.noise_sigma = 0.25;
    cfg.noise_rho = 0.8;
    cfg.noise_step = 5.0;
    cfg.profile = cbs::net::DiurnalProfile::business_pipe();
    cfg.setup_latency = 0.3;
    Link link(sim, cfg, RngStream(seed).substream("link"));

    RngStream rng(RngStream(seed).substream("storm"));
    auto submitted = std::make_shared<std::vector<TransferId>>();
    std::size_t completions = 0;
    std::size_t cancellations = 0;
    double t = 0.0;
    for (int i = 0; i < 48; ++i) {
      t += rng.uniform(0.05, 2.0);
      const double bytes = rng.uniform(0.1e6, 2.5e6);
      const int threads = 1 + static_cast<int>(rng.uniform_int(0, 5));
      sim.schedule_at(t, [&link, &completions, submitted, bytes, threads] {
        submitted->push_back(link.submit(
            bytes, threads, [&completions](const TransferRecord&) {
              ++completions;
            }));
      });
      // The storm also cancels: roughly every seventh submission, abort a
      // pseudo-random earlier transfer (a no-op when already finished).
      if (i % 7 == 3) {
        const double when = t + rng.uniform(0.1, 1.0);
        const std::uint64_t pick = rng.uniform_int(0, 1U << 20U);
        sim.schedule_at(when, [&link, &cancellations, submitted, pick] {
          if (submitted->empty()) return;
          if (link.cancel((*submitted)[pick % submitted->size()])) {
            ++cancellations;
          }
        });
      }
    }

    // Step through the storm, re-deriving the whole allocation from
    // scratch at every checkpoint.
    std::size_t checked = 0;
    for (double checkpoint = 0.5; checkpoint < t + 120.0;
         checkpoint += rng.uniform(0.4, 2.5)) {
      sim.run_until(checkpoint);
      const std::vector<Link::RateSample> samples = link.current_rates();
      if (samples.empty()) continue;
      ++checked;
      const double capacity = link.last_allocation_capacity();
      const auto reference =
          reference_waterfill(samples, capacity, cfg.per_connection_cap);
      ASSERT_EQ(reference.size(), samples.size());
      double total = 0.0;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        // current_rates() and the sorted-back reference are both ascending
        // id, so rows line up directly. Bit equality, not tolerance: both
        // sides perform the identical FP operations in identical order.
        EXPECT_EQ(reference[i].first, samples[i].id);
        EXPECT_EQ(reference[i].second, samples[i].rate)
            << "seed " << seed << " checkpoint " << checkpoint << " id "
            << samples[i].id;
        // Max-min sanity: never above the thread demand cap.
        EXPECT_LE(samples[i].rate,
                  samples[i].threads * cfg.per_connection_cap);
        total += samples[i].rate;
      }
      EXPECT_LE(total, capacity * (1.0 + 1e-9));
      if (sim.pending_events() == 0) break;
    }
    EXPECT_GT(checked, 10U) << "storm never reached a populated checkpoint";

    sim.run();
    EXPECT_EQ(completions + cancellations, submitted->size());
  }
}

TEST(LinkForkEquivalence, MidFlightSoAStateForksBitExact) {
  for (const std::uint64_t seed : {5ULL, 17ULL, 301ULL}) {
    Simulation sim_a;
    LinkConfig cfg;
    cfg.base_rate = 1.2e6;
    cfg.per_connection_cap = 0.15e6;
    cfg.noise_sigma = 0.3;
    cfg.noise_rho = 0.85;
    cfg.noise_step = 4.0;
    cfg.profile = cbs::net::DiurnalProfile::business_pipe();
    cfg.setup_latency = 0.4;
    cfg.failure_probability = 0.2;  // armed fail_below thresholds cross forks
    Link a(sim_a, cfg, RngStream(seed).substream("link"));
    std::vector<TransferRecord> recs_a;
    const int slot_a = a.register_handler(
        [&recs_a](std::uint64_t, const TransferRecord& r) {
          recs_a.push_back(r);
        });

    RngStream rng(RngStream(seed).substream("storm"));
    double t = 0.0;
    for (int i = 0; i < 24; ++i) {
      t += rng.uniform(0.05, 1.2);
      const double bytes = rng.uniform(0.3e6, 3.0e6);
      const int threads = 1 + static_cast<int>(rng.uniform_int(0, 3));
      a.submit(bytes, threads, slot_a, static_cast<std::uint64_t>(i) + 1);
      // Drain to just past this submission so the next one happens at its
      // own timestamp (submissions are direct calls, not scheduled events,
      // so nothing un-restorable is pending at the fork point).
      sim_a.run_until(t);
    }
    // Fork inside the last transfer's setup window: the pool holds a mix
    // of activated (hot) and pending-activation (cold-only) transfers.
    sim_a.run_until(t + 0.2);
    ASSERT_GT(a.active_transfers(), 0U) << "storm drained before the fork";

    const std::size_t pre_fork = recs_a.size();
    Simulation sim_b;
    Link b(sim_b, a);
    std::vector<TransferRecord> recs_b;
    const int slot_b = b.register_handler(
        [&recs_b](std::uint64_t, const TransferRecord& r) {
          recs_b.push_back(r);
        });
    ASSERT_EQ(slot_b, slot_a);
    cbs::sim::SnapshotContext ctx(sim_a, sim_b);
    b.rebuild_events(ctx);
    ASSERT_EQ(ctx.finish(), 0U)
        << "link fork left pending events unclaimed";

    sim_a.run();
    sim_b.run();

    // Bit-exact equivalence of everything after the fork point: the fork
    // sees the same noise draws, the same failure injections, the same
    // completion order. (recs_a also holds the pre-fork completions; the
    // clone's copied completed() ledger covers those below.)
    ASSERT_EQ(recs_a.size(), pre_fork + recs_b.size());
    for (std::size_t i = 0; i < recs_b.size(); ++i) {
      const TransferRecord& ra = recs_a[pre_fork + i];
      EXPECT_EQ(ra.id, recs_b[i].id);
      EXPECT_EQ(ra.bytes, recs_b[i].bytes);
      EXPECT_EQ(ra.threads, recs_b[i].threads);
      EXPECT_EQ(ra.retries, recs_b[i].retries);
      EXPECT_EQ(ra.requested, recs_b[i].requested);
      EXPECT_EQ(ra.started, recs_b[i].started);
      EXPECT_EQ(ra.completed, recs_b[i].completed);
    }
    ASSERT_EQ(a.completed().size(), b.completed().size());
    for (std::size_t i = 0; i < a.completed().size(); ++i) {
      EXPECT_EQ(a.completed()[i].id, b.completed()[i].id);
      EXPECT_EQ(a.completed()[i].completed, b.completed()[i].completed);
    }
    EXPECT_EQ(a.total_bytes_delivered(), b.total_bytes_delivered());
    EXPECT_EQ(a.wasted_bytes(), b.wasted_bytes());
    EXPECT_EQ(a.injected_failures(), b.injected_failures());
    EXPECT_EQ(a.busy_time(), b.busy_time());
    EXPECT_EQ(sim_a.now(), sim_b.now());
  }
}

TEST(LinkCapacityHistory, StaysBoundedOnLongRuns) {
  Simulation sim;
  LinkConfig cfg;
  cfg.base_rate = 0.5e6;
  cfg.per_connection_cap = 0.1e6;
  cfg.noise_sigma = 0.3;
  cfg.noise_rho = 0.9;
  cfg.noise_step = 0.25;  // a pass (and a capacity sample) every 250 ms
  Link link(sim, cfg, RngStream(9).substream("link"));
  // One transfer spanning ~10^4 seconds of noisy ticks: the unbounded
  // design would record ~40k samples; the decimating ring must stay at or
  // under its cap while still covering the whole span.
  bool done = false;
  link.submit(1.0e9, 1, [&done](const TransferRecord&) { done = true; });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_LE(link.capacity_history().size(), 4096U);
  EXPECT_GT(link.capacity_history().size(), 256U);
  EXPECT_GT(link.capacity_history().back().time -
                link.capacity_history().at(0).time,
            0.9 * sim.now() - 1.0);
}

}  // namespace
