#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "harness/cli.hpp"
#include "harness/csv.hpp"
#include "harness/experiment.hpp"
#include "harness/plot.hpp"
#include "harness/scenario.hpp"

namespace {

using namespace cbs;
using namespace cbs::harness;

// ---- cli::Args --------------------------------------------------------------

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

const std::vector<std::string> kFlags = {"alpha", "beta", "gamma"};

TEST(CliArgsTest, ParsesEqualsForm) {
  auto argv = argv_of({"--alpha=3", "--beta=hello"});
  cli::Args args(static_cast<int>(argv.size()), argv.data(), kFlags);
  EXPECT_EQ(args.get_or("alpha", ""), "3");
  EXPECT_EQ(args.get_or("beta", ""), "hello");
  EXPECT_FALSE(args.has("gamma"));
}

TEST(CliArgsTest, ParsesSpaceForm) {
  auto argv = argv_of({"--alpha", "42"});
  cli::Args args(static_cast<int>(argv.size()), argv.data(), kFlags);
  EXPECT_EQ(args.get_long_or("alpha", 0), 42);
}

TEST(CliArgsTest, BooleanFlagDefaultsTrue) {
  auto argv = argv_of({"--gamma"});
  cli::Args args(static_cast<int>(argv.size()), argv.data(), kFlags);
  EXPECT_TRUE(args.has("gamma"));
  EXPECT_EQ(args.get_or("gamma", ""), "true");
}

TEST(CliArgsTest, PositionalArgumentsPreserved) {
  auto argv = argv_of({"input.csv", "--alpha=1", "output.csv"});
  cli::Args args(static_cast<int>(argv.size()), argv.data(), kFlags);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "output.csv");
}

TEST(CliArgsTest, RejectsUnknownFlag) {
  auto argv = argv_of({"--delta=1"});
  EXPECT_THROW(
      cli::Args(static_cast<int>(argv.size()), argv.data(), kFlags),
      std::runtime_error);
}

TEST(CliArgsTest, RejectsMalformedNumbers) {
  auto argv = argv_of({"--alpha=12x"});
  cli::Args args(static_cast<int>(argv.size()), argv.data(), kFlags);
  EXPECT_THROW((void)args.get_long_or("alpha", 0), std::runtime_error);
  EXPECT_THROW((void)args.get_double_or("alpha", 0.0), std::runtime_error);
}

TEST(CliArgsTest, NumericDefaultsApply) {
  auto argv = argv_of({});
  cli::Args args(static_cast<int>(argv.size()), argv.data(), kFlags);
  EXPECT_EQ(args.get_long_or("alpha", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double_or("beta", 1.5), 1.5);
}

// ---- scenario parsing ---------------------------------------------------------

cli::Args scenario_args(std::initializer_list<const char*> extra) {
  static std::vector<const char*> argv;  // keep storage alive per test call
  argv = argv_of(extra);
  return cli::Args(static_cast<int>(argv.size()), argv.data(),
                   cli::scenario_flags());
}

TEST(ScenarioCliTest, DefaultsAreTheLargeOpScenario) {
  const Scenario s = cli::scenario_from_args(scenario_args({}));
  EXPECT_EQ(s.scheduler, core::SchedulerKind::kOrderPreserving);
  EXPECT_EQ(s.bucket, workload::SizeBucket::kLargeBiased);
  EXPECT_EQ(s.seed, 42u);
  EXPECT_EQ(s.num_batches, 8u);
}

TEST(ScenarioCliTest, ParsesEveryScheduler) {
  EXPECT_EQ(cli::parse_scheduler("ic-only"), core::SchedulerKind::kIcOnly);
  EXPECT_EQ(cli::parse_scheduler("greedy"), core::SchedulerKind::kGreedy);
  EXPECT_EQ(cli::parse_scheduler("op"), core::SchedulerKind::kOrderPreserving);
  EXPECT_EQ(cli::parse_scheduler("op-bandwidth-split"),
            core::SchedulerKind::kBandwidthSplit);
  EXPECT_THROW((void)cli::parse_scheduler("firstfit"), std::runtime_error);
}

TEST(ScenarioCliTest, ParsesBuckets) {
  EXPECT_EQ(cli::parse_bucket("small"), workload::SizeBucket::kSmallBiased);
  EXPECT_EQ(cli::parse_bucket("uniform"), workload::SizeBucket::kUniform);
  EXPECT_EQ(cli::parse_bucket("large"), workload::SizeBucket::kLargeBiased);
  EXPECT_THROW((void)cli::parse_bucket("huge"), std::runtime_error);
}

TEST(ScenarioCliTest, FlagsReachTheScenario) {
  const Scenario s = cli::scenario_from_args(scenario_args(
      {"--scheduler=greedy", "--bucket=small", "--seed=9", "--batches=3",
       "--lambda=5", "--rescheduler", "--estimator=oracle", "--tolerance=2",
       "--noise=0.3"}));
  EXPECT_EQ(s.scheduler, core::SchedulerKind::kGreedy);
  EXPECT_EQ(s.bucket, workload::SizeBucket::kSmallBiased);
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.num_batches, 3u);
  EXPECT_DOUBLE_EQ(s.mean_jobs_per_batch, 5.0);
  EXPECT_TRUE(s.enable_rescheduler);
  EXPECT_EQ(s.estimator, core::EstimatorKind::kOracle);
  EXPECT_EQ(s.oo_tolerance, 2u);
  EXPECT_DOUBLE_EQ(s.truth.noise_sigma, 0.3);
}

TEST(ScenarioCliTest, ElasticFlagConfiguresOverride) {
  const Scenario s = cli::scenario_from_args(scenario_args({"--elastic"}));
  ASSERT_TRUE(s.config_override.has_value());
  EXPECT_TRUE(s.controller_config().elastic_ec.enabled);
}

TEST(ScenarioCliTest, HighVarSurvivesElasticOverride) {
  const Scenario s = cli::scenario_from_args(
      scenario_args({"--elastic", "--high-var"}));
  const auto cfg = s.controller_config();
  EXPECT_TRUE(cfg.elastic_ec.enabled);
  EXPECT_DOUBLE_EQ(cfg.uplink.noise_sigma, 0.25);
}

// ---- csv / chart helpers -------------------------------------------------------

RunResult tiny_run() {
  Scenario s = make_scenario(core::SchedulerKind::kGreedy,
                             workload::SizeBucket::kUniform);
  s.num_batches = 2;
  return run_scenario(s);
}

TEST(CsvTest, CompletionSeriesIsOrderedBySeq) {
  const RunResult r = tiny_run();
  std::ostringstream out;
  csv::write_completion_series(out, r);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "seq,completed_seconds,placement");
  std::uint64_t prev = 0;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    const auto seq = std::stoull(line.substr(0, line.find(',')));
    EXPECT_EQ(seq, prev + 1);
    prev = seq;
    ++rows;
  }
  EXPECT_EQ(rows, r.outcomes.size());
}

TEST(CsvTest, OoSeriesMatchesResult) {
  const RunResult r = tiny_run();
  std::ostringstream out;
  csv::write_oo_series(out, r);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time_seconds,ordered_mb");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, r.oo_series.size());
}

TEST(CsvTest, ReportRowPerResult) {
  const RunResult r = tiny_run();
  std::ostringstream out;
  csv::write_reports(out, {r, r});
  std::istringstream in(out.str());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3u);  // header + 2
}

TEST(CsvTest, OverlayHasColumnPerResult) {
  const RunResult r = tiny_run();
  std::ostringstream out;
  csv::write_oo_overlay(out, {r, r}, 120.0);
  std::istringstream in(out.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(std::count(header.begin(), header.end(), ','), 2);
}

TEST(AsciiChartTest, RendersRequestedHeight) {
  const std::string chart = ascii_chart({1.0, 2.0, 3.0, 2.0, 5.0}, 6, 40);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 6);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(AsciiChartTest, EmptyInputIsEmptyOutput) {
  EXPECT_TRUE(ascii_chart({}, 5, 40).empty());
}

TEST(AsciiChartTest, FlatSeriesDrawsBaseline) {
  const std::string chart = ascii_chart({2.0, 2.0, 2.0}, 4, 40);
  // Only the bottom row is filled for a constant series.
  std::istringstream in(chart);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].find('#'), std::string::npos);
  EXPECT_NE(lines[3].find('#'), std::string::npos);
}

// ---- gnuplot emitter -------------------------------------------------------

TEST(PlotTest, WritesDatAndScript) {
  plot::Figure fig;
  fig.title = "t";
  fig.xlabel = "x";
  fig.ylabel = "y";
  fig.series.push_back({"a", {0.0, 1.0, 2.0}, {1.0, 2.0, 3.0}});
  fig.series.push_back({"b", {0.0, 2.0}, {5.0, 6.0}});
  const std::string prefix = "/tmp/cbs_plot_test";
  const std::string gp = plot::write_gnuplot(prefix, fig);
  EXPECT_EQ(gp, prefix + ".gp");

  std::ifstream dat(prefix + ".dat");
  ASSERT_TRUE(dat.good());
  std::string line;
  std::getline(dat, line);  // header
  std::getline(dat, line);
  EXPECT_EQ(line, "0 1 5");
  std::getline(dat, line);
  EXPECT_EQ(line, "1 2 ?");  // series b missing at x=1
  std::getline(dat, line);
  EXPECT_EQ(line, "2 3 6");

  std::ifstream gps(gp);
  ASSERT_TRUE(gps.good());
  std::string all((std::istreambuf_iterator<char>(gps)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("set datafile missing '?'"), std::string::npos);
  EXPECT_NE(all.find("title 'a'"), std::string::npos);
  EXPECT_NE(all.find("title 'b'"), std::string::npos);
}

TEST(PlotTest, FromTimeSeries) {
  cbs::stats::TimeSeries ts;
  ts.add(1.0, 10.0);
  ts.add(2.0, 20.0);
  const auto s = plot::from_timeseries("x", ts);
  ASSERT_EQ(s.xs.size(), 2u);
  EXPECT_DOUBLE_EQ(s.xs[1], 2.0);
  EXPECT_DOUBLE_EQ(s.ys[1], 20.0);
}

TEST(PlotTest, RejectsUnwritablePath) {
  plot::Figure fig;
  fig.series.push_back({"a", {0.0}, {1.0}});
  EXPECT_THROW((void)plot::write_gnuplot("/nonexistent-dir/x", fig),
               std::runtime_error);
}

// ---- scenario helpers ------------------------------------------------------------

TEST(ScenarioTest, MakeScenarioNamesAreDescriptive) {
  const Scenario s = make_scenario(core::SchedulerKind::kGreedy,
                                   workload::SizeBucket::kLargeBiased, 1, true);
  EXPECT_EQ(s.name, "greedy/large/high-var");
}

TEST(ScenarioTest, ControllerConfigAppliesSchedulerFields) {
  Scenario s = make_scenario(core::SchedulerKind::kBandwidthSplit,
                             workload::SizeBucket::kUniform);
  s.enable_rescheduler = true;
  const auto cfg = s.controller_config();
  EXPECT_EQ(cfg.scheduler, core::SchedulerKind::kBandwidthSplit);
  EXPECT_TRUE(cfg.enable_rescheduler);
}

}  // namespace
