// Golden-output pins: fixed-seed runs must stay byte-identical across
// refactors of the hot paths (event engine, slack accounting, containers).
// The determinism contract is the repo's hard constraint — any optimisation
// that changes a single byte of these outputs is a behaviour change, not an
// optimisation.
//
// Regenerate the golden files (after an *intentional* behaviour change)
// with: CBS_UPDATE_GOLDEN=1 ./build/tests/golden_output_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/csv.hpp"
#include "harness/experiment.hpp"
#include "harness/scenario.hpp"

namespace {

using namespace cbs;

std::string golden_path(const std::string& file) {
  return std::string(CBS_GOLDEN_DIR) + "/" + file;
}

/// The pinned runs: both single-EC schedulers on the uniform workload, and
/// a heavily faulted run (crashes + outages + retraction recovery) so the
/// cancel-heavy event paths are pinned too.
std::vector<harness::RunResult> golden_runs() {
  std::vector<harness::RunResult> out;
  for (const auto kind :
       {core::SchedulerKind::kGreedy, core::SchedulerKind::kOrderPreserving}) {
    auto s = harness::make_scenario(kind, workload::SizeBucket::kUniform, 42);
    s.num_batches = 4;
    out.push_back(harness::run_scenario(s));
  }
  auto faulted = harness::make_scenario(core::SchedulerKind::kOrderPreserving,
                                        workload::SizeBucket::kLargeBiased, 1337);
  faulted.name += "-faulted";
  faulted.num_batches = 4;
  faulted.faults.ec_vm_mtbf = 1200.0;
  faulted.faults.ic_vm_mtbf = 6000.0;
  faulted.faults.retraction_deadline_factor = 3.0;
  faulted.faults.outage_windows = {cbs::sim::OutageWindow{400.0, 240.0},
                                   cbs::sim::OutageWindow{1500.0, 180.0}};
  out.push_back(harness::run_scenario(faulted));
  return out;
}

/// Serializes everything the benches print: the headline report rows plus
/// the per-job completion series of every run (which pins each individual
/// job's completion time and placement, byte for byte).
std::string render(const std::vector<harness::RunResult>& runs) {
  std::ostringstream out;
  harness::csv::write_reports(out, runs);
  for (const auto& r : runs) {
    out << "# completion series: " << r.scenario.name << "\n";
    harness::csv::write_completion_series(out, r);
  }
  return out.str();
}

TEST(GoldenOutput, FixedSeedRunsAreByteIdentical) {
  const std::string got = render(golden_runs());
  const std::string path = golden_path("reports_fixed_seeds.csv");
  if (std::getenv("CBS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream update(path, std::ios::binary);
    ASSERT_TRUE(update) << "cannot write " << path;
    update << got;
    GTEST_SKIP() << "golden file updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run with CBS_UPDATE_GOLDEN=1 to create it";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "fixed-seed output drifted from the committed golden file; if the "
         "change is intentional, regenerate with CBS_UPDATE_GOLDEN=1";
}

/// The same runs executed twice in-process must agree exactly — catches
/// accidental global mutable state in the hot paths.
TEST(GoldenOutput, RepeatRunsAreBitExact) {
  EXPECT_EQ(render(golden_runs()), render(golden_runs()));
}

}  // namespace
