// Fork-equivalence golden suite: a world forked at any point and run to
// completion must be *byte-identical* to the straight run — every outcome
// timestamp, every fault counter, every billing figure. This is the
// acceptance bar for the snapshot/fork subsystem: exact `==` on doubles
// throughout, no tolerances.

#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace {

using cbs::harness::RunResult;
using cbs::harness::Scenario;
using cbs::harness::ScenarioWorld;
using cbs::harness::run_scenario;
using cbs::harness::run_scenario_via_fork;

/// The table1_metrics-style fixture: the §V grid cell the flagship bench
/// pins, shrunk to keep the suite fast.
Scenario table1_fixture(cbs::core::SchedulerKind kind) {
  Scenario s = cbs::harness::make_scenario(kind,
                                           cbs::workload::SizeBucket::kUniform,
                                           /*seed=*/42);
  s.num_batches = 5;
  return s;
}

/// The fault_degradation-style fixture: crashes on both clusters, an EC
/// outage, a probe blackout and the retraction recovery policy all active.
Scenario fault_fixture() {
  Scenario s = cbs::harness::make_scenario(
      cbs::core::SchedulerKind::kOrderPreserving,
      cbs::workload::SizeBucket::kLargeBiased, /*seed=*/3);
  s.num_batches = 5;
  s.faults.ic_vm_mtbf = 3000.0;
  s.faults.ec_vm_mtbf = 900.0;
  s.faults.vm_recovery_seconds = 90.0;
  s.faults.outage_windows = {cbs::sim::OutageWindow{350.0, 200.0}};
  s.faults.probe_blackout = {cbs::sim::OutageWindow{200.0, 400.0}};
  s.faults.retraction_deadline_factor = 3.0;
  return s;
}

/// The proactive-resilience fixture: the fault fixture with the hazard
/// predictor on — drains, risk pricing and prediction bookkeeping all
/// cross the fork.
Scenario hazard_fixture(cbs::models::HazardPredictorKind kind) {
  Scenario s = fault_fixture();
  s.resilience.hazard.kind = kind;
  return s;
}

/// Exact equality over everything a run reports. Doubles compared with ==
/// on purpose: the fork contract is bit-replay, not approximation.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.sim_end_time, b.sim_end_time);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.pull_backs, b.pull_backs);
  EXPECT_EQ(a.push_outs, b.push_outs);
  EXPECT_EQ(a.peak_store_bytes, b.peak_store_bytes);

  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const auto& x = a.outcomes[i];
    const auto& y = b.outcomes[i];
    EXPECT_EQ(x.seq_id, y.seq_id) << "outcome " << i;
    EXPECT_EQ(x.doc_id, y.doc_id) << "outcome " << i;
    EXPECT_EQ(x.arrival, y.arrival) << "outcome " << i;
    EXPECT_EQ(x.scheduled, y.scheduled) << "outcome " << i;
    EXPECT_EQ(x.completed, y.completed) << "outcome " << i;
    EXPECT_EQ(x.input_mb, y.input_mb) << "outcome " << i;
    EXPECT_EQ(x.output_mb, y.output_mb) << "outcome " << i;
    EXPECT_EQ(x.true_service_seconds, y.true_service_seconds) << "outcome " << i;
    EXPECT_EQ(x.placement, y.placement) << "outcome " << i;
  }

  EXPECT_EQ(a.report.makespan_seconds, b.report.makespan_seconds);
  EXPECT_EQ(a.report.ic_utilization, b.report.ic_utilization);
  EXPECT_EQ(a.report.ec_utilization, b.report.ec_utilization);
  EXPECT_EQ(a.report.burst_ratio, b.report.burst_ratio);
  EXPECT_EQ(a.report.oo_final_mb, b.report.oo_final_mb);
  EXPECT_EQ(a.report.oo_time_averaged_mb, b.report.oo_time_averaged_mb);

  EXPECT_EQ(a.tickets.met, b.tickets.met);
  EXPECT_EQ(a.tickets.max_lateness, b.tickets.max_lateness);
  EXPECT_EQ(a.cost.ec_compute, b.cost.ec_compute);
  EXPECT_EQ(a.cost.egress, b.cost.egress);
  EXPECT_EQ(a.cost.ingress, b.cost.ingress);
  EXPECT_EQ(a.cost.storage, b.cost.storage);

  EXPECT_EQ(a.faults.ic_crashes, b.faults.ic_crashes);
  EXPECT_EQ(a.faults.ec_crashes, b.faults.ec_crashes);
  EXPECT_EQ(a.faults.reexecutions, b.faults.reexecutions);
  EXPECT_EQ(a.faults.wasted_compute_seconds, b.faults.wasted_compute_seconds);
  EXPECT_EQ(a.faults.link_outage_aborts, b.faults.link_outage_aborts);
  EXPECT_EQ(a.faults.link_drops, b.faults.link_drops);
  EXPECT_EQ(a.faults.wasted_transfer_bytes, b.faults.wasted_transfer_bytes);
  EXPECT_EQ(a.faults.retractions, b.faults.retractions);
  EXPECT_EQ(a.faults.store_retries, b.faults.store_retries);
  EXPECT_EQ(a.faults.store_abandoned, b.faults.store_abandoned);
  EXPECT_EQ(a.faults.probe_blackout_skips, b.faults.probe_blackout_skips);
  EXPECT_EQ(a.faults.crashes_injected, b.faults.crashes_injected);
  EXPECT_EQ(a.faults.outages, b.faults.outages);
  EXPECT_EQ(a.faults.drains, b.faults.drains);
  EXPECT_EQ(a.faults.undrains, b.faults.undrains);
  EXPECT_EQ(a.faults.drain_preemptions, b.faults.drain_preemptions);
  EXPECT_EQ(a.faults.idle_crashes_absorbed, b.faults.idle_crashes_absorbed);
  EXPECT_EQ(a.faults.checkpointed_compute_seconds,
            b.faults.checkpointed_compute_seconds);
  EXPECT_EQ(a.faults.hazard_predictions, b.faults.hazard_predictions);
  EXPECT_EQ(a.faults.hazard_true_positives, b.faults.hazard_true_positives);
  EXPECT_EQ(a.faults.hazard_false_positives, b.faults.hazard_false_positives);
  EXPECT_EQ(a.faults.hazard_false_negatives, b.faults.hazard_false_negatives);
}

TEST(ForkEquivalence, WorldMatchesLegacyRunScenario) {
  // The ScenarioWorld refactor itself must not perturb results: two
  // straight runs through the world are identical (determinism smoke).
  const Scenario s = table1_fixture(cbs::core::SchedulerKind::kOrderPreserving);
  expect_identical(run_scenario(s), run_scenario(s));
}

TEST(ForkEquivalence, Table1FixtureForkAtZero) {
  const Scenario s = table1_fixture(cbs::core::SchedulerKind::kOrderPreserving);
  expect_identical(run_scenario(s), run_scenario_via_fork(s, 0.0));
}

TEST(ForkEquivalence, Table1FixtureForkMidRun) {
  const Scenario s = table1_fixture(cbs::core::SchedulerKind::kOrderPreserving);
  // Mid third batch: uploads, EC processing, probes and the elastic check
  // are all in flight.
  expect_identical(run_scenario(s), run_scenario_via_fork(s, 400.0));
}

TEST(ForkEquivalence, GreedyForkMidRun) {
  const Scenario s = table1_fixture(cbs::core::SchedulerKind::kGreedy);
  expect_identical(run_scenario(s), run_scenario_via_fork(s, 500.0));
}

TEST(ForkEquivalence, FaultFixtureForkAtZero) {
  const Scenario s = fault_fixture();
  expect_identical(run_scenario(s), run_scenario_via_fork(s, 0.0));
}

TEST(ForkEquivalence, FaultFixtureForkMidRun) {
  // 400 s is inside both the EC outage window (350–550) and the probe
  // blackout (200–600): the fork must carry armed crash processes, the
  // open outage depth and pending retraction deadlines across.
  const Scenario s = fault_fixture();
  expect_identical(run_scenario(s), run_scenario_via_fork(s, 400.0));
}

TEST(ForkEquivalence, FaultFixtureForkLate) {
  const Scenario s = fault_fixture();
  expect_identical(run_scenario(s), run_scenario_via_fork(s, 700.0));
}

TEST(ForkEquivalence, HazardFixtureForkAtZero) {
  const Scenario s = hazard_fixture(cbs::models::HazardPredictorKind::kEwma);
  expect_identical(run_scenario(s), run_scenario_via_fork(s, 0.0));
}

TEST(ForkEquivalence, HazardFixtureForkMidRun) {
  // 400 s is inside the outage and past the first EC crashes, so the fork
  // copies live hazard state: non-prior rates, active drains, raised flags.
  const Scenario s = hazard_fixture(cbs::models::HazardPredictorKind::kEwma);
  expect_identical(run_scenario(s), run_scenario_via_fork(s, 400.0));
}

TEST(ForkEquivalence, HazardFixtureBayesForkLate) {
  const Scenario s = hazard_fixture(cbs::models::HazardPredictorKind::kBayes);
  expect_identical(run_scenario(s), run_scenario_via_fork(s, 700.0));
}

TEST(ForkEquivalence, HazardEstimatorStateIsCopiedExactly) {
  // Beyond run-level equality: the estimator itself must clone
  // byte-identically — per-machine failure counts, flags, rates and the
  // prediction scorecard all equal across the fork boundary.
  const Scenario s = hazard_fixture(cbs::models::HazardPredictorKind::kEwma);
  ScenarioWorld parent(s);
  parent.run_until(700.0);
  std::unique_ptr<ScenarioWorld> forked = parent.fork();

  for (const auto accessor :
       {&cbs::core::CloudBurstController::ic_hazard,
        &cbs::core::CloudBurstController::ec_hazard}) {
    const auto* a = (parent.controller().*accessor)();
    const auto* b = (forked->controller().*accessor)();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->machine_count(), b->machine_count());
    for (std::size_t m = 0; m < a->machine_count(); ++m) {
      EXPECT_EQ(a->failures(m), b->failures(m));
      EXPECT_EQ(a->flagged(m), b->flagged(m));
      EXPECT_EQ(a->hazard_rate(m, 700.0), b->hazard_rate(m, 700.0));
    }
    EXPECT_EQ(a->stats().predictions, b->stats().predictions);
    EXPECT_EQ(a->stats().true_positives, b->stats().true_positives);
    EXPECT_EQ(a->stats().false_positives, b->stats().false_positives);
    EXPECT_EQ(a->stats().false_negatives, b->stats().false_negatives);
  }
  EXPECT_EQ(parent.controller().ec_failure_risk(),
            forked->controller().ec_failure_risk());
}

TEST(ForkEquivalence, ForkIsIndependentOfParent) {
  // Running the parent to completion after forking must not disturb the
  // fork (and vice versa): no shared mutable state survives the copy.
  const Scenario s = fault_fixture();
  ScenarioWorld parent(s);
  parent.run_until(400.0);
  auto forked = parent.fork();
  parent.run();
  forked->run();
  expect_identical(parent.result(), forked->result());
  expect_identical(forked->result(), run_scenario(s));
}

TEST(ForkEquivalence, ForkOfForkStillIdentical) {
  const Scenario s = table1_fixture(cbs::core::SchedulerKind::kOrderPreserving);
  ScenarioWorld parent(s);
  parent.run_until(300.0);
  auto first = parent.fork();
  first->run_until(600.0);
  auto second = first->fork();
  second->run();
  expect_identical(second->result(), run_scenario(s));
}

}  // namespace
