// End-to-end scenario runs across the full scheduler x bucket grid, using
// the same harness as the benches. Parameterized (TEST_P) so every cell of
// the paper's experiment grid is exercised as its own test case.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "sla/metrics.hpp"

namespace {

using namespace cbs;
using core::SchedulerKind;
using workload::SizeBucket;

harness::Scenario small_scenario(SchedulerKind kind, SizeBucket bucket,
                                 std::uint64_t seed = 42,
                                 bool high_var = false) {
  harness::Scenario s = harness::make_scenario(kind, bucket, seed, high_var);
  s.num_batches = 3;  // keep each grid cell fast
  return s;
}

class GridTest
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, SizeBucket>> {};

TEST_P(GridTest, RunCompletesWithValidInvariants) {
  const auto [kind, bucket] = GetParam();
  const auto result = harness::run_scenario(small_scenario(kind, bucket));

  // Every job completed exactly once with ordered timestamps —
  // run_scenario itself throws on violations; assert the headline numbers.
  EXPECT_GT(result.outcomes.size(), 10u);
  EXPECT_GT(result.report.makespan_seconds, 0.0);
  // The small bucket is arrival-limited (tiny jobs, mostly idle machines),
  // so its speedup can drop below 1; the other buckets keep the system busy.
  EXPECT_GT(result.report.speedup,
            bucket == SizeBucket::kSmallBiased ? 0.1 : 1.0);
  EXPECT_GE(result.report.ic_utilization, 0.0);
  EXPECT_LE(result.report.ic_utilization, 1.0 + 1e-9);
  EXPECT_GE(result.report.ec_utilization, 0.0);
  EXPECT_LE(result.report.ec_utilization, 1.0 + 1e-9);
  EXPECT_GE(result.report.burst_ratio, 0.0);
  EXPECT_LE(result.report.burst_ratio, 1.0);

  if (kind == SchedulerKind::kIcOnly) {
    EXPECT_DOUBLE_EQ(result.report.burst_ratio, 0.0);
    EXPECT_DOUBLE_EQ(result.report.ec_utilization, 0.0);
  }

  // Makespan can never beat perfect parallelism over all machines.
  const double total_machines = 8.0 + 2.0;
  EXPECT_GE(result.report.makespan_seconds,
            sla::sequential_time(result.outcomes) / total_machines);

  // The OO series is monotone and ends at the full output volume.
  double prev = -1.0;
  double total_output = 0.0;
  for (const auto& o : result.outcomes) total_output += o.output_mb;
  for (const auto& p : result.oo_series.points()) {
    EXPECT_GE(p.value, prev);
    prev = p.value;
  }
  EXPECT_NEAR(result.oo_series.back().value, total_output, 1e-6);
}

TEST_P(GridTest, DeterministicReplay) {
  const auto [kind, bucket] = GetParam();
  const auto a = harness::run_scenario(small_scenario(kind, bucket));
  const auto b = harness::run_scenario(small_scenario(kind, bucket));
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_DOUBLE_EQ(a.report.makespan_seconds, b.report.makespan_seconds);
  EXPECT_EQ(a.events_processed, b.events_processed);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outcomes[i].completed, b.outcomes[i].completed);
    EXPECT_EQ(a.outcomes[i].placement, b.outcomes[i].placement);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchedulerBucketGrid, GridTest,
    ::testing::Combine(::testing::Values(SchedulerKind::kIcOnly,
                                         SchedulerKind::kGreedy,
                                         SchedulerKind::kOrderPreserving,
                                         SchedulerKind::kBandwidthSplit),
                       ::testing::Values(SizeBucket::kSmallBiased,
                                         SizeBucket::kUniform,
                                         SizeBucket::kLargeBiased)),
    [](const auto& param_info) {
      std::string name =
          std::string(core::to_string(std::get<0>(param_info.param))) + "_" +
          std::string(workload::to_string(std::get<1>(param_info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';  // gtest parameter names must be identifiers
      }
      return name;
    });

TEST(IntegrationTest, DifferentSeedsGiveDifferentRuns) {
  const auto a = harness::run_scenario(
      small_scenario(SchedulerKind::kOrderPreserving, SizeBucket::kUniform, 1));
  const auto b = harness::run_scenario(
      small_scenario(SchedulerKind::kOrderPreserving, SizeBucket::kUniform, 2));
  EXPECT_NE(a.report.makespan_seconds, b.report.makespan_seconds);
}

TEST(IntegrationTest, SameWorkloadAcrossSchedulers) {
  // Paired comparisons: with one seed, every scheduler faces the same
  // arrivals (count may differ only through chunking, so compare original
  // document ids and total input volume of non-chunk jobs).
  const auto base =
      small_scenario(SchedulerKind::kIcOnly, SizeBucket::kUniform);
  const auto results = harness::run_comparison(
      base, {SchedulerKind::kIcOnly, SchedulerKind::kGreedy});
  double vol_ic = 0.0;
  double vol_greedy = 0.0;
  for (const auto& o : results[0].outcomes) vol_ic += o.input_mb;
  for (const auto& o : results[1].outcomes) vol_greedy += o.input_mb;
  EXPECT_NEAR(vol_ic, vol_greedy, 1e-6);  // greedy never chunks
  EXPECT_EQ(results[0].outcomes.size(), results[1].outcomes.size());
}

TEST(IntegrationTest, HighVariationKeepsInvariants) {
  const auto result = harness::run_scenario(small_scenario(
      SchedulerKind::kOrderPreserving, SizeBucket::kLargeBiased, 42, true));
  EXPECT_GT(result.outcomes.size(), 10u);
  EXPECT_GT(result.report.speedup, 1.0);
}

TEST(IntegrationTest, OracleEstimatorRunsCleanly) {
  auto s = small_scenario(SchedulerKind::kOrderPreserving, SizeBucket::kUniform);
  s.estimator = core::EstimatorKind::kOracle;
  const auto result = harness::run_scenario(s);
  EXPECT_TRUE(std::isnan(result.qrsm_r_squared));
  EXPECT_GT(result.report.speedup, 1.0);
}

TEST(IntegrationTest, ReschedulerKeepsOutcomesValid) {
  auto s = small_scenario(SchedulerKind::kOrderPreserving,
                          SizeBucket::kLargeBiased);
  s.enable_rescheduler = true;
  const auto result = harness::run_scenario(s);  // throws if invalid
  EXPECT_GT(result.outcomes.size(), 10u);
}

TEST(IntegrationTest, CompletionBySeqCoversAllJobs) {
  const auto result = harness::run_scenario(
      small_scenario(SchedulerKind::kGreedy, SizeBucket::kUniform));
  const auto series = harness::completion_by_seq(result);
  EXPECT_EQ(series.size(), result.outcomes.size());
  for (double c : series) EXPECT_GT(c, 0.0);
}

TEST(IntegrationTest, ZeroPretrainStillWorks) {
  auto s = small_scenario(SchedulerKind::kOrderPreserving, SizeBucket::kUniform);
  s.pretrain_samples = 0;  // cold-start QRSM: mean fallback until fitted
  const auto result = harness::run_scenario(s);
  EXPECT_GT(result.outcomes.size(), 10u);
}

TEST(IntegrationTest, BytesConservedAcrossTheInterCloudPath) {
  // Every bursted input crosses the uplink once; every bursted output the
  // downlink once; probes add probe_bytes per firing on each link.
  auto s = small_scenario(SchedulerKind::kGreedy, SizeBucket::kUniform);
  const auto result = harness::run_scenario(s);
  double bursted_in = 0.0;
  for (const auto& o : result.outcomes) {
    if (o.bursted()) bursted_in += o.input_mb;
  }
  // The harness does not expose the link object after the run; recompute
  // via a fresh controller-level run in ControllerTest instead. Here we
  // check the outcome-level invariant: bursted inputs are a subset of total.
  double total_in = 0.0;
  for (const auto& o : result.outcomes) total_in += o.input_mb;
  EXPECT_LE(bursted_in, total_in);
}

}  // namespace
