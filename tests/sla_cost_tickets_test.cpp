#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "sla/cost.hpp"
#include "sla/tickets.hpp"

namespace {

using namespace cbs::sla;

JobOutcome outcome(std::uint64_t seq, double arrival, double completed,
                   double input_mb) {
  JobOutcome o;
  o.seq_id = seq;
  o.doc_id = seq;
  o.arrival = arrival;
  o.scheduled = arrival;
  o.completed = completed;
  o.input_mb = input_mb;
  o.output_mb = input_mb;
  o.true_service_seconds = 1.0;
  return o;
}

// ---- tickets --------------------------------------------------------------

TEST(TicketTest, DeadlineFormula) {
  const TicketPolicy policy{.base_seconds = 100.0, .seconds_per_mb = 2.0};
  const JobOutcome o = outcome(1, 50.0, 0.0, 30.0);
  EXPECT_DOUBLE_EQ(policy.deadline_for(o), 50.0 + 100.0 + 60.0);
}

TEST(TicketTest, CountsHitsAndLateness) {
  const TicketPolicy policy{.base_seconds = 100.0, .seconds_per_mb = 0.0};
  std::vector<JobOutcome> outcomes = {
      outcome(1, 0.0, 50.0, 1.0),    // met with 50 s to spare
      outcome(2, 0.0, 100.0, 1.0),   // met exactly
      outcome(3, 0.0, 180.0, 1.0),   // 80 s late
      outcome(4, 0.0, 300.0, 1.0),   // 200 s late
  };
  const TicketReport r = evaluate_tickets(outcomes, policy);
  EXPECT_EQ(r.jobs, 4u);
  EXPECT_EQ(r.met, 2u);
  EXPECT_DOUBLE_EQ(r.hit_rate, 0.5);
  EXPECT_DOUBLE_EQ(r.max_lateness, 200.0);
  EXPECT_DOUBLE_EQ(r.mean_lateness, 140.0);
  EXPECT_DOUBLE_EQ(r.mean_slack_left, 25.0);
}

TEST(TicketTest, EmptyRunIsSafe) {
  const TicketReport r = evaluate_tickets({}, TicketPolicy{});
  EXPECT_EQ(r.jobs, 0u);
  EXPECT_DOUBLE_EQ(r.hit_rate, 0.0);
}

TEST(TicketTest, TightestScaleBoundsTurnaround) {
  const TicketPolicy policy{.base_seconds = 100.0, .seconds_per_mb = 0.0};
  std::vector<JobOutcome> outcomes = {
      outcome(1, 0.0, 50.0, 1.0),   // needs scale 0.5
      outcome(2, 0.0, 150.0, 1.0),  // needs scale 1.5
      outcome(3, 0.0, 250.0, 1.0),  // needs scale 2.5
      outcome(4, 0.0, 400.0, 1.0),  // needs scale 4.0
  };
  EXPECT_DOUBLE_EQ(tightest_ticket_scale(outcomes, policy, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(tightest_ticket_scale(outcomes, policy, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(tightest_ticket_scale(outcomes, policy, 0.25), 0.5);
}

TEST(TicketTest, ScaledPolicyAchievesTarget) {
  const TicketPolicy policy{.base_seconds = 60.0, .seconds_per_mb = 1.0};
  std::vector<JobOutcome> outcomes;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    outcomes.push_back(outcome(i, 10.0 * static_cast<double>(i),
                               10.0 * static_cast<double>(i) +
                                   5.0 * static_cast<double>(i % 40),
                               static_cast<double>(i % 30) + 1.0));
  }
  const double scale = tightest_ticket_scale(outcomes, policy, 0.9);
  TicketPolicy scaled{.base_seconds = policy.base_seconds * scale,
                      .seconds_per_mb = policy.seconds_per_mb * scale};
  const TicketReport r = evaluate_tickets(outcomes, scaled);
  EXPECT_GE(r.hit_rate, 0.9);
}

// ---- cost -------------------------------------------------------------------

TEST(CostTest, ItemizedBill) {
  CostInputs in;
  in.ec_provisioned_machine_seconds = 2.0 * 3600.0;  // 2 machine-hours
  in.uplink_bytes = 10.0e9;                          // 10 GB out
  in.downlink_bytes = 5.0e9;                         // 5 GB back
  in.store_byte_seconds = 1.0e9 * 30.0 * 86400.0;    // 1 GB-month
  in.ic_machine_seconds = 10.0 * 3600.0;
  const CostRates rates{};  // defaults
  const CostReport r = compute_cost(in, rates);
  EXPECT_NEAR(r.ec_compute, 0.20, 1e-9);
  EXPECT_NEAR(r.egress, 1.50, 1e-9);
  EXPECT_NEAR(r.ingress, 0.50, 1e-9);
  EXPECT_NEAR(r.storage, 0.15, 1e-9);
  EXPECT_NEAR(r.ic_amortized, 0.40, 1e-9);
  EXPECT_NEAR(r.cloud_total(), 2.35, 1e-9);
  EXPECT_NEAR(r.grand_total(), 2.75, 1e-9);
}

TEST(CostTest, ZeroUsageIsFree) {
  const CostReport r = compute_cost(CostInputs{}, CostRates{});
  EXPECT_DOUBLE_EQ(r.grand_total(), 0.0);
}

TEST(CostTest, CostPerOutputMb) {
  CostReport r;
  r.egress = 2.0;
  r.ingress = 1.0;
  std::vector<JobOutcome> outcomes = {outcome(1, 0.0, 1.0, 100.0),
                                      outcome(2, 0.0, 1.0, 200.0)};
  EXPECT_DOUBLE_EQ(cloud_cost_per_output_mb(r, outcomes), 3.0 / 300.0);
}

TEST(CostTest, ToStringMentionsComponents) {
  CostReport r;
  r.ec_compute = 1.0;
  const std::string s = r.to_string();
  EXPECT_NE(s.find("EC compute"), std::string::npos);
  EXPECT_NE(s.find("grand"), std::string::npos);
}

// ---- harness integration ------------------------------------------------------

TEST(EconomicsIntegrationTest, RunResultCarriesTicketsAndCost) {
  auto s = cbs::harness::make_scenario(cbs::core::SchedulerKind::kGreedy,
                                       cbs::workload::SizeBucket::kUniform);
  s.num_batches = 3;
  const auto r = cbs::harness::run_scenario(s);
  EXPECT_EQ(r.tickets.jobs, r.outcomes.size());
  EXPECT_GT(r.tickets.hit_rate, 0.0);
  // A bursting run moved bytes and rented EC machines: the bill is nonzero.
  EXPECT_GT(r.cost.grand_total(), 0.0);
  EXPECT_GT(r.cost.ic_amortized, 0.0);
  if (r.report.burst_ratio > 0.0) {
    EXPECT_GT(r.cost.egress, 0.0);
    EXPECT_GT(r.cost.ingress, 0.0);
    EXPECT_GT(r.cost.storage, 0.0);
  }
}

TEST(EconomicsIntegrationTest, IcOnlyHasNoCloudCost) {
  auto s = cbs::harness::make_scenario(cbs::core::SchedulerKind::kIcOnly,
                                       cbs::workload::SizeBucket::kUniform);
  s.num_batches = 2;
  auto result = cbs::harness::run_scenario(s);
  // Probes still move a little data; compute and storage must be untouched.
  EXPECT_DOUBLE_EQ(result.cost.storage, 0.0);
  EXPECT_LT(result.cost.egress, 0.01);  // only 1 MB probes
}

}  // namespace
