// Tests for the fault-injection and recovery subsystem: the FaultPlan
// event generator, the controller's burst-retraction policy, and the
// scheduler invariants that must survive faults — conservation (every job
// completes exactly once), FCFS re-admission order, and determinism of
// faulted runs at any worker-thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "simcore/fault_plan.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"

namespace {

using namespace cbs;
using cbs::sim::FaultConfig;
using cbs::sim::FaultPlan;
using cbs::sim::OutageWindow;
using cbs::sim::RngStream;
using cbs::sim::Simulation;

// ---- FaultPlan: the event generator ------------------------------------

TEST(FaultPlanTest, DisabledConfigIsDisabled) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.any_faults());
  EXPECT_FALSE(cfg.enabled());
  cfg.retraction_deadline_factor = 2.0;
  EXPECT_FALSE(cfg.any_faults());  // recovery policy alone injects nothing
  EXPECT_TRUE(cfg.enabled());
}

TEST(FaultPlanTest, CrashTraceIsDeterministicPerSeed) {
  const auto trace = [](std::uint64_t seed) {
    Simulation sim;
    FaultConfig cfg;
    cfg.ec_vm_mtbf = 50.0;
    cfg.vm_recovery_seconds = 5.0;
    FaultPlan plan(sim, cfg, RngStream(seed));
    std::vector<std::pair<std::size_t, double>> crashes;
    plan.drive_vm_crashes(
        "ec", 3, cfg.ec_vm_mtbf,
        [&](std::size_t m) { crashes.emplace_back(m, sim.now()); }, nullptr);
    // Stop the otherwise-unbounded crash/recover loop after a horizon.
    plan.set_active([&sim] { return sim.now() < 300.0; });
    sim.run();
    return crashes;
  };
  const auto a = trace(7);
  const auto b = trace(7);
  const auto c = trace(8);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FaultPlanTest, MachineSubstreamsAreIndependent) {
  // The crash times of machine 0 must not change when more machines are
  // driven — each machine draws from its own named substream.
  const auto machine0_times = [](std::size_t machines) {
    Simulation sim;
    FaultConfig cfg;
    cfg.ic_vm_mtbf = 40.0;
    cfg.vm_recovery_seconds = 1.0;
    FaultPlan plan(sim, cfg, RngStream(11));
    std::vector<double> times;
    plan.drive_vm_crashes(
        "ic", machines, cfg.ic_vm_mtbf,
        [&](std::size_t m) {
          if (m == 0) times.push_back(sim.now());
        },
        nullptr);
    plan.set_active([&sim] { return sim.now() < 200.0; });
    sim.run();
    return times;
  };
  EXPECT_EQ(machine0_times(1), machine0_times(4));
}

TEST(FaultPlanTest, OverlappingOutageWindowsMerge) {
  Simulation sim;
  FaultConfig cfg;
  cfg.outage_windows = {OutageWindow{10.0, 10.0},   // [10, 20)
                        OutageWindow{15.0, 15.0},   // [15, 30) — overlaps
                        OutageWindow{50.0, 5.0}};   // [50, 55) — separate
  FaultPlan plan(sim, cfg, RngStream(1));
  std::vector<double> begins;
  std::vector<double> ends;
  plan.drive_outages([&](const OutageWindow&) { begins.push_back(sim.now()); },
                     [&] { ends.push_back(sim.now()); });
  sim.run();
  // Two merged outage episodes: [10, 30) and [50, 55).
  ASSERT_EQ(begins.size(), 2u);
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_DOUBLE_EQ(begins[0], 10.0);
  EXPECT_DOUBLE_EQ(ends[0], 30.0);
  EXPECT_DOUBLE_EQ(begins[1], 50.0);
  EXPECT_DOUBLE_EQ(ends[1], 55.0);
  EXPECT_EQ(plan.outages_started(), 2u);
}

TEST(FaultPlanTest, CrashProcessPausesWhileInactiveAndResumes) {
  Simulation sim;
  FaultConfig cfg;
  cfg.ic_vm_mtbf = 10.0;
  cfg.vm_recovery_seconds = 1.0;
  FaultPlan plan(sim, cfg, RngStream(3));
  bool active = false;
  int crashes = 0;
  plan.drive_vm_crashes("ic", 1, cfg.ic_vm_mtbf,
                        [&](std::size_t) { ++crashes; }, nullptr);
  plan.set_active([&active] { return active; });
  sim.run();  // gate closed: the armed crash fires as a no-op and pauses
  EXPECT_EQ(crashes, 0);
  active = true;
  plan.ensure_armed();
  sim.schedule_in(200.0, [&active] { active = false; });
  sim.run();
  EXPECT_GT(crashes, 0);
}

// ---- Scenario-level: invariants under faults ----------------------------

harness::Scenario faulted_scenario(std::uint64_t seed) {
  harness::Scenario s = harness::make_scenario(
      core::SchedulerKind::kOrderPreserving, workload::SizeBucket::kLargeBiased,
      seed);
  s.num_batches = 3;
  s.log_threshold = cbs::sim::LogLevel::kError;
  s.faults.ec_vm_mtbf = 900.0;
  s.faults.ic_vm_mtbf = 3000.0;
  s.faults.vm_recovery_seconds = 90.0;
  s.faults.outage_windows = {OutageWindow{350.0, 200.0}};
  s.faults.probe_blackout = {OutageWindow{200.0, 400.0}};
  s.faults.retraction_deadline_factor = 3.0;
  return s;
}

TEST(FaultScenarioTest, ConservationHoldsUnderHeavyFaults) {
  // run_scenario itself validates that job ids 1..n complete exactly once
  // and throws otherwise — surviving the call IS the conservation check.
  const auto r = harness::run_scenario(faulted_scenario(42));
  EXPECT_GT(r.outcomes.size(), 10u);
  EXPECT_GT(r.faults.ic_crashes + r.faults.ec_crashes, 0u);
  EXPECT_GT(r.faults.reexecutions, 0u);
  EXPECT_GT(r.faults.wasted_compute_seconds, 0.0);
  EXPECT_EQ(r.faults.outages, 1u);
  EXPECT_GT(r.faults.probe_blackout_skips, 0u);
}

TEST(FaultScenarioTest, OutageTriggersRetractionAndJobsStillComplete) {
  // An outage window placed over the upload phase forces queued bursts
  // back to the IC; nothing may be lost or duplicated.
  harness::Scenario s = harness::make_scenario(
      core::SchedulerKind::kOrderPreserving, workload::SizeBucket::kLargeBiased,
      1337);
  s.num_batches = 3;
  s.log_threshold = cbs::sim::LogLevel::kError;
  s.faults.outage_windows = {OutageWindow{200.0, 400.0},
                             OutageWindow{700.0, 200.0}};
  const auto r = harness::run_scenario(s);
  EXPECT_GT(r.faults.retractions, 0u);
  // Retracted jobs end as internal completions; the placement mix shifts
  // but every job completes (validated inside run_scenario).
  std::size_t internal = 0;
  for (const auto& o : r.outcomes) {
    if (o.placement == sla::Placement::kInternal) ++internal;
  }
  EXPECT_GT(internal, 0u);
}

TEST(FaultScenarioTest, RetractionPreservesFcfsReadmission) {
  // Single batch + a long outage over the upload phase: every queued burst
  // is retracted at the same instant and must re-enter the IC feed queue at
  // its sequence position. With a single IC machine the cluster serializes,
  // so completion order equals dispatch order — and dispatch order after
  // the retraction must follow the seq-sorted feed queue.
  harness::Scenario s = harness::make_scenario(
      core::SchedulerKind::kOrderPreserving, workload::SizeBucket::kLargeBiased,
      7);
  s.num_batches = 1;
  s.log_threshold = cbs::sim::LogLevel::kError;
  s.faults.outage_windows = {OutageWindow{190.0, 2000.0}};
  auto cfg = core::default_controller_config(false);
  cfg.topology.ic_machines = 1;
  s.config_override = cfg;

  const auto r = harness::run_scenario(s);
  ASSERT_GT(r.faults.retractions, 0u);

  std::vector<std::pair<double, std::uint64_t>> ic_done;
  for (const auto& o : r.outcomes) {
    if (o.placement == sla::Placement::kInternal && o.completed > 190.0) {
      ic_done.emplace_back(o.completed, o.seq_id);
    }
  }
  std::sort(ic_done.begin(), ic_done.end());
  ASSERT_GT(ic_done.size(), 2u);
  // ic_done[0] may be the task already running when the outage hit (its seq
  // can exceed a retracted job's); everything dispatched after it is FCFS.
  std::uint64_t prev_seq = 0;
  for (std::size_t i = 1; i < ic_done.size(); ++i) {
    EXPECT_GT(ic_done[i].second, prev_seq)
        << "IC completion order violates FCFS at t=" << ic_done[i].first;
    prev_seq = ic_done[i].second;
  }
}

TEST(FaultScenarioTest, InertRecoveryPolicyDoesNotPerturbResults) {
  // Arming the retraction machinery without it ever firing (absurdly large
  // deadline factor, no injected faults) must not change any result: the
  // deadline events are armed and cancelled but never observed.
  harness::Scenario plain = harness::make_scenario(
      core::SchedulerKind::kGreedy, workload::SizeBucket::kUniform, 42);
  plain.num_batches = 2;
  harness::Scenario gated = plain;
  gated.faults.retraction_deadline_factor = 1.0e9;

  const auto a = harness::run_scenario(plain);
  const auto b = harness::run_scenario(gated);
  EXPECT_EQ(b.faults.retractions, 0u);
  EXPECT_EQ(a.report.makespan_seconds, b.report.makespan_seconds);
  EXPECT_EQ(a.report.speedup, b.report.speedup);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].completed, b.outcomes[i].completed);
    EXPECT_EQ(a.outcomes[i].placement, b.outcomes[i].placement);
  }
}

TEST(FaultScenarioTest, FaultedRunsAreDeterministicAcrossThreadCounts) {
  std::vector<harness::Scenario> scenarios;
  for (const std::uint64_t seed : {42ULL, 7ULL}) {
    scenarios.push_back(faulted_scenario(seed));
  }
  const harness::ExperimentPlan plan =
      harness::ExperimentPlan::list(scenarios);

  const auto run_at = [&plan](std::size_t threads) {
    harness::RunnerOptions opts;
    opts.threads = threads;
    return harness::run_plan(plan, opts);
  };
  const auto r1 = run_at(1);
  const auto r2 = run_at(2);
  const auto r8 = run_at(8);
  ASSERT_EQ(r1.size(), r2.size());
  ASSERT_EQ(r1.size(), r8.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    ASSERT_TRUE(r1[i].ok() && r2[i].ok() && r8[i].ok());
    EXPECT_EQ(r1[i].result->report.makespan_seconds,
              r2[i].result->report.makespan_seconds);
    EXPECT_EQ(r1[i].result->report.makespan_seconds,
              r8[i].result->report.makespan_seconds);
    EXPECT_EQ(r1[i].result->events_processed, r2[i].result->events_processed);
    EXPECT_EQ(r1[i].result->events_processed, r8[i].result->events_processed);
    EXPECT_EQ(r1[i].result->faults.retractions,
              r8[i].result->faults.retractions);
    EXPECT_EQ(r1[i].result->faults.crashes_injected,
              r8[i].result->faults.crashes_injected);
  }
}

TEST(FaultScenarioTest, GreedyAlsoSurvivesFaults) {
  harness::Scenario s = faulted_scenario(2718);
  s.scheduler = core::SchedulerKind::kGreedy;
  const auto r = harness::run_scenario(s);  // throws on invariant violation
  EXPECT_GT(r.outcomes.size(), 10u);
}

// ---- proactive resilience (hazard predictor on) -------------------------

harness::Scenario hazard_scenario(std::uint64_t seed,
                                  models::HazardPredictorKind kind) {
  harness::Scenario s = faulted_scenario(seed);
  s.resilience.hazard.kind = kind;
  return s;
}

TEST(FaultScenarioTest, HazardPredictorPreservesConservation) {
  // Surviving run_scenario IS the zero-lost-jobs check; on top of that the
  // proactive machinery must actually engage under this fault load and the
  // prediction scorecard must stay internally consistent.
  const auto r = harness::run_scenario(
      hazard_scenario(42, models::HazardPredictorKind::kEwma));
  EXPECT_GT(r.outcomes.size(), 10u);
  EXPECT_GT(r.faults.drains, 0u);
  EXPECT_GT(r.faults.hazard_predictions, 0u);
  // Every prediction resolves to TP or FP (or is still open at run end).
  EXPECT_LE(r.faults.hazard_true_positives + r.faults.hazard_false_positives,
            r.faults.hazard_predictions);
  EXPECT_GE(r.faults.hazard_precision(), 0.0);
  EXPECT_LE(r.faults.hazard_precision(), 1.0);
  EXPECT_GE(r.faults.hazard_recall(), 0.0);
  EXPECT_LE(r.faults.hazard_recall(), 1.0);
}

TEST(FaultScenarioTest, HazardPredictorOffIsInertWhateverTheKnobs) {
  // kind == kOff must disable the whole resilience layer even when every
  // other knob is set aggressively — the byte-identity contract of the
  // default path rests on this.
  harness::Scenario plain = faulted_scenario(42);
  harness::Scenario off = plain;
  off.resilience.hazard.kind = models::HazardPredictorKind::kOff;
  off.resilience.drain_threshold = 0.0;
  off.resilience.risk_weight = 100.0;
  off.resilience.drain_window_seconds = 1.0e6;

  const auto a = harness::run_scenario(plain);
  const auto b = harness::run_scenario(off);
  EXPECT_EQ(b.faults.drains, 0u);
  EXPECT_EQ(b.faults.hazard_predictions, 0u);
  EXPECT_EQ(a.report.makespan_seconds, b.report.makespan_seconds);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].completed, b.outcomes[i].completed);
    EXPECT_EQ(a.outcomes[i].placement, b.outcomes[i].placement);
  }
}

TEST(FaultScenarioTest, HazardRunsAreDeterministicAcrossThreadCounts) {
  std::vector<harness::Scenario> scenarios;
  for (const auto kind : {models::HazardPredictorKind::kEwma,
                          models::HazardPredictorKind::kBayes}) {
    scenarios.push_back(hazard_scenario(42, kind));
    scenarios.push_back(hazard_scenario(7, kind));
  }
  const harness::ExperimentPlan plan =
      harness::ExperimentPlan::list(scenarios);

  const auto run_at = [&plan](std::size_t threads) {
    harness::RunnerOptions opts;
    opts.threads = threads;
    return harness::run_plan(plan, opts);
  };
  const auto r1 = run_at(1);
  const auto r2 = run_at(2);
  const auto r8 = run_at(8);
  ASSERT_EQ(r1.size(), r2.size());
  ASSERT_EQ(r1.size(), r8.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    ASSERT_TRUE(r1[i].ok() && r2[i].ok() && r8[i].ok());
    for (const auto* other : {&r2[i], &r8[i]}) {
      EXPECT_EQ(r1[i].result->report.makespan_seconds,
                other->result->report.makespan_seconds);
      EXPECT_EQ(r1[i].result->events_processed,
                other->result->events_processed);
      EXPECT_EQ(r1[i].result->faults.drains, other->result->faults.drains);
      EXPECT_EQ(r1[i].result->faults.hazard_predictions,
                other->result->faults.hazard_predictions);
      EXPECT_EQ(r1[i].result->faults.hazard_true_positives,
                other->result->faults.hazard_true_positives);
      EXPECT_EQ(r1[i].result->faults.checkpointed_compute_seconds,
                other->result->faults.checkpointed_compute_seconds);
    }
  }
}

}  // namespace
