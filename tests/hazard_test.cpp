// Unit tests for the online per-VM hazard estimator (models/hazard.hpp):
// prior fallback on cold machines, EWMA and Bayes rate updates, the
// min-gap floor on clock-adjacent failures, probability bounds, the
// prediction scorecard (TP/FP/FN), and value-semantics cloning.

#include <gtest/gtest.h>

#include <cmath>

#include "models/hazard.hpp"

namespace {

using cbs::models::HazardModelConfig;
using cbs::models::HazardPredictorKind;
using cbs::models::VmHazardEstimator;

HazardModelConfig config_for(HazardPredictorKind kind) {
  HazardModelConfig cfg;
  cfg.kind = kind;
  return cfg;
}

TEST(HazardEstimator, OffKindPredictsNothing) {
  VmHazardEstimator est(config_for(HazardPredictorKind::kOff), 4);
  est.on_failure(0, 100.0);
  est.on_failure(0, 101.0);
  EXPECT_EQ(est.hazard_rate(0, 200.0), 0.0);
  EXPECT_EQ(est.failure_probability(0, 200.0, 600.0), 0.0);
  EXPECT_EQ(cbs::models::mean_failure_probability(est, 200.0, 600.0), 0.0);
}

TEST(HazardEstimator, ZeroFailureHistoryFallsBackToPrior) {
  for (const auto kind :
       {HazardPredictorKind::kEwma, HazardPredictorKind::kBayes}) {
    const HazardModelConfig cfg = config_for(kind);
    VmHazardEstimator est(cfg, 2);
    const double prior = cfg.prior_failures / cfg.prior_exposure_seconds;
    // A machine with no history must be believed at (near) the prior rate,
    // not at zero (overtrusted) or infinity (condemned).
    const double rate = est.hazard_rate(0, 0.0);
    EXPECT_GT(rate, 0.0);
    EXPECT_LE(rate, prior * 1.01);
    const double p = est.failure_probability(0, 0.0, 600.0);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 0.05);  // the prior must not trigger a default drain
  }
}

TEST(HazardEstimator, SingleSampleInitializesEwmaDirectly) {
  VmHazardEstimator est(config_for(HazardPredictorKind::kEwma), 1);
  // First observed gap is 500 s; right after the crash the believed rate
  // is 1/500 (survival time is zero, the EWMA holds one sample).
  est.on_failure(0, 500.0);
  EXPECT_DOUBLE_EQ(est.hazard_rate(0, 500.0), 1.0 / 500.0);
  EXPECT_EQ(est.failures(0), 1U);
}

TEST(HazardEstimator, SurvivalDiscountsTheEwmaRate) {
  VmHazardEstimator est(config_for(HazardPredictorKind::kEwma), 1);
  est.on_failure(0, 500.0);
  // A machine that has outlived its typical gap is believed less hazardous:
  // the rate decays as 1/survival once survival exceeds the gap EWMA.
  const double at_crash = est.hazard_rate(0, 500.0);
  const double much_later = est.hazard_rate(0, 3000.0);
  EXPECT_LT(much_later, at_crash);
  EXPECT_DOUBLE_EQ(much_later, 1.0 / 2500.0);
}

TEST(HazardEstimator, ClockAdjacentFailuresAreFloored) {
  const HazardModelConfig cfg = config_for(HazardPredictorKind::kEwma);
  VmHazardEstimator est(cfg, 1);
  // Two crashes at the same instant: the gap floors at min_gap_seconds, so
  // the rate stays finite and the probability stays below 1.
  est.on_failure(0, 100.0);
  est.on_failure(0, 100.0);
  est.on_failure(0, 100.0);
  const double rate = est.hazard_rate(0, 100.0);
  EXPECT_TRUE(std::isfinite(rate));
  EXPECT_LE(rate, 1.0 / cfg.min_gap_seconds);
  const double p = est.failure_probability(0, 100.0, 600.0);
  EXPECT_LT(p, 1.0);
  EXPECT_GT(p, 0.9);  // still read as extremely hazardous
}

TEST(HazardEstimator, BayesRateGrowsWithFailuresAndShrinksWithExposure) {
  VmHazardEstimator est(config_for(HazardPredictorKind::kBayes), 2);
  est.on_failure(0, 1000.0);
  est.on_failure(0, 2000.0);
  est.on_failure(0, 3000.0);
  // Machine 0 crashed three times, machine 1 never: the posterior rate of
  // the hot machine must dominate the cold one at equal exposure.
  EXPECT_GT(est.hazard_rate(0, 3000.0), est.hazard_rate(1, 3000.0));
  // More uneventful exposure lowers the believed rate.
  EXPECT_LT(est.hazard_rate(0, 30000.0), est.hazard_rate(0, 3000.0));
}

TEST(HazardEstimator, ProbabilityIsBoundedAndMonotoneInWindow) {
  VmHazardEstimator est(config_for(HazardPredictorKind::kEwma), 1);
  est.on_failure(0, 50.0);
  est.on_failure(0, 60.0);
  double prev = 0.0;
  for (const double w : {0.0, 10.0, 100.0, 1000.0, 1.0e6}) {
    const double p = est.failure_probability(0, 60.0, w);
    EXPECT_GE(p, 0.0);
    // Mathematically < 1 always, but −expm1(−rate·w) rounds to exactly 1.0
    // once rate·w overwhelms double precision — allow the saturated bound.
    EXPECT_LE(p, 1.0);
    EXPECT_GE(p, prev);  // longer window, more chance to fail
    prev = p;
  }
  EXPECT_EQ(est.failure_probability(0, 60.0, 0.0), 0.0);
}

TEST(HazardEstimator, InWindowCrashScoresTruePositive) {
  VmHazardEstimator est(config_for(HazardPredictorKind::kEwma), 1);
  est.note_prediction(0, 100.0, 50.0);
  EXPECT_TRUE(est.flagged(0));
  est.on_failure(0, 130.0);  // inside [100, 150]
  EXPECT_EQ(est.stats().predictions, 1U);
  EXPECT_EQ(est.stats().true_positives, 1U);
  EXPECT_EQ(est.stats().false_positives, 0U);
  EXPECT_EQ(est.stats().false_negatives, 0U);
  EXPECT_FALSE(est.flagged(0));  // the flag resolved
  EXPECT_DOUBLE_EQ(est.stats().precision(), 1.0);
  EXPECT_DOUBLE_EQ(est.stats().recall(), 1.0);
}

TEST(HazardEstimator, ExpiredFlagScoresFalsePositive) {
  VmHazardEstimator est(config_for(HazardPredictorKind::kEwma), 1);
  est.note_prediction(0, 100.0, 50.0);
  est.settle(149.0);  // still within the window: nothing resolves
  EXPECT_TRUE(est.flagged(0));
  EXPECT_EQ(est.stats().false_positives, 0U);
  est.settle(151.0);  // window passed uneventfully
  EXPECT_FALSE(est.flagged(0));
  EXPECT_EQ(est.stats().false_positives, 1U);
  EXPECT_EQ(est.stats().true_positives, 0U);
  EXPECT_DOUBLE_EQ(est.stats().precision(), 0.0);
}

TEST(HazardEstimator, UnflaggedCrashScoresFalseNegative) {
  VmHazardEstimator est(config_for(HazardPredictorKind::kEwma), 2);
  est.on_failure(1, 200.0);  // no flag anywhere
  EXPECT_EQ(est.stats().false_negatives, 1U);
  EXPECT_EQ(est.stats().predictions, 0U);
  EXPECT_DOUBLE_EQ(est.stats().recall(), 0.0);
}

TEST(HazardEstimator, CrashAfterExpiredFlagScoresBothFpAndFn) {
  VmHazardEstimator est(config_for(HazardPredictorKind::kEwma), 1);
  est.note_prediction(0, 100.0, 50.0);
  // No settle() ran in between: the crash at 300 must first expire the
  // stale flag (FP) and then count itself as unpredicted (FN).
  est.on_failure(0, 300.0);
  EXPECT_EQ(est.stats().false_positives, 1U);
  EXPECT_EQ(est.stats().false_negatives, 1U);
  EXPECT_EQ(est.stats().true_positives, 0U);
}

TEST(HazardEstimator, ReflaggingExtendsWithoutDoubleCounting) {
  VmHazardEstimator est(config_for(HazardPredictorKind::kEwma), 1);
  est.note_prediction(0, 100.0, 50.0);
  est.note_prediction(0, 140.0, 50.0);  // extend to 190, same prediction
  EXPECT_EQ(est.stats().predictions, 1U);
  est.settle(160.0);  // the original window end passed, but it was extended
  EXPECT_TRUE(est.flagged(0));
  EXPECT_EQ(est.stats().false_positives, 0U);
  est.on_failure(0, 185.0);
  EXPECT_EQ(est.stats().true_positives, 1U);
}

TEST(HazardEstimator, EnsureMachinesGrowsColdFromNow) {
  VmHazardEstimator est(config_for(HazardPredictorKind::kBayes), 2);
  est.on_failure(0, 1000.0);
  est.ensure_machines(4, 5000.0);
  EXPECT_EQ(est.machine_count(), 4U);
  est.ensure_machines(3, 6000.0);  // never shrinks
  EXPECT_EQ(est.machine_count(), 4U);
  EXPECT_EQ(est.failures(2), 0U);
  // The late machine's exposure is metered from its registration, so at
  // equal wall time it has less exposure and a *higher* prior-driven rate
  // than a machine registered at t=0 (exposure anchors differ).
  EXPECT_GE(est.hazard_rate(2, 6000.0), est.hazard_rate(1, 6000.0));
}

TEST(HazardEstimator, CopyIsIndependent) {
  VmHazardEstimator a(config_for(HazardPredictorKind::kEwma), 2);
  a.on_failure(0, 100.0);
  a.note_prediction(1, 100.0, 50.0);

  VmHazardEstimator b = a;  // the fork path: plain value copy
  EXPECT_EQ(b.failures(0), 1U);
  EXPECT_TRUE(b.flagged(1));
  EXPECT_EQ(a.hazard_rate(0, 100.0), b.hazard_rate(0, 100.0));

  // Divergence after the copy must not leak either way.
  b.on_failure(0, 110.0);
  EXPECT_EQ(a.failures(0), 1U);
  EXPECT_EQ(b.failures(0), 2U);
  a.settle(200.0);
  EXPECT_EQ(a.stats().false_positives, 1U);
  EXPECT_EQ(b.stats().false_positives, 0U);
}

}  // namespace
