// Tests for the model-predictive lookahead policy (harness/world.hpp):
// decision mechanics, determinism, and the acceptance bar — lookahead must
// improve an SLA-cost dimension over both greedy and order-preserving on
// at least one workload family.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace {

using cbs::core::SchedulerKind;
using cbs::harness::LookaheadController;
using cbs::harness::RunResult;
using cbs::harness::Scenario;
using cbs::harness::ScenarioWorld;
using cbs::harness::run_scenario;

Scenario lookahead_scenario(std::uint64_t seed) {
  return cbs::harness::make_scenario(SchedulerKind::kLookahead,
                                     cbs::workload::SizeBucket::kUniform, seed);
}

TEST(Lookahead, DecidesAtEveryBatchAndValidates) {
  Scenario s = lookahead_scenario(42);
  s.num_batches = 4;
  ScenarioWorld world(s);
  world.run();
  const RunResult r = world.result();  // throws on invariant violations
  EXPECT_EQ(world.lookahead_choices().size(), s.num_batches);
  EXPECT_FALSE(r.outcomes.empty());
  EXPECT_EQ(world.controller().outstanding_jobs(), 0u);
}

TEST(Lookahead, CandidatePriorityOrderIsStable) {
  const auto& order = LookaheadController::candidate_order();
  ASSERT_GE(order.size(), 3u);
  EXPECT_EQ(order[0], SchedulerKind::kOrderPreserving);
  EXPECT_EQ(order[1], SchedulerKind::kGreedy);
  EXPECT_EQ(order[2], SchedulerKind::kIcOnly);
}

TEST(Lookahead, DecisionEvaluatesRequestedCandidateCount) {
  Scenario s = lookahead_scenario(42);
  s.num_batches = 2;
  s.lookahead_candidates = 2;
  ScenarioWorld world(s);
  LookaheadController::Config cfg;
  cfg.horizon_seconds = s.lookahead_horizon_seconds;
  cfg.candidates = s.lookahead_candidates;
  const LookaheadController lookahead(cfg);
  const auto decision = lookahead.decide(world, world.batches().front());
  EXPECT_EQ(decision.scores.size(), 2u);
  EXPECT_EQ(decision.scores[0].first, SchedulerKind::kOrderPreserving);
  EXPECT_EQ(decision.scores[1].first, SchedulerKind::kGreedy);
  // The winner is one of the evaluated candidates, at the winning score.
  double best = decision.scores[0].second;
  for (const auto& [kind, score] : decision.scores) best = std::min(best, score);
  EXPECT_EQ(decision.score, best);
}

TEST(Lookahead, DecisionDoesNotPerturbTheParent) {
  Scenario s = lookahead_scenario(42);
  s.num_batches = 2;
  ScenarioWorld a(s);
  ScenarioWorld b(s);
  LookaheadController::Config cfg;
  const LookaheadController lookahead(cfg);
  (void)lookahead.decide(a, a.batches().front());  // rollouts run in forks
  a.run();
  b.run();
  const RunResult ra = a.result();
  const RunResult rb = b.result();
  ASSERT_EQ(ra.outcomes.size(), rb.outcomes.size());
  for (std::size_t i = 0; i < ra.outcomes.size(); ++i) {
    EXPECT_EQ(ra.outcomes[i].completed, rb.outcomes[i].completed);
  }
  EXPECT_EQ(ra.events_processed, rb.events_processed);
}

TEST(Lookahead, DeterministicAcrossRuns) {
  Scenario s = lookahead_scenario(7);
  s.num_batches = 4;
  const RunResult a = run_scenario(s);
  const RunResult b = run_scenario(s);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].completed, b.outcomes[i].completed);
    EXPECT_EQ(a.outcomes[i].placement, b.outcomes[i].placement);
  }
  EXPECT_EQ(a.cost.cloud_total(), b.cost.cloud_total());
}

// The acceptance bar: on the uniform bucket (the paper's §V default
// family, low network variation) the lookahead policy produces a cheaper
// cloud bill than BOTH fixed baselines — the horizon roll sees when a
// burst's transfer cost outweighs its deadline benefit and keeps the work
// internal. Pinned on two seeds so a single lucky draw can't carry it.
TEST(Lookahead, BeatsBothBaselinesOnCloudCostUniformFamily) {
  for (const std::uint64_t seed : {42ull, 7ull}) {
    const Scenario base = cbs::harness::make_scenario(
        SchedulerKind::kOrderPreserving, cbs::workload::SizeBucket::kUniform,
        seed);
    Scenario la = base;
    la.scheduler = SchedulerKind::kLookahead;
    Scenario greedy = base;
    greedy.scheduler = SchedulerKind::kGreedy;

    const double la_cost = run_scenario(la).cost.cloud_total();
    const double op_cost = run_scenario(base).cost.cloud_total();
    const double greedy_cost = run_scenario(greedy).cost.cloud_total();

    EXPECT_LT(la_cost, op_cost) << "seed " << seed;
    EXPECT_LT(la_cost, greedy_cost) << "seed " << seed;
  }
}

}  // namespace
