# Runs BIN with ARGS (;-separated) and byte-compares stdout to GOLDEN.
# Used by the golden CLI tests pinning table1_metrics / fault_degradation.
if(NOT DEFINED BIN OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "run_and_diff.cmake needs -DBIN=... and -DGOLDEN=...")
endif()

execute_process(
  COMMAND ${BIN} ${ARGS}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BIN} ${ARGS} exited with ${rc}")
endif()

file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
  set(got "${CMAKE_CURRENT_BINARY_DIR}/golden_diff_actual.txt")
  file(WRITE ${got} "${actual}")
  message(FATAL_ERROR
    "output of ${BIN} ${ARGS} differs from golden ${GOLDEN}\n"
    "actual output saved to ${got}\n"
    "(regenerate the golden only for an intentional behaviour change)")
endif()
