#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "simcore/rng.hpp"
#include "stats/distributions.hpp"
#include "stats/histogram.hpp"
#include "stats/aggregate.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

namespace {

using cbs::sim::RngStream;
using namespace cbs::stats;

constexpr int kSamples = 20000;

TEST(DistributionsTest, ExponentialMeanMatchesRate) {
  RngStream rng(1);
  Summary s;
  for (int i = 0; i < kSamples; ++i) s.add(sample_exponential(rng, 0.25));
  EXPECT_NEAR(s.mean(), 4.0, 0.15);
  EXPECT_GE(s.min(), 0.0);
}

TEST(DistributionsTest, PoissonSmallMean) {
  RngStream rng(2);
  Summary s;
  for (int i = 0; i < kSamples; ++i) {
    s.add(static_cast<double>(sample_poisson(rng, 15.0)));
  }
  EXPECT_NEAR(s.mean(), 15.0, 0.2);
  EXPECT_NEAR(s.variance(), 15.0, 0.8);
}

TEST(DistributionsTest, PoissonZeroMeanIsZero) {
  RngStream rng(3);
  EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

TEST(DistributionsTest, PoissonLargeMeanUsesNormalApprox) {
  RngStream rng(4);
  Summary s;
  for (int i = 0; i < kSamples; ++i) {
    s.add(static_cast<double>(sample_poisson(rng, 200.0)));
  }
  EXPECT_NEAR(s.mean(), 200.0, 1.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(200.0), 0.8);
}

TEST(DistributionsTest, StandardNormalMoments) {
  RngStream rng(5);
  Summary s;
  for (int i = 0; i < kSamples; ++i) s.add(sample_standard_normal(rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(DistributionsTest, LognormalMedian) {
  RngStream rng(6);
  std::vector<double> xs;
  for (int i = 0; i < kSamples; ++i) xs.push_back(sample_lognormal(rng, 1.0, 0.5));
  // Median of lognormal is exp(mu).
  EXPECT_NEAR(quantile(xs, 0.5), std::exp(1.0), 0.1);
}

TEST(DistributionsTest, BoundedParetoStaysInBounds) {
  RngStream rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double x = sample_bounded_pareto(rng, 1.1, 1.0, 300.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 300.0);
  }
}

TEST(DistributionsTest, BoundedParetoIsSmallBiased) {
  RngStream rng(8);
  Summary s;
  for (int i = 0; i < kSamples; ++i) {
    s.add(sample_bounded_pareto(rng, 1.1, 1.0, 300.0));
  }
  // Heavy mass near the lower bound: mean far below the midpoint.
  EXPECT_LT(s.mean(), 80.0);
}

TEST(DistributionsTest, TriangularBoundsAndMean) {
  RngStream rng(9);
  Summary s;
  for (int i = 0; i < kSamples; ++i) {
    const double x = sample_triangular(rng, 0.0, 1.0, 2.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 2.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 1.0, 0.02);  // (lo + mode + hi) / 3
}

TEST(DistributionsTest, DiscreteRespectsWeights) {
  RngStream rng(10);
  std::vector<double> counts(3, 0.0);
  for (int i = 0; i < kSamples; ++i) {
    counts[sample_discrete(rng, {1.0, 2.0, 1.0})] += 1.0;
  }
  EXPECT_NEAR(counts[1] / kSamples, 0.5, 0.02);
  EXPECT_NEAR(counts[0] / kSamples, 0.25, 0.02);
}

TEST(DistributionsTest, DiscreteZeroWeightNeverSampled) {
  RngStream rng(11);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(sample_discrete(rng, {1.0, 0.0, 1.0}), 1u);
  }
}

// ---- Summary -------------------------------------------------------

TEST(SummaryTest, ExactForKnownSample) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryTest, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cov(), 0.0);
}

TEST(SummaryTest, SingleValueHasZeroVariance) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(SummaryTest, MergeEqualsSequential) {
  RngStream rng(12);
  Summary all;
  Summary a;
  Summary b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 17.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryTest, MergeWithEmptyIsIdentity) {
  Summary a;
  a.add(1.0);
  a.add(2.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  Summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(SummaryTest, QuantileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(SummaryTest, StddevOfWindow) {
  EXPECT_DOUBLE_EQ(stddev_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of({5.0}), 0.0);
  EXPECT_NEAR(stddev_of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

// ---- Histogram ------------------------------------------------------

TEST(HistogramTest, BucketsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(2.5);
  h.add(2.6);
  h.add(9.99);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 2u);
  EXPECT_EQ(h.count_at(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, UnderAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, BucketBounds) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 17.5);
}

TEST(HistogramTest, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("1"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

// ---- TimeSeries -----------------------------------------------------

TEST(TimeSeriesTest, ValueAtIsStepFunction) {
  TimeSeries ts;
  ts.add(10.0, 1.0);
  ts.add(20.0, 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(5.0), 0.0);              // before first: fallback
  EXPECT_DOUBLE_EQ(ts.value_at(5.0, -1.0), -1.0);       // custom fallback
  EXPECT_DOUBLE_EQ(ts.value_at(10.0), 1.0);             // inclusive at point
  EXPECT_DOUBLE_EQ(ts.value_at(15.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(20.0), 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1e9), 2.0);
}

TEST(TimeSeriesTest, DecimateHalfKeepsEndpointsAndOrder) {
  TimeSeries ts;
  for (int i = 0; i < 9; ++i) {
    ts.add(static_cast<double>(i), static_cast<double>(i) * 10.0);
  }
  ts.decimate_half();
  // Even indices survive: 0, 2, 4, 6, 8 — first and last always kept.
  ASSERT_EQ(ts.size(), 5U);
  EXPECT_DOUBLE_EQ(ts.at(0).time, 0.0);
  EXPECT_DOUBLE_EQ(ts.at(2).time, 4.0);
  EXPECT_DOUBLE_EQ(ts.back().time, 8.0);
  EXPECT_DOUBLE_EQ(ts.back().value, 80.0);

  TimeSeries even;
  for (int i = 0; i < 8; ++i) even.add(static_cast<double>(i), 1.0);
  even.decimate_half();
  // Even count: indices 0,2,4,6 plus the appended final point 7.
  ASSERT_EQ(even.size(), 5U);
  EXPECT_DOUBLE_EQ(even.back().time, 7.0);

  TimeSeries tiny;
  tiny.add(1.0, 1.0);
  tiny.add(2.0, 2.0);
  tiny.decimate_half();  // below the minimum size: untouched
  EXPECT_EQ(tiny.size(), 2U);
}

TEST(TimeSeriesTest, ResampleGrid) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(10.0, 3.0);
  const auto grid = ts.resample(0.0, 20.0, 5.0);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0].value, 1.0);
  EXPECT_DOUBLE_EQ(grid[1].value, 1.0);
  EXPECT_DOUBLE_EQ(grid[2].value, 3.0);
  EXPECT_DOUBLE_EQ(grid[4].value, 3.0);
}

TEST(TimeSeriesTest, DiffOnGrid) {
  TimeSeries a;
  TimeSeries b;
  a.add(0.0, 5.0);
  b.add(0.0, 2.0);
  b.add(10.0, 7.0);
  const auto diff = a.diff_on_grid(b, 0.0, 10.0, 10.0);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_DOUBLE_EQ(diff[0].value, 3.0);
  EXPECT_DOUBLE_EQ(diff[1].value, -2.0);
}

TEST(TimeSeriesTest, TimeAverageOfStep) {
  TimeSeries ts;
  ts.add(0.0, 0.0);
  ts.add(5.0, 10.0);
  // 0 for [0,5), 10 for [5,10] -> average 5.
  EXPECT_DOUBLE_EQ(ts.time_average(0.0, 10.0), 5.0);
}

TEST(TimeSeriesTest, TimeAverageConstant) {
  TimeSeries ts;
  ts.add(0.0, 4.0);
  EXPECT_DOUBLE_EQ(ts.time_average(2.0, 8.0), 4.0);
}

TEST(TimeSeriesTest, ResampleSinglePointGrid) {
  TimeSeries ts;
  ts.add(0.0, 3.0);
  const auto grid = ts.resample(5.0, 5.0, 1.0);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_DOUBLE_EQ(grid[0].value, 3.0);
}

TEST(TimeSeriesTest, DiffAgainstEmptySeries) {
  TimeSeries a;
  a.add(0.0, 7.0);
  TimeSeries empty;
  const auto diff = a.diff_on_grid(empty, 0.0, 0.0, 1.0);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_DOUBLE_EQ(diff[0].value, 7.0);  // empty series reads as 0
}

TEST(TimeSeriesTest, EqualTimestampsAllowed) {
  TimeSeries ts;
  ts.add(1.0, 1.0);
  ts.add(1.0, 2.0);  // same instant, later write wins for t >= 1
  EXPECT_DOUBLE_EQ(ts.value_at(1.0), 2.0);
}


TEST(SummaryTest, Ci95HalfwidthMatchesStudentT) {
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  // n = 5 -> df = 4 -> t = 2.776; stderr = stddev/sqrt(5).
  const double se = s.stddev() / std::sqrt(5.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), se);
  EXPECT_NEAR(s.ci95_halfwidth(), 2.776 * se, 1e-3 * se);
}

TEST(SummaryTest, Ci95IsZeroForTinySamples) {
  Summary s;
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(SummaryTest, Ci95UsesNormalQuantileForLargeSamples) {
  Summary s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i % 7));
  EXPECT_NEAR(s.ci95_halfwidth(), 1.96 * s.stderr_mean(),
              1e-12 * s.stderr_mean());
}

TEST(GroupedSummaryTest, FoldsByKeyInFirstSeenOrder) {
  GroupedSummary g;
  g.add("b", 1.0);
  g.add("a", 10.0);
  g.add("b", 3.0);
  ASSERT_EQ(g.group_count(), 2u);
  EXPECT_EQ(g.keys()[0], "b");
  EXPECT_EQ(g.keys()[1], "a");
  EXPECT_TRUE(g.contains("a"));
  EXPECT_FALSE(g.contains("c"));
  EXPECT_DOUBLE_EQ(g.at("b").mean(), 2.0);
  EXPECT_EQ(g.at("missing").count(), 0u);
}

TEST(GroupedSummaryTest, MergeFoldsWholeSummaries) {
  Summary s;
  s.add(2.0);
  s.add(4.0);
  GroupedSummary g;
  g.add("k", 0.0);
  g.merge("k", s);
  EXPECT_EQ(g.at("k").count(), 3u);
  EXPECT_DOUBLE_EQ(g.at("k").mean(), 2.0);
}

TEST(SummaryMatrixTest, RowMajorCellsAndLabels) {
  SummaryMatrix m({"r0", "r1"}, {"c0", "c1", "c2"});
  m.add(1, 2, 5.0);
  m.add(1, 2, 7.0);
  EXPECT_EQ(m.cell(0, 0).count(), 0u);
  EXPECT_DOUBLE_EQ(m.cell(1, 2).mean(), 6.0);
  EXPECT_EQ(m.row_labels().size(), 2u);
  EXPECT_EQ(m.col_labels().size(), 3u);
  EXPECT_THROW(static_cast<void>(m.cell(2, 0)), std::out_of_range);
  EXPECT_THROW(m.add(0, 3, 1.0), std::out_of_range);
}

}  // namespace
