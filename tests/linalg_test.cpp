#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/least_squares.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "simcore/rng.hpp"

namespace {

using namespace cbs::linalg;

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, IdentityMultiplication) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::identity(2);
  const Matrix ai = a * i;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(ai(r, c), a(r, c));
}

TEST(MatrixTest, MatrixProductKnown) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Vector v = {1.0, 0.0, -1.0};
  const Vector out = a * v;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(MatrixTest, Transpose) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, GramEqualsTransposeTimesSelf) {
  cbs::sim::RngStream rng(3);
  Matrix a(7, 4);
  for (std::size_t r = 0; r < 7; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
  const Matrix g = a.gram();
  const Matrix expected = a.transposed() * a;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_NEAR(g(r, c), expected(r, c), 1e-12);
}

TEST(MatrixTest, TransposeTimesVector) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Vector y = {1.0, 1.0, 1.0};
  const Vector out = a.transpose_times(y);
  EXPECT_DOUBLE_EQ(out[0], 9.0);
  EXPECT_DOUBLE_EQ(out[1], 12.0);
}

TEST(MatrixTest, VectorHelpers) {
  const Vector a = {3.0, 4.0};
  const Vector b = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  const Vector d = subtract(a, b);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
}

// ---- Cholesky -------------------------------------------------------

TEST(CholeskyTest, FactorsKnownSpdMatrix) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_DOUBLE_EQ((*l)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((*l)(1, 0), 1.0);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(CholeskyTest, SolveRoundTrip) {
  cbs::sim::RngStream rng(4);
  Matrix b(5, 5);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) b(r, c) = rng.uniform(-1.0, 1.0);
  Matrix a = b.gram();  // SPD (with probability 1)
  for (std::size_t i = 0; i < 5; ++i) a(i, i) += 0.5;

  const Vector x_true = {1.0, -2.0, 3.0, -4.0, 5.0};
  const Vector rhs = a * x_true;
  const auto x = solve_spd(a, rhs);
  ASSERT_TRUE(x.has_value());
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-9);
}

// ---- QR --------------------------------------------------------------

TEST(QrTest, SolvesExactSquareSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b = {5.0, 10.0};
  const auto x = qr_least_squares(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(QrTest, LeastSquaresOfOverdeterminedSystem) {
  // Fit y = 2x + 1 through noiseless points: exact recovery.
  Matrix a(4, 2);
  Vector b(4);
  for (int i = 0; i < 4; ++i) {
    a(static_cast<std::size_t>(i), 0) = 1.0;
    a(static_cast<std::size_t>(i), 1) = i;
    b[static_cast<std::size_t>(i)] = 2.0 * i + 1.0;
  }
  const auto x = qr_least_squares(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], 2.0, 1e-10);
}

TEST(QrTest, DetectsRankDeficiency) {
  Matrix a(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // column 2 = 2 * column 1
  }
  EXPECT_FALSE(qr_least_squares(a, {1.0, 2.0, 3.0}).has_value());
}

TEST(QrTest, MatchesNormalEquationsOnRandomProblem) {
  cbs::sim::RngStream rng(5);
  Matrix a(20, 4);
  Vector b(20);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-3.0, 3.0);
    b[r] = rng.uniform(-3.0, 3.0);
  }
  const auto qr = qr_least_squares(a, b);
  const auto ne = solve_spd(a.gram(), a.transpose_times(b));
  ASSERT_TRUE(qr.has_value());
  ASSERT_TRUE(ne.has_value());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR((*qr)[i], (*ne)[i], 1e-8);
}

// ---- Ridge least squares ---------------------------------------------

TEST(RidgeTest, ZeroLambdaRecoversExactFit) {
  Matrix a(6, 2);
  Vector b(6);
  for (int i = 0; i < 6; ++i) {
    a(static_cast<std::size_t>(i), 0) = 1.0;
    a(static_cast<std::size_t>(i), 1) = i;
    b[static_cast<std::size_t>(i)] = 3.0 * i - 2.0;
  }
  const FitResult fit = ridge_least_squares(a, b, 0.0);
  EXPECT_NEAR(fit.coefficients[0], -2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-9);
}

TEST(RidgeTest, LargeLambdaShrinksCoefficients) {
  Matrix a(6, 2);
  Vector b(6);
  for (int i = 0; i < 6; ++i) {
    a(static_cast<std::size_t>(i), 0) = 1.0;
    a(static_cast<std::size_t>(i), 1) = i;
    b[static_cast<std::size_t>(i)] = 3.0 * i - 2.0;
  }
  const FitResult small = ridge_least_squares(a, b, 1e-6);
  const FitResult big = ridge_least_squares(a, b, 1e6);
  EXPECT_LT(std::abs(big.coefficients[1]), std::abs(small.coefficients[1]));
  EXPECT_LT(big.r_squared, small.r_squared);
}

TEST(RidgeTest, RidgeHandlesCollinearColumns) {
  // Exactly collinear columns: plain normal equations are singular, but the
  // ridge term keeps the solve well-posed.
  Matrix a(5, 2);
  Vector b(5);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 2.0 * static_cast<double>(i);
    b[i] = 5.0 * static_cast<double>(i);
  }
  const FitResult fit = ridge_least_squares(a, b, 1e-3);
  // Prediction is what matters: a*coef should reproduce b closely.
  const Vector pred = a * fit.coefficients;
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(pred[i], b[i], 0.05);
}

TEST(RidgeTest, ReportsMape) {
  Matrix a{{1.0}, {1.0}};
  const Vector b = {2.0, 4.0};
  const FitResult fit = ridge_least_squares(a, b, 0.0);
  // Best constant is 3; APEs are 0.5 and 0.25.
  EXPECT_NEAR(fit.mape, 0.375, 1e-9);
}

}  // namespace
