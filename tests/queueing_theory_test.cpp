// Validation of the simulation substrates against closed-form queueing
// theory: if the cluster is a faithful M/M/c queue and the fluid link a
// faithful M/M/1-PS queue, their simulated waiting/sojourn times must match
// Erlang C and the PS sojourn formula. These tests catch subtle scheduling
// or capacity-accounting bugs that unit tests cannot.
#include <gtest/gtest.h>

#include <cmath>

#include "compute/cluster.hpp"
#include "net/link.hpp"
#include "simcore/simulation.hpp"
#include "stats/distributions.hpp"
#include "stats/summary.hpp"

namespace {

using cbs::sim::RngStream;
using cbs::sim::Simulation;

/// Erlang C: probability an arrival waits in an M/M/c queue.
double erlang_c(int c, double offered_load /* lambda/mu */) {
  double sum = 0.0;
  double term = 1.0;
  for (int k = 0; k < c; ++k) {
    if (k > 0) term *= offered_load / k;
    sum += term;
  }
  const double a_c = term * offered_load / c;  // a^c / c!
  const double rho = offered_load / c;
  const double p_wait = (a_c / (1.0 - rho)) / (sum + a_c / (1.0 - rho));
  return p_wait;
}

TEST(QueueingTheoryTest, ClusterMatchesErlangC) {
  // M/M/4 with rho = 0.7: mean wait = C(c, a) / (c*mu - lambda).
  const int c = 4;
  const double mu = 1.0 / 20.0;  // mean service 20 s
  const double lambda = 0.7 * c * mu;

  Simulation sim;
  cbs::compute::Cluster cluster(sim, "mmc", static_cast<std::size_t>(c));
  RngStream rng(42);
  cbs::stats::Summary waits;

  const int n_jobs = 60000;
  double t = 0.0;
  for (int i = 0; i < n_jobs; ++i) {
    t += cbs::stats::sample_exponential(rng, lambda);
    const double service = cbs::stats::sample_exponential(rng, mu);
    sim.schedule_at(t, [&cluster, &waits, service] {
      cluster.submit(service, 0, [&waits](const cbs::compute::TaskRecord& rec) {
        waits.add(rec.started - rec.enqueued);
      });
    });
  }
  sim.run();

  const double offered = lambda / mu;
  const double expected_wait = erlang_c(c, offered) / (c * mu - lambda);
  ASSERT_EQ(waits.count(), static_cast<std::size_t>(n_jobs));
  EXPECT_NEAR(waits.mean(), expected_wait, 0.08 * expected_wait)
      << "Erlang-C mean wait " << expected_wait << " vs simulated "
      << waits.mean();
}

TEST(QueueingTheoryTest, ClusterUtilizationMatchesRho) {
  const int c = 4;
  const double mu = 1.0 / 20.0;
  const double lambda = 0.6 * c * mu;
  Simulation sim;
  cbs::compute::Cluster cluster(sim, "mmc", static_cast<std::size_t>(c));
  RngStream rng(7);
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += cbs::stats::sample_exponential(rng, lambda);
    const double service = cbs::stats::sample_exponential(rng, mu);
    sim.schedule_at(t, [&cluster, service] { cluster.submit(service, 0, nullptr); });
  }
  sim.run();
  const double util =
      cluster.total_busy_time() / (static_cast<double>(c) * sim.now());
  EXPECT_NEAR(util, 0.6, 0.03);
}

TEST(QueueingTheoryTest, LinkIsProcessorSharing) {
  // M/M/1-PS at rho = 0.6: mean sojourn = (1/mu) / (1 - rho), identical to
  // M/M/1-FCFS — but realized through simultaneous sharing, which is what
  // the fluid link implements when every transfer can saturate the pipe.
  const double capacity = 1.0e6;             // bytes/s
  const double mean_bytes = 4.0e6;           // => mean service 4 s
  const double mu = capacity / mean_bytes;   // service rate 0.25 /s
  const double rho = 0.6;
  const double lambda = rho * mu;

  Simulation sim;
  cbs::net::LinkConfig cfg;
  cfg.base_rate = capacity;
  cfg.per_connection_cap = capacity;  // each transfer can use the full pipe
  cfg.noise_sigma = 0.0;
  cfg.setup_latency = 0.0;
  cbs::net::Link link(sim, cfg, RngStream(1));

  RngStream rng(99);
  cbs::stats::Summary sojourns;
  double t = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    t += cbs::stats::sample_exponential(rng, lambda);
    const double bytes = capacity * cbs::stats::sample_exponential(rng, mu);
    sim.schedule_at(t, [&link, &sojourns, bytes] {
      link.submit(bytes, 1, [&sojourns](const cbs::net::TransferRecord& rec) {
        sojourns.add(rec.completed - rec.requested);
      });
    });
  }
  sim.run();

  const double expected = (1.0 / mu) / (1.0 - rho);
  ASSERT_EQ(sojourns.count(), static_cast<std::size_t>(n));
  EXPECT_NEAR(sojourns.mean(), expected, 0.08 * expected)
      << "M/M/1-PS sojourn " << expected << " vs simulated " << sojourns.mean();
}

TEST(QueueingTheoryTest, LinkPsIsInsensitiveToServiceDistribution) {
  // The PS queue's mean sojourn depends on the service law only through its
  // mean (insensitivity property). Run deterministic sizes at the same load
  // and expect the same mean sojourn as the exponential case.
  const double capacity = 1.0e6;
  const double mean_bytes = 4.0e6;
  const double mu = capacity / mean_bytes;
  const double rho = 0.6;
  const double lambda = rho * mu;

  Simulation sim;
  cbs::net::LinkConfig cfg;
  cfg.base_rate = capacity;
  cfg.per_connection_cap = capacity;
  cfg.noise_sigma = 0.0;
  cfg.setup_latency = 0.0;
  cbs::net::Link link(sim, cfg, RngStream(2));

  RngStream rng(5);
  cbs::stats::Summary sojourns;
  double t = 0.0;
  for (int i = 0; i < 30000; ++i) {
    t += cbs::stats::sample_exponential(rng, lambda);
    sim.schedule_at(t, [&link, &sojourns] {
      link.submit(4.0e6, 1, [&sojourns](const cbs::net::TransferRecord& rec) {
        sojourns.add(rec.completed - rec.requested);
      });
    });
  }
  sim.run();
  const double expected = (1.0 / mu) / (1.0 - rho);
  EXPECT_NEAR(sojourns.mean(), expected, 0.10 * expected);
}

}  // namespace
