#include <gtest/gtest.h>

#include <vector>

#include "compute/cluster.hpp"
#include "compute/job_store.hpp"
#include "compute/mapreduce.hpp"
#include "simcore/simulation.hpp"

namespace {

using namespace cbs::compute;
using cbs::sim::Simulation;

// ---- Cluster -------------------------------------------------------------

TEST(ClusterTest, SingleMachineRunsFcfs) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  std::vector<std::pair<TaskId, double>> done;
  for (int i = 0; i < 3; ++i) {
    cluster.submit(10.0, 0, [&](const TaskRecord& rec) {
      done.emplace_back(rec.task_id, rec.completed);
    });
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0].second, 10.0);
  EXPECT_DOUBLE_EQ(done[1].second, 20.0);
  EXPECT_DOUBLE_EQ(done[2].second, 30.0);
  EXPECT_LT(done[0].first, done[1].first);  // FCFS order preserved
}

TEST(ClusterTest, ParallelMachines) {
  Simulation sim;
  Cluster cluster(sim, "c", 4);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    cluster.submit(10.0, 0, [&](const TaskRecord&) { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // all four ran concurrently
}

TEST(ClusterTest, SpeedScalesServiceTime) {
  Simulation sim;
  Cluster cluster(sim, "c", 1, 2.0);
  double completed = -1.0;
  cluster.submit(10.0, 0, [&](const TaskRecord& rec) { completed = rec.completed; });
  sim.run();
  EXPECT_DOUBLE_EQ(completed, 5.0);
}

TEST(ClusterTest, RecordsContainTimestamps) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  cluster.submit(5.0, 7, nullptr);
  cluster.submit(5.0, 8, nullptr);
  sim.run();
  const auto& recs = cluster.completed();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_DOUBLE_EQ(recs[1].enqueued, 0.0);
  EXPECT_DOUBLE_EQ(recs[1].started, 5.0);
  EXPECT_DOUBLE_EQ(recs[1].completed, 10.0);
  EXPECT_EQ(recs[1].group_id, 8u);
  EXPECT_EQ(recs[0].machine, 0u);
}

TEST(ClusterTest, BusyTimeAndUtilization) {
  Simulation sim;
  Cluster cluster(sim, "c", 2);
  cluster.submit(10.0, 0, nullptr);
  cluster.submit(6.0, 0, nullptr);
  sim.run();
  EXPECT_DOUBLE_EQ(cluster.machine_busy_time(0), 10.0);
  EXPECT_DOUBLE_EQ(cluster.machine_busy_time(1), 6.0);
  EXPECT_DOUBLE_EQ(cluster.total_busy_time(), 16.0);
  EXPECT_DOUBLE_EQ(cluster.average_utilization(0.0, 10.0), 0.8);
}

TEST(ClusterTest, QueuedStandardSecondsTracksBacklog) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  cluster.submit(5.0, 0, nullptr);  // starts immediately
  cluster.submit(7.0, 0, nullptr);  // queued
  cluster.submit(3.0, 0, nullptr);  // queued
  EXPECT_DOUBLE_EQ(cluster.queued_standard_seconds(), 10.0);
  EXPECT_EQ(cluster.queued_tasks(), 2u);
  EXPECT_EQ(cluster.running_tasks(), 1u);
  sim.run();
  EXPECT_DOUBLE_EQ(cluster.queued_standard_seconds(), 0.0);
  EXPECT_TRUE(cluster.idle());
}

TEST(ClusterTest, IdleHookFiresWhenDrained) {
  Simulation sim;
  Cluster cluster(sim, "c", 2);
  int idle_calls = 0;
  cluster.set_idle_hook([&](std::size_t) { ++idle_calls; });
  cluster.submit(5.0, 0, nullptr);
  cluster.submit(5.0, 0, nullptr);
  sim.run();
  EXPECT_EQ(idle_calls, 2);  // each machine frees into an empty queue
}

TEST(ClusterTest, TaskDoneHookFiresPerTask) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  int hook_calls = 0;
  cluster.set_task_done_hook([&] { ++hook_calls; });
  for (int i = 0; i < 5; ++i) cluster.submit(1.0, 0, nullptr);
  sim.run();
  EXPECT_EQ(hook_calls, 5);
}

TEST(ClusterTest, CallbackCanSubmitMoreWork) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  double second_done = -1.0;
  cluster.submit(2.0, 0, [&](const TaskRecord&) {
    cluster.submit(3.0, 0, [&](const TaskRecord& rec) {
      second_done = rec.completed;
    });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(second_done, 5.0);
}

TEST(ClusterTest, ZeroServiceTaskCompletesInstantly) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  double completed = -1.0;
  cluster.submit(0.0, 0, [&](const TaskRecord& rec) { completed = rec.completed; });
  sim.run();
  EXPECT_DOUBLE_EQ(completed, 0.0);
}

// ---- MapReduceRuntime ------------------------------------------------------

TEST(MapReduceTest, SingleTaskJob) {
  Simulation sim;
  Cluster cluster(sim, "c", 2);
  MapReduceRuntime mr(sim, cluster);
  MapReduceRecord record;
  mr.run({.job_id = 1, .total_map_seconds = 10.0, .num_map_tasks = 1,
          .merge_seconds = 2.0},
         [&](const MapReduceRecord& rec) { record = rec; });
  sim.run();
  EXPECT_DOUBLE_EQ(record.maps_done, 10.0);
  EXPECT_DOUBLE_EQ(record.completed, 12.0);
}

TEST(MapReduceTest, MapsRunInParallel) {
  Simulation sim;
  Cluster cluster(sim, "c", 4);
  MapReduceRuntime mr(sim, cluster);
  MapReduceRecord record;
  mr.run({.job_id = 1, .total_map_seconds = 40.0, .num_map_tasks = 4,
          .merge_seconds = 0.0},
         [&](const MapReduceRecord& rec) { record = rec; });
  sim.run();
  // 4 tasks of 10s over 4 machines -> 10s wall.
  EXPECT_DOUBLE_EQ(record.completed, 10.0);
}

TEST(MapReduceTest, MergeWaitsForAllMaps) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  MapReduceRuntime mr(sim, cluster);
  MapReduceRecord record;
  mr.run({.job_id = 1, .total_map_seconds = 9.0, .num_map_tasks = 3,
          .merge_seconds = 1.0},
         [&](const MapReduceRecord& rec) { record = rec; });
  sim.run();
  EXPECT_DOUBLE_EQ(record.maps_done, 9.0);  // serial on one machine
  EXPECT_DOUBLE_EQ(record.completed, 10.0);
}

TEST(MapReduceTest, ConcurrentJobsInterleave) {
  Simulation sim;
  Cluster cluster(sim, "c", 2);
  MapReduceRuntime mr(sim, cluster);
  std::vector<std::uint64_t> order;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    mr.run({.job_id = id, .total_map_seconds = 4.0, .num_map_tasks = 2,
            .merge_seconds = 0.0},
           [&order](const MapReduceRecord& rec) { order.push_back(rec.job_id); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  // FCFS at task level preserves job completion order.
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(mr.jobs_in_flight(), 0u);
  EXPECT_EQ(mr.completed().size(), 3u);
}

// ---- JobStore --------------------------------------------------------------

TEST(JobStoreTest, PutGetErase) {
  Simulation sim;
  JobStore store(sim);
  store.put("a", 100.0);
  EXPECT_TRUE(store.contains("a"));
  EXPECT_DOUBLE_EQ(store.size_of("a"), 100.0);
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 100.0);
  EXPECT_DOUBLE_EQ(store.erase("a"), 100.0);
  EXPECT_FALSE(store.contains("a"));
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 0.0);
}

TEST(JobStoreTest, OverwriteReplacesSize) {
  Simulation sim;
  JobStore store(sim);
  store.put("a", 100.0);
  store.put("a", 40.0);
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 40.0);
  EXPECT_EQ(store.object_count(), 1u);
}

TEST(JobStoreTest, PeakOccupancy) {
  Simulation sim;
  JobStore store(sim);
  store.put("a", 100.0);
  store.put("b", 50.0);
  store.erase("a");
  store.put("c", 20.0);
  EXPECT_DOUBLE_EQ(store.peak_occupancy_bytes(), 150.0);
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 70.0);
}

TEST(JobStoreTest, EraseMissingIsNoOp) {
  Simulation sim;
  JobStore store(sim);
  EXPECT_DOUBLE_EQ(store.erase("nothing"), 0.0);
  EXPECT_DOUBLE_EQ(store.size_of("nothing"), 0.0);
}

// ---- Cluster crash/recover (fault injection) -----------------------------

TEST(ClusterCrashTest, CrashRequeuesAndReexecutesRunningTask) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  std::vector<double> done;
  cluster.submit(10.0, 0,
                 [&](const TaskRecord& rec) { done.push_back(rec.completed); });
  sim.schedule_at(4.0, [&] { cluster.crash_machine(0); });
  sim.schedule_at(6.0, [&] { cluster.recover_machine(0); });
  sim.run();
  // 4 s of work destroyed; full re-execution starts at recovery: 6 + 10.
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 16.0);
  EXPECT_EQ(cluster.crashes(), 1u);
  EXPECT_EQ(cluster.reexecutions(), 1u);
  EXPECT_DOUBLE_EQ(cluster.wasted_standard_seconds(), 4.0);
  EXPECT_EQ(cluster.completed().size(), 1u);  // completes exactly once
}

TEST(ClusterCrashTest, ReclaimedTaskKeepsFcfsPosition) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  std::vector<TaskId> order;
  const TaskId first = cluster.submit(
      10.0, 0, [&](const TaskRecord& rec) { order.push_back(rec.task_id); });
  const TaskId second = cluster.submit(
      10.0, 0, [&](const TaskRecord& rec) { order.push_back(rec.task_id); });
  sim.schedule_at(5.0, [&] { cluster.crash_machine(0); });
  sim.schedule_at(7.0, [&] { cluster.recover_machine(0); });
  sim.run();
  // The crashed head task goes back to the *front* of the queue, so it
  // still finishes before the task behind it.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], first);
  EXPECT_EQ(order[1], second);
}

TEST(ClusterCrashTest, DownMachineIsNotDispatchedUntilRecovery) {
  Simulation sim;
  Cluster cluster(sim, "c", 2);
  sim.schedule_at(0.0, [&] { cluster.crash_machine(0); });
  std::vector<std::size_t> machines;
  sim.schedule_at(1.0, [&] {
    cluster.submit(5.0, 0, [&](const TaskRecord& rec) {
      machines.push_back(rec.machine);
    });
    cluster.submit(5.0, 0, [&](const TaskRecord& rec) {
      machines.push_back(rec.machine);
    });
  });
  sim.schedule_at(2.0, [&] { cluster.recover_machine(0); });
  sim.run();
  ASSERT_EQ(machines.size(), 2u);
  EXPECT_EQ(cluster.down_machines(), 0u);
  // First task had only machine 1 available; the second started on the
  // recovered machine 0 at t = 2 rather than queueing behind machine 1.
  EXPECT_EQ(machines[0], 1u);
  EXPECT_EQ(machines[1], 0u);
}

TEST(ClusterCrashTest, CrashOnIdleMachineJustTakesItDown) {
  Simulation sim;
  Cluster cluster(sim, "c", 2);
  EXPECT_TRUE(cluster.crash_machine(1));
  EXPECT_EQ(cluster.down_machines(), 1u);
  EXPECT_EQ(cluster.reexecutions(), 0u);
  EXPECT_FALSE(cluster.crash_machine(1));  // already down
  EXPECT_TRUE(cluster.recover_machine(1));
  EXPECT_FALSE(cluster.recover_machine(1));  // already up
  EXPECT_EQ(cluster.down_machines(), 0u);
}

// ---- JobStore retry/backoff (S3 best-effort semantics) -------------------

TEST(JobStoreRetryTest, HealthyPutCompletesSynchronously) {
  Simulation sim;
  JobStore store(sim);
  bool ok = false;
  store.put_async("a", 100.0, [&](bool result) { ok = result; });
  // No event needed: the handler already ran.
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 100.0);
  EXPECT_EQ(store.failed_attempts(), 0u);
}

TEST(JobStoreRetryTest, PutRetriesThroughOutage) {
  Simulation sim;
  JobStore::Config cfg;
  cfg.retry_backoff = 2.0;
  cfg.backoff_multiplier = 2.0;
  JobStore store(sim, cfg);
  store.set_available(false);
  double ok_at = -1.0;
  store.put_async("a", 50.0, [&](bool result) {
    if (result) ok_at = sim.now();
  });
  // Attempts at 0, 2, 6 (backoff 2 then 4); the store comes back at 5, so
  // the third attempt lands the object.
  sim.schedule_at(5.0, [&] { store.set_available(true); });
  sim.run();
  EXPECT_DOUBLE_EQ(ok_at, 6.0);
  EXPECT_EQ(store.failed_attempts(), 2u);
  EXPECT_EQ(store.abandoned_ops(), 0u);
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 50.0);
}

TEST(JobStoreRetryTest, ZeroCapacityPutIsAbandoned) {
  Simulation sim;
  JobStore::Config cfg;
  cfg.capacity_bytes = 0.0;
  cfg.max_attempts = 3;
  JobStore store(sim, cfg);
  bool called = false;
  bool ok = true;
  store.put_async("a", 1.0, [&](bool result) {
    called = true;
    ok = result;
  });
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_EQ(store.failed_attempts(), 3u);
  EXPECT_EQ(store.abandoned_ops(), 1u);
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 0.0);
}

TEST(JobStoreRetryTest, OverwriteWithinCapacitySucceeds) {
  Simulation sim;
  JobStore::Config cfg;
  cfg.capacity_bytes = 100.0;
  JobStore store(sim, cfg);
  store.put("a", 80.0);
  bool ok = false;
  // 80 -> 90 needs only 10 fresh bytes; the overwrite frees the old object.
  store.put_async("a", 90.0, [&](bool result) { ok = result; });
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 90.0);
}

TEST(JobStoreRetryTest, BackoffIsCapped) {
  Simulation sim;
  JobStore::Config cfg;
  cfg.retry_backoff = 2.0;
  cfg.backoff_multiplier = 10.0;
  cfg.max_backoff = 5.0;
  cfg.max_attempts = 4;
  JobStore store(sim, cfg);
  store.set_available(false);
  double failed_at = -1.0;
  store.put_async("a", 1.0, [&](bool result) {
    if (!result) failed_at = sim.now();
  });
  sim.run();
  // Attempts at 0, 2, 7 (20 capped to 5), 12: gives up on the fourth.
  EXPECT_DOUBLE_EQ(failed_at, 12.0);
  EXPECT_EQ(store.abandoned_ops(), 1u);
}

TEST(JobStoreRetryTest, GetMissingKeyFailsFastWhenAvailable) {
  Simulation sim;
  JobStore store(sim);
  bool called = false;
  bool ok = true;
  store.get_async("missing", [&](bool result, double) {
    called = true;
    ok = result;
  });
  // Absence on a healthy store is a definite answer: no retries scheduled.
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_EQ(store.failed_attempts(), 0u);
}

TEST(JobStoreRetryTest, GetRetriesThroughOutage) {
  Simulation sim;
  JobStore store(sim);
  store.put("a", 30.0);
  store.set_available(false);
  double bytes_seen = 0.0;
  store.get_async("a", [&](bool result, double bytes) {
    if (result) bytes_seen = bytes;
  });
  sim.schedule_at(3.0, [&] { store.set_available(true); });
  sim.run();
  EXPECT_DOUBLE_EQ(bytes_seen, 30.0);
  EXPECT_GT(store.failed_attempts(), 0u);
}

TEST(JobStoreTest, HistoryRecordsTransitions) {
  Simulation sim;
  JobStore store(sim);
  sim.schedule_at(5.0, [&] { store.put("a", 10.0); });
  sim.schedule_at(9.0, [&] { store.erase("a"); });
  sim.run();
  const auto& h = store.occupancy_history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_DOUBLE_EQ(h.at(0).time, 5.0);
  EXPECT_DOUBLE_EQ(h.at(0).value, 10.0);
  EXPECT_DOUBLE_EQ(h.at(1).value, 0.0);
}

}  // namespace
