#include <gtest/gtest.h>

#include <vector>

#include "compute/cluster.hpp"
#include "compute/job_store.hpp"
#include "compute/mapreduce.hpp"
#include "simcore/simulation.hpp"

namespace {

using namespace cbs::compute;
using cbs::sim::Simulation;

// ---- Cluster -------------------------------------------------------------

TEST(ClusterTest, SingleMachineRunsFcfs) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  std::vector<std::pair<TaskId, double>> done;
  for (int i = 0; i < 3; ++i) {
    cluster.submit(10.0, 0, [&](const TaskRecord& rec) {
      done.emplace_back(rec.task_id, rec.completed);
    });
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0].second, 10.0);
  EXPECT_DOUBLE_EQ(done[1].second, 20.0);
  EXPECT_DOUBLE_EQ(done[2].second, 30.0);
  EXPECT_LT(done[0].first, done[1].first);  // FCFS order preserved
}

TEST(ClusterTest, ParallelMachines) {
  Simulation sim;
  Cluster cluster(sim, "c", 4);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    cluster.submit(10.0, 0, [&](const TaskRecord&) { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // all four ran concurrently
}

TEST(ClusterTest, SpeedScalesServiceTime) {
  Simulation sim;
  Cluster cluster(sim, "c", 1, 2.0);
  double completed = -1.0;
  cluster.submit(10.0, 0, [&](const TaskRecord& rec) { completed = rec.completed; });
  sim.run();
  EXPECT_DOUBLE_EQ(completed, 5.0);
}

TEST(ClusterTest, RecordsContainTimestamps) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  cluster.submit(5.0, 7, nullptr);
  cluster.submit(5.0, 8, nullptr);
  sim.run();
  const auto& recs = cluster.completed();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_DOUBLE_EQ(recs[1].enqueued, 0.0);
  EXPECT_DOUBLE_EQ(recs[1].started, 5.0);
  EXPECT_DOUBLE_EQ(recs[1].completed, 10.0);
  EXPECT_EQ(recs[1].group_id, 8u);
  EXPECT_EQ(recs[0].machine, 0u);
}

TEST(ClusterTest, BusyTimeAndUtilization) {
  Simulation sim;
  Cluster cluster(sim, "c", 2);
  cluster.submit(10.0, 0, nullptr);
  cluster.submit(6.0, 0, nullptr);
  sim.run();
  EXPECT_DOUBLE_EQ(cluster.machine_busy_time(0), 10.0);
  EXPECT_DOUBLE_EQ(cluster.machine_busy_time(1), 6.0);
  EXPECT_DOUBLE_EQ(cluster.total_busy_time(), 16.0);
  EXPECT_DOUBLE_EQ(cluster.average_utilization(0.0, 10.0), 0.8);
}

TEST(ClusterTest, QueuedStandardSecondsTracksBacklog) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  cluster.submit(5.0, 0, nullptr);  // starts immediately
  cluster.submit(7.0, 0, nullptr);  // queued
  cluster.submit(3.0, 0, nullptr);  // queued
  EXPECT_DOUBLE_EQ(cluster.queued_standard_seconds(), 10.0);
  EXPECT_EQ(cluster.queued_tasks(), 2u);
  EXPECT_EQ(cluster.running_tasks(), 1u);
  sim.run();
  EXPECT_DOUBLE_EQ(cluster.queued_standard_seconds(), 0.0);
  EXPECT_TRUE(cluster.idle());
}

TEST(ClusterTest, IdleHookFiresWhenDrained) {
  Simulation sim;
  Cluster cluster(sim, "c", 2);
  int idle_calls = 0;
  cluster.set_idle_hook([&](std::size_t) { ++idle_calls; });
  cluster.submit(5.0, 0, nullptr);
  cluster.submit(5.0, 0, nullptr);
  sim.run();
  EXPECT_EQ(idle_calls, 2);  // each machine frees into an empty queue
}

TEST(ClusterTest, TaskDoneHookFiresPerTask) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  int hook_calls = 0;
  cluster.set_task_done_hook([&] { ++hook_calls; });
  for (int i = 0; i < 5; ++i) cluster.submit(1.0, 0, nullptr);
  sim.run();
  EXPECT_EQ(hook_calls, 5);
}

TEST(ClusterTest, CallbackCanSubmitMoreWork) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  double second_done = -1.0;
  cluster.submit(2.0, 0, [&](const TaskRecord&) {
    cluster.submit(3.0, 0, [&](const TaskRecord& rec) {
      second_done = rec.completed;
    });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(second_done, 5.0);
}

TEST(ClusterTest, ZeroServiceTaskCompletesInstantly) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  double completed = -1.0;
  cluster.submit(0.0, 0, [&](const TaskRecord& rec) { completed = rec.completed; });
  sim.run();
  EXPECT_DOUBLE_EQ(completed, 0.0);
}

// ---- MapReduceRuntime ------------------------------------------------------

TEST(MapReduceTest, SingleTaskJob) {
  Simulation sim;
  Cluster cluster(sim, "c", 2);
  MapReduceRuntime mr(sim, cluster);
  MapReduceRecord record;
  mr.run({.job_id = 1, .total_map_seconds = 10.0, .num_map_tasks = 1,
          .merge_seconds = 2.0},
         [&](const MapReduceRecord& rec) { record = rec; });
  sim.run();
  EXPECT_DOUBLE_EQ(record.maps_done, 10.0);
  EXPECT_DOUBLE_EQ(record.completed, 12.0);
}

TEST(MapReduceTest, MapsRunInParallel) {
  Simulation sim;
  Cluster cluster(sim, "c", 4);
  MapReduceRuntime mr(sim, cluster);
  MapReduceRecord record;
  mr.run({.job_id = 1, .total_map_seconds = 40.0, .num_map_tasks = 4,
          .merge_seconds = 0.0},
         [&](const MapReduceRecord& rec) { record = rec; });
  sim.run();
  // 4 tasks of 10s over 4 machines -> 10s wall.
  EXPECT_DOUBLE_EQ(record.completed, 10.0);
}

TEST(MapReduceTest, MergeWaitsForAllMaps) {
  Simulation sim;
  Cluster cluster(sim, "c", 1);
  MapReduceRuntime mr(sim, cluster);
  MapReduceRecord record;
  mr.run({.job_id = 1, .total_map_seconds = 9.0, .num_map_tasks = 3,
          .merge_seconds = 1.0},
         [&](const MapReduceRecord& rec) { record = rec; });
  sim.run();
  EXPECT_DOUBLE_EQ(record.maps_done, 9.0);  // serial on one machine
  EXPECT_DOUBLE_EQ(record.completed, 10.0);
}

TEST(MapReduceTest, ConcurrentJobsInterleave) {
  Simulation sim;
  Cluster cluster(sim, "c", 2);
  MapReduceRuntime mr(sim, cluster);
  std::vector<std::uint64_t> order;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    mr.run({.job_id = id, .total_map_seconds = 4.0, .num_map_tasks = 2,
            .merge_seconds = 0.0},
           [&order](const MapReduceRecord& rec) { order.push_back(rec.job_id); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  // FCFS at task level preserves job completion order.
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(mr.jobs_in_flight(), 0u);
  EXPECT_EQ(mr.completed().size(), 3u);
}

// ---- JobStore --------------------------------------------------------------

TEST(JobStoreTest, PutGetErase) {
  Simulation sim;
  JobStore store(sim);
  store.put("a", 100.0);
  EXPECT_TRUE(store.contains("a"));
  EXPECT_DOUBLE_EQ(store.size_of("a"), 100.0);
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 100.0);
  EXPECT_DOUBLE_EQ(store.erase("a"), 100.0);
  EXPECT_FALSE(store.contains("a"));
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 0.0);
}

TEST(JobStoreTest, OverwriteReplacesSize) {
  Simulation sim;
  JobStore store(sim);
  store.put("a", 100.0);
  store.put("a", 40.0);
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 40.0);
  EXPECT_EQ(store.object_count(), 1u);
}

TEST(JobStoreTest, PeakOccupancy) {
  Simulation sim;
  JobStore store(sim);
  store.put("a", 100.0);
  store.put("b", 50.0);
  store.erase("a");
  store.put("c", 20.0);
  EXPECT_DOUBLE_EQ(store.peak_occupancy_bytes(), 150.0);
  EXPECT_DOUBLE_EQ(store.occupancy_bytes(), 70.0);
}

TEST(JobStoreTest, EraseMissingIsNoOp) {
  Simulation sim;
  JobStore store(sim);
  EXPECT_DOUBLE_EQ(store.erase("nothing"), 0.0);
  EXPECT_DOUBLE_EQ(store.size_of("nothing"), 0.0);
}

TEST(JobStoreTest, HistoryRecordsTransitions) {
  Simulation sim;
  JobStore store(sim);
  sim.schedule_at(5.0, [&] { store.put("a", 10.0); });
  sim.schedule_at(9.0, [&] { store.erase("a"); });
  sim.run();
  const auto& h = store.occupancy_history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_DOUBLE_EQ(h.at(0).time, 5.0);
  EXPECT_DOUBLE_EQ(h.at(0).value, 10.0);
  EXPECT_DOUBLE_EQ(h.at(1).value, 0.0);
}

}  // namespace
