#include <gtest/gtest.h>

#include <vector>

#include "sla/job_outcome.hpp"
#include "sla/metrics.hpp"
#include "sla/oo_metric.hpp"
#include "sla/report.hpp"
#include "sla/slack.hpp"

namespace {

using namespace cbs::sla;

JobOutcome outcome(std::uint64_t seq, double completed, double output_mb = 10.0,
                   Placement placement = Placement::kInternal,
                   std::size_t batch = 0, double arrival = 0.0,
                   double service = 1.0) {
  JobOutcome o;
  o.seq_id = seq;
  o.doc_id = seq;
  o.batch_index = batch;
  o.arrival = arrival;
  o.scheduled = arrival;
  o.completed = completed;
  o.input_mb = output_mb;
  o.output_mb = output_mb;
  o.true_service_seconds = service;
  o.placement = placement;
  return o;
}

// ---- slack (Eq. 1-2) -------------------------------------------------------

TEST(SlackTest, EmptyQueueFallsBack) {
  EXPECT_DOUBLE_EQ(slack_time({}, 123.0), 123.0);
}

TEST(SlackTest, MaxOfPrecedingCompletions) {
  EXPECT_DOUBLE_EQ(slack_time({10.0, 40.0, 25.0}, 0.0), 40.0);
}

TEST(SlackTest, RoundTripAddsComponents) {
  EXPECT_DOUBLE_EQ(external_round_trip_finish(100.0, 10.0, 20.0, 5.0), 135.0);
}

TEST(SlackTest, SatisfiesSlackBoundary) {
  EXPECT_TRUE(satisfies_slack(40.0, 40.0));
  EXPECT_FALSE(satisfies_slack(40.001, 40.0));
  EXPECT_FALSE(satisfies_slack(40.0, 40.0, 1.0));  // margin makes it fail
  EXPECT_TRUE(satisfies_slack(35.0, 40.0, 5.0));
}

// ---- OO metric (Eq. 3-6) -----------------------------------------------------

TEST(OoMetricTest, StrictOrderStopsAtFirstGap) {
  // Jobs 1,2,4 complete by t=10; job 3 is missing.
  std::vector<JobOutcome> outcomes = {
      outcome(1, 2.0, 5.0), outcome(2, 4.0, 7.0), outcome(3, 50.0, 11.0),
      outcome(4, 6.0, 13.0)};
  OoMetricCalculator oo(outcomes);
  const OoSample s = oo.sample_at(10.0, 0);
  EXPECT_EQ(s.max_in_order, 2u);
  EXPECT_DOUBLE_EQ(s.ordered_mb, 12.0);  // sizes of jobs 1 and 2
  EXPECT_EQ(s.completed_count, 3u);
}

TEST(OoMetricTest, ToleranceAllowsGaps) {
  std::vector<JobOutcome> outcomes = {
      outcome(1, 2.0, 5.0), outcome(2, 4.0, 7.0), outcome(3, 50.0, 11.0),
      outcome(4, 6.0, 13.0)};
  OoMetricCalculator oo(outcomes);
  // With t_l = 1: job 4 qualifies (one missing job with smaller id).
  const OoSample s = oo.sample_at(10.0, 1);
  EXPECT_EQ(s.max_in_order, 4u);
  // Eq. 6: sum over completed jobs with id <= 4 -> 5 + 7 + 13.
  EXPECT_DOUBLE_EQ(s.ordered_mb, 25.0);
}

TEST(OoMetricTest, NothingCompletedMeansZero) {
  std::vector<JobOutcome> outcomes = {outcome(1, 100.0), outcome(2, 200.0)};
  OoMetricCalculator oo(outcomes);
  const OoSample s = oo.sample_at(50.0, 0);
  EXPECT_EQ(s.max_in_order, 0u);
  EXPECT_DOUBLE_EQ(s.ordered_mb, 0.0);
}

TEST(OoMetricTest, FirstJobMissingBlocksEverythingAtZeroTolerance) {
  std::vector<JobOutcome> outcomes = {outcome(1, 100.0, 5.0),
                                      outcome(2, 1.0, 7.0),
                                      outcome(3, 2.0, 9.0)};
  OoMetricCalculator oo(outcomes);
  EXPECT_EQ(oo.sample_at(50.0, 0).max_in_order, 0u);
  // t_l = 2 admits job 3 (two missing... id 3 - 2 <= |{2,3}| = 2: yes).
  const OoSample s = oo.sample_at(50.0, 2);
  EXPECT_EQ(s.max_in_order, 3u);
  EXPECT_DOUBLE_EQ(s.ordered_mb, 16.0);
}

TEST(OoMetricTest, EventuallyAllOutputIsOrdered) {
  std::vector<JobOutcome> outcomes = {
      outcome(1, 30.0, 5.0), outcome(2, 10.0, 7.0), outcome(3, 20.0, 9.0)};
  OoMetricCalculator oo(outcomes);
  const OoSample s = oo.sample_at(100.0, 0);
  EXPECT_EQ(s.max_in_order, 3u);
  EXPECT_DOUBLE_EQ(s.ordered_mb, 21.0);
}

TEST(OoMetricTest, OrderedMbMonotoneInTolerance) {
  std::vector<JobOutcome> outcomes;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    outcomes.push_back(outcome(i, static_cast<double>((i * 7) % 20), 3.0));
  }
  OoMetricCalculator oo(outcomes);
  for (double t = 0.0; t <= 20.0; t += 2.0) {
    double prev = -1.0;
    for (std::uint64_t tol = 0; tol <= 5; ++tol) {
      const double mb = oo.sample_at(t, tol).ordered_mb;
      EXPECT_GE(mb, prev) << "t=" << t << " tol=" << tol;
      prev = mb;
    }
  }
}

TEST(OoMetricTest, OrderedMbMonotoneInTime) {
  std::vector<JobOutcome> outcomes;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    outcomes.push_back(outcome(i, static_cast<double>((i * 13) % 31), 3.0));
  }
  OoMetricCalculator oo(outcomes);
  double prev = -1.0;
  for (const auto& s : oo.series(1.0, 2)) {
    EXPECT_GE(s.ordered_mb, prev);
    prev = s.ordered_mb;
  }
}

TEST(OoMetricTest, SeriesCoversRunAndEndsFlat) {
  std::vector<JobOutcome> outcomes = {outcome(1, 95.0)};
  OoMetricCalculator oo(outcomes);
  const auto series = oo.series(10.0, 0);
  EXPECT_GE(series.back().time, 95.0);
  EXPECT_DOUBLE_EQ(series.back().ordered_mb, 10.0);
}

// ---- makespan / speedup / utilization / burst (Eq. 7-12) --------------------

TEST(MetricsTest, MakespanSpansArrivalToLastCompletion) {
  std::vector<JobOutcome> outcomes = {
      outcome(1, 50.0, 1.0, Placement::kInternal, 0, 10.0),
      outcome(2, 90.0, 1.0, Placement::kInternal, 0, 20.0)};
  EXPECT_DOUBLE_EQ(makespan(outcomes), 80.0);
}

TEST(MetricsTest, MakespanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(makespan({}), 0.0);
}

TEST(MetricsTest, SpeedupIsSequentialOverMakespan) {
  std::vector<JobOutcome> outcomes = {
      outcome(1, 10.0, 1.0, Placement::kInternal, 0, 0.0, 30.0),
      outcome(2, 20.0, 1.0, Placement::kInternal, 0, 0.0, 50.0)};
  EXPECT_DOUBLE_EQ(sequential_time(outcomes), 80.0);
  EXPECT_DOUBLE_EQ(speedup(outcomes), 4.0);
}

TEST(MetricsTest, UtilizationFormulas) {
  EXPECT_DOUBLE_EQ(machine_utilization(80.0, 100.0), 0.8);
  EXPECT_DOUBLE_EQ(set_utilization(160.0, 2, 100.0), 0.8);
  EXPECT_DOUBLE_EQ(set_utilization(0.0, 4, 100.0), 0.0);
}

TEST(MetricsTest, BurstRatioPerBatchAndOverall) {
  std::vector<JobOutcome> outcomes = {
      outcome(1, 1.0, 1.0, Placement::kInternal, 0),
      outcome(2, 1.0, 1.0, Placement::kExternal, 0),
      outcome(3, 1.0, 1.0, Placement::kExternal, 1),
      outcome(4, 1.0, 1.0, Placement::kExternal, 1),
      outcome(5, 1.0, 1.0, Placement::kInternal, 1),
  };
  const auto per_batch = burst_ratio_per_batch(outcomes);
  EXPECT_DOUBLE_EQ(per_batch.at(0).ratio(), 0.5);
  EXPECT_NEAR(per_batch.at(1).ratio(), 2.0 / 3.0, 1e-12);
  // Eq. 12 reduces to total bursted / total jobs.
  EXPECT_DOUBLE_EQ(burst_ratio(outcomes), 3.0 / 5.0);
}

TEST(MetricsTest, MeanTurnaround) {
  std::vector<JobOutcome> outcomes = {
      outcome(1, 30.0, 1.0, Placement::kInternal, 0, 10.0),
      outcome(2, 50.0, 1.0, Placement::kInternal, 0, 10.0)};
  EXPECT_DOUBLE_EQ(mean_turnaround(outcomes), 30.0);
}

// ---- orderliness ------------------------------------------------------------

TEST(OrderlinessTest, PerfectOrderHasNoInversions) {
  std::vector<JobOutcome> outcomes;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    outcomes.push_back(outcome(i, static_cast<double>(i * 10)));
  }
  const auto stats = compute_orderliness(outcomes, 100.0);
  EXPECT_EQ(stats.inversions, 0u);
  EXPECT_DOUBLE_EQ(stats.max_frontier_push, 10.0);
  EXPECT_EQ(stats.pushes_over_threshold, 0u);
}

TEST(OrderlinessTest, CountsInversionsExactly) {
  // Completion order by seq: 30, 10, 20 -> pairs (1,2), (1,3) inverted.
  std::vector<JobOutcome> outcomes = {outcome(1, 30.0), outcome(2, 10.0),
                                      outcome(3, 20.0)};
  const auto stats = compute_orderliness(outcomes, 1000.0);
  EXPECT_EQ(stats.inversions, 2u);
}

TEST(OrderlinessTest, LateJobIsATallPeak) {
  std::vector<JobOutcome> outcomes = {outcome(1, 10.0), outcome(2, 500.0),
                                      outcome(3, 20.0), outcome(4, 30.0)};
  const auto stats = compute_orderliness(outcomes, 120.0);
  EXPECT_DOUBLE_EQ(stats.max_frontier_push, 490.0);
  EXPECT_EQ(stats.pushes_over_threshold, 1u);
}

// ---- validation & report -------------------------------------------------

TEST(ValidateTest, AcceptsWellFormedOutcomes) {
  std::vector<JobOutcome> outcomes = {outcome(2, 5.0), outcome(1, 3.0)};
  EXPECT_EQ(validate_outcomes(outcomes), "");
}

TEST(ValidateTest, DetectsMissingAndDuplicateIds) {
  std::vector<JobOutcome> outcomes = {outcome(1, 5.0), outcome(1, 3.0)};
  const std::string err = validate_outcomes(outcomes);
  EXPECT_NE(err.find("duplicate"), std::string::npos);
  EXPECT_NE(err.find("missing"), std::string::npos);
}

TEST(ValidateTest, DetectsTimeTravel) {
  JobOutcome o = outcome(1, 5.0);
  o.arrival = 10.0;  // completed before arrival
  const std::string err = validate_outcomes({o});
  EXPECT_NE(err.find("before arrival"), std::string::npos);
}

TEST(ValidateTest, DetectsOutOfRangeSeq) {
  const std::string err = validate_outcomes({outcome(7, 5.0)});
  EXPECT_NE(err.find("outside"), std::string::npos);
}

TEST(ReportTest, BuildComputesHeadlineNumbers) {
  std::vector<JobOutcome> outcomes = {
      outcome(1, 50.0, 20.0, Placement::kInternal, 0, 0.0, 40.0),
      outcome(2, 100.0, 30.0, Placement::kExternal, 0, 0.0, 60.0)};
  const SlaReport r = build_report("op", "uniform", outcomes,
                                   /*ic busy*/ 160.0, /*ic machines*/ 2,
                                   /*ec busy*/ 50.0, /*ec machines*/ 1,
                                   /*oo interval*/ 10.0, /*tolerance*/ 0);
  EXPECT_EQ(r.job_count, 2u);
  EXPECT_DOUBLE_EQ(r.makespan_seconds, 100.0);
  EXPECT_DOUBLE_EQ(r.speedup, 1.0);
  EXPECT_DOUBLE_EQ(r.ic_utilization, 0.8);
  EXPECT_DOUBLE_EQ(r.ec_utilization, 0.5);
  EXPECT_DOUBLE_EQ(r.burst_ratio, 0.5);
  EXPECT_DOUBLE_EQ(r.oo_final_mb, 50.0);
  EXPECT_GT(r.oo_time_averaged_mb, 0.0);
}

TEST(ReportTest, FormatTableContainsAllRows) {
  SlaReport a;
  a.scheduler = "greedy";
  a.bucket = "large";
  SlaReport b;
  b.scheduler = "op";
  b.bucket = "uniform";
  const std::string table = format_table({a, b});
  EXPECT_NE(table.find("greedy"), std::string::npos);
  EXPECT_NE(table.find("uniform"), std::string::npos);
  EXPECT_NE(table.find("scheduler"), std::string::npos);
}

}  // namespace
