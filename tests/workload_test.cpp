#include <gtest/gtest.h>

#include <sstream>

#include "simcore/simulation.hpp"
#include "stats/summary.hpp"
#include "workload/arrival.hpp"
#include "workload/chunker.hpp"
#include "workload/document.hpp"
#include "workload/generator.hpp"
#include "workload/ground_truth.hpp"
#include "workload/seasonal.hpp"
#include "workload/trace.hpp"

namespace {

using namespace cbs::workload;
using cbs::sim::RngStream;

GroundTruthModel make_truth(double sigma = 0.18) {
  GroundTruthModel::Config cfg;
  cfg.noise_sigma = sigma;
  return GroundTruthModel(cfg, RngStream(77));
}

// ---- GroundTruthModel ------------------------------------------------

TEST(GroundTruthTest, ExpectedSecondsMonotoneInSize) {
  const auto truth = make_truth();
  DocumentFeatures small;
  small.size_mb = 10.0;
  DocumentFeatures large = small;
  large.size_mb = 200.0;
  EXPECT_LT(truth.expected_seconds(small), truth.expected_seconds(large));
}

TEST(GroundTruthTest, NoiseFreeIsDeterministic) {
  auto truth = make_truth(0.0);
  DocumentFeatures f;
  f.size_mb = 50.0;
  EXPECT_DOUBLE_EQ(truth.sample_seconds(f), truth.expected_seconds(f));
  EXPECT_DOUBLE_EQ(truth.sample_seconds(f), truth.sample_seconds(f));
}

TEST(GroundTruthTest, NoiseIsUnbiased) {
  auto truth = make_truth(0.3);
  DocumentFeatures f;
  f.size_mb = 100.0;
  cbs::stats::Summary s;
  for (int i = 0; i < 20000; ++i) s.add(truth.sample_seconds(f));
  EXPECT_NEAR(s.mean() / truth.expected_seconds(f), 1.0, 0.02);
}

TEST(GroundTruthTest, RealizedSecondsDeterministicPerDocument) {
  const auto truth = make_truth();
  Document doc;
  doc.doc_id = 42;
  doc.features.size_mb = 80.0;
  EXPECT_DOUBLE_EQ(truth.realized_seconds(doc), truth.realized_seconds(doc));
  Document other = doc;
  other.doc_id = 43;
  EXPECT_NE(truth.realized_seconds(doc), truth.realized_seconds(other));
}

TEST(GroundTruthTest, RealizedSecondsChunkKeyedByParentAndIndex) {
  const auto truth = make_truth();
  Document chunk;
  chunk.doc_id = 1000;  // fresh id — must NOT influence the draw
  chunk.parent_id = 5;
  chunk.chunk_index = 2;
  chunk.chunk_count = 4;
  chunk.features.size_mb = 60.0;
  Document same_chunk_other_id = chunk;
  same_chunk_other_id.doc_id = 2000;
  EXPECT_DOUBLE_EQ(truth.realized_seconds(chunk),
                   truth.realized_seconds(same_chunk_other_id));
}

TEST(GroundTruthTest, OutputSizeScalesWithInput) {
  const auto truth = make_truth();
  DocumentFeatures f;
  f.size_mb = 100.0;
  f.pages = 50;
  f.type = JobType::kBook;
  const double out = truth.output_size_mb(f);
  EXPECT_GT(out, 0.0);
  EXPECT_NEAR(out, 70.0, 5.0);  // book ratio 0.7 plus page overlay
}

TEST(GroundTruthTest, OutputRatioVariesByType) {
  const auto truth = make_truth();
  DocumentFeatures f;
  f.size_mb = 100.0;
  f.pages = 10;
  f.type = JobType::kImagePersonalization;
  const double img = truth.output_size_mb(f);
  f.type = JobType::kCreditCardStatement;
  const double stmt = truth.output_size_mb(f);
  EXPECT_GT(img, stmt);
}

// ---- WorkloadGenerator -------------------------------------------------

TEST(GeneratorTest, SizesStayInRange) {
  const auto truth = make_truth();
  for (SizeBucket bucket :
       {SizeBucket::kSmallBiased, SizeBucket::kUniform, SizeBucket::kLargeBiased}) {
    WorkloadGenerator gen({.bucket = bucket}, truth, RngStream(1));
    for (int i = 0; i < 500; ++i) {
      const Document d = gen.next();
      EXPECT_GE(d.features.size_mb, 1.0);
      EXPECT_LE(d.features.size_mb, 300.0);
    }
  }
}

TEST(GeneratorTest, BucketsAreOrderedByMeanSize) {
  const auto truth = make_truth();
  auto mean_size = [&](SizeBucket bucket) {
    WorkloadGenerator gen({.bucket = bucket}, truth, RngStream(9));
    cbs::stats::Summary s;
    for (int i = 0; i < 3000; ++i) s.add(gen.next().features.size_mb);
    return s.mean();
  };
  const double small = mean_size(SizeBucket::kSmallBiased);
  const double uniform = mean_size(SizeBucket::kUniform);
  const double large = mean_size(SizeBucket::kLargeBiased);
  EXPECT_LT(small, uniform - 40.0);
  EXPECT_GT(large, uniform + 40.0);
  EXPECT_NEAR(uniform, 150.5, 8.0);
}

TEST(GeneratorTest, FeaturesArePhysicallyConsistent) {
  const auto truth = make_truth();
  WorkloadGenerator gen({}, truth, RngStream(2));
  for (int i = 0; i < 500; ++i) {
    const Document d = gen.next();
    EXPECT_GE(d.features.pages, 1);
    EXPECT_GE(d.features.num_images, 0);
    EXPECT_GT(d.features.resolution_dpi, 0.0);
    EXPECT_GE(d.features.color_fraction, 0.0);
    EXPECT_LE(d.features.color_fraction, 1.0);
    EXPECT_GE(d.features.coverage, 0.0);
    EXPECT_LE(d.features.coverage, 1.0);
    EXPECT_GT(d.output_size_mb, 0.0);
  }
}

TEST(GeneratorTest, IdsAreSequential) {
  const auto truth = make_truth();
  WorkloadGenerator gen({}, truth, RngStream(3));
  EXPECT_EQ(gen.next().doc_id, 1u);
  EXPECT_EQ(gen.next().doc_id, 2u);
  const auto batch = gen.batch(3);
  EXPECT_EQ(batch[2].doc_id, 5u);
  EXPECT_EQ(gen.documents_generated(), 5u);
}

TEST(GeneratorTest, DeterministicPerSeed) {
  const auto truth = make_truth();
  WorkloadGenerator a({}, truth, RngStream(4));
  WorkloadGenerator b({}, truth, RngStream(4));
  for (int i = 0; i < 100; ++i) {
    const Document da = a.next();
    const Document db = b.next();
    EXPECT_DOUBLE_EQ(da.features.size_mb, db.features.size_mb);
    EXPECT_EQ(da.features.pages, db.features.pages);
    EXPECT_EQ(da.features.type, db.features.type);
  }
}

// ---- PdfChunker ---------------------------------------------------------

TEST(ChunkerTest, SmallDocumentIsNotSplit) {
  const auto truth = make_truth();
  PdfChunker chunker({.target_size_mb = 100.0});
  Document doc;
  doc.doc_id = 10;
  doc.features.size_mb = 50.0;
  doc.features.pages = 20;
  std::uint64_t next_id = 1000;
  const auto chunks = chunker.chunk(doc, truth, &next_id);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].parent_id, 10u);
  EXPECT_EQ(chunks[0].doc_id, 1000u);
  EXPECT_EQ(next_id, 1001u);
}

TEST(ChunkerTest, ChunkCountMatchesTarget) {
  PdfChunker chunker({.target_size_mb = 60.0});
  EXPECT_EQ(chunker.chunk_count_for(59.0), 1);
  EXPECT_EQ(chunker.chunk_count_for(61.0), 2);
  EXPECT_EQ(chunker.chunk_count_for(300.0), 5);
}

TEST(ChunkerTest, MaxChunksCapsSplit) {
  PdfChunker chunker({.target_size_mb = 1.0, .max_chunks = 4});
  EXPECT_EQ(chunker.chunk_count_for(300.0), 4);
}

TEST(ChunkerTest, SizesSumToOriginalPlusOverhead) {
  const auto truth = make_truth();
  PdfChunker chunker({.target_size_mb = 60.0, .per_chunk_overhead_mb = 0.5});
  Document doc;
  doc.doc_id = 1;
  doc.features.size_mb = 290.0;
  doc.features.pages = 100;
  doc.features.num_images = 40;
  std::uint64_t next_id = 100;
  const auto chunks = chunker.chunk(doc, truth, &next_id);
  ASSERT_EQ(chunks.size(), 5u);
  double total_mb = 0.0;
  int total_pages = 0;
  int total_images = 0;
  for (const auto& c : chunks) {
    total_mb += c.features.size_mb;
    total_pages += c.features.pages;
    total_images += c.features.num_images;
    EXPECT_EQ(c.parent_id, 1u);
    EXPECT_EQ(c.chunk_count, 5);
  }
  EXPECT_NEAR(total_mb, 290.0 + 5 * 0.5, 1e-9);
  EXPECT_EQ(total_pages, 100);
  EXPECT_EQ(total_images, 40);
}

TEST(ChunkerTest, ChunkIndicesAreSequential) {
  const auto truth = make_truth();
  PdfChunker chunker({.target_size_mb = 50.0});
  Document doc;
  doc.doc_id = 1;
  doc.features.size_mb = 140.0;
  doc.features.pages = 12;
  std::uint64_t next_id = 1;
  const auto chunks = chunker.chunk(doc, truth, &next_id);
  ASSERT_EQ(chunks.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(chunks[static_cast<std::size_t>(i)].chunk_index, i);
  }
}

TEST(ChunkerTest, InheritsPerDocumentProperties) {
  const auto truth = make_truth();
  PdfChunker chunker({.target_size_mb = 50.0});
  Document doc;
  doc.doc_id = 1;
  doc.features.size_mb = 120.0;
  doc.features.pages = 10;
  doc.features.resolution_dpi = 1200.0;
  doc.features.color_fraction = 0.9;
  doc.features.type = JobType::kMarketingMaterial;
  std::uint64_t next_id = 1;
  for (const auto& c : chunker.chunk(doc, truth, &next_id)) {
    EXPECT_DOUBLE_EQ(c.features.resolution_dpi, 1200.0);
    EXPECT_DOUBLE_EQ(c.features.color_fraction, 0.9);
    EXPECT_EQ(c.features.type, JobType::kMarketingMaterial);
  }
}

// ---- BatchArrivalProcess ------------------------------------------------

TEST(ArrivalTest, BatchTimesAreOnTheGrid) {
  auto truth = make_truth();
  WorkloadGenerator gen({}, truth, RngStream(5));
  BatchArrivalProcess arrivals({.batch_interval = 180.0, .num_batches = 5},
                               gen, RngStream(6));
  const auto batches = arrivals.generate_all();
  ASSERT_EQ(batches.size(), 5u);
  for (std::size_t b = 0; b < 5; ++b) {
    EXPECT_DOUBLE_EQ(batches[b].arrival_time, 180.0 * static_cast<double>(b));
    EXPECT_EQ(batches[b].batch_index, b);
    EXPECT_FALSE(batches[b].documents.empty());
  }
}

TEST(ArrivalTest, PoissonCountsAverageLambda) {
  auto truth = make_truth();
  WorkloadGenerator gen({}, truth, RngStream(7));
  BatchArrivalProcess arrivals(
      {.mean_jobs_per_batch = 15.0, .num_batches = 400}, gen, RngStream(8));
  cbs::stats::Summary s;
  for (const auto& b : arrivals.generate_all()) {
    s.add(static_cast<double>(b.documents.size()));
  }
  EXPECT_NEAR(s.mean(), 15.0, 0.7);
}

TEST(ArrivalTest, ScheduleOnFiresAtArrivalTimes) {
  auto truth = make_truth();
  WorkloadGenerator gen({}, truth, RngStream(9));
  BatchArrivalProcess arrivals({.batch_interval = 100.0, .num_batches = 3},
                               gen, RngStream(10));
  cbs::sim::Simulation sim;
  std::vector<double> fired_at;
  const auto schedule = arrivals.schedule_on(
      sim, [&](const Batch& batch) {
        fired_at.push_back(batch.arrival_time);
      });
  sim.run();
  ASSERT_EQ(fired_at.size(), 3u);
  EXPECT_DOUBLE_EQ(fired_at[1], 100.0);
  EXPECT_EQ(schedule.size(), 3u);
}

// ---- SeasonalArrivalProcess ------------------------------------------------

TEST(SeasonalTest, BusinessDayShape) {
  const auto day = SeasonalArrivalProcess::business_day();
  using cbs::sim::kHour;
  EXPECT_LT(day(3.0 * kHour), 0.1);                   // overnight quiet
  EXPECT_GT(day(15.0 * kHour), day(10.0 * kHour));    // afternoon peak
  EXPECT_LT(day(12.5 * kHour), day(11.0 * kHour));    // lunch dip
  EXPECT_LT(day(23.0 * kHour), 0.2);
}

TEST(SeasonalTest, BusinessWeekQuietWeekends) {
  const auto week = SeasonalArrivalProcess::business_week();
  using cbs::sim::kDay;
  using cbs::sim::kHour;
  const double monday_noon = 0.0 * kDay + 11.0 * kHour;
  const double saturday_noon = 5.0 * kDay + 11.0 * kHour;
  EXPECT_GT(week(monday_noon), 5.0 * week(saturday_noon));
}

TEST(SeasonalTest, BatchSizesFollowIntensity) {
  auto truth = make_truth();
  WorkloadGenerator gen({}, truth, RngStream(20));
  // Horizon: one day of 3-minute slots.
  SeasonalArrivalProcess arrivals(
      {.batch_interval = 180.0, .base_jobs_per_batch = 20.0,
       .num_batches = 480},
      SeasonalArrivalProcess::business_day(), gen, RngStream(21));
  const auto batches = arrivals.generate_all();
  double night_jobs = 0.0;
  double afternoon_jobs = 0.0;
  int night_slots = 0;
  int afternoon_slots = 0;
  for (const auto& b : batches) {
    const double hour = b.arrival_time / cbs::sim::kHour;
    if (hour < 5.0) {
      night_jobs += static_cast<double>(b.documents.size());
      ++night_slots;
    } else if (hour >= 13.0 && hour < 17.0) {
      afternoon_jobs += static_cast<double>(b.documents.size());
      ++afternoon_slots;
    }
  }
  ASSERT_GT(afternoon_slots, 0);
  const double afternoon_mean = afternoon_jobs / afternoon_slots;
  EXPECT_NEAR(afternoon_mean, 24.0, 3.0);  // 20 * 1.2
  // Night slots are mostly skipped entirely (Poisson(1) often draws 0).
  EXPECT_LT(night_jobs, 0.1 * afternoon_jobs);
}

TEST(SeasonalTest, BatchIndicesAreDense) {
  auto truth = make_truth();
  WorkloadGenerator gen({}, truth, RngStream(22));
  SeasonalArrivalProcess arrivals(
      {.batch_interval = 180.0, .base_jobs_per_batch = 2.0, .num_batches = 100},
      SeasonalArrivalProcess::business_day(), gen, RngStream(23));
  const auto batches = arrivals.generate_all();
  for (std::size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(batches[i].batch_index, i);
    EXPECT_FALSE(batches[i].documents.empty());
  }
}

TEST(SeasonalTest, ScheduleOnFiresInOrder) {
  auto truth = make_truth();
  WorkloadGenerator gen({}, truth, RngStream(24));
  SeasonalArrivalProcess arrivals(
      {.batch_interval = 100.0, .base_jobs_per_batch = 10.0, .num_batches = 20},
      [](double) { return 1.0; }, gen, RngStream(25));
  cbs::sim::Simulation sim;
  double last = -1.0;
  const auto schedule = arrivals.schedule_on(sim, [&](const Batch& b) {
    EXPECT_GT(b.arrival_time, last);
    last = b.arrival_time;
  });
  sim.run();
  EXPECT_FALSE(schedule.empty());
}

// ---- trace I/O ------------------------------------------------------------

TEST(TraceTest, RoundTripPreservesEverything) {
  auto truth = make_truth();
  WorkloadGenerator gen({}, truth, RngStream(11));
  BatchArrivalProcess arrivals({.num_batches = 3}, gen, RngStream(12));
  const auto original = arrivals.generate_all();
  const auto copy = trace::round_trip(original);
  ASSERT_EQ(copy.size(), original.size());
  for (std::size_t b = 0; b < original.size(); ++b) {
    ASSERT_EQ(copy[b].documents.size(), original[b].documents.size());
    EXPECT_DOUBLE_EQ(copy[b].arrival_time, original[b].arrival_time);
    for (std::size_t i = 0; i < original[b].documents.size(); ++i) {
      const Document& a = original[b].documents[i];
      const Document& c = copy[b].documents[i];
      EXPECT_EQ(a.doc_id, c.doc_id);
      EXPECT_DOUBLE_EQ(a.features.size_mb, c.features.size_mb);
      EXPECT_EQ(a.features.pages, c.features.pages);
      EXPECT_EQ(a.features.type, c.features.type);
      EXPECT_DOUBLE_EQ(a.output_size_mb, c.output_size_mb);
    }
  }
}

TEST(TraceTest, RejectsBadHeader) {
  std::istringstream in("not,a,header\n");
  EXPECT_THROW((void)trace::read(in), std::runtime_error);
}

TEST(TraceTest, RejectsWrongColumnCount) {
  std::istringstream in(
      "batch,arrival_time,doc_id,type,size_mb,pages,num_images,avg_image_mb,"
      "resolution_dpi,color_fraction,text_ratio,coverage,output_size_mb\n"
      "0,0,1,book,10\n");
  EXPECT_THROW((void)trace::read(in), std::runtime_error);
}

TEST(TraceTest, RejectsUnknownJobType) {
  std::istringstream in(
      "batch,arrival_time,doc_id,type,size_mb,pages,num_images,avg_image_mb,"
      "resolution_dpi,color_fraction,text_ratio,coverage,output_size_mb\n"
      "0,0,1,frisbee,10,1,0,0,300,0,1,0.5,8\n");
  EXPECT_THROW((void)trace::read(in), std::runtime_error);
}

TEST(TraceTest, RejectsMalformedNumber) {
  std::istringstream in(
      "batch,arrival_time,doc_id,type,size_mb,pages,num_images,avg_image_mb,"
      "resolution_dpi,color_fraction,text_ratio,coverage,output_size_mb\n"
      "0,0,1,book,10x,1,0,0,300,0,1,0.5,8\n");
  EXPECT_THROW((void)trace::read(in), std::runtime_error);
}

TEST(TraceTest, WriteReportsRowCount) {
  auto truth = make_truth();
  WorkloadGenerator gen({}, truth, RngStream(13));
  std::vector<Batch> batches(1);
  batches[0].documents = gen.batch(7);
  std::ostringstream out;
  EXPECT_EQ(trace::write(out, batches), 7u);
}

}  // namespace
