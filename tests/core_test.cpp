#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/bandwidth_split.hpp"
#include "core/belief_state.hpp"
#include "core/config.hpp"
#include "core/greedy_scheduler.hpp"
#include "core/order_preserving_scheduler.hpp"
#include "core/scheduler.hpp"
#include "core/upload_queues.hpp"
#include "models/estimator.hpp"
#include "net/bandwidth_estimator.hpp"
#include "net/link.hpp"
#include "net/thread_tuner.hpp"
#include "simcore/simulation.hpp"
#include "workload/ground_truth.hpp"

namespace {

using namespace cbs::core;
using cbs::sim::RngStream;
using cbs::sim::Simulation;
using cbs::sla::Placement;
using cbs::workload::Document;

/// Estimator with a fixed per-MB rate — makes belief arithmetic exact.
class FixedRateEstimator final : public cbs::models::ProcessingTimeEstimator {
 public:
  explicit FixedRateEstimator(double seconds_per_mb)
      : seconds_per_mb_(seconds_per_mb) {}
  [[nodiscard]] double estimate_seconds(const Document& doc) const override {
    return doc.features.size_mb * seconds_per_mb_;
  }

 private:
  double seconds_per_mb_;
};

Document make_doc(std::uint64_t id, double size_mb, double output_mb = 0.0) {
  Document d;
  d.doc_id = id;
  d.features.size_mb = size_mb;
  d.features.pages = static_cast<int>(size_mb);
  d.output_size_mb = output_mb > 0.0 ? output_mb : size_mb;
  return d;
}

struct BeliefFixture {
  FixedRateEstimator estimator{1.0};  // 1 s per MB
  cbs::net::BandwidthEstimator uplink{
      {.slots_per_day = 1, .alpha = 0.3, .prior_rate = 1.0e6}};
  cbs::net::BandwidthEstimator downlink{
      {.slots_per_day = 1, .alpha = 0.3, .prior_rate = 1.0e6}};
  BeliefState belief{estimator, uplink, downlink,
                     /*ic*/ 4,  1.0, /*ec*/ 2, 1.0,
                     /*par*/ 1, 1,  /*overhead*/ 0.0};
};

// ---- BeliefState -----------------------------------------------------------

TEST(BeliefStateTest, FtIcUsesBacklogAndJobRate) {
  BeliefFixture fx;
  // Empty system: 100 MB doc -> 100 s on one machine.
  EXPECT_DOUBLE_EQ(fx.belief.ft_ic(make_doc(1, 100.0), 50.0), 150.0);
  // 400 s of backlog drains at rate 4.
  fx.belief.commit_ic(1, 400.0);
  EXPECT_DOUBLE_EQ(fx.belief.ft_ic(make_doc(2, 100.0), 50.0),
                   50.0 + 100.0 + 100.0);
}

TEST(BeliefStateTest, FtEcBreakdown) {
  BeliefFixture fx;
  // 100 MB in, 100 MB out at 1 MB/s both ways; service 100 s on 1 EC slot.
  const EcEstimate e = fx.belief.ft_ec(make_doc(1, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(e.upload_seconds, 100.0);
  EXPECT_DOUBLE_EQ(e.ec_wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(e.processing_seconds, 100.0);
  EXPECT_DOUBLE_EQ(e.download_seconds, 100.0);
  EXPECT_DOUBLE_EQ(e.finish, 300.0);
}

TEST(BeliefStateTest, FtEcSeesUploadBacklog) {
  BeliefFixture fx;
  const EcEstimate before = fx.belief.ft_ec(make_doc(1, 100.0), 0.0);
  fx.belief.commit_ec(10, make_doc(10, 50.0), before);
  // 50 MB queued ahead -> upload takes 150 s now.
  const EcEstimate after = fx.belief.ft_ec(make_doc(2, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(after.upload_seconds, 150.0);
}

TEST(BeliefStateTest, EcBacklogDrainsDuringUpload) {
  BeliefFixture fx;
  fx.belief.commit_ec(10, make_doc(10, 100.0),
                      fx.belief.ft_ec(make_doc(10, 100.0), 0.0));
  // 100 s of believed EC work; during our 200 s upload (100 queued + 100
  // own) the EC (capacity 2) fully drains it -> no wait.
  const EcEstimate e = fx.belief.ft_ec(make_doc(2, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(e.ec_wait_seconds, 0.0);
}

TEST(BeliefStateTest, SlackIsMaxOfIcDrainAndEcFinishes) {
  BeliefFixture fx;
  EXPECT_DOUBLE_EQ(fx.belief.slack(100.0), 100.0);  // empty: fallback now
  fx.belief.commit_ic(1, 400.0);                    // drains at t+100
  EXPECT_DOUBLE_EQ(fx.belief.slack(100.0), 200.0);
  EcEstimate far;
  far.finish = 900.0;
  fx.belief.commit_ec(2, make_doc(2, 10.0), far);
  EXPECT_DOUBLE_EQ(fx.belief.slack(100.0), 900.0);
}

TEST(BeliefStateTest, CompletionsReduceBacklog) {
  BeliefFixture fx;
  fx.belief.commit_ic(1, 100.0);
  fx.belief.commit_ic(2, 60.0);
  EXPECT_DOUBLE_EQ(fx.belief.ic_backlog_standard_seconds(), 160.0);
  fx.belief.on_ic_complete(1);
  EXPECT_DOUBLE_EQ(fx.belief.ic_backlog_standard_seconds(), 60.0);
  EXPECT_EQ(fx.belief.outstanding_ic_jobs(), 1u);
}

TEST(BeliefStateTest, UploadCompletionShrinksByteBacklog) {
  BeliefFixture fx;
  const Document d = make_doc(1, 30.0);
  fx.belief.commit_ec(1, d, fx.belief.ft_ec(d, 0.0));
  EXPECT_DOUBLE_EQ(fx.belief.upload_backlog_bytes(), 30.0e6);
  fx.belief.on_upload_complete(30.0e6);
  EXPECT_DOUBLE_EQ(fx.belief.upload_backlog_bytes(), 0.0);
}

TEST(BeliefStateTest, RetractUndoesCommit) {
  BeliefFixture fx;
  fx.belief.commit_ic(1, 100.0);
  fx.belief.retract_ic(1);
  EXPECT_DOUBLE_EQ(fx.belief.ic_backlog_standard_seconds(), 0.0);
  const Document d = make_doc(2, 40.0);
  fx.belief.commit_ec(2, d, fx.belief.ft_ec(d, 0.0));
  fx.belief.retract_ec(2, d.input_bytes());
  EXPECT_EQ(fx.belief.outstanding_ec_jobs(), 0u);
  EXPECT_DOUBLE_EQ(fx.belief.upload_backlog_bytes(), 0.0);
}

TEST(BeliefStateTest, TransientViewUsesLastObservation) {
  BeliefFixture fx;
  fx.uplink.observe(0.0, 2.0e6);  // EWMA != last after a second sample
  fx.uplink.observe(1.0, 0.5e6);
  fx.belief.set_bandwidth_view(BandwidthView::kTransient);
  const EcEstimate e = fx.belief.ft_ec_job_level(make_doc(1, 100.0), 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(e.upload_seconds, 100.0e6 / 0.5e6);
}

TEST(BeliefStateTest, JobLevelIgnoresCommittedUploadBacklog) {
  BeliefFixture fx;
  const Document queued = make_doc(10, 200.0);
  fx.belief.commit_ec(10, queued, fx.belief.ft_ec(queued, 0.0));
  const EcEstimate e =
      fx.belief.ft_ec_job_level(make_doc(1, 100.0), 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(e.upload_seconds, 100.0);  // blind to the 200 MB ahead
  const EcEstimate full = fx.belief.ft_ec(make_doc(1, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(full.upload_seconds, 300.0);
}

TEST(BeliefStateTest, EcOverheadEntersProcessing) {
  FixedRateEstimator est(1.0);
  cbs::net::BandwidthEstimator up{{.slots_per_day = 1, .alpha = 0.3, .prior_rate = 1.0e6}};
  cbs::net::BandwidthEstimator down = up;
  BeliefState belief(est, up, down, 4, 1.0, 2, 1.0, 1, 1, 45.0);
  const EcEstimate e = belief.ft_ec(make_doc(1, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(e.processing_seconds, 145.0);
}

// ---- scheduler context machinery ----------------------------------------

struct SchedulerFixture {
  BeliefFixture fx;
  cbs::workload::GroundTruthModel truth{{.noise_sigma = 0.0}, RngStream(1)};
  SchedulerParams params;
  std::uint64_t next_seq = 1;
  std::uint64_t next_doc_id = 1000;

  Scheduler::Context context(double now = 0.0) {
    return Scheduler::Context{
        .now = now,
        .belief = fx.belief,
        .params = params,
        .truth = truth,
        .next_seq = &next_seq,
        .next_doc_id = &next_doc_id,
        .ic_machines = 4,
        .upload_class_backlog_bytes = {0.0, 0.0, 0.0},
        .download_backlog_bytes = 0.0,
    };
  }
};

TEST(IcOnlySchedulerTest, PlacesEverythingInternally) {
  SchedulerFixture f;
  IcOnlyScheduler scheduler;
  auto ctx = f.context();
  const auto decisions =
      scheduler.schedule_batch({make_doc(1, 10.0), make_doc(2, 250.0)}, ctx);
  ASSERT_EQ(decisions.size(), 2u);
  for (const auto& d : decisions) {
    EXPECT_EQ(d.placement, Placement::kInternal);
  }
  EXPECT_EQ(decisions[0].seq_id, 1u);
  EXPECT_EQ(decisions[1].seq_id, 2u);
  EXPECT_EQ(f.fx.belief.outstanding_ic_jobs(), 2u);
}

TEST(GreedySchedulerTest, PicksEarlierFinish) {
  SchedulerFixture f;
  GreedyScheduler scheduler;
  // Preload the IC so ft_ic is slow: 4000 std-s over 4 machines = 1000 s.
  f.fx.belief.commit_ic(999, 4000.0);
  auto ctx = f.context();
  // 100 MB job: ft_ic = 1000 + 100 = 1100 vs ft_ec = 100+100+100 = 300.
  const auto decisions = scheduler.schedule_batch({make_doc(1, 100.0)}, ctx);
  EXPECT_EQ(decisions[0].placement, Placement::kExternal);
}

TEST(GreedySchedulerTest, KeepsJobWhenIcWins) {
  SchedulerFixture f;
  GreedyScheduler scheduler;
  auto ctx = f.context();
  // Empty system: ft_ic = 100 < ft_ec = 300.
  const auto decisions = scheduler.schedule_batch({make_doc(1, 100.0)}, ctx);
  EXPECT_EQ(decisions[0].placement, Placement::kInternal);
}

TEST(GreedySchedulerTest, SeesLiveUploadQueueButTransientBandwidth) {
  SchedulerFixture f;
  GreedyScheduler scheduler;
  f.fx.belief.commit_ic(999, 40000.0);  // force EC for everything
  auto ctx = f.context();
  const auto decisions = scheduler.schedule_batch(
      {make_doc(1, 100.0), make_doc(2, 100.0), make_doc(3, 100.0)}, ctx);
  // Each burst enqueues real bytes, so the next decision's upload estimate
  // includes them (100, 200, 300 s at 1 MB/s).
  ASSERT_EQ(decisions.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decisions[i].placement, Placement::kExternal);
    EXPECT_DOUBLE_EQ(decisions[i].ec_estimate.upload_seconds,
                     100.0 * static_cast<double>(i + 1));
  }
}

TEST(OrderPreservingTest, BurstsOnlyWithinSlack) {
  SchedulerFixture f;
  f.params.variability_threshold_mb = 1e9;  // disable chunking here
  f.params.slack_safety_margin = 0.0;
  OrderPreservingScheduler scheduler;
  auto ctx = f.context();
  // First job of an empty system: slack = now -> can never burst.
  const auto d1 = scheduler.schedule_batch({make_doc(1, 50.0)}, ctx);
  EXPECT_EQ(d1[0].placement, Placement::kInternal);
  // Preload a big IC backlog: slack = 40000/4 = 10000 s; a 100 MB round
  // trip (300 s) easily fits.
  f.fx.belief.commit_ic(999, 40000.0);
  auto ctx2 = f.context();
  const auto d2 = scheduler.schedule_batch({make_doc(2, 100.0)}, ctx2);
  EXPECT_EQ(d2[0].placement, Placement::kExternal);
}

TEST(OrderPreservingTest, SafetyMarginTightensAdmission) {
  SchedulerFixture f;
  f.params.variability_threshold_mb = 1e9;
  OrderPreservingScheduler scheduler;
  // Slack = 320/4 = 80 s; round trip of a 25 MB job = 75 s.
  f.fx.belief.commit_ic(999, 320.0);
  f.params.slack_safety_margin = 0.0;
  {
    auto ctx = f.context();
    const auto d = scheduler.schedule_batch({make_doc(1, 25.0)}, ctx);
    EXPECT_EQ(d[0].placement, Placement::kExternal);
  }
  f.params.slack_safety_margin = 20.0;  // 75 + 20 > 80 -> rejected
  {
    auto ctx = f.context();
    const auto d = scheduler.schedule_batch({make_doc(2, 25.0)}, ctx);
    EXPECT_EQ(d[0].placement, Placement::kInternal);
  }
}

TEST(OrderPreservingTest, ChunksHighVarianceWindows) {
  SchedulerFixture f;
  f.params.variability_window = 3;
  f.params.variability_threshold_mb = 50.0;
  f.params.chunker.target_size_mb = 60.0;
  OrderPreservingScheduler scheduler;
  auto ctx = f.context();
  // Sizes 290, 5, 5: sigma >> 50 -> the 290 MB head job gets chunked.
  const auto decisions = scheduler.schedule_batch(
      {make_doc(1, 290.0), make_doc(2, 5.0), make_doc(3, 5.0)}, ctx);
  EXPECT_GT(decisions.size(), 3u);
  EXPECT_TRUE(decisions[0].doc.is_chunk());
  EXPECT_EQ(decisions[0].doc.parent_id, 1u);
  // Seq ids are contiguous from 1.
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    EXPECT_EQ(decisions[i].seq_id, i + 1);
  }
}

TEST(OrderPreservingTest, LowVarianceLeavesJobsIntact) {
  SchedulerFixture f;
  f.params.variability_threshold_mb = 50.0;
  OrderPreservingScheduler scheduler;
  auto ctx = f.context();
  const auto decisions = scheduler.schedule_batch(
      {make_doc(1, 280.0), make_doc(2, 290.0), make_doc(3, 285.0)}, ctx);
  EXPECT_EQ(decisions.size(), 3u);
  for (const auto& d : decisions) EXPECT_FALSE(d.doc.is_chunk());
}

// ---- Algorithm 3 (size-interval bounds) -----------------------------------

TEST(BandwidthSplitTest, BoundsPartitionEligibleSizes) {
  SchedulerFixture f;
  f.fx.belief.commit_ic(999, 40000.0);  // everything is burst-eligible
  const std::vector<Document> batch = {
      make_doc(1, 10.0), make_doc(2, 20.0),  make_doc(3, 40.0),
      make_doc(4, 80.0), make_doc(5, 160.0), make_doc(6, 300.0)};
  const auto bounds = compute_size_interval_bounds(
      batch, f.fx.belief, 0.0, 4, {0.0, 0.0, 0.0});
  ASSERT_TRUE(bounds.has_value());
  EXPECT_GT(bounds->small_upper_mb, 0.0);
  EXPECT_GE(bounds->medium_upper_mb, bounds->small_upper_mb);
  EXPECT_LT(bounds->medium_upper_mb, 300.0);
  EXPECT_EQ(bounds->class_of(1.0), 0);
  EXPECT_EQ(bounds->class_of(300.0), 2);
}

TEST(BandwidthSplitTest, NoEligibleJobsMeansNoBounds) {
  SchedulerFixture f;  // empty IC: iload = 0 -> nothing passes line 6
  const std::vector<Document> batch = {make_doc(1, 100.0)};
  const auto bounds = compute_size_interval_bounds(
      batch, f.fx.belief, 0.0, 4, {0.0, 0.0, 0.0});
  EXPECT_FALSE(bounds.has_value());
}

TEST(BandwidthSplitTest, BackloggedQueueGetsFewerJobs) {
  SchedulerFixture f;
  f.fx.belief.commit_ic(999, 40000.0);
  std::vector<Document> batch;
  for (int i = 1; i <= 12; ++i) {
    batch.push_back(make_doc(static_cast<std::uint64_t>(i), 25.0 * i));
  }
  // Small queue heavily backlogged: its left-over capacity shrinks, so the
  // small bound must drop relative to the balanced case.
  const auto balanced = compute_size_interval_bounds(
      batch, f.fx.belief, 0.0, 4, {0.0, 0.0, 0.0});
  const auto skewed = compute_size_interval_bounds(
      batch, f.fx.belief, 0.0, 4, {1.0e9, 0.0, 0.0});
  ASSERT_TRUE(balanced.has_value());
  ASSERT_TRUE(skewed.has_value());
  EXPECT_LT(skewed->small_upper_mb, balanced->small_upper_mb);
}

TEST(BandwidthSplitTest, SchedulerAssignsUploadClasses) {
  SchedulerFixture f;
  f.params.variability_threshold_mb = 1e9;
  f.fx.belief.commit_ic(999, 40000.0);
  BandwidthSplitScheduler scheduler;
  auto ctx = f.context();
  std::vector<Document> batch;
  for (int i = 1; i <= 9; ++i) {
    batch.push_back(make_doc(static_cast<std::uint64_t>(i), 30.0 * i));
  }
  const auto decisions = scheduler.schedule_batch(batch, ctx);
  bool saw_small = false;
  bool saw_large = false;
  for (const auto& d : decisions) {
    if (d.placement != Placement::kExternal) continue;
    if (d.upload_class == 0) saw_small = true;
    if (d.upload_class == 2) saw_large = true;
  }
  EXPECT_TRUE(saw_small);
  EXPECT_TRUE(saw_large);
}

/// Sort-based reference for the bound selection — the implementation the
/// nth_element version replaced. Pins that selection produces identical
/// bounds (they are order statistics, so any divergence is a bug).
SizeIntervalBounds reference_bounds(std::vector<double> sorted_sizes,
                                    const double leftover[3]) {
  std::sort(sorted_sizes.begin(), sorted_sizes.end());
  const double leftover_sum = leftover[0] + leftover[1] + leftover[2];
  const auto count = static_cast<double>(sorted_sizes.size());
  const auto small_count =
      static_cast<std::size_t>(std::floor(count * leftover[0] / leftover_sum));
  const auto medium_count =
      static_cast<std::size_t>(std::floor(count * leftover[1] / leftover_sum));
  SizeIntervalBounds bounds;
  bounds.small_upper_mb = small_count > 0 ? sorted_sizes[small_count - 1]
                                          : sorted_sizes.front();
  const std::size_t medium_last = std::min(
      sorted_sizes.size() - 1,
      small_count + std::max<std::size_t>(medium_count, 1) - 1);
  bounds.medium_upper_mb =
      std::max(sorted_sizes[medium_last], bounds.small_upper_mb);
  return bounds;
}

TEST(BandwidthSplitTest, SelectionBoundsMatchSortReference) {
  SchedulerFixture f;
  f.fx.belief.commit_ic(999, 1.0e9);  // everything is burst-eligible
  RngStream rng(20260806);
  std::vector<double> scratch;
  for (int trial = 0; trial < 200; ++trial) {
    const int batch_size = 1 + static_cast<int>(rng.next() % 40);
    std::vector<Document> batch;
    std::vector<double> sizes;
    for (int i = 0; i < batch_size; ++i) {
      // Duplicates on purpose: coarse quantization exercises tie handling.
      const double size = 5.0 * (1.0 + static_cast<double>(rng.next() % 60));
      batch.push_back(make_doc(static_cast<std::uint64_t>(i + 1), size));
      sizes.push_back(size);
    }
    std::vector<double> backlog = {rng.uniform(0.0, 1.0e9),
                                   rng.uniform(0.0, 1.0e9),
                                   rng.uniform(0.0, 1.0e9)};
    if (trial % 5 == 0) backlog = {0.0, 0.0, 0.0};
    const auto bounds = compute_size_interval_bounds(batch, f.fx.belief, 0.0,
                                                     4, backlog, scratch);
    ASSERT_TRUE(bounds.has_value());

    double leftover[3];
    const double total = backlog[0] + backlog[1] + backlog[2];
    if (total <= 0.0) {
      leftover[0] = leftover[1] = leftover[2] = 1.0;
    } else {
      for (int q = 0; q < 3; ++q) leftover[q] = 1.0 - backlog[static_cast<std::size_t>(q)] / total;
    }
    const SizeIntervalBounds expected = reference_bounds(sizes, leftover);
    EXPECT_EQ(bounds->small_upper_mb, expected.small_upper_mb) << "trial " << trial;
    EXPECT_EQ(bounds->medium_upper_mb, expected.medium_upper_mb) << "trial " << trial;
  }
}

// ---- Incremental slack property test --------------------------------------

TEST(BeliefStateTest, IncrementalSlackMatchesBruteforceUnderChurn) {
  BeliefFixture fx;
  RngStream rng(777);
  std::vector<std::uint64_t> live_ic;
  std::vector<std::uint64_t> live_ec;
  std::uint64_t next_seq = 1;
  double now = 0.0;
  for (int step = 0; step < 4000; ++step) {
    now += rng.uniform(0.0, 5.0);
    const std::uint64_t op = rng.next() % 10;
    if (op < 3) {  // commit IC
      const std::uint64_t seq = next_seq++;
      fx.belief.commit_ic(seq, rng.uniform(1.0, 500.0));
      live_ic.push_back(seq);
    } else if (op < 6) {  // commit EC
      const std::uint64_t seq = next_seq++;
      const Document doc = make_doc(seq, rng.uniform(1.0, 400.0));
      fx.belief.commit_ec(seq, doc, fx.belief.ft_ec(doc, now));
      live_ec.push_back(seq);
    } else if (op < 7 && !live_ic.empty()) {  // complete IC
      const std::size_t i = rng.next() % live_ic.size();
      fx.belief.on_ic_complete(live_ic[i]);
      live_ic.erase(live_ic.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (op < 8 && !live_ec.empty()) {  // complete EC
      const std::size_t i = rng.next() % live_ec.size();
      fx.belief.on_ec_complete(live_ec[i]);
      live_ec.erase(live_ec.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (op < 9 && !live_ic.empty()) {  // fault retraction, IC side
      const std::size_t i = rng.next() % live_ic.size();
      fx.belief.retract_ic(live_ic[i]);
      live_ic.erase(live_ic.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (!live_ec.empty()) {  // fault retraction, EC side
      const std::size_t i = rng.next() % live_ec.size();
      fx.belief.retract_ec(live_ec[i], rng.uniform(0.0, 1.0e8));
      live_ec.erase(live_ec.begin() + static_cast<std::ptrdiff_t>(i));
    }
    // Exact equality, not near-equality: both paths take max over the same
    // doubles, which is order-insensitive, so any difference is a tracking
    // bug in the incremental structure.
    ASSERT_EQ(fx.belief.slack(now), fx.belief.slack_bruteforce(now))
        << "diverged at step " << step;
  }
  // Drain everything: the incremental structure must agree on empty too.
  for (const auto seq : live_ic) fx.belief.on_ic_complete(seq);
  for (const auto seq : live_ec) fx.belief.on_ec_complete(seq);
  EXPECT_EQ(fx.belief.slack(now), fx.belief.slack_bruteforce(now));
  EXPECT_EQ(fx.belief.slack(now), now);
}

// ---- TransferQueueSet ---------------------------------------------------

struct QueueFixture {
  Simulation sim;
  cbs::net::LinkConfig link_cfg = [] {
    cbs::net::LinkConfig cfg;
    cfg.base_rate = 1.0e6;
    cfg.per_connection_cap = 1.0e6;
    cfg.noise_sigma = 0.0;
    cfg.setup_latency = 0.0;
    return cfg;
  }();
  cbs::net::Link link{sim, link_cfg, RngStream(1)};
  cbs::net::ThreadTuner tuner{{.slots_per_day = 1, .initial_threads = 1}};
};

TEST(TransferQueueSetTest, SingleClassIsFifo) {
  QueueFixture f;
  TransferQueueSet queues(f.sim, f.link, f.tuner, 1);
  std::vector<std::uint64_t> done;
  queues.set_on_complete(
      [&](std::uint64_t tag, int, const cbs::net::TransferRecord&) {
        done.push_back(tag);
      });
  for (std::uint64_t tag = 1; tag <= 3; ++tag) queues.enqueue(tag, 1.0e6, 0);
  f.sim.run();
  EXPECT_EQ(done, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(queues.idle());
}

TEST(TransferQueueSetTest, SmallJobRidesHigherClassSlot) {
  QueueFixture f;
  TransferQueueSet queues(f.sim, f.link, f.tuner, 3);
  std::vector<std::uint64_t> done;
  queues.set_on_complete(
      [&](std::uint64_t tag, int, const cbs::net::TransferRecord&) {
        done.push_back(tag);
      });
  // Two small (class 0) jobs and nothing in classes 1/2: the second small
  // job must ride a higher slot and run concurrently.
  queues.enqueue(1, 2.0e6, 0);
  queues.enqueue(2, 2.0e6, 0);
  f.sim.run();
  // Concurrent at 0.5 MB/s each -> both complete at t=4; serial would be
  // 2 then 4.
  ASSERT_EQ(done.size(), 2u);
  const auto& recs = f.link.completed();
  EXPECT_DOUBLE_EQ(recs[0].completed, 4.0);
  EXPECT_DOUBLE_EQ(recs[1].completed, 4.0);
}

TEST(TransferQueueSetTest, LargeJobNeverRidesSmallSlot) {
  QueueFixture f;
  TransferQueueSet queues(f.sim, f.link, f.tuner, 2);
  int active_large = 0;
  int max_active_large = 0;
  queues.set_on_complete(
      [&](std::uint64_t, int klass, const cbs::net::TransferRecord&) {
        if (klass == 1) --active_large;
      });
  // Three large-class jobs: only the class-1 slot may carry them, so they
  // serialize even though the class-0 slot idles.
  for (std::uint64_t tag = 1; tag <= 3; ++tag) queues.enqueue(tag, 1.0e6, 1);
  active_large = static_cast<int>(queues.active_items());
  max_active_large = active_large;
  f.sim.run();
  EXPECT_EQ(max_active_large, 1);
  EXPECT_DOUBLE_EQ(f.link.completed().back().completed, 3.0);  // serial at 1 MB/s
}

TEST(TransferQueueSetTest, CancelOnlyWorksWhileQueued) {
  QueueFixture f;
  TransferQueueSet queues(f.sim, f.link, f.tuner, 1);
  int completions = 0;
  queues.set_on_complete(
      [&](std::uint64_t, int, const cbs::net::TransferRecord&) {
        ++completions;
      });
  queues.enqueue(1, 1.0e6, 0);  // starts immediately
  queues.enqueue(2, 1.0e6, 0);  // queued
  EXPECT_FALSE(queues.try_cancel(1));  // already started
  EXPECT_TRUE(queues.try_cancel(2));
  EXPECT_FALSE(queues.try_cancel(2));  // gone
  f.sim.run();
  EXPECT_EQ(completions, 1);
}

TEST(TransferQueueSetTest, BacklogAccountsQueuedAndActive) {
  QueueFixture f;
  TransferQueueSet queues(f.sim, f.link, f.tuner, 3);
  queues.enqueue(1, 5.0e6, 0);
  queues.enqueue(2, 3.0e6, 2);
  queues.enqueue(3, 2.0e6, 2);
  const auto backlog = queues.backlog_bytes_per_class();
  EXPECT_DOUBLE_EQ(backlog[0], 5.0e6);
  EXPECT_DOUBLE_EQ(backlog[2], 5.0e6);
  EXPECT_DOUBLE_EQ(queues.total_backlog_bytes(), 10.0e6);
  f.sim.run();
  EXPECT_DOUBLE_EQ(queues.total_backlog_bytes(), 0.0);
}

TEST(TransferQueueSetTest, QueuedTagsListsWaitingOnly) {
  QueueFixture f;
  TransferQueueSet queues(f.sim, f.link, f.tuner, 1);
  queues.enqueue(1, 1.0e6, 0);
  queues.enqueue(2, 1.0e6, 0);
  queues.enqueue(3, 1.0e6, 0);
  const auto tags = queues.queued_tags();
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{2, 3}));
}

TEST(BandwidthSplitTest, ClassBoundariesAreInclusive) {
  const SizeIntervalBounds bounds{40.0, 120.0};
  EXPECT_EQ(bounds.class_of(40.0), 0);
  EXPECT_EQ(bounds.class_of(40.0001), 1);
  EXPECT_EQ(bounds.class_of(120.0), 1);
  EXPECT_EQ(bounds.class_of(120.0001), 2);
}

TEST(RandomSchedulerTest, BurstsAtConfiguredProbability) {
  SchedulerFixture f;
  f.params.random_burst_probability = 0.3;
  RandomScheduler scheduler;
  std::vector<cbs::workload::Document> batch;
  for (int i = 1; i <= 400; ++i) {
    batch.push_back(make_doc(static_cast<std::uint64_t>(i), 20.0));
  }
  auto ctx = f.context();
  const auto decisions = scheduler.schedule_batch(batch, ctx);
  std::size_t bursted = 0;
  for (const auto& d : decisions) {
    if (d.placement == Placement::kExternal) ++bursted;
  }
  EXPECT_NEAR(static_cast<double>(bursted) / 400.0, 0.3, 0.07);
}

TEST(RandomSchedulerTest, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    SchedulerFixture f;
    f.params.random_seed = seed;
    RandomScheduler scheduler;
    std::vector<cbs::workload::Document> batch;
    for (int i = 1; i <= 50; ++i) {
      batch.push_back(make_doc(static_cast<std::uint64_t>(i), 20.0));
    }
    auto ctx = f.context();
    std::vector<Placement> placements;
    for (const auto& d : scheduler.schedule_batch(batch, ctx)) {
      placements.push_back(d.placement);
    }
    return placements;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(RandomSchedulerTest, ZeroProbabilityIsIcOnly) {
  SchedulerFixture f;
  f.params.random_burst_probability = 0.0;
  RandomScheduler scheduler;
  auto ctx = f.context();
  for (const auto& d :
       scheduler.schedule_batch({make_doc(1, 20.0), make_doc(2, 250.0)}, ctx)) {
    EXPECT_EQ(d.placement, Placement::kInternal);
  }
}

// ---- config ---------------------------------------------------------------

TEST(ConfigTest, SchedulerNames) {
  EXPECT_EQ(to_string(SchedulerKind::kIcOnly), "ic-only");
  EXPECT_EQ(to_string(SchedulerKind::kGreedy), "greedy");
  EXPECT_EQ(to_string(SchedulerKind::kOrderPreserving), "order-preserving");
  EXPECT_EQ(to_string(SchedulerKind::kBandwidthSplit), "op-bandwidth-split");
  EXPECT_EQ(to_string(SchedulerKind::kRandom), "random");
}

TEST(ConfigTest, HighVariationRaisesSigma) {
  const auto normal = default_controller_config(false);
  const auto high = default_controller_config(true);
  EXPECT_GT(high.uplink.noise_sigma, normal.uplink.noise_sigma);
  EXPECT_DOUBLE_EQ(normal.uplink.base_rate, high.uplink.base_rate);
}

TEST(ConfigTest, FactoryMakesAllSchedulers) {
  for (const auto kind :
       {SchedulerKind::kIcOnly, SchedulerKind::kGreedy,
        SchedulerKind::kOrderPreserving, SchedulerKind::kBandwidthSplit,
        SchedulerKind::kRandom}) {
    const auto scheduler = make_scheduler(kind);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->name(), to_string(kind));
  }
}

}  // namespace
