// Property-style parameterized sweeps over randomized inputs: invariants
// that must hold for every seed, not just the golden one.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "net/link.hpp"
#include "simcore/simulation.hpp"
#include "sla/metrics.hpp"
#include "sla/oo_metric.hpp"
#include "stats/summary.hpp"

namespace {

using namespace cbs;
using cbs::sim::RngStream;
using cbs::sim::Simulation;

// ---- Link conservation under random storms --------------------------------

class LinkStormTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinkStormTest, ConservesBytesUnderRandomTraffic) {
  Simulation sim;
  net::LinkConfig cfg;
  cfg.base_rate = 0.9e6;
  cfg.per_connection_cap = 0.3e6;
  cfg.noise_sigma = 0.4;
  cfg.noise_rho = 0.85;
  cfg.noise_step = 15.0;
  cfg.profile = net::DiurnalProfile::business_pipe();
  cfg.setup_latency = 0.5;
  net::Link link(sim, cfg, RngStream(GetParam()).substream("link"));

  RngStream rng(GetParam());
  double submitted = 0.0;
  std::size_t count = 0;
  for (int i = 0; i < 60; ++i) {
    const double bytes = rng.uniform(0.05e6, 40.0e6);
    const double when = rng.uniform(0.0, 2000.0);
    const int threads = static_cast<int>(rng.uniform_int(1, 8));
    submitted += bytes;
    ++count;
    sim.schedule_at(when,
                    [&link, bytes, threads] { link.submit(bytes, threads, nullptr); });
  }
  sim.run();
  EXPECT_NEAR(link.total_bytes_delivered(), submitted,
              1e-6 * submitted + 1.0);
  EXPECT_EQ(link.completed().size(), count);
  EXPECT_EQ(link.active_transfers(), 0u);
  // Completion timestamps are causal.
  for (const auto& rec : link.completed()) {
    EXPECT_GE(rec.started, rec.requested);
    EXPECT_GT(rec.completed, rec.started);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkStormTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---- OO metric properties ---------------------------------------------------

class OoPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<sla::JobOutcome> random_outcomes(std::uint64_t seed, std::size_t n) {
  RngStream rng(seed);
  std::vector<sla::JobOutcome> outcomes;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sla::JobOutcome o;
    o.seq_id = i;
    o.doc_id = i;
    o.completed = rng.uniform(1.0, 1000.0);
    o.output_mb = rng.uniform(1.0, 300.0);
    o.input_mb = o.output_mb;
    o.true_service_seconds = rng.uniform(1.0, 100.0);
    outcomes.push_back(o);
  }
  return outcomes;
}

TEST_P(OoPropertyTest, OrderedMbMonotoneInToleranceAndTime) {
  const auto outcomes = random_outcomes(GetParam(), 60);
  sla::OoMetricCalculator oo(outcomes);
  double prev_time_value = -1.0;
  for (double t = 0.0; t <= 1100.0; t += 50.0) {
    double prev_tol_value = -1.0;
    for (std::uint64_t tol = 0; tol <= 8; tol += 2) {
      const auto s = oo.sample_at(t, tol);
      EXPECT_GE(s.ordered_mb, prev_tol_value);
      prev_tol_value = s.ordered_mb;
    }
    const double strict = oo.sample_at(t, 0).ordered_mb;
    EXPECT_GE(strict, prev_time_value);
    prev_time_value = strict;
  }
}

TEST_P(OoPropertyTest, MaxInOrderNeverExceedsCompletedCount) {
  const auto outcomes = random_outcomes(GetParam(), 60);
  sla::OoMetricCalculator oo(outcomes);
  for (double t = 0.0; t <= 1100.0; t += 100.0) {
    const auto s = oo.sample_at(t, 0);
    // With zero tolerance, m_t equals the count of the completed prefix.
    EXPECT_LE(s.max_in_order, s.completed_count);
  }
}

TEST_P(OoPropertyTest, InversionsBoundedByPairCount) {
  const auto outcomes = random_outcomes(GetParam(), 60);
  const auto stats = sla::compute_orderliness(outcomes, 100.0);
  EXPECT_LE(stats.inversions, 60u * 59u / 2u);
  EXPECT_GE(stats.max_frontier_push, stats.p95_frontier_push * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OoPropertyTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// ---- scheduler-level properties over seeds ----------------------------------

class ScenarioPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioPropertyTest, OpSlackKeepsBurstsOffTheCriticalPath) {
  // With perfect estimates and a noise-free world, the Order Preserving
  // slack rule guarantees bursted jobs are never the reason the run ends
  // late: the very last completion belongs to an internal job (or the run
  // bursts nothing).
  harness::Scenario s = harness::make_scenario(
      core::SchedulerKind::kOrderPreserving,
      workload::SizeBucket::kLargeBiased, GetParam());
  s.num_batches = 3;
  s.estimator = core::EstimatorKind::kOracle;
  s.truth.noise_sigma = 0.0;
  auto cfg = core::default_controller_config(false);
  cfg.uplink.noise_sigma = 0.0;
  cfg.downlink.noise_sigma = 0.0;
  cfg.uplink.profile = net::DiurnalProfile::flat();
  cfg.downlink.profile = net::DiurnalProfile::flat();
  s.config_override = cfg;

  const auto result = harness::run_scenario(s);
  const sla::JobOutcome* last = &result.outcomes.front();
  std::size_t bursted = 0;
  for (const auto& o : result.outcomes) {
    if (o.completed > last->completed) last = &o;
    if (o.bursted()) ++bursted;
  }
  if (bursted > 0) {
    EXPECT_EQ(last->placement, sla::Placement::kInternal)
        << "bursted job " << last->seq_id << " set the makespan";
  }
}

TEST_P(ScenarioPropertyTest, BurstRatiosAndUtilizationsInRange) {
  harness::Scenario s = harness::make_scenario(
      core::SchedulerKind::kBandwidthSplit, workload::SizeBucket::kUniform,
      GetParam());
  s.num_batches = 3;
  const auto result = harness::run_scenario(s);
  EXPECT_GE(result.report.burst_ratio, 0.0);
  EXPECT_LE(result.report.burst_ratio, 1.0);
  EXPECT_LE(result.report.ic_utilization, 1.0 + 1e-9);
  EXPECT_LE(result.report.ec_utilization, 1.0 + 1e-9);
  EXPECT_GT(result.report.speedup, 1.0);
}

TEST_P(ScenarioPropertyTest, MakespanBoundedBySerialAndIdealParallel) {
  harness::Scenario s = harness::make_scenario(
      core::SchedulerKind::kGreedy, workload::SizeBucket::kUniform, GetParam());
  s.num_batches = 3;
  const auto result = harness::run_scenario(s);
  const double t_seq = sla::sequential_time(result.outcomes);
  EXPECT_GE(result.report.makespan_seconds, t_seq / 10.0);  // 8 IC + 2 EC
  // Upper bound: serial execution plus the arrival horizon plus transfer
  // slack; a gross bound, but catches runaway scheduling bugs.
  EXPECT_LE(result.report.makespan_seconds, t_seq + 3.0 * 180.0 + 4000.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioPropertyTest,
                         ::testing::Values(101u, 102u, 103u, 104u));

}  // namespace
