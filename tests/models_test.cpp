#include <gtest/gtest.h>

#include <cmath>

#include "models/estimator.hpp"
#include "models/feature_vector.hpp"
#include "models/qrsm.hpp"
#include "simcore/rng.hpp"
#include "workload/generator.hpp"
#include "workload/ground_truth.hpp"

namespace {

using namespace cbs::models;
using cbs::sim::RngStream;
using cbs::workload::Document;
using cbs::workload::DocumentFeatures;
using cbs::workload::GroundTruthModel;
using cbs::workload::WorkloadGenerator;

// ---- feature extraction ---------------------------------------------------

TEST(FeatureVectorTest, ExtractRawOrderMatchesNames) {
  DocumentFeatures f;
  f.size_mb = 1.0;
  f.pages = 2;
  f.num_images = 3;
  f.avg_image_mb = 4.0;
  f.resolution_dpi = 5.0;
  f.color_fraction = 6.0;
  f.text_ratio = 7.0;
  f.coverage = 8.0;
  const auto raw = extract_raw(f);
  for (std::size_t i = 0; i < kNumRawFeatures; ++i) {
    EXPECT_DOUBLE_EQ(raw[i], static_cast<double>(i + 1));
  }
  EXPECT_EQ(feature_names().size(), kNumRawFeatures);
}

TEST(FeatureVectorTest, QuadraticDimFormula) {
  EXPECT_EQ(quadratic_dim(2), 1u + 2u + 1u + 2u);
  EXPECT_EQ(quadratic_dim(8), 1u + 8u + 28u + 8u);
}

TEST(FeatureVectorTest, QuadraticExpandLayout) {
  std::array<double, kNumRawFeatures> x{};
  for (std::size_t i = 0; i < kNumRawFeatures; ++i) {
    x[i] = static_cast<double>(i + 1);
  }
  const auto row = quadratic_expand(x);
  ASSERT_EQ(row.size(), quadratic_dim(kNumRawFeatures));
  EXPECT_DOUBLE_EQ(row[0], 1.0);                    // intercept
  EXPECT_DOUBLE_EQ(row[1], 1.0);                    // x1
  EXPECT_DOUBLE_EQ(row[8], 8.0);                    // x8
  EXPECT_DOUBLE_EQ(row[9], 1.0 * 2.0);              // x1*x2
  EXPECT_DOUBLE_EQ(row[10], 1.0 * 3.0);             // x1*x3
  EXPECT_DOUBLE_EQ(row.back(), 8.0 * 8.0);          // x8^2
  EXPECT_DOUBLE_EQ(row[row.size() - kNumRawFeatures], 1.0);  // x1^2
}

TEST(FeatureVectorTest, ScalerStandardizes) {
  std::vector<std::array<double, kNumRawFeatures>> rows;
  for (int i = 0; i < 100; ++i) {
    std::array<double, kNumRawFeatures> r{};
    r[0] = static_cast<double>(i);  // varies
    r[1] = 5.0;                     // constant
    rows.push_back(r);
  }
  const auto scaler = FeatureScaler::fit(rows);
  EXPECT_NEAR(scaler.mean[0], 49.5, 1e-9);
  EXPECT_DOUBLE_EQ(scaler.scale[1], 1.0);  // constant features get scale 1
  const auto z = scaler.apply(rows[0]);
  EXPECT_LT(z[0], 0.0);  // below the mean
  EXPECT_DOUBLE_EQ(z[1], 0.0);
}

// ---- QrsmModel --------------------------------------------------------------

GroundTruthModel noiseless_truth() {
  GroundTruthModel::Config cfg;
  cfg.noise_sigma = 0.0;
  return GroundTruthModel(cfg, RngStream(1));
}

TEST(QrsmTest, RecoversNoiselessQuadraticLawExactly) {
  // Restricted to a single job class (constant type multiplier), the
  // ground-truth law is nearly quadratic in the raw features (one trilinear
  // term — size x resolution x color — is outside the model class), so a
  // QRSM fit on noiseless labels must be near-perfect.
  const auto truth = noiseless_truth();
  WorkloadGenerator gen({}, truth, RngStream(2));
  std::vector<DocumentFeatures> feats;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    Document d = gen.next();
    d.features.type = cbs::workload::JobType::kMailCampaign;
    feats.push_back(d.features);
    y.push_back(truth.expected_seconds(d.features));
  }
  QrsmModel model({.ridge_lambda = 1e-8});
  model.fit(feats, y);
  ASSERT_TRUE(model.is_fitted());
  EXPECT_GT(model.last_fit()->r_squared, 0.995);

  WorkloadGenerator held_out({}, truth, RngStream(3));
  for (int i = 0; i < 100; ++i) {
    Document d = held_out.next();
    d.features.type = cbs::workload::JobType::kMailCampaign;
    const double actual = truth.expected_seconds(d.features);
    EXPECT_NEAR(model.predict(d.features), actual, 0.10 * actual + 6.0);
  }
}

TEST(QrsmTest, UnfittedFallsBackToBufferMean) {
  QrsmModel model;
  DocumentFeatures f;
  f.size_mb = 10.0;
  EXPECT_DOUBLE_EQ(model.predict(f), 1.0);  // min_prediction floor
  model.observe(f, 100.0);
  model.observe(f, 200.0);
  EXPECT_DOUBLE_EQ(model.predict(f), 150.0);
}

TEST(QrsmTest, PredictionClampedToFloor) {
  const auto truth = noiseless_truth();
  WorkloadGenerator gen({}, truth, RngStream(4));
  std::vector<DocumentFeatures> feats;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    feats.push_back(gen.next().features);
    y.push_back(1.5);  // constant tiny label
  }
  QrsmModel model({.min_prediction_seconds = 5.0});
  model.fit(feats, y);
  DocumentFeatures f = feats[0];
  EXPECT_GE(model.predict(f), 5.0);
}

TEST(QrsmTest, OnlineRefitHappensAtInterval) {
  const auto truth = noiseless_truth();
  WorkloadGenerator gen({}, truth, RngStream(5));
  QrsmModel model({.refit_interval = 16});
  // Below the data requirement: no fit yet, regardless of interval.
  for (int i = 0; i < 32; ++i) {
    const Document d = gen.next();
    model.observe(d.features, truth.expected_seconds(d.features));
  }
  EXPECT_FALSE(model.is_fitted());
  for (int i = 0; i < 64; ++i) {
    const Document d = gen.next();
    model.observe(d.features, truth.expected_seconds(d.features));
  }
  EXPECT_TRUE(model.is_fitted());
}

TEST(QrsmTest, WindowBoundsBuffer) {
  const auto truth = noiseless_truth();
  WorkloadGenerator gen({}, truth, RngStream(6));
  QrsmModel model({.refit_interval = 1000000, .window = 50});
  for (int i = 0; i < 200; ++i) {
    const Document d = gen.next();
    model.observe(d.features, 1.0);
  }
  EXPECT_EQ(model.buffered(), 50u);
  EXPECT_EQ(model.observations(), 200u);
}

TEST(QrsmTest, AdaptsToRegimeChange) {
  // Labels double mid-stream; the windowed online fit must follow.
  const auto truth = noiseless_truth();
  WorkloadGenerator gen({}, truth, RngStream(7));
  QrsmModel model({.refit_interval = 32, .window = 256});
  std::vector<Document> probe_docs;
  for (int i = 0; i < 20; ++i) probe_docs.push_back(gen.next());

  for (int i = 0; i < 300; ++i) {
    const Document d = gen.next();
    model.observe(d.features, truth.expected_seconds(d.features));
  }
  const double before = model.predict(probe_docs[0].features);
  for (int i = 0; i < 400; ++i) {
    const Document d = gen.next();
    model.observe(d.features, 2.0 * truth.expected_seconds(d.features));
  }
  const double after = model.predict(probe_docs[0].features);
  EXPECT_GT(after, 1.5 * before);
}

// ---- estimators --------------------------------------------------------------

TEST(EstimatorTest, OracleReturnsExpectation) {
  const auto truth = noiseless_truth();
  OracleEstimator oracle(truth);
  Document d;
  d.features.size_mb = 120.0;
  EXPECT_DOUBLE_EQ(oracle.estimate_seconds(d),
                   truth.expected_seconds(d.features));
}

TEST(EstimatorTest, BiasedEstimatorScales) {
  const auto truth = noiseless_truth();
  auto biased = BiasedEstimator(std::make_unique<OracleEstimator>(truth), 1.5);
  Document d;
  d.features.size_mb = 100.0;
  EXPECT_DOUBLE_EQ(biased.estimate_seconds(d),
                   1.5 * truth.expected_seconds(d.features));
}

TEST(EstimatorTest, QrsmEstimatorLearnsFromObserve) {
  const auto truth = noiseless_truth();
  WorkloadGenerator gen({}, truth, RngStream(8));
  QrsmEstimator estimator({.refit_interval = 32});
  for (int i = 0; i < 200; ++i) {
    const Document d = gen.next();
    estimator.observe(d, truth.expected_seconds(d.features));
  }
  EXPECT_TRUE(estimator.model().is_fitted());
  const Document probe = gen.next();
  const double actual = truth.expected_seconds(probe.features);
  EXPECT_NEAR(estimator.estimate_seconds(probe), actual, 0.1 * actual + 1.0);
}

}  // namespace
