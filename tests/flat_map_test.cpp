// Edge cases of cbs::util::FlatMap that the static-analysis audit leans
// on (DESIGN.md §11): the sorted-vector map replaced std::map in the
// controllers' job tables, and its deliberate contract difference —
// iterators AND references invalidated by every insert/erase — is policed
// by convention. These tests pin the behaviors that convention assumes.

#include "util/flat_map.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using cbs::util::FlatMap;

TEST(FlatMapTest, MonotonicAppendKeepsOrderAndLookups) {
  FlatMap<std::uint64_t, double> m;
  for (std::uint64_t k = 1; k <= 1000; ++k) m.emplace(k, static_cast<double>(k) * 0.5);
  EXPECT_EQ(m.size(), 1000u);
  std::uint64_t prev = 0;
  for (const auto& [k, v] : m) {
    EXPECT_LT(prev, k);
    EXPECT_DOUBLE_EQ(v, static_cast<double>(k) * 0.5);
    prev = k;
  }
  EXPECT_TRUE(m.contains(1));
  EXPECT_TRUE(m.contains(1000));
  EXPECT_FALSE(m.contains(1001));
}

TEST(FlatMapTest, NonMonotonicInsertEndsSorted) {
  // Burst retraction re-admits jobs with *older* sequence ids than the
  // table's current max — the out-of-order O(n) shift path.
  FlatMap<int, std::string> m;
  for (int k : {50, 10, 40, 20, 30, 25, 5, 45}) {
    m.emplace(k, "j" + std::to_string(k));
  }
  std::vector<int> keys;
  for (const auto& [k, v] : m) {
    keys.push_back(k);
    EXPECT_EQ(v, "j" + std::to_string(k));
  }
  EXPECT_EQ(keys, (std::vector<int>{5, 10, 20, 25, 30, 40, 45, 50}));
}

TEST(FlatMapTest, EraseDuringIterationViaReturnedIterator) {
  // The ONLY sanctioned erase-while-iterating pattern: continue from the
  // iterator erase() returns. Holding `it` across the erase is the misuse
  // the call-site audit looks for.
  FlatMap<int, int> m;
  for (int k = 0; k < 10; ++k) m.emplace(k, k * k);
  for (auto it = m.begin(); it != m.end();) {
    if (it->first % 2 == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(m.size(), 5u);
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k % 2, 1);
    EXPECT_EQ(v, k * k);
  }
}

TEST(FlatMapTest, InsertBelowShiftsLaterEntries) {
  // Documents WHY references must be re-found after any insert: an
  // out-of-order insert shifts every later element one slot right, so a
  // remembered position silently points at a different entry.
  FlatMap<int, int> m;
  m.emplace(10, 100);
  m.emplace(20, 200);
  const auto pos = static_cast<std::size_t>(m.find(20) - m.begin());
  m.emplace(15, 150);  // shifts {20, 200} right
  EXPECT_NE((m.begin() + static_cast<std::ptrdiff_t>(pos))->first, 20);
  // The protocol — re-find after mutation — always recovers the entry.
  ASSERT_NE(m.find(20), m.end());
  EXPECT_EQ(m.find(20)->second, 200);
}

TEST(FlatMapTest, OperatorBracketInsertsDefaultAndFindsExisting) {
  FlatMap<int, int> m;
  m[7] = 70;
  EXPECT_EQ(m[7], 70);
  EXPECT_EQ(m[3], 0);  // default-constructed on first touch
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.begin()->first, 3);  // inserted below 7, still sorted
}

TEST(FlatMapTest, EmplaceExistingKeyDoesNotOverwrite) {
  FlatMap<int, int> m;
  auto [it1, inserted1] = m.emplace(5, 50);
  EXPECT_TRUE(inserted1);
  auto [it2, inserted2] = m.emplace(5, 999);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, 50);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, EraseByKeyReportsCount) {
  FlatMap<int, int> m;
  m.emplace(1, 10);
  m.emplace(2, 20);
  EXPECT_EQ(m.erase(1), 1u);
  EXPECT_EQ(m.erase(1), 0u);
  EXPECT_EQ(m.erase(99), 0u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.contains(2));
}

TEST(FlatMapTest, ClearAndReserveRoundTrip) {
  FlatMap<int, int> m;
  m.reserve(64);
  for (int k = 0; k < 32; ++k) m.emplace(k, k);
  EXPECT_FALSE(m.empty());
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(0), m.end());
}

}  // namespace
