// RngStream::State round-trip: saving the 256-bit state and restoring it
// must replay the exact draw sequence through every distribution the
// simulator consumes. This is the primitive the snapshot/fork machinery
// (simcore/snapshot.hpp, harness/world.hpp) is built on — if any sampler
// kept hidden state outside the RngStream (a cached Box–Muller spare, a
// static, thread-local scratch), forks would silently diverge from their
// parents and the fork-equivalence goldens would be unexplainable.
//
// Coverage maps to the actual call sites:
//   src/workload/generator.cpp   — bounded_pareto, uniform, triangular,
//                                  discrete (job-type weights)
//   src/workload/arrival.cpp     — poisson (batch sizes)
//   src/workload/ground_truth.cpp— lognormal, raw next()
//   src/simcore/fault_plan.cpp   — exponential interarrivals via
//                                  -mtbf*log1p(-next_double()), substreams
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "simcore/rng.hpp"
#include "stats/distributions.hpp"

namespace {

using cbs::sim::RngStream;

constexpr int kDraws = 256;

// Saves the state, produces a reference sequence via `draw`, restores, and
// requires the replayed sequence to be identical (exact ==, not near).
template <typename DrawFn>
void expect_replays_exactly(RngStream& rng, DrawFn draw) {
  const RngStream::State saved = rng.state();
  std::vector<decltype(draw(rng))> reference;
  reference.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) reference.push_back(draw(rng));

  rng.set_state(saved);
  for (int i = 0; i < kDraws; ++i) {
    EXPECT_EQ(draw(rng), reference[static_cast<std::size_t>(i)])
        << "draw " << i << " diverged after state restore";
  }
}

TEST(RngRoundTripTest, RawBitsReplayExactly) {
  RngStream rng(0xfeedface);
  expect_replays_exactly(rng, [](RngStream& r) { return r.next(); });
}

TEST(RngRoundTripTest, UniformDoublesReplayExactly) {
  RngStream rng(7);
  expect_replays_exactly(rng, [](RngStream& r) { return r.next_double(); });
  expect_replays_exactly(rng, [](RngStream& r) { return r.uniform(0.4, 1.2); });
  expect_replays_exactly(rng,
                         [](RngStream& r) { return r.uniform_int(3, 4096); });
}

TEST(RngRoundTripTest, ExponentialReplaysExactly) {
  // fault_plan.cpp draws MTBF interarrivals as -mtbf*log1p(-u); both the
  // library sampler and the inlined formula must replay bit-for-bit.
  RngStream rng(11);
  expect_replays_exactly(
      rng, [](RngStream& r) { return cbs::stats::sample_exponential(r, 0.01); });
  expect_replays_exactly(rng, [](RngStream& r) {
    return -3000.0 * std::log1p(-r.next_double());
  });
}

TEST(RngRoundTripTest, PoissonReplaysExactlyOnBothBranches) {
  // arrival.cpp batch sizes: Knuth multiplication for small means, normal
  // approximation for mean > 60 — the branch must not leak hidden state.
  RngStream rng(13);
  expect_replays_exactly(
      rng, [](RngStream& r) { return cbs::stats::sample_poisson(r, 15.0); });
  expect_replays_exactly(
      rng, [](RngStream& r) { return cbs::stats::sample_poisson(r, 200.0); });
}

TEST(RngRoundTripTest, NormalFamilyReplaysExactly) {
  // Box–Muller implementations often cache the spare deviate; ours must
  // derive everything from the stream so a restore replays exactly.
  RngStream rng(17);
  expect_replays_exactly(
      rng, [](RngStream& r) { return cbs::stats::sample_standard_normal(r); });
  expect_replays_exactly(
      rng, [](RngStream& r) { return cbs::stats::sample_normal(r, 5.0, 2.0); });
  expect_replays_exactly(rng, [](RngStream& r) {
    return cbs::stats::sample_lognormal(r, 1.2, 0.4);
  });
}

TEST(RngRoundTripTest, SizeLawsReplayExactly) {
  RngStream rng(19);
  expect_replays_exactly(rng, [](RngStream& r) {
    return cbs::stats::sample_bounded_pareto(r, 1.5, 1.0, 512.0);
  });
  expect_replays_exactly(rng, [](RngStream& r) {
    return cbs::stats::sample_triangular(r, 150.0, 300.0, 600.0);
  });
}

TEST(RngRoundTripTest, DiscreteReplaysExactly) {
  const std::vector<double> weights{0.25, 0.10, 0.15, 0.30, 0.05, 0.15};
  RngStream rng(23);
  expect_replays_exactly(rng, [&](RngStream& r) {
    return cbs::stats::sample_discrete(r, weights);
  });
}

TEST(RngRoundTripTest, InterleavedDistributionsReplayExactly) {
  // The workload generator interleaves several samplers per document; the
  // combined transcript must replay as one sequence.
  RngStream rng(29);
  const RngStream::State saved = rng.state();
  auto transcript = [](RngStream& r) {
    std::vector<double> out;
    for (int i = 0; i < 64; ++i) {
      out.push_back(cbs::stats::sample_bounded_pareto(r, 1.5, 1.0, 512.0));
      out.push_back(static_cast<double>(cbs::stats::sample_poisson(r, 15.0)));
      out.push_back(cbs::stats::sample_triangular(r, 0.0, 0.5, 1.0));
      out.push_back(cbs::stats::sample_lognormal(r, 0.8, 0.3));
      out.push_back(r.uniform(0.2, 0.6));
    }
    return out;
  };
  const std::vector<double> reference = transcript(rng);
  rng.set_state(saved);
  EXPECT_EQ(transcript(rng), reference);
}

TEST(RngRoundTripTest, MidSequenceRestoreReplaysTheTail) {
  RngStream rng(31);
  for (int i = 0; i < 100; ++i) (void)rng.next();  // burn a prefix
  const RngStream::State mid = rng.state();
  std::vector<double> tail;
  for (int i = 0; i < kDraws; ++i)
    tail.push_back(cbs::stats::sample_exponential(rng, 1.0 / 900.0));
  rng.set_state(mid);
  for (int i = 0; i < kDraws; ++i) {
    EXPECT_EQ(cbs::stats::sample_exponential(rng, 1.0 / 900.0),
              tail[static_cast<std::size_t>(i)]);
  }
}

TEST(RngRoundTripTest, SubstreamsAreAFunctionOfStateOnly) {
  // fault_plan.cpp derives per-cluster substreams; after a restore the same
  // derivations must yield identical children (substream() is const and
  // pure, so this follows from state round-tripping — pin it regardless).
  RngStream rng(37);
  for (int i = 0; i < 5; ++i) (void)rng.next();
  const RngStream::State saved = rng.state();
  RngStream child_a = rng.substream("ic");
  RngStream child_b = rng.substream(std::uint64_t{42});
  const std::uint64_t a0 = child_a.next();
  const std::uint64_t b0 = child_b.next();

  rng.set_state(saved);
  RngStream child_a2 = rng.substream("ic");
  RngStream child_b2 = rng.substream(std::uint64_t{42});
  EXPECT_EQ(child_a2.next(), a0);
  EXPECT_EQ(child_b2.next(), b0);
  EXPECT_EQ(rng.state(), saved) << "substream derivation must not advance the parent";
}

TEST(RngRoundTripTest, StateComparesEqualAcrossCopies) {
  RngStream rng(41);
  RngStream copy = rng;  // value semantics: a copy IS a snapshot
  EXPECT_EQ(copy, rng);
  const std::uint64_t from_copy = copy.next();
  EXPECT_EQ(rng.next(), from_copy);
  EXPECT_EQ(copy, rng);
}

}  // namespace
