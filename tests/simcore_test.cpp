#include <gtest/gtest.h>

#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"

namespace {

using cbs::sim::EventId;
using cbs::sim::EventQueue;
using cbs::sim::RngStream;
using cbs::sim::Simulation;

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, CancelRemovesPendingEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceIsNoOp) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelFiredEventIsNoOp) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, CancelMiddleEventSkipsIt) {
  EventQueue q;
  std::vector<int> fired;
  q.push(1.0, [&] { fired.push_back(1); });
  const EventId id = q.push(2.0, [&] { fired.push_back(2); });
  q.push(3.0, [&] { fired.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(SimulationTest, ClockAdvancesMonotonically) {
  Simulation sim;
  std::vector<double> times;
  sim.schedule_at(5.0, [&] { times.push_back(sim.now()); });
  sim.schedule_at(1.0, [&] { times.push_back(sim.now()); });
  sim.schedule_at(3.0, [&] { times.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulationTest, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, RunUntilFiresEventsExactlyAtDeadline) {
  Simulation sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, StopHaltsTheLoop) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulationTest, CancelledEventDoesNotFire) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.schedule_at(0.5, [&] { sim.cancel(id); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CountsProcessedEvents) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(static_cast<double>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(EventQueueTest, CancelInvalidIdIsNoOp) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{0}));
  EXPECT_FALSE(q.cancel(EventId{9999}));
  q.push(1.0, [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.total_scheduled(), 2u);
}

// Regression tests for the slab/generation engine: a stale EventId (fired
// or cancelled) must never act on a later event that reuses its slot.

TEST(EventQueueTest, CancelledIdCannotResurrectAfterSlotReuse) {
  EventQueue q;
  const EventId stale = q.push(1.0, [] {});
  ASSERT_TRUE(q.cancel(stale));
  // Force slot reuse: drain the queue so the cancelled record is released,
  // then schedule a fresh event (which grabs the freed slot).
  q.push(2.0, [] {});
  (void)q.pop();
  bool fired = false;
  q.push(3.0, [&] { fired = true; });
  EXPECT_FALSE(q.cancel(stale));  // stale generation: must not match
  ASSERT_EQ(q.size(), 1u);
  auto [time, cb] = q.pop();
  EXPECT_EQ(time, 3.0);
  cb();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, FiredIdCannotCancelSlotSuccessor) {
  EventQueue q;
  const EventId fired_id = q.push(1.0, [] {});
  (void)q.pop();  // fires; the slot returns to the free list
  q.push(2.0, [] {});  // reuses the slot
  EXPECT_FALSE(q.cancel(fired_id));
  EXPECT_EQ(q.size(), 1u);  // the successor is untouched
}

TEST(EventQueueTest, CancelHeavyChurnStaysBoundedAndOrdered) {
  // Interleave schedule/cancel so tombstones build up and compaction runs;
  // the survivors must still pop in exact (time, seq) order.
  EventQueue q;
  std::vector<EventId> doomed;
  std::vector<double> expected_times;
  for (int i = 0; i < 2000; ++i) {
    const double t = static_cast<double>(i);
    if (i % 4 == 0) {
      expected_times.push_back(t);
      q.push(t, [] {});
    } else {
      doomed.push_back(q.push(t, [] {}));
    }
  }
  for (const EventId id : doomed) ASSERT_TRUE(q.cancel(id));
  // Compaction must have kept tombstones from dominating the heap.
  EXPECT_LE(q.tombstones(), q.size() + 64);
  std::vector<double> popped;
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, expected_times);
}

TEST(SimulationTest, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Simulation sim;
  sim.schedule_at(1.0, [] {});
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // idle gap still advances the clock
}

TEST(RngStreamTest, DeterministicForSameSeed) {
  RngStream a(123);
  RngStream b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngStreamTest, DifferentSeedsDiffer) {
  RngStream a(1);
  RngStream b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngStreamTest, NamedSubstreamsAreIndependentAndStable) {
  RngStream root(7);
  RngStream s1 = root.substream("alpha");
  RngStream s2 = root.substream("beta");
  RngStream s1_again = root.substream("alpha");
  EXPECT_EQ(s1.next(), s1_again.next());
  EXPECT_NE(s1.next(), s2.next());
}

TEST(RngStreamTest, SubstreamDoesNotAdvanceParent) {
  RngStream a(99);
  RngStream b(99);
  (void)a.substream("x");
  (void)a.substream(42u);
  EXPECT_EQ(a.next(), b.next());
}

TEST(RngStreamTest, NextDoubleInUnitInterval) {
  RngStream r(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngStreamTest, UniformIntStaysInBounds) {
  RngStream r(5);
  for (int i = 0; i < 1000; ++i) {
    const auto x = r.uniform_int(10, 20);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
  }
}

TEST(RngStreamTest, UniformIntCoversRange) {
  RngStream r(5);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[r.uniform_int(0, 4)];
  for (int count : seen) EXPECT_GT(count, 100);
}

}  // namespace
