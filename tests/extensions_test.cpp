// Tests for the paper's future-work features implemented by this library:
// elastic clusters + the EC scaling policy, per-class QRSM surfaces,
// position-aware chunking, and the multi-external-cloud controller.
#include <gtest/gtest.h>

#include "compute/cluster.hpp"
#include "core/controller.hpp"
#include "core/multi_cloud.hpp"
#include "core/order_preserving_scheduler.hpp"
#include "models/per_class_qrsm.hpp"
#include "simcore/simulation.hpp"
#include "sla/metrics.hpp"
#include "workload/generator.hpp"

namespace {

using namespace cbs;
using cbs::sim::RngStream;
using cbs::sim::Simulation;

// ---- elastic Cluster -------------------------------------------------------

TEST(ElasticClusterTest, AddMachineIncreasesParallelism) {
  Simulation sim;
  compute::Cluster cluster(sim, "c", 1);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    cluster.submit(10.0, 0, [&](const compute::TaskRecord& rec) {
      done.push_back(rec.completed);
    });
  }
  cluster.add_machine();
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Second task starts immediately on the new machine.
  EXPECT_DOUBLE_EQ(done[0], 10.0);
  EXPECT_DOUBLE_EQ(done[1], 10.0);
  EXPECT_EQ(cluster.machine_count(), 2u);
}

TEST(ElasticClusterTest, RemoveIdleMachineImmediately) {
  Simulation sim;
  compute::Cluster cluster(sim, "c", 3);
  EXPECT_TRUE(cluster.remove_machine());
  EXPECT_EQ(cluster.machine_count(), 2u);
}

TEST(ElasticClusterTest, NeverScalesToZero) {
  Simulation sim;
  compute::Cluster cluster(sim, "c", 1);
  EXPECT_FALSE(cluster.remove_machine());
  EXPECT_EQ(cluster.machine_count(), 1u);
}

TEST(ElasticClusterTest, BusyMachineDrainsBeforeRetiring) {
  Simulation sim;
  compute::Cluster cluster(sim, "c", 1);
  double first_done = -1.0;
  cluster.submit(10.0, 0, [&](const compute::TaskRecord& rec) {
    first_done = rec.completed;
  });
  cluster.add_machine();          // now 2 machines
  EXPECT_TRUE(cluster.remove_machine());  // removes the idle new one
  EXPECT_EQ(cluster.machine_count(), 1u);
  EXPECT_TRUE(cluster.remove_machine() == false);  // only the busy one left
  sim.run();
  EXPECT_DOUBLE_EQ(first_done, 10.0);  // running task unaffected
}

TEST(ElasticClusterTest, RetiredSlotIsReused) {
  Simulation sim;
  compute::Cluster cluster(sim, "c", 2);
  EXPECT_TRUE(cluster.remove_machine());
  const std::size_t idx = cluster.add_machine();
  EXPECT_LT(idx, 2u);  // reused a slot instead of growing
  EXPECT_EQ(cluster.machine_count(), 2u);
  EXPECT_EQ(cluster.machine_slots(), 2u);
}

TEST(ElasticClusterTest, ProvisionedMachineSecondsIntegrate) {
  Simulation sim;
  compute::Cluster cluster(sim, "c", 2);
  sim.schedule_at(10.0, [&] { cluster.add_machine(); });
  sim.schedule_at(20.0, [&] { cluster.remove_machine(); });
  sim.schedule_at(30.0, [&] {});
  sim.run();
  // 2 machines for 10s, 3 for 10s, 2 for 10s = 70 machine-seconds.
  EXPECT_DOUBLE_EQ(cluster.provisioned_machine_seconds(), 70.0);
}

// ---- elastic EC policy in the controller -----------------------------------

TEST(ElasticEcTest, ScalesUpUnderBacklogAndDownWhenIdle) {
  Simulation sim;
  workload::GroundTruthModel truth({.noise_sigma = 0.0}, RngStream(1));
  core::ControllerConfig cfg;
  cfg.scheduler = core::SchedulerKind::kGreedy;
  cfg.estimator = core::EstimatorKind::kOracle;
  cfg.probe_interval = 0.0;
  cfg.uplink.base_rate = 5.0e6;
  cfg.uplink.per_connection_cap = 5.0e6;
  cfg.uplink.noise_sigma = 0.0;
  cfg.uplink.setup_latency = 0.0;
  cfg.downlink = cfg.uplink;
  cfg.bandwidth_estimator.prior_rate = 5.0e6;
  cfg.topology.ic_machines = 1;
  cfg.topology.ec_machines = 1;
  cfg.topology.ec_job_overhead_seconds = 0.0;
  cfg.elastic_ec.enabled = true;
  cfg.elastic_ec.max_machines = 4;
  cfg.elastic_ec.check_interval = 20.0;
  cfg.elastic_ec.boot_delay = 10.0;
  cfg.elastic_ec.grow_wait_threshold_seconds = 30.0;
  core::CloudBurstController ctl(sim, cfg, truth, RngStream(2));

  // A single huge batch: IC (1 machine) clogs, greedy bursts heavily, the
  // 1-machine EC queues far beyond the grow threshold.
  workload::Batch batch;
  batch.batch_index = 0;
  for (int i = 0; i < 30; ++i) {
    workload::Document d;
    d.doc_id = static_cast<std::uint64_t>(i + 1);
    d.features.size_mb = 80.0;
    d.features.pages = 80;
    d.output_size_mb = 80.0;
    batch.documents.push_back(d);
  }
  ctl.on_batch(batch);
  sim.run();
  EXPECT_EQ(ctl.outstanding_jobs(), 0u);
  EXPECT_GT(ctl.scale_ups(), 0u);
  // By the end of the run the policy has either kept the extra capacity or
  // (more likely) released it once the queue drained.
  EXPECT_TRUE(ctl.ec_cluster().machine_count() > 1u || ctl.scale_downs() > 0u);
  // The elastic denominator integrates the provisioning level over time.
  EXPECT_GT(ctl.ec_cluster().provisioned_machine_seconds(),
            static_cast<double>(sim.now()));
  EXPECT_EQ(cbs::sla::validate_outcomes(ctl.outcomes()), "");
}

// ---- per-class QRSM -----------------------------------------------------------

TEST(PerClassQrsmTest, FallsBackToPooledWhenClassIsCold) {
  models::PerClassQrsmEstimator estimator;
  workload::Document d;
  d.features.type = workload::JobType::kBook;
  EXPECT_FALSE(estimator.class_active(workload::JobType::kBook));
  EXPECT_GT(estimator.estimate_seconds(d), 0.0);  // pooled floor answers
}

TEST(PerClassQrsmTest, ClassModelActivatesAfterEnoughObservations) {
  workload::GroundTruthModel truth({.noise_sigma = 0.0}, RngStream(3));
  workload::WorkloadGenerator gen({}, truth, RngStream(4));
  models::PerClassQrsmEstimator estimator({.min_class_observations = 60});
  // Stream until at least one class crosses the threshold.
  for (int i = 0; i < 900; ++i) {
    const auto d = gen.next();
    estimator.observe(d, truth.expected_seconds(d.features));
  }
  bool any_active = false;
  for (const auto type : workload::kAllJobTypes) {
    if (estimator.class_active(type)) any_active = true;
  }
  EXPECT_TRUE(any_active);
}

TEST(PerClassQrsmTest, PretrainSeedsAllModels) {
  workload::GroundTruthModel truth({.noise_sigma = 0.0}, RngStream(5));
  workload::WorkloadGenerator gen({}, truth, RngStream(6));
  models::PerClassQrsmEstimator estimator;
  const auto docs = gen.batch(300);
  std::vector<double> y;
  for (const auto& d : docs) y.push_back(truth.expected_seconds(d.features));
  estimator.pretrain(docs, y);
  EXPECT_TRUE(estimator.pooled().is_fitted());
  // Accuracy on held-out docs.
  workload::WorkloadGenerator held({}, truth, RngStream(7));
  for (int i = 0; i < 50; ++i) {
    const auto d = held.next();
    const double actual = truth.expected_seconds(d.features);
    EXPECT_NEAR(estimator.estimate_seconds(d), actual, 0.15 * actual + 8.0);
  }
}

TEST(PerClassQrsmTest, WorksAsControllerEstimator) {
  Simulation sim;
  workload::GroundTruthModel truth({.noise_sigma = 0.0}, RngStream(8));
  auto cfg = core::default_controller_config(false);
  cfg.scheduler = core::SchedulerKind::kOrderPreserving;
  cfg.estimator = core::EstimatorKind::kPerClassQrsm;
  core::CloudBurstController ctl(sim, cfg, truth, RngStream(9));
  workload::WorkloadGenerator gen({}, truth, RngStream(10));
  const auto docs = gen.batch(150);
  std::vector<double> y;
  for (const auto& d : docs) y.push_back(truth.sample_seconds(d.features));
  ctl.pretrain(docs, y);

  workload::Batch batch;
  batch.batch_index = 0;
  batch.documents = gen.batch(10);
  ctl.on_batch(batch);
  sim.run();
  EXPECT_EQ(ctl.outstanding_jobs(), 0u);
}

// ---- position-aware chunking ---------------------------------------------

TEST(PositionAwareChunkingTest, TailJobsGetCoarserChunks) {
  // Two identical huge jobs at head and tail: the head one must split into
  // more chunks than the tail one.
  workload::GroundTruthModel truth({.noise_sigma = 0.0}, RngStream(11));
  models::OracleEstimator estimator(truth);
  net::BandwidthEstimator up({.slots_per_day = 1, .alpha = 0.3, .prior_rate = 1.0e6});
  net::BandwidthEstimator down = up;
  core::BeliefState belief(estimator, up, down, 4, 1.0, 2, 1.0);

  core::SchedulerParams params;
  params.variability_window = 4;
  params.variability_threshold_mb = 30.0;
  params.chunker.target_size_mb = 60.0;
  params.position_aware_chunking = true;
  params.tail_chunk_scale = 4.0;

  std::uint64_t next_seq = 1;
  std::uint64_t next_doc = 1000;
  core::Scheduler::Context ctx{
      .now = 0.0,
      .belief = belief,
      .params = params,
      .truth = truth,
      .next_seq = &next_seq,
      .next_doc_id = &next_doc,
      .ic_machines = 4,
      .upload_class_backlog_bytes = {0.0},
      .download_backlog_bytes = 0.0,
  };

  auto make = [](std::uint64_t id, double mb) {
    workload::Document d;
    d.doc_id = id;
    d.features.size_mb = mb;
    d.features.pages = static_cast<int>(mb);
    d.output_size_mb = mb;
    return d;
  };
  core::OrderPreservingScheduler scheduler;
  const auto decisions = scheduler.schedule_batch(
      {make(1, 240.0), make(2, 5.0), make(3, 5.0), make(4, 5.0), make(5, 5.0),
       make(6, 5.0), make(7, 240.0)},
      ctx);

  int head_chunks = 0;
  int tail_chunks = 0;
  for (const auto& d : decisions) {
    if (d.doc.parent_id == 1) ++head_chunks;
    if (d.doc.parent_id == 7) ++tail_chunks;
  }
  EXPECT_GT(head_chunks, 1);
  EXPECT_GT(head_chunks, tail_chunks);
}

// ---- multi-cloud controller --------------------------------------------------

core::MultiCloudConfig two_site_config() {
  core::MultiCloudConfig cfg;
  cfg.ic.ic_machines = 2;
  cfg.slack_safety_margin = 0.0;
  cfg.probe_interval = 0.0;
  cfg.bandwidth_estimator.prior_rate = 1.0e6;

  core::EcSiteConfig fast;
  fast.name = "ec-fast";
  fast.machines = 2;
  fast.job_overhead_seconds = 0.0;
  fast.uplink.base_rate = 4.0e6;
  fast.uplink.per_connection_cap = 4.0e6;
  fast.uplink.noise_sigma = 0.0;
  fast.uplink.setup_latency = 0.0;
  fast.downlink = fast.uplink;

  core::EcSiteConfig slow = fast;
  slow.name = "ec-slow";
  slow.uplink.base_rate = 0.4e6;
  slow.uplink.per_connection_cap = 0.4e6;
  slow.downlink = slow.uplink;

  cfg.sites = {fast, slow};
  // The schedulers see the true per-site rates via the priors.
  return cfg;
}

workload::Batch big_batch(int n, double size_mb) {
  workload::Batch batch;
  batch.batch_index = 0;
  for (int i = 0; i < n; ++i) {
    workload::Document d;
    d.doc_id = static_cast<std::uint64_t>(i + 1);
    d.features.size_mb = size_mb;
    d.features.pages = static_cast<int>(size_mb);
    d.output_size_mb = size_mb;
    batch.documents.push_back(d);
  }
  return batch;
}

TEST(MultiCloudTest, CompletesAllJobsWithValidOutcomes) {
  Simulation sim;
  workload::GroundTruthModel truth({.noise_sigma = 0.0}, RngStream(12));
  models::OracleEstimator estimator(truth);
  auto cfg = two_site_config();
  // Distinct per-site priors so the believed rates match reality.
  core::MultiCloudController ctl(sim, cfg, truth, estimator, RngStream(13));
  ctl.on_batch(big_batch(20, 60.0));
  sim.run();
  EXPECT_EQ(ctl.outstanding_jobs(), 0u);
  EXPECT_EQ(ctl.outcomes().size(), 20u);
  EXPECT_EQ(cbs::sla::validate_outcomes(ctl.outcomes()), "");
}

TEST(MultiCloudTest, PrefersTheFasterProvider) {
  Simulation sim;
  workload::GroundTruthModel truth({.noise_sigma = 0.0}, RngStream(14));
  models::OracleEstimator estimator(truth);
  core::MultiCloudController ctl(sim, two_site_config(), truth, estimator,
                                 RngStream(15));
  ctl.on_batch(big_batch(24, 60.0));
  sim.run();
  const auto bursts = ctl.bursts_per_site();
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_GT(bursts[0] + bursts[1], 0u);
  EXPECT_GE(bursts[0], bursts[1]);  // the 10x faster pipe must win overall
}

TEST(MultiCloudTest, SpillsToSecondSiteWhenFirstSaturates) {
  Simulation sim;
  workload::GroundTruthModel truth({.noise_sigma = 0.0}, RngStream(16));
  models::OracleEstimator estimator(truth);
  auto cfg = two_site_config();
  // Make both sites equal: load balancing should use both.
  cfg.sites[1] = cfg.sites[0];
  cfg.sites[1].name = "ec-b";
  core::MultiCloudController ctl(sim, cfg, truth, estimator, RngStream(17));
  ctl.on_batch(big_batch(30, 60.0));
  sim.run();
  const auto bursts = ctl.bursts_per_site();
  if (bursts[0] + bursts[1] >= 4) {
    EXPECT_GT(bursts[0], 0u);
    EXPECT_GT(bursts[1], 0u);
  }
}

TEST(MultiCloudTest, CheapestFeasibleSelectionPrefersCheapSite) {
  // Two equally fast sites; one costs half as much. The cost-aware policy
  // must route bursts to the cheap one whenever the deadline is loose.
  Simulation sim;
  workload::GroundTruthModel truth({.noise_sigma = 0.0}, RngStream(30));
  models::OracleEstimator estimator(truth);
  auto cfg = two_site_config();
  cfg.sites[1] = cfg.sites[0];
  cfg.sites[0].name = "pricey";
  cfg.sites[0].price_per_machine_hour = 0.20;
  cfg.sites[1].name = "cheap";
  cfg.sites[1].price_per_machine_hour = 0.05;
  cfg.site_selection = core::SiteSelection::kCheapestFeasible;
  cfg.ticket_policy = {.base_seconds = 1.0e6, .seconds_per_mb = 0.0};  // loose
  core::MultiCloudController ctl(sim, cfg, truth, estimator, RngStream(31));
  ctl.on_batch(big_batch(24, 60.0));
  sim.run();
  const auto bursts = ctl.bursts_per_site();
  EXPECT_GT(bursts[1], bursts[0]);  // cheap site carries the load
}

TEST(MultiCloudTest, TightDeadlineFallsBackToFastest) {
  // Deadline impossible for everyone: the policy must fall back to the
  // fastest site rather than refusing to pick.
  Simulation sim;
  workload::GroundTruthModel truth({.noise_sigma = 0.0}, RngStream(32));
  models::OracleEstimator estimator(truth);
  auto cfg = two_site_config();  // site 0 has the 10x faster pipe
  cfg.sites[0].price_per_machine_hour = 0.20;
  cfg.sites[1].price_per_machine_hour = 0.05;
  cfg.site_selection = core::SiteSelection::kCheapestFeasible;
  cfg.ticket_policy = {.base_seconds = 1.0, .seconds_per_mb = 0.0};  // impossible
  core::MultiCloudController ctl(sim, cfg, truth, estimator, RngStream(33));
  ctl.on_batch(big_batch(24, 60.0));
  sim.run();
  const auto bursts = ctl.bursts_per_site();
  if (bursts[0] + bursts[1] > 0) {
    EXPECT_GE(bursts[0], bursts[1]);  // fastest (site 0) wins the fallback
  }
}

TEST(MultiCloudTest, SurvivesNoisyPathsAndProbes) {
  Simulation sim;
  workload::GroundTruthModel truth({}, RngStream(40));  // noisy runtimes
  models::OracleEstimator estimator(truth);
  auto cfg = two_site_config();
  for (auto& site : cfg.sites) {
    site.uplink.noise_sigma = 0.3;
    site.downlink.noise_sigma = 0.3;
  }
  cfg.probe_interval = 60.0;  // probing enabled on every site
  core::MultiCloudController ctl(sim, cfg, truth, estimator, RngStream(41));
  ctl.on_batch(big_batch(20, 60.0));
  sim.run();
  EXPECT_EQ(ctl.outstanding_jobs(), 0u);
  EXPECT_EQ(cbs::sla::validate_outcomes(ctl.outcomes()), "");
}

TEST(MultiCloudTest, DeterministicReplay) {
  auto run = [] {
    Simulation sim;
    workload::GroundTruthModel truth({}, RngStream(50));
    models::OracleEstimator estimator(truth);
    core::MultiCloudController ctl(sim, two_site_config(), truth, estimator,
                                   RngStream(51));
    ctl.on_batch(big_batch(16, 70.0));
    sim.run();
    std::vector<double> completions;
    for (const auto& o : ctl.outcomes()) completions.push_back(o.completed);
    return completions;
  };
  EXPECT_EQ(run(), run());
}

TEST(MultiCloudTest, SingleSiteDegeneratesToSingleEc) {
  Simulation sim;
  workload::GroundTruthModel truth({.noise_sigma = 0.0}, RngStream(18));
  models::OracleEstimator estimator(truth);
  auto cfg = two_site_config();
  cfg.sites.resize(1);
  core::MultiCloudController ctl(sim, cfg, truth, estimator, RngStream(19));
  ctl.on_batch(big_batch(12, 60.0));
  sim.run();
  EXPECT_EQ(ctl.outstanding_jobs(), 0u);
  EXPECT_EQ(ctl.site_count(), 1u);
}

}  // namespace
