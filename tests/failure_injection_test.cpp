// Failure injection: connection drops on the best-effort Internet path and
// the system's behaviour under them — conservation still holds, every run
// still terminates, and the SLA metrics degrade gracefully rather than
// collapsing.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "net/link.hpp"
#include "simcore/simulation.hpp"

namespace {

using namespace cbs;
using cbs::sim::RngStream;
using cbs::sim::Simulation;

net::LinkConfig flaky_link(double failure_probability) {
  net::LinkConfig cfg;
  cfg.base_rate = 1.0e6;
  cfg.per_connection_cap = 1.0e6;
  cfg.noise_sigma = 0.0;
  cfg.setup_latency = 0.5;
  cfg.failure_probability = failure_probability;
  cfg.max_retries = 3;
  return cfg;
}

TEST(LinkFailureTest, ZeroProbabilityInjectsNothing) {
  Simulation sim;
  net::Link link(sim, flaky_link(0.0), RngStream(1));
  for (int i = 0; i < 20; ++i) link.submit(1.0e6, 1, nullptr);
  sim.run();
  EXPECT_EQ(link.injected_failures(), 0u);
  for (const auto& rec : link.completed()) EXPECT_EQ(rec.retries, 0);
}

TEST(LinkFailureTest, DropsHappenAndTransfersStillComplete) {
  Simulation sim;
  net::Link link(sim, flaky_link(0.6), RngStream(2));
  int completions = 0;
  for (int i = 0; i < 50; ++i) {
    link.submit(2.0e6, 1, [&](const net::TransferRecord&) { ++completions; });
  }
  sim.run();
  EXPECT_EQ(completions, 50);
  EXPECT_GT(link.injected_failures(), 5u);
  EXPECT_EQ(link.active_transfers(), 0u);
}

TEST(LinkFailureTest, DeliveredBytesCountPayloadOnce) {
  // Conservation is on *useful* bytes: a transfer that restarted still
  // delivers its payload exactly once.
  Simulation sim;
  net::Link link(sim, flaky_link(0.7), RngStream(3));
  double submitted = 0.0;
  for (int i = 0; i < 30; ++i) {
    const double bytes = 1.0e6 + 1.0e5 * i;
    submitted += bytes;
    link.submit(bytes, 1, nullptr);
  }
  sim.run();
  EXPECT_NEAR(link.total_bytes_delivered(), submitted, 1.0);
}

TEST(LinkFailureTest, RetriesAreRecordedAndBounded) {
  Simulation sim;
  auto cfg = flaky_link(0.9);
  cfg.max_retries = 2;
  net::Link link(sim, cfg, RngStream(4));
  for (int i = 0; i < 40; ++i) link.submit(1.0e6, 1, nullptr);
  sim.run();
  bool saw_retry = false;
  for (const auto& rec : link.completed()) {
    EXPECT_LE(rec.retries, 2);
    if (rec.retries > 0) saw_retry = true;
  }
  EXPECT_TRUE(saw_retry);
}

TEST(LinkFailureTest, FailuresMakeTransfersSlower) {
  const auto run_mean = [](double prob) {
    Simulation sim;
    net::Link link(sim, flaky_link(prob), RngStream(5));
    double total = 0.0;
    int n = 0;
    for (int i = 0; i < 40; ++i) {
      sim.schedule_at(100.0 * i, [&link, &total, &n] {
        link.submit(4.0e6, 1, [&](const net::TransferRecord& rec) {
          total += rec.completed - rec.requested;
          ++n;
        });
      });
    }
    sim.run();
    return total / n;
  };
  EXPECT_GT(run_mean(0.8), 1.3 * run_mean(0.0));
}

TEST(LinkFailureTest, MultipleDropsPerTransferAreInjected) {
  // Regression pin: the failure process re-arms after every drop (in
  // activate(), not only at submit time), so one transfer can suffer up to
  // max_retries drops — not just one.
  Simulation sim;
  auto cfg = flaky_link(0.9);
  cfg.max_retries = 5;
  net::Link link(sim, cfg, RngStream(6));
  for (int i = 0; i < 60; ++i) link.submit(1.0e6, 1, nullptr);
  sim.run();
  int max_retries_seen = 0;
  for (const auto& rec : link.completed()) {
    max_retries_seen = std::max(max_retries_seen, rec.retries);
  }
  EXPECT_GE(max_retries_seen, 3);
  EXPECT_GT(link.injected_failures(), 60u);  // more drops than transfers
}

TEST(LinkOutageTest, OutageAbortsAndResumesTransfers) {
  Simulation sim;
  net::Link link(sim, flaky_link(0.0), RngStream(7));
  net::TransferRecord done{};
  int completions = 0;
  // 8 MB at 1 MB/s: without the outage this finishes at ~8.5 s.
  link.submit(8.0e6, 8, [&](const net::TransferRecord& rec) {
    done = rec;
    ++completions;
  });
  sim.schedule_at(4.0, [&] { link.set_outage(true); });
  sim.schedule_at(50.0, [&] { link.set_outage(false); });
  sim.run();
  ASSERT_EQ(completions, 1);
  EXPECT_EQ(link.outage_aborts(), 1u);
  // ~3.5 s of payload moved before the cut, all lost.
  EXPECT_GT(link.wasted_bytes(), 2.0e6);
  // Restarts from byte zero after the outage (+ setup + backoff), so the
  // completion lands well past 58 s; the payload still arrives exactly once.
  EXPECT_GT(done.completed, 58.0);
  EXPECT_NEAR(link.total_bytes_delivered(), 8.0e6, 1.0);
}

TEST(LinkOutageTest, SubmitDuringOutageWaitsForRecovery) {
  Simulation sim;
  net::Link link(sim, flaky_link(0.0), RngStream(8));
  link.set_outage(true);
  double completed_at = -1.0;
  link.submit(1.0e6, 1,
              [&](const net::TransferRecord& rec) { completed_at = rec.completed; });
  sim.schedule_at(30.0, [&] { link.set_outage(false); });
  sim.run();
  // Activation parked at setup-latency end, released at outage end: the
  // transfer only moves after t = 30.
  EXPECT_GT(completed_at, 30.0);
  EXPECT_EQ(link.active_transfers(), 0u);
}

TEST(LinkOutageTest, RepeatedAbortsBackOffExponentially) {
  Simulation sim;
  auto cfg = flaky_link(0.0);
  cfg.outage_backoff_base = 2.0;
  cfg.outage_backoff_multiplier = 2.0;
  net::Link link(sim, cfg, RngStream(9));
  net::TransferRecord done{};
  link.submit(60.0e6, 8, [&](const net::TransferRecord& rec) { done = rec; });
  // Two outages, each severing the same transfer: reconnect delays are
  // setup + 2 s, then setup + 4 s.
  sim.schedule_at(5.0, [&] { link.set_outage(true); });
  sim.schedule_at(6.0, [&] { link.set_outage(false); });
  sim.schedule_at(20.0, [&] { link.set_outage(true); });
  sim.schedule_at(21.0, [&] { link.set_outage(false); });
  sim.run();
  EXPECT_EQ(link.outage_aborts(), 2u);
  // 60 s of payload restarted at t ≈ 21 + 0.5 + 4: finishes after ~85 s.
  EXPECT_GT(done.completed, 85.0);
  EXPECT_NEAR(link.total_bytes_delivered(), 60.0e6, 1.0);
}

TEST(LinkCancelTest, CancelAbortsInFlightTransfer) {
  Simulation sim;
  net::Link link(sim, flaky_link(0.0), RngStream(10));
  int completions = 0;
  const auto id =
      link.submit(10.0e6, 8, [&](const net::TransferRecord&) { ++completions; });
  bool cancelled = false;
  sim.schedule_at(3.0, [&] { cancelled = link.cancel(id); });
  sim.run();
  EXPECT_TRUE(cancelled);
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(link.active_transfers(), 0u);
  EXPECT_GT(link.wasted_bytes(), 1.0e6);  // ~2.5 s of progress discarded
  EXPECT_EQ(link.total_bytes_delivered(), 0.0);
  EXPECT_FALSE(link.cancel(id));  // unknown id now
}

TEST(LinkCancelTest, CancelFreesCapacityForSurvivors) {
  Simulation sim;
  net::Link link(sim, flaky_link(0.0), RngStream(11));
  net::TransferRecord survivor{};
  const auto victim = link.submit(50.0e6, 8, nullptr);
  link.submit(4.0e6, 8,
              [&](const net::TransferRecord& rec) { survivor = rec; });
  sim.schedule_at(1.0, [&] { link.cancel(victim); });
  sim.run();
  // With the victim gone the survivor gets the whole 1 MB/s pipe: ~0.5 s
  // sharing + full rate after, far sooner than the ~8.5 s a fair split of
  // the whole run would give.
  EXPECT_GT(survivor.completed, 0.0);
  EXPECT_LT(survivor.completed, 6.0);
}

TEST(ScenarioFailureTest, FullRunSurvivesFlakyPipe) {
  harness::Scenario s = harness::make_scenario(
      core::SchedulerKind::kOrderPreserving, workload::SizeBucket::kLargeBiased);
  s.num_batches = 3;
  auto cfg = core::default_controller_config(false);
  cfg.uplink.failure_probability = 0.3;
  cfg.downlink.failure_probability = 0.3;
  s.config_override = cfg;
  const auto r = harness::run_scenario(s);  // throws on invariant violation
  EXPECT_GT(r.outcomes.size(), 10u);
  EXPECT_GT(r.report.speedup, 1.0);
}

TEST(ScenarioFailureTest, FlakyPipeCostsMakespanNotCorrectness) {
  auto base = harness::make_scenario(core::SchedulerKind::kGreedy,
                                     workload::SizeBucket::kLargeBiased);
  base.num_batches = 3;

  auto clean_cfg = core::default_controller_config(false);
  base.config_override = clean_cfg;
  const auto clean = harness::run_scenario(base);

  auto flaky_cfg = clean_cfg;
  flaky_cfg.uplink.failure_probability = 0.5;
  flaky_cfg.downlink.failure_probability = 0.5;
  base.config_override = flaky_cfg;
  const auto flaky = harness::run_scenario(base);

  EXPECT_EQ(clean.outcomes.size(), flaky.outcomes.size());
  // Same work completed; the flaky pipe can only delay EC round trips.
  EXPECT_GE(flaky.report.makespan_seconds,
            0.95 * clean.report.makespan_seconds);
}

}  // namespace
