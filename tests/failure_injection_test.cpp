// Failure injection: connection drops on the best-effort Internet path and
// the system's behaviour under them — conservation still holds, every run
// still terminates, and the SLA metrics degrade gracefully rather than
// collapsing.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "net/link.hpp"
#include "simcore/simulation.hpp"

namespace {

using namespace cbs;
using cbs::sim::RngStream;
using cbs::sim::Simulation;

net::LinkConfig flaky_link(double failure_probability) {
  net::LinkConfig cfg;
  cfg.base_rate = 1.0e6;
  cfg.per_connection_cap = 1.0e6;
  cfg.noise_sigma = 0.0;
  cfg.setup_latency = 0.5;
  cfg.failure_probability = failure_probability;
  cfg.max_retries = 3;
  return cfg;
}

TEST(LinkFailureTest, ZeroProbabilityInjectsNothing) {
  Simulation sim;
  net::Link link(sim, flaky_link(0.0), RngStream(1));
  for (int i = 0; i < 20; ++i) link.submit(1.0e6, 1, nullptr);
  sim.run();
  EXPECT_EQ(link.injected_failures(), 0u);
  for (const auto& rec : link.completed()) EXPECT_EQ(rec.retries, 0);
}

TEST(LinkFailureTest, DropsHappenAndTransfersStillComplete) {
  Simulation sim;
  net::Link link(sim, flaky_link(0.6), RngStream(2));
  int completions = 0;
  for (int i = 0; i < 50; ++i) {
    link.submit(2.0e6, 1, [&](const net::TransferRecord&) { ++completions; });
  }
  sim.run();
  EXPECT_EQ(completions, 50);
  EXPECT_GT(link.injected_failures(), 5u);
  EXPECT_EQ(link.active_transfers(), 0u);
}

TEST(LinkFailureTest, DeliveredBytesCountPayloadOnce) {
  // Conservation is on *useful* bytes: a transfer that restarted still
  // delivers its payload exactly once.
  Simulation sim;
  net::Link link(sim, flaky_link(0.7), RngStream(3));
  double submitted = 0.0;
  for (int i = 0; i < 30; ++i) {
    const double bytes = 1.0e6 + 1.0e5 * i;
    submitted += bytes;
    link.submit(bytes, 1, nullptr);
  }
  sim.run();
  EXPECT_NEAR(link.total_bytes_delivered(), submitted, 1.0);
}

TEST(LinkFailureTest, RetriesAreRecordedAndBounded) {
  Simulation sim;
  auto cfg = flaky_link(0.9);
  cfg.max_retries = 2;
  net::Link link(sim, cfg, RngStream(4));
  for (int i = 0; i < 40; ++i) link.submit(1.0e6, 1, nullptr);
  sim.run();
  bool saw_retry = false;
  for (const auto& rec : link.completed()) {
    EXPECT_LE(rec.retries, 2);
    if (rec.retries > 0) saw_retry = true;
  }
  EXPECT_TRUE(saw_retry);
}

TEST(LinkFailureTest, FailuresMakeTransfersSlower) {
  const auto run_mean = [](double prob) {
    Simulation sim;
    net::Link link(sim, flaky_link(prob), RngStream(5));
    double total = 0.0;
    int n = 0;
    for (int i = 0; i < 40; ++i) {
      sim.schedule_at(100.0 * i, [&link, &total, &n] {
        link.submit(4.0e6, 1, [&](const net::TransferRecord& rec) {
          total += rec.completed - rec.requested;
          ++n;
        });
      });
    }
    sim.run();
    return total / n;
  };
  EXPECT_GT(run_mean(0.8), 1.3 * run_mean(0.0));
}

TEST(ScenarioFailureTest, FullRunSurvivesFlakyPipe) {
  harness::Scenario s = harness::make_scenario(
      core::SchedulerKind::kOrderPreserving, workload::SizeBucket::kLargeBiased);
  s.num_batches = 3;
  auto cfg = core::default_controller_config(false);
  cfg.uplink.failure_probability = 0.3;
  cfg.downlink.failure_probability = 0.3;
  s.config_override = cfg;
  const auto r = harness::run_scenario(s);  // throws on invariant violation
  EXPECT_GT(r.outcomes.size(), 10u);
  EXPECT_GT(r.report.speedup, 1.0);
}

TEST(ScenarioFailureTest, FlakyPipeCostsMakespanNotCorrectness) {
  auto base = harness::make_scenario(core::SchedulerKind::kGreedy,
                                     workload::SizeBucket::kLargeBiased);
  base.num_batches = 3;

  auto clean_cfg = core::default_controller_config(false);
  base.config_override = clean_cfg;
  const auto clean = harness::run_scenario(base);

  auto flaky_cfg = clean_cfg;
  flaky_cfg.uplink.failure_probability = 0.5;
  flaky_cfg.downlink.failure_probability = 0.5;
  base.config_override = flaky_cfg;
  const auto flaky = harness::run_scenario(base);

  EXPECT_EQ(clean.outcomes.size(), flaky.outcomes.size());
  // Same work completed; the flaky pipe can only delay EC round trips.
  EXPECT_GE(flaky.report.makespan_seconds,
            0.95 * clean.report.makespan_seconds);
}

}  // namespace
