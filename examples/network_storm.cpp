// Robustness under a mid-run bandwidth storm: an ISP throttling episode
// cuts the pipe to 25% for twenty minutes while large documents are in
// flight. The Greedy scheduler's transient-bandwidth decisions leave jobs
// stranded behind the storm; the Order Preserving slack rule absorbs it.
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "sla/metrics.hpp"

int main() {
  using namespace cbs;

  auto configure = [](core::SchedulerKind kind) {
    harness::Scenario s = harness::make_scenario(
        kind, workload::SizeBucket::kLargeBiased, /*seed=*/99);
    auto cfg = core::default_controller_config(false);
    // The storm: both directions throttled to 25% from t=10min to t=30min.
    cfg.uplink.throttles = {{600.0, 1800.0, 0.25}};
    cfg.downlink.throttles = {{600.0, 1800.0, 0.25}};
    s.config_override = cfg;
    s.name = std::string(core::to_string(kind)) + "/storm";
    return s;
  };

  std::printf("=== network storm: 25%% throttle from t=600s to t=1800s ===\n\n");
  std::printf("%-20s %10s %9s %12s %14s\n", "scheduler", "makespan", "burst",
              "p95 peak", "avg ordered MB");

  std::vector<harness::RunResult> results;
  for (const auto kind :
       {core::SchedulerKind::kIcOnly, core::SchedulerKind::kGreedy,
        core::SchedulerKind::kOrderPreserving}) {
    const auto r = harness::run_scenario(configure(kind));
    const auto orderliness = sla::compute_orderliness(r.outcomes, 120.0);
    std::printf("%-20s %9.1fs %9.2f %11.1fs %14.1f\n",
                r.report.scheduler.c_str(), r.report.makespan_seconds,
                r.report.burst_ratio, orderliness.p95_frontier_push,
                r.report.oo_time_averaged_mb);
    results.push_back(std::move(r));
  }

  const auto& greedy = results[1];
  const auto& op = results[2];
  std::printf(
      "\nthe storm's signature: greedy jobs caught mid-transfer block the\n"
      "in-order consumer; Op's slack admission had already bounded exposure.\n");
  std::printf("ordered-data availability (Op - Greedy) during the storm:\n");
  for (double t = 600.0; t <= 2400.0; t += 300.0) {
    const double diff =
        op.oo_series.value_at(t) - greedy.oo_series.value_at(t);
    std::printf("  t=%5.0fs  %+9.1f MB\n", t, diff);
  }
  return 0;
}
