// The paper's §VII extension target: "the extension of the scheduler
// techniques ... to multiple job classes would make the cloud bursting
// approach applicable to a multitude of environments like academic
// computing". This example runs a mixed-class workload and compares the
// pooled QRSM against the per-class surfaces on both prediction accuracy
// and the SLA metrics the better estimates buy.
#include <cmath>
#include <cstdio>

#include "core/controller.hpp"
#include "models/per_class_qrsm.hpp"
#include "models/qrsm.hpp"
#include "simcore/simulation.hpp"
#include "stats/distributions.hpp"
#include "sla/metrics.hpp"
#include "workload/generator.hpp"

namespace {

double held_out_mape(const cbs::models::ProcessingTimeEstimator& estimator,
                     const std::vector<cbs::workload::Document>& docs,
                     const cbs::workload::GroundTruthModel& truth) {
  double total = 0.0;
  for (const auto& d : docs) {
    const double actual = truth.expected_seconds(d.features);
    total += std::abs(estimator.estimate_seconds(d) - actual) / actual;
  }
  return total / static_cast<double>(docs.size());
}

}  // namespace

int main() {
  using namespace cbs;
  sim::RngStream root(7001);
  workload::GroundTruthModel truth({}, root.substream("truth"));
  workload::WorkloadGenerator gen({}, truth, root.substream("gen"));

  // Train both estimators on the same observed stream. The class surfaces
  // see ~1/7 of the data each, so they carry a stronger ridge.
  models::QrsmEstimator pooled;
  models::PerClassQrsmEstimator per_class(
      {.model = {.ridge_lambda = 0.5}, .min_class_observations = 200});
  for (int i = 0; i < 4000; ++i) {
    const auto d = gen.next();
    const double observed = truth.sample_seconds(d.features);
    pooled.observe(d, observed);
    per_class.observe(d, observed);
  }

  workload::WorkloadGenerator held_gen({}, truth, root.substream("held"));
  const auto held = held_gen.batch(400);

  std::printf("=== multi-class estimation (academic-mix workload) ===\n\n");
  std::printf("held-out MAPE: pooled QRSM %.1f%%, per-class QRSM %.1f%%\n",
              held_out_mape(pooled, held, truth) * 100.0,
              held_out_mape(per_class, held, truth) * 100.0);
  std::printf(
      "(the pooled surface partially infers the class from correlated\n"
      " features, so per-class surfaces win only where their 1/7 share of\n"
      " the data outweighs the variance cost — exactly the trade-off the\n"
      " paper defers to future work)\n");

  std::printf("\nper-class breakdown (MAPE %%):\n");
  std::printf("%-24s %8s %10s %8s\n", "class", "pooled", "per-class", "active");
  for (const auto type : workload::kAllJobTypes) {
    std::vector<workload::Document> class_docs;
    for (const auto& d : held) {
      if (d.features.type == type) class_docs.push_back(d);
    }
    if (class_docs.empty()) continue;
    std::printf("%-24s %7.1f%% %9.1f%% %8s\n",
                std::string(workload::to_string(type)).c_str(),
                held_out_mape(pooled, class_docs, truth) * 100.0,
                held_out_mape(per_class, class_docs, truth) * 100.0,
                per_class.class_active(type) ? "yes" : "no");
  }

  // Do better estimates buy better SLAs? Same workload, two controllers.
  std::printf("\nscheduling impact (Order Preserving, uniform bucket):\n");
  std::printf("%-22s %10s %9s %9s\n", "estimator", "makespan", "speedup",
              "burst");
  for (const auto kind :
       {core::EstimatorKind::kQrsm, core::EstimatorKind::kPerClassQrsm}) {
    sim::Simulation simulation;
    sim::RngStream run_root(4242);
    workload::GroundTruthModel run_truth({}, run_root.substream("truth"));
    workload::WorkloadGenerator run_gen({}, run_truth,
                                        run_root.substream("workload"));
    auto cfg = core::default_controller_config(false);
    cfg.scheduler = core::SchedulerKind::kOrderPreserving;
    cfg.estimator = kind;
    core::CloudBurstController controller(simulation, cfg, run_truth,
                                          run_root.substream("system"));
    {
      workload::WorkloadGenerator corpus({}, run_truth,
                                         run_root.substream("corpus"));
      const auto docs = corpus.batch(400);
      std::vector<double> y;
      for (const auto& d : docs) y.push_back(run_truth.sample_seconds(d.features));
      controller.pretrain(docs, y);
    }
    auto arr_rng = std::make_shared<sim::RngStream>(run_root.substream("arr"));
    for (std::size_t b = 0; b < 6; ++b) {
      simulation.schedule_at(
          180.0 * static_cast<double>(b),
          [&controller, &run_gen, arr_rng, b, &simulation] {
            workload::Batch batch;
            batch.batch_index = b;
            batch.arrival_time = simulation.now();
            auto n = cbs::stats::sample_poisson(*arr_rng, 15.0);
            if (n == 0) n = 1;
            batch.documents = run_gen.batch(n);
            controller.on_batch(batch);
          });
    }
    simulation.run();
    const auto& outcomes = controller.outcomes();
    std::printf("%-22s %9.1fs %9.2f %9.2f\n",
                kind == core::EstimatorKind::kQrsm ? "pooled-qrsm"
                                                   : "per-class-qrsm",
                sla::makespan(outcomes), sla::speedup(outcomes),
                sla::burst_ratio(outcomes));
  }
  return 0;
}
