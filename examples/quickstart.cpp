// Quickstart: run one cloud-bursting scenario end to end and print the
// headline SLA metrics. This is the five-minute tour of the library:
// pick a workload bucket and a scheduler, run, read the report.
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "sla/report.hpp"

int main() {
  using namespace cbs;

  // A large-biased workload (1-300 MB production documents), 8 batches of
  // ~15 jobs arriving every 3 minutes, scheduled by the Order Preserving
  // burst scheduler over an 8-machine internal cloud and a 2-machine
  // external cloud behind a thin Internet pipe.
  harness::Scenario scenario = harness::make_scenario(
      core::SchedulerKind::kOrderPreserving,
      workload::SizeBucket::kLargeBiased, /*seed=*/42);

  std::cout << "Running scenario '" << scenario.name << "'...\n";
  const harness::RunResult result = harness::run_scenario(scenario);

  std::cout << "\n" << sla::format_table({result.report});
  std::printf(
      "\nsimulated %.1f minutes, %zu events, QRSM R^2 %.3f, "
      "peak EC staging %.1f MB\n",
      result.sim_end_time / 60.0, result.events_processed,
      result.qrsm_r_squared, result.peak_store_bytes / 1e6);

  // Compare against never bursting: the paper's headline is ~10% makespan
  // improvement from opportunistic bursting (Fig. 6).
  harness::Scenario baseline = scenario;
  baseline.scheduler = core::SchedulerKind::kIcOnly;
  const harness::RunResult ic_only = harness::run_scenario(baseline);
  const double gain = 100.0 * (ic_only.report.makespan_seconds -
                               result.report.makespan_seconds) /
                      ic_only.report.makespan_seconds;
  std::printf("makespan vs IC-only: %.1f%% better (%.1fs vs %.1fs)\n", gain,
              result.report.makespan_seconds, ic_only.report.makespan_seconds);
  return 0;
}
