// Watch the Fig. 5 pipeline at work: run a small batch with stage logging
// enabled and print each bursted job's journey through the asynchronous
// queue network — schedule, upload queue, EC execution, download, result —
// next to an internal job's straight path.
#include <cstdio>
#include <map>
#include <vector>

#include "core/controller.hpp"
#include "simcore/simulation.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace cbs;
  sim::Simulation simulation;
  sim::RngStream root(4711);
  workload::GroundTruthModel truth({}, root.substream("truth"));

  auto cfg = core::default_controller_config(false);
  cfg.scheduler = core::SchedulerKind::kGreedy;
  cfg.record_stage_log = true;
  cfg.topology.ic_machines = 2;  // small IC so jobs burst readily
  core::CloudBurstController controller(simulation, cfg, truth,
                                        root.substream("system"));
  {
    workload::WorkloadGenerator corpus({}, truth, root.substream("corpus"));
    const auto docs = corpus.batch(150);
    std::vector<double> y;
    for (const auto& d : docs) y.push_back(truth.sample_seconds(d.features));
    controller.pretrain(docs, y);
  }

  workload::WorkloadGenerator gen({}, truth, root.substream("workload"));
  workload::Batch batch;
  batch.batch_index = 0;
  batch.documents = gen.batch(10);
  controller.on_batch(batch);
  simulation.run();

  // Group the stage log per job.
  std::map<std::uint64_t, std::vector<core::CloudBurstController::StageEvent>>
      per_job;
  for (const auto& e : controller.stage_log()) {
    per_job[e.seq_id].push_back(e);
  }

  std::printf("=== pipeline trace (Fig. 5): one batch, %zu jobs ===\n\n",
              per_job.size());
  for (const auto& o : controller.outcomes()) {
    std::printf("job %2llu  %-3s  %6.1f MB in / %6.1f MB out\n",
                static_cast<unsigned long long>(o.seq_id),
                std::string(sla::to_string(o.placement)).c_str(), o.input_mb,
                o.output_mb);
    for (const auto& e : per_job[o.seq_id]) {
      std::printf("    t=%8.1fs  %s\n", e.time,
                  std::string(core::to_string(e.state)).c_str());
    }
  }

  std::printf(
      "\nreading the trace: internal jobs go ic-waiting -> ic-running ->\n"
      "completed; bursted jobs go upload-queued -> ec-running (upload done,\n"
      "staged in the store) -> downloading -> completed. Stages of different\n"
      "jobs interleave freely — that is the pipelining the paper's\n"
      "architecture buys.\n");
  return 0;
}
