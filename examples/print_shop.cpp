// A production print shop's day: document batches arrive through a
// business day over a diurnal Internet pipe; the Order Preserving burst
// scheduler with elastic EC scaling keeps the plant's SLAs. Demonstrates
// the full autonomic loop at day scale: time-of-day bandwidth learning,
// thread tuning, QRSM adaptation and pay-as-you-go EC capacity.
#include <cstdio>

#include "core/controller.hpp"
#include "harness/scenario.hpp"
#include "simcore/simulation.hpp"
#include "stats/distributions.hpp"
#include "sla/metrics.hpp"
#include "sla/oo_metric.hpp"
#include "workload/arrival.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace cbs;
  sim::Simulation simulation;
  sim::RngStream root(2026);
  workload::GroundTruthModel truth({}, root.substream("truth"));

  core::ControllerConfig cfg = core::default_controller_config(false);
  cfg.scheduler = core::SchedulerKind::kOrderPreserving;
  cfg.elastic_ec.enabled = true;
  cfg.elastic_ec.min_machines = 1;
  cfg.elastic_ec.max_machines = 6;
  core::CloudBurstController controller(simulation, cfg, truth,
                                        root.substream("system"));

  // Factory prior for the QRSM.
  workload::WorkloadGenerator corpus_gen({}, truth, root.substream("corpus"));
  {
    const auto docs = corpus_gen.batch(150);
    std::vector<double> runtimes;
    for (const auto& d : docs) runtimes.push_back(truth.sample_seconds(d.features));
    controller.pretrain(docs, runtimes);
  }

  // The day: a morning statement run (small bucket), a mid-day marketing
  // surge (large bucket), an afternoon mixed load (uniform). Batches every
  // 3 minutes within each shift.
  struct Shift {
    const char* name;
    double start_hour;
    std::size_t batches;
    workload::SizeBucket bucket;
  };
  const Shift shifts[] = {
      {"morning statements", 8.0, 5, workload::SizeBucket::kSmallBiased},
      {"mid-day marketing surge", 11.0, 6, workload::SizeBucket::kLargeBiased},
      {"afternoon mixed", 15.0, 5, workload::SizeBucket::kUniform},
  };

  std::size_t batch_counter = 0;
  for (const Shift& shift : shifts) {
    workload::WorkloadGenerator::Config gen_cfg;
    gen_cfg.bucket = shift.bucket;
    auto gen = std::make_shared<workload::WorkloadGenerator>(
        gen_cfg, truth, root.substream(shift.name));
    auto rng = std::make_shared<sim::RngStream>(
        root.substream(shift.name).substream("arrivals"));
    for (std::size_t b = 0; b < shift.batches; ++b) {
      const double at = shift.start_hour * sim::kHour + 180.0 * static_cast<double>(b);
      const std::size_t index = batch_counter++;
      simulation.schedule_at(at, [&controller, gen, rng, index, at] {
        workload::Batch batch;
        batch.batch_index = index;
        batch.arrival_time = at;
        auto n = cbs::stats::sample_poisson(*rng, 15.0);
        if (n == 0) n = 1;
        batch.documents = gen->batch(n);
        controller.on_batch(batch);
      });
    }
  }

  simulation.run();

  const auto& outcomes = controller.outcomes();
  std::printf("=== print shop day complete ===\n");
  std::printf("jobs: %zu   makespan window: %.1f h   burst ratio: %.2f\n",
              outcomes.size(), sla::makespan(outcomes) / sim::kHour,
              sla::burst_ratio(outcomes));
  std::printf("EC scaling: %zu ups, %zu downs; paid %.1f machine-hours on EC "
              "(static 2-VM would pay %.1f)\n",
              controller.scale_ups(), controller.scale_downs(),
              controller.ec_cluster().provisioned_machine_seconds() / sim::kHour,
              2.0 * simulation.now() / sim::kHour);
  std::printf("rescheduler: %zu pull-backs, %zu push-outs\n",
              controller.pull_backs(), controller.push_outs());

  // Per-shift turnaround.
  std::printf("\n%-26s %8s %12s %10s\n", "shift", "jobs", "turnaround", "bursted");
  std::size_t shift_starts[] = {0, 5, 11, 16};
  const char* names[] = {"morning statements", "mid-day marketing surge",
                         "afternoon mixed"};
  for (int s = 0; s < 3; ++s) {
    double turnaround = 0.0;
    std::size_t jobs = 0;
    std::size_t bursted = 0;
    for (const auto& o : outcomes) {
      if (o.batch_index >= shift_starts[s] && o.batch_index < shift_starts[s + 1]) {
        turnaround += o.completed - o.arrival;
        ++jobs;
        if (o.bursted()) ++bursted;
      }
    }
    std::printf("%-26s %8zu %11.1fs %10zu\n", names[s], jobs,
                jobs ? turnaround / static_cast<double>(jobs) : 0.0, bursted);
  }

  // What the autonomic layer learned about the pipe.
  std::printf("\nlearned uplink rate by hour (KB/s):\n  ");
  const auto& est = controller.uplink_estimator();
  for (std::size_t h = 8; h <= 18; ++h) {
    std::printf("%zuh:%.0f  ", h,
                est.slot_estimate(h * est.slots_per_day() / 24) / 1e3);
  }
  std::printf("\n");
  return 0;
}
