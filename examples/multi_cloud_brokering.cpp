// Bursting to a pool of external providers (the paper's intro scenario and
// §VI meta-brokering discussion): two EC sites with different pipes and
// instance speeds; the controller answers "where" per job by comparing
// believed round trips, while the slackness rule still answers "when".
#include <cstdio>

#include "core/multi_cloud.hpp"
#include "models/estimator.hpp"
#include "simcore/simulation.hpp"
#include "stats/distributions.hpp"
#include "sla/metrics.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace cbs;
  sim::Simulation simulation;
  sim::RngStream root(555);
  workload::GroundTruthModel truth({}, root.substream("truth"));
  models::OracleEstimator estimator(truth);

  core::MultiCloudConfig cfg;
  cfg.ic.ic_machines = 8;
  cfg.slack_safety_margin = 30.0;
  cfg.bandwidth_estimator.prior_rate = 1.0e6;

  // Provider A: near-region, fat pipe, standard instances.
  core::EcSiteConfig provider_a;
  provider_a.name = "near-region";
  provider_a.machines = 2;
  provider_a.speed = 1.0;
  provider_a.uplink.base_rate = 1.6e6;
  provider_a.uplink.per_connection_cap = 400.0e3;
  provider_a.uplink.noise_sigma = 0.12;
  provider_a.downlink = provider_a.uplink;
  provider_a.downlink.base_rate = 1.8e6;

  // Provider B: far-region, thin pipe, but faster (and scarcer) instances.
  core::EcSiteConfig provider_b;
  provider_b.name = "far-region";
  provider_b.machines = 1;
  provider_b.speed = 1.6;
  provider_b.uplink.base_rate = 0.7e6;
  provider_b.uplink.per_connection_cap = 200.0e3;
  provider_b.uplink.noise_sigma = 0.12;
  provider_b.downlink = provider_b.uplink;
  provider_b.downlink.base_rate = 0.8e6;

  cfg.sites = {provider_a, provider_b};
  core::MultiCloudController controller(simulation, cfg, truth,
                                        estimator, root.substream("system"));

  workload::WorkloadGenerator::Config gen_cfg;
  gen_cfg.bucket = workload::SizeBucket::kLargeBiased;
  workload::WorkloadGenerator gen(gen_cfg, truth, root.substream("workload"));
  auto arr_rng = std::make_shared<sim::RngStream>(root.substream("arrivals"));
  for (std::size_t b = 0; b < 8; ++b) {
    simulation.schedule_at(
        180.0 * static_cast<double>(b), [&, b] {
          workload::Batch batch;
          batch.batch_index = b;
          batch.arrival_time = simulation.now();
          auto n = cbs::stats::sample_poisson(*arr_rng, 15.0);
          if (n == 0) n = 1;
          batch.documents = gen.batch(n);
          controller.on_batch(batch);
        });
  }
  simulation.run();

  const auto& outcomes = controller.outcomes();
  const auto bursts = controller.bursts_per_site();
  std::printf("=== multi-cloud brokering (large bucket, 8 batches) ===\n\n");
  std::printf("jobs: %zu   makespan: %.1fs   speedup: %.2f   burst: %.2f\n",
              outcomes.size(), sla::makespan(outcomes), sla::speedup(outcomes),
              sla::burst_ratio(outcomes));
  std::printf("\nper-provider placement:\n");
  for (std::size_t s = 0; s < controller.site_count(); ++s) {
    const auto& cluster = controller.site_cluster(s);
    std::printf("  %-12s %3zu jobs   %.0f MB moved   instance busy %.0fs\n",
                cluster.name().c_str(), bursts[s],
                controller.site_uplink(s).total_bytes_delivered() / 1e6,
                cluster.total_busy_time());
  }
  std::printf("\nboth providers should carry load: the near-region pipe is\n"
              "faster, but once its upload queue fills, the far-region's\n"
              "faster instances win the round-trip comparison for some jobs.\n");
  return 0;
}
