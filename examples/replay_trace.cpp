// Reproducible experiments from workload traces: generate a workload, save
// it as CSV, reload it and run two schedulers against the identical trace.
// Usage: replay_trace [trace.csv]   (defaults to a temp path)
#include <cstdio>
#include <string>

#include "core/controller.hpp"
#include "simcore/simulation.hpp"
#include "sla/metrics.hpp"
#include "sla/report.hpp"
#include "workload/arrival.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace {

cbs::sla::SlaReport run_trace(const std::vector<cbs::workload::Batch>& batches,
                              cbs::core::SchedulerKind kind) {
  using namespace cbs;
  sim::Simulation simulation;
  sim::RngStream root(31337);
  workload::GroundTruthModel truth({}, root.substream("truth"));
  auto cfg = core::default_controller_config(false);
  cfg.scheduler = kind;
  core::CloudBurstController controller(simulation, cfg, truth,
                                        root.substream("system"));
  {
    workload::WorkloadGenerator corpus({}, truth, root.substream("corpus"));
    const auto docs = corpus.batch(150);
    std::vector<double> y;
    for (const auto& d : docs) y.push_back(truth.sample_seconds(d.features));
    controller.pretrain(docs, y);
  }
  for (const auto& batch : batches) {
    simulation.schedule_at(batch.arrival_time,
                           [&controller, batch] { controller.on_batch(batch); });
  }
  simulation.run();
  return sla::build_report(
      std::string(core::to_string(kind)), "trace", controller.outcomes(),
      controller.ic_cluster().total_busy_time(),
      controller.ic_cluster().machine_count(),
      controller.ec_cluster().total_busy_time(),
      controller.ec_cluster().machine_count(), 120.0, 4);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cbs;
  const std::string path = argc > 1 ? argv[1] : "/tmp/cloudburst_trace.csv";

  // Generate a workload and persist it.
  sim::RngStream root(808);
  workload::GroundTruthModel truth({}, root.substream("truth"));
  workload::WorkloadGenerator::Config gen_cfg;
  gen_cfg.bucket = workload::SizeBucket::kUniform;
  workload::WorkloadGenerator gen(gen_cfg, truth, root.substream("gen"));
  workload::BatchArrivalProcess arrivals({.num_batches = 6}, gen,
                                         root.substream("arrivals"));
  const auto batches = arrivals.generate_all();
  const std::size_t rows = workload::trace::write_file(path, batches);
  std::printf("wrote %zu documents (%zu batches) to %s\n", rows,
              batches.size(), path.c_str());

  // Reload and verify the round trip.
  const auto reloaded = workload::trace::read_file(path);
  std::printf("reloaded %zu batches; first doc %.1f MB, %s\n\n",
              reloaded.size(), reloaded[0].documents[0].features.size_mb,
              std::string(
                  workload::to_string(reloaded[0].documents[0].features.type))
                  .c_str());

  // The same trace under two schedulers — a perfectly paired comparison.
  const auto greedy = run_trace(reloaded, core::SchedulerKind::kGreedy);
  const auto op = run_trace(reloaded, core::SchedulerKind::kOrderPreserving);
  std::printf("%s", sla::format_table({greedy, op}).c_str());
  std::printf("\nsame trace, same arrivals, same realized service times —\n"
              "any metric difference above is purely the scheduling policy.\n");
  return 0;
}
