#pragma once

#include <string>
#include <vector>

#include "stats/timeseries.hpp"

namespace cbs::harness::plot {

/// One curve of a figure.
struct Series {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;  // same length as xs
};

/// Figure description for the gnuplot emitter.
struct Figure {
  std::string title;
  std::string xlabel;
  std::string ylabel;
  std::vector<Series> series;
};

/// Converts a step-function TimeSeries into a plot series.
[[nodiscard]] Series from_timeseries(std::string label,
                                     const cbs::stats::TimeSeries& ts);

/// Writes `<prefix>.dat` (whitespace columns: x then one column per series,
/// blank where a series has no sample at that x) and `<prefix>.gp` (a
/// self-contained gnuplot script producing `<prefix>.png`). Returns the
/// script path. Throws std::runtime_error on I/O failure.
std::string write_gnuplot(const std::string& path_prefix, const Figure& figure);

}  // namespace cbs::harness::plot
