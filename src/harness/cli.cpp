#include "harness/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace cbs::harness::cli {

namespace {

bool is_flag(const std::string& s) { return s.rfind("--", 0) == 0; }

}  // namespace

Args::Args(int argc, const char* const* argv,
           const std::vector<std::string>& known_flags) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (!is_flag(token)) {
      positional_.push_back(std::move(token));
      continue;
    }
    token = token.substr(2);
    std::string key = token;
    std::string value;
    bool have_value = false;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      key = token.substr(0, eq);
      value = token.substr(eq + 1);
      have_value = true;
    }
    if (std::find(known_flags.begin(), known_flags.end(), key) ==
        known_flags.end()) {
      throw std::runtime_error("unknown flag: --" + key);
    }
    if (!have_value && i + 1 < argc && !is_flag(argv[i + 1])) {
      value = argv[++i];
      have_value = true;
    }
    values_[key] = have_value ? value : "true";
  }
}

bool Args::has(const std::string& key) const { return values_.contains(key); }

std::optional<std::string> Args::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& key,
                         const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Args::get_double_or(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  std::size_t pos = 0;
  const double out = std::stod(*v, &pos);
  if (pos != v->size()) throw std::runtime_error("bad number for --" + key);
  return out;
}

long Args::get_long_or(const std::string& key, long fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  std::size_t pos = 0;
  const long out = std::stol(*v, &pos);
  if (pos != v->size()) throw std::runtime_error("bad integer for --" + key);
  return out;
}

cbs::core::SchedulerKind parse_scheduler(const std::string& name) {
  using cbs::core::SchedulerKind;
  if (name == "ic-only") return SchedulerKind::kIcOnly;
  if (name == "greedy") return SchedulerKind::kGreedy;
  if (name == "order-preserving" || name == "op") {
    return SchedulerKind::kOrderPreserving;
  }
  if (name == "op-bandwidth-split" || name == "bandwidth-split") {
    return SchedulerKind::kBandwidthSplit;
  }
  if (name == "random") return SchedulerKind::kRandom;
  if (name == "lookahead") return SchedulerKind::kLookahead;
  throw std::runtime_error("unknown scheduler: " + name);
}

cbs::models::HazardPredictorKind parse_hazard_predictor(
    const std::string& name) {
  using cbs::models::HazardPredictorKind;
  if (name == "off") return HazardPredictorKind::kOff;
  if (name == "ewma") return HazardPredictorKind::kEwma;
  if (name == "bayes") return HazardPredictorKind::kBayes;
  throw std::runtime_error("unknown hazard predictor: " + name);
}

cbs::workload::SizeBucket parse_bucket(const std::string& name) {
  using cbs::workload::SizeBucket;
  if (name == "small") return SizeBucket::kSmallBiased;
  if (name == "uniform") return SizeBucket::kUniform;
  if (name == "large") return SizeBucket::kLargeBiased;
  throw std::runtime_error("unknown bucket: " + name);
}

const std::vector<std::string>& scenario_flags() {
  static const std::vector<std::string> flags = {
      "scheduler", "bucket",      "seed",      "batches",  "lambda",
      "interval",  "high-var",    "rescheduler", "elastic", "estimator",
      "tolerance", "oo-interval", "noise",     "csv",      "help",
      "seeds",     "threads",
      // Fault layer (simcore/fault_plan.hpp knobs).
      "ic-mtbf",   "ec-mtbf",     "vm-recovery", "retraction-factor",
      // Proactive resilience (models/hazard.hpp, DESIGN.md §13).
      "hazard-predictor", "drain-threshold", "drain-window", "risk-weight",
      // Model-predictive lookahead (harness/world.hpp).
      "horizon",   "candidates",
  };
  return flags;
}

Scenario scenario_from_args(const Args& args) {
  Scenario s = make_scenario(
      parse_scheduler(args.get_or("scheduler", "order-preserving")),
      parse_bucket(args.get_or("bucket", "large")),
      static_cast<std::uint64_t>(args.get_long_or("seed", 42)),
      args.has("high-var"));
  s.num_batches = static_cast<std::size_t>(args.get_long_or("batches", 8));
  s.mean_jobs_per_batch = args.get_double_or("lambda", 15.0);
  s.batch_interval_seconds = args.get_double_or("interval", 180.0);
  s.enable_rescheduler = args.has("rescheduler");
  s.oo_tolerance =
      static_cast<std::uint64_t>(args.get_long_or("tolerance", 4));
  s.oo_sampling_interval = args.get_double_or("oo-interval", 120.0);
  s.truth.noise_sigma = args.get_double_or("noise", s.truth.noise_sigma);

  const std::string estimator = args.get_or("estimator", "qrsm");
  if (estimator == "qrsm") {
    s.estimator = cbs::core::EstimatorKind::kQrsm;
  } else if (estimator == "oracle") {
    s.estimator = cbs::core::EstimatorKind::kOracle;
  } else if (estimator == "per-class") {
    s.estimator = cbs::core::EstimatorKind::kPerClassQrsm;
  } else {
    throw std::runtime_error("unknown estimator: " + estimator);
  }

  if (args.has("elastic")) {
    auto cfg = s.controller_config();
    cfg.elastic_ec.enabled = true;
    cfg.elastic_ec.min_machines = 1;
    cfg.elastic_ec.max_machines = 6;
    s.config_override = cfg;
  }

  s.faults.ic_vm_mtbf = args.get_double_or("ic-mtbf", 0.0);
  s.faults.ec_vm_mtbf = args.get_double_or("ec-mtbf", 0.0);
  s.faults.vm_recovery_seconds =
      args.get_double_or("vm-recovery", s.faults.vm_recovery_seconds);
  s.faults.retraction_deadline_factor =
      args.get_double_or("retraction-factor", 0.0);

  s.resilience.hazard.kind =
      parse_hazard_predictor(args.get_or("hazard-predictor", "off"));
  s.resilience.drain_threshold =
      args.get_double_or("drain-threshold", s.resilience.drain_threshold);
  s.resilience.drain_window_seconds =
      args.get_double_or("drain-window", s.resilience.drain_window_seconds);
  s.resilience.risk_weight =
      args.get_double_or("risk-weight", s.resilience.risk_weight);

  s.lookahead_horizon_seconds =
      args.get_double_or("horizon", s.lookahead_horizon_seconds);
  s.lookahead_candidates = static_cast<int>(
      args.get_long_or("candidates", s.lookahead_candidates));
  return s;
}

std::vector<std::uint64_t> parse_seed_list(const std::string& csv) {
  std::vector<std::uint64_t> seeds;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string::npos) end = csv.size();
    const std::string token = csv.substr(start, end - start);
    if (token.empty()) throw std::runtime_error("empty seed in list: " + csv);
    std::size_t pos = 0;
    unsigned long long value = 0;
    try {
      value = std::stoull(token, &pos);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad seed: " + token);
    }
    if (pos != token.size()) throw std::runtime_error("bad seed: " + token);
    seeds.push_back(static_cast<std::uint64_t>(value));
    start = end + 1;
  }
  if (seeds.empty()) throw std::runtime_error("empty seed list");
  return seeds;
}

std::vector<std::uint64_t> seeds_from_args(const Args& args,
                                           std::vector<std::uint64_t> fallback) {
  const auto v = args.get("seeds");
  if (!v) return fallback;
  return parse_seed_list(*v);
}

std::size_t threads_from_args(const Args& args) {
  const long n = args.get_long_or("threads", 0);
  if (n < 0) throw std::runtime_error("--threads must be >= 1");
  return static_cast<std::size_t>(n);
}

}  // namespace cbs::harness::cli
