#include "harness/plot.hpp"

#include <cassert>
#include <fstream>
#include <map>
#include <stdexcept>

namespace cbs::harness::plot {

Series from_timeseries(std::string label, const cbs::stats::TimeSeries& ts) {
  Series s;
  s.label = std::move(label);
  s.xs.reserve(ts.size());
  s.ys.reserve(ts.size());
  for (const auto& p : ts.points()) {
    s.xs.push_back(p.time);
    s.ys.push_back(p.value);
  }
  return s;
}

std::string write_gnuplot(const std::string& path_prefix, const Figure& figure) {
  assert(!figure.series.empty());
  for ([[maybe_unused]] const Series& s : figure.series) {
    assert(s.xs.size() == s.ys.size());
  }

  // Merge all x values into one grid; emit one column per series with
  // blanks where a series has no sample (gnuplot skips blanks).
  std::map<double, std::vector<double>> rows;  // x -> per-series value (NaN = missing)
  const double missing = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t si = 0; si < figure.series.size(); ++si) {
    const Series& s = figure.series[si];
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      auto& row = rows[s.xs[i]];
      row.resize(figure.series.size(), missing);
      row[si] = s.ys[i];
    }
  }

  const std::string dat_path = path_prefix + ".dat";
  {
    std::ofstream dat(dat_path);
    if (!dat) throw std::runtime_error("plot: cannot write " + dat_path);
    dat << "# x";
    for (const Series& s : figure.series) dat << " \"" << s.label << "\"";
    dat << "\n";
    for (const auto& [x, values] : rows) {
      dat << x;
      for (std::size_t si = 0; si < figure.series.size(); ++si) {
        if (si < values.size() && values[si] == values[si]) {  // not NaN
          dat << ' ' << values[si];
        } else {
          dat << " ?";  // gnuplot's missing-data marker (set datafile missing)
        }
      }
      dat << "\n";
    }
    if (!dat) throw std::runtime_error("plot: write failed: " + dat_path);
  }

  const std::string gp_path = path_prefix + ".gp";
  {
    std::ofstream gp(gp_path);
    if (!gp) throw std::runtime_error("plot: cannot write " + gp_path);
    gp << "set terminal pngcairo size 900,540\n"
       << "set output '" << path_prefix << ".png'\n"
       << "set datafile missing '?'\n"
       << "set title '" << figure.title << "'\n"
       << "set xlabel '" << figure.xlabel << "'\n"
       << "set ylabel '" << figure.ylabel << "'\n"
       << "set key left top\n"
       << "plot";
    for (std::size_t si = 0; si < figure.series.size(); ++si) {
      if (si > 0) gp << ',';
      gp << " '" << dat_path << "' using 1:" << (si + 2)
         << " with steps title '" << figure.series[si].label << "'";
    }
    gp << "\n";
    if (!gp) throw std::runtime_error("plot: write failed: " + gp_path);
  }
  return gp_path;
}

}  // namespace cbs::harness::plot
