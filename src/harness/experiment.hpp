#pragma once

#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "sla/cost.hpp"
#include "sla/job_outcome.hpp"
#include "sla/oo_metric.hpp"
#include "sla/report.hpp"
#include "sla/tickets.hpp"
#include "stats/timeseries.hpp"

namespace cbs::harness {

/// Fault-injection and recovery activity of one run (all zero for a
/// fault-free scenario).
struct FaultStats {
  std::uint64_t ic_crashes = 0;       ///< effective VM crashes on the IC
  std::uint64_t ec_crashes = 0;
  std::uint64_t reexecutions = 0;     ///< tasks reclaimed from crashed VMs
  double wasted_compute_seconds = 0.0;  ///< standard seconds burned and lost
  std::uint64_t link_outage_aborts = 0;  ///< transfers severed by outages
  std::uint64_t link_drops = 0;          ///< injected connection drops
  double wasted_transfer_bytes = 0.0;    ///< moved and lost (both directions)
  std::uint64_t retractions = 0;      ///< bursts pulled back to the IC
  std::uint64_t store_retries = 0;    ///< failed staging attempts
  std::uint64_t store_abandoned = 0;  ///< staging ops that gave up
  std::uint64_t probe_blackout_skips = 0;
  std::uint64_t crashes_injected = 0;  ///< plan-level crash events fired
  std::uint64_t outages = 0;           ///< merged outage windows entered

  // Proactive resilience (all zero when the hazard predictor is off).
  std::uint64_t drains = 0;             ///< pre-emptive drains applied
  std::uint64_t undrains = 0;           ///< drains lifted (risk subsided)
  std::uint64_t drain_preemptions = 0;  ///< checkpoint-restarts at drain time
  std::uint64_t idle_crashes_absorbed = 0;  ///< crashes on drained idle VMs
  /// Standard seconds preserved by checkpoint restarts — compute a crash
  /// would have destroyed (the "wasted compute avoided" metric).
  double checkpointed_compute_seconds = 0.0;
  // Predictor quality (predicted-vs-actual crashes, IC + EC pooled).
  std::uint64_t hazard_predictions = 0;
  std::uint64_t hazard_true_positives = 0;
  std::uint64_t hazard_false_positives = 0;
  std::uint64_t hazard_false_negatives = 0;
  [[nodiscard]] double hazard_precision() const noexcept {
    const auto called = hazard_true_positives + hazard_false_positives;
    return called == 0 ? 0.0
                       : static_cast<double>(hazard_true_positives) /
                             static_cast<double>(called);
  }
  [[nodiscard]] double hazard_recall() const noexcept {
    const auto actual = hazard_true_positives + hazard_false_negatives;
    return actual == 0 ? 0.0
                       : static_cast<double>(hazard_true_positives) /
                             static_cast<double>(actual);
  }
};

/// Everything a bench or test needs from one finished run.
struct RunResult {
  Scenario scenario;
  cbs::sla::SlaReport report;
  std::vector<cbs::sla::JobOutcome> outcomes;
  /// o_t sampled at the scenario's OO interval/tolerance.
  cbs::stats::TimeSeries oo_series;
  double sim_end_time = 0.0;
  std::size_t events_processed = 0;
  std::size_t pull_backs = 0;
  std::size_t push_outs = 0;
  /// QRSM fit quality at end of run (NaN for the oracle estimator).
  double qrsm_r_squared = 0.0;
  double qrsm_mape = 0.0;
  /// Peak bytes staged in the EC store.
  double peak_store_bytes = 0.0;
  /// Ticket SLA scorecard (scenario.ticket_policy).
  cbs::sla::TicketReport tickets{};
  /// Pay-as-you-go bill (scenario.cost_rates).
  cbs::sla::CostReport cost{};
  /// Fault/recovery counters (all zero when faults are disabled).
  FaultStats faults{};
};

/// Runs one scenario end to end: builds the hybrid cloud, pretrains the
/// QRSM on a synthetic factory corpus, schedules the batch arrivals, drives
/// the simulation to completion, validates the outcome invariants (throws
/// std::runtime_error on violation) and assembles the metrics.
///
/// Reentrant: every call builds its own Simulation, RNG streams and Logger
/// from the scenario alone and shares no mutable state with concurrent
/// calls, so the parallel runner (harness/runner.hpp) may invoke it from
/// many threads at once. The result is a pure function of the scenario —
/// identical at any thread count.
[[nodiscard]] RunResult run_scenario(const Scenario& scenario);

/// Runs the same scenario under several schedulers (paired workload) and
/// returns the results in the given order.
[[nodiscard]] std::vector<RunResult> run_comparison(
    const Scenario& base, const std::vector<cbs::core::SchedulerKind>& kinds);

/// Per-job completion series in queue order (Fig. 7/8's x-axis is the job
/// id, y-axis the completion time).
[[nodiscard]] std::vector<double> completion_by_seq(const RunResult& result);

}  // namespace cbs::harness
