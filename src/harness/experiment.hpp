#pragma once

#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "sla/cost.hpp"
#include "sla/job_outcome.hpp"
#include "sla/oo_metric.hpp"
#include "sla/report.hpp"
#include "sla/tickets.hpp"
#include "stats/timeseries.hpp"

namespace cbs::harness {

/// Everything a bench or test needs from one finished run.
struct RunResult {
  Scenario scenario;
  cbs::sla::SlaReport report;
  std::vector<cbs::sla::JobOutcome> outcomes;
  /// o_t sampled at the scenario's OO interval/tolerance.
  cbs::stats::TimeSeries oo_series;
  double sim_end_time = 0.0;
  std::size_t events_processed = 0;
  std::size_t pull_backs = 0;
  std::size_t push_outs = 0;
  /// QRSM fit quality at end of run (NaN for the oracle estimator).
  double qrsm_r_squared = 0.0;
  double qrsm_mape = 0.0;
  /// Peak bytes staged in the EC store.
  double peak_store_bytes = 0.0;
  /// Ticket SLA scorecard (scenario.ticket_policy).
  cbs::sla::TicketReport tickets{};
  /// Pay-as-you-go bill (scenario.cost_rates).
  cbs::sla::CostReport cost{};
};

/// Runs one scenario end to end: builds the hybrid cloud, pretrains the
/// QRSM on a synthetic factory corpus, schedules the batch arrivals, drives
/// the simulation to completion, validates the outcome invariants (throws
/// std::runtime_error on violation) and assembles the metrics.
///
/// Reentrant: every call builds its own Simulation, RNG streams and Logger
/// from the scenario alone and shares no mutable state with concurrent
/// calls, so the parallel runner (harness/runner.hpp) may invoke it from
/// many threads at once. The result is a pure function of the scenario —
/// identical at any thread count.
[[nodiscard]] RunResult run_scenario(const Scenario& scenario);

/// Runs the same scenario under several schedulers (paired workload) and
/// returns the results in the given order.
[[nodiscard]] std::vector<RunResult> run_comparison(
    const Scenario& base, const std::vector<cbs::core::SchedulerKind>& kinds);

/// Per-job completion series in queue order (Fig. 7/8's x-axis is the job
/// id, y-axis the completion time).
[[nodiscard]] std::vector<double> completion_by_seq(const RunResult& result);

}  // namespace cbs::harness
