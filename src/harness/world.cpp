#include "harness/world.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "models/estimator.hpp"
#include "simcore/rng.hpp"
#include "simcore/snapshot.hpp"
#include "sla/cost.hpp"
#include "sla/oo_metric.hpp"
#include "sla/report.hpp"
#include "sla/tickets.hpp"
#include "workload/generator.hpp"

namespace cbs::harness {

namespace {

/// The "standard set of production data observed across a variety of
/// locations" (§III.A.1): a uniform corpus, labeled by actually observed
/// (noisy) runtimes.
void pretrain_controller(cbs::core::CloudBurstController& controller,
                         cbs::workload::GroundTruthModel& truth,
                         std::size_t samples, cbs::sim::RngStream rng) {
  if (samples == 0) return;
  cbs::workload::WorkloadGenerator::Config gen_cfg;
  gen_cfg.bucket = cbs::workload::SizeBucket::kUniform;
  cbs::workload::WorkloadGenerator corpus_gen(gen_cfg, truth,
                                              rng.substream("corpus"));
  std::vector<cbs::workload::Document> docs = corpus_gen.batch(samples);
  std::vector<double> runtimes;
  runtimes.reserve(docs.size());
  for (const auto& d : docs) runtimes.push_back(truth.sample_seconds(d.features));
  controller.pretrain(docs, runtimes);
}

/// The OO metric's o_t (paper Eq. 5–6) evaluated on a *partial* outcome
/// set (a mid-horizon rollout has gaps in the seq-id space, which
/// OoMetricCalculator rejects): the cumulative output MB of completed jobs
/// with id <= m, where m is the largest id with at most `tolerance`
/// missing jobs below it.
double ordered_output_mb(const std::vector<cbs::sla::JobOutcome>& outcomes,
                         std::uint64_t tolerance) {
  if (outcomes.empty()) return 0.0;
  std::uint64_t max_id = 0;
  for (const auto& o : outcomes) max_id = std::max(max_id, o.seq_id);
  std::vector<double> output_by_id(max_id + 1, -1.0);  // -1 = missing
  for (const auto& o : outcomes) output_by_id[o.seq_id] = o.output_mb;
  double ordered = 0.0;
  double running = 0.0;
  std::uint64_t missing = 0;
  for (std::uint64_t id = 1; id <= max_id; ++id) {
    if (output_by_id[id] < 0.0) {
      if (++missing > tolerance) break;
      continue;
    }
    running += output_by_id[id];
    ordered = running;
  }
  return ordered;
}

}  // namespace

ScenarioWorld::ScenarioWorld(const Scenario& scenario)
    : scenario_(scenario),
      truth_(scenario.truth,
             cbs::sim::RngStream(scenario.seed).substream("truth")) {
  // The build order below mirrors the historical run_scenario body line by
  // line (substream derivation is a pure function of (parent, name), so
  // the local root here draws identically to the original's).
  cbs::sim::RngStream root(scenario.seed);

  cbs::workload::WorkloadGenerator::Config gen_cfg;
  gen_cfg.bucket = scenario.bucket;
  cbs::workload::WorkloadGenerator generator(gen_cfg, truth_,
                                             root.substream("workload"));

  controller_ = std::make_unique<cbs::core::CloudBurstController>(
      sim_, scenario.controller_config(), truth_, root.substream("system"));
  pretrain_controller(*controller_, truth_, scenario.pretrain_samples,
                      root.substream("pretrain"));

  cbs::workload::BatchArrivalProcess::Config arr_cfg;
  arr_cfg.batch_interval = scenario.batch_interval_seconds;
  arr_cfg.mean_jobs_per_batch = scenario.mean_jobs_per_batch;
  arr_cfg.num_batches = scenario.num_batches;
  cbs::workload::BatchArrivalProcess arrivals(arr_cfg, generator,
                                              root.substream("arrivals"));
  batches_ = arrivals.generate_all();

  // Pre-size the event slab: all batch-arrival events are pending at once,
  // plus a working set of per-job events for roughly two batches in flight
  // (jobs overlap at the batch boundary, not across the whole horizon).
  std::size_t max_batch_jobs = 0;
  for (const auto& b : batches_) {
    max_batch_jobs = std::max(max_batch_jobs, b.documents.size());
  }
  sim_.reserve_events(batches_.size() + 4 * max_batch_jobs + 64);

  batch_events_.reserve(batches_.size());
  for (std::size_t i = 0; i < batches_.size(); ++i) {
    batch_events_.push_back(sim_.schedule_at(
        batches_[i].arrival_time, [this, i] { deliver_batch(i); }));
  }
}

ScenarioWorld::ScenarioWorld(const ScenarioWorld& src)
    : scenario_(src.scenario_),
      truth_(src.truth_),
      batches_(src.batches_),
      batch_events_(src.batch_events_),
      rollout_(src.rollout_),
      rollout_kind_(src.rollout_kind_),
      lookahead_choices_(src.lookahead_choices_) {
  cbs::sim::SnapshotContext ctx(src.sim_, sim_);
  controller_ = std::make_unique<cbs::core::CloudBurstController>(
      sim_, *src.controller_, truth_);
  for (std::size_t i = 0; i < batch_events_.size(); ++i) {
    batch_events_[i] =
        ctx.restore(batch_events_[i], [this, i] { deliver_batch(i); });
  }
  controller_->rebuild_events(ctx);
  const std::size_t orphaned = ctx.finish();
  if (orphaned != 0) {
    throw std::runtime_error(
        "ScenarioWorld fork left " + std::to_string(orphaned) +
        " pending event(s) unclaimed (missing rebuild_events coverage)");
  }
}

cbs::sim::SimTime ScenarioWorld::run() { return sim_.run(); }

cbs::sim::SimTime ScenarioWorld::run_until(cbs::sim::SimTime deadline) {
  return sim_.run_until(deadline);
}

void ScenarioWorld::deliver_batch(std::size_t index) {
  batch_events_[index] = cbs::sim::EventId{};  // fired: inert across forks
  const cbs::workload::Batch& batch = batches_[index];
  if (rollout_) {
    // Inside a candidate rollout the policy under evaluation persists for
    // every in-horizon arrival; no nested lookahead.
    controller_->on_batch_as(batch, rollout_kind_);
    return;
  }
  if (scenario_.scheduler == cbs::core::SchedulerKind::kLookahead) {
    LookaheadController::Config cfg;
    cfg.horizon_seconds = scenario_.lookahead_horizon_seconds;
    cfg.candidates = scenario_.lookahead_candidates;
    const LookaheadController lookahead(cfg);
    const LookaheadController::Decision decision = lookahead.decide(*this, batch);
    lookahead_choices_.push_back(decision.kind);
    controller_->on_batch_as(batch, decision.kind);
    return;
  }
  controller_->on_batch(batch);
}

RunResult ScenarioWorld::result() const {
  if (controller_->outstanding_jobs() != 0) {
    throw std::runtime_error("run_scenario: simulation drained with " +
                             std::to_string(controller_->outstanding_jobs()) +
                             " jobs outstanding");
  }
  const std::string violation =
      cbs::sla::validate_outcomes(controller_->outcomes());
  if (!violation.empty()) {
    throw std::runtime_error("run_scenario: outcome invariants violated: " +
                             violation);
  }
  const cbs::core::CloudBurstController& controller = *controller_;

  RunResult result;
  result.scenario = scenario_;
  result.outcomes = controller.outcomes();
  result.sim_end_time = sim_.now();
  result.events_processed = static_cast<std::size_t>(sim_.events_processed());
  result.pull_backs = controller.pull_backs();
  result.push_outs = controller.push_outs();
  result.peak_store_bytes = controller.store().peak_occupancy_bytes();

  result.faults.ic_crashes = controller.ic_cluster().crashes();
  result.faults.ec_crashes = controller.ec_cluster().crashes();
  result.faults.reexecutions = controller.ic_cluster().reexecutions() +
                               controller.ec_cluster().reexecutions();
  result.faults.wasted_compute_seconds =
      controller.ic_cluster().wasted_standard_seconds() +
      controller.ec_cluster().wasted_standard_seconds();
  result.faults.link_outage_aborts =
      controller.uplink().outage_aborts() + controller.downlink().outage_aborts();
  result.faults.link_drops = controller.uplink().injected_failures() +
                             controller.downlink().injected_failures();
  result.faults.wasted_transfer_bytes =
      controller.uplink().wasted_bytes() + controller.downlink().wasted_bytes();
  result.faults.retractions = controller.retractions();
  result.faults.store_retries = controller.store().failed_attempts();
  result.faults.store_abandoned = controller.store().abandoned_ops();
  result.faults.probe_blackout_skips = controller.probe_blackout_skips();
  if (const auto* plan = controller.fault_plan()) {
    result.faults.crashes_injected = plan->crashes_injected();
    result.faults.outages = plan->outages_started();
  }
  result.faults.drains =
      controller.ic_cluster().drains() + controller.ec_cluster().drains();
  result.faults.undrains =
      controller.ic_cluster().undrains() + controller.ec_cluster().undrains();
  result.faults.drain_preemptions = controller.ic_cluster().drain_preemptions() +
                                    controller.ec_cluster().drain_preemptions();
  result.faults.idle_crashes_absorbed =
      controller.ic_cluster().idle_crashes_absorbed() +
      controller.ec_cluster().idle_crashes_absorbed();
  result.faults.checkpointed_compute_seconds =
      controller.ic_cluster().checkpointed_standard_seconds() +
      controller.ec_cluster().checkpointed_standard_seconds();
  for (const auto* hazard : {controller.ic_hazard(), controller.ec_hazard()}) {
    if (hazard == nullptr) continue;
    const cbs::models::HazardPredictionStats& hs = hazard->stats();
    result.faults.hazard_predictions += hs.predictions;
    result.faults.hazard_true_positives += hs.true_positives;
    result.faults.hazard_false_positives += hs.false_positives;
    result.faults.hazard_false_negatives += hs.false_negatives;
  }

  result.report = cbs::sla::build_report(
      std::string(cbs::core::to_string(scenario_.scheduler)),
      std::string(cbs::workload::to_string(scenario_.bucket)), result.outcomes,
      controller.ic_cluster().total_busy_time(),
      controller.ic_cluster().machine_count(),
      controller.ec_cluster().total_busy_time(),
      controller.ec_cluster().machine_count(), scenario_.oo_sampling_interval,
      scenario_.oo_tolerance);

  cbs::sla::OoMetricCalculator oo(result.outcomes);
  result.oo_series =
      oo.ordered_mb_series(scenario_.oo_sampling_interval, scenario_.oo_tolerance);

  result.tickets =
      cbs::sla::evaluate_tickets(result.outcomes, scenario_.ticket_policy);
  result.cost =
      cbs::sla::compute_cost(controller.cost_inputs(), scenario_.cost_rates);

  if (const auto* qrsm = dynamic_cast<const cbs::models::QrsmEstimator*>(
          &controller.service_estimator());
      qrsm != nullptr && qrsm->model().last_fit()) {
    result.qrsm_r_squared = qrsm->model().last_fit()->r_squared;
    result.qrsm_mape = qrsm->model().last_fit()->mape;
  } else {
    result.qrsm_r_squared = std::nan("");
    result.qrsm_mape = std::nan("");
  }
  return result;
}

const std::vector<cbs::core::SchedulerKind>&
LookaheadController::candidate_order() {
  static const std::vector<cbs::core::SchedulerKind> kOrder = {
      cbs::core::SchedulerKind::kOrderPreserving,
      cbs::core::SchedulerKind::kGreedy,
      cbs::core::SchedulerKind::kIcOnly,
      cbs::core::SchedulerKind::kBandwidthSplit,
      cbs::core::SchedulerKind::kRandom,
  };
  return kOrder;
}

LookaheadController::Decision LookaheadController::decide(
    const ScenarioWorld& parent, const cbs::workload::Batch& batch) const {
  const auto& order = candidate_order();
  const std::size_t count = std::min(
      order.size(),
      static_cast<std::size_t>(std::max(1, config_.candidates)));

  Decision decision;
  decision.scores.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    const cbs::core::SchedulerKind kind = order[c];
    std::unique_ptr<ScenarioWorld> rollout = parent.fork();
    rollout->begin_rollout(kind);
    // The decision point's arrival event has already fired in the parent,
    // so the fork never sees it — inject the batch by hand.
    rollout->inject_batch_as(batch, kind);
    rollout->run_until(parent.now() + config_.horizon_seconds);
    const double score = score_world(*rollout);
    decision.scores.emplace_back(kind, score);
    if (c == 0 || score < decision.score) {
      decision.kind = kind;
      decision.score = score;
    }
  }
  return decision;
}

double LookaheadController::score_world(const ScenarioWorld& world) const {
  const auto& outcomes = world.controller().outcomes();
  const cbs::sla::TicketPolicy& policy = world.scenario().ticket_policy;
  double lateness = 0.0;
  for (const auto& o : outcomes) {
    lateness += std::max(0.0, o.completed - policy.deadline_for(o));
  }
  const double unfinished =
      config_.unfinished_penalty_seconds *
      static_cast<double>(world.controller().outstanding_jobs());
  const cbs::sla::CostReport cost = cbs::sla::compute_cost(
      world.controller().cost_inputs(), world.scenario().cost_rates);
  const double oo =
      ordered_output_mb(outcomes, world.scenario().oo_tolerance);
  // Predicted-outage exposure: jobs the horizon-end belief still places on
  // the EC are at risk of a predicted crash; price that as a fraction of
  // the unfinished penalty. Zero exactly when the hazard predictor is off
  // (ec_failure_risk() is 0), so the score is unchanged.
  const double hazard_exposure =
      config_.hazard_risk_weight * world.controller().ec_failure_risk() *
      static_cast<double>(world.controller().outstanding_ec_jobs()) *
      config_.unfinished_penalty_seconds;
  return lateness + unfinished + hazard_exposure +
         config_.seconds_per_dollar * cost.cloud_total() -
         config_.oo_weight_seconds_per_mb * oo;
}

RunResult run_scenario_via_fork(const Scenario& scenario,
                                cbs::sim::SimTime fork_time) {
  ScenarioWorld parent(scenario);
  // fork_time 0 means a pristine fork: run_until(0) would already fire the
  // t=0 batch (events at exactly the deadline fire), so skip it.
  if (fork_time > 0.0) parent.run_until(fork_time);
  std::unique_ptr<ScenarioWorld> resumed = parent.fork();
  resumed->run();
  return resumed->result();
}

}  // namespace cbs::harness
