#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/config.hpp"
#include "simcore/logging.hpp"
#include "sla/cost.hpp"
#include "sla/tickets.hpp"
#include "workload/arrival.hpp"
#include "workload/generator.hpp"
#include "workload/ground_truth.hpp"

namespace cbs::harness {

/// A complete experiment description: workload, network regime, scheduler.
/// Two scenarios with the same seed and workload fields face byte-identical
/// arrivals and service times, so scheduler comparisons are paired.
struct Scenario {
  std::string name = "scenario";
  std::uint64_t seed = 42;

  // Workload (§V.A defaults: λ=15 jobs per 3-minute batch, 1–300 MB docs).
  cbs::workload::SizeBucket bucket = cbs::workload::SizeBucket::kUniform;
  std::size_t num_batches = 8;
  double mean_jobs_per_batch = 15.0;
  double batch_interval_seconds = 180.0;
  cbs::workload::GroundTruthModel::Config truth{};

  // System.
  cbs::core::SchedulerKind scheduler =
      cbs::core::SchedulerKind::kOrderPreserving;
  cbs::core::EstimatorKind estimator = cbs::core::EstimatorKind::kQrsm;
  bool high_network_variation = false;
  bool enable_rescheduler = false;

  /// Fault injection and burst-retraction recovery (simcore/fault_plan.hpp).
  /// Default-constructed = disabled; the run is then byte-identical to one
  /// without the fault layer.
  cbs::sim::FaultConfig faults{};

  /// Proactive failure resilience (models/hazard.hpp, DESIGN.md §13).
  /// Default-constructed = predictor off; the run is then byte-identical
  /// to one without the resilience layer.
  cbs::core::ResilienceConfig resilience{};

  // QRSM factory prior: corpus size used for pretraining (0 disables).
  std::size_t pretrain_samples = 120;

  // Model-predictive lookahead (scheduler == kLookahead): at every batch
  // arrival the world is forked once per candidate policy, each fork is
  // rolled `lookahead_horizon_seconds` forward, and the batch is committed
  // under the best-scoring candidate. The candidate list is a fixed
  // priority order (order-preserving, greedy, ic-only, bandwidth-split,
  // random) truncated to `lookahead_candidates`.
  double lookahead_horizon_seconds = 900.0;
  int lookahead_candidates = 3;

  // OO metric parameters (§V.B.2: 2-minute sampling; Fig. 10: t_l = 4).
  double oo_sampling_interval = 120.0;
  std::uint64_t oo_tolerance = 4;

  // Ticket SLA (§I) and pay-as-you-go billing evaluated on every run.
  cbs::sla::TicketPolicy ticket_policy{};
  cbs::sla::CostRates cost_rates{};

  /// Per-run logging: each run's controller owns its Logger configured
  /// from these fields, so concurrent run_scenario calls never share
  /// mutable logging state. The default sink (stderr) is only reached for
  /// warnings and above; set a sink to capture a run's log privately.
  cbs::sim::LogLevel log_threshold = cbs::sim::LogLevel::kWarn;
  cbs::sim::Logger::Sink log_sink{};

  /// Full controller override; when set, scheduler/estimator/rescheduler
  /// and network fields above are still applied on top of it.
  std::optional<cbs::core::ControllerConfig> config_override;

  /// Resolves the effective controller configuration.
  [[nodiscard]] cbs::core::ControllerConfig controller_config() const;
};

/// Named constructor for the §V experiment grid.
[[nodiscard]] Scenario make_scenario(cbs::core::SchedulerKind scheduler,
                                     cbs::workload::SizeBucket bucket,
                                     std::uint64_t seed = 42,
                                     bool high_network_variation = false);

}  // namespace cbs::harness
