#pragma once

#include <cstdio>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "stats/summary.hpp"

namespace cbs::harness {

/// The one table formatter the bench binaries share: build a header and
/// rows of text/numeric cells, then print an aligned console table and/or
/// the same content as CSV. Numeric cells are right-aligned, text cells
/// left-aligned; a `summary` cell renders "mean ±ci95".
///
/// Usage:
///   TextTable t({"scheduler", "makespan", "stddev"});
///   t.row().cell(name).num(s.mean(), 1, "s").num(s.stddev(), 1, "s");
///   t.print();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; chain cell()/num()/summary() to fill it.
  TextTable& row();

  TextTable& cell(std::string text);
  TextTable& cell(std::string_view text) { return cell(std::string(text)); }
  TextTable& cell(const char* text) { return cell(std::string(text)); }

  /// Fixed-precision numeric cell with optional unit suffix ("s", "%").
  TextTable& num(double value, int precision = 2, std::string_view suffix = "");

  /// "mean ±h" from a Summary's 95% CI half-width.
  TextTable& summary(const cbs::stats::Summary& s, int precision = 1,
                     std::string_view suffix = "");

  void print(std::FILE* out = stdout) const;

  /// Same content, comma-separated, header first. Cells are emitted
  /// verbatim (commas inside a cell are replaced by ';').
  void write_csv(std::ostream& out) const;

 private:
  struct Cell {
    std::string text;
    bool right_align = false;
  };

  TextTable& push(Cell c);

  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace cbs::harness
