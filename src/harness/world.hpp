#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/controller.hpp"
#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "simcore/simulation.hpp"
#include "workload/arrival.hpp"
#include "workload/ground_truth.hpp"

namespace cbs::harness {

/// A scenario's entire running state as a first-class, *forkable* value:
/// the engine, the ground-truth model, the controller and the pre-drawn
/// arrival schedule. `run_scenario` is a thin wrapper over this class;
/// holding the world directly additionally buys
///
///  - checkpoint/resume: `run_until(t)` then `fork()` yields an independent
///    deep copy whose continuation is byte-identical to the original's
///    (the fork-equivalence contract, enforced by tests/test_fork_golden);
///  - model-predictive lookahead: with `SchedulerKind::kLookahead` every
///    batch arrival forks the world once per candidate policy, rolls each
///    fork `lookahead_horizon_seconds` forward, and commits the batch under
///    the best-scoring candidate (LookaheadController below).
///
/// Construction replicates run_scenario's historical build order exactly —
/// same RNG substreams, same event (time, seq) assignment — so results are
/// byte-identical to the pre-world harness.
class ScenarioWorld {
 public:
  explicit ScenarioWorld(const Scenario& scenario);

  /// Fork: deep-copies `src` into an independent world via the
  /// SnapshotContext protocol. Throws std::runtime_error if any pending
  /// event of the source is left unclaimed (a component missed its
  /// rebuild_events hook — a bug, not a user error).
  ScenarioWorld(const ScenarioWorld& src);
  ScenarioWorld& operator=(const ScenarioWorld&) = delete;

  /// Drives the world to completion; returns the final clock.
  cbs::sim::SimTime run();

  /// Runs every event with timestamp <= `deadline`, then advances the
  /// clock to `deadline`. The natural checkpoint primitive: run_until(t),
  /// fork(), continue either copy.
  cbs::sim::SimTime run_until(cbs::sim::SimTime deadline);

  [[nodiscard]] std::unique_ptr<ScenarioWorld> fork() const {
    return std::make_unique<ScenarioWorld>(*this);
  }

  /// Validates the finished run and assembles the metrics (exactly what
  /// run_scenario returns). Throws on invariant violations.
  [[nodiscard]] RunResult result() const;

  [[nodiscard]] cbs::sim::SimTime now() const noexcept { return sim_.now(); }
  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const cbs::core::CloudBurstController& controller() const {
    return *controller_;
  }
  [[nodiscard]] const std::vector<cbs::workload::Batch>& batches() const noexcept {
    return batches_;
  }

  /// Marks this (freshly forked) world as a lookahead rollout: every
  /// in-horizon batch arrival is admitted under `kind` instead of the
  /// scenario scheduler, and no nested lookahead decisions are made.
  void begin_rollout(cbs::core::SchedulerKind kind) {
    rollout_ = true;
    rollout_kind_ = kind;
  }

  /// Admits one batch under a temporarily swapped-in candidate scheduler
  /// (forwards to CloudBurstController::on_batch_as).
  void inject_batch_as(const cbs::workload::Batch& batch,
                       cbs::core::SchedulerKind kind) {
    controller_->on_batch_as(batch, kind);
  }

  /// The candidate committed at each lookahead decision point, in batch
  /// order (empty unless scheduler == kLookahead).
  [[nodiscard]] const std::vector<cbs::core::SchedulerKind>& lookahead_choices()
      const noexcept {
    return lookahead_choices_;
  }

 private:
  void deliver_batch(std::size_t index);

  Scenario scenario_;
  cbs::sim::Simulation sim_;
  cbs::workload::GroundTruthModel truth_;
  std::unique_ptr<cbs::core::CloudBurstController> controller_;
  std::vector<cbs::workload::Batch> batches_;
  std::vector<cbs::sim::EventId> batch_events_;  ///< restored across forks
  bool rollout_ = false;
  cbs::core::SchedulerKind rollout_kind_ =
      cbs::core::SchedulerKind::kOrderPreserving;
  std::vector<cbs::core::SchedulerKind> lookahead_choices_;
};

/// The model-predictive burst policy (ISSUE tentpole): at a decision point
/// it forks the live world once per candidate scheduler, injects the batch
/// into each fork, rolls the fork `horizon_seconds` forward and scores the
/// resulting trajectory; the lowest score wins (first candidate wins ties,
/// so decisions are deterministic).
///
/// The score is an SLA-cost surrogate in "penalty seconds":
///
///   Σ ticket lateness  +  penalty × unfinished jobs
///     + seconds_per_dollar × cloud bill  −  oo_weight × ordered output MB
///
/// Lateness and the cloud bill are the two SLA terms the paper optimizes;
/// the ordered-output credit is its OO metric (Eq. 6) evaluated at horizon
/// end; the unfinished penalty keeps a candidate from looking good by
/// merely deferring work past the horizon.
class LookaheadController {
 public:
  struct Config {
    double horizon_seconds = 900.0;
    /// Candidates evaluated, a prefix of candidate_order() (min 1).
    int candidates = 3;
    /// Charged per job still outstanding at horizon end, seconds.
    double unfinished_penalty_seconds = 900.0;
    /// Exchange rate folding the cloud bill into penalty seconds.
    double seconds_per_dollar = 3600.0;
    /// Credit per MB of in-order output available at horizon end.
    double oo_weight_seconds_per_mb = 1.0;
    /// Weight of the predicted-EC-outage term: each job the rolled-forward
    /// world still believes on the EC is charged this fraction of the
    /// unfinished penalty times the controller's predicted EC failure
    /// risk. Exactly zero contribution when the hazard predictor is off.
    double hazard_risk_weight = 1.0;
  };

  struct Decision {
    cbs::core::SchedulerKind kind = cbs::core::SchedulerKind::kOrderPreserving;
    double score = 0.0;
    /// Every candidate's score, in evaluation order.
    std::vector<std::pair<cbs::core::SchedulerKind, double>> scores;
  };

  /// Fixed candidate priority: order-preserving, greedy, ic-only,
  /// bandwidth-split, random.
  [[nodiscard]] static const std::vector<cbs::core::SchedulerKind>&
  candidate_order();

  explicit LookaheadController(Config config) : config_(config) {}

  /// Evaluates the candidates for `batch` against `parent` (which is not
  /// modified — each rollout runs in its own fork).
  [[nodiscard]] Decision decide(const ScenarioWorld& parent,
                                const cbs::workload::Batch& batch) const;

  /// The trajectory score of a (rolled-forward) world; lower is better.
  [[nodiscard]] double score_world(const ScenarioWorld& world) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

/// Checkpoint/resume driver used by the fork-equivalence suite: builds a
/// fresh world, advances it to `fork_time`, forks it, abandons the parent
/// and completes the fork. The result must be byte-identical to
/// run_scenario(scenario) — for any fork_time. A fork_time of 0 forks the
/// pristine world before any event (including the t=0 batch) fires.
[[nodiscard]] RunResult run_scenario_via_fork(const Scenario& scenario,
                                              cbs::sim::SimTime fork_time);

}  // namespace cbs::harness
