#include "harness/csv.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace cbs::harness {

namespace csv {

void write_completion_series(std::ostream& out, const RunResult& result) {
  out << "seq,completed_seconds,placement\n";
  std::vector<const cbs::sla::JobOutcome*> sorted;
  sorted.reserve(result.outcomes.size());
  for (const auto& o : result.outcomes) sorted.push_back(&o);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->seq_id < b->seq_id; });
  for (const auto* o : sorted) {
    out << o->seq_id << ',' << o->completed << ','
        << cbs::sla::to_string(o->placement) << "\n";
  }
}

void write_oo_series(std::ostream& out, const RunResult& result) {
  out << "time_seconds,ordered_mb\n";
  for (const auto& p : result.oo_series.points()) {
    out << p.time << ',' << p.value << "\n";
  }
}

void write_oo_overlay(std::ostream& out, const std::vector<RunResult>& results,
                      double interval) {
  out << "time_seconds";
  double end = 0.0;
  for (const auto& r : results) {
    out << ',' << r.scenario.name;
    if (!r.oo_series.empty()) end = std::max(end, r.oo_series.back().time);
  }
  out << "\n";
  for (double t = 0.0; t <= end + 1e-9; t += interval) {
    out << t;
    for (const auto& r : results) out << ',' << r.oo_series.value_at(t);
    out << "\n";
  }
}

void write_reports(std::ostream& out, const std::vector<RunResult>& results) {
  out << "scenario,scheduler,bucket,jobs,makespan_s,speedup,ic_util,ec_util,"
         "burst_ratio,mean_turnaround_s,oo_avg_mb\n";
  for (const auto& r : results) {
    const auto& rep = r.report;
    out << r.scenario.name << ',' << rep.scheduler << ',' << rep.bucket << ','
        << rep.job_count << ',' << rep.makespan_seconds << ',' << rep.speedup
        << ',' << rep.ic_utilization << ',' << rep.ec_utilization << ','
        << rep.burst_ratio << ',' << rep.mean_turnaround_seconds << ','
        << rep.oo_time_averaged_mb << "\n";
  }
}

}  // namespace csv

std::string ascii_chart(const std::vector<double>& ys, std::size_t height,
                        std::size_t max_width) {
  if (ys.empty() || height == 0) return "";
  // Downsample to at most max_width columns by taking column maxima (peaks
  // are the interesting feature in the completion-time figures).
  std::vector<double> cols;
  const std::size_t stride = std::max<std::size_t>(1, ys.size() / max_width);
  for (std::size_t i = 0; i < ys.size(); i += stride) {
    double m = ys[i];
    for (std::size_t k = i; k < std::min(ys.size(), i + stride); ++k) {
      m = std::max(m, ys[k]);
    }
    cols.push_back(m);
  }
  const double lo = *std::min_element(cols.begin(), cols.end());
  const double hi = *std::max_element(cols.begin(), cols.end());
  const double span = hi - lo;

  std::string out;
  for (std::size_t row = 0; row < height; ++row) {
    const double level =
        hi - span * (static_cast<double>(row) / static_cast<double>(height - 1));
    for (double v : cols) {
      out += (span <= 0.0 ? row + 1 == height : v >= level - 1e-12) ? '#' : ' ';
    }
    out += '\n';
  }
  return out;
}

}  // namespace cbs::harness
