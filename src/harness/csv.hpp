#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace cbs::harness {

/// Small CSV/series printers shared by the bench binaries — every figure
/// bench emits a machine-readable series next to its human-readable table.
namespace csv {

/// "seq,completed_seconds,placement" rows (Fig. 7/8 data).
void write_completion_series(std::ostream& out, const RunResult& result);

/// "time,ordered_mb" rows of the OO series (Fig. 9 data).
void write_oo_series(std::ostream& out, const RunResult& result);

/// One labeled column per result, OO values on a shared time grid
/// (Fig. 9/10 overlays). Column label = scenario name.
void write_oo_overlay(std::ostream& out, const std::vector<RunResult>& results,
                      double interval);

/// Headline metrics, one row per result (Table I data).
void write_reports(std::ostream& out, const std::vector<RunResult>& results);

}  // namespace csv

/// Renders a crude ASCII line chart of (x implicit index, y value), for the
/// human-readable half of the figure benches. `height` rows tall.
[[nodiscard]] std::string ascii_chart(const std::vector<double>& ys,
                                      std::size_t height = 12,
                                      std::size_t max_width = 100);

}  // namespace cbs::harness
