#include "harness/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace cbs::harness {

ExperimentPlan ExperimentPlan::grid(
    std::vector<std::uint64_t> grid_seeds,
    std::vector<cbs::core::SchedulerKind> grid_schedulers,
    std::vector<cbs::workload::SizeBucket> grid_buckets, Scenario grid_base) {
  ExperimentPlan plan;
  plan.base = std::move(grid_base);
  plan.seeds = std::move(grid_seeds);
  plan.schedulers = std::move(grid_schedulers);
  plan.buckets = std::move(grid_buckets);
  return plan;
}

ExperimentPlan ExperimentPlan::list(std::vector<Scenario> scenarios) {
  ExperimentPlan plan;
  plan.extra = std::move(scenarios);
  return plan;
}

std::vector<PlanCell> ExperimentPlan::cells() const {
  std::vector<PlanCell> out;
  out.reserve(cell_count());
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      for (std::size_t k = 0; k < schedulers.size(); ++k) {
        PlanCell cell;
        cell.index = out.size();
        cell.seed_index = s;
        cell.bucket_index = b;
        cell.scheduler_index = k;
        Scenario sc = base;
        sc.seed = seeds[s];
        sc.bucket = buckets[b];
        sc.scheduler = schedulers[k];
        sc.name = std::string(cbs::core::to_string(schedulers[k])) + "/" +
                  std::string(cbs::workload::to_string(buckets[b]));
        if (sc.high_network_variation) sc.name += "/high-var";
        cell.scenario = std::move(sc);
        if (customize) customize(cell.scenario, cell);
        out.push_back(std::move(cell));
      }
    }
  }
  for (const Scenario& sc : extra) {
    PlanCell cell;
    cell.index = out.size();
    cell.scenario = sc;
    out.push_back(std::move(cell));
  }
  return out;
}

std::vector<CellResult> run_plan(const ExperimentPlan& plan,
                                 const RunnerOptions& options) {
  std::vector<PlanCell> cells = plan.cells();
  const std::size_t total = cells.size();
  std::vector<CellResult> results(total);
  if (total == 0) return results;

  std::function<RunResult(const Scenario&)> run = options.run;
  if (!run) run = [](const Scenario& s) { return run_scenario(s); };

  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, total);

  std::atomic<std::size_t> next{0};
  std::mutex progress_mutex;
  std::size_t done = 0;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      CellResult& slot = results[i];
      slot.cell = std::move(cells[i]);
      try {
        slot.result = run(slot.cell.scenario);
      } catch (const std::exception& e) {
        slot.error = e.what();
      } catch (...) {
        slot.error = "unknown exception";
      }
      if (options.progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        options.progress(slot, ++done, total);
      }
    }
  };

  if (threads == 1) {
    worker();  // inline: keeps single-threaded runs trivially debuggable
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return results;
}

std::size_t failed_cells(const std::vector<CellResult>& results) {
  return static_cast<std::size_t>(
      std::count_if(results.begin(), results.end(),
                    [](const CellResult& r) { return !r.ok(); }));
}

stats::SummaryMatrix reduce_over_seeds(const ExperimentPlan& plan,
                                       const std::vector<CellResult>& results,
                                       const MetricFn& metric) {
  std::vector<std::string> rows;
  rows.reserve(plan.buckets.size());
  for (const auto b : plan.buckets) {
    rows.emplace_back(cbs::workload::to_string(b));
  }
  std::vector<std::string> cols;
  cols.reserve(plan.schedulers.size());
  for (const auto k : plan.schedulers) {
    cols.emplace_back(cbs::core::to_string(k));
  }
  stats::SummaryMatrix matrix(std::move(rows), std::move(cols));
  for (const CellResult& r : results) {
    if (!r.ok() || r.cell.bucket_index == PlanCell::kNoAxis) continue;
    matrix.add(r.cell.bucket_index, r.cell.scheduler_index, metric(*r.result));
  }
  return matrix;
}

stats::GroupedSummary group_by_name(const std::vector<CellResult>& results,
                                    const MetricFn& metric) {
  stats::GroupedSummary groups;
  for (const CellResult& r : results) {
    if (!r.ok()) continue;
    groups.add(r.cell.scenario.name, metric(*r.result));
  }
  return groups;
}

std::vector<RunResult> last_seed_results(
    const ExperimentPlan& plan, const std::vector<CellResult>& results) {
  std::vector<RunResult> out;
  if (plan.seeds.empty()) return out;
  const std::size_t last = plan.seeds.size() - 1;
  for (const CellResult& r : results) {
    if (r.ok() && r.cell.seed_index == last) out.push_back(*r.result);
  }
  return out;
}

}  // namespace cbs::harness
