#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "stats/aggregate.hpp"

namespace cbs::harness {

/// One fully resolved cell of an ExperimentPlan. `index` is the cell's
/// position in deterministic plan order; `run_plan` always returns results
/// in this order, no matter which worker thread finished first.
struct PlanCell {
  static constexpr std::size_t kNoAxis = static_cast<std::size_t>(-1);

  std::size_t index = 0;
  Scenario scenario;
  /// Grid coordinates; kNoAxis for ad-hoc (`extra`) cells.
  std::size_t seed_index = kNoAxis;
  std::size_t bucket_index = kNoAxis;
  std::size_t scheduler_index = kNoAxis;
};

/// A declarative experiment sweep: the cartesian grid
/// seeds × buckets × schedulers stamped onto a base scenario, plus an
/// optional list of ad-hoc scenarios appended after the grid.
///
/// Cell order is seed-major, then bucket, then scheduler — all schedulers
/// of one (seed, bucket) pair are adjacent, which is exactly the paired
/// comparison order the serial benches used; `extra` cells follow in the
/// order given. Every figure in the paper is an average over such a grid,
/// so this is the unit the parallel runner executes.
struct ExperimentPlan {
  Scenario base{};
  std::vector<std::uint64_t> seeds;
  std::vector<cbs::core::SchedulerKind> schedulers;
  std::vector<cbs::workload::SizeBucket> buckets;

  /// Applied to every grid scenario after the axes are stamped; use it for
  /// per-cell tweaks that depend on the coordinates.
  std::function<void(Scenario&, const PlanCell&)> customize;

  /// Ad-hoc scenarios appended verbatim after the grid.
  std::vector<Scenario> extra;

  /// Grid plan: every seed × bucket × scheduler combination on `base`.
  [[nodiscard]] static ExperimentPlan grid(
      std::vector<std::uint64_t> seeds,
      std::vector<cbs::core::SchedulerKind> schedulers,
      std::vector<cbs::workload::SizeBucket> buckets, Scenario base = {});

  /// Pure list plan: the given scenarios, no grid.
  [[nodiscard]] static ExperimentPlan list(std::vector<Scenario> scenarios);

  /// Materializes the deterministic cell list.
  [[nodiscard]] std::vector<PlanCell> cells() const;

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return seeds.size() * buckets.size() * schedulers.size() + extra.size();
  }

  /// Index of a grid cell in plan order (extras follow the whole grid).
  [[nodiscard]] std::size_t grid_index(std::size_t seed_i, std::size_t bucket_i,
                                       std::size_t scheduler_i) const noexcept {
    return (seed_i * buckets.size() + bucket_i) * schedulers.size() +
           scheduler_i;
  }
};

/// Outcome of one cell: a RunResult, or the captured error of a run that
/// threw. A throwing cell is marked failed; sibling cells are unaffected.
struct CellResult {
  PlanCell cell;
  std::optional<RunResult> result;
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return result.has_value(); }
};

struct RunnerOptions {
  /// Worker threads; 0 = hardware concurrency, clamped to the cell count.
  std::size_t threads = 0;

  /// Per-cell body; defaults to run_scenario. Must be reentrant — it is
  /// called concurrently from worker threads on distinct scenarios and
  /// must share no mutable state across calls (see the thread-safety
  /// contract in simcore/simulation.hpp).
  std::function<RunResult(const Scenario&)> run;

  /// Invoked after each finished cell, in completion order, with progress
  /// counters. Called under an internal mutex: the callback need not
  /// synchronize, but must not call back into the runner.
  std::function<void(const CellResult&, std::size_t done, std::size_t total)>
      progress;
};

/// Executes every cell of `plan` on a thread pool and returns the results
/// indexed exactly like `plan.cells()`. Per-cell exceptions are captured
/// into the cell's CellResult instead of aborting the sweep. Results are
/// bit-identical for any thread count: each run is seeded independently
/// and aggregation order is plan order, not completion order.
[[nodiscard]] std::vector<CellResult> run_plan(
    const ExperimentPlan& plan, const RunnerOptions& options = {});

/// Number of failed cells in a result set.
[[nodiscard]] std::size_t failed_cells(const std::vector<CellResult>& results);

// ---- matrix aggregation over plan axes --------------------------------

using MetricFn = std::function<double(const RunResult&)>;

/// Folds the seed axis of grid results into a bucket × scheduler matrix of
/// Summaries (mean/stddev/CI per cell). Failed cells simply contribute no
/// observation. Extras are ignored — group them with `group_by_name`.
[[nodiscard]] stats::SummaryMatrix reduce_over_seeds(
    const ExperimentPlan& plan, const std::vector<CellResult>& results,
    const MetricFn& metric);

/// Groups results (grid and extras alike) by scenario name — scenarios
/// sharing a name across seeds fold into one Summary, in first-appearance
/// order.
[[nodiscard]] stats::GroupedSummary group_by_name(
    const std::vector<CellResult>& results, const MetricFn& metric);

/// The ok results of the last seed of a grid plan, in (bucket, scheduler)
/// order — the slice benches print as per-run CSV.
[[nodiscard]] std::vector<RunResult> last_seed_results(
    const ExperimentPlan& plan, const std::vector<CellResult>& results);

}  // namespace cbs::harness
