#include "harness/scenario.hpp"

#include <sstream>

namespace cbs::harness {

cbs::core::ControllerConfig Scenario::controller_config() const {
  cbs::core::ControllerConfig cfg =
      config_override.value_or(
          cbs::core::default_controller_config(high_network_variation));
  if (config_override && high_network_variation) {
    cfg.uplink.noise_rho = 0.95;
    cfg.uplink.noise_sigma = 0.25;
    cfg.uplink.noise_step = 120.0;
    cfg.downlink.noise_rho = 0.95;
    cfg.downlink.noise_sigma = 0.25;
    cfg.downlink.noise_step = 120.0;
  }
  cfg.scheduler = scheduler;
  cfg.estimator = estimator;
  cfg.enable_rescheduler = enable_rescheduler;
  if (faults.enabled()) cfg.faults = faults;
  if (resilience.enabled()) cfg.resilience = resilience;
  cfg.log_threshold = log_threshold;
  cfg.log_sink = log_sink;
  return cfg;
}

Scenario make_scenario(cbs::core::SchedulerKind scheduler,
                       cbs::workload::SizeBucket bucket, std::uint64_t seed,
                       bool high_network_variation) {
  Scenario s;
  s.scheduler = scheduler;
  s.bucket = bucket;
  s.seed = seed;
  s.high_network_variation = high_network_variation;
  std::ostringstream name;
  name << cbs::core::to_string(scheduler) << "/"
       << cbs::workload::to_string(bucket);
  if (high_network_variation) name << "/high-var";
  s.name = name.str();
  return s;
}

}  // namespace cbs::harness
