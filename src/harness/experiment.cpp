#include "harness/experiment.hpp"

#include <cmath>
#include <stdexcept>

#include "core/controller.hpp"
#include "models/estimator.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "workload/arrival.hpp"

namespace cbs::harness {

namespace {

/// The "standard set of production data observed across a variety of
/// locations" (§III.A.1): a uniform corpus, labeled by actually observed
/// (noisy) runtimes.
void pretrain_controller(cbs::core::CloudBurstController& controller,
                         cbs::workload::GroundTruthModel& truth,
                         std::size_t samples, cbs::sim::RngStream rng) {
  if (samples == 0) return;
  cbs::workload::WorkloadGenerator::Config gen_cfg;
  gen_cfg.bucket = cbs::workload::SizeBucket::kUniform;
  cbs::workload::WorkloadGenerator corpus_gen(gen_cfg, truth,
                                              rng.substream("corpus"));
  std::vector<cbs::workload::Document> docs = corpus_gen.batch(samples);
  std::vector<double> runtimes;
  runtimes.reserve(docs.size());
  for (const auto& d : docs) runtimes.push_back(truth.sample_seconds(d.features));
  controller.pretrain(docs, runtimes);
}

}  // namespace

RunResult run_scenario(const Scenario& scenario) {
  cbs::sim::Simulation sim;
  cbs::sim::RngStream root(scenario.seed);

  cbs::workload::GroundTruthModel truth(scenario.truth, root.substream("truth"));

  cbs::workload::WorkloadGenerator::Config gen_cfg;
  gen_cfg.bucket = scenario.bucket;
  cbs::workload::WorkloadGenerator generator(gen_cfg, truth,
                                             root.substream("workload"));

  cbs::core::CloudBurstController controller(sim, scenario.controller_config(),
                                             truth, root.substream("system"));
  pretrain_controller(controller, truth, scenario.pretrain_samples,
                      root.substream("pretrain"));

  cbs::workload::BatchArrivalProcess::Config arr_cfg;
  arr_cfg.batch_interval = scenario.batch_interval_seconds;
  arr_cfg.mean_jobs_per_batch = scenario.mean_jobs_per_batch;
  arr_cfg.num_batches = scenario.num_batches;
  cbs::workload::BatchArrivalProcess arrivals(arr_cfg, generator,
                                              root.substream("arrivals"));
  arrivals.schedule_on(sim, [&controller](const cbs::workload::Batch& batch) {
    controller.on_batch(batch);
  });

  sim.run();

  if (controller.outstanding_jobs() != 0) {
    throw std::runtime_error("run_scenario: simulation drained with " +
                             std::to_string(controller.outstanding_jobs()) +
                             " jobs outstanding");
  }
  const std::string violation =
      cbs::sla::validate_outcomes(controller.outcomes());
  if (!violation.empty()) {
    throw std::runtime_error("run_scenario: outcome invariants violated: " +
                             violation);
  }

  RunResult result;
  result.scenario = scenario;
  result.outcomes = controller.outcomes();
  result.sim_end_time = sim.now();
  result.events_processed = static_cast<std::size_t>(sim.events_processed());
  result.pull_backs = controller.pull_backs();
  result.push_outs = controller.push_outs();
  result.peak_store_bytes = controller.store().peak_occupancy_bytes();

  result.faults.ic_crashes = controller.ic_cluster().crashes();
  result.faults.ec_crashes = controller.ec_cluster().crashes();
  result.faults.reexecutions = controller.ic_cluster().reexecutions() +
                               controller.ec_cluster().reexecutions();
  result.faults.wasted_compute_seconds =
      controller.ic_cluster().wasted_standard_seconds() +
      controller.ec_cluster().wasted_standard_seconds();
  result.faults.link_outage_aborts =
      controller.uplink().outage_aborts() + controller.downlink().outage_aborts();
  result.faults.link_drops = controller.uplink().injected_failures() +
                             controller.downlink().injected_failures();
  result.faults.wasted_transfer_bytes =
      controller.uplink().wasted_bytes() + controller.downlink().wasted_bytes();
  result.faults.retractions = controller.retractions();
  result.faults.store_retries = controller.store().failed_attempts();
  result.faults.store_abandoned = controller.store().abandoned_ops();
  result.faults.probe_blackout_skips = controller.probe_blackout_skips();
  if (const auto* plan = controller.fault_plan()) {
    result.faults.crashes_injected = plan->crashes_injected();
    result.faults.outages = plan->outages_started();
  }

  result.report = cbs::sla::build_report(
      std::string(cbs::core::to_string(scenario.scheduler)),
      std::string(cbs::workload::to_string(scenario.bucket)), result.outcomes,
      controller.ic_cluster().total_busy_time(),
      controller.ic_cluster().machine_count(),
      controller.ec_cluster().total_busy_time(),
      controller.ec_cluster().machine_count(), scenario.oo_sampling_interval,
      scenario.oo_tolerance);

  cbs::sla::OoMetricCalculator oo(result.outcomes);
  result.oo_series =
      oo.ordered_mb_series(scenario.oo_sampling_interval, scenario.oo_tolerance);

  result.tickets =
      cbs::sla::evaluate_tickets(result.outcomes, scenario.ticket_policy);
  result.cost =
      cbs::sla::compute_cost(controller.cost_inputs(), scenario.cost_rates);

  if (const auto* qrsm = dynamic_cast<const cbs::models::QrsmEstimator*>(
          &controller.service_estimator());
      qrsm != nullptr && qrsm->model().last_fit()) {
    result.qrsm_r_squared = qrsm->model().last_fit()->r_squared;
    result.qrsm_mape = qrsm->model().last_fit()->mape;
  } else {
    result.qrsm_r_squared = std::nan("");
    result.qrsm_mape = std::nan("");
  }
  return result;
}

std::vector<RunResult> run_comparison(
    const Scenario& base, const std::vector<cbs::core::SchedulerKind>& kinds) {
  std::vector<RunResult> results;
  results.reserve(kinds.size());
  for (const auto kind : kinds) {
    Scenario s = base;
    s.scheduler = kind;
    s.name = std::string(cbs::core::to_string(kind)) + "/" +
             std::string(cbs::workload::to_string(base.bucket));
    results.push_back(run_scenario(s));
  }
  return results;
}

std::vector<double> completion_by_seq(const RunResult& result) {
  std::vector<double> by_seq(result.outcomes.size());
  for (const auto& o : result.outcomes) {
    by_seq.at(o.seq_id - 1) = o.completed;
  }
  return by_seq;
}

}  // namespace cbs::harness
