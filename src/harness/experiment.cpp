#include "harness/experiment.hpp"

#include "harness/world.hpp"

namespace cbs::harness {

RunResult run_scenario(const Scenario& scenario) {
  ScenarioWorld world(scenario);
  world.run();
  return world.result();
}

std::vector<RunResult> run_comparison(
    const Scenario& base, const std::vector<cbs::core::SchedulerKind>& kinds) {
  std::vector<RunResult> results;
  results.reserve(kinds.size());
  for (const auto kind : kinds) {
    Scenario s = base;
    s.scheduler = kind;
    s.name = std::string(cbs::core::to_string(kind)) + "/" +
             std::string(cbs::workload::to_string(base.bucket));
    results.push_back(run_scenario(s));
  }
  return results;
}

std::vector<double> completion_by_seq(const RunResult& result) {
  std::vector<double> by_seq(result.outcomes.size());
  for (const auto& o : result.outcomes) {
    by_seq.at(o.seq_id - 1) = o.completed;
  }
  return by_seq;
}

}  // namespace cbs::harness
