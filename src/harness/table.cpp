#include "harness/table.hpp"

#include <algorithm>
#include <ostream>

namespace cbs::harness {

namespace {

std::string format_double(double value, int precision,
                          std::string_view suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string out(buf);
  out.append(suffix);
  return out;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::push(Cell c) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(c));
  return *this;
}

TextTable& TextTable::cell(std::string text) {
  return push({std::move(text), false});
}

TextTable& TextTable::num(double value, int precision,
                          std::string_view suffix) {
  return push({format_double(value, precision, suffix), true});
}

TextTable& TextTable::summary(const cbs::stats::Summary& s, int precision,
                              std::string_view suffix) {
  std::string text = format_double(s.mean(), precision, suffix);
  if (s.count() > 1) {
    text += " \xC2\xB1";  // ±
    text += format_double(s.ci95_halfwidth(), precision, suffix);
  }
  return push({std::move(text), true});
}

void TextTable::print(std::FILE* out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  auto display_width = [](const std::string& s) {
    // Count UTF-8 code points, not bytes (the ± in summary cells).
    return static_cast<std::size_t>(
        std::count_if(s.begin(), s.end(), [](unsigned char ch) {
          return (ch & 0xC0) != 0x80;
        }));
  };
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], display_width(row[c].text));
    }
  }
  auto print_padded = [&](const std::string& text, std::size_t width,
                          bool right) {
    const std::size_t w = display_width(text);
    const std::size_t pad = width > w ? width - w : 0;
    if (right) {
      std::fprintf(out, "%*s%s", static_cast<int>(pad), "", text.c_str());
    } else {
      std::fprintf(out, "%s%*s", text.c_str(), static_cast<int>(pad), "");
    }
  };
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) std::fputs("  ", out);
    print_padded(header_[c], widths[c], c > 0);
  }
  std::fputc('\n', out);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) std::fputs("  ", out);
      const std::size_t width = c < widths.size() ? widths[c] : 0;
      print_padded(row[c].text, width, row[c].right_align);
    }
    std::fputc('\n', out);
  }
}

void TextTable::write_csv(std::ostream& out) const {
  auto sanitize = [](std::string s) {
    std::replace(s.begin(), s.end(), ',', ';');
    return s;
  };
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out << ',';
    out << sanitize(header_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << sanitize(row[c].text);
    }
    out << '\n';
  }
}

}  // namespace cbs::harness
