#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace cbs::harness::cli {

/// Minimal GNU-style flag parser for the scenario tools: supports
/// `--key=value`, `--key value` and boolean `--flag`. Unknown flags are an
/// error (typos should not silently change an experiment).
class Args {
 public:
  /// Parses argv. Throws std::runtime_error on malformed input.
  Args(int argc, const char* const* argv,
       const std::vector<std::string>& known_flags);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_double_or(const std::string& key,
                                     double fallback) const;
  [[nodiscard]] long get_long_or(const std::string& key, long fallback) const;

  /// Non-flag positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Parses a scheduler name ("ic-only", "greedy", "order-preserving",
/// "op-bandwidth-split", "random", "lookahead"); throws on anything else.
[[nodiscard]] cbs::core::SchedulerKind parse_scheduler(const std::string& name);

/// Parses a bucket name ("small", "uniform", "large"); throws otherwise.
[[nodiscard]] cbs::workload::SizeBucket parse_bucket(const std::string& name);

/// Parses a hazard-predictor name ("off", "ewma", "bayes"); throws
/// otherwise.
[[nodiscard]] cbs::models::HazardPredictorKind parse_hazard_predictor(
    const std::string& name);

/// Builds a Scenario from parsed flags. Recognized flags:
///   --scheduler --bucket --seed --batches --lambda --interval --high-var
///   --rescheduler --elastic --estimator (qrsm|oracle|per-class)
///   --tolerance --oo-interval --noise
///   --ic-mtbf --ec-mtbf --vm-recovery --retraction-factor (fault layer)
///   --hazard-predictor (off|ewma|bayes) --drain-threshold --drain-window
///   --risk-weight (proactive resilience, DESIGN.md §13)
///   --horizon --candidates (model-predictive lookahead, harness/world.hpp)
[[nodiscard]] Scenario scenario_from_args(const Args& args);

/// The flag set scenario_from_args understands (for constructing Args).
/// Includes the sweep flags --seeds and --threads, so every bench binary
/// accepts them uniformly.
[[nodiscard]] const std::vector<std::string>& scenario_flags();

/// Parses a comma-separated seed list ("42,7,1337"); throws on malformed
/// input or an empty list.
[[nodiscard]] std::vector<std::uint64_t> parse_seed_list(
    const std::string& csv);

/// The sweep's seed axis: `--seeds a,b,c` when given, else `fallback`.
[[nodiscard]] std::vector<std::uint64_t> seeds_from_args(
    const Args& args, std::vector<std::uint64_t> fallback);

/// Worker-thread count for the experiment runner: `--threads N` when
/// given (N >= 1), else 0 = hardware concurrency.
[[nodiscard]] std::size_t threads_from_args(const Args& args);

}  // namespace cbs::harness::cli
