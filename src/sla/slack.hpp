#pragma once

#include <vector>

#include "simcore/time.hpp"

namespace cbs::sla {

/// Slackness of §II.A. The slack of the i-th queued job is the latest of
/// the estimated completion times of the jobs preceding it (Eq. 1):
///
///   slack(j_i) = max(T_i),  T_i = { t_c^e(i') : i' < i }
///
/// and j_i may be bursted when its full external round trip finishes within
/// that cushion (Eq. 2):
///
///   slack(j_i) >= t^e(i) + s_i/l(t_i) + o_i/l(t_i + t')
///
/// Both sides are absolute times here (the harness works in absolute sim
/// time); callers pass the estimated completion times of the preceding jobs
/// as currently placed.

/// Eq. 1. `preceding_completion_estimates` holds t_c^e of jobs ahead of i;
/// returns `fallback` (typically "now") when the queue ahead is empty —
/// a job with nothing ahead of it has no cushion.
[[nodiscard]] cbs::sim::SimTime slack_time(
    const std::vector<cbs::sim::SimTime>& preceding_completion_estimates,
    cbs::sim::SimTime fallback);

/// Eq. 2 split into its round-trip components, evaluated with the
/// scheduler's estimated rates. Returns the estimated absolute completion
/// time of the external round trip started at `start`:
///   start + upload + processing + download.
[[nodiscard]] cbs::sim::SimTime external_round_trip_finish(
    cbs::sim::SimTime start, double upload_seconds, double processing_seconds,
    double download_seconds);

/// The burst admission test of Algorithm 2, line 12: the estimated external
/// finish must not exceed the slack (with an optional safety margin τ —
/// §IV says the bursted output should be needed "only a small time τ before
/// the jobs preceding it complete", i.e. finishing τ early is the target).
[[nodiscard]] bool satisfies_slack(cbs::sim::SimTime external_finish_estimate,
                                   cbs::sim::SimTime slack,
                                   cbs::sim::SimDuration safety_margin = 0.0);

}  // namespace cbs::sla
