#include "sla/oo_metric.hpp"

#include <algorithm>
#include <cassert>

namespace cbs::sla {

using cbs::sim::SimDuration;
using cbs::sim::SimTime;

OoMetricCalculator::OoMetricCalculator(const std::vector<JobOutcome>& outcomes) {
  by_id_.resize(outcomes.size() + 1);
  for (const JobOutcome& o : outcomes) {
    assert(o.seq_id >= 1 && o.seq_id < by_id_.size());
    by_id_[o.seq_id] = JobInfo{o.completed, o.output_mb};
    last_completion_ = std::max(last_completion_, o.completed);
  }
}

OoSample OoMetricCalculator::sample_at(SimTime t, std::uint64_t tolerance) const {
  OoSample s;
  s.time = t;

  // Single forward pass over ids: `completed_below` is |J_it| as i grows.
  std::uint64_t completed_below = 0;  // completed jobs with id <= i
  double prefix_mb = 0.0;             // their total output
  std::uint64_t best_id = 0;
  double best_mb = 0.0;
  for (std::uint64_t i = 1; i < by_id_.size(); ++i) {
    const bool done = by_id_[i].completed <= t && by_id_[i].completed > 0.0;
    if (done) {
      ++completed_below;
      prefix_mb += by_id_[i].output_mb;
      ++s.completed_count;
      // Eq. 5: j_i ∈ C_t  AND  i − t_l ≤ |J_it|.
      if (i <= tolerance + completed_below) {
        best_id = i;
        best_mb = prefix_mb;
      }
    }
  }
  s.max_in_order = best_id;
  s.ordered_mb = best_mb;
  return s;
}

std::vector<OoSample> OoMetricCalculator::series(SimDuration interval,
                                                 std::uint64_t tolerance) const {
  assert(interval > 0.0);
  std::vector<OoSample> out;
  const SimTime end = last_completion_ + interval;
  for (SimTime t = 0.0; t <= end; t += interval) {
    out.push_back(sample_at(t, tolerance));
  }
  return out;
}

cbs::stats::TimeSeries OoMetricCalculator::ordered_mb_series(
    SimDuration interval, std::uint64_t tolerance) const {
  cbs::stats::TimeSeries ts;
  for (const OoSample& s : series(interval, tolerance)) {
    ts.add(s.time, s.ordered_mb);
  }
  return ts;
}

}  // namespace cbs::sla
