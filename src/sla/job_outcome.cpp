#include "sla/job_outcome.hpp"

#include <algorithm>
#include <sstream>

namespace cbs::sla {

std::string_view to_string(Placement p) noexcept {
  return p == Placement::kInternal ? "IC" : "EC";
}

std::string validate_outcomes(const std::vector<JobOutcome>& outcomes) {
  std::ostringstream err;
  std::vector<bool> seen(outcomes.size() + 1, false);
  for (const JobOutcome& o : outcomes) {
    if (o.seq_id == 0 || o.seq_id > outcomes.size()) {
      err << "seq_id " << o.seq_id << " outside 1.." << outcomes.size() << "; ";
      continue;
    }
    if (seen[o.seq_id]) err << "duplicate seq_id " << o.seq_id << "; ";
    seen[o.seq_id] = true;
    if (o.completed < o.arrival) {
      err << "job " << o.seq_id << " completed before arrival; ";
    }
    if (o.scheduled < o.arrival) {
      err << "job " << o.seq_id << " scheduled before arrival; ";
    }
    if (o.input_mb < 0.0 || o.output_mb < 0.0 || o.true_service_seconds < 0.0) {
      err << "job " << o.seq_id << " has negative size/service; ";
    }
  }
  for (std::size_t i = 1; i <= outcomes.size(); ++i) {
    if (!seen[i]) err << "missing seq_id " << i << "; ";
  }
  return err.str();
}

}  // namespace cbs::sla
