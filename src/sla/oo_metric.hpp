#pragma once

#include <cstdint>
#include <vector>

#include "simcore/time.hpp"
#include "sla/job_outcome.hpp"
#include "stats/timeseries.hpp"

namespace cbs::sla {

/// One sampling point of the Out-of-Order metric (paper Eq. 3–6).
struct OoSample {
  cbs::sim::SimTime time = 0.0;     ///< s_t
  std::uint64_t max_in_order = 0;   ///< m_t (0 when even job 1 is missing beyond t_l)
  double ordered_mb = 0.0;          ///< o_t: ordered output available, MB
  std::size_t completed_count = 0;  ///< |C_t|
};

/// Computes the paper's OO metric: at each sampling time s_t, the largest
/// job id m_t such that job m_t has completed and at most `tolerance` jobs
/// with smaller ids are still missing (Eq. 5, i − t_l ≤ |J_it|), and the
/// cumulative output size o_t of completed jobs with id ≤ m_t (Eq. 6).
///
/// o_t is what a downstream printer can consume while preserving (within
/// tolerance) the queue's chronology.
class OoMetricCalculator {
 public:
  /// `outcomes` may be in any order; ids must be 1..n exactly once
  /// (validate_outcomes enforces this upstream).
  explicit OoMetricCalculator(const std::vector<JobOutcome>& outcomes);

  /// The metric at one sampling time.
  [[nodiscard]] OoSample sample_at(cbs::sim::SimTime t, std::uint64_t tolerance) const;

  /// Samples every `interval` seconds from t = 0 through the last
  /// completion (inclusive of one sample past it, so the series ends flat).
  [[nodiscard]] std::vector<OoSample> series(cbs::sim::SimDuration interval,
                                             std::uint64_t tolerance) const;

  /// o_t as a TimeSeries (for relative-difference plots, Fig. 10).
  [[nodiscard]] cbs::stats::TimeSeries ordered_mb_series(
      cbs::sim::SimDuration interval, std::uint64_t tolerance) const;

  [[nodiscard]] std::size_t job_count() const noexcept { return by_id_.size(); }
  [[nodiscard]] cbs::sim::SimTime last_completion() const noexcept {
    return last_completion_;
  }

 private:
  struct JobInfo {
    cbs::sim::SimTime completed = 0.0;
    double output_mb = 0.0;
  };

  std::vector<JobInfo> by_id_;  // index 0 unused; ids are 1-based
  cbs::sim::SimTime last_completion_ = 0.0;
};

}  // namespace cbs::sla
