#pragma once

#include <string>
#include <vector>

#include "sla/job_outcome.hpp"
#include "sla/metrics.hpp"
#include "sla/oo_metric.hpp"

namespace cbs::sla {

/// All headline SLA metrics of one run, in one struct — the row format of
/// the paper's Table I plus the extras the harness tracks.
struct SlaReport {
  std::string scheduler;
  std::string bucket;
  std::size_t job_count = 0;
  double makespan_seconds = 0.0;
  double speedup = 0.0;
  double ic_utilization = 0.0;   ///< Eq. 9 over the internal machines
  double ec_utilization = 0.0;   ///< Eq. 9 over the external machines
  double burst_ratio = 0.0;      ///< Eq. 12
  double mean_turnaround_seconds = 0.0;
  /// Final o_t with the given tolerance (equals total output MB when every
  /// job eventually completes) and the time-average of o_t, which captures
  /// how early ordered data became available.
  double oo_final_mb = 0.0;
  double oo_time_averaged_mb = 0.0;
  std::uint64_t oo_tolerance = 0;
};

/// Builds a report from outcomes plus the cluster busy times measured by
/// the harness. `oo_interval` is the sampling interval for the OO series.
[[nodiscard]] SlaReport build_report(
    std::string scheduler, std::string bucket,
    const std::vector<JobOutcome>& outcomes, double ic_total_busy,
    std::size_t ic_machines, double ec_total_busy, std::size_t ec_machines,
    double oo_interval, std::uint64_t oo_tolerance);

/// Fixed-width table of several reports (one line each), with a header —
/// the harness's standard output format.
[[nodiscard]] std::string format_table(const std::vector<SlaReport>& reports);

}  // namespace cbs::sla
