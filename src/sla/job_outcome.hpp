#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "simcore/time.hpp"

namespace cbs::sla {

/// Where a job was executed — the paper's decision variable d_i.
enum class Placement : std::uint8_t { kInternal, kExternal };

[[nodiscard]] std::string_view to_string(Placement p) noexcept;

/// The per-job record every SLA metric is computed from. `seq_id` is the
/// job's position in the FCFS queue (1-based, chunks get their own
/// positions when Algorithm 2 splices them in), which is the id all
/// ordering metrics use.
struct JobOutcome {
  std::uint64_t seq_id = 0;
  std::uint64_t doc_id = 0;
  std::size_t batch_index = 0;
  cbs::sim::SimTime arrival = 0.0;
  cbs::sim::SimTime scheduled = 0.0;   ///< when the placement decision was made
  cbs::sim::SimTime completed = 0.0;   ///< result available in the result queue
  double input_mb = 0.0;
  double output_mb = 0.0;
  /// Realized standard-machine service seconds (ground truth).
  double true_service_seconds = 0.0;
  Placement placement = Placement::kInternal;

  [[nodiscard]] bool bursted() const noexcept {
    return placement == Placement::kExternal;
  }
};

/// Validates the structural invariants of a finished run: ids 1..n present
/// exactly once, timestamps ordered. Returns an empty string when valid, a
/// human-readable violation description otherwise. Tests and the harness
/// call this after every run.
[[nodiscard]] std::string validate_outcomes(const std::vector<JobOutcome>& outcomes);

}  // namespace cbs::sla
