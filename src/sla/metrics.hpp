#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "simcore/time.hpp"
#include "sla/job_outcome.hpp"

namespace cbs::sla {

/// Makespan (Eq. 7): time from the job set's arrival (earliest arrival) to
/// the last completion. Jobs may finish in any order, hence the max.
[[nodiscard]] double makespan(const std::vector<JobOutcome>& outcomes);

/// Sequential reference time t_seq(J): total realized standard-machine
/// service of the job set — what one standard machine would need.
[[nodiscard]] double sequential_time(const std::vector<JobOutcome>& outcomes);

/// Speedup. The paper's Eq. 10 prints s = C / t_seq, but its Table I
/// reports values of 5.6–6.8 on at most 10 machines, which is t_seq / C;
/// we implement the meaningful ratio (≥ 1 when bursting helps).
[[nodiscard]] double speedup(const std::vector<JobOutcome>& outcomes);

/// Utilization of one machine (Eq. 8): busy time / makespan.
[[nodiscard]] double machine_utilization(double machine_busy_seconds,
                                         double makespan_seconds);

/// Average utilization of a machine set (Eq. 9): Σ busy / (|M| · C).
[[nodiscard]] double set_utilization(double total_busy_seconds,
                                     std::size_t machine_count,
                                     double makespan_seconds);

/// Burst ratio of one batch (Eq. 11): bursted jobs / batch size.
/// Keyed result of burst_ratio_per_batch below.
struct BatchBurst {
  std::size_t jobs = 0;
  std::size_t bursted = 0;
  [[nodiscard]] double ratio() const {
    return jobs == 0 ? 0.0 : static_cast<double>(bursted) / static_cast<double>(jobs);
  }
};

/// Eq. 11 for every batch present in the outcomes.
[[nodiscard]] std::map<std::size_t, BatchBurst> burst_ratio_per_batch(
    const std::vector<JobOutcome>& outcomes);

/// Eq. 12: overall burst ratio (batch-size-weighted mean of Eq. 11, which
/// reduces to total bursted / total jobs).
[[nodiscard]] double burst_ratio(const std::vector<JobOutcome>& outcomes);

/// Mean job turnaround (completion − arrival); not in the paper's SLA list
/// but reported by the harness as a sanity metric.
[[nodiscard]] double mean_turnaround(const std::vector<JobOutcome>& outcomes);

/// Quantifies the "peaks and valleys" of Fig. 7/8. An in-order consumer
/// reads results at the frontier runmax(c_1..c_i); a job that completes
/// after everything before it pushes that frontier forward and makes the
/// consumer wait idle ("high peak" = large push), while early completions
/// are valleys (ready before needed — harmless).
struct OrderlinessStats {
  /// Pairs (i < j) with c_i > c_j — raw out-of-order count.
  std::size_t inversions = 0;
  /// Largest single frontier push, seconds (the tallest peak).
  double max_frontier_push = 0.0;
  /// 95th percentile of positive frontier pushes.
  double p95_frontier_push = 0.0;
  /// Number of pushes exceeding the given threshold.
  std::size_t pushes_over_threshold = 0;
};

[[nodiscard]] OrderlinessStats compute_orderliness(
    const std::vector<JobOutcome>& outcomes, double push_threshold_seconds);

}  // namespace cbs::sla
