#pragma once

#include <string>
#include <vector>

#include "sla/job_outcome.hpp"

namespace cbs::sla {

/// Pay-as-you-go economics — the paper's motivating constraint (§I:
/// dedicated processing/network resources are "cost-prohibitive";
/// "remote computation can completely be scaled down during periods of low
/// demand without incurring processing or more importantly, bandwidth
/// costs"). Prices are abstract currency units; the defaults mirror 2010
/// EC2/S3-class list prices (m1.small-hour and per-GB transfer).
struct CostRates {
  double ec_machine_hour = 0.10;       ///< per provisioned EC machine-hour
  double egress_per_gb = 0.15;         ///< data leaving the IC (uploads)
  double ingress_per_gb = 0.10;        ///< data returning (downloads)
  double store_gb_month = 0.15;        ///< staging storage (prorated)
  /// Amortized internal cost per machine-hour (owned hardware, power,
  /// space). Only used for totals that compare against an all-IC build-out.
  double ic_machine_hour_amortized = 0.04;
};

/// Itemized bill for one run.
struct CostReport {
  double ec_compute = 0.0;
  double egress = 0.0;
  double ingress = 0.0;
  double storage = 0.0;
  double ic_amortized = 0.0;

  [[nodiscard]] double cloud_total() const {
    return ec_compute + egress + ingress + storage;
  }
  [[nodiscard]] double grand_total() const {
    return cloud_total() + ic_amortized;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Inputs measured by the controller during a run.
struct CostInputs {
  double ec_provisioned_machine_seconds = 0.0;
  double uplink_bytes = 0.0;
  double downlink_bytes = 0.0;
  /// Integral of staging occupancy over time (byte-seconds).
  double store_byte_seconds = 0.0;
  double ic_machine_seconds = 0.0;
};

[[nodiscard]] CostReport compute_cost(const CostInputs& inputs,
                                      const CostRates& rates);

/// Cloud cost per processed MB of output — the unit economics a capacity
/// planner compares against the amortized cost of buying more IC machines.
[[nodiscard]] double cloud_cost_per_output_mb(
    const CostReport& report, const std::vector<JobOutcome>& outcomes);

}  // namespace cbs::sla
