#pragma once

#include <cstddef>
#include <vector>

#include "simcore/time.hpp"
#include "sla/job_outcome.hpp"

namespace cbs::sla {

/// The paper's §I ticket SLA: "Jobs are given a ticket that they will
/// finish a certain number of seconds from their submission point. Thus
/// the OO metric is directly correlated to whether or not the expectation
/// of the ticket-holder (human or machine) will be met."
///
/// A TicketPolicy assigns each job a promised completion window from its
/// arrival; the evaluator scores a finished run against those promises.
struct TicketPolicy {
  /// Fixed component of the promise (queueing headroom), seconds.
  double base_seconds = 600.0;
  /// Size-proportional component, seconds promised per input MB.
  double seconds_per_mb = 4.0;

  [[nodiscard]] cbs::sim::SimTime deadline_for(const JobOutcome& o) const {
    return o.arrival + base_seconds + seconds_per_mb * o.input_mb;
  }
};

/// Scorecard of a run against a ticket policy.
struct TicketReport {
  std::size_t jobs = 0;
  std::size_t met = 0;            ///< completed at or before the promise
  double hit_rate = 0.0;          ///< met / jobs
  double max_lateness = 0.0;      ///< worst overshoot, seconds (0 if none)
  double mean_lateness = 0.0;     ///< mean over LATE jobs only
  double p95_lateness = 0.0;      ///< 95th percentile over late jobs
  double mean_slack_left = 0.0;   ///< mean (deadline - completion) over met jobs
};

/// Scores the outcomes against the policy.
[[nodiscard]] TicketReport evaluate_tickets(const std::vector<JobOutcome>& outcomes,
                                            const TicketPolicy& policy);

/// The tightest uniform scaling of the policy that the run would have met
/// at the given hit-rate target: returns the factor f such that the policy
/// {f*base, f*per_mb} achieves at least `target_hit_rate`. This is the
/// "what ticket can we actually sell" question a capacity planner asks.
[[nodiscard]] double tightest_ticket_scale(
    const std::vector<JobOutcome>& outcomes, const TicketPolicy& policy,
    double target_hit_rate);

}  // namespace cbs::sla
