#include "sla/report.hpp"

#include <iomanip>
#include <sstream>

namespace cbs::sla {

SlaReport build_report(std::string scheduler, std::string bucket,
                       const std::vector<JobOutcome>& outcomes,
                       double ic_total_busy, std::size_t ic_machines,
                       double ec_total_busy, std::size_t ec_machines,
                       double oo_interval, std::uint64_t oo_tolerance) {
  SlaReport r;
  r.scheduler = std::move(scheduler);
  r.bucket = std::move(bucket);
  r.job_count = outcomes.size();
  r.makespan_seconds = makespan(outcomes);
  r.speedup = speedup(outcomes);
  r.ic_utilization =
      set_utilization(ic_total_busy, ic_machines, r.makespan_seconds);
  r.ec_utilization =
      set_utilization(ec_total_busy, ec_machines, r.makespan_seconds);
  r.burst_ratio = burst_ratio(outcomes);
  r.mean_turnaround_seconds = mean_turnaround(outcomes);
  r.oo_tolerance = oo_tolerance;

  if (!outcomes.empty()) {
    OoMetricCalculator oo(outcomes);
    const auto ts = oo.ordered_mb_series(oo_interval, oo_tolerance);
    if (!ts.empty()) {
      r.oo_final_mb = ts.back().value;
      const double end = ts.back().time;
      if (end > 0.0) r.oo_time_averaged_mb = ts.time_average(0.0, end);
    }
  }
  return r;
}

std::string format_table(const std::vector<SlaReport>& reports) {
  std::ostringstream oss;
  oss << std::left << std::setw(22) << "scheduler" << std::setw(9) << "bucket"
      << std::right << std::setw(6) << "jobs" << std::setw(12) << "makespan"
      << std::setw(9) << "speedup" << std::setw(9) << "IC-util" << std::setw(9)
      << "EC-util" << std::setw(9) << "burst" << std::setw(12) << "turnaround"
      << std::setw(12) << "OO-avg-MB" << "\n";
  oss << std::string(109, '-') << "\n";
  for (const SlaReport& r : reports) {
    oss << std::left << std::setw(22) << r.scheduler << std::setw(9) << r.bucket
        << std::right << std::setw(6) << r.job_count << std::fixed
        << std::setprecision(1) << std::setw(12) << r.makespan_seconds
        << std::setprecision(2) << std::setw(9) << r.speedup
        << std::setprecision(1) << std::setw(8) << r.ic_utilization * 100.0
        << "%" << std::setw(8) << r.ec_utilization * 100.0 << "%"
        << std::setprecision(2) << std::setw(9) << r.burst_ratio
        << std::setprecision(1) << std::setw(12) << r.mean_turnaround_seconds
        << std::setw(12) << r.oo_time_averaged_mb << "\n";
    oss.unsetf(std::ios::fixed);
  }
  return oss.str();
}

}  // namespace cbs::sla
