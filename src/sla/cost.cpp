#include "sla/cost.hpp"

#include <sstream>

namespace cbs::sla {

namespace {
constexpr double kSecondsPerHour = 3600.0;
constexpr double kBytesPerGb = 1.0e9;
constexpr double kSecondsPerMonth = 30.0 * 86400.0;
}  // namespace

CostReport compute_cost(const CostInputs& inputs, const CostRates& rates) {
  CostReport r;
  r.ec_compute = inputs.ec_provisioned_machine_seconds / kSecondsPerHour *
                 rates.ec_machine_hour;
  r.egress = inputs.uplink_bytes / kBytesPerGb * rates.egress_per_gb;
  r.ingress = inputs.downlink_bytes / kBytesPerGb * rates.ingress_per_gb;
  r.storage = inputs.store_byte_seconds / kBytesPerGb / kSecondsPerMonth *
              rates.store_gb_month;
  r.ic_amortized = inputs.ic_machine_seconds / kSecondsPerHour *
                   rates.ic_machine_hour_amortized;
  return r;
}

std::string CostReport::to_string() const {
  std::ostringstream oss;
  oss.precision(4);
  oss << "EC compute " << ec_compute << " + egress " << egress << " + ingress "
      << ingress << " + storage " << storage << " = cloud " << cloud_total()
      << " (IC amortized " << ic_amortized << ", grand " << grand_total()
      << ")";
  return oss.str();
}

double cloud_cost_per_output_mb(const CostReport& report,
                                const std::vector<JobOutcome>& outcomes) {
  double output_mb = 0.0;
  for (const JobOutcome& o : outcomes) output_mb += o.output_mb;
  return output_mb <= 0.0 ? 0.0 : report.cloud_total() / output_mb;
}

}  // namespace cbs::sla
