#include "sla/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace cbs::sla {

double makespan(const std::vector<JobOutcome>& outcomes) {
  if (outcomes.empty()) return 0.0;
  double earliest_arrival = outcomes.front().arrival;
  double last_completion = outcomes.front().completed;
  for (const JobOutcome& o : outcomes) {
    earliest_arrival = std::min(earliest_arrival, o.arrival);
    last_completion = std::max(last_completion, o.completed);
  }
  return last_completion - earliest_arrival;
}

double sequential_time(const std::vector<JobOutcome>& outcomes) {
  double total = 0.0;
  for (const JobOutcome& o : outcomes) total += o.true_service_seconds;
  return total;
}

double speedup(const std::vector<JobOutcome>& outcomes) {
  const double c = makespan(outcomes);
  return c <= 0.0 ? 0.0 : sequential_time(outcomes) / c;
}

double machine_utilization(double machine_busy_seconds, double makespan_seconds) {
  assert(machine_busy_seconds >= 0.0);
  return makespan_seconds <= 0.0 ? 0.0 : machine_busy_seconds / makespan_seconds;
}

double set_utilization(double total_busy_seconds, std::size_t machine_count,
                       double makespan_seconds) {
  assert(machine_count > 0);
  return makespan_seconds <= 0.0
             ? 0.0
             : total_busy_seconds /
                   (static_cast<double>(machine_count) * makespan_seconds);
}

std::map<std::size_t, BatchBurst> burst_ratio_per_batch(
    const std::vector<JobOutcome>& outcomes) {
  std::map<std::size_t, BatchBurst> per_batch;
  for (const JobOutcome& o : outcomes) {
    BatchBurst& b = per_batch[o.batch_index];
    ++b.jobs;
    if (o.bursted()) ++b.bursted;
  }
  return per_batch;
}

double burst_ratio(const std::vector<JobOutcome>& outcomes) {
  if (outcomes.empty()) return 0.0;
  std::size_t bursted = 0;
  for (const JobOutcome& o : outcomes) {
    if (o.bursted()) ++bursted;
  }
  return static_cast<double>(bursted) / static_cast<double>(outcomes.size());
}

namespace {

/// Counts inversions by merge sort, O(n log n).
std::size_t count_inversions(std::vector<double>& v, std::size_t lo,
                             std::size_t hi, std::vector<double>& scratch) {
  if (hi - lo < 2) return 0;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::size_t inv = count_inversions(v, lo, mid, scratch) +
                    count_inversions(v, mid, hi, scratch);
  std::size_t a = lo;
  std::size_t b = mid;
  scratch.clear();
  while (a < mid && b < hi) {
    if (v[a] <= v[b]) {
      scratch.push_back(v[a++]);
    } else {
      inv += mid - a;
      scratch.push_back(v[b++]);
    }
  }
  while (a < mid) scratch.push_back(v[a++]);
  while (b < hi) scratch.push_back(v[b++]);
  std::copy(scratch.begin(), scratch.end(),
            v.begin() + static_cast<std::ptrdiff_t>(lo));
  return inv;
}

}  // namespace

OrderlinessStats compute_orderliness(const std::vector<JobOutcome>& outcomes,
                                     double push_threshold_seconds) {
  OrderlinessStats stats;
  if (outcomes.empty()) return stats;

  std::vector<double> by_seq(outcomes.size(), 0.0);
  for (const JobOutcome& o : outcomes) {
    assert(o.seq_id >= 1 && o.seq_id <= outcomes.size());
    by_seq[o.seq_id - 1] = o.completed;
  }

  std::vector<double> pushes;
  double frontier = 0.0;
  for (double c : by_seq) {
    const double push = c - frontier;
    if (push > 0.0) {
      pushes.push_back(push);
      if (push > push_threshold_seconds) ++stats.pushes_over_threshold;
      frontier = c;
    }
  }
  if (!pushes.empty()) {
    stats.max_frontier_push = *std::max_element(pushes.begin(), pushes.end());
    // Index in double, floor by explicit cast (never implicit narrowing);
    // nth_element places exactly sorted[idx] there, so the value is
    // byte-identical to the previous full sort at O(n) instead of
    // O(n log n).
    std::vector<double> sorted = pushes;
    const auto idx = static_cast<std::size_t>(
        0.95 * static_cast<double>(sorted.size() - 1));
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                     sorted.end());
    stats.p95_frontier_push = sorted[idx];
  }

  std::vector<double> scratch;
  scratch.reserve(by_seq.size());
  stats.inversions = count_inversions(by_seq, 0, by_seq.size(), scratch);
  return stats;
}

double mean_turnaround(const std::vector<JobOutcome>& outcomes) {
  if (outcomes.empty()) return 0.0;
  double total = 0.0;
  for (const JobOutcome& o : outcomes) total += o.completed - o.arrival;
  return total / static_cast<double>(outcomes.size());
}

}  // namespace cbs::sla
