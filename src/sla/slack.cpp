#include "sla/slack.hpp"

#include <algorithm>
#include <cassert>

namespace cbs::sla {

using cbs::sim::SimDuration;
using cbs::sim::SimTime;

SimTime slack_time(const std::vector<SimTime>& preceding_completion_estimates,
                   SimTime fallback) {
  if (preceding_completion_estimates.empty()) return fallback;
  return *std::max_element(preceding_completion_estimates.begin(),
                           preceding_completion_estimates.end());
}

SimTime external_round_trip_finish(SimTime start, double upload_seconds,
                                   double processing_seconds,
                                   double download_seconds) {
  assert(upload_seconds >= 0.0 && processing_seconds >= 0.0 &&
         download_seconds >= 0.0);
  return start + upload_seconds + processing_seconds + download_seconds;
}

bool satisfies_slack(SimTime external_finish_estimate, SimTime slack,
                     SimDuration safety_margin) {
  assert(safety_margin >= 0.0);
  return external_finish_estimate + safety_margin <= slack;
}

}  // namespace cbs::sla
