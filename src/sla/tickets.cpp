#include "sla/tickets.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cbs::sla {

TicketReport evaluate_tickets(const std::vector<JobOutcome>& outcomes,
                              const TicketPolicy& policy) {
  TicketReport r;
  r.jobs = outcomes.size();
  if (outcomes.empty()) return r;

  std::vector<double> latenesses;
  double slack_total = 0.0;
  double late_total = 0.0;
  for (const JobOutcome& o : outcomes) {
    const double deadline = policy.deadline_for(o);
    const double lateness = o.completed - deadline;
    if (lateness <= 0.0) {
      ++r.met;
      slack_total += -lateness;
    } else {
      latenesses.push_back(lateness);
      late_total += lateness;
      r.max_lateness = std::max(r.max_lateness, lateness);
    }
  }
  r.hit_rate = static_cast<double>(r.met) / static_cast<double>(r.jobs);
  if (r.met > 0) r.mean_slack_left = slack_total / static_cast<double>(r.met);
  if (!latenesses.empty()) {
    r.mean_lateness = late_total / static_cast<double>(latenesses.size());
    std::sort(latenesses.begin(), latenesses.end());
    const auto idx = static_cast<std::size_t>(
        0.95 * static_cast<double>(latenesses.size() - 1));
    r.p95_lateness = latenesses[idx];
  }
  return r;
}

double tightest_ticket_scale(const std::vector<JobOutcome>& outcomes,
                             const TicketPolicy& policy,
                             double target_hit_rate) {
  assert(target_hit_rate > 0.0 && target_hit_rate <= 1.0);
  if (outcomes.empty()) return 1.0;

  // Per-job required scale: (completed - arrival) / promised window. The
  // target hit rate is achieved by the corresponding order statistic.
  std::vector<double> required;
  required.reserve(outcomes.size());
  for (const JobOutcome& o : outcomes) {
    const double window = policy.base_seconds + policy.seconds_per_mb * o.input_mb;
    assert(window > 0.0);
    required.push_back((o.completed - o.arrival) / window);
  }
  std::sort(required.begin(), required.end());
  const auto idx = std::min(
      required.size() - 1,
      static_cast<std::size_t>(std::ceil(
          target_hit_rate * static_cast<double>(required.size()))) == 0
          ? 0
          : static_cast<std::size_t>(std::ceil(
                target_hit_rate * static_cast<double>(required.size()))) -
                1);
  return required[idx];
}

}  // namespace cbs::sla
