#pragma once

#include <cstdint>
#include <vector>

#include "simcore/rng.hpp"

namespace cbs::stats {

/// Sampling routines used across the workload and network models. All take
/// the RngStream explicitly so components own their randomness (replayable
/// substreams) instead of sharing hidden global state.

/// Exponential with the given rate (events per unit time). rate > 0.
[[nodiscard]] double sample_exponential(cbs::sim::RngStream& rng, double rate);

/// Poisson-distributed count with the given mean. mean >= 0.
/// Uses Knuth multiplication for small means, normal approximation with
/// continuity correction for large ones (mean > 60).
[[nodiscard]] std::uint64_t sample_poisson(cbs::sim::RngStream& rng, double mean);

/// Standard normal via Box–Muller (polar form not needed; we can afford log).
[[nodiscard]] double sample_standard_normal(cbs::sim::RngStream& rng);

/// Normal with mean/stddev. stddev >= 0.
[[nodiscard]] double sample_normal(cbs::sim::RngStream& rng, double mean, double stddev);

/// Lognormal parameterized by the *underlying* normal's mu/sigma.
[[nodiscard]] double sample_lognormal(cbs::sim::RngStream& rng, double mu, double sigma);

/// Bounded Pareto on [lo, hi] with shape alpha — the canonical heavy-tailed
/// job-size law used in the task-assignment literature the paper cites
/// (Harchol-Balter). alpha > 0, 0 < lo < hi.
[[nodiscard]] double sample_bounded_pareto(cbs::sim::RngStream& rng, double alpha,
                                           double lo, double hi);

/// Triangular on [lo, hi] with the given mode.
[[nodiscard]] double sample_triangular(cbs::sim::RngStream& rng, double lo,
                                       double mode, double hi);

/// Samples an index in [0, weights.size()) proportionally to weights.
/// All weights must be >= 0 with a positive sum.
[[nodiscard]] std::size_t sample_discrete(cbs::sim::RngStream& rng,
                                          const std::vector<double>& weights);

}  // namespace cbs::stats
