#include "stats/timeseries.hpp"

#include <algorithm>
#include <cassert>

namespace cbs::stats {

using cbs::sim::SimDuration;
using cbs::sim::SimTime;

void TimeSeries::add(SimTime t, double value) {
  assert((points_.empty() || t >= points_.back().time) &&
         "TimeSeries requires non-decreasing timestamps");
  points_.push_back({t, value});
}

double TimeSeries::value_at(SimTime t, double fallback) const {
  // First point strictly after t, then step back one.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime lhs, const TimePoint& p) { return lhs < p.time; });
  if (it == points_.begin()) return fallback;
  return std::prev(it)->value;
}

std::vector<TimePoint> TimeSeries::resample(SimTime start, SimTime end,
                                            SimDuration dt) const {
  assert(dt > 0.0 && end >= start);
  std::vector<TimePoint> out;
  out.reserve(static_cast<std::size_t>((end - start) / dt) + 1);
  for (SimTime t = start; t <= end + 1e-9; t += dt) {
    out.push_back({t, value_at(t)});
  }
  return out;
}

std::vector<TimePoint> TimeSeries::diff_on_grid(const TimeSeries& other,
                                                SimTime start, SimTime end,
                                                SimDuration dt) const {
  assert(dt > 0.0 && end >= start);
  std::vector<TimePoint> out;
  for (SimTime t = start; t <= end + 1e-9; t += dt) {
    out.push_back({t, value_at(t) - other.value_at(t)});
  }
  return out;
}

void TimeSeries::decimate_half() {
  if (points_.size() < 3) return;
  const std::size_t n = points_.size();
  std::size_t out = 0;
  for (std::size_t i = 0; i < n; i += 2) points_[out++] = points_[i];
  if ((n - 1) % 2 != 0) points_[out++] = points_[n - 1];  // keep the newest
  points_.resize(out);
}

double TimeSeries::time_average(SimTime t0, SimTime t1) const {
  assert(t1 > t0);
  double area = 0.0;
  SimTime cursor = t0;
  double current = value_at(t0);
  for (const auto& p : points_) {
    if (p.time <= t0) continue;
    if (p.time >= t1) break;
    area += current * (p.time - cursor);
    cursor = p.time;
    current = p.value;
  }
  area += current * (t1 - cursor);
  return area / (t1 - t0);
}

}  // namespace cbs::stats
