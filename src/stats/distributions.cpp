#include "stats/distributions.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace cbs::stats {

using cbs::sim::RngStream;

double sample_exponential(RngStream& rng, double rate) {
  assert(rate > 0.0);
  // 1 - u avoids log(0); u in [0,1) so 1-u in (0,1].
  return -std::log(1.0 - rng.next_double()) / rate;
}

std::uint64_t sample_poisson(RngStream& rng, double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 60.0) {
    // Normal approximation with continuity correction; error is negligible
    // at this mean for simulation purposes.
    const double x = mean + std::sqrt(mean) * sample_standard_normal(rng);
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(x));
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double prod = rng.next_double();
  while (prod > limit) {
    ++k;
    prod *= rng.next_double();
  }
  return k;
}

double sample_standard_normal(RngStream& rng) {
  const double u1 = 1.0 - rng.next_double();  // (0,1]
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double sample_normal(RngStream& rng, double mean, double stddev) {
  assert(stddev >= 0.0);
  return mean + stddev * sample_standard_normal(rng);
}

double sample_lognormal(RngStream& rng, double mu, double sigma) {
  return std::exp(sample_normal(rng, mu, sigma));
}

double sample_bounded_pareto(RngStream& rng, double alpha, double lo, double hi) {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  const double u = rng.next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse-CDF of the bounded Pareto.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double sample_triangular(RngStream& rng, double lo, double mode, double hi) {
  assert(lo <= mode && mode <= hi && lo < hi);
  const double u = rng.next_double();
  const double fc = (mode - lo) / (hi - lo);
  if (u < fc) return lo + std::sqrt(u * (hi - lo) * (mode - lo));
  return hi - std::sqrt((1.0 - u) * (hi - lo) * (hi - mode));
}

std::size_t sample_discrete(RngStream& rng, const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double x = rng.next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: return the last bucket
}

}  // namespace cbs::stats
