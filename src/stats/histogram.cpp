#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace cbs::stats {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
  idx = std::min(idx, counts_.size() - 1);  // guard float rounding at hi_
  ++counts_[idx];
}

std::size_t Histogram::count_at(std::size_t bucket) const {
  assert(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  assert(bucket < counts_.size());
  return lo_ + bucket_width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + bucket_width_;
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream oss;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    // Scale in double: `counts_[b] * width` overflows std::size_t for
    // counts past 2^64/width, and the ratio is exact for any realistic
    // count (< 2^53), so the bar length is unchanged where both work.
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(static_cast<double>(counts_[b]) *
                                             static_cast<double>(width) /
                                             static_cast<double>(peak));
    oss << "[" << bucket_lo(b) << ", " << bucket_hi(b) << ") "
        << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  if (underflow_ > 0) oss << "underflow: " << underflow_ << "\n";
  if (overflow_ > 0) oss << "overflow: " << overflow_ << "\n";
  return oss.str();
}

}  // namespace cbs::stats
