#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cbs::stats {

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
/// Used by benches to print distribution shapes (completion-time spreads,
/// job-size mixes) the way the paper's figures do.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count_at(std::size_t bucket) const;
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

  /// Renders an ASCII bar chart, one bucket per line, `width` chars max bar.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace cbs::stats
