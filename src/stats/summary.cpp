#include "stats/summary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cbs::stats {

void Summary::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double Summary::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::cov() const noexcept {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double Summary::stderr_mean() const noexcept {
  return count_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
}

namespace {

/// Two-sided 97.5% Student-t critical values for df = 1..30; the normal
/// quantile 1.96 is within 2% beyond df = 30.
constexpr double kT975[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};

}  // namespace

double Summary::ci95_halfwidth() const noexcept {
  if (count_ < 2) return 0.0;
  const std::size_t df = count_ - 1;
  const double t = df <= 30 ? kT975[df - 1] : 1.96;
  return t * stderr_mean();
}

double quantile(std::vector<double> sample, double q) {
  assert(!sample.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double mean_of(const std::vector<double>& sample) noexcept {
  if (sample.empty()) return 0.0;
  double s = 0.0;
  for (double x : sample) s += x;
  return s / static_cast<double>(sample.size());
}

double stddev_of(const std::vector<double>& sample) noexcept {
  if (sample.size() < 2) return 0.0;
  const double m = mean_of(sample);
  double s = 0.0;
  for (double x : sample) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(sample.size() - 1));
}

}  // namespace cbs::stats
