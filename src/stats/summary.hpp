#pragma once

#include <cstddef>
#include <vector>

namespace cbs::stats {

/// Streaming univariate summary: count, mean, variance (Welford), extrema.
/// Used everywhere a metric is accumulated during a run.
class Summary {
 public:
  void add(double x) noexcept;
  void merge(const Summary& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 when count < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Coefficient of variation stddev/mean; 0 when mean == 0.
  [[nodiscard]] double cov() const noexcept;
  /// Standard error of the mean; 0 when count < 2.
  [[nodiscard]] double stderr_mean() const noexcept;
  /// Half-width of the 95% confidence interval of the mean (Student-t with
  /// n-1 degrees of freedom); 0 when count < 2. The interval is
  /// [mean - h, mean + h].
  [[nodiscard]] double ci95_halfwidth() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double total() const noexcept { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample using linear interpolation between order
/// statistics (type-7, the numpy default). q in [0,1]. Sample must be
/// non-empty; the input vector is copied and sorted.
[[nodiscard]] double quantile(std::vector<double> sample, double q);

/// Mean of a sample; 0 for an empty sample.
[[nodiscard]] double mean_of(const std::vector<double>& sample) noexcept;

/// Sample standard deviation over a window; 0 when fewer than 2 elements.
[[nodiscard]] double stddev_of(const std::vector<double>& sample) noexcept;

}  // namespace cbs::stats
