#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/summary.hpp"

namespace cbs::stats {

/// Accumulates one `Summary` per string key, remembering first-insertion
/// order so tables print in the order the caller produced the groups (e.g.
/// plan order), not hash or lexicographic order.
///
/// This is the reduction primitive behind experiment-matrix aggregation:
/// the harness maps each run to a group key ("scheduler/bucket", a sweep
/// value, ...) and a metric, and this class folds seeds into per-cell
/// mean/stddev/CI.
class GroupedSummary {
 public:
  /// Adds observation `x` to group `key`, creating the group on first use.
  void add(const std::string& key, double x);

  /// Merges a whole summary into group `key`.
  void merge(const std::string& key, const Summary& s);

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Summary for `key`; an empty Summary if the group does not exist.
  [[nodiscard]] const Summary& at(const std::string& key) const;

  /// Group keys in first-insertion order.
  [[nodiscard]] const std::vector<std::string>& keys() const noexcept {
    return order_;
  }

  [[nodiscard]] std::size_t group_count() const noexcept {
    return order_.size();
  }

 private:
  Summary& slot(const std::string& key);

  std::vector<std::string> order_;
  std::unordered_map<std::string, Summary> groups_;
};

/// A dense labeled matrix of Summaries — the shape of every paper table:
/// rows = one plan axis (e.g. bucket), cols = another (e.g. scheduler),
/// each cell folding the remaining axes (seeds).
class SummaryMatrix {
 public:
  SummaryMatrix(std::vector<std::string> row_labels,
                std::vector<std::string> col_labels);

  void add(std::size_t row, std::size_t col, double x);
  [[nodiscard]] const Summary& cell(std::size_t row, std::size_t col) const;
  [[nodiscard]] const std::vector<std::string>& row_labels() const noexcept {
    return rows_;
  }
  [[nodiscard]] const std::vector<std::string>& col_labels() const noexcept {
    return cols_;
  }

 private:
  std::vector<std::string> rows_;
  std::vector<std::string> cols_;
  std::vector<Summary> cells_;  ///< row-major, rows_.size() * cols_.size()
};

}  // namespace cbs::stats
