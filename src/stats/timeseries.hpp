#pragma once

#include <cstddef>
#include <vector>

#include "simcore/time.hpp"

namespace cbs::stats {

/// A (time, value) point of a sampled metric.
struct TimePoint {
  cbs::sim::SimTime time;
  double value;
};

/// Append-only series of timestamped observations with the resampling
/// helpers the OO-metric figures need (fixed sampling intervals).
class TimeSeries {
 public:
  void add(cbs::sim::SimTime t, double value);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const std::vector<TimePoint>& points() const noexcept { return points_; }
  [[nodiscard]] const TimePoint& at(std::size_t i) const { return points_.at(i); }
  [[nodiscard]] const TimePoint& back() const { return points_.back(); }

  /// Last value at or before `t`; `fallback` when no such point exists.
  /// Treats the series as a step function (right-continuous), which matches
  /// cumulative metrics like "ordered bytes available so far".
  [[nodiscard]] double value_at(cbs::sim::SimTime t, double fallback = 0.0) const;

  /// Step-function resampling at times start, start+dt, ..., <= end.
  [[nodiscard]] std::vector<TimePoint> resample(cbs::sim::SimTime start,
                                                cbs::sim::SimTime end,
                                                cbs::sim::SimDuration dt) const;

  /// Pointwise difference this - other, sampled on the given grid. Used for
  /// the paper's Fig. 10 (OO metric relative to the IC-only baseline).
  [[nodiscard]] std::vector<TimePoint> diff_on_grid(const TimeSeries& other,
                                                    cbs::sim::SimTime start,
                                                    cbs::sim::SimTime end,
                                                    cbs::sim::SimDuration dt) const;

  /// Time-weighted average of the step function over [t0, t1].
  [[nodiscard]] double time_average(cbs::sim::SimTime t0, cbs::sim::SimTime t1) const;

  /// 2:1 downsampling: keeps every other point (even indices, so the first
  /// sample always survives) plus the final point. Producers that must
  /// bound memory on unbounded runs (Link::capacity_history) call this
  /// when the series hits their cap and double their sampling interval.
  void decimate_half();

 private:
  std::vector<TimePoint> points_;  // strictly non-decreasing in time
};

}  // namespace cbs::stats
