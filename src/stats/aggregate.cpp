#include "stats/aggregate.hpp"

#include <stdexcept>

namespace cbs::stats {

Summary& GroupedSummary::slot(const std::string& key) {
  auto [it, inserted] = groups_.try_emplace(key);
  if (inserted) order_.push_back(key);
  return it->second;
}

void GroupedSummary::add(const std::string& key, double x) { slot(key).add(x); }

void GroupedSummary::merge(const std::string& key, const Summary& s) {
  slot(key).merge(s);
}

bool GroupedSummary::contains(const std::string& key) const {
  return groups_.contains(key);
}

const Summary& GroupedSummary::at(const std::string& key) const {
  static const Summary kEmpty{};
  auto it = groups_.find(key);
  return it == groups_.end() ? kEmpty : it->second;
}

SummaryMatrix::SummaryMatrix(std::vector<std::string> row_labels,
                             std::vector<std::string> col_labels)
    : rows_(std::move(row_labels)),
      cols_(std::move(col_labels)),
      cells_(rows_.size() * cols_.size()) {}

void SummaryMatrix::add(std::size_t row, std::size_t col, double x) {
  if (row >= rows_.size() || col >= cols_.size()) {
    throw std::out_of_range("SummaryMatrix::add: cell out of range");
  }
  cells_[row * cols_.size() + col].add(x);
}

const Summary& SummaryMatrix::cell(std::size_t row, std::size_t col) const {
  if (row >= rows_.size() || col >= cols_.size()) {
    throw std::out_of_range("SummaryMatrix::cell: cell out of range");
  }
  return cells_[row * cols_.size() + col];
}

}  // namespace cbs::stats
