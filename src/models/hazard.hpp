#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "simcore/time.hpp"

namespace cbs::models {

/// Which online failure predictor drives the proactive-resilience policy.
enum class HazardPredictorKind : std::uint8_t {
  kOff,   ///< no predictor; the controller stays purely reactive
  kEwma,  ///< EWMA-smoothed inter-failure intensity (recency-weighted)
  kBayes, ///< Gamma/Laplace posterior rate (exposure-weighted, prior-anchored)
};

[[nodiscard]] std::string_view to_string(HazardPredictorKind kind) noexcept;

/// Tunables of the per-VM hazard model. The prior is what keeps a cold VM
/// from being trusted (or condemned) on no evidence: with zero observed
/// failures the believed rate is prior_failures / prior_exposure_seconds,
/// and each observed crash moves the estimate toward the empirical rate.
struct HazardModelConfig {
  HazardPredictorKind kind = HazardPredictorKind::kOff;
  /// EWMA smoothing of inter-failure gaps (same update rule as net::Ewma).
  double ewma_alpha = 0.3;
  /// Pseudo-failures of the Laplace/Gamma prior.
  double prior_failures = 1.0;
  /// Pseudo-exposure of the prior, seconds. prior_failures over this is the
  /// believed rate of a machine with no failure history.
  double prior_exposure_seconds = 20000.0;
  /// Floor applied to observed inter-failure gaps and exposure terms so
  /// clock-adjacent failures (gap 0) never produce an infinite rate.
  double min_gap_seconds = 1.0;
};

/// Online quality of the predictor's high-risk calls, scored against the
/// crashes that actually happened. A "prediction" is a flag raised on one
/// machine for a window; it resolves to a true positive (a crash landed
/// inside the window), a false positive (the window expired uneventfully)
/// or — for crashes on unflagged machines — a false negative.
struct HazardPredictionStats {
  std::uint64_t predictions = 0;      ///< high-risk flags raised
  std::uint64_t true_positives = 0;   ///< flag confirmed by an in-window crash
  std::uint64_t false_positives = 0;  ///< flag expired without a crash
  std::uint64_t false_negatives = 0;  ///< crash with no active flag

  [[nodiscard]] double precision() const noexcept;
  [[nodiscard]] double recall() const noexcept;
};

/// Online per-VM hazard estimator: observes each machine's crash times and
/// answers "how likely is machine m to fail within the next w seconds?".
///
/// Two estimators share the interface (HazardModelConfig::kind):
///
///  - kEwma: the hazard is the reciprocal of the EWMA of observed
///    inter-failure gaps, discounted by survival — a machine that has
///    outlived its typical gap is believed less hazardous, so drains expire
///    instead of lasting forever. Cold machines fall back to the prior rate.
///  - kBayes: the posterior-mean rate of a Gamma(prior_failures,
///    prior_exposure) prior under exponential gaps —
///    (failures + prior_failures) / (exposure + prior_exposure).
///
/// Failure probability over a window is 1 - exp(-rate * w) via expm1.
///
/// Snapshot safety (DESIGN.md §12): the estimator is pure value state — no
/// EventIds, no component references, no hooks — so a fork clones it with
/// the implicit copy constructor and nothing needs re-registration.
class VmHazardEstimator {
 public:
  VmHazardEstimator(const HazardModelConfig& config, std::size_t machines,
                    cbs::sim::SimTime start = 0.0);

  /// Grows the tracked machine set (elastic clusters); new machines start
  /// cold with exposure metered from `now`. No-op if already that large.
  void ensure_machines(std::size_t machines, cbs::sim::SimTime now);

  /// Records a crash of `machine` at `now` and resolves any outstanding
  /// high-risk flag on it (true positive if the crash landed in the flag's
  /// window; the crash is a false negative otherwise).
  void on_failure(std::size_t machine, cbs::sim::SimTime now);

  /// Believed failure rate (per second) of `machine` at `now`.
  [[nodiscard]] double hazard_rate(std::size_t machine,
                                   cbs::sim::SimTime now) const;

  /// Believed probability that `machine` fails within `window_seconds`.
  [[nodiscard]] double failure_probability(std::size_t machine,
                                           cbs::sim::SimTime now,
                                           double window_seconds) const;

  /// Raises (or extends) the high-risk flag on `machine` until
  /// now + window_seconds. Only a fresh flag counts as a new prediction.
  void note_prediction(std::size_t machine, cbs::sim::SimTime now,
                       double window_seconds);

  /// Expires stale flags whose window passed without a crash (each becomes
  /// a false positive). Call at every policy-evaluation point; expiry is
  /// lazy, so stats are exact only up to the last settle()/on_failure().
  void settle(cbs::sim::SimTime now);

  [[nodiscard]] bool flagged(std::size_t machine) const;
  [[nodiscard]] std::uint64_t failures(std::size_t machine) const;
  [[nodiscard]] std::size_t machine_count() const noexcept {
    return machines_.size();
  }
  [[nodiscard]] const HazardPredictionStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const HazardModelConfig& config() const noexcept {
    return config_;
  }

 private:
  struct MachineState {
    std::uint64_t failures = 0;
    /// Exposure anchor: registration time, then the last failure time.
    cbs::sim::SimTime last_event = 0.0;
    /// EWMA of inter-failure gaps (S_n = a*y + (1-a)*S_{n-1}).
    double gap_ewma = 0.0;
    bool has_gap = false;
    bool flag_active = false;
    cbs::sim::SimTime flag_until = 0.0;
  };

  [[nodiscard]] double prior_rate() const noexcept;

  HazardModelConfig config_;
  cbs::sim::SimTime start_ = 0.0;
  std::vector<MachineState> machines_;
  HazardPredictionStats stats_;
};

/// Mean failure probability over all tracked machines — the cluster-level
/// risk signal the burst policy prices in.
[[nodiscard]] double mean_failure_probability(const VmHazardEstimator& est,
                                              cbs::sim::SimTime now,
                                              double window_seconds);

}  // namespace cbs::models
