#include "models/hazard.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cbs::models {

using cbs::sim::SimTime;

std::string_view to_string(HazardPredictorKind kind) noexcept {
  switch (kind) {
    case HazardPredictorKind::kOff:
      return "off";
    case HazardPredictorKind::kEwma:
      return "ewma";
    case HazardPredictorKind::kBayes:
      return "bayes";
  }
  return "?";
}

double HazardPredictionStats::precision() const noexcept {
  const std::uint64_t resolved = true_positives + false_positives;
  if (resolved == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(resolved);
}

double HazardPredictionStats::recall() const noexcept {
  const std::uint64_t crashes = true_positives + false_negatives;
  if (crashes == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(crashes);
}

VmHazardEstimator::VmHazardEstimator(const HazardModelConfig& config,
                                     std::size_t machines, SimTime start)
    : config_(config), start_(start) {
  assert(config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0);
  assert(config.prior_failures > 0.0);
  assert(config.prior_exposure_seconds > 0.0);
  assert(config.min_gap_seconds > 0.0);
  machines_.reserve(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    MachineState s;
    s.last_event = start;
    machines_.push_back(s);
  }
}

void VmHazardEstimator::ensure_machines(std::size_t machines, SimTime now) {
  while (machines_.size() < machines) {
    MachineState s;
    s.last_event = now;
    machines_.push_back(s);
  }
}

double VmHazardEstimator::prior_rate() const noexcept {
  return config_.prior_failures / config_.prior_exposure_seconds;
}

void VmHazardEstimator::on_failure(std::size_t machine, SimTime now) {
  assert(machine < machines_.size());
  MachineState& s = machines_[machine];
  // Resolve the outstanding flag against this crash before updating the
  // model: a crash inside the flagged window is the prediction coming true.
  if (s.flag_active && now <= s.flag_until) {
    ++stats_.true_positives;
    s.flag_active = false;
  } else {
    if (s.flag_active) {
      // Flag expired before the crash landed — settle() just hadn't run.
      ++stats_.false_positives;
      s.flag_active = false;
    }
    ++stats_.false_negatives;
  }
  // Clock-adjacent failures (gap <= 0, e.g. a crash at the recovery
  // instant) are floored instead of poisoning the rate with an infinity.
  const double gap = std::max(now - s.last_event, config_.min_gap_seconds);
  if (s.has_gap) {
    s.gap_ewma = config_.ewma_alpha * gap + (1.0 - config_.ewma_alpha) * s.gap_ewma;
  } else {
    s.gap_ewma = gap;
    s.has_gap = true;
  }
  ++s.failures;
  s.last_event = now;
}

double VmHazardEstimator::hazard_rate(std::size_t machine, SimTime now) const {
  assert(machine < machines_.size());
  const MachineState& s = machines_[machine];
  switch (config_.kind) {
    case HazardPredictorKind::kOff:
      return 0.0;
    case HazardPredictorKind::kEwma: {
      if (!s.has_gap) return prior_rate();
      // Survival discount: a machine that has already outlived its typical
      // gap is believed less hazardous, so the estimate (and any drain it
      // caused) decays instead of persisting forever.
      const double survival = now - s.last_event;
      const double effective_gap =
          std::max({s.gap_ewma, survival, config_.min_gap_seconds});
      return 1.0 / effective_gap;
    }
    case HazardPredictorKind::kBayes: {
      const double exposure =
          std::max(now - start_, 0.0) + config_.prior_exposure_seconds;
      return (static_cast<double>(s.failures) + config_.prior_failures) /
             std::max(exposure, config_.min_gap_seconds);
    }
  }
  return 0.0;
}

double VmHazardEstimator::failure_probability(std::size_t machine, SimTime now,
                                              double window_seconds) const {
  const double window = std::max(window_seconds, 0.0);
  const double rate = hazard_rate(machine, now);
  // P(fail within w) = 1 - exp(-rate * w); expm1 keeps small rates exact.
  return -std::expm1(-rate * window);
}

void VmHazardEstimator::note_prediction(std::size_t machine, SimTime now,
                                        double window_seconds) {
  assert(machine < machines_.size());
  MachineState& s = machines_[machine];
  if (!s.flag_active) {
    s.flag_active = true;
    ++stats_.predictions;
    s.flag_until = now + std::max(window_seconds, 0.0);
    return;
  }
  // Re-affirmed while still active: extend the window, no new prediction.
  s.flag_until = std::max(s.flag_until, now + std::max(window_seconds, 0.0));
}

void VmHazardEstimator::settle(SimTime now) {
  for (MachineState& s : machines_) {
    if (s.flag_active && now > s.flag_until) {
      s.flag_active = false;
      ++stats_.false_positives;
    }
  }
}

bool VmHazardEstimator::flagged(std::size_t machine) const {
  assert(machine < machines_.size());
  return machines_[machine].flag_active;
}

std::uint64_t VmHazardEstimator::failures(std::size_t machine) const {
  assert(machine < machines_.size());
  return machines_[machine].failures;
}

double mean_failure_probability(const VmHazardEstimator& est, SimTime now,
                                double window_seconds) {
  if (est.machine_count() == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t m = 0; m < est.machine_count(); ++m) {
    sum += est.failure_probability(m, now, window_seconds);
  }
  return sum / static_cast<double>(est.machine_count());
}

}  // namespace cbs::models
