#include "models/per_class_qrsm.hpp"

#include <cassert>

namespace cbs::models {

PerClassQrsmEstimator::PerClassQrsmEstimator(Config config)
    : config_(config), pooled_(config.model) {
  per_class_.fill(QrsmModel(config.model));
}

double PerClassQrsmEstimator::estimate_seconds(
    const cbs::workload::Document& doc) const {
  const std::size_t idx = index_of(doc.features.type);
  if (class_counts_[idx] >= config_.min_class_observations &&
      per_class_[idx].is_fitted()) {
    return per_class_[idx].predict(doc.features);
  }
  return pooled_.predict(doc.features);
}

void PerClassQrsmEstimator::observe(const cbs::workload::Document& doc,
                                    double actual_seconds) {
  pooled_.observe(doc.features, actual_seconds);
  const std::size_t idx = index_of(doc.features.type);
  per_class_[idx].observe(doc.features, actual_seconds);
  ++class_counts_[idx];
}

void PerClassQrsmEstimator::pretrain(
    const std::vector<cbs::workload::Document>& docs,
    const std::vector<double>& runtimes) {
  assert(docs.size() == runtimes.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    observe(docs[i], runtimes[i]);
  }
  pooled_.refit();
  for (auto& m : per_class_) m.refit();
}

const QrsmModel& PerClassQrsmEstimator::class_model(
    cbs::workload::JobType type) const {
  return per_class_[index_of(type)];
}

bool PerClassQrsmEstimator::class_active(cbs::workload::JobType type) const {
  const std::size_t idx = index_of(type);
  return class_counts_[idx] >= config_.min_class_observations &&
         per_class_[idx].is_fitted();
}

}  // namespace cbs::models
