#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

#include "workload/document.hpp"

namespace cbs::models {

/// Number of raw numeric features extracted from a document for the QRSM.
inline constexpr std::size_t kNumRawFeatures = 8;

/// Names of the raw features, index-aligned with extract_raw().
[[nodiscard]] const std::array<std::string_view, kNumRawFeatures>& feature_names();

/// Raw feature vector (paper §III.A.1's x_i dimensions): document size,
/// pages, image count, image size, resolution, color fraction, text ratio,
/// coverage. Job type influences the workload's *output* characteristics
/// and is handled outside the response surface.
[[nodiscard]] std::array<double, kNumRawFeatures> extract_raw(
    const cbs::workload::DocumentFeatures& f);

/// Dimension of the full quadratic expansion of n raw features:
/// 1 (intercept) + n (linear) + n(n-1)/2 (interactions) + n (squares).
[[nodiscard]] constexpr std::size_t quadratic_dim(std::size_t n) {
  return 1 + n + n * (n - 1) / 2 + n;
}

/// Full quadratic design row y = a + Σ bᵢxᵢ + Σ cᵢⱼxᵢxⱼ + Σ dᵢxᵢ², laid out
/// as [1, x₁..xₙ, x₁x₂, x₁x₃, ..., xₙ₋₁xₙ, x₁², ..., xₙ²].
[[nodiscard]] std::vector<double> quadratic_expand(
    const std::array<double, kNumRawFeatures>& x);

/// Affine per-feature standardization (z = (x - mean) / scale) fitted on a
/// training corpus; keeps the quadratic design matrix well-conditioned.
struct FeatureScaler {
  std::array<double, kNumRawFeatures> mean{};
  std::array<double, kNumRawFeatures> scale{};  // never zero

  /// Fits mean/scale on a corpus. Constant features get scale 1.
  static FeatureScaler fit(
      const std::vector<std::array<double, kNumRawFeatures>>& rows);

  [[nodiscard]] std::array<double, kNumRawFeatures> apply(
      const std::array<double, kNumRawFeatures>& x) const;
};

}  // namespace cbs::models
