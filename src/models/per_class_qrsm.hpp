#pragma once

#include <array>
#include <cstddef>

#include "models/estimator.hpp"
#include "models/qrsm.hpp"
#include "workload/document.hpp"

namespace cbs::models {

/// Per-job-class response surfaces — the paper's §III.A.1 future work:
/// "Learning and tuning of the model depending on the job class". One QRSM
/// per JobType, with a pooled fallback model that covers classes that have
/// not yet accumulated enough observations of their own.
///
/// Rationale: a credit-card statement's runtime law (text-dominated) and an
/// image-personalization job's (raster-dominated) have different curvature;
/// one pooled quadratic surface averages them, inflating errors on both.
class PerClassQrsmEstimator final : public ProcessingTimeEstimator {
 public:
  struct Config {
    QrsmModel::Config model{};
    /// A class model is consulted only after it has at least this many of
    /// its own observations AND is fitted; otherwise the pooled model
    /// answers.
    std::size_t min_class_observations = 80;
  };

  PerClassQrsmEstimator() : PerClassQrsmEstimator(Config{}) {}
  explicit PerClassQrsmEstimator(Config config);

  [[nodiscard]] double estimate_seconds(
      const cbs::workload::Document& doc) const override;
  void observe(const cbs::workload::Document& doc,
               double actual_seconds) override;

  [[nodiscard]] std::unique_ptr<ProcessingTimeEstimator> clone(
      const cbs::workload::GroundTruthModel& truth) const override {
    (void)truth;
    return std::make_unique<PerClassQrsmEstimator>(*this);
  }

  /// Seeds the pooled model (and routes each example into its class model).
  void pretrain(const std::vector<cbs::workload::Document>& docs,
                const std::vector<double>& runtimes);

  [[nodiscard]] const QrsmModel& pooled() const noexcept { return pooled_; }
  [[nodiscard]] const QrsmModel& class_model(cbs::workload::JobType type) const;
  /// True when predictions for `type` come from its dedicated surface.
  [[nodiscard]] bool class_active(cbs::workload::JobType type) const;

 private:
  [[nodiscard]] static std::size_t index_of(cbs::workload::JobType type) {
    return static_cast<std::size_t>(type);
  }

  Config config_;
  QrsmModel pooled_;
  std::array<QrsmModel, cbs::workload::kAllJobTypes.size()> per_class_;
  std::array<std::size_t, cbs::workload::kAllJobTypes.size()> class_counts_{};
};

}  // namespace cbs::models
