#pragma once

#include <memory>

#include "models/qrsm.hpp"
#include "workload/document.hpp"
#include "workload/ground_truth.hpp"

namespace cbs::models {

/// The interface schedulers use to estimate a document's processing time on
/// a standard machine (the paper's t^e(i)). Implementations differ in how
/// much they know — the gap between them is itself an experiment axis.
class ProcessingTimeEstimator {
 public:
  virtual ~ProcessingTimeEstimator() = default;

  /// Estimated standard-machine processing seconds for this document.
  [[nodiscard]] virtual double estimate_seconds(
      const cbs::workload::Document& doc) const = 0;

  /// Feedback after a job actually ran (learning estimators adapt; others
  /// ignore it).
  virtual void observe(const cbs::workload::Document& doc, double actual_seconds) {
    (void)doc;
    (void)actual_seconds;
  }

  /// Fork support: deep-copies the estimator's learned state. `truth` is
  /// the fork's ground-truth model, used only by truth-referencing
  /// estimators (OracleEstimator) to rebind their reference. Returns
  /// nullptr when the concrete type does not support forking (ad-hoc test
  /// estimators keep the default).
  [[nodiscard]] virtual std::unique_ptr<ProcessingTimeEstimator> clone(
      const cbs::workload::GroundTruthModel& truth) const {
    (void)truth;
    return nullptr;
  }
};

/// Production estimator: wraps the QRSM and learns online.
class QrsmEstimator final : public ProcessingTimeEstimator {
 public:
  explicit QrsmEstimator(QrsmModel::Config config = {});

  [[nodiscard]] double estimate_seconds(
      const cbs::workload::Document& doc) const override;
  void observe(const cbs::workload::Document& doc, double actual_seconds) override;

  [[nodiscard]] std::unique_ptr<ProcessingTimeEstimator> clone(
      const cbs::workload::GroundTruthModel& truth) const override {
    (void)truth;
    return std::make_unique<QrsmEstimator>(*this);
  }

  [[nodiscard]] QrsmModel& model() noexcept { return model_; }
  [[nodiscard]] const QrsmModel& model() const noexcept { return model_; }

 private:
  QrsmModel model_;
};

/// Oracle estimator: returns the ground truth's noise-free expectation.
/// Used by tests (slack invariants under perfect information) and by the
/// estimation-error ablation bench.
class OracleEstimator final : public ProcessingTimeEstimator {
 public:
  explicit OracleEstimator(const cbs::workload::GroundTruthModel& truth)
      : truth_(truth) {}

  [[nodiscard]] double estimate_seconds(
      const cbs::workload::Document& doc) const override {
    return truth_.expected_seconds(doc.features);
  }

  [[nodiscard]] std::unique_ptr<ProcessingTimeEstimator> clone(
      const cbs::workload::GroundTruthModel& truth) const override {
    return std::make_unique<OracleEstimator>(truth);
  }

 private:
  const cbs::workload::GroundTruthModel& truth_;
};

/// Deliberately biased estimator (multiplies an inner estimator by a fixed
/// factor) — drives the over/under-estimation failure modes §IV.D discusses.
class BiasedEstimator final : public ProcessingTimeEstimator {
 public:
  BiasedEstimator(std::unique_ptr<ProcessingTimeEstimator> inner, double factor)
      : inner_(std::move(inner)), factor_(factor) {}

  [[nodiscard]] double estimate_seconds(
      const cbs::workload::Document& doc) const override {
    return inner_->estimate_seconds(doc) * factor_;
  }
  void observe(const cbs::workload::Document& doc, double actual_seconds) override {
    inner_->observe(doc, actual_seconds);
  }

  [[nodiscard]] std::unique_ptr<ProcessingTimeEstimator> clone(
      const cbs::workload::GroundTruthModel& truth) const override {
    auto inner = inner_->clone(truth);
    if (!inner) return nullptr;
    return std::make_unique<BiasedEstimator>(std::move(inner), factor_);
  }

 private:
  std::unique_ptr<ProcessingTimeEstimator> inner_;
  double factor_;
};

}  // namespace cbs::models
