#include "models/qrsm.hpp"

#include <algorithm>
#include <cassert>

namespace cbs::models {

using cbs::linalg::Matrix;
using cbs::linalg::Vector;

QrsmModel::QrsmModel(Config config) : config_(config) {
  assert(config.ridge_lambda >= 0.0);
  assert(config.refit_interval > 0);
  assert(config.min_prediction_seconds >= 0.0);
}

void QrsmModel::fit(const std::vector<cbs::workload::DocumentFeatures>& features,
                    const std::vector<double>& runtimes) {
  assert(features.size() == runtimes.size());
  buffer_.clear();
  for (std::size_t i = 0; i < features.size(); ++i) {
    buffer_.push_back(Example{extract_raw(features[i]), runtimes[i]});
    if (config_.window > 0 && buffer_.size() > config_.window) buffer_.pop_front();
  }
  total_observed_ += features.size();
  since_refit_ = 0;
  refit();
}

void QrsmModel::observe(const cbs::workload::DocumentFeatures& features,
                        double runtime) {
  assert(runtime >= 0.0);
  buffer_.push_back(Example{extract_raw(features), runtime});
  if (config_.window > 0 && buffer_.size() > config_.window) buffer_.pop_front();
  ++total_observed_;
  if (++since_refit_ >= config_.refit_interval) {
    refit();
  }
}

void QrsmModel::refit() {
  since_refit_ = 0;
  const std::size_t dim = quadratic_dim(kNumRawFeatures);
  // Require modest oversampling before trusting a quadratic surface.
  if (buffer_.size() < dim + dim / 4) return;

  std::vector<std::array<double, kNumRawFeatures>> raws;
  raws.reserve(buffer_.size());
  for (const auto& ex : buffer_) raws.push_back(ex.raw);
  scaler_ = FeatureScaler::fit(raws);

  Matrix design(buffer_.size(), dim);
  Vector y(buffer_.size());
  double runtime_sum = 0.0;
  for (std::size_t r = 0; r < buffer_.size(); ++r) {
    const auto row = quadratic_expand(scaler_.apply(buffer_[r].raw));
    std::copy(row.begin(), row.end(), design.row_data(r));
    y[r] = buffer_[r].y;
    runtime_sum += buffer_[r].y;
  }
  mean_runtime_ = runtime_sum / static_cast<double>(buffer_.size());
  fit_ = cbs::linalg::ridge_least_squares(design, y, config_.ridge_lambda);
}

double QrsmModel::predict(const cbs::workload::DocumentFeatures& features) const {
  if (!fit_) {
    // Cold start: mean of whatever has been seen, else the configured floor.
    double fallback = config_.min_prediction_seconds;
    if (!buffer_.empty()) {
      double sum = 0.0;
      for (const auto& ex : buffer_) sum += ex.y;
      fallback = sum / static_cast<double>(buffer_.size());
    }
    return std::max(fallback, config_.min_prediction_seconds);
  }
  const auto row = quadratic_expand(scaler_.apply(extract_raw(features)));
  const double y = cbs::linalg::dot(row, fit_->coefficients);
  return std::max(y, config_.min_prediction_seconds);
}

}  // namespace cbs::models
