#include "models/estimator.hpp"

namespace cbs::models {

QrsmEstimator::QrsmEstimator(QrsmModel::Config config) : model_(config) {}

double QrsmEstimator::estimate_seconds(const cbs::workload::Document& doc) const {
  return model_.predict(doc.features);
}

void QrsmEstimator::observe(const cbs::workload::Document& doc,
                            double actual_seconds) {
  model_.observe(doc.features, actual_seconds);
}

}  // namespace cbs::models
