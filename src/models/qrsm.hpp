#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "linalg/least_squares.hpp"
#include "models/feature_vector.hpp"
#include "workload/document.hpp"

namespace cbs::models {

/// Quadratic Response Surface Model for processing time (paper §III.A.1):
///
///   y = a + Σ bᵢxᵢ + Σ cᵢⱼxᵢxⱼ + Σ dᵢxᵢ²
///
/// over the standardized document features. The model is fitted by ridge
/// least squares ("learnt as the solution to a linear programming model" in
/// the paper; we use the standard response-surface fitting of Myers &
/// Montgomery, which is penalized least squares) and re-tuned online from
/// observed (features, actual runtime) pairs, exactly the autonomic loop
/// the paper describes: start from a factory prior trained on a standard
/// corpus, then adapt to the deployment.
class QrsmModel {
 public:
  struct Config {
    double ridge_lambda = 1.0e-3;
    /// Online buffer: refit happens every `refit_interval` observations,
    /// using at most `window` most recent pairs. A window of 0 keeps all.
    std::size_t refit_interval = 32;
    std::size_t window = 4096;
    /// Predictions are clamped below by this (a job is never free).
    double min_prediction_seconds = 1.0;
  };

  QrsmModel() : QrsmModel(Config{}) {}
  explicit QrsmModel(Config config);

  /// Fits from scratch on a labeled corpus. Requires at least
  /// `quadratic_dim(kNumRawFeatures)` rows. Replaces any previous state and
  /// seeds the online buffer with the corpus.
  void fit(const std::vector<cbs::workload::DocumentFeatures>& features,
           const std::vector<double>& runtimes);

  /// Records an observed (features, runtime) pair; refits automatically
  /// every `refit_interval` observations once enough data exists.
  void observe(const cbs::workload::DocumentFeatures& features, double runtime);

  /// Predicted processing seconds on a standard machine. Falls back to the
  /// mean observed runtime (or min_prediction_seconds) before the first fit.
  [[nodiscard]] double predict(const cbs::workload::DocumentFeatures& features) const;

  [[nodiscard]] bool is_fitted() const noexcept { return fit_.has_value(); }
  /// Goodness of fit on the most recent training window.
  [[nodiscard]] const std::optional<cbs::linalg::FitResult>& last_fit() const noexcept {
    return fit_;
  }
  [[nodiscard]] std::size_t observations() const noexcept { return total_observed_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

  /// Forces a refit on the current buffer (no-op when data is insufficient).
  void refit();

 private:
  struct Example {
    std::array<double, kNumRawFeatures> raw;
    double y;
  };

  Config config_;
  std::deque<Example> buffer_;
  std::size_t total_observed_ = 0;
  std::size_t since_refit_ = 0;
  FeatureScaler scaler_;
  std::optional<cbs::linalg::FitResult> fit_;
  double mean_runtime_ = 0.0;  // fallback prediction before first fit
};

}  // namespace cbs::models
