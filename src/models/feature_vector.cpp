#include "models/feature_vector.hpp"

#include <cassert>
#include <cmath>

namespace cbs::models {

const std::array<std::string_view, kNumRawFeatures>& feature_names() {
  static const std::array<std::string_view, kNumRawFeatures> names = {
      "size_mb",        "pages",      "num_images", "avg_image_mb",
      "resolution_dpi", "color_frac", "text_ratio", "coverage",
  };
  return names;
}

std::array<double, kNumRawFeatures> extract_raw(
    const cbs::workload::DocumentFeatures& f) {
  return {
      f.size_mb,
      static_cast<double>(f.pages),
      static_cast<double>(f.num_images),
      f.avg_image_mb,
      f.resolution_dpi,
      f.color_fraction,
      f.text_ratio,
      f.coverage,
  };
}

std::vector<double> quadratic_expand(const std::array<double, kNumRawFeatures>& x) {
  std::vector<double> row;
  row.reserve(quadratic_dim(kNumRawFeatures));
  row.push_back(1.0);
  for (double xi : x) row.push_back(xi);
  for (std::size_t i = 0; i < kNumRawFeatures; ++i) {
    for (std::size_t j = i + 1; j < kNumRawFeatures; ++j) {
      row.push_back(x[i] * x[j]);
    }
  }
  for (double xi : x) row.push_back(xi * xi);
  assert(row.size() == quadratic_dim(kNumRawFeatures));
  return row;
}

FeatureScaler FeatureScaler::fit(
    const std::vector<std::array<double, kNumRawFeatures>>& rows) {
  FeatureScaler s;
  s.scale.fill(1.0);
  if (rows.empty()) return s;

  const auto n = static_cast<double>(rows.size());
  for (const auto& r : rows) {
    for (std::size_t i = 0; i < kNumRawFeatures; ++i) s.mean[i] += r[i];
  }
  for (double& m : s.mean) m /= n;

  std::array<double, kNumRawFeatures> var{};
  for (const auto& r : rows) {
    for (std::size_t i = 0; i < kNumRawFeatures; ++i) {
      const double d = r[i] - s.mean[i];
      var[i] += d * d;
    }
  }
  for (std::size_t i = 0; i < kNumRawFeatures; ++i) {
    const double sd = std::sqrt(var[i] / n);
    s.scale[i] = sd > 1e-12 ? sd : 1.0;
  }
  return s;
}

std::array<double, kNumRawFeatures> FeatureScaler::apply(
    const std::array<double, kNumRawFeatures>& x) const {
  std::array<double, kNumRawFeatures> z{};
  for (std::size_t i = 0; i < kNumRawFeatures; ++i) {
    z[i] = (x[i] - mean[i]) / scale[i];
  }
  return z;
}

}  // namespace cbs::models
