#include "compute/cluster.hpp"

#include <cassert>
#include <utility>

#include "simcore/snapshot.hpp"

namespace cbs::compute {

using cbs::sim::SimTime;

Cluster::Cluster(cbs::sim::Simulation& sim, std::string name, std::size_t machines,
                 double speed)
    : sim_(sim), name_(std::move(name)), speed_(speed), machines_(machines),
      running_tasks_(machines) {
  assert(machines > 0);
  assert(speed > 0.0);
  active_machines_ = machines;
  provision_level_ = machines;
  provision_since_ = sim.now();
}

Cluster::Cluster(cbs::sim::Simulation& dst, const Cluster& src)
    : sim_(dst),
      name_(src.name_),
      speed_(src.speed_),
      machines_(src.machines_),
      running_tasks_(src.running_tasks_),
      active_machines_(src.active_machines_),
      down_(src.down_),
      drained_(src.drained_),
      crashes_(src.crashes_),
      reexecutions_(src.reexecutions_),
      drains_(src.drains_),
      undrains_(src.undrains_),
      drain_preemptions_(src.drain_preemptions_),
      idle_crashes_absorbed_(src.idle_crashes_absorbed_),
      wasted_standard_seconds_(src.wasted_standard_seconds_),
      checkpointed_standard_seconds_(src.checkpointed_standard_seconds_),
      provision_accum_(src.provision_accum_),
      provision_since_(src.provision_since_),
      provision_level_(src.provision_level_),
      queue_(src.queue_),
      running_(src.running_),
      queued_standard_seconds_(src.queued_standard_seconds_),
      next_id_(src.next_id_),
      completed_(src.completed_) {
#ifndef NDEBUG
  for (const Pending& p : queue_) {
    assert(!p.on_complete && "closure-based tasks cannot cross a fork");
  }
  for (const auto& run : running_tasks_) {
    assert((!run || !run->task.on_complete) &&
           "closure-based tasks cannot cross a fork");
  }
#endif
}

void Cluster::rebuild_events(cbs::sim::SnapshotContext& ctx) {
  for (std::size_t m = 0; m < running_tasks_.size(); ++m) {
    if (!running_tasks_[m]) continue;
    running_tasks_[m]->completion =
        ctx.restore(running_tasks_[m]->completion, [this, m] { finish(m); });
  }
}

void Cluster::note_provision_change(std::size_t new_count) {
  provision_accum_ +=
      static_cast<double>(provision_level_) * (sim_.now() - provision_since_);
  provision_since_ = sim_.now();
  provision_level_ = new_count;
}

double Cluster::provisioned_machine_seconds() const {
  return provision_accum_ +
         static_cast<double>(provision_level_) * (sim_.now() - provision_since_);
}

std::size_t Cluster::add_machine() {
  // Reuse a retired slot if one exists (keeps busy-time bookkeeping dense);
  // otherwise grow.
  std::size_t idx = machines_.size();
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    if (machines_[m].retired) {
      idx = m;
      break;
    }
  }
  if (idx == machines_.size()) {
    machines_.emplace_back();
    running_tasks_.emplace_back();
  } else {
    machines_[idx].retired = false;
    machines_[idx].retire_when_free = false;
  }
  ++active_machines_;
  note_provision_change(active_machines_);
  dispatch();
  return idx;
}

bool Cluster::remove_machine() {
  if (active_machines_ <= 1) return false;
  // Prefer an idle machine (released immediately); otherwise mark the
  // highest-index busy machine to retire when its current task finishes.
  for (std::size_t m = machines_.size(); m-- > 0;) {
    Machine& machine = machines_[m];
    if (machine.retired || machine.retire_when_free) continue;
    if (!machine.busy) {
      machine.retired = true;
      --active_machines_;
      note_provision_change(active_machines_);
      return true;
    }
  }
  for (std::size_t m = machines_.size(); m-- > 0;) {
    Machine& machine = machines_[m];
    if (machine.retired || machine.retire_when_free) continue;
    machine.retire_when_free = true;
    return true;
  }
  return false;
}

TaskId Cluster::submit(double standard_service_seconds, std::uint64_t group_id,
                       Callback on_complete) {
  assert(standard_service_seconds >= 0.0);
  const TaskId id = next_id_++;
  queue_.push_back(Pending{id, group_id, 0, sim_.now(),
                           standard_service_seconds, std::move(on_complete)});
  queued_standard_seconds_ += standard_service_seconds;
  dispatch();
  return id;
}

TaskId Cluster::submit(double standard_service_seconds, std::uint64_t group_id,
                       std::uint32_t kind) {
  assert(standard_service_seconds >= 0.0);
  const TaskId id = next_id_++;
  queue_.push_back(Pending{id, group_id, kind, sim_.now(),
                           standard_service_seconds, nullptr});
  queued_standard_seconds_ += standard_service_seconds;
  dispatch();
  return id;
}

void Cluster::dispatch() {
  while (!queue_.empty()) {
    // Lowest-indexed free, non-retired, non-crashed machine. Drained
    // machines are a soft exclusion: they are skipped while any healthy
    // machine is free (work migrates away from predicted failures) but
    // still accept work rather than stall the queue — a drain trades
    // placement preference, never capacity.
    std::size_t free = machines_.size();
    std::size_t drained_free = machines_.size();
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      if (machines_[m].busy || machines_[m].retired ||
          machines_[m].retire_when_free || machines_[m].down) {
        continue;
      }
      if (!machines_[m].drained) {
        free = m;
        break;
      }
      if (drained_free == machines_.size()) drained_free = m;
    }
    if (free == machines_.size()) free = drained_free;
    if (free == machines_.size()) return;

    Pending task = std::move(queue_.front());
    queue_.pop_front();
    queued_standard_seconds_ -= task.standard_service;

    Machine& machine = machines_[free];
    machine.busy = true;
    machine.busy_since = sim_.now();
    ++running_;

    const double duration = task.standard_service / speed_;
    // The task is parked on the machine (not in the event closure) so a
    // crash can cancel the completion and reclaim it for re-execution.
    Running run{std::move(task), sim_.now(), {}};
    run.completion = sim_.schedule_in(duration, [this, free] { finish(free); });
    running_tasks_[free] = std::move(run);
  }
}

void Cluster::finish(std::size_t machine_idx) {
  assert(running_tasks_[machine_idx].has_value());
  Pending task = std::move(running_tasks_[machine_idx]->task);
  const SimTime started = running_tasks_[machine_idx]->started;
  running_tasks_[machine_idx].reset();

  Machine& machine = machines_[machine_idx];
  machine.busy = false;
  machine.busy_accum += sim_.now() - machine.busy_since;
  --running_;
  if (machine.retire_when_free) {
    machine.retire_when_free = false;
    machine.retired = true;
    --active_machines_;
    note_provision_change(active_machines_);
  }

  TaskRecord rec;
  rec.task_id = task.task_id;
  rec.group_id = task.group_id;
  rec.kind = task.kind;
  rec.enqueued = task.enqueued;
  rec.started = started;
  rec.completed = sim_.now();
  rec.machine = machine_idx;
  rec.standard_service = task.standard_service;
  completed_.push_back(rec);

  // Pull the next task before invoking callbacks, so the machine never sits
  // idle across a callback that might enqueue more work.
  dispatch();
  if (task.on_complete) {
    task.on_complete(rec);
  } else if (task_complete_hook_) {
    task_complete_hook_(rec);
  }
  if (task_done_hook_) task_done_hook_();
  if (queue_.empty() && !machines_[machine_idx].busy && idle_hook_) {
    idle_hook_(machine_idx);
  }
}

bool Cluster::crash_machine(std::size_t machine_idx) {
  if (machine_idx >= machines_.size()) return false;
  Machine& machine = machines_[machine_idx];
  if (machine.retired || machine.down) return false;
  ++crashes_;
  // A crash on a pre-emptively drained, idle machine destroys nothing —
  // exactly the outcome the proactive policy drains for.
  if (machine.drained && !machine.busy) ++idle_crashes_absorbed_;
  if (machine.busy) {
    Running& run = *running_tasks_[machine_idx];
    sim_.cancel(run.completion);
    // Cycles burned so far are both paid for (busy time) and wasted (the
    // re-execution starts from scratch).
    const double lost_wall = sim_.now() - run.started;
    wasted_standard_seconds_ += lost_wall * speed_;
    machine.busy = false;
    machine.busy_accum += sim_.now() - machine.busy_since;
    --running_;
    ++reexecutions_;
    Pending task = std::move(run.task);
    running_tasks_[machine_idx].reset();
    // Head of the queue: the lost task keeps its FCFS position.
    queued_standard_seconds_ += task.standard_service;
    queue_.push_front(std::move(task));
  }
  if (machine.retire_when_free) {
    // The machine was draining toward retirement anyway — retire it now
    // instead of parking it in the down state.
    machine.retire_when_free = false;
    machine.retired = true;
    --active_machines_;
    note_provision_change(active_machines_);
  } else {
    machine.down = true;
    ++down_;
  }
  // The reclaimed task may fit on another free machine right away.
  dispatch();
  return true;
}

bool Cluster::recover_machine(std::size_t machine_idx) {
  if (machine_idx >= machines_.size()) return false;
  Machine& machine = machines_[machine_idx];
  if (!machine.down) return false;
  machine.down = false;
  assert(down_ > 0);
  --down_;
  dispatch();
  return true;
}

bool Cluster::drain_machine(std::size_t machine_idx, bool preempt) {
  if (machine_idx >= machines_.size()) return false;
  Machine& machine = machines_[machine_idx];
  if (machine.retired || machine.retire_when_free || machine.drained) {
    return false;
  }
  machine.drained = true;
  ++drained_;
  ++drains_;
  if (preempt && machine.busy) {
    // Checkpoint-restart: cancel the completion, bank the finished
    // fraction and re-queue only the remainder at its FCFS position.
    Running& run = *running_tasks_[machine_idx];
    sim_.cancel(run.completion);
    const double done_standard = (sim_.now() - run.started) * speed_;
    machine.busy = false;
    machine.busy_accum += sim_.now() - machine.busy_since;
    --running_;
    ++drain_preemptions_;
    Pending task = std::move(run.task);
    running_tasks_[machine_idx].reset();
    const double remaining =
        std::max(0.0, task.standard_service - done_standard);
    checkpointed_standard_seconds_ += task.standard_service - remaining;
    task.standard_service = remaining;
    queued_standard_seconds_ += remaining;
    queue_.push_front(std::move(task));
    dispatch();
  }
  return true;
}

bool Cluster::undrain_machine(std::size_t machine_idx) {
  if (machine_idx >= machines_.size()) return false;
  Machine& machine = machines_[machine_idx];
  if (!machine.drained) return false;
  machine.drained = false;
  assert(drained_ > 0);
  --drained_;
  ++undrains_;
  dispatch();
  return true;
}

bool Cluster::machine_drained(std::size_t machine) const {
  assert(machine < machines_.size());
  return machines_[machine].drained;
}

bool Cluster::machine_retired(std::size_t machine) const {
  assert(machine < machines_.size());
  return machines_[machine].retired;
}

double Cluster::machine_busy_time(std::size_t machine) const {
  assert(machine < machines_.size());
  const Machine& m = machines_[machine];
  return m.busy_accum + (m.busy ? sim_.now() - m.busy_since : 0.0);
}

double Cluster::total_busy_time() const {
  double total = 0.0;
  for (std::size_t m = 0; m < machines_.size(); ++m) total += machine_busy_time(m);
  return total;
}

double Cluster::average_utilization(SimTime t0, SimTime t1) const {
  assert(t1 > t0);
  // Eq. 9: u_M = ru_M / (|M| * C). Busy time accumulated before t0 is not
  // subtracted because runs always start metering at t0 = 0 in practice;
  // the assert documents the assumption.
  assert(t0 == 0.0 && "utilization metering assumes run starts at t=0");
  return total_busy_time() /
         (static_cast<double>(machine_count()) * (t1 - t0));
}

}  // namespace cbs::compute
