#include "compute/job_store.hpp"

#include <algorithm>
#include <cassert>

namespace cbs::compute {

JobStore::JobStore(cbs::sim::Simulation& sim) : sim_(sim) {}

void JobStore::integrate() {
  byte_seconds_ += occupancy_ * (sim_.now() - last_change_);
  last_change_ = sim_.now();
}

double JobStore::occupancy_byte_seconds() const {
  return byte_seconds_ + occupancy_ * (sim_.now() - last_change_);
}

void JobStore::put(const std::string& key, double bytes) {
  assert(bytes >= 0.0);
  integrate();
  auto [it, inserted] = objects_.try_emplace(key, bytes);
  if (!inserted) {
    occupancy_ -= it->second;
    it->second = bytes;
  }
  occupancy_ += bytes;
  peak_ = std::max(peak_, occupancy_);
  history_.add(sim_.now(), occupancy_);
}

double JobStore::size_of(const std::string& key) const {
  auto it = objects_.find(key);
  return it == objects_.end() ? 0.0 : it->second;
}

bool JobStore::contains(const std::string& key) const {
  return objects_.contains(key);
}

double JobStore::erase(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return 0.0;
  integrate();
  const double freed = it->second;
  occupancy_ -= freed;
  objects_.erase(it);
  history_.add(sim_.now(), occupancy_);
  return freed;
}

}  // namespace cbs::compute
