#include "compute/job_store.hpp"

#include <algorithm>
#include <cassert>

namespace cbs::compute {

JobStore::JobStore(cbs::sim::Simulation& sim, Config config)
    : sim_(sim), config_(config) {
  assert(config_.max_attempts >= 1);
  assert(config_.retry_backoff >= 0.0);
  assert(config_.backoff_multiplier >= 1.0);
  assert(config_.capacity_bytes >= 0.0);
}

cbs::sim::SimDuration JobStore::backoff_delay(int attempt) const {
  // attempt 0 failed -> wait retry_backoff, then grow geometrically.
  double delay = config_.retry_backoff;
  for (int i = 0; i < attempt; ++i) delay *= config_.backoff_multiplier;
  return std::min(delay, config_.max_backoff);
}

void JobStore::attempt_put(const std::string& key, double bytes,
                           PutHandler done, int attempt) {
  const double delta = bytes - size_of(key);  // overwrite frees the old object
  if (available_ && occupancy_ + delta <= config_.capacity_bytes) {
    put(key, bytes);
    if (done) done(true);
    return;
  }
  ++failed_attempts_;
  if (attempt + 1 >= config_.max_attempts) {
    ++abandoned_ops_;
    if (done) done(false);
    return;
  }
  sim_.schedule_in(backoff_delay(attempt),
                   [this, key, bytes, done = std::move(done), attempt] {
                     attempt_put(key, bytes, done, attempt + 1);
                   });
}

void JobStore::put_async(const std::string& key, double bytes,
                         PutHandler done) {
  attempt_put(key, bytes, std::move(done), 0);
}

void JobStore::attempt_get(const std::string& key, GetHandler done,
                           int attempt) {
  if (available_) {
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      // Absence on a healthy store is a definite answer, not a fault.
      if (done) done(false, 0.0);
    } else {
      if (done) done(true, it->second);
    }
    return;
  }
  ++failed_attempts_;
  if (attempt + 1 >= config_.max_attempts) {
    ++abandoned_ops_;
    if (done) done(false, 0.0);
    return;
  }
  sim_.schedule_in(backoff_delay(attempt),
                   [this, key, done = std::move(done), attempt] {
                     attempt_get(key, done, attempt + 1);
                   });
}

void JobStore::get_async(const std::string& key, GetHandler done) {
  attempt_get(key, std::move(done), 0);
}

void JobStore::integrate() {
  byte_seconds_ += occupancy_ * (sim_.now() - last_change_);
  last_change_ = sim_.now();
}

double JobStore::occupancy_byte_seconds() const {
  return byte_seconds_ + occupancy_ * (sim_.now() - last_change_);
}

void JobStore::put(const std::string& key, double bytes) {
  assert(bytes >= 0.0);
  integrate();
  auto [it, inserted] = objects_.try_emplace(key, bytes);
  if (!inserted) {
    occupancy_ -= it->second;
    it->second = bytes;
  }
  occupancy_ += bytes;
  peak_ = std::max(peak_, occupancy_);
  history_.add(sim_.now(), occupancy_);
}

double JobStore::size_of(const std::string& key) const {
  auto it = objects_.find(key);
  return it == objects_.end() ? 0.0 : it->second;
}

bool JobStore::contains(const std::string& key) const {
  return objects_.contains(key);
}

double JobStore::erase(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return 0.0;
  integrate();
  const double freed = it->second;
  occupancy_ -= freed;
  objects_.erase(it);
  history_.add(sim_.now(), occupancy_);
  return freed;
}

}  // namespace cbs::compute
