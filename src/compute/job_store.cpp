#include "compute/job_store.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "simcore/snapshot.hpp"

namespace cbs::compute {

JobStore::JobStore(cbs::sim::Simulation& sim, Config config)
    : sim_(sim), config_(config) {
  assert(config_.max_attempts >= 1);
  assert(config_.retry_backoff >= 0.0);
  assert(config_.backoff_multiplier >= 1.0);
  assert(config_.capacity_bytes >= 0.0);
}

JobStore::JobStore(cbs::sim::Simulation& dst, const JobStore& src)
    : sim_(dst),
      config_(src.config_),
      available_(src.available_),
      failed_attempts_(src.failed_attempts_),
      abandoned_ops_(src.abandoned_ops_),
      objects_(src.objects_),
      occupancy_(src.occupancy_),
      peak_(src.peak_),
      byte_seconds_(src.byte_seconds_),
      last_change_(src.last_change_),
      history_(src.history_),
      pending_ops_(src.pending_ops_),
      next_op_id_(src.next_op_id_) {
  assert(src.closure_retries_pending_ == 0 &&
         "closure-based async ops cannot cross a fork");
}

int JobStore::register_continuation(Continuation continuation) {
  assert(continuation);
  continuations_.push_back(std::move(continuation));
  return static_cast<int>(continuations_.size()) - 1;
}

void JobStore::rebuild_events(cbs::sim::SnapshotContext& ctx) {
  for (auto& [op_id, op] : pending_ops_) {
    const std::uint64_t id = op_id;
    op.retry = ctx.restore(op.retry, [this, id] { retry_op(id); });
  }
}

cbs::sim::SimDuration JobStore::backoff_delay(int attempt) const {
  // attempt 0 failed -> wait retry_backoff, then grow geometrically.
  double delay = config_.retry_backoff;
  for (int i = 0; i < attempt; ++i) delay *= config_.backoff_multiplier;
  return std::min(delay, config_.max_backoff);
}

void JobStore::attempt_put(const std::string& key, double bytes,
                           PutHandler done, int attempt) {
  const double delta = bytes - size_of(key);  // overwrite frees the old object
  if (available_ && occupancy_ + delta <= config_.capacity_bytes) {
    put(key, bytes);
    if (done) done(true);
    return;
  }
  ++failed_attempts_;
  if (attempt + 1 >= config_.max_attempts) {
    ++abandoned_ops_;
    if (done) done(false);
    return;
  }
  ++closure_retries_pending_;
  sim_.schedule_in(backoff_delay(attempt),
                   [this, key, bytes, done = std::move(done), attempt] {
                     --closure_retries_pending_;
                     attempt_put(key, bytes, done, attempt + 1);
                   });
}

void JobStore::put_async(const std::string& key, double bytes,
                         PutHandler done) {
  attempt_put(key, bytes, std::move(done), 0);
}

void JobStore::attempt_get(const std::string& key, GetHandler done,
                           int attempt) {
  if (available_) {
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      // Absence on a healthy store is a definite answer, not a fault.
      if (done) done(false, 0.0);
    } else {
      if (done) done(true, it->second);
    }
    return;
  }
  ++failed_attempts_;
  if (attempt + 1 >= config_.max_attempts) {
    ++abandoned_ops_;
    if (done) done(false, 0.0);
    return;
  }
  ++closure_retries_pending_;
  sim_.schedule_in(backoff_delay(attempt),
                   [this, key, done = std::move(done), attempt] {
                     --closure_retries_pending_;
                     attempt_get(key, done, attempt + 1);
                   });
}

void JobStore::get_async(const std::string& key, GetHandler done) {
  attempt_get(key, std::move(done), 0);
}

void JobStore::put_async(const std::string& key, double bytes, int slot,
                         std::uint64_t tag) {
  assert(slot >= 0 && slot < static_cast<int>(continuations_.size()));
  PendingOp op;
  op.is_put = true;
  op.key = key;
  op.bytes = bytes;
  op.slot = slot;
  op.tag = tag;
  step_op(std::move(op));
}

void JobStore::get_async(const std::string& key, int slot, std::uint64_t tag) {
  assert(slot >= 0 && slot < static_cast<int>(continuations_.size()));
  PendingOp op;
  op.is_put = false;
  op.key = key;
  op.slot = slot;
  op.tag = tag;
  step_op(std::move(op));
}

void JobStore::step_op(PendingOp op) {
  Continuation& done = continuations_[static_cast<std::size_t>(op.slot)];
  if (op.is_put) {
    const double delta = op.bytes - size_of(op.key);
    if (available_ && occupancy_ + delta <= config_.capacity_bytes) {
      put(op.key, op.bytes);
      done(op.tag, true, op.bytes);
      return;
    }
  } else if (available_) {
    // Absence on a healthy store is a definite answer, not a fault.
    auto it = objects_.find(op.key);
    if (it == objects_.end()) {
      done(op.tag, false, 0.0);
    } else {
      done(op.tag, true, it->second);
    }
    return;
  }
  ++failed_attempts_;
  if (op.attempt + 1 >= config_.max_attempts) {
    ++abandoned_ops_;
    done(op.tag, false, 0.0);
    return;
  }
  const std::uint64_t op_id = next_op_id_++;
  const cbs::sim::SimDuration delay = backoff_delay(op.attempt);
  op.retry = sim_.schedule_in(delay, [this, op_id] { retry_op(op_id); });
  pending_ops_.emplace(op_id, std::move(op));
}

void JobStore::retry_op(std::uint64_t op_id) {
  auto it = pending_ops_.find(op_id);
  assert(it != pending_ops_.end());
  PendingOp op = std::move(it->second);
  pending_ops_.erase(it);
  op.retry = cbs::sim::EventId{};
  ++op.attempt;
  step_op(std::move(op));
}

void JobStore::integrate() {
  byte_seconds_ += occupancy_ * (sim_.now() - last_change_);
  last_change_ = sim_.now();
}

double JobStore::occupancy_byte_seconds() const {
  return byte_seconds_ + occupancy_ * (sim_.now() - last_change_);
}

void JobStore::put(const std::string& key, double bytes) {
  assert(bytes >= 0.0);
  integrate();
  auto [it, inserted] = objects_.try_emplace(key, bytes);
  if (!inserted) {
    occupancy_ -= it->second;
    it->second = bytes;
  }
  occupancy_ += bytes;
  peak_ = std::max(peak_, occupancy_);
  history_.add(sim_.now(), occupancy_);
}

double JobStore::size_of(const std::string& key) const {
  auto it = objects_.find(key);
  return it == objects_.end() ? 0.0 : it->second;
}

bool JobStore::contains(const std::string& key) const {
  return objects_.contains(key);
}

double JobStore::erase(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return 0.0;
  integrate();
  const double freed = it->second;
  occupancy_ -= freed;
  objects_.erase(it);
  history_.add(sim_.now(), occupancy_);
  return freed;
}

}  // namespace cbs::compute
