#include "compute/mapreduce.hpp"

#include <cassert>

namespace cbs::compute {

MapReduceRuntime::MapReduceRuntime(cbs::sim::Simulation& sim, Cluster& cluster)
    : sim_(sim), cluster_(cluster) {
  cluster_.set_task_complete_hook(
      [this](const TaskRecord& rec) { on_cluster_task(rec); });
}

MapReduceRuntime::MapReduceRuntime(cbs::sim::Simulation& dst,
                                   const MapReduceRuntime& src,
                                   Cluster& cluster)
    : sim_(dst),
      cluster_(cluster),
      in_flight_(src.in_flight_),
      completed_(src.completed_) {
#ifndef NDEBUG
  for (const auto& [id, job] : in_flight_) {
    assert(job.hook_form && "closure-form jobs cannot cross a fork");
  }
#endif
  cluster_.set_task_complete_hook(
      [this](const TaskRecord& rec) { on_cluster_task(rec); });
}

void MapReduceRuntime::run(const MapReduceSpec& spec, Callback on_complete) {
  assert(spec.num_map_tasks >= 1);
  assert(spec.total_map_seconds >= 0.0);
  assert(spec.merge_seconds >= 0.0);
  assert(!in_flight_.contains(spec.job_id) && "job_id already running");

  InFlight job;
  job.spec = spec;
  job.submitted = sim_.now();
  job.maps_remaining = spec.num_map_tasks;
  job.on_complete = std::move(on_complete);
  in_flight_.emplace(spec.job_id, std::move(job));

  const double per_task =
      spec.total_map_seconds / static_cast<double>(spec.num_map_tasks);
  for (int t = 0; t < spec.num_map_tasks; ++t) {
    cluster_.submit(per_task, spec.job_id,
                    [this, id = spec.job_id](const TaskRecord&) { on_map_done(id); });
  }
}

void MapReduceRuntime::run(const MapReduceSpec& spec) {
  assert(spec.num_map_tasks >= 1);
  assert(spec.total_map_seconds >= 0.0);
  assert(spec.merge_seconds >= 0.0);
  assert(!in_flight_.contains(spec.job_id) && "job_id already running");

  InFlight job;
  job.spec = spec;
  job.submitted = sim_.now();
  job.maps_remaining = spec.num_map_tasks;
  job.hook_form = true;
  in_flight_.emplace(spec.job_id, std::move(job));

  const double per_task =
      spec.total_map_seconds / static_cast<double>(spec.num_map_tasks);
  for (int t = 0; t < spec.num_map_tasks; ++t) {
    cluster_.submit(per_task, spec.job_id, kMapTask);
  }
}

void MapReduceRuntime::on_cluster_task(const TaskRecord& rec) {
  switch (rec.kind) {
    case kMapTask:
      on_map_done(rec.group_id);
      break;
    case kMergeTask:
      finish_merge(rec.group_id, rec);
      break;
    default:
      break;  // untagged task submitted directly to the cluster: not ours
  }
}

void MapReduceRuntime::on_map_done(std::uint64_t job_id) {
  auto it = in_flight_.find(job_id);
  assert(it != in_flight_.end());
  InFlight& job = it->second;
  assert(job.maps_remaining > 0);
  if (--job.maps_remaining == 0) {
    job.maps_done = sim_.now();
    start_merge(job_id);
  }
}

void MapReduceRuntime::start_merge(std::uint64_t job_id) {
  auto it = in_flight_.find(job_id);
  assert(it != in_flight_.end());
  InFlight& job = it->second;

  if (job.hook_form) {
    cluster_.submit(job.spec.merge_seconds, job_id, kMergeTask);
    return;
  }
  cluster_.submit(job.spec.merge_seconds, job_id,
                  [this, job_id](const TaskRecord& merge) {
                    finish_merge(job_id, merge);
                  });
}

void MapReduceRuntime::finish_merge(std::uint64_t job_id,
                                    const TaskRecord& merge) {
  auto jt = in_flight_.find(job_id);
  assert(jt != in_flight_.end());
  MapReduceRecord rec;
  rec.job_id = job_id;
  rec.submitted = jt->second.submitted;
  rec.maps_done = jt->second.maps_done;
  rec.completed = merge.completed;
  rec.num_map_tasks = jt->second.spec.num_map_tasks;
  const bool hook_form = jt->second.hook_form;
  Callback cb = std::move(jt->second.on_complete);
  in_flight_.erase(jt);
  completed_.push_back(rec);
  if (hook_form) {
    if (on_complete_) on_complete_(rec);
  } else if (cb) {
    cb(rec);
  }
}

}  // namespace cbs::compute
