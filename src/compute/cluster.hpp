#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace cbs::sim {
class SnapshotContext;
}

namespace cbs::compute {

using TaskId = std::uint64_t;

/// Everything known about a finished compute task.
struct TaskRecord {
  TaskId task_id = 0;
  std::uint64_t group_id = 0;  ///< caller-defined grouping (e.g. job id)
  std::uint32_t kind = 0;      ///< caller-defined task kind (0 = untagged)
  cbs::sim::SimTime enqueued = 0.0;
  cbs::sim::SimTime started = 0.0;
  cbs::sim::SimTime completed = 0.0;
  std::size_t machine = 0;
  double standard_service = 0.0;  ///< service time on a speed-1 machine
};

/// A pool of identical machines with one global FCFS task queue — the
/// execution substrate for both the internal (Hadoop on printer
/// controllers) and external (EMR) clouds. Tasks are dispatched to the
/// lowest-indexed free machine; each machine runs one task at a time at
/// `speed` times the standard rate.
class Cluster {
 public:
  using Callback = std::function<void(const TaskRecord&)>;

  Cluster(cbs::sim::Simulation& sim, std::string name, std::size_t machines,
          double speed = 1.0);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Fork support: copies `src`'s value state (machines, queue, running
  /// tasks, accounting) into a cluster bound to `dst`. Hooks are NOT
  /// copied — owners re-register them on the clone — and then
  /// rebuild_events() re-schedules the running tasks' completions.
  /// Precondition: no queued or running task carries a per-task closure
  /// (closure submissions cannot cross a fork; use the kind-tagged form).
  Cluster(cbs::sim::Simulation& dst, const Cluster& src);

  /// Re-schedules pending completion events after a fork.
  void rebuild_events(cbs::sim::SnapshotContext& ctx);

  /// Enqueues a task needing `standard_service_seconds` of speed-1 compute.
  TaskId submit(double standard_service_seconds, std::uint64_t group_id,
                Callback on_complete);

  /// Kind-tagged submission — the forkable form: completion is dispatched
  /// to the set-once task-complete hook with `kind` in the record instead
  /// of a per-task closure.
  TaskId submit(double standard_service_seconds, std::uint64_t group_id,
                std::uint32_t kind);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Machines currently provisioned (retired ones excluded).
  [[nodiscard]] std::size_t machine_count() const noexcept { return active_machines_; }
  /// All machine slots ever provisioned, including retired ones (for
  /// per-machine busy-time iteration).
  [[nodiscard]] std::size_t machine_slots() const noexcept { return machines_.size(); }
  [[nodiscard]] double speed() const noexcept { return speed_; }
  [[nodiscard]] std::size_t queued_tasks() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t running_tasks() const noexcept { return running_; }
  [[nodiscard]] bool idle() const noexcept { return queue_.empty() && running_ == 0; }

  /// True (speed-1) service seconds sitting in the queue, not yet started.
  /// Ground truth — used by metrics and tests, never by schedulers.
  [[nodiscard]] double queued_standard_seconds() const noexcept {
    return queued_standard_seconds_;
  }

  /// Busy time of one machine up to now.
  [[nodiscard]] double machine_busy_time(std::size_t machine) const;
  /// Sum of busy time over all machines.
  [[nodiscard]] double total_busy_time() const;
  /// Average utilization over [t0, t1] per the paper's Eq. 9.
  [[nodiscard]] double average_utilization(cbs::sim::SimTime t0,
                                           cbs::sim::SimTime t1) const;

  [[nodiscard]] const std::vector<TaskRecord>& completed() const noexcept {
    return completed_;
  }

  /// Registers a hook invoked whenever a machine becomes free and the queue
  /// is empty — the trigger point of the §IV.D rescheduling strategies.
  void set_idle_hook(std::function<void(std::size_t machine)> hook) {
    idle_hook_ = std::move(hook);
  }

  /// Registers a hook invoked after every task completion (after the next
  /// task was dispatched) — lets a controller keep its feed-ahead window
  /// topped up without polling.
  void set_task_done_hook(std::function<void()> hook) {
    task_done_hook_ = std::move(hook);
  }

  /// Registers the completion hook for kind-tagged tasks (tasks submitted
  /// without a closure). Fires before task_done_hook_, in the position the
  /// per-task closure would have run.
  void set_task_complete_hook(Callback hook) {
    task_complete_hook_ = std::move(hook);
  }

  // ---- Elasticity (pay-as-you-go instances) --------------------------

  /// Provisions one more machine (an EC instance spin-up). It becomes
  /// eligible for dispatch immediately; model boot delay by scheduling the
  /// call at now + boot_time. Returns its machine index.
  std::size_t add_machine();

  /// Retires one machine: an idle machine is released immediately,
  /// otherwise the busiest-index idle-soon machine finishes its current
  /// task and is released then (lazy drain). Returns false when the
  /// cluster is already at one machine (never scales to zero).
  bool remove_machine();

  /// Integral of provisioned machine count over time — the correct
  /// utilization denominator for an elastic cluster (machine-seconds paid
  /// for). For a static cluster this equals machine_count() * now.
  [[nodiscard]] double provisioned_machine_seconds() const;

  // ---- Fault injection (crash/recover, driven by sim::FaultPlan) -----

  /// Crashes one machine: its running task (if any) is lost mid-flight and
  /// re-queued at the *front* of the FCFS queue — the work is re-executed
  /// from scratch and the partial compute is counted as wasted. The machine
  /// stays down (never dispatched) until recover_machine(). A machine that
  /// was draining toward retirement is retired on the spot. Returns false
  /// for an unknown, retired or already-down machine.
  bool crash_machine(std::size_t machine);

  /// Brings a crashed machine back; it immediately pulls queued work.
  /// Returns false unless the machine is currently down.
  bool recover_machine(std::size_t machine);

  // ---- Proactive drains (pre-emptive resilience policy) ---------------

  /// Drains one machine: dispatch avoids it while any healthy machine is
  /// free (a *soft* exclusion — under full backlog it still accepts work
  /// rather than stall the queue, so a drain trades placement preference,
  /// never capacity). It stays provisioned (still billed, still counted in
  /// machine_count()). With `preempt`, a task running on it is
  /// checkpoint-restarted: its completed fraction is preserved and only the
  /// remaining service re-queues at the *front* of the FCFS queue — unlike
  /// a crash, no compute is wasted. Refused (returns false) for a retired
  /// or already-drained machine.
  bool drain_machine(std::size_t machine, bool preempt);

  /// Lifts a drain; the machine immediately pulls queued work. Returns
  /// false unless the machine is currently drained.
  bool undrain_machine(std::size_t machine);

  [[nodiscard]] bool machine_drained(std::size_t machine) const;
  [[nodiscard]] bool machine_retired(std::size_t machine) const;
  /// Machines currently drained.
  [[nodiscard]] std::size_t drained_machines() const noexcept {
    return drained_;
  }
  /// Cumulative drain / undrain decisions applied.
  [[nodiscard]] std::uint64_t drains() const noexcept { return drains_; }
  [[nodiscard]] std::uint64_t undrains() const noexcept { return undrains_; }
  /// Running tasks checkpoint-restarted by a pre-emptive drain.
  [[nodiscard]] std::uint64_t drain_preemptions() const noexcept {
    return drain_preemptions_;
  }
  /// Standard (speed-1) seconds of partial work preserved by checkpoint
  /// restarts — compute a crash would have wasted.
  [[nodiscard]] double checkpointed_standard_seconds() const noexcept {
    return checkpointed_standard_seconds_;
  }
  /// Crashes that landed on a drained, idle machine — the proactive
  /// policy's dividend: those crashes destroyed no work at all.
  [[nodiscard]] std::uint64_t idle_crashes_absorbed() const noexcept {
    return idle_crashes_absorbed_;
  }

  /// Machines currently down (crashed, not yet recovered).
  [[nodiscard]] std::size_t down_machines() const noexcept { return down_; }
  /// Crash events applied so far.
  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  /// Tasks that lost a machine mid-run and were re-queued for a full
  /// re-execution.
  [[nodiscard]] std::uint64_t reexecutions() const noexcept {
    return reexecutions_;
  }
  /// Standard (speed-1) service seconds of partial work destroyed by
  /// crashes — the wasted-compute bill of the fault model.
  [[nodiscard]] double wasted_standard_seconds() const noexcept {
    return wasted_standard_seconds_;
  }

 private:
  struct Machine {
    bool busy = false;
    bool retired = false;        ///< released; never dispatched again
    bool retire_when_free = false;
    bool down = false;           ///< crashed; awaiting recover_machine()
    bool drained = false;        ///< pre-emptively held out of dispatch
    double busy_accum = 0.0;
    cbs::sim::SimTime busy_since = 0.0;
  };

  struct Pending {
    TaskId task_id;
    std::uint64_t group_id;
    std::uint32_t kind;
    cbs::sim::SimTime enqueued;
    double standard_service;
    Callback on_complete;  ///< closure form (non-forkable); else hook fires
  };

  /// The task executing on one machine, kept out of the completion-event
  /// closure so a crash can cancel the event and reclaim the task.
  struct Running {
    Pending task;
    cbs::sim::SimTime started = 0.0;
    cbs::sim::EventId completion{};
  };

  void dispatch();
  void finish(std::size_t machine);

  void note_provision_change(std::size_t new_count);

  cbs::sim::Simulation& sim_;
  std::string name_;
  double speed_;
  std::vector<Machine> machines_;
  std::vector<std::optional<Running>> running_tasks_;  ///< parallel to machines_
  std::size_t active_machines_ = 0;
  std::size_t down_ = 0;
  std::size_t drained_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t reexecutions_ = 0;
  std::uint64_t drains_ = 0;
  std::uint64_t undrains_ = 0;
  std::uint64_t drain_preemptions_ = 0;
  std::uint64_t idle_crashes_absorbed_ = 0;
  double wasted_standard_seconds_ = 0.0;
  double checkpointed_standard_seconds_ = 0.0;
  // Provisioned machine-seconds accounting.
  double provision_accum_ = 0.0;
  cbs::sim::SimTime provision_since_ = 0.0;
  std::size_t provision_level_ = 0;
  std::deque<Pending> queue_;
  std::size_t running_ = 0;
  double queued_standard_seconds_ = 0.0;
  TaskId next_id_ = 1;
  std::vector<TaskRecord> completed_;
  // cbs-lint: snapshot-complete-ok(owner re-registers its hooks post-fork)
  std::function<void(std::size_t)> idle_hook_;
  // cbs-lint: snapshot-complete-ok(owner re-registers its hooks post-fork)
  std::function<void()> task_done_hook_;
  // cbs-lint: snapshot-complete-ok(owner re-registers its hooks post-fork)
  Callback task_complete_hook_;
};

}  // namespace cbs::compute
