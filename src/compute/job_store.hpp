#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "simcore/simulation.hpp"
#include "stats/timeseries.hpp"

namespace cbs::compute {

/// The external cloud's staging storage (Amazon S3 in the prototype):
/// uploaded job inputs land here before EMR picks them up, and compressed
/// outputs wait here for download. Tracks occupancy over time so benches
/// can report peak staging footprint.
class JobStore {
 public:
  explicit JobStore(cbs::sim::Simulation& sim);
  JobStore(const JobStore&) = delete;
  JobStore& operator=(const JobStore&) = delete;

  /// Stores `bytes` under `key`; overwrites an existing object.
  void put(const std::string& key, double bytes);

  /// Size of the object under `key`; 0 if absent.
  [[nodiscard]] double size_of(const std::string& key) const;

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Removes an object; no-op if absent. Returns the freed bytes.
  double erase(const std::string& key);

  [[nodiscard]] double occupancy_bytes() const noexcept { return occupancy_; }
  [[nodiscard]] double peak_occupancy_bytes() const noexcept { return peak_; }
  /// Integral of occupancy over time (byte-seconds) — the storage-billing
  /// quantity.
  [[nodiscard]] double occupancy_byte_seconds() const;
  [[nodiscard]] std::size_t object_count() const noexcept { return objects_.size(); }
  [[nodiscard]] const cbs::stats::TimeSeries& occupancy_history() const noexcept {
    return history_;
  }

 private:
  cbs::sim::Simulation& sim_;
  void integrate();

  std::unordered_map<std::string, double> objects_;
  double occupancy_ = 0.0;
  double peak_ = 0.0;
  double byte_seconds_ = 0.0;
  cbs::sim::SimTime last_change_ = 0.0;
  cbs::stats::TimeSeries history_;
};

}  // namespace cbs::compute
