#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/simulation.hpp"
#include "simcore/time.hpp"
#include "stats/timeseries.hpp"
#include "util/flat_map.hpp"

namespace cbs::sim {
class SnapshotContext;
}

namespace cbs::compute {

/// The external cloud's staging storage (Amazon S3 in the prototype):
/// uploaded job inputs land here before EMR picks them up, and compressed
/// outputs wait here for download. Tracks occupancy over time so benches
/// can report peak staging footprint.
///
/// The synchronous put/size_of/erase API models the fault-free control
/// plane. The asynchronous put_async/get_async paths add S3-style
/// best-effort semantics: while the store is unavailable (an EC outage) or
/// over capacity, an attempt fails and is retried after exponential
/// backoff, giving up after `Config::max_attempts`. With the store
/// available and capacity unconstrained (the defaults), the async paths
/// complete synchronously and schedule no events — the fault layer is free
/// when disabled.
class JobStore {
 public:
  struct Config {
    /// Attempts per operation (first try included). At least 1.
    int max_attempts = 6;
    /// Delay before the first retry; grows by `backoff_multiplier` per
    /// subsequent retry, capped at `max_backoff`.
    cbs::sim::SimDuration retry_backoff = 2.0;
    double backoff_multiplier = 2.0;
    cbs::sim::SimDuration max_backoff = 60.0;
    /// Byte capacity; a put that would overflow it fails (and retries).
    double capacity_bytes = std::numeric_limits<double>::infinity();
  };

  using PutHandler = std::function<void(bool ok)>;
  using GetHandler = std::function<void(bool ok, double bytes)>;
  /// A registered continuation: receives the caller's tag and the result
  /// (`bytes` is the object size for gets, the stored size for puts).
  using Continuation =
      std::function<void(std::uint64_t tag, bool ok, double bytes)>;

  explicit JobStore(cbs::sim::Simulation& sim) : JobStore(sim, Config{}) {}
  JobStore(cbs::sim::Simulation& sim, Config config);
  JobStore(const JobStore&) = delete;
  JobStore& operator=(const JobStore&) = delete;

  /// Fork support: copies `src`'s value state (objects, occupancy
  /// accounting, pending retry records) into a store bound to `dst`.
  /// Continuations are NOT copied — the owner must register them on the
  /// clone in source order, then call rebuild_events(). Precondition: no
  /// closure-based async op is awaiting a retry.
  JobStore(cbs::sim::Simulation& dst, const JobStore& src);

  /// Registers a continuation and returns its slot for the tag-based
  /// async forms.
  int register_continuation(Continuation continuation);

  /// Re-schedules pending retry events after a fork.
  void rebuild_events(cbs::sim::SnapshotContext& ctx);

  /// Stores `bytes` under `key`; overwrites an existing object.
  void put(const std::string& key, double bytes);

  /// Size of the object under `key`; 0 if absent.
  [[nodiscard]] double size_of(const std::string& key) const;

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Removes an object; no-op if absent. Returns the freed bytes.
  double erase(const std::string& key);

  // ---- Best-effort paths (retry/backoff against outages) -------------

  /// Availability switch, driven by the EC outage windows of the fault
  /// plan. While false, every async attempt fails.
  void set_available(bool available) noexcept { available_ = available; }
  [[nodiscard]] bool available() const noexcept { return available_; }

  /// Stores `bytes` under `key` with retry/backoff; `done(ok)` fires once,
  /// synchronously when the first attempt succeeds.
  void put_async(const std::string& key, double bytes, PutHandler done);

  /// Fetches the object size with the same retry semantics. A missing key
  /// on an *available* store fails immediately (no retry — absence is a
  /// definite answer, not an outage).
  void get_async(const std::string& key, GetHandler done);

  /// Tag-based forms — the forkable path: the result is dispatched to the
  /// registered continuation `slot` with `tag`, and a pending retry is
  /// value state (re-schedulable across a fork) instead of a closure.
  void put_async(const std::string& key, double bytes, int slot,
                 std::uint64_t tag);
  void get_async(const std::string& key, int slot, std::uint64_t tag);

  /// Async attempts that failed (unavailable or over capacity).
  [[nodiscard]] std::uint64_t failed_attempts() const noexcept {
    return failed_attempts_;
  }
  /// Operations that exhausted max_attempts and reported ok = false.
  [[nodiscard]] std::uint64_t abandoned_ops() const noexcept {
    return abandoned_ops_;
  }

  [[nodiscard]] double occupancy_bytes() const noexcept { return occupancy_; }
  [[nodiscard]] double peak_occupancy_bytes() const noexcept { return peak_; }
  /// Integral of occupancy over time (byte-seconds) — the storage-billing
  /// quantity.
  [[nodiscard]] double occupancy_byte_seconds() const;
  [[nodiscard]] std::size_t object_count() const noexcept { return objects_.size(); }
  [[nodiscard]] const cbs::stats::TimeSeries& occupancy_history() const noexcept {
    return history_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  /// One tag-based async op awaiting its next retry — pure value state
  /// plus the pending event id, so forks can re-schedule it.
  struct PendingOp {
    bool is_put = false;
    std::string key;
    double bytes = 0.0;  ///< puts only
    int slot = -1;
    std::uint64_t tag = 0;
    int attempt = 0;
    cbs::sim::EventId retry{};
  };

  cbs::sim::Simulation& sim_;
  void integrate();
  [[nodiscard]] cbs::sim::SimDuration backoff_delay(int attempt) const;
  void attempt_put(const std::string& key, double bytes, PutHandler done,
                   int attempt);
  void attempt_get(const std::string& key, GetHandler done, int attempt);
  void step_op(PendingOp op);
  void retry_op(std::uint64_t op_id);

  Config config_;
  bool available_ = true;
  std::uint64_t failed_attempts_ = 0;
  std::uint64_t abandoned_ops_ = 0;
  std::unordered_map<std::string, double> objects_;
  double occupancy_ = 0.0;
  double peak_ = 0.0;
  double byte_seconds_ = 0.0;
  cbs::sim::SimTime last_change_ = 0.0;
  cbs::stats::TimeSeries history_;
  // Owners re-register continuations in the same slot order post-fork.
  // cbs-lint: snapshot-complete-ok(re-registered post-fork in slot order)
  std::vector<Continuation> continuations_;
  cbs::util::FlatMap<std::uint64_t, PendingOp> pending_ops_;
  std::uint64_t next_op_id_ = 1;
  std::uint64_t closure_retries_pending_ = 0;  ///< blocks forking when > 0
};

}  // namespace cbs::compute
