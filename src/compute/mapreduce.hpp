#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "compute/cluster.hpp"
#include "simcore/simulation.hpp"
#include "util/flat_map.hpp"

namespace cbs::compute {

/// Work description of one embarrassingly parallel document job, expressed
/// the way the paper's prototype runs them on Hadoop / Elastic MapReduce:
/// `num_map_tasks` independent map tasks followed by a single merge task.
struct MapReduceSpec {
  std::uint64_t job_id = 0;
  /// Total map-phase compute on a speed-1 machine, split evenly over tasks.
  double total_map_seconds = 0.0;
  int num_map_tasks = 1;
  /// Result-merge (and, on the EC, output-compression) cost.
  double merge_seconds = 0.0;
};

/// Completion record for a MapReduce job run.
struct MapReduceRecord {
  std::uint64_t job_id = 0;
  cbs::sim::SimTime submitted = 0.0;
  cbs::sim::SimTime maps_done = 0.0;
  cbs::sim::SimTime completed = 0.0;  ///< merge finished
  int num_map_tasks = 0;
};

/// Runs MapReduce-shaped jobs on a Cluster: fans the map tasks into the
/// cluster's FCFS queue (so job order is preserved at task granularity,
/// while later jobs can fill machines an earlier narrow job leaves idle),
/// then submits the merge task once every map has finished.
class MapReduceRuntime {
 public:
  using Callback = std::function<void(const MapReduceRecord&)>;

  /// Cluster task kinds used by the runtime's kind-tagged submissions.
  static constexpr std::uint32_t kMapTask = 1;
  static constexpr std::uint32_t kMergeTask = 2;

  MapReduceRuntime(cbs::sim::Simulation& sim, Cluster& cluster);
  MapReduceRuntime(const MapReduceRuntime&) = delete;
  MapReduceRuntime& operator=(const MapReduceRuntime&) = delete;

  /// Fork support: copies `src`'s in-flight bookkeeping into a runtime
  /// bound to `dst` and `cluster` (the forked cluster) and re-registers
  /// the cluster's task-complete hook. The runtime schedules no events of
  /// its own — its pending state is all cluster tasks, which the cluster's
  /// own rebuild_events() restores. Precondition: every in-flight job was
  /// submitted through the hook form run(spec).
  MapReduceRuntime(cbs::sim::Simulation& dst, const MapReduceRuntime& src,
                   Cluster& cluster);

  /// Submits a job; `on_complete` fires when its merge task finishes.
  /// Closure form — jobs submitted this way cannot cross a fork.
  void run(const MapReduceSpec& spec, Callback on_complete);

  /// Submits a job whose completion is dispatched to the set-once
  /// set_on_complete() hook — the forkable form.
  void run(const MapReduceSpec& spec);

  /// Registers the completion hook for jobs submitted via run(spec).
  void set_on_complete(Callback hook) { on_complete_ = std::move(hook); }

  [[nodiscard]] Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] std::size_t jobs_in_flight() const noexcept { return in_flight_.size(); }
  [[nodiscard]] const std::vector<MapReduceRecord>& completed() const noexcept {
    return completed_;
  }

 private:
  struct InFlight {
    MapReduceSpec spec;
    cbs::sim::SimTime submitted = 0.0;
    cbs::sim::SimTime maps_done = 0.0;  ///< set when the last map finishes
    int maps_remaining = 0;
    bool hook_form = false;  ///< submitted via run(spec); forkable
    Callback on_complete;    ///< closure form only
  };

  void on_cluster_task(const TaskRecord& rec);
  void on_map_done(std::uint64_t job_id);
  void start_merge(std::uint64_t job_id);
  void finish_merge(std::uint64_t job_id, const TaskRecord& merge);

  cbs::sim::Simulation& sim_;
  Cluster& cluster_;
  // cbs-lint: snapshot-complete-ok(owner re-wires set_on_complete post-fork)
  Callback on_complete_;  ///< hook-form completion dispatch
  // Sorted-vector map: job ids are monotonic, so inserts append; keeps the
  // compute layer free of hash-ordered containers like simcore/core.
  cbs::util::FlatMap<std::uint64_t, InFlight> in_flight_;
  std::vector<MapReduceRecord> completed_;
};

}  // namespace cbs::compute
