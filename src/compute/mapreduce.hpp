#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "compute/cluster.hpp"
#include "simcore/simulation.hpp"
#include "util/flat_map.hpp"

namespace cbs::compute {

/// Work description of one embarrassingly parallel document job, expressed
/// the way the paper's prototype runs them on Hadoop / Elastic MapReduce:
/// `num_map_tasks` independent map tasks followed by a single merge task.
struct MapReduceSpec {
  std::uint64_t job_id = 0;
  /// Total map-phase compute on a speed-1 machine, split evenly over tasks.
  double total_map_seconds = 0.0;
  int num_map_tasks = 1;
  /// Result-merge (and, on the EC, output-compression) cost.
  double merge_seconds = 0.0;
};

/// Completion record for a MapReduce job run.
struct MapReduceRecord {
  std::uint64_t job_id = 0;
  cbs::sim::SimTime submitted = 0.0;
  cbs::sim::SimTime maps_done = 0.0;
  cbs::sim::SimTime completed = 0.0;  ///< merge finished
  int num_map_tasks = 0;
};

/// Runs MapReduce-shaped jobs on a Cluster: fans the map tasks into the
/// cluster's FCFS queue (so job order is preserved at task granularity,
/// while later jobs can fill machines an earlier narrow job leaves idle),
/// then submits the merge task once every map has finished.
class MapReduceRuntime {
 public:
  using Callback = std::function<void(const MapReduceRecord&)>;

  MapReduceRuntime(cbs::sim::Simulation& sim, Cluster& cluster);
  MapReduceRuntime(const MapReduceRuntime&) = delete;
  MapReduceRuntime& operator=(const MapReduceRuntime&) = delete;

  /// Submits a job; `on_complete` fires when its merge task finishes.
  void run(const MapReduceSpec& spec, Callback on_complete);

  [[nodiscard]] Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] std::size_t jobs_in_flight() const noexcept { return in_flight_.size(); }
  [[nodiscard]] const std::vector<MapReduceRecord>& completed() const noexcept {
    return completed_;
  }

 private:
  struct InFlight {
    MapReduceSpec spec;
    cbs::sim::SimTime submitted = 0.0;
    int maps_remaining = 0;
    Callback on_complete;
  };

  void on_map_done(std::uint64_t job_id);
  void start_merge(std::uint64_t job_id);

  cbs::sim::Simulation& sim_;
  Cluster& cluster_;
  // Sorted-vector map: job ids are monotonic, so inserts append; keeps the
  // compute layer free of hash-ordered containers like simcore/core.
  cbs::util::FlatMap<std::uint64_t, InFlight> in_flight_;
  std::vector<MapReduceRecord> completed_;
};

}  // namespace cbs::compute
