#pragma once

#include <cassert>
#include <cstddef>

namespace cbs::net {

/// Exponentially weighted moving average, exactly the paper's update rule:
///
///   S_n = alpha * Y_n + (1 - alpha) * S_{n-1}
///
/// The first observation initializes S directly (no bias toward zero).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    assert(alpha > 0.0 && alpha <= 1.0);
  }

  void observe(double y) noexcept {
    if (count_ == 0) {
      value_ = y;
    } else {
      value_ = alpha_ * y + (1.0 - alpha_) * value_;
    }
    ++count_;
  }

  [[nodiscard]] bool has_value() const noexcept { return count_ > 0; }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace cbs::net
