#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/bandwidth_profile.hpp"
#include "net/noise.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "stats/timeseries.hpp"
#include "util/flat_map.hpp"

namespace cbs::sim {
class SnapshotContext;
}

namespace cbs::net {

/// Configuration of one link direction (upload or download). All rates are
/// bytes/second.
struct LinkConfig {
  std::string name = "link";
  /// Capacity at diurnal multiplier 1 and noise multiplier 1.
  double base_rate = 250.0e3;
  DiurnalProfile profile = DiurnalProfile::flat();
  /// AR(1) capacity noise (see Ar1LogNoise). sigma = 0 disables noise.
  double noise_rho = 0.9;
  double noise_sigma = 0.0;
  cbs::sim::SimDuration noise_step = 30.0;
  /// Per-connection (thread) throughput cap — why parallel threads are
  /// needed to saturate the pipe (paper Fig. 4b).
  double per_connection_cap = 64.0e3;
  /// Fixed connection-establishment delay before a transfer starts moving.
  cbs::sim::SimDuration setup_latency = 0.5;
  std::vector<ThrottleEpisode> throttles;
  /// Capacity never drops below this fraction of base_rate, so transfers
  /// always make progress and every run terminates.
  double min_capacity_fraction = 0.02;
  /// Failure injection for the best-effort Internet path: probability that
  /// a transfer suffers a connection drop at a uniformly random progress
  /// point and restarts from scratch (after a fresh setup latency). At most
  /// `max_retries` drops are injected per transfer, so completion is
  /// guaranteed. 0 disables.
  double failure_probability = 0.0;
  int max_retries = 3;
  /// Outage reconnect policy (set_outage): an aborted transfer reconnects
  /// `setup_latency + min(max, base * multiplier^(aborts-1))` after the
  /// outage lifts — exponential backoff per repeated abort of the same
  /// transfer, fully deterministic.
  cbs::sim::SimDuration outage_backoff_base = 1.0;
  double outage_backoff_multiplier = 2.0;
  cbs::sim::SimDuration outage_max_backoff = 60.0;
};

using TransferId = std::uint64_t;

/// Everything known about a finished transfer.
struct TransferRecord {
  TransferId id = 0;
  double bytes = 0.0;
  int threads = 1;
  int retries = 0;  ///< injected connection drops survived
  cbs::sim::SimTime requested = 0.0;  ///< submit() time
  cbs::sim::SimTime started = 0.0;    ///< after setup latency
  cbs::sim::SimTime completed = 0.0;

  /// Throughput over the data-moving phase only.
  [[nodiscard]] double transfer_rate() const {
    const double dt = completed - started;
    return dt > 0.0 ? bytes / dt : 0.0;
  }
  /// Effective rate including setup latency — what a probe measures.
  [[nodiscard]] double effective_rate() const {
    const double dt = completed - requested;
    return dt > 0.0 ? bytes / dt : 0.0;
  }
};

/// One direction of the inter-cloud pipe, modeled as a fluid-flow shared
/// channel:
///
///  * instantaneous capacity c(t) = base · diurnal(t) · throttle(t) · noise(t),
///    piecewise-constant between allocation events;
///  * each active transfer demands `threads × per_connection_cap`;
///  * capacity is divided by progressive (water-filling) max-min fairness,
///    so a transfer never receives more than its thread demand — this is
///    exactly why single-threaded transfers cannot saturate the pipe;
///  * on every transfer start/finish and on a periodic tick (noise grid),
///    rates are recomputed and the completion timer rescheduled.
///
/// ## Data-oriented core (DESIGN.md §14)
///
/// The allocation state is split hot/cold. Activated transfers live in a
/// SoA pool (`HotPool`) kept sorted by (demand, id) — the exact order the
/// water-filling pass consumes — so a reallocation streams contiguous
/// arrays with no per-pass sort and no pointer chasing. Cold bookkeeping
/// (handlers, retry counters, timestamps) sits in a `FlatMap` keyed by the
/// monotonically increasing `TransferId`, which doubles as the generation
/// check: ids are never reused, so a stale id can never alias a later
/// transfer. Membership changes only mark the link dirty; `flush()` runs a
/// single water-filling pass per event timestamp and re-arms ONE per-link
/// completion timer at the minimum ETA — O(1) event-queue traffic per
/// allocation instead of N cancels + N schedules.
///
/// The model conserves bytes exactly (see LinkTest.ConservesBytes) and is
/// fully deterministic given the seed.
class Link {
 public:
  using CompletionHandler = std::function<void(const TransferRecord&)>;
  /// A registered completion handler: receives the caller's tag back.
  using TaggedHandler =
      std::function<void(std::uint64_t tag, const TransferRecord&)>;

  Link(cbs::sim::Simulation& sim, LinkConfig config, cbs::sim::RngStream rng);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Fork support: copies `src`'s value state (noise/failure RNG positions,
  /// active transfers, accounting) into a link bound to `dst`. Handlers are
  /// NOT copied — each owner must call register_handler() on the clone in
  /// the same order as on the source (slot indices must line up), then
  /// rebuild_events() re-schedules the pending activation/timer/tick
  /// events. Precondition: every in-flight transfer uses a registered
  /// handler slot (closure-based submissions cannot cross a fork).
  Link(cbs::sim::Simulation& dst, const Link& src);

  /// Registers a completion handler and returns its slot for submit().
  /// Handler slots make the link forkable: the per-transfer state is then
  /// a plain {slot, tag} pair instead of a closure capturing the owner.
  int register_handler(TaggedHandler handler);

  /// Re-schedules pending events after a fork (see the clone constructor).
  void rebuild_events(cbs::sim::SnapshotContext& ctx);

  /// Pre-sizes the transfer tables for `expected` concurrent transfers.
  /// Purely a performance hint; growth past it still works.
  void reserve_transfers(std::size_t expected);

  /// Starts a transfer of `bytes` using `threads` parallel connections;
  /// `on_complete` fires (as a simulation event) when the last byte lands.
  /// Transfers submitted this way pin the link: it cannot be forked while
  /// they are in flight (tests use this form; production code registers
  /// handler slots).
  TransferId submit(double bytes, int threads, CompletionHandler on_complete);

  /// Starts a transfer whose completion is dispatched to the registered
  /// handler `handler_slot` with `tag` — the forkable submission form.
  TransferId submit(double bytes, int threads, int handler_slot,
                    std::uint64_t tag);

  /// Aborts an in-flight transfer: progress so far is wasted, no completion
  /// fires. Returns false for an unknown/finished id. The controller's
  /// burst-retraction policy uses this to reclaim a stalled upload.
  bool cancel(TransferId id);

  /// Whole-link outage switch (an EC unreachable window). Entering an
  /// outage aborts every established connection — each active transfer
  /// loses its progress and waits; when the outage lifts, transfers
  /// reconnect after setup latency plus exponential backoff (see
  /// LinkConfig::outage_backoff_*). Transfers submitted during an outage
  /// wait for it to lift. Idempotent per direction.
  void set_outage(bool down);
  [[nodiscard]] bool in_outage() const noexcept { return outage_; }

  /// Ground-truth capacity at the current sim time. Advances the noise
  /// process, so this is the *actual* instantaneous capacity (schedulers
  /// must not call this — they see only BandwidthEstimator).
  [[nodiscard]] double true_capacity_now();

  [[nodiscard]] std::size_t active_transfers() const noexcept { return cold_.size(); }
  [[nodiscard]] double total_bytes_delivered() const noexcept { return bytes_delivered_; }
  [[nodiscard]] const std::vector<TransferRecord>& completed() const noexcept {
    return completed_;
  }
  /// Total time during which at least one transfer was active.
  [[nodiscard]] double busy_time() const;
  /// Capacity samples recorded at allocation events (for Fig. 4a). Bounded:
  /// once kCapacityHistoryMax samples accumulate the series is decimated
  /// 2:1 and the minimum recording interval doubles, so arbitrarily long
  /// runs keep O(1) memory here.
  [[nodiscard]] const cbs::stats::TimeSeries& capacity_history() const noexcept {
    return capacity_history_;
  }
  /// Connection drops injected so far (failure_probability > 0).
  [[nodiscard]] std::uint64_t injected_failures() const noexcept {
    return injected_failures_;
  }
  /// Transfers whose connection was severed by an outage window.
  [[nodiscard]] std::uint64_t outage_aborts() const noexcept {
    return outage_aborts_;
  }
  /// Payload bytes moved and then lost — to connection drops, outage
  /// aborts and cancelled transfers. Useful bytes are in
  /// total_bytes_delivered(); wasted + delivered is what the pipe carried.
  [[nodiscard]] double wasted_bytes() const noexcept { return wasted_bytes_; }
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }

  // --- Allocation introspection (tests / diagnostics) -------------------

  /// One activated transfer's share of the pipe.
  struct RateSample {
    TransferId id = 0;
    int threads = 1;
    double rate = 0.0;
  };
  /// Current rate of every *activated* transfer, ascending id order.
  [[nodiscard]] std::vector<RateSample> current_rates() const;
  /// Capacity the most recent water-filling pass distributed.
  [[nodiscard]] double last_allocation_capacity() const noexcept {
    return last_pass_capacity_;
  }

 private:
  /// Cold per-transfer bookkeeping: everything the water-filling pass does
  /// NOT touch. Keyed by id in `cold_` (ascending-id iteration keeps every
  /// side-effect order identical to the historical std::map design).
  struct Cold {
    double bytes_total = 0.0;
    int threads = 1;
    bool activated = false;  ///< setup latency elapsed; data is flowing
    bool waiting_outage = false;  ///< aborted; reconnects when outage lifts
    int retries = 0;
    int outage_aborts = 0;  ///< outage severances (drives reconnect backoff)
    /// When > 0: the transfer drops its connection once bytes_remaining
    /// falls below this threshold, and restarts from scratch. Staged here
    /// by arm_failure(); the live copy rides in the hot pool.
    double fail_below_remaining = 0.0;
    cbs::sim::SimTime requested = 0.0;
    cbs::sim::SimTime started = 0.0;
    cbs::sim::EventId activation_event{};
    CompletionHandler on_complete;   ///< closure form (non-forkable)
    int handler_slot = -1;           ///< registered form; -1 = closure form
    std::uint64_t tag = 0;
  };

  /// SoA pool of activated transfers, sorted by (demand, id) — insertion
  /// keeps the order, so no pass ever sorts. All fields of index i belong
  /// to transfer id[i].
  struct HotPool {
    std::vector<TransferId> id;
    std::vector<double> demand;  ///< threads × per_connection_cap
    std::vector<double> rate;
    std::vector<double> bytes_remaining;
    std::vector<cbs::sim::SimTime> last_progress;
    std::vector<double> fail_below;  ///< 0 = no armed connection drop
    /// Absolute ETA from the last pass; kTimeInfinity when rate == 0.
    std::vector<cbs::sim::SimTime> completion_time;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    [[nodiscard]] std::size_t size() const noexcept { return id.size(); }
    [[nodiscard]] bool empty() const noexcept { return id.empty(); }
    [[nodiscard]] std::size_t lower_bound(double d, TransferId t) const noexcept;
    [[nodiscard]] std::size_t find(double d, TransferId t) const noexcept;
    void insert(std::size_t pos, TransferId t, double d, double remaining,
                double fail_below_remaining, cbs::sim::SimTime now);
    void erase(std::size_t pos);
    void clear() noexcept;
    void reserve(std::size_t n);
  };

  TransferId submit_impl(double bytes, int threads, Cold c);

  [[nodiscard]] double demand_of(const Cold& c) const noexcept {
    return c.threads * config_.per_connection_cap;
  }

  void activate(TransferId id);
  void schedule_activation(TransferId id, cbs::sim::SimDuration delay);
  void arm_failure(Cold& transfer);
  void progress_all();
  /// Runs the water-filling pass if membership changed or time advanced
  /// since the last pass, then re-arms the completion timer. Call at every
  /// point the AoS design called reallocate(); the unconditional re-arm is
  /// what keeps the timer's event-seq position identical to the historical
  /// rescheduled completion events.
  void flush();
  void run_pass();
  void record_capacity(cbs::sim::SimTime now, double capacity);
  void on_timer();
  void ensure_tick();
  void on_tick();
  void note_busy_transition();

  cbs::sim::Simulation& sim_;
  LinkConfig config_;
  Ar1LogNoise noise_;
  cbs::sim::RngStream failure_rng_;
  // Owners re-register their handlers in original construction order so
  // slot indices line up (snapshot.hpp protocol).
  // cbs-lint: snapshot-complete-ok(re-registered post-fork in slot order)
  std::vector<TaggedHandler> handlers_;
  std::uint64_t injected_failures_ = 0;
  std::uint64_t outage_aborts_ = 0;
  double wasted_bytes_ = 0.0;
  bool outage_ = false;
  HotPool hot_;
  cbs::util::FlatMap<TransferId, Cold> cold_;
  std::vector<TransferRecord> completed_;
  TransferId next_id_ = 1;
  double bytes_delivered_ = 0.0;
  // Batched-reallocation state: membership changes set dirty_; flush()
  // skips the arithmetic when neither membership nor the clock moved
  // (capacity and demands are pure functions of both).
  bool dirty_ = true;
  cbs::sim::SimTime last_pass_time_ = -1.0;
  double last_pass_capacity_ = 0.0;
  /// Minimum completion_time over the hot pool (kTimeInfinity when none).
  cbs::sim::SimTime next_completion_ = cbs::sim::kTimeInfinity;
  /// The single per-link completion timer (replaces per-transfer events).
  bool timer_armed_ = false;
  cbs::sim::EventId timer_event_{};
  bool tick_scheduled_ = false;
  cbs::sim::EventId tick_event_{};
  static constexpr std::size_t kCapacityHistoryMax = 4096;
  cbs::stats::TimeSeries capacity_history_;
  cbs::sim::SimDuration capacity_min_interval_ = 0.0;
  // Busy-time accounting.
  double busy_accum_ = 0.0;
  cbs::sim::SimTime busy_since_ = 0.0;
  bool busy_ = false;
};

}  // namespace cbs::net
