#include "net/bandwidth_profile.hpp"

#include <cassert>
#include <cmath>

namespace cbs::net {

using cbs::sim::kDay;
using cbs::sim::SimTime;

DiurnalProfile::DiurnalProfile(std::vector<double> anchors)
    : anchors_(std::move(anchors)) {
  assert(!anchors_.empty());
  for ([[maybe_unused]] double a : anchors_) assert(a > 0.0);
}

DiurnalProfile DiurnalProfile::business_pipe() {
  // Hourly multipliers starting at midnight: night is fast, 9-17h is slow.
  return DiurnalProfile({
      1.40, 1.45, 1.50, 1.50, 1.45, 1.35,  // 00-05
      1.20, 1.05, 0.90, 0.75, 0.70, 0.65,  // 06-11
      0.60, 0.62, 0.65, 0.70, 0.75, 0.85,  // 12-17
      1.00, 1.10, 1.20, 1.25, 1.30, 1.35,  // 18-23
  });
}

DiurnalProfile DiurnalProfile::flat() { return DiurnalProfile({1.0}); }

double DiurnalProfile::multiplier_at(SimTime t) const {
  const std::size_t n = anchors_.size();
  if (n == 1) return anchors_[0];
  double day_frac = std::fmod(t, kDay) / kDay;
  if (day_frac < 0.0) day_frac += 1.0;
  const double pos = day_frac * static_cast<double>(n);
  const auto idx = static_cast<std::size_t>(pos) % n;
  const std::size_t next = (idx + 1) % n;
  const double frac = pos - std::floor(pos);
  return anchors_[idx] * (1.0 - frac) + anchors_[next] * frac;
}

double throttle_factor(const std::vector<ThrottleEpisode>& episodes, SimTime t) {
  double f = 1.0;
  for (const auto& e : episodes) {
    assert(e.factor > 0.0 && e.factor <= 1.0);
    if (t >= e.start && t < e.end) f *= e.factor;
  }
  return f;
}

}  // namespace cbs::net
