#pragma once

#include <cstddef>
#include <vector>

#include "net/ewma.hpp"
#include "simcore/time.hpp"

namespace cbs::net {

/// The autonomic network-estimation model of §III.A.2: the day is divided
/// into slots; each slot keeps an EWMA of the effective rates observed there
/// (periodic 1 MB probes plus every real transfer). Queries for a slot with
/// no data yet fall back to the global EWMA, then to the configured prior.
///
/// This object is the *only* view of the network that schedulers get — the
/// gap between these estimates and Link's ground truth is what the paper's
/// robustness results are about.
class BandwidthEstimator {
 public:
  struct Config {
    std::size_t slots_per_day = 48;  ///< 30-minute slots
    double alpha = 0.3;              ///< EWMA weight of the newest sample
    double prior_rate = 250.0e3;     ///< bytes/s before any observation
  };

  explicit BandwidthEstimator(Config config);

  /// Records an observed effective rate (bytes/s) at time `t`.
  void observe(cbs::sim::SimTime t, double rate);

  /// The most recent raw observation Y_n, un-smoothed — the "transient
  /// value of bandwidth" §IV.D says the Greedy scheduler reacts to. Falls
  /// back to the prior before any observation.
  [[nodiscard]] double last_observed() const noexcept {
    return last_observed_ > 0.0 ? last_observed_ : config_.prior_rate;
  }

  /// Estimated rate at time `t` (slot EWMA → global EWMA → prior).
  [[nodiscard]] double estimate(cbs::sim::SimTime t) const;

  /// Estimated seconds to move `bytes` starting at time `t`, integrating the
  /// per-slot estimates across slot boundaries (a transfer that straddles
  /// the fast night slots and the slow morning slots gets a blended value).
  [[nodiscard]] double estimate_transfer_seconds(cbs::sim::SimTime t,
                                                 double bytes) const;

  [[nodiscard]] std::size_t slot_of(cbs::sim::SimTime t) const;
  [[nodiscard]] std::size_t slots_per_day() const noexcept { return config_.slots_per_day; }
  [[nodiscard]] std::size_t observation_count() const noexcept { return observations_; }
  /// Per-slot estimate (for the Fig. 4a bench); falls back like estimate().
  [[nodiscard]] double slot_estimate(std::size_t slot) const;

 private:
  Config config_;
  std::vector<Ewma> slot_ewmas_;
  Ewma global_ewma_;
  std::size_t observations_ = 0;
  double last_observed_ = 0.0;
};

}  // namespace cbs::net
