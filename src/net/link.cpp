#include "net/link.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "simcore/snapshot.hpp"

namespace cbs::net {

using cbs::sim::SimTime;

Link::Link(cbs::sim::Simulation& sim, LinkConfig config, cbs::sim::RngStream rng)
    : sim_(sim),
      config_(std::move(config)),
      noise_(config_.noise_rho, config_.noise_sigma, config_.noise_step,
             rng.substream("noise")),
      failure_rng_(rng.substream("failures")) {
  assert(config_.base_rate > 0.0);
  assert(config_.per_connection_cap > 0.0);
  assert(config_.min_capacity_fraction > 0.0 && config_.min_capacity_fraction <= 1.0);
  assert(config_.failure_probability >= 0.0 && config_.failure_probability < 1.0);
  assert(config_.max_retries >= 0);
}

double Link::true_capacity_now() {
  const SimTime t = sim_.now();
  const double raw = config_.base_rate * config_.profile.multiplier_at(t) *
                     throttle_factor(config_.throttles, t) *
                     noise_.multiplier_at(t);
  return std::max(raw, config_.base_rate * config_.min_capacity_fraction);
}

Link::Link(cbs::sim::Simulation& dst, const Link& src)
    : sim_(dst),
      config_(src.config_),
      noise_(src.noise_),
      failure_rng_(src.failure_rng_),
      injected_failures_(src.injected_failures_),
      outage_aborts_(src.outage_aborts_),
      wasted_bytes_(src.wasted_bytes_),
      outage_(src.outage_),
      active_(src.active_),
      completed_(src.completed_),
      next_id_(src.next_id_),
      bytes_delivered_(src.bytes_delivered_),
      tick_scheduled_(src.tick_scheduled_),
      tick_event_(src.tick_event_),
      capacity_history_(src.capacity_history_),
      busy_accum_(src.busy_accum_),
      busy_since_(src.busy_since_),
      busy_(src.busy_) {
#ifndef NDEBUG
  for (const auto& [id, a] : active_) {
    assert(a.handler_slot >= 0 &&
           "closure-based transfers cannot cross a fork");
  }
#endif
}

int Link::register_handler(TaggedHandler handler) {
  assert(handler);
  handlers_.push_back(std::move(handler));
  return static_cast<int>(handlers_.size()) - 1;
}

void Link::rebuild_events(cbs::sim::SnapshotContext& ctx) {
  for (auto& [id, a] : active_) {
    const TransferId tid = id;
    a.activation_event =
        ctx.restore(a.activation_event, [this, tid] { activate(tid); });
    a.completion_event =
        ctx.restore(a.completion_event, [this, tid] { complete(tid); });
  }
  tick_event_ = ctx.restore(tick_event_, [this] { on_tick(); });
  assert(!tick_scheduled_ || tick_event_ != cbs::sim::EventId{});
}

TransferId Link::submit(double bytes, int threads, CompletionHandler on_complete) {
  Active a;
  a.on_complete = std::move(on_complete);
  return submit_impl(bytes, threads, std::move(a));
}

TransferId Link::submit(double bytes, int threads, int handler_slot,
                        std::uint64_t tag) {
  assert(handler_slot >= 0 &&
         handler_slot < static_cast<int>(handlers_.size()));
  Active a;
  a.handler_slot = handler_slot;
  a.tag = tag;
  return submit_impl(bytes, threads, std::move(a));
}

TransferId Link::submit_impl(double bytes, int threads, Active a) {
  assert(bytes > 0.0);
  assert(threads >= 1);
  const TransferId id = next_id_++;
  a.bytes_total = bytes;
  a.bytes_remaining = bytes;
  a.threads = threads;
  a.requested = sim_.now();
  active_.emplace(id, std::move(a));
  schedule_activation(id, config_.setup_latency);
  return id;
}

void Link::schedule_activation(TransferId id, cbs::sim::SimDuration delay) {
  active_.at(id).activation_event =
      sim_.schedule_in(delay, [this, id] { activate(id); });
}

void Link::arm_failure(Active& transfer) {
  transfer.fail_below_remaining = 0.0;
  if (config_.failure_probability <= 0.0 ||
      transfer.retries >= config_.max_retries) {
    return;
  }
  if (failure_rng_.next_double() < config_.failure_probability) {
    // Drop at a uniformly random progress point strictly inside (0, total).
    transfer.fail_below_remaining =
        transfer.bytes_total * failure_rng_.uniform(0.02, 0.98);
  }
}

void Link::activate(TransferId id) {
  auto it = active_.find(id);
  assert(it != active_.end());
  if (outage_) {
    // The link is down: hold the connection attempt until the outage
    // lifts (set_outage(false) reactivates every waiting transfer).
    it->second.waiting_outage = true;
    return;
  }
  it->second.activated = true;
  if (it->second.started == 0.0) it->second.started = sim_.now();
  it->second.last_progress = sim_.now();
  arm_failure(it->second);
  note_busy_transition();
  progress_all();
  reallocate();
  ensure_tick();
}

void Link::progress_all() {
  const SimTime now = sim_.now();
  for (auto& [id, a] : active_) {
    if (!a.activated) continue;  // still in connection setup
    a.bytes_remaining =
        std::max(0.0, a.bytes_remaining - a.rate * (now - a.last_progress));
    a.last_progress = now;
    if (a.fail_below_remaining > 0.0 &&
        a.bytes_remaining <= a.fail_below_remaining &&
        a.bytes_remaining > 0.0) {
      // Connection drop: everything transferred so far is lost; the client
      // reconnects (fresh setup latency) and restarts from byte zero.
      ++injected_failures_;
      ++a.retries;
      wasted_bytes_ += a.bytes_total - a.bytes_remaining;
      a.bytes_remaining = a.bytes_total;
      a.fail_below_remaining = 0.0;
      a.activated = false;
      a.rate = 0.0;
      sim_.cancel(a.completion_event);
      schedule_activation(id, config_.setup_latency);
    }
  }
}

void Link::reallocate() {
  const double capacity = true_capacity_now();
  capacity_history_.add(sim_.now(), capacity);

  // Collect activated transfers (setup finished) in deterministic id order.
  std::vector<std::pair<TransferId, Active*>> live;
  live.reserve(active_.size());
  for (auto& [id, a] : active_) {
    if (a.activated) live.emplace_back(id, &a);
  }

  // Progressive water-filling by ascending demand: transfers whose thread
  // demand is below the fair share keep their demand; the slack is shared
  // among the rest.
  std::vector<std::size_t> order(live.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    const double dx = live[x].second->threads * config_.per_connection_cap;
    const double dy = live[y].second->threads * config_.per_connection_cap;
    if (dx != dy) return dx < dy;
    return live[x].first < live[y].first;  // deterministic tie-break
  });

  double remaining_capacity = capacity;
  std::size_t remaining_count = live.size();
  for (std::size_t idx : order) {
    Active& a = *live[idx].second;
    const double demand = a.threads * config_.per_connection_cap;
    const double fair_share = remaining_capacity / static_cast<double>(remaining_count);
    a.rate = std::min(demand, fair_share);
    remaining_capacity -= a.rate;
    --remaining_count;
  }

  // Reschedule completion events. A transfer armed with a connection-drop
  // threshold fires its event at the crossing instead (progress_all then
  // performs the reset and complete() backs off).
  for (auto& [id, a] : live) {
    sim_.cancel(a->completion_event);
    if (a->rate > 0.0) {
      double eta = a->bytes_remaining / a->rate;
      if (a->fail_below_remaining > 0.0 &&
          a->bytes_remaining > a->fail_below_remaining) {
        eta = std::min(
            eta, (a->bytes_remaining - a->fail_below_remaining) / a->rate +
                     1.0e-6);
      }
      const TransferId tid = id;
      a->completion_event = sim_.schedule_in(eta, [this, tid] { complete(tid); });
    }
  }
}

void Link::complete(TransferId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;  // stale event (should be cancelled, but be safe)
  progress_all();
  Active& a = it->second;
  if (!a.activated) {
    // progress_all() injected a connection drop for this very transfer; it
    // is re-establishing its connection, so only rebalance the survivors.
    reallocate();
    return;
  }
  // Floating-point progress integration can leave a few bytes of dust; the
  // completion event was scheduled from the same arithmetic, so anything
  // left here is rounding noise.
  assert(a.bytes_remaining < 1e-3 * std::max(1.0, a.bytes_total));
  TransferRecord rec;
  rec.id = id;
  rec.bytes = a.bytes_total;
  rec.threads = a.threads;
  rec.retries = a.retries;
  rec.requested = a.requested;
  rec.started = a.started;
  rec.completed = sim_.now();
  bytes_delivered_ += a.bytes_total;
  CompletionHandler handler = std::move(a.on_complete);
  const int handler_slot = a.handler_slot;
  const std::uint64_t tag = a.tag;
  active_.erase(it);
  completed_.push_back(rec);
  note_busy_transition();
  reallocate();
  if (active_.empty() && tick_scheduled_) {
    // No work left: drop the pending tick so the simulation can drain.
    sim_.cancel(tick_event_);
    tick_scheduled_ = false;
  }
  if (handler_slot >= 0) {
    handlers_[static_cast<std::size_t>(handler_slot)](tag, rec);
  } else if (handler) {
    handler(rec);
  }
}

bool Link::cancel(TransferId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return false;
  progress_all();
  Active& a = it->second;
  sim_.cancel(a.completion_event);
  sim_.cancel(a.activation_event);
  if (a.activated) wasted_bytes_ += a.bytes_total - a.bytes_remaining;
  active_.erase(it);
  note_busy_transition();
  reallocate();
  if (active_.empty() && tick_scheduled_) {
    sim_.cancel(tick_event_);
    tick_scheduled_ = false;
  }
  return true;
}

void Link::set_outage(bool down) {
  if (down == outage_) return;
  if (down) {
    // Sever every established connection: progress is lost, the transfer
    // parks until the outage lifts. Connection attempts still in setup
    // are parked by activate() when their event fires.
    progress_all();
    outage_ = true;
    for (auto& [id, a] : active_) {
      if (!a.activated) continue;
      sim_.cancel(a.completion_event);
      wasted_bytes_ += a.bytes_total - a.bytes_remaining;
      ++outage_aborts_;
      ++a.outage_aborts;
      a.bytes_remaining = a.bytes_total;
      a.fail_below_remaining = 0.0;
      a.activated = false;
      a.rate = 0.0;
      a.waiting_outage = true;
    }
    return;
  }
  outage_ = false;
  for (auto& [id, a] : active_) {
    if (!a.waiting_outage) continue;
    a.waiting_outage = false;
    double backoff = 0.0;
    if (a.outage_aborts > 0) {
      backoff = config_.outage_backoff_base;
      for (int i = 1; i < a.outage_aborts; ++i) {
        backoff *= config_.outage_backoff_multiplier;
      }
      backoff = std::min(backoff, config_.outage_max_backoff);
    }
    schedule_activation(id, config_.setup_latency + backoff);
  }
}

void Link::ensure_tick() {
  if (tick_scheduled_ || active_.empty()) return;
  tick_scheduled_ = true;
  tick_event_ = sim_.schedule_in(config_.noise_step, [this] { on_tick(); });
}

void Link::on_tick() {
  tick_scheduled_ = false;
  if (active_.empty()) return;
  progress_all();
  reallocate();
  ensure_tick();
}

void Link::note_busy_transition() {
  const bool now_busy = !active_.empty();
  if (now_busy && !busy_) {
    busy_since_ = sim_.now();
    busy_ = true;
  } else if (!now_busy && busy_) {
    busy_accum_ += sim_.now() - busy_since_;
    busy_ = false;
  }
}

double Link::busy_time() const {
  return busy_accum_ + (busy_ ? sim_.now() - busy_since_ : 0.0);
}

}  // namespace cbs::net
