#include "net/link.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "simcore/snapshot.hpp"

namespace cbs::net {

using cbs::sim::SimTime;

// --- HotPool: the SoA allocation arrays --------------------------------

std::size_t Link::HotPool::lower_bound(double d, TransferId t) const noexcept {
  std::size_t lo = 0;
  std::size_t hi = id.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (demand[mid] < d || (demand[mid] == d && id[mid] < t)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t Link::HotPool::find(double d, TransferId t) const noexcept {
  const std::size_t pos = lower_bound(d, t);
  return (pos < id.size() && id[pos] == t) ? pos : npos;
}

void Link::HotPool::insert(std::size_t pos, TransferId t, double d,
                           double remaining, double fail_below_remaining,
                           SimTime now) {
  id.insert(id.begin() + static_cast<std::ptrdiff_t>(pos), t);
  demand.insert(demand.begin() + static_cast<std::ptrdiff_t>(pos), d);
  rate.insert(rate.begin() + static_cast<std::ptrdiff_t>(pos), 0.0);
  bytes_remaining.insert(
      bytes_remaining.begin() + static_cast<std::ptrdiff_t>(pos), remaining);
  last_progress.insert(last_progress.begin() + static_cast<std::ptrdiff_t>(pos),
                       now);
  fail_below.insert(fail_below.begin() + static_cast<std::ptrdiff_t>(pos),
                    fail_below_remaining);
  completion_time.insert(
      completion_time.begin() + static_cast<std::ptrdiff_t>(pos),
      cbs::sim::kTimeInfinity);
}

void Link::HotPool::erase(std::size_t pos) {
  id.erase(id.begin() + static_cast<std::ptrdiff_t>(pos));
  demand.erase(demand.begin() + static_cast<std::ptrdiff_t>(pos));
  rate.erase(rate.begin() + static_cast<std::ptrdiff_t>(pos));
  bytes_remaining.erase(bytes_remaining.begin() +
                        static_cast<std::ptrdiff_t>(pos));
  last_progress.erase(last_progress.begin() + static_cast<std::ptrdiff_t>(pos));
  fail_below.erase(fail_below.begin() + static_cast<std::ptrdiff_t>(pos));
  completion_time.erase(completion_time.begin() +
                        static_cast<std::ptrdiff_t>(pos));
}

void Link::HotPool::clear() noexcept {
  id.clear();
  demand.clear();
  rate.clear();
  bytes_remaining.clear();
  last_progress.clear();
  fail_below.clear();
  completion_time.clear();
}

void Link::HotPool::reserve(std::size_t n) {
  id.reserve(n);
  demand.reserve(n);
  rate.reserve(n);
  bytes_remaining.reserve(n);
  last_progress.reserve(n);
  fail_below.reserve(n);
  completion_time.reserve(n);
}

// --- Link --------------------------------------------------------------

Link::Link(cbs::sim::Simulation& sim, LinkConfig config, cbs::sim::RngStream rng)
    : sim_(sim),
      config_(std::move(config)),
      noise_(config_.noise_rho, config_.noise_sigma, config_.noise_step,
             rng.substream("noise")),
      failure_rng_(rng.substream("failures")) {
  assert(config_.base_rate > 0.0);
  assert(config_.per_connection_cap > 0.0);
  assert(config_.min_capacity_fraction > 0.0 && config_.min_capacity_fraction <= 1.0);
  assert(config_.failure_probability >= 0.0 && config_.failure_probability < 1.0);
  assert(config_.max_retries >= 0);
}

double Link::true_capacity_now() {
  const SimTime t = sim_.now();
  const double raw = config_.base_rate * config_.profile.multiplier_at(t) *
                     throttle_factor(config_.throttles, t) *
                     noise_.multiplier_at(t);
  return std::max(raw, config_.base_rate * config_.min_capacity_fraction);
}

Link::Link(cbs::sim::Simulation& dst, const Link& src)
    : sim_(dst),
      config_(src.config_),
      noise_(src.noise_),
      failure_rng_(src.failure_rng_),
      injected_failures_(src.injected_failures_),
      outage_aborts_(src.outage_aborts_),
      wasted_bytes_(src.wasted_bytes_),
      outage_(src.outage_),
      hot_(src.hot_),
      cold_(src.cold_),
      completed_(src.completed_),
      next_id_(src.next_id_),
      bytes_delivered_(src.bytes_delivered_),
      dirty_(src.dirty_),
      last_pass_time_(src.last_pass_time_),
      last_pass_capacity_(src.last_pass_capacity_),
      next_completion_(src.next_completion_),
      timer_armed_(src.timer_armed_),
      timer_event_(src.timer_event_),
      tick_scheduled_(src.tick_scheduled_),
      tick_event_(src.tick_event_),
      capacity_history_(src.capacity_history_),
      capacity_min_interval_(src.capacity_min_interval_),
      busy_accum_(src.busy_accum_),
      busy_since_(src.busy_since_),
      busy_(src.busy_) {
#ifndef NDEBUG
  for (const auto& [id, c] : cold_) {
    assert(c.handler_slot >= 0 &&
           "closure-based transfers cannot cross a fork");
  }
#endif
}

int Link::register_handler(TaggedHandler handler) {
  assert(handler);
  handlers_.push_back(std::move(handler));
  return static_cast<int>(handlers_.size()) - 1;
}

void Link::rebuild_events(cbs::sim::SnapshotContext& ctx) {
  for (auto& [id, c] : cold_) {
    const TransferId tid = id;
    c.activation_event =
        ctx.restore(c.activation_event, [this, tid] { activate(tid); });
  }
  timer_event_ = ctx.restore(timer_event_, [this] { on_timer(); });
  tick_event_ = ctx.restore(tick_event_, [this] { on_tick(); });
  assert(!timer_armed_ || timer_event_ != cbs::sim::EventId{});
  assert(!tick_scheduled_ || tick_event_ != cbs::sim::EventId{});
}

void Link::reserve_transfers(std::size_t expected) {
  hot_.reserve(expected);
  cold_.reserve(expected);
}

TransferId Link::submit(double bytes, int threads, CompletionHandler on_complete) {
  Cold c;
  c.on_complete = std::move(on_complete);
  return submit_impl(bytes, threads, std::move(c));
}

TransferId Link::submit(double bytes, int threads, int handler_slot,
                        std::uint64_t tag) {
  assert(handler_slot >= 0 &&
         handler_slot < static_cast<int>(handlers_.size()));
  Cold c;
  c.handler_slot = handler_slot;
  c.tag = tag;
  return submit_impl(bytes, threads, std::move(c));
}

TransferId Link::submit_impl(double bytes, int threads, Cold c) {
  assert(bytes > 0.0);
  assert(threads >= 1);
  const TransferId id = next_id_++;
  c.bytes_total = bytes;
  c.threads = threads;
  c.requested = sim_.now();
  cold_.emplace(id, std::move(c));
  schedule_activation(id, config_.setup_latency);
  return id;
}

void Link::schedule_activation(TransferId id, cbs::sim::SimDuration delay) {
  cold_.at(id).activation_event =
      sim_.schedule_in(delay, [this, id] { activate(id); });
}

void Link::arm_failure(Cold& transfer) {
  transfer.fail_below_remaining = 0.0;
  if (config_.failure_probability <= 0.0 ||
      transfer.retries >= config_.max_retries) {
    return;
  }
  if (failure_rng_.next_double() < config_.failure_probability) {
    // Drop at a uniformly random progress point strictly inside (0, total).
    transfer.fail_below_remaining =
        transfer.bytes_total * failure_rng_.uniform(0.02, 0.98);
  }
}

void Link::activate(TransferId id) {
  auto it = cold_.find(id);
  assert(it != cold_.end());
  if (outage_) {
    // The link is down: hold the connection attempt until the outage
    // lifts (set_outage(false) reactivates every waiting transfer).
    it->second.waiting_outage = true;
    return;
  }
  Cold& c = it->second;
  c.activated = true;
  if (c.started == 0.0) c.started = sim_.now();
  arm_failure(c);
  note_busy_transition();
  progress_all();
  // progress_all() mutates only the hot pool and the event queue, never
  // cold_'s structure, so `c` is still valid here.
  const double d = demand_of(c);
  hot_.insert(hot_.lower_bound(d, id), id, d, c.bytes_total,
              c.fail_below_remaining, sim_.now());
  dirty_ = true;
  flush();
  ensure_tick();
}

void Link::progress_all() {
  const SimTime now = sim_.now();
  const std::size_t n = hot_.size();
  // Every pool entry is activated by construction — transfers still in
  // connection setup never enter the hot arrays, so there is nothing to
  // skip. Integration is per-transfer arithmetic with no side effects, so
  // streaming in demand order is bit-identical to the old id-order walk.
  std::size_t crossings = 0;
  for (std::size_t i = 0; i < n; ++i) {
    hot_.bytes_remaining[i] = std::max(
        0.0, hot_.bytes_remaining[i] -
                 hot_.rate[i] * (now - hot_.last_progress[i]));
    hot_.last_progress[i] = now;
    if (hot_.fail_below[i] > 0.0 &&
        hot_.bytes_remaining[i] <= hot_.fail_below[i] &&
        hot_.bytes_remaining[i] > 0.0) {
      ++crossings;
    }
  }
  if (crossings == 0) return;

  // Connection drops: everything transferred so far is lost; the client
  // reconnects (fresh setup latency) and restarts from byte zero. The
  // resets run in ascending *id* order — the order the AoS walk produced —
  // because the wasted-bytes accumulation and the reconnect-event sequence
  // are observable (FP sum order, event FIFO ties).
  std::vector<TransferId> crossed;
  crossed.reserve(crossings);
  for (std::size_t i = 0; i < n; ++i) {
    if (hot_.fail_below[i] > 0.0 &&
        hot_.bytes_remaining[i] <= hot_.fail_below[i] &&
        hot_.bytes_remaining[i] > 0.0) {
      crossed.push_back(hot_.id[i]);
    }
  }
  std::sort(crossed.begin(), crossed.end());
  for (const TransferId id : crossed) {
    Cold& c = cold_.at(id);
    const std::size_t pos = hot_.find(demand_of(c), id);
    assert(pos != HotPool::npos);
    ++injected_failures_;
    ++c.retries;
    wasted_bytes_ += c.bytes_total - hot_.bytes_remaining[pos];
    c.fail_below_remaining = 0.0;
    c.activated = false;
    hot_.erase(pos);
    dirty_ = true;
    schedule_activation(id, config_.setup_latency);
  }
}

void Link::record_capacity(SimTime now, double capacity) {
  if (!capacity_history_.empty() && capacity_min_interval_ > 0.0 &&
      now - capacity_history_.back().time < capacity_min_interval_) {
    return;
  }
  capacity_history_.add(now, capacity);
  if (capacity_history_.size() >= kCapacityHistoryMax) {
    capacity_history_.decimate_half();
    const double span =
        capacity_history_.back().time - capacity_history_.at(0).time;
    capacity_min_interval_ = std::max(
        2.0 * capacity_min_interval_,
        span / static_cast<double>(kCapacityHistoryMax / 2));
  }
}

void Link::run_pass() {
  const double capacity = true_capacity_now();
  const SimTime now = sim_.now();
  record_capacity(now, capacity);
  last_pass_capacity_ = capacity;

  // Progressive water-filling by ascending demand: transfers whose thread
  // demand is below the fair share keep their demand; the slack is shared
  // among the rest. The hot arrays are already in (demand, id) order, so
  // this is one forward stream — no sort, no gather.
  const std::size_t n = hot_.size();
  double remaining_capacity = capacity;
  std::size_t remaining_count = n;
  SimTime next = cbs::sim::kTimeInfinity;
  for (std::size_t i = 0; i < n; ++i) {
    const double fair_share =
        remaining_capacity / static_cast<double>(remaining_count);
    const double rate = std::min(hot_.demand[i], fair_share);
    hot_.rate[i] = rate;
    remaining_capacity -= rate;
    --remaining_count;
    // Completion ETA. A transfer armed with a connection-drop threshold
    // fires the timer at the crossing instead (progress_all() then
    // performs the reset and on_timer() finds no completion due).
    SimTime done = cbs::sim::kTimeInfinity;
    if (rate > 0.0) {
      double eta = hot_.bytes_remaining[i] / rate;
      if (hot_.fail_below[i] > 0.0 &&
          hot_.bytes_remaining[i] > hot_.fail_below[i]) {
        eta = std::min(
            eta, (hot_.bytes_remaining[i] - hot_.fail_below[i]) / rate +
                     1.0e-6);
      }
      done = now + eta;
    }
    hot_.completion_time[i] = done;
    next = std::min(next, done);
  }
  next_completion_ = next;
  dirty_ = false;
  last_pass_time_ = now;
}

void Link::flush() {
  if (dirty_ || last_pass_time_ != sim_.now()) run_pass();
  // Unconditionally re-arm the completion timer, even when the pass was
  // skipped: the old design rescheduled every completion event here, so
  // the timer must take a fresh event seq to keep same-timestamp FIFO
  // ordering against events other components scheduled in between.
  if (timer_armed_) {
    sim_.cancel(timer_event_);
    timer_armed_ = false;
    timer_event_ = cbs::sim::EventId{};
  }
  if (next_completion_ != cbs::sim::kTimeInfinity) {
    timer_event_ = sim_.schedule_at(next_completion_, [this] { on_timer(); });
    timer_armed_ = true;
  }
}

void Link::on_timer() {
  timer_armed_ = false;
  timer_event_ = cbs::sim::EventId{};
  assert(!hot_.empty());
  if (hot_.empty()) return;
  progress_all();
  const SimTime now = sim_.now();
  // The due completion: smallest id whose ETA is bit-equal to now (the
  // timer was armed at exactly that stored value). Ties fire one per timer
  // round-trip, ascending id — the order the per-transfer events fired in,
  // since they were scheduled in id order by the last reallocation.
  std::size_t due = HotPool::npos;
  for (std::size_t i = 0; i < hot_.size(); ++i) {
    if (hot_.completion_time[i] == now &&
        (due == HotPool::npos || hot_.id[i] < hot_.id[due])) {
      due = i;
    }
  }
  if (due == HotPool::npos) {
    // progress_all() injected a connection drop for the transfer this
    // timer targeted; it is re-establishing its connection, so only
    // rebalance the survivors.
    flush();
    return;
  }
  const TransferId id = hot_.id[due];
  auto it = cold_.find(id);
  assert(it != cold_.end());
  Cold& c = it->second;
  // Floating-point progress integration can leave a few bytes of dust; the
  // timer was armed from the same arithmetic, so anything left here is
  // rounding noise.
  assert(hot_.bytes_remaining[due] < 1e-3 * std::max(1.0, c.bytes_total));
  TransferRecord rec;
  rec.id = id;
  rec.bytes = c.bytes_total;
  rec.threads = c.threads;
  rec.retries = c.retries;
  rec.requested = c.requested;
  rec.started = c.started;
  rec.completed = now;
  bytes_delivered_ += c.bytes_total;
  CompletionHandler handler = std::move(c.on_complete);
  const int handler_slot = c.handler_slot;
  const std::uint64_t tag = c.tag;
  hot_.erase(due);
  dirty_ = true;
  cold_.erase(it);
  completed_.push_back(rec);
  note_busy_transition();
  flush();
  if (cold_.empty() && tick_scheduled_) {
    // No work left: drop the pending tick so the simulation can drain.
    sim_.cancel(tick_event_);
    tick_scheduled_ = false;
  }
  if (handler_slot >= 0) {
    handlers_[static_cast<std::size_t>(handler_slot)](tag, rec);
  } else if (handler) {
    handler(rec);
  }
}

bool Link::cancel(TransferId id) {
  auto it = cold_.find(id);
  if (it == cold_.end()) return false;
  progress_all();
  Cold& c = it->second;
  sim_.cancel(c.activation_event);
  if (c.activated) {
    const std::size_t pos = hot_.find(demand_of(c), id);
    assert(pos != HotPool::npos);
    wasted_bytes_ += c.bytes_total - hot_.bytes_remaining[pos];
    hot_.erase(pos);
    dirty_ = true;
  }
  cold_.erase(it);
  note_busy_transition();
  flush();
  if (cold_.empty() && tick_scheduled_) {
    sim_.cancel(tick_event_);
    tick_scheduled_ = false;
  }
  return true;
}

void Link::set_outage(bool down) {
  if (down == outage_) return;
  if (down) {
    // Sever every established connection: progress is lost, the transfer
    // parks until the outage lifts. Connection attempts still in setup
    // are parked by activate() when their event fires.
    progress_all();
    outage_ = true;
    for (auto& [id, c] : cold_) {
      if (!c.activated) continue;
      const std::size_t pos = hot_.find(demand_of(c), id);
      assert(pos != HotPool::npos);
      wasted_bytes_ += c.bytes_total - hot_.bytes_remaining[pos];
      ++outage_aborts_;
      ++c.outage_aborts;
      c.fail_below_remaining = 0.0;
      c.activated = false;
      c.waiting_outage = true;
      hot_.erase(pos);
    }
    assert(hot_.empty());
    dirty_ = true;
    next_completion_ = cbs::sim::kTimeInfinity;
    // The old design cancelled every severed completion event; the single
    // timer is their stand-in. A stale timer would also keep the run from
    // draining.
    if (timer_armed_) {
      sim_.cancel(timer_event_);
      timer_armed_ = false;
      timer_event_ = cbs::sim::EventId{};
    }
    return;
  }
  outage_ = false;
  for (auto& [id, c] : cold_) {
    if (!c.waiting_outage) continue;
    c.waiting_outage = false;
    double backoff = 0.0;
    if (c.outage_aborts > 0) {
      backoff = config_.outage_backoff_base;
      for (int i = 1; i < c.outage_aborts; ++i) {
        backoff *= config_.outage_backoff_multiplier;
      }
      backoff = std::min(backoff, config_.outage_max_backoff);
    }
    schedule_activation(id, config_.setup_latency + backoff);
  }
}

void Link::ensure_tick() {
  if (tick_scheduled_ || cold_.empty()) return;
  tick_scheduled_ = true;
  tick_event_ = sim_.schedule_in(config_.noise_step, [this] { on_tick(); });
}

void Link::on_tick() {
  tick_scheduled_ = false;
  if (cold_.empty()) return;
  progress_all();
  flush();
  ensure_tick();
}

void Link::note_busy_transition() {
  const bool now_busy = !cold_.empty();
  if (now_busy && !busy_) {
    busy_since_ = sim_.now();
    busy_ = true;
  } else if (!now_busy && busy_) {
    busy_accum_ += sim_.now() - busy_since_;
    busy_ = false;
  }
}

double Link::busy_time() const {
  return busy_accum_ + (busy_ ? sim_.now() - busy_since_ : 0.0);
}

std::vector<Link::RateSample> Link::current_rates() const {
  std::vector<RateSample> out;
  out.reserve(hot_.size());
  for (const auto& [id, c] : cold_) {
    if (!c.activated) continue;
    const std::size_t pos = hot_.find(c.threads * config_.per_connection_cap, id);
    assert(pos != HotPool::npos);
    out.push_back(RateSample{id, c.threads, hot_.rate[pos]});
  }
  return out;
}

}  // namespace cbs::net
