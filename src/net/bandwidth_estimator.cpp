#include "net/bandwidth_estimator.hpp"

#include <cassert>
#include <cmath>

namespace cbs::net {

using cbs::sim::kDay;
using cbs::sim::SimTime;

BandwidthEstimator::BandwidthEstimator(Config config)
    : config_(config),
      slot_ewmas_(config.slots_per_day, Ewma(config.alpha)),
      global_ewma_(config.alpha) {
  assert(config.slots_per_day > 0);
  assert(config.prior_rate > 0.0);
}

std::size_t BandwidthEstimator::slot_of(SimTime t) const {
  double day_frac = std::fmod(t, kDay) / kDay;
  if (day_frac < 0.0) day_frac += 1.0;
  auto slot = static_cast<std::size_t>(day_frac *
                                       static_cast<double>(config_.slots_per_day));
  return slot % config_.slots_per_day;
}

void BandwidthEstimator::observe(SimTime t, double rate) {
  assert(rate >= 0.0);
  slot_ewmas_[slot_of(t)].observe(rate);
  global_ewma_.observe(rate);
  last_observed_ = rate;
  ++observations_;
}

double BandwidthEstimator::slot_estimate(std::size_t slot) const {
  assert(slot < slot_ewmas_.size());
  if (slot_ewmas_[slot].has_value()) return slot_ewmas_[slot].value();
  if (global_ewma_.has_value()) return global_ewma_.value();
  return config_.prior_rate;
}

double BandwidthEstimator::estimate(SimTime t) const {
  return slot_estimate(slot_of(t));
}

double BandwidthEstimator::estimate_transfer_seconds(SimTime t, double bytes) const {
  assert(bytes >= 0.0);
  const double slot_seconds = kDay / static_cast<double>(config_.slots_per_day);
  double remaining = bytes;
  double elapsed = 0.0;
  SimTime cursor = t;
  // Walk slot by slot; cap the walk at one week to guarantee termination
  // even with absurdly small estimates, then extrapolate at the last rate.
  const int max_slots = static_cast<int>(config_.slots_per_day) * 7;
  for (int i = 0; i < max_slots && remaining > 0.0; ++i) {
    const double rate = std::max(estimate(cursor), 1.0);
    const double slot_end =
        (std::floor(cursor / slot_seconds) + 1.0) * slot_seconds;
    const double window = slot_end - cursor;
    const double movable = rate * window;
    if (movable >= remaining) {
      elapsed += remaining / rate;
      remaining = 0.0;
    } else {
      elapsed += window;
      remaining -= movable;
      cursor = slot_end;
    }
  }
  if (remaining > 0.0) {
    elapsed += remaining / std::max(estimate(cursor), 1.0);
  }
  return elapsed;
}

}  // namespace cbs::net
