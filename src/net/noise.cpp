#include "net/noise.hpp"

#include <cassert>
#include <cmath>

#include "stats/distributions.hpp"

namespace cbs::net {

using cbs::sim::SimDuration;
using cbs::sim::SimTime;

Ar1LogNoise::Ar1LogNoise(double rho, double sigma, SimDuration step,
                         cbs::sim::RngStream rng)
    : rho_(rho), sigma_(sigma), step_(step), rng_(rng) {
  assert(rho >= 0.0 && rho < 1.0);
  assert(sigma >= 0.0);
  assert(step > 0.0);
}

double Ar1LogNoise::stationary_sigma() const noexcept {
  return sigma_ / std::sqrt(1.0 - rho_ * rho_);
}

void Ar1LogNoise::advance_one_step() {
  state_ = rho_ * state_ + sigma_ * cbs::stats::sample_standard_normal(rng_);
  grid_time_ += step_;
}

double Ar1LogNoise::multiplier_at(SimTime t) {
  assert(t + 1e-9 >= grid_time_ - step_ && "noise queried backwards in time");
  if (sigma_ == 0.0) {
    grid_time_ = t;
    return 1.0;
  }
  const auto steps_needed =
      static_cast<long long>(std::floor((t - grid_time_) / step_)) + 1;
  if (steps_needed > 0) {
    // Beyond this many steps the process forgets its state; draw directly
    // from the stationary distribution instead of looping.
    const long long mixing_horizon =
        50 + static_cast<long long>(50.0 / (1.0 - rho_));
    if (steps_needed > mixing_horizon) {
      state_ = stationary_sigma() * cbs::stats::sample_standard_normal(rng_);
      grid_time_ += static_cast<double>(steps_needed) * step_;
    } else {
      for (long long i = 0; i < steps_needed; ++i) advance_one_step();
    }
  }
  return current();
}

double Ar1LogNoise::current() const noexcept {
  // Mean-one normalization: E[exp(X)] = exp(sigma_stat^2 / 2) for the
  // stationary law, so we divide it out — raising sigma changes variance,
  // not average capacity (otherwise "high variation" scenarios would get a
  // systematically faster pipe and comparisons would be confounded).
  const double s = stationary_sigma();
  return std::exp(state_ - 0.5 * s * s);
}

}  // namespace cbs::net
