#pragma once

#include <vector>

#include "simcore/time.hpp"

namespace cbs::net {

/// Deterministic time-of-day bandwidth multiplier (the systematic component
/// of the paper's Fig. 4a): a piecewise-linear curve over 24 hours, wrapped
/// periodically. Values are multipliers applied to a link's base rate.
///
/// The default curve models a business pipe: bandwidth dips during office
/// hours (competing traffic) and peaks at night.
class DiurnalProfile {
 public:
  /// `anchors` are multipliers at equally spaced times across one day,
  /// starting at midnight; must contain at least one positive value.
  explicit DiurnalProfile(std::vector<double> anchors);

  /// The default office-pipe shape (24 hourly anchors).
  [[nodiscard]] static DiurnalProfile business_pipe();

  /// A flat profile (multiplier 1 at all times) for controlled experiments.
  [[nodiscard]] static DiurnalProfile flat();

  /// Multiplier at simulated time `t` (linear interpolation, wraps daily).
  [[nodiscard]] double multiplier_at(cbs::sim::SimTime t) const;

  [[nodiscard]] const std::vector<double>& anchors() const noexcept { return anchors_; }

 private:
  std::vector<double> anchors_;
};

/// A bandwidth-throttling episode: capacity is multiplied by `factor`
/// during [start, end). Used to model ISP throttling / cross-traffic storms.
struct ThrottleEpisode {
  cbs::sim::SimTime start;
  cbs::sim::SimTime end;
  double factor;  // in (0, 1]
};

/// Combined multiplier of all episodes active at time `t`.
[[nodiscard]] double throttle_factor(const std::vector<ThrottleEpisode>& episodes,
                                     cbs::sim::SimTime t);

}  // namespace cbs::net
