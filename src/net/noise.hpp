#pragma once

#include "simcore/rng.hpp"
#include "simcore/time.hpp"

namespace cbs::net {

/// Stochastic component of link capacity: a mean-reverting AR(1) process in
/// log space, advanced on a fixed grid. The multiplier is exp(state), so it
/// is always positive; sigma = 0 gives a deterministic link.
///
///   x_{k+1} = rho * x_k + sigma * eps_k,   multiplier = exp(x)
///
/// The "high network variation" scenarios of the paper's Fig. 9/10 are
/// produced by raising sigma.
class Ar1LogNoise {
 public:
  Ar1LogNoise(double rho, double sigma, cbs::sim::SimDuration step,
              cbs::sim::RngStream rng);

  /// Advances the process to time `t` (multiple grid steps if needed; after
  /// ~50·(1/(1-rho)) idle steps it redraws from the stationary law directly,
  /// so long idle gaps cost O(1)). `t` must be non-decreasing across calls.
  double multiplier_at(cbs::sim::SimTime t);

  /// Multiplier without advancing (last computed state).
  [[nodiscard]] double current() const noexcept;

  [[nodiscard]] cbs::sim::SimDuration step() const noexcept { return step_; }

  /// Stationary standard deviation of the log-state.
  [[nodiscard]] double stationary_sigma() const noexcept;

 private:
  void advance_one_step();

  double rho_;
  double sigma_;
  cbs::sim::SimDuration step_;
  cbs::sim::RngStream rng_;
  double state_ = 0.0;
  cbs::sim::SimTime grid_time_ = 0.0;  // time corresponding to state_
};

}  // namespace cbs::net
