#pragma once

#include <cstddef>
#include <vector>

#include "simcore/time.hpp"

namespace cbs::net {

/// Per-time-of-day tuner for the number of parallel upload/download threads
/// (paper Fig. 4b): each slot hill-climbs on measured throughput.
///
/// The link caps each connection at `per_connection_cap`, so throughput
/// grows roughly linearly in the thread count until the pipe saturates;
/// past that point extra threads add nothing (and in this model, nothing is
/// lost either, so the tuner prefers the *smallest* saturating count).
class ThreadTuner {
 public:
  struct Config {
    std::size_t slots_per_day = 48;
    int min_threads = 1;
    int max_threads = 32;
    int initial_threads = 4;
    /// Relative throughput gain required to accept a higher thread count —
    /// avoids drifting up on noise.
    double improvement_threshold = 0.05;
  };

  explicit ThreadTuner(Config config);

  /// Thread count to use for a transfer starting at `t`. Alternates between
  /// exploiting the current best and probing a neighbor (±1), so the tuner
  /// keeps adapting as the diurnal capacity moves.
  [[nodiscard]] int suggest(cbs::sim::SimTime t);

  /// Reports the measured throughput (bytes/s) achieved with `threads`.
  void report(cbs::sim::SimTime t, int threads, double throughput);

  /// Current converged choice for a slot (for the Fig. 4b bench).
  [[nodiscard]] int best_for_slot(std::size_t slot) const;
  [[nodiscard]] std::size_t slots_per_day() const noexcept { return config_.slots_per_day; }

 private:
  struct SlotState {
    int best_threads;
    double best_throughput = 0.0;
    int probe_direction = +1;  // next exploration direction
    std::size_t reports = 0;
    bool exploring = false;
    int exploring_threads = 0;
  };

  [[nodiscard]] std::size_t slot_of(cbs::sim::SimTime t) const;

  Config config_;
  std::vector<SlotState> slots_;
};

}  // namespace cbs::net
