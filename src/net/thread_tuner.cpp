#include "net/thread_tuner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cbs::net {

using cbs::sim::kDay;
using cbs::sim::SimTime;

ThreadTuner::ThreadTuner(Config config) : config_(config) {
  assert(config.slots_per_day > 0);
  assert(config.min_threads >= 1);
  assert(config.max_threads >= config.min_threads);
  assert(config.initial_threads >= config.min_threads &&
         config.initial_threads <= config.max_threads);
  slots_.resize(config.slots_per_day, SlotState{config.initial_threads});
}

std::size_t ThreadTuner::slot_of(SimTime t) const {
  double day_frac = std::fmod(t, kDay) / kDay;
  if (day_frac < 0.0) day_frac += 1.0;
  auto slot = static_cast<std::size_t>(day_frac *
                                       static_cast<double>(config_.slots_per_day));
  return slot % config_.slots_per_day;
}

int ThreadTuner::suggest(SimTime t) {
  SlotState& s = slots_[slot_of(t)];
  // Every third decision explores a neighboring thread count; the rest
  // exploit the incumbent. Exploration alternates up/down.
  if (s.reports > 0 && s.reports % 3 == 2) {
    const int candidate = std::clamp(s.best_threads + s.probe_direction,
                                     config_.min_threads, config_.max_threads);
    s.probe_direction = -s.probe_direction;
    if (candidate != s.best_threads) {
      s.exploring = true;
      s.exploring_threads = candidate;
      return candidate;
    }
  }
  s.exploring = false;
  return s.best_threads;
}

void ThreadTuner::report(SimTime t, int threads, double throughput) {
  assert(throughput >= 0.0);
  SlotState& s = slots_[slot_of(t)];
  ++s.reports;
  if (s.best_throughput == 0.0 && threads == s.best_threads) {
    s.best_throughput = throughput;
    return;
  }
  if (threads == s.best_threads) {
    // Refresh the incumbent's throughput (EWMA-style light smoothing).
    s.best_throughput = 0.5 * s.best_throughput + 0.5 * throughput;
    return;
  }
  if (threads < s.best_threads) {
    // Accept fewer threads whenever throughput is not materially worse —
    // fewer connections for the same rate is strictly preferable.
    if (throughput >= s.best_throughput * (1.0 - config_.improvement_threshold)) {
      s.best_threads = threads;
      s.best_throughput = throughput;
    }
    return;
  }
  // More threads must earn their keep.
  if (throughput > s.best_throughput * (1.0 + config_.improvement_threshold)) {
    s.best_threads = threads;
    s.best_throughput = throughput;
  }
}

int ThreadTuner::best_for_slot(std::size_t slot) const {
  assert(slot < slots_.size());
  return slots_[slot].best_threads;
}

}  // namespace cbs::net
