#pragma once

#include "linalg/matrix.hpp"

namespace cbs::linalg {

/// Result of a least-squares fit, with the goodness-of-fit numbers the QRSM
/// benches report.
struct FitResult {
  Vector coefficients;
  double r_squared = 0.0;   ///< 1 - SS_res / SS_tot
  double rmse = 0.0;        ///< sqrt(mean squared residual)
  double mape = 0.0;        ///< mean |residual / y| over y != 0 rows
  bool used_qr_fallback = false;
};

/// Ridge-regularized least squares: minimizes ‖A·x − b‖² + λ‖x‖².
///
/// Solves the normal equations (AᵀA + λI)·x = Aᵀb by Cholesky; if that
/// fails (ill-conditioned Gram matrix and λ = 0) it falls back to
/// Householder QR. λ must be >= 0. The intercept column, if any, is
/// regularized like every other coefficient — acceptable here because the
/// QRSM standardizes features before fitting.
[[nodiscard]] FitResult ridge_least_squares(const Matrix& a, const Vector& b,
                                            double lambda);

}  // namespace cbs::linalg
