#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace cbs::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix — exactly the capability the QRSM fit needs.
/// Kept deliberately small: no expression templates, no views; the design
/// matrices here are at most a few thousand rows by ~100 columns.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Row-wise construction from a nested initializer list; all rows must
  /// have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous row-major storage).
  [[nodiscard]] double* row_data(std::size_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const double* row_data(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Vector operator*(const Vector& v) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// A^T * A — the Gram matrix of the design matrix, computed without
  /// materializing the transpose.
  [[nodiscard]] Matrix gram() const;

  /// A^T * y for the normal equations.
  [[nodiscard]] Vector transpose_times(const Vector& y) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
[[nodiscard]] double norm(const Vector& v);

/// Dot product; sizes must match.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// a - b elementwise; sizes must match.
[[nodiscard]] Vector subtract(const Vector& a, const Vector& b);

}  // namespace cbs::linalg
