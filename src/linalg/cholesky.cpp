#include "linalg/cholesky.hpp"

#include <cassert>
#include <cmath>

namespace cbs::linalg {

std::optional<Matrix> cholesky(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  assert(l.cols() == n && b.size() == n);
  // Forward substitution: L·y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Back substitution: Lᵀ·x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::optional<Vector> solve_spd(const Matrix& a, const Vector& b) {
  auto l = cholesky(a);
  if (!l) return std::nullopt;
  return cholesky_solve(*l, b);
}

}  // namespace cbs::linalg
