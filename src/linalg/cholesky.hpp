#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace cbs::linalg {

/// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
/// Returns std::nullopt when A is not (numerically) positive definite —
/// callers fall back to QR or increase the ridge term.
[[nodiscard]] std::optional<Matrix> cholesky(const Matrix& a);

/// Solves A·x = b given the Cholesky factor L (forward + back substitution).
[[nodiscard]] Vector cholesky_solve(const Matrix& l, const Vector& b);

/// Convenience: factor-and-solve; std::nullopt if not positive definite.
[[nodiscard]] std::optional<Vector> solve_spd(const Matrix& a, const Vector& b);

}  // namespace cbs::linalg
