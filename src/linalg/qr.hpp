#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace cbs::linalg {

/// Householder QR least-squares solver: minimizes ‖A·x − b‖₂ for a tall
/// matrix A (rows >= cols). More numerically robust than the normal
/// equations; used as the fallback path of the QRSM fit when the Gram
/// matrix is ill-conditioned.
///
/// Returns std::nullopt when A is numerically rank-deficient.
[[nodiscard]] std::optional<Vector> qr_least_squares(Matrix a, Vector b);

}  // namespace cbs::linalg
