#include "linalg/matrix.hpp"

#include <cassert>
#include <cmath>
#include <sstream>

namespace cbs::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    assert(r.size() == cols_ && "ragged initializer for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  // i-k-j loop order keeps the inner loop contiguous in both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* rhs_row = rhs.row_data(k);
      double* out_row = out.row_data(i);
      for (std::size_t j = 0; j < rhs.cols_; ++j) out_row[j] += a * rhs_row[j];
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  assert(cols_ == v.size());
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = row_data(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = row[i];
      if (a == 0.0) continue;
      double* grow = g.row_data(i);
      for (std::size_t j = i; j < cols_; ++j) grow[j] += a * row[j];
    }
  }
  // Mirror the upper triangle.
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

Vector Matrix::transpose_times(const Vector& y) const {
  assert(rows_ == y.size());
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    const double w = y[r];
    if (w == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += row[c] * w;
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream oss;
  oss.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      oss << (*this)(r, c) << (c + 1 == cols_ ? "" : " ");
    }
    oss << "\n";
  }
  return oss.str();
}

double norm(const Vector& v) { return std::sqrt(dot(v, v)); }

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vector subtract(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace cbs::linalg
