#include "linalg/qr.hpp"

#include <cassert>
#include <cmath>

namespace cbs::linalg {

std::optional<Vector> qr_least_squares(Matrix a, Vector b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  assert(m >= n && b.size() == m);

  // In-place Householder: after step k, column k holds R's entries above the
  // diagonal and (implicitly) the reflector below; we apply reflectors to b
  // immediately instead of storing Q.
  Vector v(m);
  for (std::size_t k = 0; k < n; ++k) {
    double norm_x = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_x += a(i, k) * a(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x < 1e-12) return std::nullopt;  // rank-deficient column

    const double alpha = a(k, k) >= 0.0 ? -norm_x : norm_x;
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      v[i] = a(i, k);
      if (i == k) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 < 1e-300) continue;  // column already reduced

    // Apply H = I - 2 v vᵀ / (vᵀv) to the trailing columns of A and to b.
    for (std::size_t j = k; j < n; ++j) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) proj += v[i] * a(i, j);
      proj = 2.0 * proj / vnorm2;
      for (std::size_t i = k; i < m; ++i) a(i, j) -= proj * v[i];
    }
    double projb = 0.0;
    for (std::size_t i = k; i < m; ++i) projb += v[i] * b[i];
    projb = 2.0 * projb / vnorm2;
    for (std::size_t i = k; i < m; ++i) b[i] -= projb * v[i];
  }

  // Back substitution on the n×n upper triangle.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    const double r = a(ii, ii);
    if (std::abs(r) < 1e-12) return std::nullopt;
    x[ii] = s / r;
  }
  return x;
}

}  // namespace cbs::linalg
