#include "linalg/least_squares.hpp"

#include <cassert>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"

namespace cbs::linalg {

namespace {

void fill_fit_quality(const Matrix& a, const Vector& b, FitResult& fit) {
  const Vector pred = a * fit.coefficients;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  double mean_b = 0.0;
  for (double y : b) mean_b += y;
  mean_b /= static_cast<double>(b.size());

  double ape_sum = 0.0;
  std::size_t ape_n = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double r = b[i] - pred[i];
    ss_res += r * r;
    ss_tot += (b[i] - mean_b) * (b[i] - mean_b);
    if (std::abs(b[i]) > 1e-12) {
      ape_sum += std::abs(r / b[i]);
      ++ape_n;
    }
  }
  fit.rmse = std::sqrt(ss_res / static_cast<double>(b.size()));
  fit.r_squared = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  fit.mape = ape_n == 0 ? 0.0 : ape_sum / static_cast<double>(ape_n);
}

}  // namespace

FitResult ridge_least_squares(const Matrix& a, const Vector& b, double lambda) {
  assert(a.rows() == b.size());
  assert(a.rows() >= a.cols() && "underdetermined system: need rows >= cols");
  assert(lambda >= 0.0);

  FitResult fit;
  Matrix gram = a.gram();
  for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;

  if (auto x = solve_spd(gram, a.transpose_times(b))) {
    fit.coefficients = std::move(*x);
  } else {
    auto x2 = qr_least_squares(a, b);
    // QR can only fail on exact rank deficiency; the caller's ridge term
    // should prevent reaching this state, so surface it loudly in debug.
    assert(x2 && "both Cholesky and QR failed: rank-deficient design matrix");
    if (!x2) {
      fit.coefficients.assign(a.cols(), 0.0);
    } else {
      fit.coefficients = std::move(*x2);
    }
    fit.used_qr_fallback = true;
  }
  fill_fit_quality(a, b, fit);
  return fit;
}

}  // namespace cbs::linalg
