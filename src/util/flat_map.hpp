#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <tuple>
#include <utility>
#include <vector>

namespace cbs::util {

/// Sorted-vector map for the simulator's job tables.
///
/// The controllers key every table by a monotonically increasing sequence
/// id, look entries up by exact key on completion events, and iterate in
/// key order for determinism. `std::map` pays a node allocation plus
/// pointer-chasing on every one of those operations. This container keeps
/// the pairs in one contiguous sorted vector:
///
///  - inserting an ever-increasing key is an amortized O(1) append (the
///    common case — sequence ids); out-of-order re-admissions (burst
///    retractions) fall back to an O(n) shift, which is rare and tiny;
///  - lookups are cache-friendly binary searches;
///  - iteration is in ascending key order, like `std::map`, so replacing
///    one with the other cannot change any deterministic output.
///
/// The deliberate difference from `std::map`: iterators AND references are
/// invalidated by every insert/erase. Callers must re-find after mutating —
/// the simulator's call sites were audited for this when the tables were
/// migrated (no reference is held across an insertion).
template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using storage_type = std::vector<value_type>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;

  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  void clear() noexcept { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

  [[nodiscard]] iterator begin() noexcept { return data_.begin(); }
  [[nodiscard]] iterator end() noexcept { return data_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept { return data_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return data_.end(); }

  [[nodiscard]] iterator find(const Key& key) {
    auto it = lower_bound(key);
    return (it != data_.end() && it->first == key) ? it : data_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    auto it = lower_bound(key);
    return (it != data_.end() && it->first == key) ? it : data_.end();
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != data_.end();
  }

  /// Inserts `(key, Value(args...))` if absent; like std::map::emplace but
  /// the mapped value is only constructed on actual insertion.
  template <typename... Args>
  std::pair<iterator, bool> emplace(const Key& key, Args&&... args) {
    auto it = lower_bound(key);
    if (it != data_.end() && it->first == key) return {it, false};
    it = data_.emplace(it, std::piecewise_construct, std::forward_as_tuple(key),
                       std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  Value& operator[](const Key& key) {
    auto it = lower_bound(key);
    if (it == data_.end() || it->first != key) {
      it = data_.emplace(it, std::piecewise_construct,
                         std::forward_as_tuple(key), std::forward_as_tuple());
    }
    return it->second;
  }

  Value& at(const Key& key) {
    auto it = find(key);
    assert(it != data_.end() && "FlatMap::at: missing key");
    return it->second;
  }
  const Value& at(const Key& key) const {
    auto it = find(key);
    assert(it != data_.end() && "FlatMap::at: missing key");
    return it->second;
  }

  iterator erase(iterator pos) { return data_.erase(pos); }
  std::size_t erase(const Key& key) {
    auto it = find(key);
    if (it == data_.end()) return 0;
    data_.erase(it);
    return 1;
  }

 private:
  [[nodiscard]] iterator lower_bound(const Key& key) {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const value_type& entry, const Key& k) { return entry.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const value_type& entry, const Key& k) { return entry.first < k; });
  }

  storage_type data_;
};

}  // namespace cbs::util
