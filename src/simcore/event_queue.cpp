#include "simcore/event_queue.hpp"

#include <cassert>
#include <utility>

namespace cbs::sim {

EventId EventQueue::push(SimTime t, Callback cb) {
  assert(is_valid_time(t) && "event time must be finite and non-negative");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{t, seq, std::move(cb)});
  pending_.insert(seq);
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  // Erasing from pending_ is the single source of truth; the heap entry is
  // discarded lazily when it reaches the top.
  return pending_.erase(id.value) > 0;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() && !pending_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled_head();
  return heap_.empty() ? kTimeInfinity : heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  // priority_queue::top() is const&; the callback must be moved out, so we
  // cast away constness — safe because we pop immediately afterwards.
  auto& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, std::move(top.callback)};
  pending_.erase(top.seq);
  heap_.pop();
  return out;
}

}  // namespace cbs::sim
