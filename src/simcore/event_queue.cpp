#include "simcore/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace cbs::sim {

namespace {

// EventId layout: generation in the high 32 bits, slot index in the low 32.
// Generations start at 1, so a default EventId{0} can never match a slot.
constexpr std::uint64_t pack_id(std::uint32_t gen, std::uint32_t slot) noexcept {
  return (static_cast<std::uint64_t>(gen) << 32) | slot;
}
constexpr std::uint32_t id_gen(std::uint64_t value) noexcept {
  return static_cast<std::uint32_t>(value >> 32);
}
constexpr std::uint32_t id_slot(std::uint64_t value) noexcept {
  return static_cast<std::uint32_t>(value);
}

}  // namespace

std::uint32_t EventQueue::acquire_slot() const {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  const std::uint32_t idx = slot_count_;
  if ((idx >> kChunkBits) == slabs_.size()) {
    slabs_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  ++slot_count_;
  return idx;
}

void EventQueue::release_slot(std::uint32_t idx) const {
  Slot& slot = slot_at(idx);
  slot.callback.reset();
  slot.state = SlotState::kFree;
  free_.push_back(idx);
}

// 4-ary heap: parent of i is (i-1)/4, children are 4i+1..4i+4. Half the
// depth of a binary heap, so sift paths touch half as many cache lines;
// the extra sibling comparisons are over four adjacent POD records, which
// the prefetcher handles for free. This is where the engine's time goes,
// so the arity is a measured choice, not a style one.

void EventQueue::sift_up(std::size_t pos) const {
  const HeapItem item = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!fires_before(item, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = item;
}

void EventQueue::sift_down(std::size_t pos) const {
  const std::size_t n = heap_.size();
  const HeapItem item = heap_[pos];
  while (true) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (fires_before(heap_[c], heap_[best])) best = c;
    }
    if (!fires_before(heap_[best], item)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = item;
}

void EventQueue::heapify() const {
  if (heap_.size() < 2) return;
  for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
    sift_down(i);
  }
}

void EventQueue::reserve(std::size_t expected_events) {
  while (slabs_.size() * kChunkSize < expected_events) {
    slabs_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  heap_.reserve(expected_events);
  free_.reserve(expected_events);
}

EventId EventQueue::push(SimTime t, Callback cb) {
  assert(is_valid_time(t) && "event time must be finite and non-negative");
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t idx = acquire_slot();
  Slot& slot = slot_at(idx);
  ++slot.gen;
  slot.state = SlotState::kPending;
  slot.callback = std::move(cb);
  assert(idx < (1U << kSlotBits) && "too many concurrent events");
  assert(seq < (1ULL << (64 - kSlotBits)) && "lifetime event limit");
  heap_.push_back(HeapItem{t, (seq << kSlotBits) | idx});
  sift_up(heap_.size() - 1);
  ++live_;
  return EventId{pack_id(slot.gen, idx)};
}

std::vector<EventQueue::PendingEvent> EventQueue::pending_records() const {
  std::vector<PendingEvent> out;
  out.reserve(live_);
  for (const HeapItem& item : heap_) {
    const std::uint32_t idx = item.slot();
    const Slot& slot = slot_at(idx);
    if (slot.state != SlotState::kPending) continue;
    out.push_back(PendingEvent{EventId{pack_id(slot.gen, idx)}, item.time,
                               item.order >> kSlotBits});
  }
  std::sort(out.begin(), out.end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

EventId EventQueue::restore(SimTime t, std::uint64_t seq, Callback cb) {
  assert(is_valid_time(t) && "event time must be finite and non-negative");
  assert(seq > 0 && seq < next_seq_ && "restore() seq must predate next_seq()");
  const std::uint32_t idx = acquire_slot();
  Slot& slot = slot_at(idx);
  ++slot.gen;
  slot.state = SlotState::kPending;
  slot.callback = std::move(cb);
  assert(idx < (1U << kSlotBits) && "too many concurrent events");
  heap_.push_back(HeapItem{t, (seq << kSlotBits) | idx});
  sift_up(heap_.size() - 1);
  ++live_;
  return EventId{pack_id(slot.gen, idx)};
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t idx = id_slot(id.value);
  if (idx >= slot_count_) return false;
  Slot& slot = slot_at(idx);
  if (slot.state != SlotState::kPending || slot.gen != id_gen(id.value)) {
    return false;
  }
  // Tombstone: the heap record stays until it surfaces or a compaction
  // sweeps it, but the callback (and everything it captured) dies now.
  slot.callback.reset();
  slot.state = SlotState::kCancelled;
  ++tombstones_;
  assert(live_ > 0);
  --live_;
  maybe_compact();
  return true;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() &&
         slot_at(heap_.front().slot()).state == SlotState::kCancelled) {
    release_slot(heap_.front().slot());
    --tombstones_;
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

void EventQueue::maybe_compact() const {
  // Compact when tombstones dominate: the heap then shrinks to the live
  // events, bounding memory on cancel-heavy workloads (burst-retraction
  // deadlines are armed per burst and almost always cancelled).
  if (tombstones_ < 64 || tombstones_ * 2 < heap_.size()) return;
  std::size_t kept = 0;
  for (const HeapItem& item : heap_) {
    if (slot_at(item.slot()).state == SlotState::kCancelled) {
      release_slot(item.slot());
    } else {
      heap_[kept++] = item;
    }
  }
  heap_.resize(kept);
  tombstones_ = 0;
  heapify();
}

SimTime EventQueue::next_time() const {
  drop_cancelled_head();
  return heap_.empty() ? kTimeInfinity : heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  Slot& slot = slot_at(heap_.front().slot());
  assert(slot.state == SlotState::kPending);
  Popped out{heap_.front().time, std::move(slot.callback)};
  release_slot(heap_.front().slot());
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  assert(live_ > 0);
  --live_;
  return out;
}

}  // namespace cbs::sim
