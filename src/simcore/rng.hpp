#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace cbs::sim {

/// SplitMix64 — used to expand seeds into full xoshiro state and to derive
/// independent named substreams. Reference: Steele, Lea & Flood (2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — a small, fast, high-quality PRNG with a 2^256-1 period.
/// We implement it ourselves (rather than use std::mt19937_64) so that every
/// experiment is bit-reproducible across standard libraries and platforms.
///
/// Satisfies std::uniform_random_bit_generator, so it plugs into <random>
/// distributions as well as the hand-rolled ones in cbs::stats.
class RngStream {
 public:
  using result_type = std::uint64_t;

  /// The full generator state. Saving and later restoring it reproduces the
  /// exact draw sequence — the primitive snapshot/fork support is built on.
  using State = std::array<std::uint64_t, 4>;

  /// Seeds the stream from a single 64-bit value via SplitMix64 expansion.
  explicit RngStream(std::uint64_t seed) noexcept;

  /// Derives an independent child stream identified by `name`. Streams with
  /// different names (or different parents) are statistically independent;
  /// the same (parent, name) pair always yields the same child. This is the
  /// mechanism every simulation component uses to get its own RNG, so that
  /// adding a component never perturbs another component's draws.
  [[nodiscard]] RngStream substream(std::string_view name) const noexcept;

  /// Derives an independent child stream by index (e.g. per machine).
  [[nodiscard]] RngStream substream(std::uint64_t index) const noexcept;

  std::uint64_t next() noexcept;
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive), requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Snapshot of the generator state (value semantics; no hidden state).
  [[nodiscard]] const State& state() const noexcept { return state_; }

  /// Restores a previously saved state; subsequent draws replay exactly.
  void set_state(const State& state) noexcept { state_ = state; }

  friend bool operator==(const RngStream&, const RngStream&) = default;

 private:
  State state_{};

  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// FNV-1a hash of a string, used for substream derivation.
[[nodiscard]] std::uint64_t hash_name(std::string_view name) noexcept;

}  // namespace cbs::sim
