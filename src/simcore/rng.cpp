#include "simcore/rng.hpp"

namespace cbs::sim {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t hash_name(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

RngStream::RngStream(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
  // A theoretically possible all-zero state would lock the generator at 0.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t RngStream::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t RngStream::fingerprint() const noexcept {
  // Mixes the current state into one word without advancing the stream.
  SplitMix64 sm(state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                rotl(state_[3], 47));
  return sm.next();
}

RngStream RngStream::substream(std::string_view name) const noexcept {
  return RngStream(fingerprint() ^ hash_name(name));
}

RngStream RngStream::substream(std::uint64_t index) const noexcept {
  SplitMix64 sm(fingerprint() ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return RngStream(sm.next());
}

double RngStream::next_double() noexcept {
  // 53 random mantissa bits — the canonical [0,1) construction.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t RngStream::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range requested
  // Lemire's rejection-free-in-expectation bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto l = static_cast<std::uint64_t>(m);
  if (l < span) {
    const std::uint64_t floor = (0 - span) % span;
    while (l < floor) {
      x = next();
      m = static_cast<__uint128_t>(x) * span;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

}  // namespace cbs::sim
