#include "simcore/simulation.hpp"

#include <cassert>
#include <utility>

namespace cbs::sim {

EventId Simulation::schedule_at(SimTime t, EventQueue::Callback cb) {
  assert(is_valid_time(t) && "schedule_at: invalid time");
  assert(t >= now_ && "schedule_at: cannot schedule in the past");
  return queue_.push(t, std::move(cb));
}

EventId Simulation::schedule_in(SimDuration delay, EventQueue::Callback cb) {
  assert(delay >= 0.0 && "schedule_in: negative delay");
  return queue_.push(now_ + delay, std::move(cb));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  auto [time, callback] = queue_.pop();
  assert(time >= now_ && "event queue yielded an event in the past");
  now_ = time;
  ++processed_;
  callback();
  return true;
}

SimTime Simulation::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
  return now_;
}

SimTime Simulation::run_until(SimTime deadline) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (stop_requested_ || now_ > deadline) return now_;
  // The caller asked for this much simulated time: advance the clock to the
  // deadline even when the queue drained early or no event lands exactly
  // there.
  now_ = deadline;
  return now_;
}

}  // namespace cbs::sim
