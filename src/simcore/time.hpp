#pragma once

#include <cmath>
#include <limits>

namespace cbs::sim {

/// Simulated time in seconds since the start of the run.
///
/// A plain double keeps the engine simple and fast; all schedulers and
/// metrics operate on differences and ratios, so absolute precision loss at
/// large magnitudes is irrelevant for the horizons we simulate (hours).
using SimTime = double;

/// Duration in simulated seconds.
using SimDuration = double;

inline constexpr SimTime kTimeZero = 0.0;
inline constexpr SimTime kTimeInfinity = std::numeric_limits<double>::infinity();

/// Seconds in common units, for readable scenario configuration.
inline constexpr SimDuration kSecond = 1.0;
inline constexpr SimDuration kMinute = 60.0;
inline constexpr SimDuration kHour = 3600.0;
inline constexpr SimDuration kDay = 86400.0;

/// True when `t` is a usable event timestamp (finite and non-negative).
[[nodiscard]] inline bool is_valid_time(SimTime t) noexcept {
  return std::isfinite(t) && t >= 0.0;
}

}  // namespace cbs::sim
