#include "simcore/fault_plan.hpp"

#include <cassert>
#include <cmath>
#include <string>

namespace cbs::sim {

FaultPlan::FaultPlan(Simulation& sim, FaultConfig config, RngStream rng)
    : sim_(sim), config_(std::move(config)), rng_(rng) {
  assert(config_.ic_vm_mtbf >= 0.0);
  assert(config_.ec_vm_mtbf >= 0.0);
  assert(config_.vm_recovery_seconds >= 0.0);
  assert(config_.retraction_deadline_factor >= 0.0);
}

void FaultPlan::drive_vm_crashes(std::string_view cluster, std::size_t machines,
                                 double mtbf,
                                 std::function<void(std::size_t)> on_crash,
                                 std::function<void(std::size_t)> on_recover) {
  if (mtbf <= 0.0 || machines == 0) return;
  const RngStream cluster_rng = rng_.substream(cluster);
  for (std::size_t m = 0; m < machines; ++m) {
    auto process = std::make_unique<CrashProcess>(CrashProcess{
        cluster_rng.substream(m), mtbf, m, on_crash, on_recover, false, false});
    arm(*process);
    processes_.push_back(std::move(process));
  }
}

void FaultPlan::arm(CrashProcess& process) {
  if (process.armed) return;
  process.armed = true;
  // Exponential inter-crash time: -mtbf * ln(1 - U), U in [0, 1).
  const double delay =
      -process.mtbf * std::log1p(-process.rng.next_double());
  CrashProcess* p = &process;  // stable: processes_ holds unique_ptrs
  sim_.schedule_in(delay, [this, p] { fire(*p); });
}

void FaultPlan::fire(CrashProcess& process) {
  process.armed = false;
  // Pause while the system is idle so the event queue can drain; the
  // controller re-arms via ensure_armed() when work arrives.
  if (!is_active()) return;
  ++crashes_injected_;
  process.recovering = true;
  if (process.on_crash) process.on_crash(process.machine);
  CrashProcess* p = &process;
  sim_.schedule_in(config_.vm_recovery_seconds, [this, p] {
    p->recovering = false;
    if (p->on_recover) p->on_recover(p->machine);
    // Next failure is drawn from the recovery instant, so MTBF measures
    // time *between* crashes of one machine, not uptime alone.
    if (is_active()) arm(*p);
  });
}

void FaultPlan::ensure_armed() {
  for (auto& process : processes_) {
    // A recovering machine re-arms from its own recovery event.
    if (!process->armed && !process->recovering) arm(*process);
  }
}

void FaultPlan::drive_outages(std::function<void(const OutageWindow&)> on_begin,
                              std::function<void()> on_end) {
  for (const OutageWindow& window : config_.outage_windows) {
    if (window.duration <= 0.0) continue;
    sim_.schedule_at(window.start, [this, window, on_begin] {
      if (outage_depth_++ == 0) {
        ++outages_started_;
        if (on_begin) on_begin(window);
      }
    });
    sim_.schedule_at(window.end(), [this, on_end] {
      assert(outage_depth_ > 0);
      if (--outage_depth_ == 0 && on_end) on_end();
    });
  }
}

}  // namespace cbs::sim
