#include "simcore/fault_plan.hpp"

#include <cassert>
#include <cmath>
#include <string>
#include <utility>

#include "simcore/snapshot.hpp"

namespace cbs::sim {

FaultPlan::FaultPlan(Simulation& sim, FaultConfig config, RngStream rng)
    : sim_(sim), config_(std::move(config)), rng_(rng) {
  assert(config_.ic_vm_mtbf >= 0.0);
  assert(config_.ec_vm_mtbf >= 0.0);
  assert(config_.vm_recovery_seconds >= 0.0);
  assert(config_.retraction_deadline_factor >= 0.0);
}

FaultPlan::FaultPlan(Simulation& dst, const FaultPlan& src)
    : sim_(dst),
      config_(src.config_),
      rng_(src.rng_),
      hooks_(src.hooks_.size()),  // empty pairs; rebind_cluster_hooks() fills
      processes_(src.processes_),
      outage_edges_(src.outage_edges_),
      outages_driven_(src.outages_driven_),
      outage_depth_(src.outage_depth_),
      crashes_injected_(src.crashes_injected_),
      outages_started_(src.outages_started_) {}

void FaultPlan::rebind_cluster_hooks(std::size_t cluster_idx,
                                     MachineHook on_crash,
                                     MachineHook on_recover) {
  assert(cluster_idx < hooks_.size());
  hooks_[cluster_idx].on_crash = std::move(on_crash);
  hooks_[cluster_idx].on_recover = std::move(on_recover);
}

void FaultPlan::rebind_outage_hooks(OutageBeginHook on_begin,
                                    OutageEndHook on_end) {
  outage_begin_ = std::move(on_begin);
  outage_end_ = std::move(on_end);
}

void FaultPlan::rebuild_events(SnapshotContext& ctx) {
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    CrashProcess& p = processes_[i];
    if (p.armed) {
      p.pending = ctx.restore(p.pending, [this, i] { fire(i); });
    } else if (p.recovering) {
      p.pending = ctx.restore(p.pending, [this, i] { recover(i); });
    }
  }
  for (std::size_t k = 0; k < outage_edges_.size(); ++k) {
    outage_edges_[k].event =
        ctx.restore(outage_edges_[k].event, [this, k] { fire_outage(k); });
  }
}

void FaultPlan::drive_vm_crashes(std::string_view cluster, std::size_t machines,
                                 double mtbf, MachineHook on_crash,
                                 MachineHook on_recover) {
  if (mtbf <= 0.0 || machines == 0) return;
  const std::size_t cluster_idx = hooks_.size();
  hooks_.push_back(ClusterHooks{std::move(on_crash), std::move(on_recover)});
  const RngStream cluster_rng = rng_.substream(cluster);
  for (std::size_t m = 0; m < machines; ++m) {
    processes_.push_back(CrashProcess{cluster_rng.substream(m), mtbf, m,
                                      cluster_idx, false, false, EventId{}});
    arm(processes_.size() - 1);
  }
}

void FaultPlan::arm(std::size_t i) {
  CrashProcess& process = processes_[i];
  if (process.armed) return;
  process.armed = true;
  // Exponential inter-crash time: -mtbf * ln(1 - U), U in [0, 1).
  const double delay =
      -process.mtbf * std::log1p(-process.rng.next_double());
  process.pending = sim_.schedule_in(delay, [this, i] { fire(i); });
}

void FaultPlan::fire(std::size_t i) {
  CrashProcess& process = processes_[i];
  process.armed = false;
  process.pending = EventId{};
  // Pause while the system is idle so the event queue can drain; the
  // controller re-arms via ensure_armed() when work arrives.
  if (!is_active()) return;
  ++crashes_injected_;
  process.recovering = true;
  ClusterHooks& hooks = hooks_[process.cluster];
  if (hooks.on_crash) hooks.on_crash(process.machine);
  process.pending =
      sim_.schedule_in(config_.vm_recovery_seconds, [this, i] { recover(i); });
}

void FaultPlan::recover(std::size_t i) {
  CrashProcess& process = processes_[i];
  process.recovering = false;
  process.pending = EventId{};
  ClusterHooks& hooks = hooks_[process.cluster];
  if (hooks.on_recover) hooks.on_recover(process.machine);
  // Next failure is drawn from the recovery instant, so MTBF measures
  // time *between* crashes of one machine, not uptime alone.
  if (is_active()) arm(i);
}

void FaultPlan::ensure_armed() {
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    // A recovering machine re-arms from its own recovery event.
    if (!processes_[i].armed && !processes_[i].recovering) arm(i);
  }
}

void FaultPlan::drive_outages(OutageBeginHook on_begin, OutageEndHook on_end) {
  assert(!outages_driven_ && "drive_outages() may be called at most once");
  outages_driven_ = true;
  outage_begin_ = std::move(on_begin);
  outage_end_ = std::move(on_end);
  for (const OutageWindow& window : config_.outage_windows) {
    if (window.duration <= 0.0) continue;
    const std::size_t begin_idx = outage_edges_.size();
    outage_edges_.push_back(OutageEdge{window, true, EventId{}});
    outage_edges_.back().event = sim_.schedule_at(
        window.start, [this, begin_idx] { fire_outage(begin_idx); });
    const std::size_t end_idx = outage_edges_.size();
    outage_edges_.push_back(OutageEdge{window, false, EventId{}});
    outage_edges_.back().event = sim_.schedule_at(
        window.end(), [this, end_idx] { fire_outage(end_idx); });
  }
}

void FaultPlan::fire_outage(std::size_t k) {
  OutageEdge& edge = outage_edges_[k];
  edge.event = EventId{};
  if (edge.begin) {
    if (outage_depth_++ == 0) {
      ++outages_started_;
      if (outage_begin_) outage_begin_(edge.window);
    }
  } else {
    assert(outage_depth_ > 0);
    if (--outage_depth_ == 0 && outage_end_) outage_end_();
  }
}

}  // namespace cbs::sim
