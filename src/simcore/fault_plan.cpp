#include "simcore/fault_plan.hpp"

#include <cassert>
#include <cmath>
#include <string>

namespace cbs::sim {

FaultPlan::FaultPlan(Simulation& sim, FaultConfig config, RngStream rng)
    : sim_(sim), config_(std::move(config)), rng_(rng) {
  assert(config_.ic_vm_mtbf >= 0.0);
  assert(config_.ec_vm_mtbf >= 0.0);
  assert(config_.vm_recovery_seconds >= 0.0);
  assert(config_.retraction_deadline_factor >= 0.0);
}

void FaultPlan::drive_vm_crashes(std::string_view cluster, std::size_t machines,
                                 double mtbf, MachineHook on_crash,
                                 MachineHook on_recover) {
  if (mtbf <= 0.0 || machines == 0) return;
  auto hooks = std::make_unique<ClusterHooks>();
  hooks->on_crash = std::move(on_crash);
  hooks->on_recover = std::move(on_recover);
  const RngStream cluster_rng = rng_.substream(cluster);
  for (std::size_t m = 0; m < machines; ++m) {
    auto process = std::make_unique<CrashProcess>(CrashProcess{
        cluster_rng.substream(m), mtbf, m, hooks.get(), false, false});
    arm(*process);
    processes_.push_back(std::move(process));
  }
  hooks_.push_back(std::move(hooks));
}

void FaultPlan::arm(CrashProcess& process) {
  if (process.armed) return;
  process.armed = true;
  // Exponential inter-crash time: -mtbf * ln(1 - U), U in [0, 1).
  const double delay =
      -process.mtbf * std::log1p(-process.rng.next_double());
  CrashProcess* p = &process;  // stable: processes_ holds unique_ptrs
  sim_.schedule_in(delay, [this, p] { fire(*p); });
}

void FaultPlan::fire(CrashProcess& process) {
  process.armed = false;
  // Pause while the system is idle so the event queue can drain; the
  // controller re-arms via ensure_armed() when work arrives.
  if (!is_active()) return;
  ++crashes_injected_;
  process.recovering = true;
  if (process.hooks->on_crash) process.hooks->on_crash(process.machine);
  CrashProcess* p = &process;
  sim_.schedule_in(config_.vm_recovery_seconds, [this, p] {
    p->recovering = false;
    if (p->hooks->on_recover) p->hooks->on_recover(p->machine);
    // Next failure is drawn from the recovery instant, so MTBF measures
    // time *between* crashes of one machine, not uptime alone.
    if (is_active()) arm(*p);
  });
}

void FaultPlan::ensure_armed() {
  for (auto& process : processes_) {
    // A recovering machine re-arms from its own recovery event.
    if (!process->armed && !process->recovering) arm(*process);
  }
}

void FaultPlan::drive_outages(OutageBeginHook on_begin, OutageEndHook on_end) {
  assert(!outages_driven_ && "drive_outages() may be called at most once");
  outages_driven_ = true;
  outage_begin_ = std::move(on_begin);
  outage_end_ = std::move(on_end);
  for (const OutageWindow& window : config_.outage_windows) {
    if (window.duration <= 0.0) continue;
    sim_.schedule_at(window.start, [this, window] {
      if (outage_depth_++ == 0) {
        ++outages_started_;
        if (outage_begin_) outage_begin_(window);
      }
    });
    sim_.schedule_at(window.end(), [this] {
      assert(outage_depth_ > 0);
      if (--outage_depth_ == 0 && outage_end_) outage_end_();
    });
  }
}

}  // namespace cbs::sim
