#pragma once

#include <cstdint>

#include "simcore/event_queue.hpp"
#include "simcore/time.hpp"

namespace cbs::sim {

/// The discrete-event simulation engine.
///
/// Components schedule callbacks; `run()` drains them in timestamp order,
/// advancing the clock. The engine is single-threaded by design — all
/// parallelism in the modeled system (clusters, concurrent transfers) is
/// expressed as interleaved events, which keeps every run deterministic.
///
/// ## Thread-safety contract (the reentrancy rules of the whole stack)
///
/// A `Simulation` instance is confined to one thread: no member may be
/// called concurrently, and no internal synchronization is performed.
/// *Distinct* instances are fully independent — the engine, and every
/// component layered on it (`src/net`, `src/compute`, `src/core`), holds
/// no mutable global or function-local static state, so N simulations may
/// run on N threads at once. This is what the parallel experiment runner
/// (`harness/runner.hpp`) relies on. The only process-wide state in
/// `simcore` is `Logger::global_threshold()`, an atomic that acts purely
/// as a floor for newly built loggers; per-run log routing goes through
/// per-controller sinks instead. Determinism is per-instance: a run's
/// event trace depends only on its inputs (config + seed), never on what
/// other threads do.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `t >= now()`.
  EventId schedule_at(SimTime t, EventQueue::Callback cb);

  /// Schedules `cb` after a non-negative delay.
  EventId schedule_in(SimDuration delay, EventQueue::Callback cb);

  /// Cancels a pending event; no-op if already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue is empty. Returns the final clock value.
  SimTime run();

  /// Runs every event with timestamp <= `deadline` (events at exactly
  /// `deadline` still fire), then advances the clock to `deadline` — even
  /// when the queue drains early. Returns the clock.
  SimTime run_until(SimTime deadline);

  /// Fires at most one event. Returns false if the queue was empty.
  bool step();

  /// Pre-sizes the event slab/heap for `expected_events` concurrent events
  /// (see EventQueue::reserve). Purely a performance hint — worth calling
  /// before bulk scheduling, since slab growth relocates stored callbacks.
  void reserve_events(std::size_t expected_events) {
    queue_.reserve(expected_events);
  }

  /// Requests that run()/run_until() return before the next event fires.
  void stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }

  // --- Snapshot/fork support (see simcore/snapshot.hpp) ----------------

  /// Pending {id, time, seq} records, sorted by scheduling order.
  [[nodiscard]] std::vector<EventQueue::PendingEvent> pending_snapshot() const {
    return queue_.pending_records();
  }

  /// Copies the clock, processed count and event-seq counter from `src`
  /// into this (empty) engine, so restored events keep their original
  /// ordering and newly scheduled events continue the source's sequence.
  void adopt_clock_from(const Simulation& src) noexcept {
    now_ = src.now_;
    processed_ = src.processed_;
    stop_requested_ = false;
    queue_.set_next_seq(src.queue_.next_seq());
  }

  /// Re-schedules an event carrying a source queue's (time, seq) record.
  EventId restore_event(SimTime t, std::uint64_t seq, EventQueue::Callback cb) {
    return queue_.restore(t, seq, std::move(cb));
  }

 private:
  EventQueue queue_;
  SimTime now_ = kTimeZero;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace cbs::sim
