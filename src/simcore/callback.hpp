#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cbs::sim {

/// Move-only, type-erased callable with small-buffer optimisation.
///
/// `UniqueFunction<void()>` (aliased as `UniqueCallback`) is the event
/// engine's callback type; the other instantiations carry the simulator's
/// set-once hooks (fault callbacks, transfer-completion handlers).
/// `std::function` was measurably wrong for the job: it must be copyable
/// (so captured state is constrained or heap-shared), its small-buffer is
/// implementation-defined, and every heap-spilled callback costs an
/// allocation on the hottest path in the simulator. `UniqueFunction`
/// guarantees:
///
///  - callables up to `kInlineSize` bytes (and nothrow-movable) live inline
///    in the event slab — zero allocations to schedule them;
///  - larger callables take exactly one allocation, owned uniquely;
///  - moves are `noexcept` pointer/buffer relocations, so slab vectors can
///    grow with cheap relocation and no exception paths.
///
/// Invoking an empty callback is undefined (assert-guarded at the call
/// sites); test with `explicit operator bool`.
template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  /// Sized to hold the common controller captures (`this` + a seq id + a
  /// couple of values) with headroom; tune only with benchmark evidence
  /// (bench/micro_perf.cpp: BM_EventEngineThroughput).
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  UniqueFunction() noexcept = default;
  UniqueFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor): drop-in
                           // replacement for std::function at schedule sites
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVTable<Fn>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(storage_, other.storage_);
      other.vt_ = nullptr;
    }
  }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(storage_, other.storage_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

  R operator()(Args... args) {
    return vt_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void* obj, Args&&... args);
    /// Move-constructs into `dst` and destroys the source representation.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* obj) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static Fn* inline_object(void* obj) noexcept {
    return std::launder(reinterpret_cast<Fn*>(obj));
  }
  template <typename Fn>
  static Fn** heap_slot(void* obj) noexcept {
    return std::launder(reinterpret_cast<Fn**>(obj));
  }

  template <typename Fn>
  static constexpr VTable kInlineVTable{
      [](void* obj, Args&&... args) -> R {
        return (*inline_object<Fn>(obj))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*inline_object<Fn>(src)));
        inline_object<Fn>(src)->~Fn();
      },
      [](void* obj) noexcept { inline_object<Fn>(obj)->~Fn(); }};

  template <typename Fn>
  static constexpr VTable kHeapVTable{
      [](void* obj, Args&&... args) -> R {
        return (**heap_slot<Fn>(obj))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*heap_slot<Fn>(src));
      },
      [](void* obj) noexcept { delete *heap_slot<Fn>(obj); }};

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const VTable* vt_ = nullptr;
};

/// The event engine's `void()` callback (see `EventQueue::Callback`).
using UniqueCallback = UniqueFunction<void()>;

}  // namespace cbs::sim
