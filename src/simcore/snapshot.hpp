#pragma once

#include <cstdint>
#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/simulation.hpp"

namespace cbs::sim {

/// The component-owned re-registration protocol for forking a simulation.
///
/// Event callbacks are move-only (`UniqueCallback`) and capture `this`
/// pointers, so a fork cannot copy the event queue. Instead:
///
///  1. every component stores the `EventId` of each event it has pending
///     (plus enough *value* state to rebuild the callback);
///  2. the fork copies component value state (clone constructors that
///     rebind references to the cloned peers);
///  3. each clone walks its stored ids and calls `restore(src_id, cb)`,
///     which re-schedules `cb` on the destination engine with the source
///     event's original `(time, seq)` — so the clone's pop order is
///     bit-identical to the source's — and returns the new id.
///
/// `restore` returns a null `EventId{}` when the source id is not pending
/// (already fired or cancelled); components overwrite their stored id with
/// the returned one either way, which keeps fired-event handles inert.
///
/// `finish()` asserts that every pending source event was claimed by
/// exactly one component — the "no orphaned events" half of the
/// fork-equivalence contract (the lint rule `snapshot-unsafe` covers the
/// "no cross-fork pointers" half).
class SnapshotContext {
 public:
  /// Clones the engine core of `src` into `dst` (clock, processed count,
  /// seq counter) and indexes its pending events. `dst` must be empty.
  SnapshotContext(const Simulation& src, Simulation& dst);

  SnapshotContext(const SnapshotContext&) = delete;
  SnapshotContext& operator=(const SnapshotContext&) = delete;

  [[nodiscard]] Simulation& dst() noexcept { return dst_; }

  /// Re-schedules the clone's callback for the source event `src_id`.
  /// Returns the id in the destination engine, or `EventId{}` when the
  /// source event was not pending at snapshot time.
  EventId restore(EventId src_id, EventQueue::Callback cb);

  /// True when `src_id` was pending at snapshot time and not yet restored.
  [[nodiscard]] bool pending(EventId src_id) const noexcept;

  [[nodiscard]] std::size_t restored() const noexcept { return restored_; }
  [[nodiscard]] std::size_t total() const noexcept { return entries_.size(); }

  /// Asserts every pending source event has been restored. Call once, after
  /// all components re-registered. Returns the number left unclaimed (0 on
  /// success) so release builds can check it too.
  std::size_t finish() const;

 private:
  struct Entry {
    std::uint64_t id_value;
    SimTime time;
    std::uint64_t seq;
    bool restored;
  };

  [[nodiscard]] Entry* find(EventId id) noexcept;
  [[nodiscard]] const Entry* find(EventId id) const noexcept;

  Simulation& dst_;
  std::vector<Entry> entries_;  ///< sorted by id_value
  std::size_t restored_ = 0;
};

}  // namespace cbs::sim
