#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "simcore/time.hpp"

namespace cbs::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Minimal leveled logger stamped with simulated time.
///
/// The sink is injectable so tests can capture output and benches can mute
/// it; the default sink writes to stderr. Logging below the threshold costs
/// one branch — message formatting is skipped entirely.
///
/// Thread-safety: a Logger instance is not internally synchronized — give
/// each simulation run its own Logger (ControllerConfig::log_threshold /
/// log_sink route this per run). The process-wide global threshold is an
/// atomic floor consulted only at construction, so building loggers on
/// many threads is safe; it exists for coarse muting (CLI --quiet), not
/// for per-run control.
class Logger {
 public:
  /// Copyable on purpose: sinks ride inside ControllerConfig/Scenario,
  /// which the parallel runner copies per plan cell — so the move-only
  /// UniqueFunction cannot carry them.
  // cbs-lint: std-function-ok(sink must stay copyable: it is carried by ControllerConfig/Scenario copies in the parallel runner)
  using Sink = std::function<void(LogLevel, SimTime, std::string_view)>;

  explicit Logger(std::string component, LogLevel threshold = LogLevel::kWarn);

  void set_threshold(LogLevel level) noexcept { threshold_ = level; }
  [[nodiscard]] LogLevel threshold() const noexcept { return threshold_; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= threshold_ && threshold_ != LogLevel::kOff;
  }

  template <typename... Args>
  void log(LogLevel level, SimTime t, Args&&... args) {
    if (!enabled(level)) return;
    std::ostringstream oss;
    oss << "[" << component_ << "] ";
    (oss << ... << std::forward<Args>(args));
    emit(level, t, oss.str());
  }

  template <typename... Args>
  void debug(SimTime t, Args&&... args) {
    log(LogLevel::kDebug, t, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(SimTime t, Args&&... args) {
    log(LogLevel::kInfo, t, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(SimTime t, Args&&... args) {
    log(LogLevel::kWarn, t, std::forward<Args>(args)...);
  }

  /// Process-wide default threshold applied to newly created loggers.
  static void set_global_threshold(LogLevel level) noexcept;
  [[nodiscard]] static LogLevel global_threshold() noexcept;

 private:
  void emit(LogLevel level, SimTime t, std::string_view msg);

  std::string component_;
  LogLevel threshold_;
  Sink sink_;
};

}  // namespace cbs::sim
