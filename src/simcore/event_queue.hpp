#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "simcore/time.hpp"

namespace cbs::sim {

/// Opaque handle to a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

/// Priority queue of timestamped callbacks with stable FIFO tie-breaking and
/// O(1) amortized cancellation (lazy deletion on pop).
///
/// Determinism contract: two events at the same timestamp fire in the order
/// they were scheduled, regardless of heap internals. This is what makes
/// whole-simulation replay bit-exact.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` at absolute time `t`. Precondition: is_valid_time(t).
  EventId push(SimTime t, Callback cb);

  /// Cancels a pending event. Returns true if it was still pending;
  /// cancelling an already-fired or already-cancelled event is a no-op.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }

  /// Timestamp of the next live event; kTimeInfinity when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the next live event's callback along with its time.
  /// Precondition: !empty().
  struct Popped {
    SimTime time;
    Callback callback;
  };
  Popped pop();

  /// Number of live (non-cancelled) events still pending.
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  /// Total events scheduled over the queue's lifetime (diagnostics).
  [[nodiscard]] std::uint64_t total_scheduled() const noexcept { return next_seq_ - 1; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // insertion order; also the EventId value
    Callback callback;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_head() const;

  // `mutable` so that next_time() can lazily discard cancelled heads.
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;  // ids scheduled and not yet fired/cancelled
  std::uint64_t next_seq_ = 1;
};

}  // namespace cbs::sim
