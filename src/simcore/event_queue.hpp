#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simcore/callback.hpp"
#include "simcore/time.hpp"

namespace cbs::sim {

/// Opaque handle to a scheduled event; used for cancellation. Encodes the
/// event's slab slot and a per-slot generation, so handles of fired or
/// cancelled events can never alias a later event that reuses the slot.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

/// Priority queue of timestamped callbacks with stable FIFO tie-breaking and
/// O(1) amortized cancellation.
///
/// Determinism contract: two events at the same timestamp fire in the order
/// they were scheduled, regardless of heap internals. This is what makes
/// whole-simulation replay bit-exact.
///
/// ## Engine layout (the allocation-light design)
///
/// Event state lives in a slab of reusable slots (callback + time + seq +
/// generation); the binary heap orders small POD `{time, seq, slot}` records
/// by (time, scheduling order). Consequences:
///
///  - scheduling an event allocates nothing once the slab and heap vectors
///    have warmed up (and the callback fits `UniqueCallback`'s buffer);
///  - cancellation destroys the callback immediately (releasing captured
///    state) and leaves a tombstone record in the heap; tombstones are
///    dropped when they surface, and bulk-compacted when they outnumber
///    live events — so cancel-heavy paths (burst-retraction deadlines)
///    cannot grow the heap unboundedly;
///  - `pop()` moves the callback out of its slot — no const_cast through
///    `std::priority_queue::top()`, which the previous implementation
///    needed.
class EventQueue {
 public:
  using Callback = UniqueCallback;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Pre-sizes the slab and heap for `expected_events` concurrent events.
  /// Purely a performance hint: growth past it still works. Worth calling
  /// before bulk scheduling — slab growth relocates every stored callback.
  void reserve(std::size_t expected_events);

  /// Schedules `cb` at absolute time `t`. Precondition: is_valid_time(t).
  EventId push(SimTime t, Callback cb);

  /// Cancels a pending event. Returns true if it was still pending;
  /// cancelling an already-fired or already-cancelled event is a no-op.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Timestamp of the next live event; kTimeInfinity when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the next live event's callback along with its time.
  /// Precondition: !empty().
  struct Popped {
    SimTime time;
    Callback callback;
  };
  Popped pop();

  /// Number of live (non-cancelled) events still pending.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Total events scheduled over the queue's lifetime (diagnostics).
  [[nodiscard]] std::uint64_t total_scheduled() const noexcept { return next_seq_ - 1; }

  /// Cancelled events still occupying heap records (diagnostics/tests).
  [[nodiscard]] std::size_t tombstones() const noexcept { return tombstones_; }

  // --- Snapshot/fork support -------------------------------------------
  //
  // Callbacks are move-only, so a queue cannot be copied. Instead a fork
  // serializes the pending {id, time, seq} records and each component
  // re-registers its own events on the clone via restore(), preserving the
  // original (time, seq) pair. seq is unique and fires_before() compares
  // (time, order) where order is dominated by seq, so slot reassignment in
  // the clone can never change pop order: replay is bit-exact.

  /// One pending event, without its callback.
  struct PendingEvent {
    EventId id;         ///< handle in *this* queue (the snapshot source)
    SimTime time = 0.0;
    std::uint64_t seq = 0;  ///< original scheduling order
  };

  /// All live events, sorted by seq (deterministic order).
  [[nodiscard]] std::vector<PendingEvent> pending_records() const;

  /// Re-schedules an event with an explicit (time, seq) taken from a
  /// source queue's PendingEvent. Precondition: seq < next_seq() (call
  /// set_next_seq() first) and seq unique among restored events.
  EventId restore(SimTime t, std::uint64_t seq, Callback cb);

  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  void set_next_seq(std::uint64_t seq) noexcept { next_seq_ = seq; }

 private:
  enum class SlotState : std::uint8_t { kFree, kPending, kCancelled };

  /// Exactly one cache line: the time and insertion order live in the heap
  /// record instead, so a slot is just identity (gen, state) + callback.
  struct Slot {
    std::uint32_t gen = 0;   ///< bumped on every reuse; part of the EventId
    SlotState state = SlotState::kFree;
    Callback callback;
  };

  /// One heap record, deliberately 16 bytes so sift moves stay cheap and
  /// 10k pending events fit in 160 KB of L2. `order` packs the insertion
  /// seq (high 40 bits) over the slot index (low 24): seq is unique, so
  /// comparing `order` alone IS the FIFO tie-break, and the slot rides
  /// along for free. Limits — ≤ 2^24 concurrent events, ≤ 2^40 lifetime
  /// events — are asserted in push().
  struct HeapItem {
    SimTime time;
    std::uint64_t order;  ///< (seq << kSlotBits) | slot

    [[nodiscard]] std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(order & ((1ULL << kSlotBits) - 1));
    }
  };
  static constexpr unsigned kSlotBits = 24;

  /// Strict-weak "fires earlier" order: (time, seq). seq is unique, so this
  /// is a total order and every valid heap yields the same pop sequence.
  [[nodiscard]] static bool fires_before(const HeapItem& a,
                                         const HeapItem& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  }

  /// Slab chunking: 512 slots (32 KB) per chunk. Chunks never move, so
  /// growing the slab relocates no stored callback — a flat vector paid an
  /// indirect relocate call per live event on every capacity doubling,
  /// which dominated bulk-scheduling cost.
  static constexpr unsigned kChunkBits = 9;
  static constexpr std::uint32_t kChunkSize = 1U << kChunkBits;

  [[nodiscard]] Slot& slot_at(std::uint32_t idx) const noexcept {
    return slabs_[idx >> kChunkBits][idx & (kChunkSize - 1)];
  }

  // The helpers below only touch the mutable engine state, so they are
  // `const` and shared by next_time()'s lazy head-dropping.
  [[nodiscard]] std::uint32_t acquire_slot() const;
  void release_slot(std::uint32_t idx) const;
  void sift_up(std::size_t pos) const;
  void sift_down(std::size_t pos) const;
  void heapify() const;
  void drop_cancelled_head() const;
  void maybe_compact() const;

  // `mutable` so next_time() can lazily discard cancelled heads, exactly as
  // the previous implementation did.
  mutable std::vector<std::unique_ptr<Slot[]>> slabs_;
  mutable std::uint32_t slot_count_ = 0;     ///< slots ever created
  mutable std::vector<std::uint32_t> free_;  ///< reusable slot indices (LIFO)
  mutable std::vector<HeapItem> heap_;
  mutable std::size_t tombstones_ = 0;  ///< cancelled records still in heap_
  std::size_t live_ = 0;                ///< pending (non-cancelled) events
  std::uint64_t next_seq_ = 1;
};

}  // namespace cbs::sim
