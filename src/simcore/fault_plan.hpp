#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "simcore/callback.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace cbs::sim {

/// One absolute fault interval [start, start + duration).
struct OutageWindow {
  SimTime start = 0.0;
  SimDuration duration = 0.0;

  [[nodiscard]] SimTime end() const noexcept { return start + duration; }
  [[nodiscard]] bool contains(SimTime t) const noexcept {
    return t >= start && t < end();
  }
};

/// Declarative fault-model knobs. Everything defaults to "off", and a
/// default-constructed config is guaranteed zero-cost: no FaultPlan is
/// built, no extra events are scheduled, and every run is byte-identical
/// to a build without the fault layer.
struct FaultConfig {
  /// Per-VM mean time between crashes (exponential draws, seconds of sim
  /// time); 0 disables crashes on that cluster. A crashed VM loses its
  /// running task (the task is re-queued at its FCFS position and fully
  /// re-executed) and rejoins after `vm_recovery_seconds`.
  double ic_vm_mtbf = 0.0;
  double ec_vm_mtbf = 0.0;
  SimDuration vm_recovery_seconds = 120.0;

  /// Whole-EC outage windows: both inter-cloud links become unreachable
  /// (in-flight transfers are aborted, losing their progress) and the EC
  /// job store rejects requests. Overlapping windows are merged by the
  /// plan's depth counter.
  std::vector<OutageWindow> outage_windows;

  /// Bandwidth-probe blackout windows: the controller skips its periodic
  /// 1 MB probes, so the EWMA bandwidth predictor goes stale.
  std::vector<OutageWindow> probe_blackout;

  /// Controller recovery policy: a bursted job must complete its upload
  /// within `factor` times its estimated EC round trip, else the burst is
  /// retracted (EC attempt cancelled, job re-admitted to the IC queue at
  /// its FCFS position). 0 disables retraction.
  double retraction_deadline_factor = 0.0;

  /// True when any fault *injection* is configured (crashes, outages or
  /// probe blackouts).
  [[nodiscard]] bool any_faults() const noexcept {
    return ic_vm_mtbf > 0.0 || ec_vm_mtbf > 0.0 || !outage_windows.empty() ||
           !probe_blackout.empty();
  }
  /// True when the fault layer must be wired at all (faults or recovery
  /// policy).
  [[nodiscard]] bool enabled() const noexcept {
    return any_faults() || retraction_deadline_factor > 0.0;
  }
  [[nodiscard]] bool in_probe_blackout(SimTime t) const noexcept {
    for (const auto& w : probe_blackout) {
      if (w.contains(t)) return true;
    }
    return false;
  }
};

class SnapshotContext;

/// Deterministic, seed-driven fault-event generator.
///
/// The plan owns independent RNG substreams per (cluster, machine), so a
/// machine's crash trace depends only on (seed, cluster name, machine
/// index) — never on what the rest of the simulation does. Crash processes
/// pause while the `active` gate (typically "jobs outstanding") is false,
/// which lets a drained simulation terminate; call `ensure_armed()` when
/// new work arrives to resume them.
///
/// Hooks are `UniqueFunction`s (move-only): one crash/recover pair is
/// stored per `drive_vm_crashes` call and shared by every machine of that
/// cluster, rather than copied into each per-machine process the way a
/// `std::function` design would. Event callbacks capture only `this` plus
/// a process/edge index, and the pending `EventId` is stored alongside the
/// indexed state — which is what makes the plan forkable: a clone copies
/// the value state, the owner re-registers the hooks, and
/// `rebuild_events()` re-schedules whatever was pending.
class FaultPlan {
 public:
  using MachineHook = UniqueFunction<void(std::size_t)>;
  using OutageBeginHook = UniqueFunction<void(const OutageWindow&)>;
  using OutageEndHook = UniqueFunction<void()>;
  using ActiveGate = UniqueFunction<bool()>;

  FaultPlan(Simulation& sim, FaultConfig config, RngStream rng);
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Fork support: copies `src`'s value state (RNG positions, per-process
  /// armed/recovering flags, outage schedule and depth) into a plan bound
  /// to `dst`. Hooks and the active gate are NOT copied — the owner must
  /// re-register them via rebind_cluster_hooks()/rebind_outage_hooks()/
  /// set_active(), then call rebuild_events() to re-schedule pending work.
  FaultPlan(Simulation& dst, const FaultPlan& src);

  /// Re-registers the hook pair of the `cluster_idx`-th drive_vm_crashes()
  /// call (registration order) on a forked plan.
  void rebind_cluster_hooks(std::size_t cluster_idx, MachineHook on_crash,
                            MachineHook on_recover);

  /// Re-registers the outage hooks on a forked plan.
  void rebind_outage_hooks(OutageBeginHook on_begin, OutageEndHook on_end);

  /// Re-schedules pending crash/recovery/outage events after a fork.
  void rebuild_events(SnapshotContext& ctx);

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

  /// Starts one crash/recover process per machine of a cluster. `on_crash`
  /// fires as a simulation event; `on_recover` follows
  /// `config().vm_recovery_seconds` later. Machines provisioned after this
  /// call (elastic scale-up) are not fault-driven.
  void drive_vm_crashes(std::string_view cluster, std::size_t machines,
                        double mtbf, MachineHook on_crash,
                        MachineHook on_recover);

  /// Schedules the config's outage windows. Overlaps are merged: `on_begin`
  /// fires when the outage depth goes 0 -> 1, `on_end` when it returns to 0.
  /// May be called at most once per plan.
  void drive_outages(OutageBeginHook on_begin, OutageEndHook on_end);

  /// Gate for crash processes; when absent, processes never pause.
  void set_active(ActiveGate active) { active_ = std::move(active); }

  /// Resumes crash processes that paused while the gate was false.
  void ensure_armed();

  [[nodiscard]] std::uint64_t crashes_injected() const noexcept {
    return crashes_injected_;
  }
  [[nodiscard]] std::uint64_t outages_started() const noexcept {
    return outages_started_;
  }

 private:
  /// One crash/recover hook pair per drive_vm_crashes() call, shared by
  /// every machine of that cluster (addressed by index, so forks can
  /// re-register hooks without touching process state).
  struct ClusterHooks {
    MachineHook on_crash;
    MachineHook on_recover;
  };

  struct CrashProcess {
    RngStream rng;
    double mtbf;
    std::size_t machine;
    std::size_t cluster;  ///< index into hooks_
    bool armed;           ///< a crash event is pending
    bool recovering;      ///< crashed; the recovery event is pending
    EventId pending{};    ///< the crash (armed) or recovery (recovering) event
  };

  /// One scheduled outage edge (begin or end of a configured window).
  struct OutageEdge {
    OutageWindow window;
    bool begin;
    EventId event{};
  };

  void arm(std::size_t i);
  void fire(std::size_t i);
  void recover(std::size_t i);
  void fire_outage(std::size_t k);
  [[nodiscard]] bool is_active() { return !active_ || active_(); }

  Simulation& sim_;
  FaultConfig config_;
  RngStream rng_;
  // cbs-lint: snapshot-complete-ok(owner re-wires the gate post-fork)
  ActiveGate active_;
  std::vector<ClusterHooks> hooks_;
  std::vector<CrashProcess> processes_;
  std::vector<OutageEdge> outage_edges_;
  // cbs-lint: snapshot-complete-ok(owner re-wires outage hooks post-fork)
  OutageBeginHook outage_begin_;
  // cbs-lint: snapshot-complete-ok(owner re-wires outage hooks post-fork)
  OutageEndHook outage_end_;
  bool outages_driven_ = false;
  int outage_depth_ = 0;
  std::uint64_t crashes_injected_ = 0;
  std::uint64_t outages_started_ = 0;
};

}  // namespace cbs::sim
