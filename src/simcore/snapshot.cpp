#include "simcore/snapshot.hpp"

#include <algorithm>
#include <cassert>

namespace cbs::sim {

SnapshotContext::SnapshotContext(const Simulation& src, Simulation& dst)
    : dst_(dst) {
  assert(dst.pending_events() == 0 && "fork destination must be empty");
  dst_.adopt_clock_from(src);
  const auto records = src.pending_snapshot();
  entries_.reserve(records.size());
  for (const auto& r : records) {
    entries_.push_back(Entry{r.id.value, r.time, r.seq, false});
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.id_value < b.id_value;
            });
}

SnapshotContext::Entry* SnapshotContext::find(EventId id) noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id.value,
      [](const Entry& e, std::uint64_t v) { return e.id_value < v; });
  if (it == entries_.end() || it->id_value != id.value) return nullptr;
  return &*it;
}

const SnapshotContext::Entry* SnapshotContext::find(EventId id) const noexcept {
  return const_cast<SnapshotContext*>(this)->find(id);
}

EventId SnapshotContext::restore(EventId src_id, EventQueue::Callback cb) {
  Entry* e = find(src_id);
  if (e == nullptr) return EventId{};
  assert(!e->restored && "source event restored twice");
  e->restored = true;
  ++restored_;
  return dst_.restore_event(e->time, e->seq, std::move(cb));
}

bool SnapshotContext::pending(EventId src_id) const noexcept {
  const Entry* e = find(src_id);
  return e != nullptr && !e->restored;
}

std::size_t SnapshotContext::finish() const {
  const std::size_t unclaimed = entries_.size() - restored_;
  assert(unclaimed == 0 && "fork left pending source events unclaimed");
  return unclaimed;
}

}  // namespace cbs::sim
