#include "simcore/logging.hpp"

#include <atomic>
#include <cstdio>

namespace cbs::sim {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::set_global_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

LogLevel Logger::global_threshold() noexcept {
  return g_threshold.load(std::memory_order_relaxed);
}

Logger::Logger(std::string component, LogLevel threshold)
    : component_(std::move(component)), threshold_(threshold) {
  if (global_threshold() > threshold_) threshold_ = global_threshold();
}

void Logger::emit(LogLevel level, SimTime t, std::string_view msg) {
  if (sink_) {
    sink_(level, t, msg);
    return;
  }
  std::fprintf(stderr, "%-5s t=%10.2f %.*s\n", to_string(level).data(), t,
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace cbs::sim
