#include "core/upload_queues.hpp"

#include <algorithm>
#include <cassert>

namespace cbs::core {

TransferQueueSet::TransferQueueSet(cbs::sim::Simulation& sim,
                                   cbs::net::Link& link,
                                   cbs::net::ThreadTuner& tuner, int num_classes,
                                   int slots_per_class)
    : sim_(sim), link_(link), tuner_(tuner) {
  assert(num_classes >= 1);
  assert(slots_per_class >= 1);
  queues_.resize(static_cast<std::size_t>(num_classes));
  slots_.assign(static_cast<std::size_t>(num_classes),
                std::vector<Slot>(static_cast<std::size_t>(slots_per_class)));
  active_bytes_per_class_.assign(static_cast<std::size_t>(num_classes), 0.0);
  link_slot_ = link_.register_handler(
      [this](std::uint64_t tag, const cbs::net::TransferRecord& rec) {
        on_link_complete(tag, rec);
      });
  // The slot policy bounds this set's concurrent transfers, so the link's
  // SoA pool can be sized once up front (shared links take the max).
  link_.reserve_transfers(
      static_cast<std::size_t>(num_classes) *
      static_cast<std::size_t>(slots_per_class));
}

TransferQueueSet::TransferQueueSet(cbs::sim::Simulation& dst,
                                   const TransferQueueSet& src,
                                   cbs::net::Link& link,
                                   cbs::net::ThreadTuner& tuner)
    : sim_(dst),
      link_(link),
      tuner_(tuner),
      queues_(src.queues_),
      slots_(src.slots_),
      active_(src.active_),
      active_count_(src.active_count_),
      active_bytes_per_class_(src.active_bytes_per_class_) {
  link_slot_ = link_.register_handler(
      [this](std::uint64_t tag, const cbs::net::TransferRecord& rec) {
        on_link_complete(tag, rec);
      });
  assert(link_slot_ == src.link_slot_ &&
         "handler registration order must match the source link");
}

void TransferQueueSet::enqueue(std::uint64_t tag, double bytes, int klass) {
  assert(bytes > 0.0);
  assert(klass >= 0 && klass < num_classes());
  queues_[static_cast<std::size_t>(klass)].push_back(Item{tag, bytes, klass});
  pump();
}

bool TransferQueueSet::try_cancel(std::uint64_t tag) {
  for (auto& queue : queues_) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->tag == tag) {
        queue.erase(it);
        return true;
      }
    }
  }
  return false;
}

void TransferQueueSet::release_slot(const ActiveItem& active) {
  slots_[static_cast<std::size_t>(active.slot_klass)][active.slot].busy = false;
  --active_count_;
  active_bytes_per_class_[static_cast<std::size_t>(active.item.klass)] -=
      active.item.bytes;
}

bool TransferQueueSet::try_cancel_active(std::uint64_t tag) {
  auto it = active_.find(tag);
  if (it == active_.end()) return false;
  const ActiveItem active = it->second;
  active_.erase(it);
  const bool cancelled = link_.cancel(active.transfer);
  assert(cancelled);
  (void)cancelled;
  release_slot(active);
  pump();
  return true;
}

int TransferQueueSet::pick_queue_for_class(int klass) const {
  // Own class first, then the nearest lower class with waiting work.
  for (int q = klass; q >= 0; --q) {
    if (!queues_[static_cast<std::size_t>(q)].empty()) return q;
  }
  return -1;
}

void TransferQueueSet::pump() {
  for (int klass = 0; klass < num_classes(); ++klass) {
    auto& class_slots = slots_[static_cast<std::size_t>(klass)];
    for (std::size_t s = 0; s < class_slots.size(); ++s) {
      if (class_slots[s].busy) continue;
      const int source = pick_queue_for_class(klass);
      if (source < 0) break;

      Item item = queues_[static_cast<std::size_t>(source)].front();
      queues_[static_cast<std::size_t>(source)].pop_front();
      class_slots[s].busy = true;
      ++active_count_;
      active_bytes_per_class_[static_cast<std::size_t>(item.klass)] += item.bytes;

      const int threads = tuner_.suggest(sim_.now());
      const std::uint64_t tag = item.tag;
      const cbs::net::TransferId id =
          link_.submit(item.bytes, threads, link_slot_, tag);
      active_.emplace(tag, ActiveItem{item, klass, s, id});
    }
  }
}

void TransferQueueSet::on_link_complete(std::uint64_t tag,
                                        const cbs::net::TransferRecord& rec) {
  auto it = active_.find(tag);
  assert(it != active_.end());
  const ActiveItem done = it->second;
  active_.erase(it);
  release_slot(done);
  // Serve the freed slot before notifying, so the pipe never idles across
  // the callback.
  pump();
  if (on_complete_) on_complete_(done.item.tag, done.item.klass, rec);
}

std::vector<double> TransferQueueSet::backlog_bytes_per_class() const {
  std::vector<double> backlog(queues_.size(), 0.0);
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    for (const Item& item : queues_[q]) backlog[q] += item.bytes;
    backlog[q] += active_bytes_per_class_[q];
  }
  return backlog;
}

double TransferQueueSet::total_backlog_bytes() const {
  double total = 0.0;
  for (double b : backlog_bytes_per_class()) total += b;
  return total;
}

bool TransferQueueSet::idle() const {
  return active_count_ == 0 && queued_items() == 0;
}

std::size_t TransferQueueSet::queued_items() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

std::vector<std::uint64_t> TransferQueueSet::queued_tags() const {
  std::vector<std::uint64_t> tags;
  for (const auto& q : queues_) {
    for (const Item& item : q) tags.push_back(item.tag);
  }
  return tags;
}

}  // namespace cbs::core
