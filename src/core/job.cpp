#include "core/job.hpp"

namespace cbs::core {

std::string_view to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kArrived: return "arrived";
    case JobState::kIcWaiting: return "ic-waiting";
    case JobState::kIcRunning: return "ic-running";
    case JobState::kUploadQueued: return "upload-queued";
    case JobState::kUploading: return "uploading";
    case JobState::kEcRunning: return "ec-running";
    case JobState::kDownloading: return "downloading";
    case JobState::kCompleted: return "completed";
  }
  return "?";
}

cbs::sla::JobOutcome Job::to_outcome() const {
  cbs::sla::JobOutcome o;
  o.seq_id = seq_id;
  o.doc_id = doc.doc_id;
  o.batch_index = batch_index;
  o.arrival = arrival;
  o.scheduled = scheduled_time;
  o.completed = completed_time;
  o.input_mb = doc.features.size_mb;
  o.output_mb = doc.output_size_mb;
  o.true_service_seconds = true_service_seconds;
  o.placement = placement;
  return o;
}

}  // namespace cbs::core
