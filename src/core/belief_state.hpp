#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "models/estimator.hpp"
#include "util/flat_map.hpp"
#include "net/bandwidth_estimator.hpp"
#include "simcore/time.hpp"
#include "workload/document.hpp"

namespace cbs::core {

/// How a scheduler reads the network when estimating transfers.
/// kLearned uses the per-slot EWMA model (§III.A.2); kTransient uses the
/// latest raw observation — Algorithm 1's "current transit bandwidth",
/// whose fragility §IV.D analyses.
enum class BandwidthView : std::uint8_t { kLearned, kTransient };

/// Breakdown of an estimated external round trip (the terms of Eq. 2).
struct EcEstimate {
  double upload_seconds = 0.0;
  double ec_wait_seconds = 0.0;      ///< queueing behind earlier EC work
  double processing_seconds = 0.0;   ///< wall time on the EC cluster
  double download_seconds = 0.0;
  cbs::sim::SimTime finish = 0.0;    ///< absolute estimated completion (ft^ec)
};

/// The scheduler's belief about the state of both clouds — everything the
/// finish-time estimators ft^ic(i,S) and ft^ec(i,S) of §III.A condition on.
///
/// The belief is built only from information a real controller has: its own
/// placement decisions, the QRSM's service estimates, the EWMA bandwidth
/// estimates, and completion notifications. It never peeks at ground truth
/// (link noise state, realized service times); the gap between belief and
/// reality is exactly the estimation error whose consequences §IV.D
/// analyses.
class BeliefState {
 public:
  /// `*_job_parallelism` is how many machines one job's tasks can occupy
  /// at once (TopologyConfig::max_map_tasks_per_job clamped to the cluster
  /// size) — it divides the job's own service time, while the backlog
  /// always drains at full aggregate rate.
  BeliefState(const cbs::models::ProcessingTimeEstimator& service_estimator,
              const cbs::net::BandwidthEstimator& uplink_estimator,
              const cbs::net::BandwidthEstimator& downlink_estimator,
              std::size_t ic_machines, double ic_speed, std::size_t ec_machines,
              double ec_speed, int ic_job_parallelism = 1,
              int ec_job_parallelism = 1, double ec_job_overhead_seconds = 0.0);

  /// Fork support: copies `src`'s believed state wholesale, rebinding the
  /// estimator references to the fork's clones. Pure value copy otherwise.
  BeliefState(const BeliefState& src,
              const cbs::models::ProcessingTimeEstimator& service_estimator,
              const cbs::net::BandwidthEstimator& uplink_estimator,
              const cbs::net::BandwidthEstimator& downlink_estimator);

  /// Estimated standard-machine service seconds for a document (t^e(i)).
  [[nodiscard]] double estimate_service(const cbs::workload::Document& doc) const;

  /// ft^ic: estimated absolute completion time if `doc` were appended to
  /// the internal queue now. The cluster is modeled as draining its
  /// estimated backlog at aggregate rate (machines × speed) — accurate for
  /// the map-task-granular FCFS dispatch the controller uses.
  [[nodiscard]] cbs::sim::SimTime ft_ic(const cbs::workload::Document& doc,
                                        cbs::sim::SimTime now) const;

  /// ft^ec with the full round-trip breakdown: upload-queue drain + upload,
  /// EC backlog, processing, download (Eq. 2's terms).
  [[nodiscard]] EcEstimate ft_ec(const cbs::workload::Document& doc,
                                 cbs::sim::SimTime now) const;

  /// ft^ec ignoring all queueing (Algorithm 3, line 5: completion "under no
  /// load": t_up + e_ec + t_down).
  [[nodiscard]] double ec_round_trip_no_load(const cbs::workload::Document& doc,
                                             cbs::sim::SimTime now) const;

  /// The *job-level* ft^ec of Algorithm 1: the greedy scheduler evaluates
  /// each job against the state of the system as observed at batch arrival
  /// (`observed_upload_backlog_bytes` is the real upload queue then) — but
  /// it does NOT model the backlog its own earlier in-batch decisions are
  /// creating. This blind spot is precisely how greedy-bursted jobs end up
  /// on the critical path (§IV.D): each decision looks locally fine, and
  /// the queueing delay only materializes at download time.
  [[nodiscard]] EcEstimate ft_ec_job_level(
      const cbs::workload::Document& doc, cbs::sim::SimTime now,
      double observed_upload_backlog_bytes,
      double observed_download_backlog_bytes) const;

  /// Eq. 1: the cushion for the next job to be scheduled — the latest
  /// estimated completion among all outstanding (committed, not completed)
  /// jobs, which all precede it in the queue. `now` when nothing is ahead.
  ///
  /// O(1) amortized: the maximum believed EC finish is maintained
  /// incrementally (lazy-deletion max-heap updated on commit/complete/
  /// retract) instead of rescanned — the rescan made every Poisson batch
  /// O(n²) in outstanding jobs. `slack_bruteforce` is the O(n) reference.
  [[nodiscard]] cbs::sim::SimTime slack(cbs::sim::SimTime now) const;

  /// Reference implementation of `slack` that rescans every believed EC
  /// job. Exists so property tests can pin the incremental structure
  /// against it under arbitrary commit/complete/retract sequences; not for
  /// production call sites.
  [[nodiscard]] cbs::sim::SimTime slack_bruteforce(cbs::sim::SimTime now) const;

  /// Estimated drain time of the internal cloud (absolute).
  [[nodiscard]] cbs::sim::SimTime ic_drain_time(cbs::sim::SimTime now) const;

  /// Estimated IC backlog in standard seconds (Algorithm 3's iload, as
  /// wall-clock seconds once divided by capacity).
  [[nodiscard]] double ic_backlog_standard_seconds() const noexcept {
    return ic_outstanding_seconds_;
  }

  // ---- Commitments (called by the controller as decisions are made) ----

  /// Records an IC placement of `seq` with the given service estimate.
  void commit_ic(std::uint64_t seq, double estimated_service);
  /// Records an EC placement with its round-trip estimate.
  void commit_ec(std::uint64_t seq, const cbs::workload::Document& doc,
                 const EcEstimate& estimate);

  // ---- Observations (completion notifications) ----

  void on_ic_complete(std::uint64_t seq);
  void on_ec_complete(std::uint64_t seq);
  /// An upload finished; removes its bytes from the believed upload backlog.
  void on_upload_complete(double bytes);

  /// Moves a job between clouds (rescheduler support). The caller supplies
  /// the new estimate for the receiving side.
  void retract_ic(std::uint64_t seq);
  void retract_ec(std::uint64_t seq, double pending_upload_bytes);

  [[nodiscard]] std::size_t outstanding_ic_jobs() const noexcept {
    return ic_jobs_.size();
  }
  [[nodiscard]] std::size_t outstanding_ec_jobs() const noexcept {
    return ec_jobs_.size();
  }
  [[nodiscard]] double upload_backlog_bytes() const noexcept {
    return upload_backlog_bytes_;
  }

  void set_bandwidth_view(BandwidthView view) noexcept { view_ = view; }
  [[nodiscard]] BandwidthView bandwidth_view() const noexcept { return view_; }

  /// Elastic EC support: the believed external machine count follows the
  /// actual provisioning level.
  void set_ec_machines(std::size_t machines) noexcept {
    if (machines > 0) ec_machines_ = machines;
  }
  [[nodiscard]] std::size_t ec_machines() const noexcept { return ec_machines_; }

  /// Proactive-resilience risk pricing: believed EC processing time scales
  /// by (1 + factor), so every scheduler that consults ft_ec /
  /// ft_ec_job_level / ec_round_trip_no_load prices predicted EC failure
  /// risk into its burst decision. 0 (the default) is an exact no-op.
  void set_ec_risk_factor(double factor) noexcept {
    ec_risk_factor_ = factor < 0.0 ? 0.0 : factor;
  }
  [[nodiscard]] double ec_risk_factor() const noexcept { return ec_risk_factor_; }

 private:
  [[nodiscard]] double ic_capacity() const noexcept {
    return static_cast<double>(ic_machines_) * ic_speed_;
  }
  [[nodiscard]] double ec_capacity() const noexcept {
    return static_cast<double>(ec_machines_) * ec_speed_;
  }

  [[nodiscard]] double upload_seconds_for(cbs::sim::SimTime t,
                                          double bytes) const;
  [[nodiscard]] double download_seconds_for(cbs::sim::SimTime t,
                                            double bytes) const;

  const cbs::models::ProcessingTimeEstimator& service_estimator_;
  const cbs::net::BandwidthEstimator& uplink_;
  const cbs::net::BandwidthEstimator& downlink_;
  std::size_t ic_machines_;
  double ic_speed_;
  std::size_t ec_machines_;
  double ec_speed_;
  double ic_job_rate_;  ///< speed × job parallelism on the IC
  double ec_job_rate_;  ///< speed × job parallelism on the EC
  double ec_job_overhead_;  ///< fixed wall-clock overhead per EC job

  // Outstanding IC jobs: seq -> estimated standard seconds.
  cbs::util::FlatMap<std::uint64_t, double> ic_jobs_;
  double ic_outstanding_seconds_ = 0.0;
  // Outstanding EC jobs: seq -> (estimated absolute completion, estimated
  // EC processing seconds still ahead of the store).
  struct EcJob {
    cbs::sim::SimTime est_finish = 0.0;
    double processing_seconds = 0.0;
  };
  cbs::util::FlatMap<std::uint64_t, EcJob> ec_jobs_;
  /// Lazy-deletion max-heap over (est_finish, seq) of the believed EC jobs.
  /// Completions/retractions leave stale records; slack() pops them when
  /// they surface (an entry is live iff ec_jobs_[seq].est_finish matches),
  /// and commit_ec compacts when stale records dominate. `mutable` because
  /// popping stale tops is a read-side maintenance step.
  mutable std::vector<std::pair<cbs::sim::SimTime, std::uint64_t>> ec_finish_heap_;
  double ec_outstanding_seconds_ = 0.0;
  double upload_backlog_bytes_ = 0.0;
  BandwidthView view_ = BandwidthView::kLearned;
  double ec_risk_factor_ = 0.0;  ///< believed-EC inflation, (1 + factor)
};

}  // namespace cbs::core
