#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/link.hpp"
#include "util/flat_map.hpp"
#include "net/thread_tuner.hpp"
#include "simcore/callback.hpp"
#include "simcore/simulation.hpp"

namespace cbs::core {

/// The asynchronous transfer stage of the pipelined architecture (Fig. 5):
/// a set of FIFO classes feeding one Link, one active transfer slot per
/// class. With one class this is the plain upload (or download) queue used
/// by the Greedy/Op schedulers; with three classes and per-batch size
/// bounds it implements Algorithm 3's small/medium/large splitting.
///
/// Ride-up policy (§IV.C): when a class's slot frees and its own queue is
/// empty, it serves the head of the nearest *lower* class — small jobs may
/// use the medium/large pipes, large jobs may never block the small pipe.
///
/// The set holds at most `num_classes × slots_per_class` transfers in
/// flight on the link, and tells the link so at construction
/// (Link::reserve_transfers) — the link's hot/cold transfer tables then
/// never reallocate in steady state.
class TransferQueueSet {
 public:
  /// Fired when a job's transfer completes; `klass` is the queue class the
  /// item was *enqueued* to (not the slot that carried it). Move-only: the
  /// handler is a set-once hook owned by this queue set, never copied.
  using CompletionHandler = cbs::sim::UniqueFunction<void(
      std::uint64_t tag, int klass, const cbs::net::TransferRecord&)>;

  TransferQueueSet(cbs::sim::Simulation& sim, cbs::net::Link& link,
                   cbs::net::ThreadTuner& tuner, int num_classes,
                   int slots_per_class = 1);
  TransferQueueSet(const TransferQueueSet&) = delete;
  TransferQueueSet& operator=(const TransferQueueSet&) = delete;

  /// Fork support: copies `src`'s queues and active bookkeeping into a set
  /// bound to the forked `link`/`tuner`. Registers its completion handler
  /// on `link` — construction order relative to other handler owners must
  /// match the source link so slot indices line up. The set-once
  /// on_complete_ hook is NOT copied; the owner re-registers it. The set
  /// schedules no events of its own (the link owns the transfer events).
  TransferQueueSet(cbs::sim::Simulation& dst, const TransferQueueSet& src,
                   cbs::net::Link& link, cbs::net::ThreadTuner& tuner);

  void set_on_complete(CompletionHandler handler) {
    on_complete_ = std::move(handler);
  }

  /// Enqueues `bytes` for transfer under caller tag `tag` into `klass`.
  void enqueue(std::uint64_t tag, double bytes, int klass);

  /// Cancels a *queued* (not yet started) item. Returns true on success;
  /// false when the item already started or is unknown — the §IV.D
  /// rescheduler uses this to pull jobs back before upload begins.
  bool try_cancel(std::uint64_t tag);

  /// Cancels an *in-flight* transfer: the underlying link transfer is
  /// aborted (progress wasted) and the slot freed. Returns false for an
  /// unknown tag. The burst-retraction policy uses this when a job must be
  /// reclaimed after its upload already started.
  bool try_cancel_active(std::uint64_t tag);

  /// Bytes waiting or in flight, per class (Algorithm 3's s_up/m_up/l_up).
  [[nodiscard]] std::vector<double> backlog_bytes_per_class() const;
  [[nodiscard]] double total_backlog_bytes() const;
  [[nodiscard]] int num_classes() const noexcept {
    return static_cast<int>(queues_.size());
  }
  [[nodiscard]] bool idle() const;
  [[nodiscard]] std::size_t queued_items() const;
  [[nodiscard]] std::size_t active_items() const noexcept { return active_count_; }

  /// Tags currently waiting (not started), youngest class first — the
  /// rescheduler scans these for pull-back candidates.
  [[nodiscard]] std::vector<std::uint64_t> queued_tags() const;

 private:
  struct Item {
    std::uint64_t tag;
    double bytes;
    int klass;
  };

  struct Slot {
    bool busy = false;
  };

  struct ActiveItem {
    Item item;
    int slot_klass = 0;        ///< class whose slot carries it (ride-up)
    std::size_t slot = 0;
    cbs::net::TransferId transfer{};
  };

  void pump();
  void release_slot(const ActiveItem& active);
  void on_link_complete(std::uint64_t tag, const cbs::net::TransferRecord& rec);
  [[nodiscard]] int pick_queue_for_class(int klass) const;

  cbs::sim::Simulation& sim_;
  cbs::net::Link& link_;
  cbs::net::ThreadTuner& tuner_;
  std::vector<std::deque<Item>> queues_;
  std::vector<std::vector<Slot>> slots_;  // per class
  // Deterministic ascending-tag iteration, and cancellation needs tag
  // lookup; tags are monotonic so inserts are O(1) amortized appends.
  cbs::util::FlatMap<std::uint64_t, ActiveItem> active_;
  std::size_t active_count_ = 0;
  std::vector<double> active_bytes_per_class_;
  // cbs-lint: snapshot-complete-ok(owner re-wires set_on_complete post-fork)
  CompletionHandler on_complete_;
  int link_slot_ = -1;  ///< registered handler slot on link_
};

}  // namespace cbs::core
