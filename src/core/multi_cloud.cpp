#include "core/multi_cloud.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "simcore/snapshot.hpp"
#include "sla/slack.hpp"

namespace cbs::core {

using cbs::sim::SimTime;
using cbs::sla::Placement;

namespace {
std::string in_key(std::uint64_t seq) { return "in/" + std::to_string(seq); }
std::string out_key(std::uint64_t seq) { return "out/" + std::to_string(seq); }
}  // namespace

MultiCloudController::Site::Site(cbs::sim::Simulation& sim,
                                 const EcSiteConfig& cfg,
                                 const cbs::net::BandwidthEstimator::Config& est_cfg,
                                 const cbs::net::ThreadTuner::Config& tuner_cfg,
                                 cbs::sim::RngStream rng)
    : config(cfg),
      cluster(sim, cfg.name, cfg.machines, cfg.speed),
      runtime(sim, cluster),
      uplink(sim, cfg.uplink, rng.substream("up")),
      downlink(sim, cfg.downlink, rng.substream("down")),
      store(sim),
      uplink_estimator(est_cfg),
      downlink_estimator(est_cfg),
      up_tuner(tuner_cfg),
      down_tuner(tuner_cfg) {
  upload_queue = std::make_unique<TransferQueueSet>(sim, uplink, up_tuner, 1);
  download_queue =
      std::make_unique<TransferQueueSet>(sim, downlink, down_tuner, 1);
}

MultiCloudController::Site::Site(cbs::sim::Simulation& dst, const Site& src)
    : config(src.config),
      cluster(dst, src.cluster),
      runtime(dst, src.runtime, cluster),
      uplink(dst, src.uplink),
      downlink(dst, src.downlink),
      store(dst, src.store),
      uplink_estimator(src.uplink_estimator),
      downlink_estimator(src.downlink_estimator),
      up_tuner(src.up_tuner),
      down_tuner(src.down_tuner),
      believed_ec_outstanding_seconds(src.believed_ec_outstanding_seconds),
      believed_upload_backlog_bytes(src.believed_upload_backlog_bytes),
      bursts(src.bursts) {
  // Queue sets register their link handlers here, claiming slot 0 of each
  // link exactly as the primary constructor's order did; the probe
  // handlers (slot 1) are registered by wire_site_hooks().
  upload_queue =
      std::make_unique<TransferQueueSet>(dst, *src.upload_queue, uplink, up_tuner);
  download_queue = std::make_unique<TransferQueueSet>(dst, *src.download_queue,
                                                      downlink, down_tuner);
}

void MultiCloudController::Site::rebuild_events(cbs::sim::SnapshotContext& ctx) {
  uplink.rebuild_events(ctx);
  downlink.rebuild_events(ctx);
  cluster.rebuild_events(ctx);
  store.rebuild_events(ctx);
}

MultiCloudController::MultiCloudController(
    cbs::sim::Simulation& sim, MultiCloudConfig config,
    cbs::workload::GroundTruthModel& truth,
    const cbs::models::ProcessingTimeEstimator& estimator,
    cbs::sim::RngStream rng)
    : sim_(sim),
      config_(std::move(config)),
      truth_(truth),
      estimator_(estimator),
      log_("multi-cloud", config_.log_threshold),
      ic_cluster_(sim, "ic", config_.ic.ic_machines, config_.ic.ic_speed),
      ic_runtime_(sim, ic_cluster_) {
  assert(!config_.sites.empty() && "need at least one external site");
  if (config_.log_sink) log_.set_sink(config_.log_sink);
  for (std::size_t i = 0; i < config_.sites.size(); ++i) {
    sites_.push_back(std::make_unique<Site>(
        sim, config_.sites[i], config_.bandwidth_estimator,
        config_.thread_tuner, rng.substream(i)));
    wire_site_hooks(i);
    if (config_.resilience.enabled()) {
      site_hazards_.emplace_back(config_.resilience.hazard,
                                 config_.sites[i].machines, sim.now());
    }
  }
  ic_cluster_.set_task_done_hook([this] { dispatch_ic(); });
  ic_runtime_.set_on_complete(
      [this](const compute::MapReduceRecord& rec) { on_ic_done(rec.job_id); });
}

MultiCloudController::MultiCloudController(
    cbs::sim::Simulation& dst, const MultiCloudController& src,
    cbs::workload::GroundTruthModel& truth,
    const cbs::models::ProcessingTimeEstimator& estimator)
    : sim_(dst),
      config_(src.config_),
      truth_(truth),
      estimator_(estimator),
      log_("multi-cloud", config_.log_threshold),
      ic_cluster_(dst, src.ic_cluster_),
      ic_runtime_(dst, src.ic_runtime_, ic_cluster_),
      believed_ic_jobs_(src.believed_ic_jobs_),
      believed_ic_seconds_(src.believed_ic_seconds_),
      believed_ec_finishes_(src.believed_ec_finishes_),
      ec_finish_heap_(src.ec_finish_heap_),
      jobs_(src.jobs_),
      job_site_(src.job_site_),
      ic_wait_(src.ic_wait_),
      outcomes_(src.outcomes_),
      next_seq_(src.next_seq_),
      outstanding_(src.outstanding_),
      probe_scheduled_(src.probe_scheduled_),
      probe_event_(src.probe_event_) {
  site_hazards_ = src.site_hazards_;  // pure value state, plain copy
  if (config_.log_sink) log_.set_sink(config_.log_sink);
  for (std::size_t i = 0; i < src.sites_.size(); ++i) {
    sites_.push_back(std::make_unique<Site>(dst, *src.sites_[i]));
    wire_site_hooks(i);
    assert(sites_[i]->probe_up_slot == src.sites_[i]->probe_up_slot);
    assert(sites_[i]->probe_down_slot == src.sites_[i]->probe_down_slot);
  }
  ic_cluster_.set_task_done_hook([this] { dispatch_ic(); });
  ic_runtime_.set_on_complete(
      [this](const compute::MapReduceRecord& rec) { on_ic_done(rec.job_id); });
}

void MultiCloudController::wire_site_hooks(std::size_t site_idx) {
  Site& site = *sites_[site_idx];
  const std::size_t i = site_idx;
  site.upload_queue->set_on_complete(
      [this, i](std::uint64_t seq, int, const net::TransferRecord& rec) {
        on_upload_done(i, seq, rec);
      });
  site.download_queue->set_on_complete(
      [this, i](std::uint64_t seq, int, const net::TransferRecord& rec) {
        on_download_done(i, seq, rec);
      });
  site.runtime.set_on_complete([this, i](const compute::MapReduceRecord& rec) {
    on_site_proc_done(i, rec.job_id);
  });
  site.probe_up_slot = site.uplink.register_handler(
      [this, i](std::uint64_t, const net::TransferRecord& rec) {
        Site& s = *sites_[i];
        s.uplink_estimator.observe(sim_.now(), rec.transfer_rate());
        s.up_tuner.report(sim_.now(), rec.threads, rec.transfer_rate());
      });
  site.probe_down_slot = site.downlink.register_handler(
      [this, i](std::uint64_t, const net::TransferRecord& rec) {
        Site& s = *sites_[i];
        s.downlink_estimator.observe(sim_.now(), rec.transfer_rate());
        s.down_tuner.report(sim_.now(), rec.threads, rec.transfer_rate());
      });
}

void MultiCloudController::rebuild_events(cbs::sim::SnapshotContext& ctx) {
  ic_cluster_.rebuild_events(ctx);
  for (auto& site : sites_) site->rebuild_events(ctx);
  if (probe_scheduled_) {
    probe_event_ = ctx.restore(probe_event_, [this] { probe(); });
  }
}

Job& MultiCloudController::job_at(std::uint64_t seq) {
  auto it = jobs_.find(seq);
  assert(it != jobs_.end());
  return it->second;
}

MultiCloudController::SiteEstimate MultiCloudController::ft_site(
    std::size_t site_idx, const cbs::workload::Document& doc,
    SimTime now) const {
  const Site& site = *sites_[site_idx];
  SiteEstimate e;
  e.site = site_idx;
  e.upload_seconds = site.uplink_estimator.estimate_transfer_seconds(
      now, site.believed_upload_backlog_bytes + doc.input_bytes());
  const SimTime upload_done = now + e.upload_seconds;

  const double capacity =
      static_cast<double>(site.config.machines) * site.config.speed;
  const double drained = (upload_done - now) * capacity;
  const double backlog_left =
      std::max(0.0, site.believed_ec_outstanding_seconds - drained);
  e.processing_seconds = site.config.job_overhead_seconds +
                         estimator_.estimate_seconds(doc) / site.config.speed +
                         backlog_left / capacity;
  // Risk-weighted *where*: the predicted failure risk of this site's
  // machines inflates its believed processing term, steering placement
  // toward healthier providers (× 1.0 exactly when the predictor is off).
  e.processing_seconds *= 1.0 + config_.resilience.risk_weight *
                                    site_failure_risk(site_idx);
  const SimTime proc_done = upload_done + e.processing_seconds;
  e.download_seconds = site.downlink_estimator.estimate_transfer_seconds(
      proc_done, doc.output_bytes());
  e.finish = proc_done + e.download_seconds;
  return e;
}

MultiCloudController::SiteEstimate MultiCloudController::choose_site(
    const cbs::workload::Document& doc, SimTime now) const {
  SiteEstimate fastest = ft_site(0, doc, now);
  std::vector<SiteEstimate> all = {fastest};
  for (std::size_t s = 1; s < sites_.size(); ++s) {
    all.push_back(ft_site(s, doc, now));
    if (all.back().finish < fastest.finish) fastest = all.back();
  }
  if (config_.site_selection == SiteSelection::kFastest) return fastest;

  // kCheapestFeasible: among sites whose believed completion meets the
  // ticket promise, take the lowest price class; ties and infeasibility
  // resolve to the fastest round trip.
  cbs::sla::JobOutcome probe;
  probe.arrival = now;
  probe.input_mb = doc.features.size_mb;
  const SimTime deadline = config_.ticket_policy.deadline_for(probe);
  const SiteEstimate* cheapest = nullptr;
  for (const SiteEstimate& e : all) {
    if (e.finish > deadline) continue;
    if (cheapest == nullptr ||
        sites_[e.site]->config.price_per_machine_hour <
            sites_[cheapest->site]->config.price_per_machine_hour) {
      cheapest = &e;
    }
  }
  return cheapest != nullptr ? *cheapest : fastest;
}

SimTime MultiCloudController::slack(SimTime now) const {
  SimTime cushion = now;
  if (!believed_ic_jobs_.empty()) {
    cushion = std::max(
        cushion, now + believed_ic_seconds_ /
                           (static_cast<double>(config_.ic.ic_machines) *
                            config_.ic.ic_speed));
  }
  // Lazy-deletion max-heap mirror of believed_ec_finishes_; pop stale tops
  // (downloaded jobs) until a live maximum surfaces. Same scheme as
  // BeliefState::slack().
  while (!ec_finish_heap_.empty()) {
    const auto& [finish, seq] = ec_finish_heap_.front();
    const auto it = believed_ec_finishes_.find(seq);
    if (it != believed_ec_finishes_.end() && it->second == finish) {
      cushion = std::max(cushion, finish);
      break;
    }
    std::pop_heap(ec_finish_heap_.begin(), ec_finish_heap_.end());
    ec_finish_heap_.pop_back();
  }
  return cushion;
}

void MultiCloudController::on_batch(const cbs::workload::Batch& batch) {
  for (const auto& doc : batch.documents) {
    Job job;
    job.seq_id = next_seq_++;
    job.doc = doc;
    job.batch_index = batch.batch_index;
    job.arrival = sim_.now();
    job.scheduled_time = sim_.now();
    job.estimated_service_seconds = estimator_.estimate_seconds(doc);
    job.true_service_seconds = truth_.realized_seconds(doc);

    // *Where*: fastest, or cheapest meeting the job's SLA.
    const SiteEstimate best = choose_site(doc, sim_.now());
    // *When/how much*: the slackness admission rule (Eq. 1-2).
    if (cbs::sla::satisfies_slack(best.finish, slack(sim_.now()),
                                  config_.slack_safety_margin)) {
      place_site(std::move(job), best);
    } else {
      place_ic(std::move(job));
    }
  }
  dispatch_ic();
  ensure_probing();
}

void MultiCloudController::place_ic(Job&& job) {
  job.placement = Placement::kInternal;
  job.state = JobState::kIcWaiting;
  const std::uint64_t seq = job.seq_id;
  believed_ic_jobs_.emplace(seq, job.estimated_service_seconds);
  believed_ic_seconds_ += job.estimated_service_seconds;
  jobs_.emplace(seq, std::move(job));
  ic_wait_.push_back(seq);
  ++outstanding_;
}

void MultiCloudController::place_site(Job&& job, const SiteEstimate& estimate) {
  job.placement = Placement::kExternal;
  job.state = JobState::kUploadQueued;
  const std::uint64_t seq = job.seq_id;
  Site& site = *sites_[estimate.site];
  site.believed_upload_backlog_bytes += job.doc.input_bytes();
  site.believed_ec_outstanding_seconds += job.estimated_service_seconds;
  ++site.bursts;
  believed_ec_finishes_.emplace(seq, estimate.finish);
  if (ec_finish_heap_.size() > 2 * believed_ec_finishes_.size() + 64) {
    ec_finish_heap_.clear();
    for (const auto& [live_seq, finish] : believed_ec_finishes_) {
      ec_finish_heap_.emplace_back(finish, live_seq);
    }
    std::make_heap(ec_finish_heap_.begin(), ec_finish_heap_.end());
  }
  ec_finish_heap_.emplace_back(estimate.finish, seq);
  std::push_heap(ec_finish_heap_.begin(), ec_finish_heap_.end());
  job_site_.emplace(seq, estimate.site);
  const double bytes = job.doc.input_bytes();
  jobs_.emplace(seq, std::move(job));
  site.upload_queue->enqueue(seq, bytes, 0);
  ++outstanding_;
}

compute::MapReduceSpec MultiCloudController::spec_for(const Job& job) const {
  compute::MapReduceSpec spec;
  spec.job_id = job.seq_id;
  spec.total_map_seconds = job.true_service_seconds;
  spec.num_map_tasks = std::clamp(
      static_cast<int>(
          std::ceil(job.doc.features.size_mb / config_.ic.map_chunk_mb)),
      1, config_.ic.max_map_tasks_per_job);
  spec.merge_seconds =
      config_.ic.merge_seconds_per_output_mb * job.doc.output_size_mb;
  return spec;
}

void MultiCloudController::dispatch_ic() {
  while (!ic_wait_.empty() &&
         ic_cluster_.queued_tasks() < config_.ic.ic_machines) {
    const std::uint64_t seq = ic_wait_.front();
    ic_wait_.pop_front();
    Job& job = job_at(seq);
    job.state = JobState::kIcRunning;
    ic_runtime_.run(spec_for(job));
  }
}

void MultiCloudController::on_ic_done(std::uint64_t seq) {
  Job& job = job_at(seq);
  auto it = believed_ic_jobs_.find(seq);
  assert(it != believed_ic_jobs_.end());
  believed_ic_seconds_ = std::max(0.0, believed_ic_seconds_ - it->second);
  believed_ic_jobs_.erase(it);
  finish_job(job);
  dispatch_ic();
}

void MultiCloudController::on_upload_done(std::size_t site_idx,
                                          std::uint64_t seq,
                                          const net::TransferRecord& rec) {
  Site& site = *sites_[site_idx];
  site.uplink_estimator.observe(sim_.now(), rec.transfer_rate());
  site.up_tuner.report(sim_.now(), rec.threads, rec.transfer_rate());
  site.believed_upload_backlog_bytes =
      std::max(0.0, site.believed_upload_backlog_bytes - rec.bytes);

  Job& job = job_at(seq);
  job.state = JobState::kEcRunning;
  site.store.put(in_key(seq), rec.bytes);
  compute::MapReduceSpec spec = spec_for(job);
  spec.merge_seconds += site.config.job_overhead_seconds * site.config.speed;
  site.runtime.run(spec);
}

void MultiCloudController::on_site_proc_done(std::size_t site_idx,
                                             std::uint64_t seq) {
  Site& site = *sites_[site_idx];
  Job& job = job_at(seq);
  site.store.erase(in_key(seq));
  site.store.put(out_key(seq), job.doc.output_bytes());
  job.state = JobState::kDownloading;
  site.download_queue->enqueue(seq, job.doc.output_bytes(), 0);
}

void MultiCloudController::on_download_done(std::size_t site_idx,
                                            std::uint64_t seq,
                                            const net::TransferRecord& rec) {
  Site& site = *sites_[site_idx];
  site.downlink_estimator.observe(sim_.now(), rec.transfer_rate());
  site.down_tuner.report(sim_.now(), rec.threads, rec.transfer_rate());

  Job& job = job_at(seq);
  site.store.erase(out_key(seq));
  site.believed_ec_outstanding_seconds = std::max(
      0.0, site.believed_ec_outstanding_seconds - job.estimated_service_seconds);
  believed_ec_finishes_.erase(seq);
  finish_job(job);
}

void MultiCloudController::finish_job(Job& job) {
  job.state = JobState::kCompleted;
  job.completed_time = sim_.now();
  outcomes_.push_back(job.to_outcome());
  assert(outstanding_ > 0);
  --outstanding_;
}

void MultiCloudController::ensure_probing() {
  if (probe_scheduled_ || config_.probe_interval <= 0.0) return;
  probe_scheduled_ = true;
  probe_event_ = sim_.schedule_in(config_.probe_interval, [this] { probe(); });
}

void MultiCloudController::probe() {
  probe_scheduled_ = false;
  probe_event_ = cbs::sim::EventId{};
  if (outstanding_ == 0) return;
  for (auto& site_ptr : sites_) {
    Site& site = *site_ptr;
    const int up_threads = site.up_tuner.suggest(sim_.now());
    site.uplink.submit(config_.probe_bytes, up_threads, site.probe_up_slot, 0);
    const int down_threads = site.down_tuner.suggest(sim_.now());
    site.downlink.submit(config_.probe_bytes, down_threads,
                         site.probe_down_slot, 0);
  }
  ensure_probing();
}

// ---- proactive failure resilience (DESIGN.md §13) -----------------------

void MultiCloudController::report_site_failure(std::size_t site_idx,
                                               std::size_t machine) {
  Site& site = *sites_.at(site_idx);
  if (site_idx < site_hazards_.size()) {
    site_hazards_[site_idx].ensure_machines(site.cluster.machine_slots(),
                                            sim_.now());
    site_hazards_[site_idx].on_failure(machine, sim_.now());
  }
  site.cluster.crash_machine(machine);
  if (site_idx < site_hazards_.size()) update_site_drains(site_idx);
}

void MultiCloudController::report_site_recovery(std::size_t site_idx,
                                                std::size_t machine) {
  sites_.at(site_idx)->cluster.recover_machine(machine);
  if (site_idx < site_hazards_.size()) update_site_drains(site_idx);
}

double MultiCloudController::site_failure_risk(std::size_t site_idx) const {
  if (site_idx >= site_hazards_.size()) return 0.0;
  return models::mean_failure_probability(
      site_hazards_[site_idx], sim_.now(),
      config_.resilience.drain_window_seconds);
}

void MultiCloudController::update_site_drains(std::size_t site_idx) {
  const SimTime now = sim_.now();
  const cbs::sim::SimDuration window = config_.resilience.drain_window_seconds;
  models::VmHazardEstimator& hazard = site_hazards_[site_idx];
  compute::Cluster& cluster = sites_[site_idx]->cluster;
  hazard.settle(now);
  hazard.ensure_machines(cluster.machine_slots(), now);
  for (std::size_t m = 0; m < cluster.machine_slots(); ++m) {
    if (cluster.machine_retired(m)) continue;
    const double p = hazard.failure_probability(m, now, window);
    if (p >= config_.resilience.drain_threshold) {
      if (cluster.machine_drained(m) ||
          cluster.drain_machine(m, config_.resilience.preempt_on_drain)) {
        hazard.note_prediction(m, now, window);
      }
    } else if (cluster.machine_drained(m)) {
      cluster.undrain_machine(m);
    }
  }
}

std::vector<std::size_t> MultiCloudController::bursts_per_site() const {
  std::vector<std::size_t> out;
  out.reserve(sites_.size());
  for (const auto& site : sites_) out.push_back(site->bursts);
  return out;
}

}  // namespace cbs::core
