#include "core/order_preserving_scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "sla/slack.hpp"
#include "stats/summary.hpp"
#include "workload/chunker.hpp"

namespace cbs::core {

void OrderPreservingScheduler::apply_chunking(
    std::vector<cbs::workload::Document>& docs, Context& ctx) {
  const auto window = static_cast<std::size_t>(ctx.params.variability_window);
  const std::size_t original_size = docs.size();

  std::size_t i = 0;
  while (i < docs.size()) {
    // §VII non-uniform chunking: the effective target grows toward the
    // tail of the batch, trading availability for per-chunk overhead.
    cbs::workload::PdfChunker::Config chunk_cfg = ctx.params.chunker;
    if (ctx.params.position_aware_chunking && original_size > 1) {
      const double frac = static_cast<double>(std::min(i, original_size - 1)) /
                          static_cast<double>(original_size - 1);
      chunk_cfg.target_size_mb *=
          1.0 + (ctx.params.tail_chunk_scale - 1.0) * frac;
    }
    const cbs::workload::PdfChunker chunker(chunk_cfg);

    // σ(i : i+x) over the sizes of the upcoming window (lines 4–5).
    std::vector<double> sizes;
    for (std::size_t k = i; k < std::min(docs.size(), i + window); ++k) {
      sizes.push_back(docs[k].features.size_mb);
    }
    const double sigma = cbs::stats::stddev_of(sizes);

    if (sigma > ctx.params.variability_threshold_mb && !docs[i].is_chunk() &&
        chunker.chunk_count_for(docs[i].features.size_mb) > 1) {
      // Lines 6–9: replace j_i by its chunks, spliced in order.
      auto chunks = chunker.chunk(docs[i], ctx.truth, ctx.next_doc_id);
      docs.erase(docs.begin() + static_cast<std::ptrdiff_t>(i));
      docs.insert(docs.begin() + static_cast<std::ptrdiff_t>(i),
                  chunks.begin(), chunks.end());
      // Do not advance: the first chunk is re-examined (and, being a chunk,
      // will not be re-split).
      continue;
    }
    ++i;
  }
}

ScheduleDecision OrderPreservingScheduler::place(
    const cbs::workload::Document& doc, Context& ctx) {
  // Lines 11–16: burst exactly when the estimated external finish fits the
  // cushion of the jobs ahead.
  const EcEstimate ec = ctx.belief.ft_ec(doc, ctx.now);
  const cbs::sim::SimTime cushion = ctx.belief.slack(ctx.now);
  if (cbs::sla::satisfies_slack(ec.finish, cushion,
                                ctx.params.slack_safety_margin)) {
    return decide_ec(doc, ec, ctx);
  }
  return decide_ic(doc, ctx);
}

std::vector<ScheduleDecision> OrderPreservingScheduler::schedule_batch(
    std::vector<cbs::workload::Document> docs, Context& ctx) {
  apply_chunking(docs, ctx);
  std::vector<ScheduleDecision> out;
  out.reserve(docs.size());
  for (const auto& doc : docs) {
    out.push_back(place(doc, ctx));
  }
  return out;
}

}  // namespace cbs::core
