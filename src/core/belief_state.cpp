#include "core/belief_state.hpp"

#include <algorithm>
#include <cassert>

namespace cbs::core {

using cbs::sim::SimTime;

BeliefState::BeliefState(
    const cbs::models::ProcessingTimeEstimator& service_estimator,
    const cbs::net::BandwidthEstimator& uplink_estimator,
    const cbs::net::BandwidthEstimator& downlink_estimator,
    std::size_t ic_machines, double ic_speed, std::size_t ec_machines,
    double ec_speed, int ic_job_parallelism, int ec_job_parallelism,
    double ec_job_overhead_seconds)
    : service_estimator_(service_estimator),
      uplink_(uplink_estimator),
      downlink_(downlink_estimator),
      ic_machines_(ic_machines),
      ic_speed_(ic_speed),
      ec_machines_(ec_machines),
      ec_speed_(ec_speed) {
  assert(ic_machines > 0 && ic_speed > 0.0);
  assert(ec_machines > 0 && ec_speed > 0.0);
  assert(ic_job_parallelism >= 1 && ec_job_parallelism >= 1);
  assert(ec_job_overhead_seconds >= 0.0);
  ec_job_overhead_ = ec_job_overhead_seconds;
  ic_job_rate_ = ic_speed * static_cast<double>(std::min<std::size_t>(
                                ic_machines, static_cast<std::size_t>(
                                                 ic_job_parallelism)));
  ec_job_rate_ = ec_speed * static_cast<double>(std::min<std::size_t>(
                                ec_machines, static_cast<std::size_t>(
                                                 ec_job_parallelism)));
}

BeliefState::BeliefState(
    const BeliefState& src,
    const cbs::models::ProcessingTimeEstimator& service_estimator,
    const cbs::net::BandwidthEstimator& uplink_estimator,
    const cbs::net::BandwidthEstimator& downlink_estimator)
    : service_estimator_(service_estimator),
      uplink_(uplink_estimator),
      downlink_(downlink_estimator),
      ic_machines_(src.ic_machines_),
      ic_speed_(src.ic_speed_),
      ec_machines_(src.ec_machines_),
      ec_speed_(src.ec_speed_),
      ic_job_rate_(src.ic_job_rate_),
      ec_job_rate_(src.ec_job_rate_),
      ec_job_overhead_(src.ec_job_overhead_),
      ic_jobs_(src.ic_jobs_),
      ic_outstanding_seconds_(src.ic_outstanding_seconds_),
      ec_jobs_(src.ec_jobs_),
      ec_finish_heap_(src.ec_finish_heap_),
      ec_outstanding_seconds_(src.ec_outstanding_seconds_),
      upload_backlog_bytes_(src.upload_backlog_bytes_),
      view_(src.view_),
      ec_risk_factor_(src.ec_risk_factor_) {}

double BeliefState::estimate_service(const cbs::workload::Document& doc) const {
  return service_estimator_.estimate_seconds(doc);
}

double BeliefState::upload_seconds_for(SimTime t, double bytes) const {
  if (view_ == BandwidthView::kTransient) {
    return bytes / std::max(uplink_.last_observed(), 1.0);
  }
  return uplink_.estimate_transfer_seconds(t, bytes);
}

double BeliefState::download_seconds_for(SimTime t, double bytes) const {
  if (view_ == BandwidthView::kTransient) {
    return bytes / std::max(downlink_.last_observed(), 1.0);
  }
  return downlink_.estimate_transfer_seconds(t, bytes);
}

SimTime BeliefState::ic_drain_time(SimTime now) const {
  return now + ic_outstanding_seconds_ / ic_capacity();
}

SimTime BeliefState::ft_ic(const cbs::workload::Document& doc, SimTime now) const {
  const double est = estimate_service(doc);
  // Backlog drains at full aggregate rate; the new job's own work then
  // runs at the per-job rate (task-slot cap).
  return now + ic_outstanding_seconds_ / ic_capacity() + est / ic_job_rate_;
}

EcEstimate BeliefState::ft_ec(const cbs::workload::Document& doc,
                              SimTime now) const {
  EcEstimate e;
  // Upload: queued bytes ahead of us plus our own, at the believed rate.
  e.upload_seconds =
      upload_seconds_for(now, upload_backlog_bytes_ + doc.input_bytes());
  const SimTime upload_done = now + e.upload_seconds;

  // EC compute: outstanding believed work drains meanwhile; whatever is
  // left when our bytes land queues ahead of us.
  const double drained = (upload_done - now) * ec_capacity();
  const double backlog_left = std::max(0.0, ec_outstanding_seconds_ - drained);
  e.ec_wait_seconds = backlog_left / ec_capacity();
  // Risk pricing: predicted EC failure risk inflates the believed
  // processing term (× 1.0 exactly when the hazard predictor is off).
  e.processing_seconds =
      (ec_job_overhead_ + estimate_service(doc) / ec_job_rate_) *
      (1.0 + ec_risk_factor_);
  const SimTime proc_done =
      upload_done + e.ec_wait_seconds + e.processing_seconds;

  // Download of the (estimated) output at the believed downlink rate at
  // that future time — the l(t_i + t') term of Eq. 2.
  e.download_seconds = download_seconds_for(proc_done, doc.output_bytes());
  e.finish = proc_done + e.download_seconds;
  return e;
}

EcEstimate BeliefState::ft_ec_job_level(
    const cbs::workload::Document& doc, SimTime now,
    double observed_upload_backlog_bytes,
    double observed_download_backlog_bytes) const {
  EcEstimate e;
  e.upload_seconds = upload_seconds_for(
      now, observed_upload_backlog_bytes + doc.input_bytes());
  const SimTime upload_done = now + e.upload_seconds;
  const double drained = (upload_done - now) * ec_capacity();
  const double backlog_left = std::max(0.0, ec_outstanding_seconds_ - drained);
  e.ec_wait_seconds = backlog_left / ec_capacity();
  e.processing_seconds =
      (ec_job_overhead_ + estimate_service(doc) / ec_job_rate_) *
      (1.0 + ec_risk_factor_);
  const SimTime proc_done = upload_done + e.ec_wait_seconds + e.processing_seconds;
  e.download_seconds = download_seconds_for(
      proc_done, observed_download_backlog_bytes + doc.output_bytes());
  e.finish = proc_done + e.download_seconds;
  return e;
}

double BeliefState::ec_round_trip_no_load(const cbs::workload::Document& doc,
                                          SimTime now) const {
  const double up = upload_seconds_for(now, doc.input_bytes());
  const double proc =
      (ec_job_overhead_ + estimate_service(doc) / ec_job_rate_) *
      (1.0 + ec_risk_factor_);
  const double down = download_seconds_for(now + up + proc, doc.output_bytes());
  return up + proc + down;
}

SimTime BeliefState::slack(SimTime now) const {
  SimTime cushion = now;
  if (!ic_jobs_.empty()) {
    cushion = std::max(cushion, ic_drain_time(now));
  }
  // Pop stale heap tops (completed/retracted jobs, or a seq re-committed
  // with a different estimate) until a live maximum surfaces. Each stale
  // record is popped exactly once, so the amortized cost per slack() call
  // is O(1) heap maintenance.
  while (!ec_finish_heap_.empty()) {
    const auto& [finish, seq] = ec_finish_heap_.front();
    const auto it = ec_jobs_.find(seq);
    if (it != ec_jobs_.end() && it->second.est_finish == finish) {
      cushion = std::max(cushion, finish);
      break;
    }
    std::pop_heap(ec_finish_heap_.begin(), ec_finish_heap_.end());
    ec_finish_heap_.pop_back();
  }
  return cushion;
}

SimTime BeliefState::slack_bruteforce(SimTime now) const {
  SimTime cushion = now;
  if (!ic_jobs_.empty()) {
    cushion = std::max(cushion, ic_drain_time(now));
  }
  for (const auto& [seq, job] : ec_jobs_) {
    cushion = std::max(cushion, job.est_finish);
  }
  return cushion;
}

void BeliefState::commit_ic(std::uint64_t seq, double estimated_service) {
  assert(estimated_service >= 0.0);
  const bool inserted = ic_jobs_.emplace(seq, estimated_service).second;
  assert(inserted && "seq committed to IC twice");
  (void)inserted;
  ic_outstanding_seconds_ += estimated_service;
}

void BeliefState::commit_ec(std::uint64_t seq, const cbs::workload::Document& doc,
                            const EcEstimate& estimate) {
  const double proc_standard = estimate_service(doc);
  const bool inserted =
      ec_jobs_.emplace(seq, EcJob{estimate.finish, proc_standard}).second;
  assert(inserted && "seq committed to EC twice");
  (void)inserted;
  // Stale records (from completions/retractions) accumulate until they
  // surface in slack(); rebuild from the live table when they dominate so
  // churn-heavy runs stay bounded.
  if (ec_finish_heap_.size() > 2 * ec_jobs_.size() + 64) {
    ec_finish_heap_.clear();
    for (const auto& [live_seq, job] : ec_jobs_) {
      ec_finish_heap_.emplace_back(job.est_finish, live_seq);
    }
    std::make_heap(ec_finish_heap_.begin(), ec_finish_heap_.end());
  }
  ec_finish_heap_.emplace_back(estimate.finish, seq);
  std::push_heap(ec_finish_heap_.begin(), ec_finish_heap_.end());
  ec_outstanding_seconds_ += proc_standard;
  upload_backlog_bytes_ += doc.input_bytes();
}

void BeliefState::on_ic_complete(std::uint64_t seq) {
  auto it = ic_jobs_.find(seq);
  assert(it != ic_jobs_.end());
  ic_outstanding_seconds_ = std::max(0.0, ic_outstanding_seconds_ - it->second);
  ic_jobs_.erase(it);
}

void BeliefState::on_ec_complete(std::uint64_t seq) {
  auto it = ec_jobs_.find(seq);
  assert(it != ec_jobs_.end());
  ec_outstanding_seconds_ =
      std::max(0.0, ec_outstanding_seconds_ - it->second.processing_seconds);
  ec_jobs_.erase(it);
}

void BeliefState::on_upload_complete(double bytes) {
  upload_backlog_bytes_ = std::max(0.0, upload_backlog_bytes_ - bytes);
}

void BeliefState::retract_ic(std::uint64_t seq) {
  on_ic_complete(seq);  // identical bookkeeping: the work leaves the IC belief
}

void BeliefState::retract_ec(std::uint64_t seq, double pending_upload_bytes) {
  on_ec_complete(seq);
  on_upload_complete(pending_upload_bytes);
}

}  // namespace cbs::core
