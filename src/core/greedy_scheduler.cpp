#include "core/greedy_scheduler.hpp"

namespace cbs::core {

std::vector<ScheduleDecision> GreedyScheduler::schedule_batch(
    std::vector<cbs::workload::Document> docs, Context& ctx) {
  std::vector<ScheduleDecision> out;
  out.reserve(docs.size());
  for (const auto& doc : docs) {
    // Algorithm 1, lines 2-8: compare ft^ic with ft^ec and take the smaller.
    // Greedy sees the system's queues as they are (each decision enqueues
    // real bytes, so the upload backlog is live), but reads the network at
    // its transient value and never anticipates the *future* download
    // contention its bursts create beyond what is queued right now — the
    // §IV.D fragility.
    const cbs::sim::SimTime t_ic = ctx.belief.ft_ic(doc, ctx.now);
    const EcEstimate ec = ctx.belief.ft_ec_job_level(
        doc, ctx.now, ctx.belief.upload_backlog_bytes(),
        ctx.download_backlog_bytes);
    if (t_ic <= ec.finish) {
      out.push_back(decide_ic(doc, ctx));
    } else {
      out.push_back(decide_ec(doc, ec, ctx));
    }
  }
  return out;
}

}  // namespace cbs::core
