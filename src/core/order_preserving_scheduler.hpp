#pragma once

#include "core/scheduler.hpp"

namespace cbs::core {

/// Algorithm 2 — the Order Preserving scheduler: jobs should complete in
/// near-arrival order and no internal job should ever wait on a bursted
/// one. Two mechanisms:
///
///  1. *Variance-triggered chunking* (lines 3–10): while the standard
///     deviation of the next `variability_window` job sizes exceeds
///     `variability_threshold_mb`, the head job is pdfchunk()ed and the
///     chunks spliced into the list as ordinary jobs.
///  2. *Slack-gated bursting* (lines 11–16): a job is sent externally only
///     when its estimated round trip finishes within the cushion created
///     by the jobs ahead of it (Eq. 1–2) — so bursted jobs are never on
///     the believed critical path.
class OrderPreservingScheduler : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "order-preserving";
  }

  [[nodiscard]] std::vector<ScheduleDecision> schedule_batch(
      std::vector<cbs::workload::Document> docs, Context& ctx) override;
  [[nodiscard]] std::unique_ptr<Scheduler> clone() const override {
    return std::make_unique<OrderPreservingScheduler>();
  }

 protected:
  /// Placement for one job once chunking is settled; the bandwidth-split
  /// subclass overrides the upload-class choice by overriding this.
  [[nodiscard]] virtual ScheduleDecision place(
      const cbs::workload::Document& doc, Context& ctx);

  /// Runs Algorithm 2's chunking pass in place over the batch.
  static void apply_chunking(std::vector<cbs::workload::Document>& docs,
                             Context& ctx);
};

}  // namespace cbs::core
