#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "compute/cluster.hpp"
#include "compute/job_store.hpp"
#include "compute/mapreduce.hpp"
#include "core/config.hpp"
#include "core/job.hpp"
#include "core/upload_queues.hpp"
#include "util/flat_map.hpp"
#include "models/estimator.hpp"
#include "net/bandwidth_estimator.hpp"
#include "net/link.hpp"
#include "net/thread_tuner.hpp"
#include "simcore/logging.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "sla/job_outcome.hpp"
#include "sla/tickets.hpp"
#include "workload/arrival.hpp"
#include "workload/ground_truth.hpp"

namespace cbs::core {

/// One external cloud provider in the pool: its cluster and its own pipe
/// (providers differ in instance speed, cost class and path bandwidth —
/// the paper's intro: "one could possibly choose from a pool of Cloud
/// Providers at run-time depending on the input job's SLAs").
struct EcSiteConfig {
  std::string name = "ec";
  std::size_t machines = 2;
  double speed = 1.0;
  double job_overhead_seconds = 30.0;
  /// Relative price class (e.g. machine-hour list price) used by the
  /// cost-aware site selection; lower is cheaper.
  double price_per_machine_hour = 0.10;
  cbs::net::LinkConfig uplink{};
  cbs::net::LinkConfig downlink{};
};

/// How the controller answers the *where* question for a burst-admitted
/// job (§I: "depending on the input job's SLAs").
enum class SiteSelection : std::uint8_t {
  kFastest,          ///< earliest believed round-trip completion
  /// Cheapest provider whose believed completion still meets the job's
  /// ticket deadline; falls back to the fastest when none can.
  kCheapestFeasible,
};

/// Configuration of the multi-cloud controller.
struct MultiCloudConfig {
  TopologyConfig ic{};  ///< only the ic_* / map / merge fields are used
  std::vector<EcSiteConfig> sites;
  cbs::net::BandwidthEstimator::Config bandwidth_estimator{};
  cbs::net::ThreadTuner::Config thread_tuner{};
  /// Slack admission margin (Algorithm 2's τ), as in SchedulerParams.
  cbs::sim::SimDuration slack_safety_margin = 30.0;
  cbs::sim::SimDuration probe_interval = 150.0;
  double probe_bytes = 1.0e6;

  SiteSelection site_selection = SiteSelection::kFastest;
  /// Ticket promise used by kCheapestFeasible to define "meets the SLA".
  cbs::sla::TicketPolicy ticket_policy{};

  /// Proactive failure resilience (DESIGN.md §13): when the hazard
  /// predictor is on, each site keeps a per-VM hazard estimator, ft_site
  /// inflates the believed processing term by the site's predicted failure
  /// risk (risk-weighted *where*), and high-hazard machines are drained.
  ResilienceConfig resilience{};

  /// Per-run logging (see ControllerConfig::log_threshold/log_sink): each
  /// controller owns its Logger so concurrent runs stay independent.
  cbs::sim::LogLevel log_threshold = cbs::sim::LogLevel::kWarn;
  cbs::sim::Logger::Sink log_sink{};
};

/// The multi-EC generalization of the Order Preserving scheduler: the
/// *when/how-much* question is still answered by the slackness rule
/// (Eq. 1–2), and the *where* question by picking the provider with the
/// earliest believed round-trip completion for this job. Each site has its
/// own pipe, bandwidth model, thread tuner, upload/download queues and
/// staging store — sites are fully independent substrates.
///
/// Kept separate from CloudBurstController so the single-EC reproduction
/// path stays exactly as the paper describes it; this class is the §VII
/// extension ("our domain could use meta-brokering strategies while
/// bursting to multiple clouds").
class MultiCloudController {
 public:
  MultiCloudController(cbs::sim::Simulation& sim, MultiCloudConfig config,
                       cbs::workload::GroundTruthModel& truth,
                       const cbs::models::ProcessingTimeEstimator& estimator,
                       cbs::sim::RngStream rng);
  MultiCloudController(const MultiCloudController&) = delete;
  MultiCloudController& operator=(const MultiCloudController&) = delete;

  /// Fork support: deep-copies `src` into a controller bound to the (empty)
  /// engine `dst`, the fork's ground-truth model and estimator. Call
  /// rebuild_events() afterwards, then SnapshotContext::finish().
  MultiCloudController(cbs::sim::Simulation& dst,
                       const MultiCloudController& src,
                       cbs::workload::GroundTruthModel& truth,
                       const cbs::models::ProcessingTimeEstimator& estimator);

  /// Re-schedules all pending events owned by this controller after a fork.
  void rebuild_events(cbs::sim::SnapshotContext& ctx);

  void on_batch(const cbs::workload::Batch& batch);

  [[nodiscard]] const std::vector<cbs::sla::JobOutcome>& outcomes() const noexcept {
    return outcomes_;
  }
  [[nodiscard]] std::size_t outstanding_jobs() const noexcept { return outstanding_; }
  [[nodiscard]] std::size_t site_count() const noexcept { return sites_.size(); }
  [[nodiscard]] const compute::Cluster& ic_cluster() const noexcept {
    return ic_cluster_;
  }
  [[nodiscard]] const compute::Cluster& site_cluster(std::size_t site) const {
    return sites_.at(site)->cluster;
  }
  [[nodiscard]] const net::Link& site_uplink(std::size_t site) const {
    return sites_.at(site)->uplink;
  }
  /// Jobs bursted to each site over the run.
  [[nodiscard]] std::vector<std::size_t> bursts_per_site() const;

  // ---- proactive resilience (hazard-aware site selection) --------------

  /// External fault drivers report a machine crash / recovery on one site.
  /// With the predictor on, the crash feeds that site's hazard estimator
  /// and the drain policy re-evaluates; either way the site cluster's
  /// crash/recover machinery runs (task re-queued, machine down/up).
  void report_site_failure(std::size_t site, std::size_t machine);
  void report_site_recovery(std::size_t site, std::size_t machine);

  /// Mean predicted failure probability of `site`'s machines over the
  /// drain window; 0 when the predictor is off.
  [[nodiscard]] double site_failure_risk(std::size_t site) const;

  /// The per-site hazard estimator, or nullptr when the predictor is off.
  [[nodiscard]] const models::VmHazardEstimator* site_hazard(
      std::size_t site) const {
    return site < site_hazards_.size() ? &site_hazards_[site] : nullptr;
  }

 private:
  struct Site {
    explicit Site(cbs::sim::Simulation& sim, const EcSiteConfig& cfg,
                  const cbs::net::BandwidthEstimator::Config& est_cfg,
                  const cbs::net::ThreadTuner::Config& tuner_cfg,
                  cbs::sim::RngStream rng);

    /// Fork support: value-clones the whole substrate bound to `dst`.
    Site(cbs::sim::Simulation& dst, const Site& src);

    /// Re-schedules this site's pending events after a fork.
    void rebuild_events(cbs::sim::SnapshotContext& ctx);

    EcSiteConfig config;
    compute::Cluster cluster;
    compute::MapReduceRuntime runtime;
    net::Link uplink;
    net::Link downlink;
    compute::JobStore store;
    net::BandwidthEstimator uplink_estimator;
    net::BandwidthEstimator downlink_estimator;
    net::ThreadTuner up_tuner;
    net::ThreadTuner down_tuner;
    std::unique_ptr<TransferQueueSet> upload_queue;
    std::unique_ptr<TransferQueueSet> download_queue;
    // cbs-lint: snapshot-complete-ok(wire_site_hooks re-registers; asserted)
    int probe_up_slot = -1;    ///< registered probe handler on uplink
    // cbs-lint: snapshot-complete-ok(wire_site_hooks re-registers; asserted)
    int probe_down_slot = -1;  ///< registered probe handler on downlink

    // Belief about this site (scheduler-visible state only).
    double believed_ec_outstanding_seconds = 0.0;
    double believed_upload_backlog_bytes = 0.0;
    std::size_t bursts = 0;
  };

  struct SiteEstimate {
    std::size_t site = 0;
    double upload_seconds = 0.0;
    double processing_seconds = 0.0;
    double download_seconds = 0.0;
    cbs::sim::SimTime finish = 0.0;
  };

  [[nodiscard]] SiteEstimate ft_site(std::size_t site,
                                     const cbs::workload::Document& doc,
                                     cbs::sim::SimTime now) const;
  [[nodiscard]] SiteEstimate choose_site(const cbs::workload::Document& doc,
                                         cbs::sim::SimTime now) const;
  [[nodiscard]] cbs::sim::SimTime slack(cbs::sim::SimTime now) const;
  void place_ic(Job&& job);
  void place_site(Job&& job, const SiteEstimate& estimate);
  void dispatch_ic();
  void on_ic_done(std::uint64_t seq);
  void on_upload_done(std::size_t site, std::uint64_t seq,
                      const net::TransferRecord& rec);
  void on_site_proc_done(std::size_t site, std::uint64_t seq);
  void on_download_done(std::size_t site, std::uint64_t seq,
                        const net::TransferRecord& rec);
  void finish_job(Job& job);
  void ensure_probing();
  void probe();
  void update_site_drains(std::size_t site_idx);
  void wire_site_hooks(std::size_t site_idx);
  [[nodiscard]] Job& job_at(std::uint64_t seq);
  [[nodiscard]] compute::MapReduceSpec spec_for(const Job& job) const;

  cbs::sim::Simulation& sim_;
  MultiCloudConfig config_;
  cbs::workload::GroundTruthModel& truth_;
  const cbs::models::ProcessingTimeEstimator& estimator_;
  sim::Logger log_;

  compute::Cluster ic_cluster_;
  compute::MapReduceRuntime ic_runtime_;
  std::vector<std::unique_ptr<Site>> sites_;
  /// One hazard estimator per site (empty when the predictor is off).
  /// Pure value state: forks copy the vector, nothing re-registers.
  std::vector<models::VmHazardEstimator> site_hazards_;

  // IC belief (estimated standard seconds outstanding).
  cbs::util::FlatMap<std::uint64_t, double> believed_ic_jobs_;
  double believed_ic_seconds_ = 0.0;
  // Believed absolute finish of every outstanding bursted job.
  cbs::util::FlatMap<std::uint64_t, cbs::sim::SimTime> believed_ec_finishes_;
  /// Lazy-deletion max-heap over (finish, seq) mirroring
  /// believed_ec_finishes_ — same scheme as BeliefState::slack().
  mutable std::vector<std::pair<cbs::sim::SimTime, std::uint64_t>>
      ec_finish_heap_;

  cbs::util::FlatMap<std::uint64_t, Job> jobs_;
  cbs::util::FlatMap<std::uint64_t, std::size_t> job_site_;  ///< seq -> site index
  std::deque<std::uint64_t> ic_wait_;
  std::vector<cbs::sla::JobOutcome> outcomes_;
  std::uint64_t next_seq_ = 1;
  std::size_t outstanding_ = 0;
  bool probe_scheduled_ = false;
  cbs::sim::EventId probe_event_{};  ///< restored across forks
};

}  // namespace cbs::core
