#pragma once

#include <cstdint>
#include <string_view>

#include "simcore/time.hpp"
#include "sla/job_outcome.hpp"
#include "workload/document.hpp"

namespace cbs::core {

/// Lifecycle of a job inside the cloud-bursting pipeline (the asynchronous
/// queue network of Fig. 5: schedule → [upload → EC compute → download] or
/// [IC compute] → result queue).
enum class JobState : std::uint8_t {
  kArrived,       ///< in the central job queue, not yet scheduled
  kIcWaiting,     ///< assigned to IC, in the controller's feed queue
  kIcRunning,     ///< map/merge tasks executing on the internal cluster
  kUploadQueued,  ///< assigned to EC, waiting in an upload queue
  kUploading,
  kEcRunning,     ///< in the EC store / executing on the external cluster
  kDownloading,
  kCompleted,
};

[[nodiscard]] std::string_view to_string(JobState state) noexcept;

/// One schedulable job: a document plus pipeline bookkeeping. Created by
/// the controller when a batch arrives (after any Algorithm-2 chunking).
struct Job {
  std::uint64_t seq_id = 0;  ///< FCFS queue position, 1-based, global
  cbs::workload::Document doc;
  std::size_t batch_index = 0;
  cbs::sim::SimTime arrival = 0.0;
  cbs::sim::SimTime scheduled_time = 0.0;
  cbs::sim::SimTime completed_time = 0.0;
  JobState state = JobState::kArrived;
  cbs::sla::Placement placement = cbs::sla::Placement::kInternal;
  /// Realized standard-machine service seconds (ground-truth draw, fixed at
  /// scheduling time so IC and EC would execute identical work).
  double true_service_seconds = 0.0;
  /// The scheduler's estimate at decision time (QRSM prediction).
  double estimated_service_seconds = 0.0;

  [[nodiscard]] cbs::sla::JobOutcome to_outcome() const;
};

}  // namespace cbs::core
