#pragma once

#include "core/scheduler.hpp"

namespace cbs::core {

/// Algorithm 1 — the job-level greedy choice: each job goes where its
/// estimated finish time is earlier. Simple, but bursted jobs can land on
/// the critical path: a download delayed by a bandwidth dip directly delays
/// in-order consumption (§IV.D), which is what Fig. 7–10 penalize.
class GreedyScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "greedy"; }

  [[nodiscard]] std::vector<ScheduleDecision> schedule_batch(
      std::vector<cbs::workload::Document> docs, Context& ctx) override;
  [[nodiscard]] std::unique_ptr<Scheduler> clone() const override {
    return std::make_unique<GreedyScheduler>();
  }
};

}  // namespace cbs::core
