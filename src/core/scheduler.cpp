#include "core/scheduler.hpp"

#include <cassert>

#include "core/bandwidth_split.hpp"
#include "core/greedy_scheduler.hpp"
#include "core/order_preserving_scheduler.hpp"

namespace cbs::core {

ScheduleDecision decide_ic(const cbs::workload::Document& doc,
                           Scheduler::Context& ctx) {
  ScheduleDecision d;
  d.seq_id = (*ctx.next_seq)++;
  d.doc = doc;
  d.placement = cbs::sla::Placement::kInternal;
  d.estimated_service_seconds = ctx.belief.estimate_service(doc);
  ctx.belief.commit_ic(d.seq_id, d.estimated_service_seconds);
  return d;
}

ScheduleDecision decide_ec(const cbs::workload::Document& doc,
                           const EcEstimate& estimate, Scheduler::Context& ctx,
                           int upload_class) {
  ScheduleDecision d;
  d.seq_id = (*ctx.next_seq)++;
  d.doc = doc;
  d.placement = cbs::sla::Placement::kExternal;
  d.estimated_service_seconds = ctx.belief.estimate_service(doc);
  d.ec_estimate = estimate;
  d.upload_class = upload_class;
  ctx.belief.commit_ec(d.seq_id, doc, estimate);
  return d;
}

std::vector<ScheduleDecision> IcOnlyScheduler::schedule_batch(
    std::vector<cbs::workload::Document> docs, Context& ctx) {
  std::vector<ScheduleDecision> out;
  out.reserve(docs.size());
  for (const auto& doc : docs) out.push_back(decide_ic(doc, ctx));
  return out;
}

std::vector<ScheduleDecision> RandomScheduler::schedule_batch(
    std::vector<cbs::workload::Document> docs, Context& ctx) {
  if (!rng_) {
    rng_ = std::make_unique<cbs::sim::RngStream>(ctx.params.random_seed);
  }
  std::vector<ScheduleDecision> out;
  out.reserve(docs.size());
  for (const auto& doc : docs) {
    if (rng_->next_double() < ctx.params.random_burst_probability) {
      // Still record the believed round trip so the belief stays coherent;
      // the decision itself ignores it.
      out.push_back(decide_ec(doc, ctx.belief.ft_ec(doc, ctx.now), ctx));
    } else {
      out.push_back(decide_ic(doc, ctx));
    }
  }
  return out;
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kIcOnly:
      return std::make_unique<IcOnlyScheduler>();
    case SchedulerKind::kGreedy:
      return std::make_unique<GreedyScheduler>();
    case SchedulerKind::kOrderPreserving:
      return std::make_unique<OrderPreservingScheduler>();
    case SchedulerKind::kBandwidthSplit:
      return std::make_unique<BandwidthSplitScheduler>();
    case SchedulerKind::kRandom:
      return std::make_unique<RandomScheduler>();
    case SchedulerKind::kLookahead:
      // Inside the controller, lookahead falls back to order-preserving
      // placement; the actual per-batch candidate selection lives in the
      // harness LookaheadController, which forks the world instead.
      return std::make_unique<OrderPreservingScheduler>();
  }
  assert(false && "unknown scheduler kind");
  return nullptr;
}

}  // namespace cbs::core
