#include "core/bandwidth_split.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sla/slack.hpp"

namespace cbs::core {

std::optional<SizeIntervalBounds> compute_size_interval_bounds(
    const std::vector<cbs::workload::Document>& batch, const BeliefState& belief,
    cbs::sim::SimTime now, std::size_t ic_machines,
    const std::vector<double>& queue_backlog_bytes) {
  assert(queue_backlog_bytes.size() == 3);
  const auto n = static_cast<double>(ic_machines);

  // Lines 3–12: collect the sizes of burst-eligible jobs — those whose
  // no-load round trip fits within the believed IC drain horizon that keeps
  // growing as eligible jobs are (hypothetically) kept local.
  const double iload = belief.ic_backlog_standard_seconds() / n;
  double rload = 0.0;
  std::vector<double> eligible_sizes;  // the list L
  for (const auto& doc : batch) {
    const double t_ec = belief.ec_round_trip_no_load(doc, now);
    if (t_ec < iload + rload / n) {
      eligible_sizes.push_back(doc.features.size_mb);
      rload += belief.estimate_service(doc);
    }
  }
  if (eligible_sizes.empty()) return std::nullopt;

  // Line 13: normalized left-over capacity of each queue. An empty system
  // degenerates to equal thirds.
  const double total_backlog =
      queue_backlog_bytes[0] + queue_backlog_bytes[1] + queue_backlog_bytes[2];
  double leftover[3];
  if (total_backlog <= 0.0) {
    leftover[0] = leftover[1] = leftover[2] = 1.0;
  } else {
    for (int q = 0; q < 3; ++q) {
      leftover[q] = 1.0 - queue_backlog_bytes[static_cast<std::size_t>(q)] /
                              total_backlog;
    }
  }
  const double leftover_sum = leftover[0] + leftover[1] + leftover[2];
  assert(leftover_sum > 0.0);

  // Lines 14–17: sort L and cut it proportionally to the left-over shares;
  // the partition boundaries become the small/medium upper bounds.
  std::sort(eligible_sizes.begin(), eligible_sizes.end());
  const auto count = static_cast<double>(eligible_sizes.size());
  const auto small_count = static_cast<std::size_t>(
      std::floor(count * leftover[0] / leftover_sum));
  const auto medium_count = static_cast<std::size_t>(
      std::floor(count * leftover[1] / leftover_sum));

  SizeIntervalBounds bounds;
  if (small_count > 0) {
    bounds.small_upper_mb = eligible_sizes[small_count - 1];
  } else {
    bounds.small_upper_mb = eligible_sizes.front();
  }
  const std::size_t medium_last =
      std::min(eligible_sizes.size() - 1, small_count + std::max<std::size_t>(
                                                            medium_count, 1) -
                                              1);
  bounds.medium_upper_mb =
      std::max(eligible_sizes[medium_last], bounds.small_upper_mb);
  return bounds;
}

std::vector<ScheduleDecision> BandwidthSplitScheduler::schedule_batch(
    std::vector<cbs::workload::Document> docs, Context& ctx) {
  // Bound computation sees the batch *after* chunking — the chunks are the
  // uploadable units whose sizes the queues must balance.
  apply_chunking(docs, ctx);
  if (auto bounds = compute_size_interval_bounds(
          docs, ctx.belief, ctx.now, ctx.ic_machines,
          ctx.upload_class_backlog_bytes)) {
    bounds_ = *bounds;
  }

  std::vector<ScheduleDecision> out;
  out.reserve(docs.size());
  for (const auto& doc : docs) {
    out.push_back(place(doc, ctx));
  }
  return out;
}

ScheduleDecision BandwidthSplitScheduler::place(
    const cbs::workload::Document& doc, Context& ctx) {
  ScheduleDecision d = OrderPreservingScheduler::place(doc, ctx);
  if (d.placement == cbs::sla::Placement::kExternal) {
    d.upload_class = bounds_.class_of(doc.features.size_mb);
  }
  return d;
}

}  // namespace cbs::core
