#include "core/bandwidth_split.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sla/slack.hpp"

namespace cbs::core {

std::optional<SizeIntervalBounds> compute_size_interval_bounds(
    const std::vector<cbs::workload::Document>& batch, const BeliefState& belief,
    cbs::sim::SimTime now, std::size_t ic_machines,
    const std::vector<double>& queue_backlog_bytes) {
  std::vector<double> scratch;
  return compute_size_interval_bounds(batch, belief, now, ic_machines,
                                      queue_backlog_bytes, scratch);
}

std::optional<SizeIntervalBounds> compute_size_interval_bounds(
    const std::vector<cbs::workload::Document>& batch, const BeliefState& belief,
    cbs::sim::SimTime now, std::size_t ic_machines,
    const std::vector<double>& queue_backlog_bytes,
    std::vector<double>& scratch_sizes) {
  assert(queue_backlog_bytes.size() == 3);
  const auto n = static_cast<double>(ic_machines);

  // Lines 3–12: collect the sizes of burst-eligible jobs — those whose
  // no-load round trip fits within the believed IC drain horizon that keeps
  // growing as eligible jobs are (hypothetically) kept local.
  const double iload = belief.ic_backlog_standard_seconds() / n;
  double rload = 0.0;
  std::vector<double>& eligible_sizes = scratch_sizes;  // the list L
  eligible_sizes.clear();
  for (const auto& doc : batch) {
    const double t_ec = belief.ec_round_trip_no_load(doc, now);
    if (t_ec < iload + rload / n) {
      eligible_sizes.push_back(doc.features.size_mb);
      rload += belief.estimate_service(doc);
    }
  }
  if (eligible_sizes.empty()) return std::nullopt;

  // Line 13: normalized left-over capacity of each queue. An empty system
  // degenerates to equal thirds.
  const double total_backlog =
      queue_backlog_bytes[0] + queue_backlog_bytes[1] + queue_backlog_bytes[2];
  double leftover[3];
  if (total_backlog <= 0.0) {
    leftover[0] = leftover[1] = leftover[2] = 1.0;
  } else {
    for (int q = 0; q < 3; ++q) {
      leftover[q] = 1.0 - queue_backlog_bytes[static_cast<std::size_t>(q)] /
                              total_backlog;
    }
  }
  const double leftover_sum = leftover[0] + leftover[1] + leftover[2];
  assert(leftover_sum > 0.0);

  // Lines 14–17: cut L proportionally to the left-over shares; the
  // partition boundaries become the small/medium upper bounds. Both bounds
  // are order statistics of L, so nth_element selection yields values
  // identical to the former full sort at O(|L|) instead of O(|L| log |L|).
  const auto count = static_cast<double>(eligible_sizes.size());
  const auto small_count = static_cast<std::size_t>(
      std::floor(count * leftover[0] / leftover_sum));
  const auto medium_count = static_cast<std::size_t>(
      std::floor(count * leftover[1] / leftover_sum));

  // small bound: sorted[small_count-1], or the minimum when the small share
  // rounds to zero — both are the k_small-th order statistic.
  const std::size_t k_small = small_count > 0 ? small_count - 1 : 0;
  const std::size_t medium_last =
      std::min(eligible_sizes.size() - 1, small_count + std::max<std::size_t>(
                                                            medium_count, 1) -
                                              1);
  assert(medium_last >= k_small);
  const auto begin = eligible_sizes.begin();
  std::nth_element(begin, begin + static_cast<std::ptrdiff_t>(k_small),
                   eligible_sizes.end());
  SizeIntervalBounds bounds;
  bounds.small_upper_mb = eligible_sizes[k_small];
  if (medium_last > k_small) {
    // Everything right of k_small is >= the small bound after the first
    // selection, so the second selection can skip the prefix.
    std::nth_element(begin + static_cast<std::ptrdiff_t>(k_small) + 1,
                     begin + static_cast<std::ptrdiff_t>(medium_last),
                     eligible_sizes.end());
    bounds.medium_upper_mb =
        std::max(eligible_sizes[medium_last], bounds.small_upper_mb);
  } else {
    bounds.medium_upper_mb = bounds.small_upper_mb;
  }
  return bounds;
}

std::vector<ScheduleDecision> BandwidthSplitScheduler::schedule_batch(
    std::vector<cbs::workload::Document> docs, Context& ctx) {
  // Bound computation sees the batch *after* chunking — the chunks are the
  // uploadable units whose sizes the queues must balance.
  apply_chunking(docs, ctx);
  if (auto bounds = compute_size_interval_bounds(
          docs, ctx.belief, ctx.now, ctx.ic_machines,
          ctx.upload_class_backlog_bytes, size_scratch_)) {
    bounds_ = *bounds;
  }

  std::vector<ScheduleDecision> out;
  out.reserve(docs.size());
  for (const auto& doc : docs) {
    out.push_back(place(doc, ctx));
  }
  return out;
}

ScheduleDecision BandwidthSplitScheduler::place(
    const cbs::workload::Document& doc, Context& ctx) {
  ScheduleDecision d = OrderPreservingScheduler::place(doc, ctx);
  if (d.placement == cbs::sla::Placement::kExternal) {
    d.upload_class = bounds_.class_of(doc.features.size_mb);
  }
  return d;
}

}  // namespace cbs::core
