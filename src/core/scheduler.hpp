#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/belief_state.hpp"
#include "core/config.hpp"
#include "simcore/time.hpp"
#include "sla/job_outcome.hpp"
#include "workload/chunker.hpp"
#include "workload/document.hpp"
#include "simcore/rng.hpp"
#include "workload/ground_truth.hpp"

namespace cbs::core {

/// One placement decision produced by a scheduler. After Algorithm-2
/// chunking, a single arriving document may yield several decisions.
struct ScheduleDecision {
  std::uint64_t seq_id = 0;  ///< FCFS queue position assigned by the scheduler
  cbs::workload::Document doc;
  cbs::sla::Placement placement = cbs::sla::Placement::kInternal;
  double estimated_service_seconds = 0.0;
  /// Valid when placement == kExternal.
  EcEstimate ec_estimate{};
  /// Upload size-interval class (Algorithm 3); 0 for single-queue policies.
  int upload_class = 0;
};

/// The burst-scheduler strategy interface (§IV): given a freshly arrived
/// batch and the controller's belief state, decide when/where/how-much.
/// Implementations must assign sequence ids via ctx.next_seq and commit
/// every decision to ctx.belief, so that later in-batch decisions (and
/// later batches) see the load they just created.
class Scheduler {
 public:
  struct Context {
    cbs::sim::SimTime now = 0.0;
    BeliefState& belief;
    const SchedulerParams& params;
    /// For chunk output sizes (a deterministic, observable document
    /// property — not a hidden runtime quantity).
    const cbs::workload::GroundTruthModel& truth;
    std::uint64_t* next_seq;     ///< global FCFS position counter
    std::uint64_t* next_doc_id;  ///< id source for chunk documents
    std::size_t ic_machines = 1; ///< |IC| (Algorithm 3's n)
    /// Believed upload backlog per size-interval class (Algorithm 3's
    /// s_up/m_up/l_up); single-queue schedulers see one entry.
    std::vector<double> upload_class_backlog_bytes;
    /// Bytes waiting/in flight on the downlink at batch arrival.
    double download_backlog_bytes = 0.0;
  };

  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Decides placement for every document of the batch, in arrival order.
  [[nodiscard]] virtual std::vector<ScheduleDecision> schedule_batch(
      std::vector<cbs::workload::Document> docs, Context& ctx) = 0;

  /// Fork support: deep-copies the scheduler (including any per-run state,
  /// e.g. RandomScheduler's RNG position or BandwidthSplit's bounds).
  /// Returns nullptr when the concrete type does not support forking
  /// (ad-hoc test schedulers keep the default).
  [[nodiscard]] virtual std::unique_ptr<Scheduler> clone() const {
    return nullptr;
  }
};

/// Baseline: everything runs internally (the paper's "ICOnly" scheduler).
class IcOnlyScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "ic-only"; }
  [[nodiscard]] std::vector<ScheduleDecision> schedule_batch(
      std::vector<cbs::workload::Document> docs, Context& ctx) override;
  [[nodiscard]] std::unique_ptr<Scheduler> clone() const override {
    return std::make_unique<IcOnlyScheduler>();
  }
};

/// Model-free baseline: bursts each job with a fixed probability,
/// independent of estimates, queues or slack. §III argues that "even
/// imprecise estimates of remaining workload have been shown to have merit
/// ... relative to a random scheduler" — this is that comparator.
class RandomScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "random"; }
  [[nodiscard]] std::vector<ScheduleDecision> schedule_batch(
      std::vector<cbs::workload::Document> docs, Context& ctx) override;
  [[nodiscard]] std::unique_ptr<Scheduler> clone() const override {
    auto out = std::make_unique<RandomScheduler>();
    if (rng_) out->rng_ = std::make_unique<cbs::sim::RngStream>(*rng_);
    return out;
  }

 private:
  std::unique_ptr<cbs::sim::RngStream> rng_;  ///< lazily seeded from params
};

/// Factory for the four §IV/§V scheduler flavors.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind);

/// Shared helper: finalize an IC decision (estimate, commit, fill record).
[[nodiscard]] ScheduleDecision decide_ic(const cbs::workload::Document& doc,
                                         Scheduler::Context& ctx);

/// Shared helper: finalize an EC decision with the given round-trip
/// estimate.
[[nodiscard]] ScheduleDecision decide_ec(const cbs::workload::Document& doc,
                                         const EcEstimate& estimate,
                                         Scheduler::Context& ctx,
                                         int upload_class = 0);

}  // namespace cbs::core
