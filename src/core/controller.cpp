#include "core/controller.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "models/per_class_qrsm.hpp"
#include "simcore/snapshot.hpp"
#include "sla/slack.hpp"

namespace cbs::core {

using cbs::sim::SimTime;
using cbs::sla::Placement;

namespace {

std::unique_ptr<models::ProcessingTimeEstimator> make_estimator(
    EstimatorKind kind, const cbs::workload::GroundTruthModel& truth) {
  switch (kind) {
    case EstimatorKind::kQrsm:
      return std::make_unique<models::QrsmEstimator>();
    case EstimatorKind::kOracle:
      return std::make_unique<models::OracleEstimator>(truth);
    case EstimatorKind::kPerClassQrsm:
      return std::make_unique<models::PerClassQrsmEstimator>();
  }
  assert(false && "unknown estimator kind");
  return nullptr;
}

std::string input_key(std::uint64_t seq) { return "in/" + std::to_string(seq); }
std::string output_key(std::uint64_t seq) { return "out/" + std::to_string(seq); }

}  // namespace

CloudBurstController::CloudBurstController(cbs::sim::Simulation& sim,
                                           ControllerConfig config,
                                           cbs::workload::GroundTruthModel& truth,
                                           cbs::sim::RngStream rng)
    : sim_(sim),
      config_(std::move(config)),
      truth_(truth),
      log_("controller", config_.log_threshold),
      ic_cluster_(sim, "ic", config_.topology.ic_machines, config_.topology.ic_speed),
      ec_cluster_(sim, "ec", config_.topology.ec_machines, config_.topology.ec_speed),
      ic_runtime_(sim, ic_cluster_),
      ec_runtime_(sim, ec_cluster_),
      uplink_(sim, config_.uplink, rng.substream("uplink")),
      downlink_(sim, config_.downlink, rng.substream("downlink")),
      store_(sim, config_.store),
      uplink_estimator_(config_.bandwidth_estimator),
      downlink_estimator_(config_.bandwidth_estimator),
      up_tuner_(config_.thread_tuner),
      down_tuner_(config_.thread_tuner),
      proc_estimator_(make_estimator(config_.estimator, truth)),
      belief_(*proc_estimator_, uplink_estimator_, downlink_estimator_,
              config_.topology.ic_machines, config_.topology.ic_speed,
              config_.topology.ec_machines, config_.topology.ec_speed,
              config_.topology.max_map_tasks_per_job,
              config_.topology.max_map_tasks_per_job,
              config_.topology.ec_job_overhead_seconds),
      scheduler_(make_scheduler(config_.scheduler)),
      upload_queues_(sim, uplink_, up_tuner_,
                     config_.scheduler == SchedulerKind::kBandwidthSplit
                         ? config_.params.size_interval_queues
                         : 1,
                     config_.scheduler == SchedulerKind::kBandwidthSplit
                         ? 1
                         : config_.single_queue_upload_slots),
      download_queue_(sim, downlink_, down_tuner_, 1, config_.download_slots) {
  if (config_.log_sink) log_.set_sink(config_.log_sink);
  wire_hooks();
  if (config_.scheduler == SchedulerKind::kGreedy) {
    // Algorithm 1 conditions on "the current transit bandwidth" — the
    // transient reading, not the learned time-of-day model (§IV.D).
    belief_.set_bandwidth_view(BandwidthView::kTransient);
  }
  if (config_.faults.enabled()) {
    fault_plan_ = std::make_unique<sim::FaultPlan>(sim_, config_.faults,
                                                   rng.substream("faults"));
    fault_plan_->set_active([this] { return outstanding_ > 0; });
    fault_plan_->drive_vm_crashes(
        "ic", config_.topology.ic_machines, config_.faults.ic_vm_mtbf,
        [this](std::size_t m) { on_ic_crash(m); },
        [this](std::size_t m) { on_ic_recover(m); });
    fault_plan_->drive_vm_crashes(
        "ec", config_.topology.ec_machines, config_.faults.ec_vm_mtbf,
        [this](std::size_t m) { on_ec_crash(m); },
        [this](std::size_t m) { on_ec_recover(m); });
    fault_plan_->drive_outages(
        [this](const sim::OutageWindow&) { on_outage_begin(); },
        [this] { on_outage_end(); });
  }
  if (config_.resilience.enabled()) {
    ic_hazard_ = std::make_unique<models::VmHazardEstimator>(
        config_.resilience.hazard, config_.topology.ic_machines, sim_.now());
    ec_hazard_ = std::make_unique<models::VmHazardEstimator>(
        config_.resilience.hazard, config_.topology.ec_machines, sim_.now());
  }
}

CloudBurstController::CloudBurstController(cbs::sim::Simulation& dst,
                                           const CloudBurstController& src,
                                           cbs::workload::GroundTruthModel& truth)
    : sim_(dst),
      config_(src.config_),
      truth_(truth),
      log_("controller", config_.log_threshold),
      ic_cluster_(dst, src.ic_cluster_),
      ec_cluster_(dst, src.ec_cluster_),
      ic_runtime_(dst, src.ic_runtime_, ic_cluster_),
      ec_runtime_(dst, src.ec_runtime_, ec_cluster_),
      uplink_(dst, src.uplink_),
      downlink_(dst, src.downlink_),
      store_(dst, src.store_),
      uplink_estimator_(src.uplink_estimator_),
      downlink_estimator_(src.downlink_estimator_),
      up_tuner_(src.up_tuner_),
      down_tuner_(src.down_tuner_),
      proc_estimator_(src.proc_estimator_->clone(truth)),
      belief_(src.belief_, *proc_estimator_, uplink_estimator_,
              downlink_estimator_),
      scheduler_(src.scheduler_->clone()),
      upload_queues_(dst, src.upload_queues_, uplink_, up_tuner_),
      download_queue_(dst, src.download_queue_, downlink_, down_tuner_),
      jobs_(src.jobs_),
      ic_wait_(src.ic_wait_),
      outcomes_(src.outcomes_),
      next_seq_(src.next_seq_),
      next_doc_id_(src.next_doc_id_),
      outstanding_(src.outstanding_),
      probe_scheduled_(src.probe_scheduled_),
      pull_backs_(src.pull_backs_),
      push_outs_(src.push_outs_),
      stage_log_(src.stage_log_),
      elastic_check_scheduled_(src.elastic_check_scheduled_),
      pending_boots_(src.pending_boots_),
      scale_ups_(src.scale_ups_),
      scale_downs_(src.scale_downs_),
      probe_event_(src.probe_event_),
      elastic_event_(src.elastic_event_),
      boot_events_(src.boot_events_),
      next_boot_id_(src.next_boot_id_),
      burst_deadlines_(src.burst_deadlines_),
      retractions_(src.retractions_),
      probe_blackout_skips_(src.probe_blackout_skips_) {
  assert(proc_estimator_ != nullptr &&
         "estimator kind does not support forking");
  assert(scheduler_ != nullptr && "scheduler does not support forking");
  if (config_.log_sink) log_.set_sink(config_.log_sink);
  wire_hooks();
  // Slot indices are the cross-fork contract: pending transfers/ops carry
  // them, so registration order on the clone must reproduce the source's.
  assert(store_input_slot_ == src.store_input_slot_);
  assert(store_output_slot_ == src.store_output_slot_);
  assert(probe_up_slot_ == src.probe_up_slot_);
  assert(probe_down_slot_ == src.probe_down_slot_);
  for (const auto& entry : src.alt_schedulers_) {
    auto copy = entry.second->clone();
    assert(copy != nullptr);
    alt_schedulers_.emplace_back(entry.first, std::move(copy));
  }
  if (src.fault_plan_) {
    fault_plan_ = std::make_unique<sim::FaultPlan>(dst, *src.fault_plan_);
    fault_plan_->set_active([this] { return outstanding_ > 0; });
    // Hook indices follow the primary constructor's drive_vm_crashes()
    // order: IC (when driven) before EC (when driven).
    std::size_t idx = 0;
    if (config_.faults.ic_vm_mtbf > 0.0 && config_.topology.ic_machines > 0) {
      fault_plan_->rebind_cluster_hooks(
          idx++, [this](std::size_t m) { on_ic_crash(m); },
          [this](std::size_t m) { on_ic_recover(m); });
    }
    if (config_.faults.ec_vm_mtbf > 0.0 && config_.topology.ec_machines > 0) {
      fault_plan_->rebind_cluster_hooks(
          idx++, [this](std::size_t m) { on_ec_crash(m); },
          [this](std::size_t m) { on_ec_recover(m); });
    }
    fault_plan_->rebind_outage_hooks(
        [this](const sim::OutageWindow&) { on_outage_begin(); },
        [this] { on_outage_end(); });
  }
  if (src.ic_hazard_) {
    ic_hazard_ = std::make_unique<models::VmHazardEstimator>(*src.ic_hazard_);
    ec_hazard_ = std::make_unique<models::VmHazardEstimator>(*src.ec_hazard_);
  }
}

void CloudBurstController::wire_hooks() {
  upload_queues_.set_on_complete(
      [this](std::uint64_t seq, int, const net::TransferRecord& rec) {
        on_upload_done(seq, rec);
      });
  download_queue_.set_on_complete(
      [this](std::uint64_t seq, int, const net::TransferRecord& rec) {
        on_download_done(seq, rec);
      });
  ic_cluster_.set_task_done_hook([this] { dispatch_ic(); });
  ic_runtime_.set_on_complete(
      [this](const compute::MapReduceRecord& rec) { on_ic_done(rec.job_id); });
  ec_runtime_.set_on_complete([this](const compute::MapReduceRecord& rec) {
    on_ec_proc_done(rec.job_id);
  });
  if (config_.enable_rescheduler) {
    ic_cluster_.set_idle_hook([this](std::size_t) { maybe_pull_back(); });
  }
  // Link-handler registration order is part of the fork contract: the
  // transfer queue sets claimed slot 0 of each link during member
  // construction, so the probe handlers land on slot 1 in source and clone
  // alike.
  probe_up_slot_ = uplink_.register_handler(
      [this](std::uint64_t, const net::TransferRecord& rec) {
        uplink_estimator_.observe(sim_.now(), rec.transfer_rate());
        up_tuner_.report(sim_.now(), rec.threads, rec.transfer_rate());
      });
  probe_down_slot_ = downlink_.register_handler(
      [this](std::uint64_t, const net::TransferRecord& rec) {
        downlink_estimator_.observe(sim_.now(), rec.transfer_rate());
        down_tuner_.report(sim_.now(), rec.threads, rec.transfer_rate());
      });
  store_input_slot_ = store_.register_continuation(
      [this](std::uint64_t seq, bool ok, double) { on_input_staged(seq, ok); });
  store_output_slot_ = store_.register_continuation(
      [this](std::uint64_t seq, bool ok, double) { on_output_staged(seq, ok); });
}

void CloudBurstController::rebuild_events(cbs::sim::SnapshotContext& ctx) {
  uplink_.rebuild_events(ctx);
  downlink_.rebuild_events(ctx);
  ic_cluster_.rebuild_events(ctx);
  ec_cluster_.rebuild_events(ctx);
  store_.rebuild_events(ctx);
  if (fault_plan_) fault_plan_->rebuild_events(ctx);
  for (auto& entry : burst_deadlines_) {
    const std::uint64_t seq = entry.first;
    entry.second =
        ctx.restore(entry.second, [this, seq] { on_burst_deadline(seq); });
  }
  if (probe_scheduled_) {
    probe_event_ = ctx.restore(probe_event_, [this] { probe(); });
  }
  if (elastic_check_scheduled_) {
    elastic_event_ = ctx.restore(elastic_event_, [this] { elastic_check(); });
  }
  for (auto& entry : boot_events_) {
    const std::uint64_t boot_id = entry.first;
    entry.second =
        ctx.restore(entry.second, [this, boot_id] { on_boot_done(boot_id); });
  }
}

void CloudBurstController::pretrain(
    const std::vector<cbs::workload::Document>& docs,
    const std::vector<double>& observed_runtimes) {
  assert(docs.size() == observed_runtimes.size());
  if (auto* per_class =
          dynamic_cast<models::PerClassQrsmEstimator*>(proc_estimator_.get())) {
    per_class->pretrain(docs, observed_runtimes);
    return;
  }
  auto* qrsm = dynamic_cast<models::QrsmEstimator*>(proc_estimator_.get());
  if (qrsm == nullptr) return;  // oracle needs no training
  std::vector<cbs::workload::DocumentFeatures> features;
  features.reserve(docs.size());
  for (const auto& d : docs) features.push_back(d.features);
  qrsm->model().fit(features, observed_runtimes);
}

Job& CloudBurstController::job_at(std::uint64_t seq) {
  auto it = jobs_.find(seq);
  assert(it != jobs_.end());
  return it->second;
}

void CloudBurstController::on_batch(const cbs::workload::Batch& batch) {
  // Refresh the hazard picture before pricing this batch: drains, the
  // believed EC capacity and the risk factor all feed the decisions below.
  update_resilience();
  Scheduler::Context ctx{
      .now = sim_.now(),
      .belief = belief_,
      .params = config_.params,
      .truth = truth_,
      .next_seq = &next_seq_,
      .next_doc_id = &next_doc_id_,
      .ic_machines = config_.topology.ic_machines,
      .upload_class_backlog_bytes = upload_queues_.backlog_bytes_per_class(),
      .download_backlog_bytes = download_queue_.total_backlog_bytes(),
  };
  auto decisions = scheduler_->schedule_batch(batch.documents, ctx);

  for (auto& d : decisions) {
    Job job;
    job.seq_id = d.seq_id;
    job.doc = d.doc;
    job.batch_index = batch.batch_index;
    job.arrival = sim_.now();
    job.scheduled_time = sim_.now();
    job.placement = d.placement;
    job.estimated_service_seconds = d.estimated_service_seconds;
    // Realized service is a deterministic function of the document's
    // identity, so the job is identical work wherever (and under whichever
    // scheduler) it runs; only the simulated clusters consume this value.
    job.true_service_seconds = truth_.realized_seconds(d.doc);

    auto [it, inserted] = jobs_.emplace(d.seq_id, std::move(job));
    assert(inserted);
    ++outstanding_;

    if (d.placement == Placement::kInternal) {
      set_state(it->second, JobState::kIcWaiting);
      ic_wait_.push_back(d.seq_id);
    } else {
      set_state(it->second, JobState::kUploadQueued);
      upload_queues_.enqueue(d.seq_id, d.doc.input_bytes(), d.upload_class);
      arm_burst_deadline(d.seq_id);
    }
  }
  dispatch_ic();
  ensure_probing();
  ensure_elastic_check();
  if (fault_plan_) fault_plan_->ensure_armed();
  if (config_.enable_rescheduler && upload_queues_.idle()) {
    maybe_push_out();
  }
}

void CloudBurstController::on_batch_as(const cbs::workload::Batch& batch,
                                       SchedulerKind kind) {
  std::unique_ptr<Scheduler>* alt = nullptr;
  for (auto& entry : alt_schedulers_) {
    if (entry.first == kind) {
      alt = &entry.second;
      break;
    }
  }
  if (alt == nullptr) {
    alt_schedulers_.emplace_back(kind, make_scheduler(kind));
    alt = &alt_schedulers_.back().second;
  }
  std::swap(scheduler_, *alt);
  const BandwidthView saved_view = belief_.bandwidth_view();
  belief_.set_bandwidth_view(kind == SchedulerKind::kGreedy
                                 ? BandwidthView::kTransient
                                 : BandwidthView::kLearned);
  on_batch(batch);
  belief_.set_bandwidth_view(saved_view);
  std::swap(scheduler_, *alt);
}

compute::MapReduceSpec CloudBurstController::spec_for(const Job& job,
                                                      double merge_per_mb) const {
  compute::MapReduceSpec spec;
  spec.job_id = job.seq_id;
  spec.total_map_seconds = job.true_service_seconds;
  // Task granularity is capped by the per-job slot limit: with a cap of k,
  // splitting finer than k tasks cannot add concurrency, so we emit at most
  // k (equal) tasks.
  spec.num_map_tasks = std::clamp(
      static_cast<int>(
          std::ceil(job.doc.features.size_mb / config_.topology.map_chunk_mb)),
      1, config_.topology.max_map_tasks_per_job);
  spec.merge_seconds = merge_per_mb * job.doc.output_size_mb;
  return spec;
}

void CloudBurstController::dispatch_ic() {
  // Feed-ahead window: keep about one machine's worth of tasks queued, so
  // machines never starve while preserving the controller's ability to
  // reschedule jobs that have not started (the §IV.D strategies).
  while (!ic_wait_.empty() &&
         ic_cluster_.queued_tasks() < config_.topology.ic_machines) {
    const std::uint64_t seq = ic_wait_.front();
    ic_wait_.pop_front();
    run_on_ic(seq);
  }
  if (config_.enable_rescheduler && ic_wait_.empty() && ic_cluster_.idle()) {
    maybe_pull_back();
  }
}

void CloudBurstController::set_state(Job& job, JobState state) {
  job.state = state;
  if (config_.record_stage_log) {
    stage_log_.push_back(StageEvent{job.seq_id, state, sim_.now()});
  }
}

void CloudBurstController::run_on_ic(std::uint64_t seq) {
  Job& job = job_at(seq);
  set_state(job, JobState::kIcRunning);
  ic_runtime_.run(spec_for(job, config_.topology.merge_seconds_per_output_mb));
}

void CloudBurstController::on_ic_done(std::uint64_t seq) {
  Job& job = job_at(seq);
  belief_.on_ic_complete(seq);
  proc_estimator_->observe(job.doc, job.true_service_seconds);
  finish_job(job);
  dispatch_ic();
  // Each internal completion is a fresh look at the §IV.D condition: "when
  // the EC upload queue is idle and IC has jobs waiting to execute".
  if (config_.enable_rescheduler && upload_queues_.idle() && outstanding_ > 0) {
    maybe_push_out();
  }
}

void CloudBurstController::on_upload_done(std::uint64_t seq,
                                          const net::TransferRecord& rec) {
  disarm_burst_deadline(seq);  // past the retractable phase
  uplink_estimator_.observe(sim_.now(), rec.transfer_rate());
  up_tuner_.report(sim_.now(), rec.threads, rec.transfer_rate());
  belief_.on_upload_complete(rec.bytes);

  // Stage the input. With the store healthy this completes synchronously;
  // during an outage it retries with backoff, and a permanent failure
  // falls back to internal execution (the upload was wasted).
  store_.put_async(input_key(seq), rec.bytes, store_input_slot_, seq);

  if (config_.enable_rescheduler && upload_queues_.idle()) {
    maybe_push_out();
  }
}

void CloudBurstController::on_input_staged(std::uint64_t seq, bool ok) {
  if (ok) {
    start_ec_processing(seq);
  } else {
    readmit_to_ic(seq, 0.0, "input staging abandoned");
  }
}

void CloudBurstController::start_ec_processing(std::uint64_t seq) {
  Job& job = job_at(seq);
  set_state(job, JobState::kEcRunning);
  compute::MapReduceSpec spec =
      spec_for(job, config_.topology.merge_seconds_per_output_mb);
  // EMR job setup/staging occupies the executing instance; book it on the
  // merge task (speed-scaled so it costs the configured wall seconds).
  spec.merge_seconds +=
      config_.topology.ec_job_overhead_seconds * config_.topology.ec_speed;
  ec_runtime_.run(spec);
}

void CloudBurstController::on_ec_proc_done(std::uint64_t seq) {
  Job& job = job_at(seq);
  // The merge task already covered compression cost; swap input for the
  // compressed output in the store and ship it home.
  store_.erase(input_key(seq));
  store_.put_async(output_key(seq), job.doc.output_bytes(), store_output_slot_,
                   seq);
}

void CloudBurstController::on_output_staged(std::uint64_t seq, bool ok) {
  if (!ok) {
    // The result exists only on EC and cannot be staged for download:
    // the external execution is wasted, re-run internally.
    readmit_to_ic(seq, 0.0, "output staging abandoned");
    return;
  }
  Job& job = job_at(seq);
  set_state(job, JobState::kDownloading);
  download_queue_.enqueue(seq, job.doc.output_bytes(), 0);
}

void CloudBurstController::on_download_done(std::uint64_t seq,
                                            const net::TransferRecord& rec) {
  downlink_estimator_.observe(sim_.now(), rec.transfer_rate());
  down_tuner_.report(sim_.now(), rec.threads, rec.transfer_rate());

  Job& job = job_at(seq);
  store_.erase(output_key(seq));
  belief_.on_ec_complete(seq);
  proc_estimator_->observe(job.doc, job.true_service_seconds);
  finish_job(job);
}

void CloudBurstController::finish_job(Job& job) {
  set_state(job, JobState::kCompleted);
  job.completed_time = sim_.now();
  outcomes_.push_back(job.to_outcome());
  assert(outstanding_ > 0);
  --outstanding_;
  log_.debug(sim_.now(), "job ", job.seq_id, " done on ",
             cbs::sla::to_string(job.placement));
}

sla::CostInputs CloudBurstController::cost_inputs() const {
  sla::CostInputs in;
  in.ec_provisioned_machine_seconds = ec_cluster_.provisioned_machine_seconds();
  in.uplink_bytes = uplink_.total_bytes_delivered();
  in.downlink_bytes = downlink_.total_bytes_delivered();
  in.store_byte_seconds = store_.occupancy_byte_seconds();
  in.ic_machine_seconds = ic_cluster_.provisioned_machine_seconds();
  return in;
}

// ---- autonomic probing (§III.A.2) -----------------------------------

void CloudBurstController::ensure_probing() {
  if (probe_scheduled_ || config_.probe_interval <= 0.0) return;
  probe_scheduled_ = true;
  probe_event_ = sim_.schedule_in(config_.probe_interval, [this] { probe(); });
}

void CloudBurstController::probe() {
  probe_scheduled_ = false;
  probe_event_ = cbs::sim::EventId{};
  if (outstanding_ == 0) return;  // run over; stop generating events
  if (config_.faults.in_probe_blackout(sim_.now())) {
    // Probe infrastructure is down: skip the measurement but keep the
    // cadence, so the EWMA model simply goes stale for the window.
    ++probe_blackout_skips_;
    ensure_probing();
    return;
  }

  const int up_threads = up_tuner_.suggest(sim_.now());
  uplink_.submit(config_.probe_bytes, up_threads, probe_up_slot_, 0);
  const int down_threads = down_tuner_.suggest(sim_.now());
  downlink_.submit(config_.probe_bytes, down_threads, probe_down_slot_, 0);
  ensure_probing();
}

// ---- fault recovery: burst retraction (deadline / outage / staging) -----

void CloudBurstController::arm_burst_deadline(std::uint64_t seq) {
  if (config_.faults.retraction_deadline_factor <= 0.0) return;
  Job& job = job_at(seq);
  // Allow `factor` times the believed unloaded round trip for the upload
  // phase; past that, the burst is doing worse than the estimate that
  // justified it and an internal re-execution is the safer bet.
  const double round_trip = belief_.ec_round_trip_no_load(job.doc, sim_.now());
  double delay =
      config_.faults.retraction_deadline_factor * std::max(round_trip, 1.0);
  // Hazard-aware retraction: when the predictor sees EC failure risk, give
  // the burst proportionally less patience before pulling it home — the
  // expected cost of waiting out a predicted outage rises with the risk.
  if (ec_hazard_) delay /= (1.0 + belief_.ec_risk_factor());
  burst_deadlines_[seq] =
      sim_.schedule_in(delay, [this, seq] { on_burst_deadline(seq); });
}

void CloudBurstController::disarm_burst_deadline(std::uint64_t seq) {
  auto it = burst_deadlines_.find(seq);
  if (it == burst_deadlines_.end()) return;
  sim_.cancel(it->second);
  burst_deadlines_.erase(it);
}

void CloudBurstController::on_burst_deadline(std::uint64_t seq) {
  burst_deadlines_.erase(seq);
  Job& job = job_at(seq);
  // Only the upload phase is retractable: once the input is staged the
  // remaining EC work is believed cheaper than starting over internally.
  if (job.state != JobState::kUploadQueued) return;
  const bool cancelled = upload_queues_.try_cancel(seq) ||
                         upload_queues_.try_cancel_active(seq);
  assert(cancelled);
  (void)cancelled;
  readmit_to_ic(seq, job.doc.input_bytes(), "round-trip deadline exceeded");
}

void CloudBurstController::readmit_to_ic(std::uint64_t seq,
                                         double pending_upload_bytes,
                                         const char* why) {
  Job& job = job_at(seq);
  belief_.retract_ec(seq, pending_upload_bytes);
  belief_.commit_ic(seq, job.estimated_service_seconds);
  job.placement = Placement::kInternal;
  set_state(job, JobState::kIcWaiting);
  admit_ic_in_order(seq);
  ++retractions_;
  log_.info(sim_.now(), "burst retraction of job ", seq, ": ", why);
  dispatch_ic();
}

void CloudBurstController::admit_ic_in_order(std::uint64_t seq) {
  // Re-admission preserves FCFS: the job re-enters the IC feed queue at
  // its sequence position, not at the tail.
  const auto pos = std::lower_bound(ic_wait_.begin(), ic_wait_.end(), seq);
  ic_wait_.insert(pos, seq);
}

void CloudBurstController::on_outage_begin() {
  log_.warn(sim_.now(), "EC outage begins: links down, store unavailable");
  uplink_.set_outage(true);
  downlink_.set_outage(true);
  store_.set_available(false);
  // The outage is observable (connection resets): pull every upload that
  // has not started back to the IC instead of letting it queue into a
  // dead pipe. In-flight transfers keep their slot and resume — or hit
  // their retraction deadline — on their own.
  for (const std::uint64_t seq : upload_queues_.queued_tags()) {
    if (!upload_queues_.try_cancel(seq)) continue;
    disarm_burst_deadline(seq);
    readmit_to_ic(seq, job_at(seq).doc.input_bytes(), "EC outage observed");
  }
}

void CloudBurstController::on_outage_end() {
  log_.info(sim_.now(), "EC outage ends");
  uplink_.set_outage(false);
  downlink_.set_outage(false);
  store_.set_available(true);
}

// ---- proactive failure resilience (hazard prediction, DESIGN.md §13) ----

void CloudBurstController::on_ic_crash(std::size_t machine) {
  // Feed the estimator *before* applying the crash so the gap sample ends
  // exactly at the crash instant, then re-evaluate the proactive policy.
  if (ic_hazard_) ic_hazard_->on_failure(machine, sim_.now());
  ic_cluster_.crash_machine(machine);
  if (ic_hazard_) update_resilience();
}

void CloudBurstController::on_ic_recover(std::size_t machine) {
  ic_cluster_.recover_machine(machine);
  if (ic_hazard_) update_resilience();
}

void CloudBurstController::on_ec_crash(std::size_t machine) {
  if (ec_hazard_) {
    // Elastic EC may have grown the cluster since construction.
    ec_hazard_->ensure_machines(ec_cluster_.machine_slots(), sim_.now());
    ec_hazard_->on_failure(machine, sim_.now());
  }
  ec_cluster_.crash_machine(machine);
  if (ec_hazard_) update_resilience();
}

void CloudBurstController::on_ec_recover(std::size_t machine) {
  ec_cluster_.recover_machine(machine);
  if (ec_hazard_) update_resilience();
}

void CloudBurstController::update_resilience() {
  if (!ic_hazard_) return;
  const sim::SimTime now = sim_.now();
  // Expire stale crash predictions first so precision/recall bookkeeping
  // never credits a drain that simply outlived its window.
  ic_hazard_->settle(now);
  ec_hazard_->settle(now);
  update_cluster_drains(ic_cluster_, *ic_hazard_);
  update_cluster_drains(ec_cluster_, *ec_hazard_);
  // Fold the predicted EC outage risk into every believed-EC estimate via
  // a single lever: ft_ec and friends inflate their processing term by
  // (1 + risk_weight * mean failure probability). Drains are soft (they
  // re-route dispatch, not remove capacity), so the believed machine count
  // is left alone.
  belief_.set_ec_risk_factor(config_.resilience.risk_weight *
                             ec_failure_risk());
}

void CloudBurstController::update_cluster_drains(
    compute::Cluster& cluster, models::VmHazardEstimator& hazard) {
  const sim::SimTime now = sim_.now();
  const sim::SimDuration window = config_.resilience.drain_window_seconds;
  hazard.ensure_machines(cluster.machine_slots(), now);
  for (std::size_t m = 0; m < cluster.machine_slots(); ++m) {
    if (cluster.machine_retired(m)) continue;
    const double p = hazard.failure_probability(m, now, window);
    if (p >= config_.resilience.drain_threshold) {
      if (cluster.machine_drained(m) ||
          cluster.drain_machine(m, config_.resilience.preempt_on_drain)) {
        // Flag (or keep flagging) the machine as predicted-to-crash; the
        // estimator scores the prediction when the crash lands or the
        // window expires.
        hazard.note_prediction(m, now, window);
      }
    } else if (cluster.machine_drained(m)) {
      cluster.undrain_machine(m);
    }
  }
}

double CloudBurstController::ec_failure_risk() const {
  if (!ec_hazard_) return 0.0;
  return models::mean_failure_probability(
      *ec_hazard_, sim_.now(), config_.resilience.drain_window_seconds);
}

// ---- elastic EC scaling (§V.B.4 future work, behind a flag) -------------

void CloudBurstController::ensure_elastic_check() {
  if (!config_.elastic_ec.enabled || elastic_check_scheduled_) return;
  elastic_check_scheduled_ = true;
  elastic_event_ = sim_.schedule_in(config_.elastic_ec.check_interval,
                                    [this] { elastic_check(); });
}

void CloudBurstController::elastic_check() {
  elastic_check_scheduled_ = false;
  elastic_event_ = cbs::sim::EventId{};
  if (outstanding_ == 0) return;  // run over; let the simulation drain
  const ElasticEcConfig& e = config_.elastic_ec;

  const std::size_t provisioned = ec_cluster_.machine_count() + pending_boots_;
  // Believed wait of a newly arriving EC job behind the current queue.
  const double wait_seconds =
      ec_cluster_.queued_standard_seconds() /
      (static_cast<double>(std::max<std::size_t>(provisioned, 1)) *
       config_.topology.ec_speed);

  if (wait_seconds > e.grow_wait_threshold_seconds &&
      provisioned < e.max_machines) {
    ++pending_boots_;
    ++scale_ups_;
    log_.info(sim_.now(), "elastic EC: scaling up to ", provisioned + 1);
    const std::uint64_t boot_id = next_boot_id_++;
    boot_events_[boot_id] =
        sim_.schedule_in(e.boot_delay, [this, boot_id] { on_boot_done(boot_id); });
  } else if (provisioned > e.min_machines && pending_boots_ == 0) {
    const auto idle = static_cast<double>(ec_cluster_.machine_count() -
                                          ec_cluster_.running_tasks());
    if (ec_cluster_.queued_tasks() == 0 &&
        idle > e.shrink_idle_fraction *
                   static_cast<double>(ec_cluster_.machine_count())) {
      if (ec_cluster_.remove_machine()) {
        ++scale_downs_;
        belief_.set_ec_machines(ec_cluster_.machine_count());
        log_.info(sim_.now(), "elastic EC: scaling down to ",
                  ec_cluster_.machine_count());
      }
    }
  }
  ensure_elastic_check();
}

void CloudBurstController::on_boot_done(std::uint64_t boot_id) {
  boot_events_.erase(boot_id);
  --pending_boots_;
  ec_cluster_.add_machine();
  belief_.set_ec_machines(ec_cluster_.machine_count());
}

// ---- §IV.D rescheduling strategies (paper future work, behind a flag) --

void CloudBurstController::maybe_pull_back() {
  // An internal machine is idle with nothing waiting: reclaim the earliest
  // still-queued upload whose believed external completion is further away
  // than an internal re-execution.
  const auto tags = upload_queues_.queued_tags();
  for (const std::uint64_t seq : tags) {
    Job& job = job_at(seq);
    const double reexec_seconds =
        job.estimated_service_seconds /
        (static_cast<double>(config_.topology.ic_machines) *
         config_.topology.ic_speed);
    const double remaining_ec =
        belief_.ec_round_trip_no_load(job.doc, sim_.now());
    if (remaining_ec <= reexec_seconds) continue;
    if (!upload_queues_.try_cancel(seq)) continue;

    belief_.retract_ec(seq, job.doc.input_bytes());
    belief_.commit_ic(seq, job.estimated_service_seconds);
    job.placement = Placement::kInternal;
    set_state(job, JobState::kIcWaiting);
    ic_wait_.push_back(seq);
    ++pull_backs_;
    log_.info(sim_.now(), "pull-back of job ", seq, " to IC");
    dispatch_ic();
    return;
  }
}

void CloudBurstController::maybe_push_out() {
  // The upload pipe is idle while internal jobs wait: scan the IC wait
  // queue from the tail for a job whose round trip fits the current slack.
  for (auto it = ic_wait_.rbegin(); it != ic_wait_.rend(); ++it) {
    const std::uint64_t seq = *it;
    Job& job = job_at(seq);
    // The cushion must exclude the candidate's own believed IC work, so
    // retract first and re-commit if the move is rejected.
    belief_.retract_ic(seq);
    const EcEstimate ec = belief_.ft_ec(job.doc, sim_.now());
    if (!cbs::sla::satisfies_slack(ec.finish, belief_.slack(sim_.now()),
                                   config_.params.slack_safety_margin)) {
      belief_.commit_ic(seq, job.estimated_service_seconds);
      continue;
    }
    ic_wait_.erase(std::next(it).base());
    belief_.commit_ec(seq, job.doc, ec);
    job.placement = Placement::kExternal;
    set_state(job, JobState::kUploadQueued);
    upload_queues_.enqueue(seq, job.doc.input_bytes(), 0);
    arm_burst_deadline(seq);
    ++push_outs_;
    log_.info(sim_.now(), "push-out of job ", seq, " to EC");
    return;
  }
}

}  // namespace cbs::core
