#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "compute/job_store.hpp"
#include "models/hazard.hpp"
#include "net/bandwidth_estimator.hpp"
#include "net/link.hpp"
#include "net/thread_tuner.hpp"
#include "simcore/fault_plan.hpp"
#include "simcore/logging.hpp"
#include "simcore/time.hpp"
#include "workload/chunker.hpp"

namespace cbs::core {

/// Which burst scheduler drives the run (§IV).
enum class SchedulerKind : std::uint8_t {
  kIcOnly,           ///< baseline: never burst
  kGreedy,           ///< Algorithm 1
  kOrderPreserving,  ///< Algorithm 2
  kBandwidthSplit,   ///< Algorithm 2 + Algorithm 3 (size-interval splitting)
  kRandom,           ///< model-free baseline (§III cites [8]'s random scheduler)
  kLookahead,        ///< model-predictive: fork the sim, roll candidates forward
};

[[nodiscard]] std::string_view to_string(SchedulerKind kind) noexcept;

/// Which processing-time estimator the scheduler consults.
enum class EstimatorKind : std::uint8_t {
  kQrsm,          ///< the paper's learned model (production path)
  kOracle,        ///< ground-truth expectation (perfect-information ablation)
  kPerClassQrsm,  ///< one surface per job class (§III.A.1 future work)
};

/// Tunables of the scheduling policies.
struct SchedulerParams {
  /// Algorithm 2: look-ahead window x for the size-variability test
  /// σ(i:i+x) and the threshold th (MB of standard deviation) above which
  /// the head job is chunked.
  int variability_window = 5;
  double variability_threshold_mb = 55.0;
  cbs::workload::PdfChunker::Config chunker{};
  /// Safety margin τ subtracted from the slack before admitting a burst —
  /// the Order Preserving scheduler targets finishing τ early (§IV), which
  /// is what buys its robustness to bandwidth dips.
  cbs::sim::SimDuration slack_safety_margin = 30.0;
  /// Algorithm 3: number of size-interval upload queues (small/medium/large).
  int size_interval_queues = 3;
  /// §VII future work: "modulating the chunking of jobs as a function of
  /// their position in the input queue". When enabled, the chunk target
  /// grows linearly from `chunker.target_size_mb` at the batch head to
  /// `tail_chunk_scale` times that at the tail — head jobs are needed soon
  /// (fine chunks, early availability), tail jobs can afford coarse chunks
  /// (less per-chunk overhead).
  bool position_aware_chunking = false;
  double tail_chunk_scale = 2.5;
  /// Random baseline: probability a job is bursted, and the draw seed.
  double random_burst_probability = 0.15;
  std::uint64_t random_seed = 12345;
};

/// Hybrid-cloud topology (§V.A test bed: 8 internal VMs, 2 EMR VMs).
struct TopologyConfig {
  std::size_t ic_machines = 8;
  double ic_speed = 1.0;
  std::size_t ec_machines = 2;
  double ec_speed = 1.0;
  /// Map-task granularity on either cluster (MB of input per map task).
  double map_chunk_mb = 16.0;
  /// Hadoop task-slot cap: how many map tasks of ONE job may run
  /// concurrently. 1 reproduces the paper's Fig. 2 semantics (each job
  /// occupies one resource; parallelism comes from concurrent jobs, and
  /// Algorithm 2's pdfchunk is what splits big jobs across machines).
  int max_map_tasks_per_job = 1;
  /// Merge/compress cost per MB of output on the executing cluster.
  double merge_seconds_per_output_mb = 0.05;
  /// Fixed per-job overhead on the external cloud (S3 staging, EMR job
  /// setup and task scheduling) — machine-occupying time added to every EC
  /// job. This is what makes bursting a small job unattractive when the
  /// internal queue is short.
  double ec_job_overhead_seconds = 30.0;
};

/// §V.B.4 future work: elastic scaling of the external cloud — "the
/// scaling (at EC) must be just enough to ensure saturation of the
/// download bandwidth". A periodic autonomic check grows the EC while
/// work queues behind it and shrinks it when instances idle.
struct ElasticEcConfig {
  bool enabled = false;
  std::size_t min_machines = 1;
  std::size_t max_machines = 8;
  cbs::sim::SimDuration check_interval = 60.0;
  /// Instance spin-up delay (an EC2 boot); capacity arrives late.
  cbs::sim::SimDuration boot_delay = 45.0;
  /// Grow when the believed EC queue wait exceeds this many seconds.
  double grow_wait_threshold_seconds = 90.0;
  /// Shrink when more than this fraction of instances sit idle with an
  /// empty queue.
  double shrink_idle_fraction = 0.5;
};

/// Proactive failure resilience: an online per-VM hazard predictor
/// (models/hazard.hpp) feeding three controller policies — pre-emptive
/// drain of high-hazard machines, risk-weighted burst pricing (believed EC
/// round trips inflate with predicted failure probability, which every
/// scheduler consumes through BeliefState), and hazard-shortened burst
/// retraction deadlines. Default-constructed = predictor off: nothing is
/// built, no estimate changes, runs stay byte-identical.
struct ResilienceConfig {
  cbs::models::HazardModelConfig hazard{};
  /// Drain a machine once its predicted failure probability within
  /// `drain_window_seconds` reaches this; it is undrained when the
  /// probability falls back below. Drains are soft: dispatch avoids the
  /// machine while a healthy one is free, but never stalls the queue
  /// (compute::Cluster::drain_machine).
  double drain_threshold = 0.35;
  cbs::sim::SimDuration drain_window_seconds = 600.0;
  /// Risk pricing lever: believed EC processing scales by
  /// (1 + risk_weight × mean P(EC VM fails within the drain window)).
  double risk_weight = 0.5;
  /// Checkpoint-restart the running task when its machine drains (the
  /// completed fraction is preserved); otherwise the task runs to the end
  /// and only new dispatches are blocked.
  bool preempt_on_drain = true;

  [[nodiscard]] bool enabled() const noexcept {
    return hazard.kind != cbs::models::HazardPredictorKind::kOff;
  }
};

/// The full controller configuration.
struct ControllerConfig {
  SchedulerKind scheduler = SchedulerKind::kOrderPreserving;
  EstimatorKind estimator = EstimatorKind::kQrsm;
  SchedulerParams params{};
  TopologyConfig topology{};

  cbs::net::LinkConfig uplink{};
  cbs::net::LinkConfig downlink{};
  cbs::net::BandwidthEstimator::Config bandwidth_estimator{};
  cbs::net::ThreadTuner::Config thread_tuner{};

  /// Periodic 1 MB bandwidth probes (§III.A.2); 0 disables probing.
  cbs::sim::SimDuration probe_interval = 150.0;
  double probe_bytes = 1.0e6;

  /// §IV.D rescheduling strategies (paper future work; off by default).
  bool enable_rescheduler = false;

  ElasticEcConfig elastic_ec{};

  /// Fault injection and burst-retraction recovery. Default-constructed =
  /// fully disabled and zero-cost: no FaultPlan is built, no events are
  /// scheduled, runs are byte-identical to a fault-free build.
  cbs::sim::FaultConfig faults{};

  /// Proactive failure resilience (hazard prediction + drains). Disabled by
  /// default; zero-cost and byte-identical when off.
  ResilienceConfig resilience{};

  /// EC staging-store retry/backoff/capacity knobs (S3 best-effort model).
  cbs::compute::JobStore::Config store{};

  /// Concurrent uploads when a single upload queue is used; the
  /// size-interval scheduler uses one slot per interval queue instead.
  int single_queue_upload_slots = 1;
  int download_slots = 1;

  /// Record every job's pipeline-stage transitions (Fig. 5 observability);
  /// costs memory proportional to jobs x stages, so off by default.
  bool record_stage_log = false;

  /// Per-run logging. Every controller owns its Logger, so concurrent
  /// runs (the parallel experiment runner) never share mutable logging
  /// state; the process-wide Logger::global_threshold() only acts as a
  /// floor. `log_sink` (when set) redirects this run's messages — e.g.
  /// into a per-cell buffer — instead of the shared stderr stream.
  cbs::sim::LogLevel log_threshold = cbs::sim::LogLevel::kWarn;
  cbs::sim::Logger::Sink log_sink{};
};

/// Returns a config calibrated so that mean transfer time is of the order
/// of mean processing time on the default workload — the regime the paper
/// studies. `high_network_variation` raises the AR(1) sigma (Fig. 9/10).
[[nodiscard]] ControllerConfig default_controller_config(
    bool high_network_variation = false);

}  // namespace cbs::core
