#include "core/config.hpp"

namespace cbs::core {

std::string_view to_string(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kIcOnly: return "ic-only";
    case SchedulerKind::kGreedy: return "greedy";
    case SchedulerKind::kOrderPreserving: return "order-preserving";
    case SchedulerKind::kBandwidthSplit: return "op-bandwidth-split";
    case SchedulerKind::kRandom: return "random";
    case SchedulerKind::kLookahead: return "lookahead";
  }
  return "?";
}

ControllerConfig default_controller_config(bool high_network_variation) {
  ControllerConfig cfg;

  // The pipe: a thin business line with a per-connection cap that requires
  // ~6 parallel threads to saturate (Fig. 4b), diurnal variation and AR(1)
  // noise. Calibrated against the default ground-truth law so a mean-size
  // document's one-way transfer is of the order of its processing time —
  // the paper's regime. (The paper quotes "250kbps" but moves hundreds of
  // MB per job in tens of minutes, so its unit is clearly not bits/s; we
  // keep everything in bytes/s.)
  cfg.uplink.name = "uplink";
  cfg.uplink.base_rate = 1.3e6;
  cfg.uplink.per_connection_cap = 320.0e3;
  cfg.uplink.profile = cbs::net::DiurnalProfile::business_pipe();
  // Normal regime: short-lived fluctuations (correlation time ~5 min).
  // High variation (Fig. 9/10): congestion epochs lasting tens of minutes —
  // the regime where transient-bandwidth decisions strand whole clusters of
  // bursted jobs behind a trough.
  cfg.uplink.noise_rho = high_network_variation ? 0.95 : 0.9;
  cfg.uplink.noise_sigma = high_network_variation ? 0.25 : 0.12;
  cfg.uplink.noise_step = high_network_variation ? 120.0 : 30.0;
  cfg.uplink.setup_latency = 0.3;

  cfg.downlink = cfg.uplink;
  cfg.downlink.name = "downlink";
  cfg.downlink.base_rate = 1.5e6;  // asymmetric line: downstream is wider

  cfg.bandwidth_estimator.prior_rate = 1.0e6;
  cfg.bandwidth_estimator.alpha = 0.3;
  cfg.bandwidth_estimator.slots_per_day = 48;

  // Per-transfer parallelism is bounded by the application (multipart
  // upload limits, connection quotas): one transfer cannot saturate the
  // pipe at peak hours — which is exactly why Algorithm 3's parallel
  // size-interval queues raise upload-bandwidth utilization.
  cfg.thread_tuner.min_threads = 1;
  cfg.thread_tuner.max_threads = 4;
  cfg.thread_tuner.initial_threads = 4;

  return cfg;
}

}  // namespace cbs::core
