#pragma once

#include <optional>

#include "core/order_preserving_scheduler.hpp"

namespace cbs::core {

/// The size-interval bounds computed per batch by Algorithm 3.
struct SizeIntervalBounds {
  double small_upper_mb = 0.0;   ///< s_bound
  double medium_upper_mb = 0.0;  ///< m_bound

  [[nodiscard]] int class_of(double size_mb) const noexcept {
    if (size_mb <= small_upper_mb) return 0;
    if (size_mb <= medium_upper_mb) return 1;
    return 2;
  }
};

/// Algorithm 3 in isolation (exposed for unit testing): given the batch,
/// the believed IC load and the per-queue upload backlogs, computes the
/// small/medium bounds that equalize the expected network load across the
/// three upload queues. Returns nullopt when no job is burst-eligible
/// (lines 3–12 select nothing), in which case the previous bounds remain
/// in force.
[[nodiscard]] std::optional<SizeIntervalBounds> compute_size_interval_bounds(
    const std::vector<cbs::workload::Document>& batch, const BeliefState& belief,
    cbs::sim::SimTime now, std::size_t ic_machines,
    const std::vector<double>& queue_backlog_bytes);

/// Allocation-free overload: `scratch_sizes` is cleared and reused as the
/// eligible-size list L, so per-batch calls stop allocating once the buffer
/// has warmed up. The bounds are selected with nth_element (they are order
/// statistics of L) — values are identical to the sorting implementation.
[[nodiscard]] std::optional<SizeIntervalBounds> compute_size_interval_bounds(
    const std::vector<cbs::workload::Document>& batch, const BeliefState& belief,
    cbs::sim::SimTime now, std::size_t ic_machines,
    const std::vector<double>& queue_backlog_bytes,
    std::vector<double>& scratch_sizes);

/// §IV.C — the Order Preserving scheduler with Size-interval Bandwidth
/// Splitting: uploads are partitioned into small/medium/large queues whose
/// bounds are recomputed per batch (Algorithm 3), isolating small jobs from
/// large ones so they reach the EC faster. Lower-class jobs may ride
/// higher-class queues, never the reverse.
class BandwidthSplitScheduler final : public OrderPreservingScheduler {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "op-bandwidth-split";
  }

  [[nodiscard]] std::vector<ScheduleDecision> schedule_batch(
      std::vector<cbs::workload::Document> docs, Context& ctx) override;

  [[nodiscard]] const SizeIntervalBounds& bounds() const noexcept { return bounds_; }

  [[nodiscard]] std::unique_ptr<Scheduler> clone() const override {
    auto out = std::make_unique<BandwidthSplitScheduler>();
    out->bounds_ = bounds_;  // carry the in-force Algorithm-3 bounds
    return out;
  }

 protected:
  [[nodiscard]] ScheduleDecision place(const cbs::workload::Document& doc,
                                       Context& ctx) override;

 private:
  SizeIntervalBounds bounds_{40.0, 120.0};  // sane defaults before batch 1
  std::vector<double> size_scratch_;        // reused eligible-size list L
};

}  // namespace cbs::core
