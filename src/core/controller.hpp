#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compute/cluster.hpp"
#include "compute/job_store.hpp"
#include "compute/mapreduce.hpp"
#include "core/belief_state.hpp"
#include "core/config.hpp"
#include "core/job.hpp"
#include "core/scheduler.hpp"
#include "core/upload_queues.hpp"
#include "util/flat_map.hpp"
#include "models/estimator.hpp"
#include "models/hazard.hpp"
#include "net/bandwidth_estimator.hpp"
#include "net/link.hpp"
#include "net/thread_tuner.hpp"
#include "simcore/fault_plan.hpp"
#include "simcore/logging.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "sla/cost.hpp"
#include "sla/job_outcome.hpp"
#include "workload/arrival.hpp"
#include "workload/ground_truth.hpp"

namespace cbs::core {

/// The cloud-bursting controller: the pipelined, event-based architecture
/// of the paper's Fig. 5, wiring together
///
///   job queue → scheduler → { IC MapReduce }  or
///                           { upload queue(s) → EC store → EC MapReduce →
///                             compress/merge → download queue } → results
///
/// Every stage is asynchronous; the controller reacts to completion events.
/// It owns the autonomic loop: QRSM observations after every job, EWMA
/// bandwidth updates after every transfer, periodic 1 MB probes, and
/// thread-count tuning.
class CloudBurstController {
 public:
  CloudBurstController(cbs::sim::Simulation& sim, ControllerConfig config,
                       cbs::workload::GroundTruthModel& truth,
                       cbs::sim::RngStream rng);
  CloudBurstController(const CloudBurstController&) = delete;
  CloudBurstController& operator=(const CloudBurstController&) = delete;

  /// Fork support: deep-copies `src` into a controller bound to the (empty)
  /// destination engine `dst` and the fork's ground-truth model. Every
  /// sub-component is value-cloned and rebound to its forked peers; call
  /// rebuild_events() afterwards to re-schedule the pending work, then
  /// SnapshotContext::finish() to verify nothing was orphaned.
  CloudBurstController(cbs::sim::Simulation& dst,
                       const CloudBurstController& src,
                       cbs::workload::GroundTruthModel& truth);

  /// Re-schedules all pending events owned by this controller and its
  /// sub-components after a fork.
  void rebuild_events(cbs::sim::SnapshotContext& ctx);

  /// Seeds the QRSM with a labeled factory corpus (§III.A.1: "initial best
  /// estimate model based on a standard set of production data"). No-op for
  /// the oracle estimator.
  void pretrain(const std::vector<cbs::workload::Document>& docs,
                const std::vector<double>& observed_runtimes);

  /// Handles one arriving batch (wire this to BatchArrivalProcess).
  void on_batch(const cbs::workload::Batch& batch);

  /// Handles one arriving batch using a temporarily swapped-in scheduler of
  /// `kind` (the lookahead controller commits its chosen candidate through
  /// this). The belief's bandwidth view follows the candidate the way the
  /// primary constructor wires it (Greedy conditions on the transient
  /// reading); both scheduler and view are restored before returning.
  void on_batch_as(const cbs::workload::Batch& batch, SchedulerKind kind);

  // ---- results & introspection -------------------------------------

  [[nodiscard]] const std::vector<cbs::sla::JobOutcome>& outcomes() const noexcept {
    return outcomes_;
  }
  [[nodiscard]] std::size_t outstanding_jobs() const noexcept { return outstanding_; }
  [[nodiscard]] const compute::Cluster& ic_cluster() const noexcept { return ic_cluster_; }
  [[nodiscard]] const compute::Cluster& ec_cluster() const noexcept { return ec_cluster_; }
  [[nodiscard]] const net::Link& uplink() const noexcept { return uplink_; }
  [[nodiscard]] const net::Link& downlink() const noexcept { return downlink_; }
  [[nodiscard]] const compute::JobStore& store() const noexcept { return store_; }
  [[nodiscard]] const net::BandwidthEstimator& uplink_estimator() const noexcept {
    return uplink_estimator_;
  }
  [[nodiscard]] const net::BandwidthEstimator& downlink_estimator() const noexcept {
    return downlink_estimator_;
  }
  [[nodiscard]] const net::ThreadTuner& upload_tuner() const noexcept {
    return up_tuner_;
  }
  [[nodiscard]] const models::ProcessingTimeEstimator& service_estimator() const {
    return *proc_estimator_;
  }
  [[nodiscard]] const Scheduler& scheduler() const noexcept { return *scheduler_; }
  [[nodiscard]] const ControllerConfig& config() const noexcept { return config_; }
  /// Number of §IV.D rescheduler interventions that occurred.
  [[nodiscard]] std::size_t pull_backs() const noexcept { return pull_backs_; }
  [[nodiscard]] std::size_t push_outs() const noexcept { return push_outs_; }
  /// Elastic-EC activity (scale-ups / scale-downs performed).
  [[nodiscard]] std::size_t scale_ups() const noexcept { return scale_ups_; }
  [[nodiscard]] std::size_t scale_downs() const noexcept { return scale_downs_; }
  /// Bursts retracted by the recovery policy (deadline blown, EC outage
  /// observed, or staging abandoned): the job was re-admitted to the IC
  /// queue at its FCFS position and re-executed internally.
  [[nodiscard]] std::size_t retractions() const noexcept { return retractions_; }
  /// Periodic probes skipped because of a probe-blackout window.
  [[nodiscard]] std::size_t probe_blackout_skips() const noexcept {
    return probe_blackout_skips_;
  }
  /// The per-VM hazard estimators, or nullptr when the predictor is off.
  [[nodiscard]] const models::VmHazardEstimator* ic_hazard() const noexcept {
    return ic_hazard_.get();
  }
  [[nodiscard]] const models::VmHazardEstimator* ec_hazard() const noexcept {
    return ec_hazard_.get();
  }
  /// Mean predicted probability that a usable (non-drained) EC machine
  /// fails within the drain window; 0 when the predictor is off. This is
  /// the risk signal the burst pricing and the lookahead scoring consume.
  [[nodiscard]] double ec_failure_risk() const;
  /// Outstanding jobs the belief currently places on the EC.
  [[nodiscard]] std::size_t outstanding_ec_jobs() const noexcept {
    return belief_.outstanding_ec_jobs();
  }
  /// The fault generator, or nullptr when faults are disabled.
  // cbs-lint: snapshot-ok(observer return of the owned unique_ptr, never stored)
  [[nodiscard]] const cbs::sim::FaultPlan* fault_plan() const noexcept {
    return fault_plan_.get();
  }
  /// Billing inputs accumulated so far (provisioned EC machine-seconds,
  /// bytes moved each way, staging byte-seconds, IC machine-seconds).
  [[nodiscard]] sla::CostInputs cost_inputs() const;

  /// One pipeline-stage transition of one job (recorded when
  /// ControllerConfig::record_stage_log is set).
  struct StageEvent {
    std::uint64_t seq_id = 0;
    JobState state = JobState::kArrived;
    cbs::sim::SimTime time = 0.0;
  };
  [[nodiscard]] const std::vector<StageEvent>& stage_log() const noexcept {
    return stage_log_;
  }

 private:
  void wire_hooks();
  void dispatch_ic();
  void run_on_ic(std::uint64_t seq);
  void on_ic_done(std::uint64_t seq);
  void on_upload_done(std::uint64_t seq, const net::TransferRecord& rec);
  void on_input_staged(std::uint64_t seq, bool ok);
  void on_output_staged(std::uint64_t seq, bool ok);
  void start_ec_processing(std::uint64_t seq);
  void on_ec_proc_done(std::uint64_t seq);
  void on_boot_done(std::uint64_t boot_id);
  void arm_burst_deadline(std::uint64_t seq);
  void disarm_burst_deadline(std::uint64_t seq);
  void on_burst_deadline(std::uint64_t seq);
  void readmit_to_ic(std::uint64_t seq, double pending_upload_bytes,
                     const char* why);
  void admit_ic_in_order(std::uint64_t seq);
  void on_outage_begin();
  void on_outage_end();
  void on_download_done(std::uint64_t seq, const net::TransferRecord& rec);
  void finish_job(Job& job);
  void set_state(Job& job, JobState state);
  void ensure_probing();
  void probe();
  void ensure_elastic_check();
  void elastic_check();
  void maybe_pull_back();
  void maybe_push_out();
  // ---- proactive resilience (hazard prediction + drains) ----
  void on_ic_crash(std::size_t machine);
  void on_ic_recover(std::size_t machine);
  void on_ec_crash(std::size_t machine);
  void on_ec_recover(std::size_t machine);
  /// Re-evaluates drains and the believed EC risk factor; no-op when the
  /// predictor is off. Runs at every crash, recovery and batch arrival —
  /// existing deterministic event points, so no new events are created and
  /// nothing extra crosses a fork.
  void update_resilience();
  void update_cluster_drains(compute::Cluster& cluster,
                             models::VmHazardEstimator& hazard);
  [[nodiscard]] compute::MapReduceSpec spec_for(const Job& job,
                                                double merge_per_mb) const;
  [[nodiscard]] Job& job_at(std::uint64_t seq);

  cbs::sim::Simulation& sim_;
  ControllerConfig config_;
  cbs::workload::GroundTruthModel& truth_;
  sim::Logger log_;

  compute::Cluster ic_cluster_;
  compute::Cluster ec_cluster_;
  compute::MapReduceRuntime ic_runtime_;
  compute::MapReduceRuntime ec_runtime_;
  net::Link uplink_;
  net::Link downlink_;
  compute::JobStore store_;
  net::BandwidthEstimator uplink_estimator_;
  net::BandwidthEstimator downlink_estimator_;
  net::ThreadTuner up_tuner_;
  net::ThreadTuner down_tuner_;
  std::unique_ptr<models::ProcessingTimeEstimator> proc_estimator_;
  BeliefState belief_;
  std::unique_ptr<Scheduler> scheduler_;
  TransferQueueSet upload_queues_;
  TransferQueueSet download_queue_;

  cbs::util::FlatMap<std::uint64_t, Job> jobs_;
  std::deque<std::uint64_t> ic_wait_;  ///< IC feed queue (enables rescheduling)
  std::vector<cbs::sla::JobOutcome> outcomes_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_doc_id_ = 1ULL << 32;  ///< chunk ids, disjoint from inputs
  std::size_t outstanding_ = 0;
  bool probe_scheduled_ = false;
  std::size_t pull_backs_ = 0;
  std::size_t push_outs_ = 0;
  std::vector<StageEvent> stage_log_;
  bool elastic_check_scheduled_ = false;
  std::size_t pending_boots_ = 0;  ///< instances spinning up
  std::size_t scale_ups_ = 0;
  std::size_t scale_downs_ = 0;

  // ---- registered dispatch slots (the forkable event paths) ----
  int store_input_slot_ = -1;   ///< JobStore continuation: input staged
  int store_output_slot_ = -1;  ///< JobStore continuation: output staged
  int probe_up_slot_ = -1;      ///< uplink handler for probe transfers
  int probe_down_slot_ = -1;    ///< downlink handler for probe transfers
  // ---- controller-owned pending events (restored across forks) ----
  cbs::sim::EventId probe_event_{};
  cbs::sim::EventId elastic_event_{};
  cbs::util::FlatMap<std::uint64_t, cbs::sim::EventId> boot_events_;
  std::uint64_t next_boot_id_ = 1;
  /// Lazily created schedulers for on_batch_as(); cloned across forks.
  std::vector<std::pair<SchedulerKind, std::unique_ptr<Scheduler>>>
      alt_schedulers_;

  // ---- fault layer (absent and cost-free unless configured) ----
  std::unique_ptr<cbs::sim::FaultPlan> fault_plan_;
  /// Pending burst-retraction deadlines: seq -> the deadline event.
  cbs::util::FlatMap<std::uint64_t, cbs::sim::EventId> burst_deadlines_;
  std::size_t retractions_ = 0;
  std::size_t probe_blackout_skips_ = 0;

  // ---- proactive resilience (absent and cost-free unless configured) ----
  // Pure value state (no events, no hooks), so forks copy-construct them.
  std::unique_ptr<models::VmHazardEstimator> ic_hazard_;
  std::unique_ptr<models::VmHazardEstimator> ec_hazard_;
};

}  // namespace cbs::core
