#include "workload/trace.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace cbs::workload::trace {

namespace {

constexpr std::string_view kHeader =
    "batch,arrival_time,doc_id,type,size_mb,pages,num_images,avg_image_mb,"
    "resolution_dpi,color_fraction,text_ratio,coverage,output_size_mb";

JobType job_type_from(const std::string& name) {
  for (JobType t : kAllJobTypes) {
    if (to_string(t) == name) return t;
  }
  throw std::runtime_error("trace: unknown job type '" + name + "'");
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

double to_double(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  if (pos != s.size()) throw std::runtime_error("trace: bad number '" + s + "'");
  return v;
}

int to_int(const std::string& s) {
  std::size_t pos = 0;
  const int v = std::stoi(s, &pos);
  if (pos != s.size()) throw std::runtime_error("trace: bad integer '" + s + "'");
  return v;
}

}  // namespace

std::size_t write(std::ostream& out, const std::vector<Batch>& batches) {
  out << kHeader << "\n";
  std::size_t rows = 0;
  for (const Batch& b : batches) {
    for (const Document& d : b.documents) {
      const DocumentFeatures& f = d.features;
      out << b.batch_index << ',' << b.arrival_time << ',' << d.doc_id << ','
          << to_string(f.type) << ',' << f.size_mb << ',' << f.pages << ','
          << f.num_images << ',' << f.avg_image_mb << ',' << f.resolution_dpi
          << ',' << f.color_fraction << ',' << f.text_ratio << ',' << f.coverage
          << ',' << d.output_size_mb << "\n";
      ++rows;
    }
  }
  return rows;
}

std::size_t write_file(const std::string& path, const std::vector<Batch>& batches) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot open for write: " + path);
  const std::size_t rows = write(out, batches);
  if (!out) throw std::runtime_error("trace: write failed: " + path);
  return rows;
}

std::vector<Batch> read(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("trace: empty input");
  if (line != kHeader) throw std::runtime_error("trace: unexpected header");

  // batch index -> batch, ordered.
  std::map<std::size_t, Batch> by_index;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    if (fields.size() != 13) {
      throw std::runtime_error("trace: line " + std::to_string(line_no) +
                               ": expected 13 fields, got " +
                               std::to_string(fields.size()));
    }
    const auto batch_index = static_cast<std::size_t>(to_int(fields[0]));
    Batch& batch = by_index[batch_index];
    batch.batch_index = batch_index;
    batch.arrival_time = to_double(fields[1]);

    Document d;
    d.doc_id = static_cast<std::uint64_t>(to_int(fields[2]));
    d.features.type = job_type_from(fields[3]);
    d.features.size_mb = to_double(fields[4]);
    d.features.pages = to_int(fields[5]);
    d.features.num_images = to_int(fields[6]);
    d.features.avg_image_mb = to_double(fields[7]);
    d.features.resolution_dpi = to_double(fields[8]);
    d.features.color_fraction = to_double(fields[9]);
    d.features.text_ratio = to_double(fields[10]);
    d.features.coverage = to_double(fields[11]);
    d.output_size_mb = to_double(fields[12]);
    batch.documents.push_back(d);
  }

  std::vector<Batch> batches;
  batches.reserve(by_index.size());
  for (auto& [idx, batch] : by_index) batches.push_back(std::move(batch));
  return batches;
}

std::vector<Batch> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open for read: " + path);
  return read(in);
}

std::vector<Batch> round_trip(const std::vector<Batch>& batches) {
  std::stringstream ss;
  ss.precision(17);
  write(ss, batches);
  return read(ss);
}

}  // namespace cbs::workload::trace
