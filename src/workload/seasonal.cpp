#include "workload/seasonal.hpp"

#include <cassert>
#include <cmath>

#include "stats/distributions.hpp"

namespace cbs::workload {

using cbs::sim::kDay;
using cbs::sim::kHour;
using cbs::sim::SimTime;

SeasonalArrivalProcess::IntensityFn SeasonalArrivalProcess::business_day() {
  return [](SimTime t) {
    const double hour = std::fmod(t, kDay) / kHour;
    if (hour < 6.0) return 0.05;   // overnight trickle
    if (hour < 9.0) return 0.05 + 0.95 * (hour - 6.0) / 3.0;  // morning ramp
    if (hour < 12.0) return 1.0;   // morning plateau
    if (hour < 13.0) return 0.6;   // lunch dip
    if (hour < 17.0) return 1.2;   // afternoon peak
    if (hour < 20.0) return 1.2 - (hour - 17.0) * 0.35;       // wind-down
    return 0.1;
  };
}

SeasonalArrivalProcess::IntensityFn SeasonalArrivalProcess::business_week() {
  const IntensityFn day = business_day();
  return [day](SimTime t) {
    const auto day_index =
        static_cast<int>(std::fmod(t, 7.0 * kDay) / kDay);  // 0 = Monday
    const double weekend = day_index >= 5 ? 0.15 : 1.0;
    return weekend * day(t);
  };
}

SeasonalArrivalProcess::SeasonalArrivalProcess(Config config,
                                               IntensityFn intensity,
                                               WorkloadGenerator& generator,
                                               cbs::sim::RngStream rng)
    : config_(config),
      intensity_(std::move(intensity)),
      generator_(generator),
      rng_(rng) {
  assert(config.batch_interval > 0.0);
  assert(config.base_jobs_per_batch > 0.0);
  assert(intensity_);
}

std::vector<Batch> SeasonalArrivalProcess::generate_all() {
  std::vector<Batch> batches;
  std::size_t index = 0;
  for (std::size_t slot = 0; slot < config_.num_batches; ++slot) {
    const SimTime at = static_cast<double>(slot) * config_.batch_interval;
    const double intensity = intensity_(at);
    assert(intensity >= 0.0);
    const auto n = cbs::stats::sample_poisson(
        rng_, config_.base_jobs_per_batch * intensity);
    if (n == 0 && config_.skip_empty_batches) continue;
    Batch batch;
    batch.batch_index = index++;
    batch.arrival_time = at;
    batch.documents = generator_.batch(n);
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::vector<Batch> SeasonalArrivalProcess::schedule_on(
    cbs::sim::Simulation& sim, std::function<void(const Batch&)> on_batch) {
  assert(on_batch);
  std::vector<Batch> batches = generate_all();
  for (const Batch& batch : batches) {
    sim.schedule_at(batch.arrival_time,
                    [batch, on_batch] { on_batch(batch); });
  }
  return batches;
}

}  // namespace cbs::workload
