#include "workload/arrival.hpp"

#include <cassert>

#include "stats/distributions.hpp"

namespace cbs::workload {

BatchArrivalProcess::BatchArrivalProcess(Config config, WorkloadGenerator& generator,
                                         cbs::sim::RngStream rng)
    : config_(config), generator_(generator), rng_(rng) {
  assert(config.batch_interval > 0.0);
  assert(config.mean_jobs_per_batch > 0.0);
  assert(config.num_batches > 0);
}

std::vector<Batch> BatchArrivalProcess::generate_all() {
  std::vector<Batch> batches;
  batches.reserve(config_.num_batches);
  for (std::size_t b = 0; b < config_.num_batches; ++b) {
    std::uint64_t n = cbs::stats::sample_poisson(rng_, config_.mean_jobs_per_batch);
    while (config_.reject_empty_batches && n == 0) {
      n = cbs::stats::sample_poisson(rng_, config_.mean_jobs_per_batch);
    }
    Batch batch;
    batch.batch_index = b;
    batch.arrival_time = static_cast<double>(b) * config_.batch_interval;
    batch.documents = generator_.batch(n);
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::vector<Batch> BatchArrivalProcess::schedule_on(
    cbs::sim::Simulation& sim, std::function<void(const Batch&)> on_batch) {
  assert(on_batch);
  std::vector<Batch> batches = generate_all();
  for (const Batch& batch : batches) {
    // Copy the batch into the event: the returned vector is the caller's
    // bookkeeping record and must stay immutable.
    sim.schedule_at(batch.arrival_time,
                    [batch, on_batch] { on_batch(batch); });
  }
  return batches;
}

}  // namespace cbs::workload
