#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/arrival.hpp"
#include "workload/document.hpp"

namespace cbs::workload {

/// CSV persistence for generated workloads, so a scenario can be generated
/// once, inspected, edited by hand and replayed exactly.
///
/// Format (header line + one row per document):
///   batch,arrival_time,doc_id,type,size_mb,pages,num_images,avg_image_mb,
///   resolution_dpi,color_fraction,text_ratio,coverage,output_size_mb
namespace trace {

/// Writes batches to a stream. Returns the number of document rows written.
std::size_t write(std::ostream& out, const std::vector<Batch>& batches);

/// Writes batches to a file. Throws std::runtime_error on I/O failure.
std::size_t write_file(const std::string& path, const std::vector<Batch>& batches);

/// Parses batches from a stream. Throws std::runtime_error on malformed
/// input (wrong column count, non-numeric fields, unknown job type).
[[nodiscard]] std::vector<Batch> read(std::istream& in);

/// Parses batches from a file. Throws std::runtime_error on I/O failure.
[[nodiscard]] std::vector<Batch> read_file(const std::string& path);

/// Round-trip helper used by tests: batches -> csv -> batches.
[[nodiscard]] std::vector<Batch> round_trip(const std::vector<Batch>& batches);

}  // namespace trace

}  // namespace cbs::workload
