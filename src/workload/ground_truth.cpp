#include "workload/ground_truth.hpp"

#include <cassert>
#include <cmath>

#include "stats/distributions.hpp"

namespace cbs::workload {

namespace {

/// Output/input size ratio per job class: raster-heavy classes inflate,
/// text-heavy classes compress.
double type_output_ratio(JobType type) noexcept {
  switch (type) {
    case JobType::kNewspaper: return 0.85;
    case JobType::kBook: return 0.70;
    case JobType::kMarketingMaterial: return 1.10;
    case JobType::kMailCampaign: return 0.90;
    case JobType::kCreditCardStatement: return 0.60;
    case JobType::kImagePersonalization: return 1.25;
    case JobType::kVariableDataPromo: return 1.05;
  }
  return 1.0;
}

}  // namespace

GroundTruthModel::GroundTruthModel(Config config, cbs::sim::RngStream rng)
    : config_(config), rng_(rng) {
  assert(config.per_mb > 0.0);
  assert(config.noise_sigma >= 0.0);
  noise_seed_ = rng_.next();
}

double GroundTruthModel::type_cost_multiplier(JobType type) noexcept {
  // Class-specific pipeline stages (imposition, OCR, personalization merge)
  // that the numeric features do not capture; chosen to average ~1 over the
  // generator's class mix.
  switch (type) {
    case JobType::kNewspaper: return 0.95;
    case JobType::kBook: return 0.90;
    case JobType::kMarketingMaterial: return 1.10;
    case JobType::kMailCampaign: return 1.00;
    case JobType::kCreditCardStatement: return 0.80;
    case JobType::kImagePersonalization: return 1.30;
    case JobType::kVariableDataPromo: return 1.05;
  }
  return 1.0;
}

double GroundTruthModel::expected_seconds(const DocumentFeatures& f) const {
  const double res_norm = f.resolution_dpi / 600.0;  // 600 dpi reference
  double t = config_.base_seconds;
  t += config_.per_mb * f.size_mb;
  t += config_.resolution_color * f.size_mb * res_norm * f.color_fraction;
  t += config_.per_image_mb * static_cast<double>(f.num_images) * f.avg_image_mb;
  t += config_.coverage_sq_pages * f.coverage * f.coverage *
       static_cast<double>(f.pages);
  t += config_.text_pages * f.text_ratio * static_cast<double>(f.pages);
  return t * type_cost_multiplier(f.type);
}

double GroundTruthModel::sample_seconds(const DocumentFeatures& f) {
  const double expected = expected_seconds(f);
  if (config_.noise_sigma == 0.0) return expected;
  // Lognormal with mean 1: mu = -sigma^2/2 keeps E[noise] = 1 so the QRSM
  // target stays unbiased.
  const double s = config_.noise_sigma;
  const double noise = cbs::stats::sample_lognormal(rng_, -0.5 * s * s, s);
  return expected * noise;
}

double GroundTruthModel::realized_seconds(const Document& doc) const {
  const double expected = expected_seconds(doc.features);
  if (config_.noise_sigma == 0.0) return expected;
  // Identity-keyed noise: chunks key off (parent, index) so the same chunk
  // costs the same no matter which scheduler produced it or when.
  std::uint64_t identity = doc.doc_id;
  if (doc.is_chunk()) {
    identity = doc.parent_id * std::uint64_t{131} +
               static_cast<std::uint64_t>(doc.chunk_index) + std::uint64_t{1};
  }
  cbs::sim::RngStream stream(noise_seed_ ^ (identity * 0x9e3779b97f4a7c15ULL));
  const double s = config_.noise_sigma;
  const double noise = cbs::stats::sample_lognormal(stream, -0.5 * s * s, s);
  return expected * noise;
}

double GroundTruthModel::output_size_mb(const DocumentFeatures& f) const {
  const double ratio = type_output_ratio(f.type) * config_.output_ratio_scale;
  // A small per-page overlay models fixed result metadata per page.
  return f.size_mb * ratio + 0.002 * static_cast<double>(f.pages);
}

}  // namespace cbs::workload
