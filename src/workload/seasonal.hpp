#pragma once

#include <functional>
#include <vector>

#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "workload/arrival.hpp"
#include "workload/generator.hpp"

namespace cbs::workload {

/// Non-homogeneous batch arrivals — the paper's domain description:
/// workloads "wildly fluctuate and are periodical (weekly, monthly, yearly
/// etc.) closely following the seasonal consumption patterns of a consumer
/// economy". Batches still land on the fixed grid (one slot per
/// `batch_interval`), but the Poisson mean per batch is modulated by an
/// intensity profile over the horizon.
class SeasonalArrivalProcess {
 public:
  /// Intensity multiplier at absolute sim time t (>= 0; 0 = quiet period).
  using IntensityFn = std::function<double(cbs::sim::SimTime)>;

  struct Config {
    cbs::sim::SimDuration batch_interval = 180.0;
    /// Base Poisson mean per batch at intensity 1.
    double base_jobs_per_batch = 15.0;
    std::size_t num_batches = 8;
    /// Slots whose sampled size is 0 are skipped (no empty batches).
    bool skip_empty_batches = true;
  };

  /// A classic production-day shape: quiet overnight, a morning ramp, a
  /// lunchtime dip, an afternoon peak, winding down after hours. `t` wraps
  /// daily.
  [[nodiscard]] static IntensityFn business_day();

  /// A weekly pattern layered on the business day: weekends near-idle.
  /// Day 0 is a Monday.
  [[nodiscard]] static IntensityFn business_week();

  SeasonalArrivalProcess(Config config, IntensityFn intensity,
                         WorkloadGenerator& generator, cbs::sim::RngStream rng);

  /// Draws the whole schedule (deterministic per seed). Batch indices are
  /// dense even when quiet slots are skipped.
  [[nodiscard]] std::vector<Batch> generate_all();

  /// Schedules the arrivals on `sim`; returns the generated schedule.
  std::vector<Batch> schedule_on(cbs::sim::Simulation& sim,
                                 std::function<void(const Batch&)> on_batch);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  IntensityFn intensity_;
  WorkloadGenerator& generator_;
  cbs::sim::RngStream rng_;
};

}  // namespace cbs::workload
