#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace cbs::workload {

/// The production job classes the paper's facility handles (§I, Domain
/// characteristics).
enum class JobType : std::uint8_t {
  kNewspaper,
  kBook,
  kMarketingMaterial,
  kMailCampaign,
  kCreditCardStatement,
  kImagePersonalization,
  kVariableDataPromo,
};

inline constexpr std::array<JobType, 7> kAllJobTypes = {
    JobType::kNewspaper,           JobType::kBook,
    JobType::kMarketingMaterial,   JobType::kMailCampaign,
    JobType::kCreditCardStatement, JobType::kImagePersonalization,
    JobType::kVariableDataPromo,
};

[[nodiscard]] std::string_view to_string(JobType type) noexcept;

/// Observable document features — the x_i dimensions the paper feeds the
/// quadratic response surface model (§III.A.1): "document size, number of
/// images, the size of the images, resolution, color and monochrome
/// elements, number of pages, ratio of text to pages, coverage, job type".
struct DocumentFeatures {
  double size_mb = 0.0;         ///< compressed input size
  int pages = 0;
  int num_images = 0;
  double avg_image_mb = 0.0;
  double resolution_dpi = 300.0;
  double color_fraction = 0.0;  ///< fraction of color (vs monochrome) elements
  double text_ratio = 0.0;      ///< text elements per page
  double coverage = 0.0;        ///< ink coverage, 0..1
  JobType type = JobType::kMarketingMaterial;
};

/// One schedulable unit of work: the features plus identity/derivation info.
struct Document {
  std::uint64_t doc_id = 0;
  DocumentFeatures features;
  double output_size_mb = 0.0;  ///< size of the processed result
  /// When this document was produced by chunking a larger one: the parent
  /// id and this chunk's index; parent_id == 0 means an original document.
  std::uint64_t parent_id = 0;
  int chunk_index = 0;
  int chunk_count = 1;

  [[nodiscard]] double input_bytes() const noexcept {
    return features.size_mb * 1.0e6;
  }
  [[nodiscard]] double output_bytes() const noexcept {
    return output_size_mb * 1.0e6;
  }
  [[nodiscard]] bool is_chunk() const noexcept { return parent_id != 0; }
};

}  // namespace cbs::workload
