#include "workload/document.hpp"

namespace cbs::workload {

std::string_view to_string(JobType type) noexcept {
  switch (type) {
    case JobType::kNewspaper: return "newspaper";
    case JobType::kBook: return "book";
    case JobType::kMarketingMaterial: return "marketing";
    case JobType::kMailCampaign: return "mail-campaign";
    case JobType::kCreditCardStatement: return "statement";
    case JobType::kImagePersonalization: return "image-personalization";
    case JobType::kVariableDataPromo: return "variable-promo";
  }
  return "?";
}

}  // namespace cbs::workload
